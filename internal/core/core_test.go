package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"torch2chip/internal/data"
	"torch2chip/internal/export"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

func trainedMobileNet(t *testing.T) (nn.Layer, *data.Dataset, *data.Dataset) {
	t.Helper()
	g := tensor.NewRNG(1)
	train, test := data.Generate(data.SynthCIFAR10, 200, 60)
	model := models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 3})
	// A couple of epochs of plain SGD to get realistic BN stats.
	loader := data.NewLoader(train, 32, g)
	for ep := 0; ep < 2; ep++ {
		for {
			x, y, ok := loader.Next()
			if !ok {
				break
			}
			logits := model.Forward(x)
			_, grad := nn.CrossEntropyLoss(logits, y)
			nn.ZeroGrads(model)
			model.Backward(grad)
			for _, p := range model.Params() {
				tensor.AxpyInPlace(p.Data, -0.05, p.Grad)
			}
		}
	}
	return model, train, test
}

func TestFiveLineWorkflow(t *testing.T) {
	model, train, _ := trainedMobileNet(t)
	t2c := New(model, DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(train.Subset(5), 16); err != nil {
		t.Fatal(err)
	}
	im, err := t2c.Convert()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := t2c.Export(im, dir, FormatHex, FormatBin, FormatRaw, FormatJSON); err != nil {
		t.Fatal(err)
	}
	// The JSON checkpoint must round-trip.
	fp, err := os.Open(filepath.Join(dir, "model_int.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	ck, err := export.ReadJSON(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Names()) != len(im.IntTensors()) {
		t.Fatalf("checkpoint has %d tensors, model %d", len(ck.Names()), len(im.IntTensors()))
	}
	// Hex files must exist for every tensor and decode to the same codes.
	for name, tt := range im.IntTensors() {
		fn := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+".hex")
		f, err := os.Open(fn)
		if err != nil {
			t.Fatalf("missing hex dump %s", fn)
		}
		width := 8
		if strings.HasSuffix(name, "scaler.scale") {
			width = 16
		} else if strings.HasSuffix(name, "scaler.bias") {
			width = 32
		}
		vals, err := export.ReadHex(f, width)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != tt.Numel() {
			t.Fatalf("%s: %d values, want %d", name, len(vals), tt.Numel())
		}
		for i := range vals {
			if vals[i] != tt.Data[i] {
				t.Fatalf("%s[%d]: %d != %d", name, i, vals[i], tt.Data[i])
			}
		}
	}
}

func TestWorkflowOrderEnforced(t *testing.T) {
	g := tensor.NewRNG(2)
	model := models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 2})
	t2c := New(model, DefaultConfig())
	train, _ := data.Generate(data.SynthCIFAR10, 10, 2)
	if err := t2c.Calibrate(train, 4); err == nil {
		t.Fatal("Calibrate before Prepare must fail")
	}
	if _, err := t2c.Convert(); err == nil {
		t.Fatal("Convert before Calibrate must fail")
	}
}

func TestExportUnknownFormat(t *testing.T) {
	model, train, _ := trainedMobileNet(t)
	t2c := New(model, DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(train.Subset(3), 8); err != nil {
		t.Fatal(err)
	}
	im, err := t2c.Convert()
	if err != nil {
		t.Fatal(err)
	}
	if err := t2c.Export(im, t.TempDir(), Format("nope")); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestDeployedModelClassifies(t *testing.T) {
	model, train, test := trainedMobileNet(t)
	// Fake-quant reference accuracy.
	t2c := New(model, DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(train.Subset(8), 16); err != nil {
		t.Fatal(err)
	}
	im, err := t2c.Convert()
	if err != nil {
		t.Fatal(err)
	}
	var agree, total int
	loader := data.NewLoader(test, 16, nil)
	for {
		x, _, ok := loader.Next()
		if !ok {
			break
		}
		ref := model.Forward(x)
		got := im.Forward(x)
		n, c := ref.Shape[0], ref.Shape[1]
		for i := 0; i < n; i++ {
			ri := tensor.FromSlice(ref.Data[i*c:(i+1)*c], c).Argmax()
			gi := tensor.FromSlice(got.Data[i*c:(i+1)*c], c).Argmax()
			if ri == gi {
				agree++
			}
			total++
		}
	}
	if float64(agree) < 0.9*float64(total) {
		t.Fatalf("deploy/fake-quant agreement %d/%d below 90%%", agree, total)
	}
}

func TestSummaryListsTensors(t *testing.T) {
	model, train, _ := trainedMobileNet(t)
	t2c := New(model, DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(train.Subset(3), 8); err != nil {
		t.Fatal(err)
	}
	im, err := t2c.Convert()
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(im)
	if !strings.Contains(s, "conv.weight") || !strings.Contains(s, "deployed size") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}
