// Package core is the top level of the toolkit: it wires the
// user-customized quantizers, the trainer selection, the automatic fusion,
// and the parameter extraction into the paper's five-line workflow:
//
//	t2c := core.New(model, cfg)
//	t2c.Prepare()                               // swap in dual-path layers
//	t2c.Calibrate(calibSet, batch)              // observers + logit range
//	im, err := t2c.Convert()                    // integer-only deploy model
//	err = t2c.Export(im, dir, core.FormatHex, core.FormatJSON)
//
// Training (QAT / PTQ / sparse / SSL) happens between Prepare and
// Calibrate using the trainers in internal/train.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/fuse"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// Format names an export output format (Figure 5).
type Format string

// Supported export formats.
const (
	FormatHex  Format = "hex"  // $readmemh text
	FormatBin  Format = "bin"  // $readmemb text
	FormatRaw  Format = "raw"  // packed little-endian binary
	FormatJSON Format = "json" // integer checkpoint
)

// Config collects the end-to-end settings.
type Config struct {
	Quant quant.Config
	Fuse  fuse.Options
	// OutBits is the logit quantizer precision (12-bit default keeps the
	// final rescale inside the INT16 fixed-point range).
	OutBits int
}

// DefaultConfig returns the paper's INT16(12,4) deployment recipe with
// 8-bit MinMax quantization.
func DefaultConfig() Config {
	return Config{
		Quant: quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true},
		Fuse:  fuse.DefaultOptions(),
	}
}

// T2C is the compilation pipeline around one model.
type T2C struct {
	Model nn.Layer
	Cfg   Config
	OutQ  *quant.MinMax

	prepared   bool
	calibrated bool
}

// New wraps a model.
func New(model nn.Layer, cfg Config) *T2C {
	if cfg.OutBits == 0 {
		cfg.OutBits = 12
	}
	return &T2C{Model: model, Cfg: cfg, OutQ: quant.NewMinMax(cfg.OutBits, true, false)}
}

// Prepare swaps vanilla layers for dual-path quantized layers.
func (t *T2C) Prepare() {
	quant.Prepare(t.Model, t.Cfg.Quant)
	t.prepared = true
}

// Calibrate runs calibration batches through the training path with
// observers enabled, observes the logit range, then freezes all
// observers. The model is left in eval mode.
func (t *T2C) Calibrate(calib *data.Dataset, batch int) error {
	if !t.prepared {
		return fmt.Errorf("core: Calibrate before Prepare")
	}
	nn.SetTraining(t.Model, false)
	quant.SetCalibrating(t.Model, true)
	loader := data.NewLoader(calib, batch, nil)
	for {
		x, _, ok := loader.Next()
		if !ok {
			break
		}
		t.OutQ.Observe(t.Model.Forward(x))
	}
	quant.SetCalibrating(t.Model, false)
	t.calibrated = true
	return nil
}

// Convert fuses normalization into MulQuant modules and lowers the model
// to the integer-only deploy pipeline.
func (t *T2C) Convert() (*fuse.IntModel, error) {
	if !t.calibrated {
		return nil, fmt.Errorf("core: Convert before Calibrate")
	}
	opts := t.Cfg.Fuse
	opts.OutQuant = t.OutQ.Base()
	return fuse.Convert(t.Model, opts)
}

// Compiled pairs the interpreter-form deploy model (the parity oracle)
// with its compiled graph program (the serving artifact) and what the
// fusion pass did to it (zero-valued when compiled at OptNone).
type Compiled struct {
	Int    *fuse.IntModel
	Prog   *engine.Program
	Fusion engine.FusionStats
}

// Compile converts the model, lowers the result into the engine's graph
// IR, and runs the fusion pass — the deploy artifact the serving runtime
// and the checkpoint's program section are built from. Fusion preserves
// bit-identity with the interpreter, so the optimized program remains
// checkable against cm.Int.
func (t *T2C) Compile() (*Compiled, error) {
	return t.CompileAt(engine.OptFuse)
}

// CompileAt is Compile with an explicit optimization level (OptNone
// reproduces the unfused PR-1 artifact, e.g. for baselines).
func (t *T2C) CompileAt(lvl engine.OptLevel) (*Compiled, error) {
	im, err := t.Convert()
	if err != nil {
		return nil, err
	}
	prog, err := engine.Lower(im)
	if err != nil {
		return nil, err
	}
	cm := &Compiled{Int: im, Prog: prog}
	if lvl > engine.OptNone {
		cm.Prog, cm.Fusion = engine.OptimizeStats(prog, lvl)
	}
	return cm, nil
}

// widthsFor assigns export widths: weights carry the configured weight
// precision, scaler scales are INT16, scaler biases INT32.
func (t *T2C) widthsFor(names map[string]*tensor.IntTensor) map[string]int {
	w := map[string]int{}
	for name := range names {
		switch {
		case strings.HasSuffix(name, "scaler.scale"):
			w[name] = 16
		case strings.HasSuffix(name, "scaler.bias"):
			w[name] = 32
		case strings.HasSuffix(name, ".poscls"):
			// Positional/class embedding codes live at the 16-bit
			// embedding scale, not the weight precision.
			w[name] = 16
		default:
			w[name] = t.Cfg.Quant.WBits
		}
	}
	return w
}

// Export writes the integer model parameters to dir in the requested
// formats. Hex/bin/raw produce one file per tensor; json produces a
// single checkpoint file that also carries the compiled program section
// (the serialized graph IR), so the checkpoint alone reconstructs a
// servable engine.Program.
func (t *T2C) Export(im *fuse.IntModel, dir string, formats ...Format) error {
	return t.exportWith(im, nil, dir, formats...)
}

// ExportCompiled is Export for an already-compiled model: the JSON
// checkpoint embeds cm.Prog instead of lowering cm.Int a second time, so
// the exported program is the exact artifact the caller planned/served.
func (t *T2C) ExportCompiled(cm *Compiled, dir string, formats ...Format) error {
	return t.exportWith(cm.Int, cm.Prog, dir, formats...)
}

func (t *T2C) exportWith(im *fuse.IntModel, prog *engine.Program, dir string, formats ...Format) error {
	tensors := im.IntTensors()
	widths := t.widthsFor(tensors)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range formats {
		switch f {
		case FormatJSON:
			if prog == nil {
				var err error
				prog, err = engine.Lower(im)
				if err != nil {
					return err
				}
			}
			fp, err := os.Create(filepath.Join(dir, "model_int.json"))
			if err != nil {
				return err
			}
			ck := export.NewCheckpoint(tensors, widths)
			ck.Program = prog.Spec()
			err = ck.WriteJSON(fp)
			cerr := fp.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		case FormatHex, FormatBin, FormatRaw:
			for name, tt := range tensors {
				fn := strings.ReplaceAll(name, "/", "_") + "." + string(f)
				fp, err := os.Create(filepath.Join(dir, fn))
				if err != nil {
					return err
				}
				switch f {
				case FormatHex:
					err = export.WriteHex(fp, tt, widths[name])
				case FormatBin:
					err = export.WriteBin(fp, tt, widths[name])
				case FormatRaw:
					err = export.WriteRaw(fp, tt, widths[name])
				}
				cerr := fp.Close()
				if err != nil {
					return err
				}
				if cerr != nil {
					return cerr
				}
			}
		default:
			return fmt.Errorf("core: unknown export format %q", f)
		}
	}
	return nil
}

// Summary reports the compiled model inventory: tensor names, shapes, and
// deployed size, for logging and the CLI.
func Summary(im *fuse.IntModel) string {
	var sb strings.Builder
	ts := im.IntTensors()
	names := make([]string, 0, len(ts))
	for n := range ts {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%-40s %v\n", n, ts[n].Shape)
	}
	fmt.Fprintf(&sb, "deployed size: %d bytes\n", im.SizeBytes())
	return sb.String()
}

func sortStrings(s []string) {
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}
