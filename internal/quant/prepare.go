package quant

import (
	"fmt"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// Config selects the quantization recipe applied by Prepare. The weight
// and activation methods are user-customizable names resolved through the
// quantizer registry, mirroring the paper's hierarchical customization:
// any Quantizer implementation can be registered and swapped in.
type Config struct {
	WBits, ABits int
	// Weight / Act name the quantizer methods, e.g. "minmax", "sawb",
	// "rcf", "lsq", "adaround" (weights) and "minmax", "pact", "rcf",
	// "lsq", "qdrop" (activations).
	Weight string
	Act    string
	// PerChannel enables per-output-channel weight scales (required for
	// the sub-8-bit channel-wise fusion scheme).
	PerChannel bool
	// DropProb is the QDrop passthrough probability.
	DropProb float32
	// RNG drives stochastic quantizers (QDrop).
	RNG *tensor.RNG
}

// WeightFactory and ActFactory construct quantizers from a Config; custom
// algorithms register here.
type (
	WeightFactory func(c Config) Quantizer
	ActFactory    func(c Config) Quantizer
)

var weightRegistry = map[string]WeightFactory{}
var actRegistry = map[string]ActFactory{}

// RegisterWeight adds a custom weight quantizer method.
func RegisterWeight(name string, f WeightFactory) { weightRegistry[name] = f }

// RegisterAct adds a custom activation quantizer method.
func RegisterAct(name string, f ActFactory) { actRegistry[name] = f }

func init() {
	RegisterWeight("minmax", func(c Config) Quantizer { return NewMinMax(c.WBits, true, c.PerChannel) })
	RegisterWeight("sawb", func(c Config) Quantizer { return NewSAWB(c.WBits, c.PerChannel) })
	RegisterWeight("rcf", func(c Config) Quantizer { return NewRCF(c.WBits, true, 1.0) })
	RegisterWeight("lsq", func(c Config) Quantizer { return NewLSQ(c.WBits, true) })
	RegisterWeight("adaround", func(c Config) Quantizer { return NewAdaRound(c.WBits, c.PerChannel) })

	RegisterAct("minmax", func(c Config) Quantizer { return NewMinMax(c.ABits, false, false) })
	RegisterAct("minmax_signed", func(c Config) Quantizer { return NewMinMax(c.ABits, true, false) })
	RegisterAct("pact", func(c Config) Quantizer { return NewPACT(c.ABits, 3.0) })
	RegisterAct("rcf", func(c Config) Quantizer { return NewRCF(c.ABits, false, 6.0) })
	RegisterAct("lsq", func(c Config) Quantizer { return NewLSQ(c.ABits, false) })
	RegisterAct("qdrop", func(c Config) Quantizer {
		rng := c.RNG
		if rng == nil {
			rng = tensor.NewRNG(0)
		}
		p := c.DropProb
		if p == 0 {
			p = 0.5
		}
		return NewQDrop(c.ABits, false, p, rng)
	})
}

// NewWeightQuantizer resolves the configured weight method.
func (c Config) NewWeightQuantizer() Quantizer {
	f, ok := weightRegistry[c.Weight]
	if !ok {
		panic(fmt.Sprintf("quant: unknown weight quantizer %q", c.Weight))
	}
	return f(c)
}

// NewActQuantizer resolves the configured activation method.
func (c Config) NewActQuantizer() Quantizer {
	f, ok := actRegistry[c.Act]
	if !ok {
		panic(fmt.Sprintf("quant: unknown activation quantizer %q", c.Act))
	}
	return f(c)
}

// signedActQuantizer builds an activation quantizer for signed tensors
// (attention operands can be negative); falls back to a signed MinMax when
// the configured method is unsigned-only.
func (c Config) signedActQuantizer() Quantizer {
	switch c.Act {
	case "lsq":
		return NewLSQ(c.ABits, true)
	default:
		return NewMinMax(c.ABits, true, false)
	}
}

// Prepare rewrites a model in place, replacing every nn.Conv2d, nn.Linear,
// and nn.MultiHeadAttention with its dual-path quantized counterpart. It
// returns the same root for chaining. This is the paper's "vanilla →
// custom" conversion; fuse.Convert later performs "custom → vanilla".
func Prepare(root nn.Layer, cfg Config) nn.Layer {
	switch l := root.(type) {
	case *nn.Sequential:
		for i, sub := range l.Layers {
			l.Layers[i] = Prepare(sub, cfg)
		}
	case *nn.Residual:
		l.Body = Prepare(l.Body, cfg)
		l.Shortcut = Prepare(l.Shortcut, cfg)
	case *nn.Conv2d:
		return NewQConv2d(l, cfg.NewWeightQuantizer(), cfg.NewActQuantizer())
	case *nn.Linear:
		return NewQLinear(l, cfg.NewWeightQuantizer(), cfg.NewActQuantizer())
	case *nn.GELU:
		return NewQGELU(l, cfg.signedActQuantizer())
	case *nn.MultiHeadAttention:
		return PrepareAttention(l, cfg)
	default:
		if rw, ok := root.(nn.Rewirer); ok {
			rw.Rewire(func(sub nn.Layer) nn.Layer { return Prepare(sub, cfg) })
		}
	}
	return root
}

// QAttention wraps an MHA whose projections are QLinear and whose two
// matmuls run through QMatMul, matching Figure 4's training graph. The
// base MHA forward/backward are reused unchanged: the projections are
// swapped for dual-path quantized linears and the two inner matmuls are
// intercepted by the quantized hooks.
type QAttention struct {
	*nn.MultiHeadAttention
	QK *QMatMul
	AV *QMatMul
	// The projections, retained with concrete types for fusion/extraction.
	QProj, KProj, VProj, OProj *QLinear
}

// PrepareAttention converts an MHA block in place.
func PrepareAttention(m *nn.MultiHeadAttention, cfg Config) *QAttention {
	qa := &QAttention{MultiHeadAttention: m}
	wrap := func(l nn.Layer) *QLinear {
		return NewQLinear(l.(*nn.Linear), cfg.NewWeightQuantizer(), cfg.signedActQuantizer())
	}
	qa.QProj, qa.KProj, qa.VProj, qa.OProj = wrap(m.Q), wrap(m.K), wrap(m.V), wrap(m.Proj)
	m.Q, m.K, m.V, m.Proj = qa.QProj, qa.KProj, qa.VProj, qa.OProj
	// QKᵀ quantizes two signed operands; attn·V has an unsigned left
	// operand (softmax output in [0,1]).
	qa.QK = NewQMatMul(cfg.signedActQuantizer(), cfg.signedActQuantizer(), true)
	avLeft := NewMinMax(cfg.ABits, false, false)
	qa.AV = NewQMatMul(avLeft, cfg.signedActQuantizer(), false)
	m.MatMulQK = func(q, k *tensor.Tensor) *tensor.Tensor { return qa.QK.Apply(q, k) }
	m.MatMulAV = func(a, v *tensor.Tensor) *tensor.Tensor { return qa.AV.Apply(a, v) }
	return qa
}

// SetMode switches the matmul hooks; the projections are reached through
// Children by SetMode's walk.
func (qa *QAttention) SetMode(m Mode) {
	qa.QK.SetMode(m)
	qa.AV.SetMode(m)
}

// SetCalibrating toggles the matmul observers.
func (qa *QAttention) SetCalibrating(c bool) {
	qa.QK.SetCalibrating(c)
	qa.AV.SetCalibrating(c)
}

// QGELU wraps a GELU with a signed activation observer on its input.
// The training path fake-quantizes the input before the float GELU, so
// calibration registers the activation range the deploy-time integer
// GELU table is built over (fuse.Convert reads AQuant for the table's
// input domain; there is no other observer of the FC1 output).
type QGELU struct {
	G      *nn.GELU
	AQuant Quantizer
}

// NewQGELU wraps a GELU activation.
func NewQGELU(g *nn.GELU, aq Quantizer) *QGELU { return &QGELU{G: g, AQuant: aq} }

// Forward observes/fake-quantizes the input, then applies the float GELU.
func (q *QGELU) Forward(x *tensor.Tensor) *tensor.Tensor {
	return q.G.Forward(q.AQuant.TrainForward(x))
}

// Backward routes the gradient through the GELU and the quantizer STE.
func (q *QGELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return q.AQuant.BackwardInput(q.G.Backward(grad))
}

// Params returns learnable quantizer parameters (empty for MinMax).
func (q *QGELU) Params() []*nn.Param { return q.AQuant.Params() }

// SetCalibrating toggles the input observer.
func (q *QGELU) SetCalibrating(c bool) { q.AQuant.Base().Calibrating = c }

// Walk visits every layer in the tree, leaves included, calling fn.
func Walk(root nn.Layer, fn func(nn.Layer)) {
	fn(root)
	if c, ok := root.(nn.Container); ok {
		for _, sub := range c.Children() {
			Walk(sub, fn)
		}
	}
}

// QuantizedLayers collects all dual-path leaf layers in the tree.
func QuantizedLayers(root nn.Layer) (convs []*QConv2d, lins []*QLinear, attns []*QAttention) {
	Walk(root, func(l nn.Layer) {
		switch v := l.(type) {
		case *QConv2d:
			convs = append(convs, v)
		case *QLinear:
			lins = append(lins, v)
		case *QAttention:
			attns = append(attns, v)
		}
	})
	return convs, lins, attns
}
