package quant

import (
	"math"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// ---------------------------------------------------------------------------
// MinMax: observer-based uniform quantizer (PTQ). This is the behaviour of
// OpenVINO's default MinMax calibration and of the PyTorch eager-mode
// observer: the scale follows the (EMA of the) observed min/max range.
// ---------------------------------------------------------------------------

// MinMax quantizes with a scale derived from observed extrema. Symmetric
// for signed data, affine (with zero point) for unsigned data.
type MinMax struct {
	*QBase
	// EMA smoothing for activation observers; 1 means "last batch wins".
	Momentum float32
	lo, hi   float32
	seen     bool
	mask     []bool
}

// NewMinMax builds a MinMax quantizer.
func NewMinMax(nbits int, signed, perChannel bool) *MinMax {
	validateBits(nbits)
	return &MinMax{QBase: NewQBase(nbits, signed, perChannel), Momentum: 0.9}
}

// Observe updates the tracked range and recomputes scale/zero.
func (m *MinMax) Observe(x *tensor.Tensor) {
	if m.PerChannel {
		m.observePerChannel(x)
		return
	}
	lo, hi := x.Min(), x.Max()
	if !m.seen {
		m.lo, m.hi = lo, hi
		m.seen = true
	} else {
		m.lo = m.Momentum*m.lo + (1-m.Momentum)*lo
		m.hi = m.Momentum*m.hi + (1-m.Momentum)*hi
	}
	m.recompute()
}

func (m *MinMax) observePerChannel(x *tensor.Tensor) {
	ch := x.Shape[0]
	chSize := len(x.Data) / ch
	scale := make([]float32, ch)
	zero := make([]int64, ch)
	for c := 0; c < ch; c++ {
		seg := x.Data[c*chSize : (c+1)*chSize]
		var amax float32
		for _, v := range seg {
			if v < 0 {
				v = -v
			}
			if v > amax {
				amax = v
			}
		}
		scale[c] = symmetricScale(amax, m.NBits)
		zero[c] = 0
	}
	m.SetScale(scale, zero)
}

func (m *MinMax) recompute() {
	if m.Signed {
		amax := m.hi
		if -m.lo > amax {
			amax = -m.lo
		}
		m.SetScale([]float32{symmetricScale(amax, m.NBits)}, []int64{0})
		return
	}
	// Affine unsigned: scale = (hi-lo)/(2^n-1), zero = round(-lo/scale).
	lo := m.lo
	if lo > 0 {
		lo = 0
	}
	hi := m.hi
	if hi < lo+1e-8 {
		hi = lo + 1e-8
	}
	s := (hi - lo) / float32(m.QMax())
	z := int64(math.Round(float64(-lo / s)))
	m.SetScale([]float32{s}, []int64{z})
}

// symmetricScale returns amax / qmax with a floor to avoid zero scales.
func symmetricScale(amax float32, nbits int) float32 {
	qmax := float32(int64(1)<<(nbits-1) - 1)
	if amax < 1e-8 {
		amax = 1e-8
	}
	return amax / qmax
}

// TrainForward observes (when calibrating) and fake-quantizes.
func (m *MinMax) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	if m.Calibrating {
		m.Observe(x)
	}
	out, mask := m.FakeQuant(x)
	m.mask = mask
	return out
}

// BackwardInput is the straight-through estimator gated to the clip range.
func (m *MinMax) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	return steGate(grad, m.mask)
}

// Params returns no learnable parameters.
func (m *MinMax) Params() []*nn.Param { return nil }

func steGate(grad *tensor.Tensor, mask []bool) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if mask == nil || mask[i] {
			out.Data[i] = g
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// SAWB: statistics-aware weight binning (Choi et al., 2019). The optimal
// symmetric clip is a closed form of the first and second moments of the
// weight distribution; coefficients depend on bit-width.
// ---------------------------------------------------------------------------

// SAWB is a weight quantizer whose clipping threshold is computed from
// weight statistics at every training-path call.
type SAWB struct {
	*QBase
	mask []bool
}

// sawbCoef maps bit-width to (c1, c2) in alpha* = c1·sqrt(E[w²]) − c2·E[|w|].
var sawbCoef = map[int][2]float32{
	2: {3.12, 2.064},
	3: {7.877, 6.205},
	4: {12.68, 12.80},
	8: {31.76, 35.04},
}

// NewSAWB builds a SAWB weight quantizer.
func NewSAWB(nbits int, perChannel bool) *SAWB {
	validateBits(nbits)
	return &SAWB{QBase: NewQBase(nbits, true, perChannel)}
}

func (s *SAWB) clip(data []float32) float32 {
	var e1, e2 float64
	for _, v := range data {
		a := float64(v)
		if a < 0 {
			a = -a
		}
		e1 += a
		e2 += a * a
	}
	n := float64(len(data))
	e1 /= n
	e2 /= n
	co, ok := sawbCoef[s.NBits]
	if !ok {
		// Fallback: 3σ clipping for uncommon widths.
		return float32(3 * math.Sqrt(e2))
	}
	alpha := float64(co[0])*math.Sqrt(e2) - float64(co[1])*e1
	// The closed form assumes Gaussian statistics over many weights; on
	// tiny groups (per-channel depthwise kernels have 9 entries) the two
	// moments nearly cancel and the clip degenerates. Floor it at the
	// RMS, which the closed form always exceeds for healthy statistics.
	if rms := math.Sqrt(e2); alpha < rms {
		alpha = rms
	}
	return float32(alpha)
}

// TrainForward recomputes the statistics-aware clip and fake-quantizes.
func (s *SAWB) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	if s.Calibrating {
		if s.PerChannel {
			ch := x.Shape[0]
			chSize := len(x.Data) / ch
			scale := make([]float32, ch)
			zero := make([]int64, ch)
			for c := 0; c < ch; c++ {
				scale[c] = symmetricScale(s.clip(x.Data[c*chSize:(c+1)*chSize]), s.NBits)
			}
			s.SetScale(scale, zero)
		} else {
			s.SetScale([]float32{symmetricScale(s.clip(x.Data), s.NBits)}, []int64{0})
		}
	}
	out, mask := s.FakeQuant(x)
	s.mask = mask
	return out
}

// BackwardInput applies the straight-through estimator.
func (s *SAWB) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	return steGate(grad, s.mask)
}

// Params returns no learnable parameters.
func (s *SAWB) Params() []*nn.Param { return nil }

// ---------------------------------------------------------------------------
// PACT: parameterized clipping activation (Choi et al., 2019 companion).
// The unsigned clip alpha is learned with the task loss: dL/dalpha receives
// the upstream gradient wherever the activation saturated.
// ---------------------------------------------------------------------------

// PACT is an activation quantizer with a learnable clipping threshold.
type PACT struct {
	*QBase
	Alpha *nn.Param
	inZ   *tensor.Tensor
}

// NewPACT builds a PACT activation quantizer with initial clip alpha0.
func NewPACT(nbits int, alpha0 float32) *PACT {
	validateBits(nbits)
	p := &PACT{QBase: NewQBase(nbits, false, false)}
	p.Alpha = nn.NewParam("pact.alpha", tensor.FromSlice([]float32{alpha0}, 1))
	p.Alpha.NoDecay = false // PACT regularizes alpha with L2 decay
	return p
}

// TrainForward clips to [0, alpha] and fake-quantizes with scale alpha/qmax.
// The learnable clip is kept inside [0.05, 20] — the saturated-gradient
// update can otherwise run the clip to zero in a handful of steps on
// short schedules, collapsing every activation to the same code.
func (p *PACT) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	p.inZ = x
	if p.Alpha.Data.Data[0] < 0.05 {
		p.Alpha.Data.Data[0] = 0.05
	}
	if p.Alpha.Data.Data[0] > 20 {
		p.Alpha.Data.Data[0] = 20
	}
	alpha := p.Alpha.Data.Data[0]
	s := alpha / float32(p.QMax())
	p.SetScale([]float32{s}, []int64{0})
	out, _ := p.FakeQuant(tensor.Clamp(x, 0, alpha))
	return out
}

// BackwardInput routes gradient: pass-through on (0, alpha), alpha gets the
// saturated gradient mass.
func (p *PACT) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	alpha := p.Alpha.Data.Data[0]
	out := tensor.New(grad.Shape...)
	var ga float64
	for i, g := range grad.Data {
		v := p.inZ.Data[i]
		switch {
		case v <= 0:
			// no gradient
		case v >= alpha:
			ga += float64(g)
		default:
			out.Data[i] = g
		}
	}
	p.Alpha.Grad.Data[0] += float32(ga)
	return out
}

// Params exposes alpha to the optimizer.
func (p *PACT) Params() []*nn.Param { return []*nn.Param{p.Alpha} }

// ---------------------------------------------------------------------------
// RCF: reinforced/learnable clipping for QAT of weights and activations
// (following the clipping-function formulation of the additive
// powers-of-two work, Li et al. 2020). Both the signed weight clip and the
// unsigned activation clip are trained with straight-through gradients,
// which keeps the integer mapping uniform and therefore hardware-exact.
// ---------------------------------------------------------------------------

// RCF is a symmetric quantizer with a learnable clipping threshold usable
// for weights (signed) and activations (unsigned).
type RCF struct {
	*QBase
	Alpha *nn.Param
	inZ   *tensor.Tensor
}

// NewRCF builds an RCF quantizer.
func NewRCF(nbits int, signed bool, alpha0 float32) *RCF {
	validateBits(nbits)
	r := &RCF{QBase: NewQBase(nbits, signed, false)}
	r.Alpha = nn.NewParam("rcf.alpha", tensor.FromSlice([]float32{alpha0}, 1))
	r.Alpha.NoDecay = true
	return r
}

// TrainForward clips to ±alpha (or [0,alpha]) and fake-quantizes, with
// the same clip-range guard as PACT.
func (r *RCF) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	r.inZ = x
	if r.Alpha.Data.Data[0] < 0.05 {
		r.Alpha.Data.Data[0] = 0.05
	}
	if r.Alpha.Data.Data[0] > 20 {
		r.Alpha.Data.Data[0] = 20
	}
	alpha := r.Alpha.Data.Data[0]
	s := alpha / float32(r.QMax())
	r.SetScale([]float32{s}, []int64{0})
	lo := float32(0)
	if r.Signed {
		lo = -alpha
	}
	out, _ := r.FakeQuant(tensor.Clamp(x, lo, alpha))
	return out
}

// BackwardInput passes gradient inside the clip range and accumulates the
// clip-boundary gradient into alpha (±1 at the saturated tails).
func (r *RCF) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	alpha := r.Alpha.Data.Data[0]
	out := tensor.New(grad.Shape...)
	var ga float64
	lo := float32(0)
	if r.Signed {
		lo = -alpha
	}
	for i, g := range grad.Data {
		v := r.inZ.Data[i]
		switch {
		case v >= alpha:
			ga += float64(g)
		case v <= lo:
			if r.Signed {
				ga -= float64(g)
			}
		default:
			out.Data[i] = g
		}
	}
	r.Alpha.Grad.Data[0] += float32(ga)
	return out
}

// Params exposes alpha.
func (r *RCF) Params() []*nn.Param { return []*nn.Param{r.Alpha} }

// ---------------------------------------------------------------------------
// LSQ: learned step size quantization (Esser et al.). The scale itself is
// the learnable parameter, with the canonical gradient and a 1/sqrt(N·qmax)
// gradient scale for stability.
// ---------------------------------------------------------------------------

// LSQ learns the quantization step directly.
type LSQ struct {
	*QBase
	Step *nn.Param
	inZ  *tensor.Tensor
	init bool
}

// NewLSQ builds an LSQ quantizer.
func NewLSQ(nbits int, signed bool) *LSQ {
	validateBits(nbits)
	l := &LSQ{QBase: NewQBase(nbits, signed, false)}
	l.Step = nn.NewParam("lsq.step", tensor.FromSlice([]float32{0.1}, 1))
	l.Step.NoDecay = true
	return l
}

// TrainForward fake-quantizes with the learned step, initializing it from
// the first batch statistics (2·E|x|/sqrt(qmax), the LSQ heuristic).
func (l *LSQ) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	l.inZ = x
	if !l.init {
		var e1 float64
		for _, v := range x.Data {
			if v < 0 {
				v = -v
			}
			e1 += float64(v)
		}
		e1 /= float64(len(x.Data))
		s := float32(2 * e1 / math.Sqrt(float64(l.QMax())))
		if s < 1e-6 {
			s = 1e-6
		}
		l.Step.Data.Data[0] = s
		l.init = true
	}
	s := l.Step.Data.Data[0]
	if s < 1e-6 {
		s = 1e-6
	}
	l.SetScale([]float32{s}, []int64{0})
	out, _ := l.FakeQuant(x)
	return out
}

// BackwardInput computes both the STE input gradient and the step-size
// gradient.
func (l *LSQ) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	s := l.Step.Data.Data[0]
	if s < 1e-6 {
		s = 1e-6
	}
	qmin, qmax := float64(l.QMin()), float64(l.QMax())
	gscale := 1 / math.Sqrt(float64(len(l.inZ.Data))*qmax)
	out := tensor.New(grad.Shape...)
	var gs float64
	for i, g := range grad.Data {
		v := float64(l.inZ.Data[i]) / float64(s)
		switch {
		case v <= qmin:
			gs += float64(g) * qmin
		case v >= qmax:
			gs += float64(g) * qmax
		default:
			out.Data[i] = g
			gs += float64(g) * (math.Round(v) - v)
		}
	}
	l.Step.Grad.Data[0] += float32(gs * gscale)
	return out
}

// Params exposes the step.
func (l *LSQ) Params() []*nn.Param { return []*nn.Param{l.Step} }

// ---------------------------------------------------------------------------
// AdaRound: adaptive rounding for PTQ (Nagel et al., 2020). Rounding is
// learned per weight through a rectified-sigmoid offset h(V) added to the
// floor of W/S; at inference the offset hardens to {0,1} by sign(V)
// (Eq. 5–6 of the paper).
// ---------------------------------------------------------------------------

// AdaRound is a PTQ weight quantizer with learnable rounding.
type AdaRound struct {
	*QBase
	V     *nn.Param // rounding logits, same shape as the weight
	wRef  *tensor.Tensor
	Beta  float32 // regularizer sharpness
	ready bool
}

// NewAdaRound builds an AdaRound quantizer; scale comes from the weight's
// absolute maximum (per-channel optional).
func NewAdaRound(nbits int, perChannel bool) *AdaRound {
	validateBits(nbits)
	return &AdaRound{QBase: NewQBase(nbits, true, perChannel), Beta: 2}
}

// rectified sigmoid: h(v) = clip(sigmoid(v)·1.2 − 0.1, 0, 1)
func rectSigmoid(v float32) float32 {
	h := float32(1/(1+math.Exp(-float64(v))))*1.2 - 0.1
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// attach initializes V so that soft rounding starts at nearest rounding.
func (a *AdaRound) attach(w *tensor.Tensor) {
	a.wRef = w
	if a.PerChannel {
		ch := w.Shape[0]
		chSize := len(w.Data) / ch
		scale := make([]float32, ch)
		zero := make([]int64, ch)
		for c := 0; c < ch; c++ {
			var amax float32
			for _, v := range w.Data[c*chSize : (c+1)*chSize] {
				if v < 0 {
					v = -v
				}
				if v > amax {
					amax = v
				}
			}
			scale[c] = symmetricScale(amax, a.NBits)
		}
		a.SetScale(scale, zero)
	} else {
		a.SetScale([]float32{symmetricScale(w.AbsMax(), a.NBits)}, []int64{0})
	}
	v := tensor.New(w.Shape...)
	chSize := perChannelSize(w, a.QBase)
	for i, wv := range w.Data {
		s, _ := a.scaleFor(i, chSize)
		frac := float64(wv/s) - math.Floor(float64(wv/s))
		// invert rect-sigmoid so h(V)=frac
		p := (frac + 0.1) / 1.2
		if p < 1e-4 {
			p = 1e-4
		}
		if p > 1-1e-4 {
			p = 1 - 1e-4
		}
		v.Data[i] = float32(-math.Log(1/p - 1))
	}
	a.V = nn.NewParam("adaround.v", v)
	a.V.NoDecay = true
	a.ready = true
}

// TrainForward returns the soft-rounded fake-quantized weight
// floor(W/S)+h(V), clamped and rescaled.
func (a *AdaRound) TrainForward(w *tensor.Tensor) *tensor.Tensor {
	if !a.ready {
		a.attach(w)
	}
	out := tensor.New(w.Shape...)
	chSize := perChannelSize(w, a.QBase)
	qmin, qmax := float32(a.QMin()), float32(a.QMax())
	for i, wv := range w.Data {
		s, _ := a.scaleFor(i, chSize)
		c := float32(math.Floor(float64(wv/s))) + rectSigmoid(a.V.Data.Data[i])
		if c < qmin {
			c = qmin
		}
		if c > qmax {
			c = qmax
		}
		out.Data[i] = c * s
	}
	return out
}

// BackwardInput routes the weight gradient to the rounding logits via the
// rectified-sigmoid derivative and passes STE to the weight.
func (a *AdaRound) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	chSize := perChannelSize(a.wRef, a.QBase)
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		s, _ := a.scaleFor(i, chSize)
		v := a.V.Data.Data[i]
		sig := float32(1 / (1 + math.Exp(-float64(v))))
		h := sig*1.2 - 0.1
		if h > 0 && h < 1 {
			a.V.Grad.Data[i] += g * s * 1.2 * sig * (1 - sig)
		}
		out.Data[i] = g
	}
	return out
}

// RegLoss returns the rounding regularizer Σ 1−|2h−1|^β that anneals soft
// rounding to binary, and accumulates its gradient into V.
func (a *AdaRound) RegLoss(weight float32) float32 {
	if !a.ready {
		return 0
	}
	var loss float64
	for i, v := range a.V.Data.Data {
		sig := float32(1 / (1 + math.Exp(-float64(v))))
		h := sig*1.2 - 0.1
		if h < 0 {
			h = 0
		}
		if h > 1 {
			h = 1
		}
		t := math.Abs(float64(2*h - 1))
		loss += 1 - math.Pow(t, float64(a.Beta))
		if h > 0 && h < 1 && t > 0 {
			// d/dh (1-|2h-1|^β) = -β|2h-1|^(β-1)·sign(2h-1)·2
			dh := -float64(a.Beta) * math.Pow(t, float64(a.Beta)-1) * 2
			if 2*h-1 < 0 {
				dh = -dh
			}
			a.V.Grad.Data[i] += weight * float32(dh) * 1.2 * sig * (1 - sig)
		}
	}
	return weight * float32(loss)
}

// Quantize hardens rounding: floor(W/S) + 1{V≥0} (paper Eq. 6).
func (a *AdaRound) Quantize(w *tensor.Tensor) *tensor.IntTensor {
	out := tensor.NewInt(w.Shape...)
	chSize := perChannelSize(w, a.QBase)
	qmin, qmax := a.QMin(), a.QMax()
	for i, wv := range w.Data {
		s, _ := a.scaleFor(i, chSize)
		c := int64(math.Floor(float64(wv / s)))
		if a.ready && a.V.Data.Data[i] >= 0 {
			c++
		}
		if c < qmin {
			c = qmin
		}
		if c > qmax {
			c = qmax
		}
		out.Data[i] = c
	}
	return out
}

// Params exposes the rounding logits.
func (a *AdaRound) Params() []*nn.Param {
	if a.V == nil {
		return nil
	}
	return []*nn.Param{a.V}
}

// ---------------------------------------------------------------------------
// QDrop (Wei et al., 2022): during PTQ reconstruction the activation
// quantization is randomly dropped per element, exposing the optimization
// to a mixture of quantized and clean activations, which flattens the loss
// landscape at very low precision.
// ---------------------------------------------------------------------------

// QDrop is an activation quantizer that randomly bypasses quantization
// during the PTQ training path.
type QDrop struct {
	*MinMax
	// DropProb is the probability an element keeps its float value.
	DropProb float32
	RNG      *tensor.RNG
	drop     []bool
}

// NewQDrop builds a QDrop activation quantizer.
func NewQDrop(nbits int, signed bool, dropProb float32, rng *tensor.RNG) *QDrop {
	return &QDrop{MinMax: NewMinMax(nbits, signed, false), DropProb: dropProb, RNG: rng}
}

// TrainForward quantizes elementwise with random passthrough.
func (q *QDrop) TrainForward(x *tensor.Tensor) *tensor.Tensor {
	if q.Calibrating {
		q.Observe(x)
	}
	fq, mask := q.FakeQuant(x)
	q.mask = mask
	if cap(q.drop) < len(x.Data) {
		q.drop = make([]bool, len(x.Data))
	}
	q.drop = q.drop[:len(x.Data)]
	for i := range x.Data {
		if q.RNG != nil && q.RNG.Float32() < q.DropProb {
			fq.Data[i] = x.Data[i]
			q.drop[i] = true
		} else {
			q.drop[i] = false
		}
	}
	return fq
}

// BackwardInput passes gradient through dropped elements unconditionally
// and through kept elements with the STE gate.
func (q *QDrop) BackwardInput(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if q.drop[i] || q.mask == nil || q.mask[i] {
			out.Data[i] = g
		}
	}
	return out
}
