package quant

import (
	"torch2chip/internal/intmath"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// ModeSetter is implemented by dual-path layers.
type ModeSetter interface{ SetMode(Mode) }

// SetMode recursively switches every dual-path layer in the tree.
func SetMode(l nn.Layer, m Mode) {
	if ms, ok := l.(ModeSetter); ok {
		ms.SetMode(m)
	}
	if c, ok := l.(nn.Container); ok {
		for _, sub := range c.Children() {
			SetMode(sub, m)
		}
	}
}

// CalibSetter toggles observer updates.
type CalibSetter interface{ SetCalibrating(bool) }

// SetCalibrating recursively freezes or unfreezes all observers.
func SetCalibrating(l nn.Layer, c bool) {
	if cs, ok := l.(CalibSetter); ok {
		cs.SetCalibrating(c)
	}
	if ct, ok := l.(nn.Container); ok {
		for _, sub := range ct.Children() {
			SetCalibrating(sub, c)
		}
	}
}

// QConv2d is the dual-path convolution (the paper's _BaseConv2d). The
// training path fake-quantizes weight and input and runs a float
// convolution; the inference path quantizes to integers, runs the
// integer-only convolution, and dequantizes the accumulator with
// S_w·S_x (fusion later replaces this float rescale with MulQuant).
type QConv2d struct {
	Conv   *nn.Conv2d
	WQuant Quantizer
	AQuant Quantizer
	Mode   Mode

	// cached integer weights for the inference path
	wq *tensor.IntTensor

	// training-path caches
	xFQ *tensor.Tensor
	wFQ *tensor.Tensor
}

// NewQConv2d wraps an existing convolution with quantizers.
func NewQConv2d(conv *nn.Conv2d, wq, aq Quantizer) *QConv2d {
	return &QConv2d{Conv: conv, WQuant: wq, AQuant: aq}
}

// SetMode switches paths, invalidating cached integer weights on re-entry
// to training.
func (q *QConv2d) SetMode(m Mode) {
	q.Mode = m
	if m == ModeTrain {
		q.wq = nil
	}
}

// SetCalibrating toggles the quantizer observers.
func (q *QConv2d) SetCalibrating(c bool) {
	q.WQuant.Base().Calibrating = c
	q.AQuant.Base().Calibrating = c
}

// Freeze materializes the integer weights for the inference path.
func (q *QConv2d) Freeze() {
	q.wq = q.WQuant.Quantize(q.Conv.W.Data)
}

// IntWeights returns the frozen integer weights, freezing on demand.
func (q *QConv2d) IntWeights() *tensor.IntTensor {
	if q.wq == nil {
		q.Freeze()
	}
	return q.wq
}

// Forward dispatches on the active path.
func (q *QConv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if q.Mode == ModeInfer {
		return q.inferForward(x)
	}
	q.xFQ = q.AQuant.TrainForward(x)
	q.wFQ = q.WQuant.TrainForward(q.Conv.W.Data)
	var b *tensor.Tensor
	if q.Conv.B != nil {
		b = q.Conv.B.Data
	}
	return tensor.Conv2d(q.xFQ, q.wFQ, b, q.Conv.P)
}

func (q *QConv2d) inferForward(x *tensor.Tensor) *tensor.Tensor {
	wq := q.IntWeights()
	xq := q.AQuant.Quantize(x)
	zx := q.AQuant.Base().Zero[0]
	acc := intmath.Conv2dInt(xq, wq, zx, q.Conv.P)
	// Dequantize: y = acc · S_w(oc) · S_x (+ bias).
	out := tensor.New(acc.Shape...)
	sx := q.AQuant.Base().Scale[0]
	wb := q.WQuant.Base()
	n, o := acc.Shape[0], acc.Shape[1]
	sp := acc.Shape[2] * acc.Shape[3]
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < o; oc++ {
			sw := wb.Scale[0]
			if wb.PerChannel && len(wb.Scale) > 1 {
				sw = wb.Scale[oc]
			}
			s := sw * sx
			var bias float32
			if q.Conv.B != nil {
				bias = q.Conv.B.Data.Data[oc]
			}
			seg := acc.Data[(ni*o+oc)*sp : (ni*o+oc+1)*sp]
			oseg := out.Data[(ni*o+oc)*sp : (ni*o+oc+1)*sp]
			for i, v := range seg {
				oseg[i] = float32(v)*s + bias
			}
		}
	}
	return out
}

// Backward runs the float convolution backward on the fake-quantized
// operands, then routes gradients through the quantizers' straight-through
// estimators into the underlying float weights.
func (q *QConv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.Conv2dBackward(q.xFQ, q.wFQlast(), grad, q.Conv.P)
	gwSTE := q.WQuant.BackwardInput(gw)
	tensor.AddInPlace(q.Conv.W.Grad, gwSTE)
	if q.Conv.B != nil {
		tensor.AddInPlace(q.Conv.B.Grad, gb)
	}
	return q.AQuant.BackwardInput(gx)
}

// wFQlast returns the fake-quantized weights used in the last forward.
func (q *QConv2d) wFQlast() *tensor.Tensor {
	if q.wFQ != nil {
		return q.wFQ
	}
	return q.Conv.W.Data
}

// Params returns the convolution parameters plus learnable quantizer
// parameters (PACT/RCF clip values, LSQ steps, AdaRound logits).
func (q *QConv2d) Params() []*nn.Param {
	ps := q.Conv.Params()
	ps = append(ps, q.WQuant.Params()...)
	return append(ps, q.AQuant.Params()...)
}

// QLinear is the dual-path fully connected layer (_BaseLinear).
type QLinear struct {
	Lin    *nn.Linear
	WQuant Quantizer
	AQuant Quantizer
	Mode   Mode

	wq  *tensor.IntTensor
	xFQ *tensor.Tensor
	wFQ *tensor.Tensor
}

// NewQLinear wraps an existing linear layer.
func NewQLinear(lin *nn.Linear, wq, aq Quantizer) *QLinear {
	return &QLinear{Lin: lin, WQuant: wq, AQuant: aq}
}

// SetMode switches paths.
func (q *QLinear) SetMode(m Mode) {
	q.Mode = m
	if m == ModeTrain {
		q.wq = nil
	}
}

// SetCalibrating toggles observers.
func (q *QLinear) SetCalibrating(c bool) {
	q.WQuant.Base().Calibrating = c
	q.AQuant.Base().Calibrating = c
}

// Freeze materializes integer weights.
func (q *QLinear) Freeze() { q.wq = q.WQuant.Quantize(q.Lin.W.Data) }

// IntWeights returns frozen integer weights.
func (q *QLinear) IntWeights() *tensor.IntTensor {
	if q.wq == nil {
		q.Freeze()
	}
	return q.wq
}

// Forward dispatches on the active path.
func (q *QLinear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if q.Mode == ModeInfer {
		return q.inferForward(x)
	}
	q.xFQ = q.AQuant.TrainForward(x)
	q.wFQ = q.WQuant.TrainForward(q.Lin.W.Data)
	out := tensor.MatMulT(q.xFQ, q.wFQ)
	if q.Lin.B != nil {
		n, o := out.Shape[0], out.Shape[1]
		for i := 0; i < n; i++ {
			row := out.Data[i*o : (i+1)*o]
			for j := range row {
				row[j] += q.Lin.B.Data.Data[j]
			}
		}
	}
	return out
}

func (q *QLinear) inferForward(x *tensor.Tensor) *tensor.Tensor {
	wq := q.IntWeights()
	xq := q.AQuant.Quantize(x)
	zx := q.AQuant.Base().Zero[0]
	if zx != 0 {
		for i := range xq.Data {
			xq.Data[i] -= zx
		}
	}
	acc := intmath.MatMulIntT(xq, wq)
	out := tensor.New(acc.Shape...)
	sx := q.AQuant.Base().Scale[0]
	wb := q.WQuant.Base()
	n, o := acc.Shape[0], acc.Shape[1]
	for i := 0; i < n; i++ {
		for j := 0; j < o; j++ {
			sw := wb.Scale[0]
			if wb.PerChannel && len(wb.Scale) > 1 {
				sw = wb.Scale[j]
			}
			v := float32(acc.Data[i*o+j]) * sw * sx
			if q.Lin.B != nil {
				v += q.Lin.B.Data.Data[j]
			}
			out.Data[i*o+j] = v
		}
	}
	return out
}

// Backward mirrors QConv2d.Backward for the linear layer.
func (q *QLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gw := tensor.MatMul(tensor.Transpose(grad), q.xFQ)
	gwSTE := q.WQuant.BackwardInput(gw)
	tensor.AddInPlace(q.Lin.W.Grad, gwSTE)
	if q.Lin.B != nil {
		tensor.AddInPlace(q.Lin.B.Grad, tensor.SumAxis0(grad))
	}
	gx := tensor.MatMul(grad, q.wFQ)
	return q.AQuant.BackwardInput(gx)
}

// Params returns linear plus quantizer parameters.
func (q *QLinear) Params() []*nn.Param {
	ps := q.Lin.Params()
	ps = append(ps, q.WQuant.Params()...)
	return append(ps, q.AQuant.Params()...)
}

// QMatMul quantizes both operands of a matmul, used for the QKᵀ and
// attn·V products inside integer-only attention (Figure 4).
type QMatMul struct {
	AQuant Quantizer // left operand
	BQuant Quantizer // right operand
	Mode   Mode
	// TransposeB selects A×Bᵀ (QKᵀ) versus A×B (attn·V).
	TransposeB bool
}

// NewQMatMul builds a quantized matmul.
func NewQMatMul(aq, bq Quantizer, transposeB bool) *QMatMul {
	return &QMatMul{AQuant: aq, BQuant: bq, TransposeB: transposeB}
}

// SetMode switches paths.
func (q *QMatMul) SetMode(m Mode) { q.Mode = m }

// SetCalibrating toggles observers.
func (q *QMatMul) SetCalibrating(c bool) {
	q.AQuant.Base().Calibrating = c
	q.BQuant.Base().Calibrating = c
}

// Apply computes the (fake-)quantized product.
func (q *QMatMul) Apply(a, b *tensor.Tensor) *tensor.Tensor {
	if q.Mode == ModeInfer {
		aq := q.AQuant.Quantize(a)
		bq := q.BQuant.Quantize(b)
		za, zb := q.AQuant.Base().Zero[0], q.BQuant.Base().Zero[0]
		for i := range aq.Data {
			aq.Data[i] -= za
		}
		for i := range bq.Data {
			bq.Data[i] -= zb
		}
		var acc *tensor.IntTensor
		if q.TransposeB {
			acc = intmath.MatMulIntT(aq, bq)
		} else {
			acc = intmath.MatMulInt(aq, bq)
		}
		s := q.AQuant.Base().Scale[0] * q.BQuant.Base().Scale[0]
		out := tensor.New(acc.Shape...)
		for i, v := range acc.Data {
			out.Data[i] = float32(v) * s
		}
		return out
	}
	afq := q.AQuant.TrainForward(a)
	bfq := q.BQuant.TrainForward(b)
	if q.TransposeB {
		return tensor.MatMulT(afq, bfq)
	}
	return tensor.MatMul(afq, bfq)
}
