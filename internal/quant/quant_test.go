package quant

import (
	"math"
	"testing"
	"testing/quick"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

func TestQBaseRange(t *testing.T) {
	q := NewQBase(4, true, false)
	if q.QMin() != -8 || q.QMax() != 7 {
		t.Fatalf("signed 4-bit range [%d,%d]", q.QMin(), q.QMax())
	}
	u := NewQBase(8, false, false)
	if u.QMin() != 0 || u.QMax() != 255 {
		t.Fatalf("unsigned 8-bit range [%d,%d]", u.QMin(), u.QMax())
	}
}

func TestQuantizeDequantizeBound(t *testing.T) {
	// Property: every quantized code is in range, and dequantization error
	// is at most scale/2 for in-range values.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		x := g.Randn(1, 64)
		q := NewQBase(6, true, false)
		q.SetScale([]float32{x.AbsMax() / float32(q.QMax())}, []int64{0})
		codes := q.Quantize(x)
		mn, mx := codes.MinMax()
		if mn < q.QMin() || mx > q.QMax() {
			return false
		}
		deq := q.Dequantize(codes)
		s := q.Scale[0]
		for i := range x.Data {
			d := float64(x.Data[i] - deq.Data[i])
			if math.Abs(d) > float64(s)/2+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFakeQuantMatchesQuantDequant(t *testing.T) {
	g := tensor.NewRNG(1)
	x := g.Randn(1, 32)
	q := NewQBase(4, true, false)
	q.SetScale([]float32{0.1}, []int64{0})
	fq, _ := q.FakeQuant(x)
	ref := q.Dequantize(q.Quantize(x))
	if !tensor.AllClose(fq, ref, 1e-6, 1e-6) {
		t.Fatal("FakeQuant must equal Dequantize∘Quantize")
	}
}

func TestMinMaxSymmetricScale(t *testing.T) {
	m := NewMinMax(8, true, false)
	x := tensor.FromSlice([]float32{-2, 1, 0.5}, 3)
	m.Observe(x)
	want := 2.0 / 127
	if math.Abs(float64(m.Scale[0])-want) > 1e-6 {
		t.Fatalf("scale %v want %v", m.Scale[0], want)
	}
	if m.Zero[0] != 0 {
		t.Fatal("symmetric must have zero zero-point")
	}
}

func TestMinMaxAffineUnsigned(t *testing.T) {
	m := NewMinMax(8, false, false)
	x := tensor.FromSlice([]float32{0, 1, 2, 3}, 4)
	m.Observe(x)
	codes := m.Quantize(x)
	deq := m.Dequantize(codes)
	if tensor.MaxAbsDiff(x, deq) > m.Scale[0] {
		t.Fatalf("affine round-trip error %v > scale %v", tensor.MaxAbsDiff(x, deq), m.Scale[0])
	}
}

func TestMinMaxPerChannel(t *testing.T) {
	m := NewMinMax(8, true, true)
	// Channel 0 small, channel 1 large: scales must differ.
	x := tensor.New(2, 4)
	for i := 0; i < 4; i++ {
		x.Data[i] = 0.01 * float32(i)
		x.Data[4+i] = 10 * float32(i)
	}
	m.Observe(x)
	if len(m.Scale) != 2 || m.Scale[0] >= m.Scale[1] {
		t.Fatalf("per-channel scales %v", m.Scale)
	}
}

func TestSAWBClipTighterThanMax(t *testing.T) {
	g := tensor.NewRNG(2)
	w := g.Randn(1, 1024)
	s := NewSAWB(2, false)
	s.TrainForward(w)
	// SAWB's 2-bit clip must be far below the absolute max for a Gaussian.
	clip := s.Scale[0] * float32(s.QMax())
	if clip >= w.AbsMax() {
		t.Fatalf("SAWB clip %v not tighter than max %v", clip, w.AbsMax())
	}
	if clip < 0.5 || clip > 3 {
		t.Fatalf("SAWB 2-bit clip for N(0,1) ≈ 1, got %v", clip)
	}
}

func TestPACTForwardClips(t *testing.T) {
	p := NewPACT(8, 2.0)
	x := tensor.FromSlice([]float32{-1, 1, 5}, 3)
	y := p.TrainForward(x)
	if y.Data[0] != 0 {
		t.Fatalf("negative input must clip to 0: %v", y.Data[0])
	}
	if math.Abs(float64(y.Data[2])-2) > 1e-4 {
		t.Fatalf("above-alpha input must clip to alpha: %v", y.Data[2])
	}
}

func TestPACTAlphaGradient(t *testing.T) {
	p := NewPACT(8, 1.0)
	x := tensor.FromSlice([]float32{0.5, 2, 3}, 3)
	p.TrainForward(x)
	g := tensor.FromSlice([]float32{1, 1, 1}, 3)
	gx := p.BackwardInput(g)
	// Saturated elements route gradient to alpha.
	if p.Alpha.Grad.Data[0] != 2 {
		t.Fatalf("alpha grad = %v, want 2", p.Alpha.Grad.Data[0])
	}
	if gx.Data[0] != 1 || gx.Data[1] != 0 || gx.Data[2] != 0 {
		t.Fatalf("input grad = %v", gx.Data)
	}
}

func TestRCFSignedClipAndAlphaGrad(t *testing.T) {
	r := NewRCF(4, true, 1.0)
	x := tensor.FromSlice([]float32{-3, 0.5, 3}, 3)
	y := r.TrainForward(x)
	if math.Abs(float64(y.Data[0])+1) > 1e-3 || math.Abs(float64(y.Data[2])-1) > 1e-3 {
		t.Fatalf("RCF clip: %v", y.Data)
	}
	g := tensor.FromSlice([]float32{1, 1, 1}, 3)
	r.BackwardInput(g)
	// -1 from the low tail, +1 from the high tail → net 0.
	if r.Alpha.Grad.Data[0] != 0 {
		t.Fatalf("alpha grad = %v", r.Alpha.Grad.Data[0])
	}
}

func TestLSQInitializesFromFirstBatch(t *testing.T) {
	g := tensor.NewRNG(3)
	l := NewLSQ(8, true)
	x := g.Randn(1, 256)
	l.TrainForward(x)
	if l.Step.Data.Data[0] == 0.1 {
		t.Fatal("LSQ step must be re-initialized from data")
	}
	// Step gradient accumulates.
	l.BackwardInput(g.Randn(1, 256))
	if l.Step.Grad.Data[0] == 0 {
		t.Fatal("LSQ step gradient must be non-zero for random grads")
	}
}

func TestAdaRoundSoftStartsAtNearest(t *testing.T) {
	g := tensor.NewRNG(4)
	w := g.Randn(0.2, 8, 8)
	a := NewAdaRound(4, false)
	soft := a.TrainForward(w)
	// Initialization inverts the rectified sigmoid, so the soft-quantized
	// weight must start very close to the float weight (within clip).
	if tensor.MaxAbsDiff(soft, tensor.Clamp(w, -a.Scale[0]*8, a.Scale[0]*7)) > a.Scale[0]*0.51 {
		t.Fatalf("soft init error %v vs scale %v", tensor.MaxAbsDiff(soft, w), a.Scale[0])
	}
}

func TestAdaRoundHardQuantizeUsesSign(t *testing.T) {
	g := tensor.NewRNG(5)
	w := g.Randn(0.2, 4, 4)
	a := NewAdaRound(4, false)
	a.TrainForward(w)
	codes := a.Quantize(w)
	chSize := len(w.Data)
	for i, c := range codes.Data {
		s, _ := a.scaleFor(i, chSize)
		fl := int64(math.Floor(float64(w.Data[i] / s)))
		want := fl
		if a.V.Data.Data[i] >= 0 {
			want++
		}
		if want > a.QMax() {
			want = a.QMax()
		}
		if want < a.QMin() {
			want = a.QMin()
		}
		if c != want {
			t.Fatalf("code[%d] = %d, want %d", i, c, want)
		}
	}
}

func TestAdaRoundRegLossPushesBinary(t *testing.T) {
	g := tensor.NewRNG(6)
	w := g.Randn(0.2, 8, 8)
	a := NewAdaRound(4, false)
	a.TrainForward(w)
	// h≈frac initially → reg loss positive.
	l1 := a.RegLoss(1)
	if l1 <= 0 {
		t.Fatalf("reg loss = %v, want > 0", l1)
	}
	// Push V strongly positive: h→1, reg → 0.
	for i := range a.V.Data.Data {
		a.V.Data.Data[i] = 10
	}
	a.V.Grad.Zero()
	l2 := a.RegLoss(1)
	if l2 > 0.01*l1 {
		t.Fatalf("binary rounding should have ~0 reg, got %v (initial %v)", l2, l1)
	}
}

func TestQDropPassesThroughSomeElements(t *testing.T) {
	g := tensor.NewRNG(7)
	q := NewQDrop(2, false, 0.5, g)
	x := g.Uniform(0, 1, 1, 2048)
	y := q.TrainForward(x)
	exact, quantized := 0, 0
	for i := range x.Data {
		if y.Data[i] == x.Data[i] {
			exact++
		} else {
			quantized++
		}
	}
	if exact < 800 || quantized < 800 {
		t.Fatalf("QDrop mixture off: exact=%d quantized=%d", exact, quantized)
	}
}

func TestQConv2dDualPathConsistency(t *testing.T) {
	// Fig 3 invariant: with frozen observers, the training path (fake
	// quant + float conv) matches the inference path (integer conv +
	// dequant) within float tolerance.
	g := tensor.NewRNG(8)
	conv := nn.NewConv2d(g, 3, 8, 3, 1, 1, 1, true)
	qc := NewQConv2d(conv, NewMinMax(8, true, true), NewMinMax(8, false, false))
	x := g.Uniform(0, 1, 2, 3, 8, 8)
	// Calibrate then freeze.
	qc.Forward(x)
	qc.SetCalibrating(false)
	yTrain := qc.Forward(x)
	qc.SetMode(ModeInfer)
	yInfer := qc.Forward(x)
	if !tensor.AllClose(yTrain, yInfer, 1e-4, 1e-4) {
		t.Fatalf("dual-path mismatch: %v", tensor.MaxAbsDiff(yTrain, yInfer))
	}
}

func TestQLinearDualPathConsistency(t *testing.T) {
	g := tensor.NewRNG(9)
	lin := nn.NewLinear(g, 16, 8, true)
	ql := NewQLinear(lin, NewMinMax(8, true, true), NewMinMax(8, false, false))
	x := g.Uniform(0, 1, 4, 16)
	ql.Forward(x)
	ql.SetCalibrating(false)
	yTrain := ql.Forward(x)
	ql.SetMode(ModeInfer)
	yInfer := ql.Forward(x)
	if !tensor.AllClose(yTrain, yInfer, 1e-4, 1e-4) {
		t.Fatalf("dual-path mismatch: %v", tensor.MaxAbsDiff(yTrain, yInfer))
	}
}

func TestQLinearAffineActivationConsistency(t *testing.T) {
	// With a non-zero activation zero point the integer path must still
	// match (zero-point correction in the integer domain).
	g := tensor.NewRNG(10)
	lin := nn.NewLinear(g, 12, 6, false)
	ql := NewQLinear(lin, NewMinMax(8, true, false), NewMinMax(8, false, false))
	x := g.Uniform(0.5, 2.5, 3, 12) // strictly positive range → non-zero zp after affine mapping? lo>0 clamps to 0
	ql.Forward(x)
	ql.SetCalibrating(false)
	yTrain := ql.Forward(x)
	ql.SetMode(ModeInfer)
	yInfer := ql.Forward(x)
	if !tensor.AllClose(yTrain, yInfer, 1e-4, 1e-4) {
		t.Fatalf("dual-path mismatch %v", tensor.MaxAbsDiff(yTrain, yInfer))
	}
}

func TestQConv2dQATLearns(t *testing.T) {
	// One SGD step on the fake-quant path must reduce a simple loss,
	// proving gradients flow through the quantizers.
	g := tensor.NewRNG(11)
	conv := nn.NewConv2d(g, 1, 1, 3, 1, 1, 1, false)
	qc := NewQConv2d(conv, NewSAWB(4, false), NewPACT(4, 4.0))
	x := g.Uniform(0, 1, 2, 1, 5, 5)
	target := g.Randn(1, 2, 1, 5, 5)
	lossOf := func() float32 {
		y := qc.Forward(x)
		l, _ := nn.MSELoss(y, target)
		return l
	}
	for step := 0; step < 30; step++ {
		y := qc.Forward(x)
		_, grad := nn.MSELoss(y, target)
		nn.ZeroGrads(qc)
		qc.Backward(grad)
		for _, p := range qc.Params() {
			tensor.AxpyInPlace(p.Data, -0.1, p.Grad)
		}
	}
	qc.SetCalibrating(false)
	if lossOf() > 0.9 {
		t.Fatalf("QAT failed to learn: loss %v", lossOf())
	}
}

func TestPrepareSwapsLayers(t *testing.T) {
	g := tensor.NewRNG(12)
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 4, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(4),
		&nn.ReLU{},
		&nn.Flatten{},
		nn.NewLinear(g, 4*4*4, 10, true),
	)
	cfg := Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true}
	Prepare(model, cfg)
	convs, lins, _ := QuantizedLayers(model)
	if len(convs) != 1 || len(lins) != 1 {
		t.Fatalf("prepare found %d convs %d linears", len(convs), len(lins))
	}
	// Forward must still work and produce the right shape.
	x := g.Uniform(0, 1, 2, 3, 4, 4)
	y := model.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 10 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestPrepareResidual(t *testing.T) {
	g := tensor.NewRNG(13)
	block := nn.NewResidual(
		nn.NewSequential(nn.NewConv2d(g, 4, 4, 3, 1, 1, 1, false), &nn.ReLU{}),
		nn.NewConv2d(g, 4, 4, 1, 1, 0, 1, false),
	)
	Prepare(block, Config{WBits: 4, ABits: 4, Weight: "sawb", Act: "pact"})
	convs, _, _ := QuantizedLayers(block)
	if len(convs) != 2 {
		t.Fatalf("residual prepare found %d convs", len(convs))
	}
}

func TestPrepareAttentionQuantizesMatmuls(t *testing.T) {
	g := tensor.NewRNG(14)
	mha := nn.NewMultiHeadAttention(g, 16, 2)
	qa := PrepareAttention(mha, Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax"})
	x := g.Randn(0.5, 2, 5, 16)
	y := qa.Forward(x)
	if y.Shape[2] != 16 {
		t.Fatalf("shape %v", y.Shape)
	}
	// After a calibration pass, infer mode must be close to train mode.
	SetCalibrating(qa, false)
	qa.SetCalibrating(false)
	yTrain := qa.Forward(x)
	SetMode(qa, ModeInfer)
	qa.SetMode(ModeInfer)
	yInfer := qa.Forward(x)
	if tensor.MaxAbsDiff(yTrain, yInfer) > 0.15 {
		t.Fatalf("quantized attention paths diverge: %v", tensor.MaxAbsDiff(yTrain, yInfer))
	}
}

func TestSetModeWalksTree(t *testing.T) {
	g := tensor.NewRNG(15)
	model := nn.NewSequential(nn.NewConv2d(g, 1, 1, 1, 1, 0, 1, false))
	Prepare(model, Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax"})
	SetMode(model, ModeInfer)
	convs, _, _ := QuantizedLayers(model)
	if convs[0].Mode != ModeInfer {
		t.Fatal("SetMode must reach nested QConv2d")
	}
	SetMode(model, ModeTrain)
	if convs[0].Mode != ModeTrain {
		t.Fatal("SetMode must switch back")
	}
}

func TestRegistryCustomQuantizer(t *testing.T) {
	// The paper's core claim: user-defined quantizers drop in. Register a
	// trivial 1-bit sign quantizer and run it through a QConv2d.
	RegisterWeight("sign_test", func(c Config) Quantizer {
		m := NewMinMax(2, true, false)
		return m
	})
	g := tensor.NewRNG(16)
	conv := nn.NewConv2d(g, 1, 2, 3, 1, 1, 1, false)
	cfg := Config{WBits: 2, ABits: 8, Weight: "sign_test", Act: "minmax"}
	qc := NewQConv2d(conv, cfg.NewWeightQuantizer(), cfg.NewActQuantizer())
	x := g.Uniform(0, 1, 1, 1, 4, 4)
	qc.Forward(x)
	qc.SetCalibrating(false)
	qc.SetMode(ModeInfer)
	codes := qc.IntWeights()
	mn, mx := codes.MinMax()
	if mn < -2 || mx > 1 {
		t.Fatalf("2-bit codes out of range [%d,%d]", mn, mx)
	}
}

func TestUnknownQuantizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown quantizer")
		}
	}()
	Config{WBits: 8, ABits: 8, Weight: "nope", Act: "minmax"}.NewWeightQuantizer()
}

func TestQMatMulDualPath(t *testing.T) {
	g := tensor.NewRNG(17)
	qm := NewQMatMul(NewMinMax(8, true, false), NewMinMax(8, true, false), false)
	a := g.Randn(0.5, 6, 8)
	b := g.Randn(0.5, 8, 4)
	qm.Apply(a, b)
	qm.SetCalibrating(false)
	yTrain := qm.Apply(a, b)
	qm.SetMode(ModeInfer)
	yInfer := qm.Apply(a, b)
	if !tensor.AllClose(yTrain, yInfer, 1e-3, 1e-3) {
		t.Fatalf("QMatMul paths diverge %v", tensor.MaxAbsDiff(yTrain, yInfer))
	}
}

func TestQuantizedIntRangeProperty(t *testing.T) {
	// Property over random tensors and bit-widths: integer codes of a
	// frozen QConv2d always respect the declared range.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		bits := 2 + int(seed%7)
		if bits < 2 {
			bits = 2
		}
		conv := nn.NewConv2d(g, 2, 3, 3, 1, 1, 1, false)
		qc := NewQConv2d(conv, NewMinMax(bits, true, true), NewMinMax(8, false, false))
		x := g.Uniform(0, 1, 1, 2, 4, 4)
		qc.Forward(x)
		qc.SetCalibrating(false)
		qc.SetMode(ModeInfer)
		codes := qc.IntWeights()
		mn, mx := codes.MinMax()
		return mn >= qc.WQuant.Base().QMin() && mx <= qc.WQuant.Base().QMax()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
