// Package quant implements the paper's hierarchical quantization stack:
// the bottom-level QBase module (the paper's _QBase) that registers scale
// and zero-point, a zoo of customizable quantizers (MinMax, SAWB, PACT,
// RCF, LSQ, AdaRound, QDrop), and the "Dual-Path" base layers (QConv2d,
// QLinear, QMatMul) whose training path performs fake-quantized float
// computation and whose inference path performs integer-only computation.
package quant

import (
	"fmt"
	"math"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// Mode selects the computation path of a dual-path layer.
type Mode int

const (
	// ModeTrain runs the fake-quantized float path (QAT/PTQ training).
	ModeTrain Mode = iota
	// ModeInfer runs the integer-only path with dequantized float output.
	ModeInfer
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeTrain {
		return "train"
	}
	return "infer"
}

// QBase is the bottom-level quantization module. It registers the scaling
// factor and zero point as state shared between the training and inference
// paths; user-defined quantizers embed it and update the registered
// parameters from the training path, after which the inference path is
// derived automatically.
type QBase struct {
	NBits      int
	Signed     bool
	PerChannel bool
	// Scale and Zero hold one entry per channel when PerChannel, else one.
	Scale []float32
	Zero  []int64
	// Calibrating enables observer updates in TrainForward.
	Calibrating bool
}

// NewQBase constructs a QBase with unit scale.
func NewQBase(nbits int, signed, perChannel bool) *QBase {
	return &QBase{
		NBits: nbits, Signed: signed, PerChannel: perChannel,
		Scale: []float32{1}, Zero: []int64{0}, Calibrating: true,
	}
}

// QMin returns the smallest representable code.
func (q *QBase) QMin() int64 {
	if q.Signed {
		return -(1 << (q.NBits - 1))
	}
	return 0
}

// QMax returns the largest representable code.
func (q *QBase) QMax() int64 {
	if q.Signed {
		return 1<<(q.NBits-1) - 1
	}
	return 1<<q.NBits - 1
}

// Base returns q itself; embedding types inherit this to satisfy Quantizer.
func (q *QBase) Base() *QBase { return q }

// channels returns how many scale entries q carries.
func (q *QBase) channels() int { return len(q.Scale) }

// scaleFor returns the (scale, zero) for flat element index i of a tensor
// whose leading dimension has chSize elements per channel.
func (q *QBase) scaleFor(i, chSize int) (float32, int64) {
	if !q.PerChannel || len(q.Scale) == 1 {
		return q.Scale[0], q.Zero[0]
	}
	c := i / chSize
	return q.Scale[c], q.Zero[c]
}

// SetScale resizes and assigns per-channel scales.
func (q *QBase) SetScale(scale []float32, zero []int64) {
	q.Scale = append(q.Scale[:0], scale...)
	q.Zero = append(q.Zero[:0], zero...)
}

// Quantize maps x to integer codes: round(x/S) + Z, clamped to the code
// range. For per-channel quantizers the leading dimension of x indexes
// channels.
func (q *QBase) Quantize(x *tensor.Tensor) *tensor.IntTensor {
	out := tensor.NewInt(x.Shape...)
	q.QuantizeTo(out, x)
	return out
}

// QuantizeTo is Quantize writing into a caller-owned destination with the
// same element count as x, so executors with planned buffers can quantize
// at the model boundary without allocating. The destination may use any
// storage dtype that holds the quantizer's code range — codes are clamped
// to [QMin, QMax] before the store, so a narrow input buffer planned from
// this quantizer's range is always representable.
func (q *QBase) QuantizeTo(out *tensor.IntTensor, x *tensor.Tensor) {
	if out.Numel() != len(x.Data) {
		panic("quant: QuantizeTo size mismatch")
	}
	chSize := perChannelSize(x, q)
	qmin, qmax := q.QMin(), q.QMax()
	direct := out.DType == tensor.I64
	for i, v := range x.Data {
		s, z := q.scaleFor(i, chSize)
		c := int64(math.Round(float64(v/s))) + z
		if c < qmin {
			c = qmin
		}
		if c > qmax {
			c = qmax
		}
		if direct {
			out.Data[i] = c
		} else {
			out.Put(i, c)
		}
	}
}

// Dequantize maps integer codes back to float: (c - Z) * S.
func (q *QBase) Dequantize(xq *tensor.IntTensor) *tensor.Tensor {
	out := tensor.New(xq.Shape...)
	chSize := perChannelSizeInt(xq, q)
	for i, c := range xq.Data {
		s, z := q.scaleFor(i, chSize)
		out.Data[i] = float32(c-z) * s
	}
	return out
}

// FakeQuant performs quantize-dequantize in one step (the training-path
// discretization) and reports, per element, whether the value was inside
// the clipping range (needed for straight-through gradients).
func (q *QBase) FakeQuant(x *tensor.Tensor) (*tensor.Tensor, []bool) {
	out := tensor.New(x.Shape...)
	mask := make([]bool, len(x.Data))
	chSize := perChannelSize(x, q)
	qmin, qmax := q.QMin(), q.QMax()
	for i, v := range x.Data {
		s, z := q.scaleFor(i, chSize)
		c := int64(math.Round(float64(v/s))) + z
		in := c >= qmin && c <= qmax
		mask[i] = in
		if c < qmin {
			c = qmin
		}
		if c > qmax {
			c = qmax
		}
		out.Data[i] = float32(c-z) * s
	}
	return out, mask
}

func perChannelSize(x *tensor.Tensor, q *QBase) int {
	if !q.PerChannel || len(x.Shape) == 0 || len(q.Scale) <= 1 {
		return len(x.Data)
	}
	return len(x.Data) / x.Shape[0]
}

func perChannelSizeInt(x *tensor.IntTensor, q *QBase) int {
	if !q.PerChannel || len(x.Shape) == 0 || len(q.Scale) <= 1 {
		return len(x.Data)
	}
	return len(x.Data) / x.Shape[0]
}

// Quantizer is the user-customizable quantization method. Users implement
// the training path (TrainForward + BackwardInput + parameter updates);
// the integer inference path (Quantize) is inherited from QBase once the
// scale and zero point are registered.
type Quantizer interface {
	// TrainForward fake-quantizes x on the training path, updating
	// observers when calibrating.
	TrainForward(x *tensor.Tensor) *tensor.Tensor
	// BackwardInput applies the straight-through (or custom) gradient of
	// the last TrainForward to grad.
	BackwardInput(grad *tensor.Tensor) *tensor.Tensor
	// Quantize maps x to integer codes using the registered parameters.
	Quantize(x *tensor.Tensor) *tensor.IntTensor
	// Base exposes the registered scale/zero-point state.
	Base() *QBase
	// Params returns learnable quantizer parameters (clip values, step
	// sizes, rounding offsets); may be empty.
	Params() []*nn.Param
}

// validateBits panics on unsupported widths; quantizers share it.
func validateBits(nbits int) {
	if nbits < 1 || nbits > 16 {
		panic(fmt.Sprintf("quant: unsupported bit-width %d", nbits))
	}
}
