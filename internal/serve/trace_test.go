package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"torch2chip/internal/engine"
	"torch2chip/internal/serve"
	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// chromeDoc mirrors the Chrome trace-event JSON object form.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestHTTPDebugTrace drives a traced registry over HTTP and checks the
// /debug/trace dump: valid Chrome trace-event JSON whose spans nest
// request → batch → wave → instruction, all stitched to one trace id.
func TestHTTPDebugTrace(t *testing.T) {
	ck, _ := buildCheckpoint(t, 11)
	// KernelThreads 1 keeps wave execution serial, so the dump includes
	// per-instruction spans (parallel waves record only the wave).
	reg := serve.NewRegistry(serve.Options{
		Trace:  &trace.Config{RingSpans: 4096},
		Engine: engine.ServerOptions{Workers: 1, KernelThreads: 1},
	})
	defer reg.Close()
	h := serve.NewHandler(reg, serve.HandlerOptions{EnablePprof: true})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/models/cnn", checkpointBody(t, ck))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}

	g := tensor.NewRNG(900)
	x := g.Uniform(0, 1, 2, 3, 8, 8) // two samples → fan-out spans
	pb, err := serve.PredictBody([]int{2, 3, 8, 8}, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("traced predict response carries no X-Trace-Id header")
	}

	tr, err := http.Get(ts.URL + "/debug/trace?model=cnn")
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace status %d: %s", tr.StatusCode, tb)
	}
	var doc chromeDoc
	if err := json.Unmarshal(tb, &doc); err != nil {
		t.Fatalf("debug/trace is not valid JSON: %v\n%s", err, tb)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Collect one span per category and verify the nesting chain.
	type iv struct{ start, end float64 }
	byCat := map[string][]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		byCat[ev.Cat] = append(byCat[ev.Cat], iv{ev.Ts, ev.Ts + ev.Dur})
	}
	for _, cat := range []string{"request", "fanout", "queue_wait", "batch", "wave", "instr"} {
		if len(byCat[cat]) == 0 {
			have := make([]string, 0, len(byCat))
			for k := range byCat {
				have = append(have, k)
			}
			t.Fatalf("no %q spans in dump (have: %v)", cat, have)
		}
	}
	contains := func(outer, inner iv) bool { return outer.start <= inner.start && inner.end <= outer.end }
	nestedIn := func(inner iv, outers []iv) bool {
		for _, o := range outers {
			if contains(o, inner) {
				return true
			}
		}
		return false
	}
	req := byCat["request"][0]
	for _, b := range byCat["batch"] {
		if !contains(req, b) {
			t.Fatalf("batch span %+v escapes the request span %+v", b, req)
		}
	}
	for _, w := range byCat["wave"] {
		if !nestedIn(w, byCat["batch"]) {
			t.Fatalf("wave span %+v not nested in any batch span", w)
		}
	}
	for _, in := range byCat["instr"] {
		if !nestedIn(in, byCat["wave"]) {
			t.Fatalf("instruction span %+v not nested in any wave span", in)
		}
	}

	// The engine's instruction spans also surface as per-op histograms.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		`t2c_op_seconds_count{model="cnn",op="conv"}`,
		`t2c_replica_queue_depth{model="cnn"}`,
		`t2c_batch_wait_seconds_count{model="cnn"}`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, mb)
		}
	}

	// pprof was opted in: the index must answer.
	pr, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pr.StatusCode)
	}
}

// TestDebugTraceErrors covers the endpoint's refusal paths.
func TestDebugTraceErrors(t *testing.T) {
	ck, _ := buildCheckpoint(t, 12)
	reg := serve.NewRegistry(serve.Options{}) // no tracing configured
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if resp, body := postJSON(t, ts.URL+"/v1/models/cnn", checkpointBody(t, ck)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}

	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/debug/trace", http.StatusBadRequest},            // missing ?model=
		{"/debug/trace?model=absent", http.StatusNotFound}, // unknown model
		{"/debug/trace?model=cnn", http.StatusNotFound},    // tracing off
		{"/debug/pprof/", http.StatusNotFound},             // pprof not opted in
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("GET %s status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}

// TestMetricsLatencyByResult checks the satellite: expired requests
// feed the latency histogram under their own result label.
func TestMetricsLatencyByResult(t *testing.T) {
	m := serve.NewMetrics()
	m.Observe("m", serve.ResultOK, 5*time.Millisecond)
	m.Observe("m", serve.ResultExpired, 70*time.Millisecond)
	m.Observe("m", serve.ResultError, 9*time.Millisecond)
	m.Observe("m", serve.ResultRejected, time.Millisecond) // counter only
	var sb strings.Builder
	m.WriteText(&sb, nil)
	out := sb.String()
	for _, want := range []string{
		`t2c_request_latency_seconds_count{model="m",result="ok"} 1`,
		`t2c_request_latency_seconds_count{model="m",result="expired"} 1`,
		`t2c_request_latency_seconds_count{model="m",result="error"} 1`,
		`t2c_request_latency_seconds_sum{model="m",result="expired"} 0.07`,
		`t2c_requests_total{model="m",result="rejected"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, fmt.Sprintf(`latency_seconds_count{model="m",result="rejected"}`)) {
		t.Fatal("rejected requests must not grow a latency histogram")
	}
}
