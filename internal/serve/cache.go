package serve

// Content-addressed inference cache. The key is an FNV-1a hash of the
// serving program's content fingerprint plus the request's quantized
// input codes; the value is the output codes the engine produced for
// them. Because the engine is bit-exact — identical input codes through
// an identical program always yield identical output codes — a hit is
// provably identical to recompute, not approximately so. Hash collisions
// cannot break that claim: every hit additionally compares the stored
// input codes word for word before answering. A hot reload that changes
// any weight changes the program fingerprint and therefore every key,
// so stale entries become unreachable naturally (and the registry
// flushes them eagerly to free memory); a reload that changes nothing
// keeps the fingerprint and the warm cache with it.

import (
	"container/list"
	"sync"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// cacheKey hashes a program fingerprint and a sample's input codes.
func cacheKey(fp uint64, codes []int64) uint64 {
	h := fnvOffset ^ fp
	h *= fnvPrime
	for _, c := range codes {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// CacheStats is a point-in-time snapshot of one model's cache counters.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Suppressed counts inserts skipped while hit-rate admission had
	// caching backed off (lookups below the floor over a full window).
	Suppressed int64 `json:"suppressed"`
	// HitRate is Hits/(Hits+Misses) over the cache's lifetime.
	HitRate float64 `json:"hit_rate"`
}

type cacheEntry struct {
	key   uint64
	in    []int64 // full input codes: collision guard for bit-exact hits
	out   []int64
	shape []int
}

// modelCache is one model's LRU inference cache with hit-rate-driven
// admission: lookups are always served, but when a full admission
// window observes a hit rate below the floor, inserts are suppressed
// for an exponentially growing number of windows (capped) before a
// probe window re-measures. Models whose traffic never repeats settle
// into near-zero caching overhead instead of churning entries.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	floor    float64
	window   int64

	lru     *list.List // front = most recent; values are *cacheEntry
	byKey   map[uint64]*list.Element
	hits    int64
	misses  int64
	evicted int64
	suppr   int64

	// Admission-window state: lookups/hits within the current window,
	// remaining windows to skip, and the current backoff width.
	winLookups int64
	winHits    int64
	skipWins   int64
	backoff    int64
}

// newModelCache returns a cache with the given capacity (entries), or
// nil when capacity <= 0 — callers treat a nil cache as disabled.
func newModelCache(capacity int, floor float64, window int64) *modelCache {
	if capacity <= 0 {
		return nil
	}
	if window <= 0 {
		window = 512
	}
	return &modelCache{
		capacity: capacity,
		floor:    floor,
		window:   window,
		lru:      list.New(),
		byKey:    map[uint64]*list.Element{},
	}
}

// get looks up the output codes for (key, in). The stored input codes
// must match exactly — a key collision counts as a miss. The returned
// slices are the cache's own (callers only read them; the output is
// dequantized into a fresh tensor).
func (c *modelCache) get(key uint64, in []int64) (out []int64, shape []int, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windowTick()
	if el, found := c.byKey[key]; found {
		e := el.Value.(*cacheEntry)
		if codesEqual(e.in, in) {
			c.lru.MoveToFront(el)
			c.hits++
			c.winHits++
			return e.out, e.shape, true
		}
	}
	c.misses++
	return nil, nil, false
}

// put inserts output codes for (key, in), copying all slices. Inserts
// are dropped while admission has caching suppressed.
func (c *modelCache) put(key uint64, in, out []int64, shape []int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.skipWins > 0 {
		c.suppr++
		return
	}
	if el, found := c.byKey[key]; found {
		// Same key already cached (racing misses, or a collision): keep
		// the entry fresh and overwrite — both computed bit-exact outputs.
		e := el.Value.(*cacheEntry)
		e.in = append(e.in[:0], in...)
		e.out = append(e.out[:0], out...)
		e.shape = append(e.shape[:0], shape...)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.lru.Remove(back)
		c.evicted++
	}
	e := &cacheEntry{
		key:   key,
		in:    append([]int64(nil), in...),
		out:   append([]int64(nil), out...),
		shape: append([]int(nil), shape...),
	}
	c.byKey[key] = c.lru.PushFront(e)
}

// windowTick advances the admission window (callers hold mu). A window
// is one `window` lookups; a completed window below the hit-rate floor
// doubles the backoff (capped at 8 windows) and suppresses inserts for
// that many windows, after which one probe window measures again. A
// window at or above the floor resets the backoff.
func (c *modelCache) windowTick() {
	c.winLookups++
	if c.winLookups < c.window {
		return
	}
	rate := float64(c.winHits) / float64(c.winLookups)
	c.winLookups, c.winHits = 0, 0
	if c.skipWins > 0 {
		// Counting lookups during a suppressed window; rate is whatever
		// earlier entries still serve. Burn one skip window.
		c.skipWins--
		return
	}
	if c.floor > 0 && rate < c.floor {
		if c.backoff < 1 {
			c.backoff = 1
		} else if c.backoff < 8 {
			c.backoff *= 2
		}
		c.skipWins = c.backoff
		return
	}
	c.backoff = 0
}

// flush drops every entry (hot reload with a changed fingerprint) and
// resets admission so the new version gets a fresh probe.
func (c *modelCache) flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byKey = map[uint64]*list.Element{}
	c.winLookups, c.winHits, c.skipWins, c.backoff = 0, 0, 0, 0
}

// stats snapshots the counters (nil-safe: a disabled cache reports a
// zero capacity).
func (c *modelCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Capacity:   c.capacity,
		Entries:    c.lru.Len(),
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evicted,
		Suppressed: c.suppr,
	}
	if n := s.Hits + s.Misses; n > 0 {
		s.HitRate = float64(s.Hits) / float64(n)
	}
	return s
}

func codesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
