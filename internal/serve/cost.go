package serve

// Loading measured calibration ratios for the engine's cost model from a
// committed BENCH_profile.json (the PR 8 profile artifact). The serve
// layer re-declares the minimal slice of the profile schema it needs
// rather than importing internal/bench, which depends on this package.

import (
	"encoding/json"
	"fmt"
	"os"

	"torch2chip/internal/engine"
)

// profileReport mirrors bench.ProfileReport down to the fields the cost
// model consumes: per-model, per-op measured/modeled ratios.
type profileReport struct {
	Models []struct {
		Model string `json:"model"`
		Ops   []struct {
			Op    string  `json:"op"`
			Ratio float64 `json:"ratio"`
		} `json:"ops"`
	} `json:"models"`
}

// LoadCostProfile reads a BENCH_profile.json calibration artifact and
// returns a CostModel whose per-op ratios average the measured/modeled
// ratios across every profiled model (an op kind absent from the
// profile keeps the modeled ratio of 1). The averaging smooths
// per-model noise; what matters for deadline-driven batching is the
// order of magnitude, not the third digit.
func LoadCostProfile(path string) (*engine.CostModel, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep profileReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("serve: parse cost profile %s: %w", path, err)
	}
	sums := map[engine.OpKind]float64{}
	counts := map[engine.OpKind]int{}
	for _, m := range rep.Models {
		for _, op := range m.Ops {
			if op.Ratio <= 0 {
				continue
			}
			k := engine.OpKind(op.Op)
			sums[k] += op.Ratio
			counts[k]++
		}
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("serve: cost profile %s has no usable op ratios", path)
	}
	ratios := make(map[engine.OpKind]float64, len(sums))
	for k, s := range sums {
		ratios[k] = s / float64(counts[k])
	}
	return &engine.CostModel{Ratios: ratios}, nil
}
