package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/serve"
	"torch2chip/internal/tensor"
)

// buildCheckpoint compiles a small CNN (3×8×8 inputs) seeded with seed
// and returns its servable checkpoint plus the interpreter oracle.
// Different seeds yield different weights, so two checkpoints make a
// distinguishable v1/v2 hot-reload pair.
func buildCheckpoint(t testing.TB, seed int64) (*export.Checkpoint, *fuse.IntModel) {
	t.Helper()
	g := tensor.NewRNG(seed)
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 8, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		nn.NewConv2d(g, 8, 8, 3, 2, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 8, 10, true),
	)
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cm.Prog.InShape = []int{3, 8, 8}
	ck := export.NewCheckpoint(cm.Int.IntTensors(), nil)
	ck.Program = cm.Prog.Spec()
	return ck, cm.Int
}

func assertSame(t *testing.T, got, want *tensor.Tensor, ctx string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: %d logits, want %d", ctx, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: logit[%d] = %v, want %v (must be bit-identical)", ctx, i, got.Data[i], want.Data[i])
		}
	}
}

func TestRegistryLoadAndInfer(t *testing.T) {
	ck, im := buildCheckpoint(t, 1)
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	info, err := reg.Load("cnn", ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("first load version = %d, want 1", info.Version)
	}
	if len(info.Sample) != 3 || info.Sample[0] != 3 || info.Sample[1] != 8 || info.Sample[2] != 8 {
		t.Fatalf("sample shape from checkpoint = %v, want [3 8 8]", info.Sample)
	}

	g := tensor.NewRNG(100)
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	y, version, err := reg.Infer("cnn", x)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("served version = %d, want 1", version)
	}
	assertSame(t, y, im.Forward(x), "registry infer")

	if _, _, err := reg.Infer("missing", x); err != serve.ErrNotFound {
		t.Fatalf("unknown model returned %v, want ErrNotFound", err)
	}
	ms := reg.Models()
	if len(ms) != 1 || ms[0].Name != "cnn" || ms[0].Stats.Requests != 1 {
		t.Fatalf("listing = %+v, want one cnn entry with 1 request", ms)
	}
	if err := reg.Remove("cnn"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Infer("cnn", x); err != serve.ErrNotFound {
		t.Fatalf("removed model returned %v, want ErrNotFound", err)
	}
}

func TestRegistryRequiresShapeForLegacyCheckpoints(t *testing.T) {
	ck, im := buildCheckpoint(t, 2)
	ck.Program.InShape = nil // simulate a pre-PR-3 checkpoint
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	if _, err := reg.Load("legacy", ck, nil); err == nil {
		t.Fatal("load without a recorded or explicit shape must fail")
	}
	if _, err := reg.Load("legacy", ck, []int{3, 8, 8}); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(101)
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	y, _, err := reg.Infer("legacy", x)
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, y, im.Forward(x), "legacy checkpoint infer")
}

// TestRegistryHotReloadUnderTraffic swaps checkpoints while concurrent
// clients hammer the model and requires (a) zero dropped or failed
// requests, (b) every response bit-identical to IntModel.Forward of the
// version that served it, and (c) both versions actually observed, so
// the swap demonstrably happened mid-traffic. Run under -race in CI.
func TestRegistryHotReloadUnderTraffic(t *testing.T) {
	ck1, im1 := buildCheckpoint(t, 10)
	ck2, im2 := buildCheckpoint(t, 20)

	reg := serve.NewRegistry(serve.Options{
		Replicas: 2,
		Engine:   engine.ServerOptions{Workers: 2, MaxBatch: 4},
	})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck1, nil); err != nil {
		t.Fatal(err)
	}

	// Fixed request set with both oracles precomputed up front, so
	// goroutines never touch the (non-thread-safe) interpreters.
	const K = 6
	g := tensor.NewRNG(300)
	inputs := make([]*tensor.Tensor, K)
	want := map[int][]*tensor.Tensor{1: make([]*tensor.Tensor, K), 2: make([]*tensor.Tensor, K)}
	for k := 0; k < K; k++ {
		inputs[k] = g.Uniform(0, 1, 1, 3, 8, 8)
		want[1][k] = im1.Forward(inputs[k])
		want[2][k] = im2.Forward(inputs[k])
	}

	const clients, perClient = 12, 40
	var served atomic.Int64
	var sawV1, sawV2 atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				k := (c + r) % K
				y, version, err := reg.Infer("cnn", inputs[k])
				if err != nil {
					t.Errorf("client %d req %d: %v (no request may be dropped)", c, r, err)
					return
				}
				oracle := want[version]
				if oracle == nil {
					t.Errorf("client %d req %d: served by unknown version %d", c, r, version)
					return
				}
				switch version {
				case 1:
					sawV1.Add(1)
				case 2:
					sawV2.Add(1)
				}
				for i := range oracle[k].Data {
					if y.Data[i] != oracle[k].Data[i] {
						t.Errorf("client %d req %d: logit[%d] = %v, version-%d interpreter %v",
							c, r, i, y.Data[i], version, oracle[k].Data[i])
						return
					}
				}
				served.Add(1)
			}
		}(c)
	}

	// Swap once a third of the traffic has been served, so the reload
	// demonstrably lands mid-flight.
	for served.Load() < clients*perClient/3 {
		time.Sleep(100 * time.Microsecond)
	}
	info, err := reg.Load("cnn", ck2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info.Version)
	}
	wg.Wait()

	if got := served.Load(); got != clients*perClient {
		t.Fatalf("served %d of %d requests", got, clients*perClient)
	}
	if sawV1.Load() == 0 || sawV2.Load() == 0 {
		t.Fatalf("versions served: v1=%d v2=%d; the reload did not land mid-traffic",
			sawV1.Load(), sawV2.Load())
	}
	// Post-swap requests must be served by v2 only.
	y, version, err := reg.Infer("cnn", inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("post-reload version = %d, want 2", version)
	}
	assertSame(t, y, want[2][0], "post-reload infer")
}

// blockingKernels parks the conv kernel on release (signalling gate on
// entry) so tests can hold a replica mid-execute.
func blockingKernels(gate chan struct{}, release chan struct{}) *engine.Registry {
	reg := engine.FastKernels()
	base, _ := reg.Lookup(engine.OpConv)
	reg.Register(engine.OpConv, func(ex *engine.Executor, idx int, it *engine.Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		select {
		case gate <- struct{}{}:
		default:
		}
		<-release
		base(ex, idx, it, in, out)
	})
	return reg
}

func TestRegistryAdmissionSheds(t *testing.T) {
	ck, _ := buildCheckpoint(t, 3)
	gate := make(chan struct{}, 1)
	release := make(chan struct{})
	reg := serve.NewRegistry(serve.Options{
		MaxInFlight: 1,
		Engine:      engine.ServerOptions{Workers: 1, MaxBatch: 1, QueueSize: 1, Kernels: blockingKernels(gate, release)},
	})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	g := tensor.NewRNG(400)
	x1, x2 := g.Uniform(0, 1, 1, 3, 8, 8), g.Uniform(0, 1, 1, 3, 8, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := reg.Infer("cnn", x1); err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}()
	<-gate // the only in-flight token is now held

	if _, _, err := reg.Infer("cnn", x2); err != serve.ErrOverloaded {
		t.Fatalf("second request returned %v, want ErrOverloaded", err)
	}
	close(release)
	wg.Wait()
	ms := reg.Models()
	if len(ms) != 1 || ms[0].Shed != 1 {
		t.Fatalf("admission rejects = %+v, want Shed=1", ms)
	}
}

// buildViTCheckpoint compiles a small ViT into a servable checkpoint —
// the transformer counterpart of buildCheckpoint, exercising the v4
// program section (matmul/layernorm/softmax/gelu instrs and tables)
// through the serving stack.
func buildViTCheckpoint(t testing.TB, seed int64) (*export.Checkpoint, *fuse.IntModel) {
	t.Helper()
	g := tensor.NewRNG(seed)
	cfg := models.ViT7(32, 10)
	cfg.Depth = 1
	model := models.NewViT(g, cfg)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cm.Prog.InShape = []int{3, 32, 32}
	ck := export.NewCheckpoint(cm.Int.IntTensors(), nil)
	ck.Program = cm.Prog.Spec()
	return ck, cm.Int
}

// TestRegistryServesViTWithHotReload: a ViT checkpoint loads into the
// registry, serves bit-identical predictions, hot-reloads to a second
// version, and keeps serving the new weights.
func TestRegistryServesViTWithHotReload(t *testing.T) {
	ck1, im1 := buildViTCheckpoint(t, 11)
	ck2, im2 := buildViTCheckpoint(t, 12)
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	info, err := reg.Load("vit", ck1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Sample) != 3 || info.Sample[0] != 3 || info.Sample[1] != 32 || info.Sample[2] != 32 {
		t.Fatalf("vit sample shape from checkpoint = %v, want [3 32 32]", info.Sample)
	}

	g := tensor.NewRNG(100)
	x := g.Uniform(0, 1, 1, 3, 32, 32)
	y, version, err := reg.Infer("vit", x)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("served version = %d, want 1", version)
	}
	assertSame(t, y, im1.Forward(x), "vit v1 infer")

	if _, err := reg.Load("vit", ck2, nil); err != nil {
		t.Fatal(err)
	}
	y2, version2, err := reg.Infer("vit", x)
	if err != nil {
		t.Fatal(err)
	}
	if version2 != 2 {
		t.Fatalf("served version after reload = %d, want 2", version2)
	}
	assertSame(t, y2, im2.Forward(x), "vit v2 infer")
}
