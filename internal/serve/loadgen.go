package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/export"
	"torch2chip/internal/tensor"
)

// LoadOptions configure one load-generation run against the HTTP API.
type LoadOptions struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Model is the target model name.
	Model string
	// Body is the predict payload fired on every request.
	Body []byte
	// Mode is "closed" (Clients loops of back-to-back requests, load
	// tracks service capacity) or "open" (requests fired at QPS
	// regardless of completions, load tests overload behavior).
	Mode string
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// QPS is the open-loop arrival rate (default 100).
	QPS float64
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// MaxRequests optionally caps total requests (0 = duration-bound).
	MaxRequests int
	// DeadlineMS, when > 0, is sent as ?deadline_ms= on every request.
	DeadlineMS int
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Mode == "" {
		o.Mode = "closed"
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.QPS <= 0 {
		o.QPS = 100
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// LoadReport is the run summary: counts by outcome, achieved
// throughput, and latency percentiles over successful requests.
type LoadReport struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	DurationSec float64 `json:"duration_sec"`

	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"` // HTTP 429: admission shed
	Expired  int `json:"expired"`  // HTTP 504: deadline drop
	Errors   int `json:"errors"`   // transport failures and 5xx
	Dropped  int `json:"dropped"`  // open-loop arrivals skipped at the outstanding cap

	ThroughputRPS float64 `json:"throughput_rps"`
	MeanNs        int64   `json:"mean_ns"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
}

// collector accumulates per-request outcomes across client goroutines.
type collector struct {
	mu        sync.Mutex
	latencies []int64
	sent      atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64
	errors    atomic.Int64
}

func (c *collector) fire(client *http.Client, url string, body []byte) {
	c.sent.Add(1)
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		c.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		ns := time.Since(start).Nanoseconds()
		c.mu.Lock()
		c.latencies = append(c.latencies, ns)
		c.mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		c.rejected.Add(1)
	case resp.StatusCode == http.StatusGatewayTimeout:
		c.expired.Add(1)
	default:
		c.errors.Add(1)
	}
}

// RunLoad drives the predict endpoint per opts and reports throughput
// and latency percentiles.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if opts.URL == "" || opts.Model == "" || len(opts.Body) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs URL, Model, and Body")
	}
	url := fmt.Sprintf("%s/v1/models/%s:predict", opts.URL, opts.Model)
	if opts.DeadlineMS > 0 {
		url = fmt.Sprintf("%s?deadline_ms=%d", url, opts.DeadlineMS)
	}
	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Clients + 64,
			MaxIdleConnsPerHost: opts.Clients + 64,
		},
	}

	col := &collector{}
	stop := time.Now().Add(opts.Duration)
	budget := int64(opts.MaxRequests)
	take := func() bool {
		if time.Now().After(stop) {
			return false
		}
		return budget <= 0 || col.sent.Load() < budget
	}
	start := time.Now()
	var dropped int64
	switch opts.Mode {
	case "closed":
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for take() {
					col.fire(client, url, opts.Body)
				}
			}()
		}
		wg.Wait()
	case "open":
		interval := time.Duration(float64(time.Second) / opts.QPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		// Outstanding requests are capped so a stalled server cannot
		// spawn unbounded goroutines; arrivals past the cap are counted
		// as dropped, not silently delayed (that would close the loop).
		slots := make(chan struct{}, 4096)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var wg sync.WaitGroup
		for take() {
			<-ticker.C
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					col.fire(client, url, opts.Body)
					<-slots
				}()
			default:
				dropped++
			}
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("serve: unknown load mode %q", opts.Mode)
	}
	elapsed := time.Since(start)

	rep := &LoadReport{
		Mode:        opts.Mode,
		DurationSec: elapsed.Seconds(),
		Sent:        int(col.sent.Load()),
		OK:          len(col.latencies),
		Rejected:    int(col.rejected.Load()),
		Expired:     int(col.expired.Load()),
		Errors:      int(col.errors.Load()),
		Dropped:     int(dropped),
	}
	if opts.Mode == "closed" {
		rep.Clients = opts.Clients
	} else {
		rep.TargetQPS = opts.QPS
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	lat := col.latencies
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		rep.MeanNs = sum / int64(len(lat))
		rep.P50Ns = percentile(lat, 0.50)
		rep.P95Ns = percentile(lat, 0.95)
		rep.P99Ns = percentile(lat, 0.99)
		rep.MaxNs = lat[len(lat)-1]
	}
	return rep, nil
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// PredictBody marshals one predict payload.
func PredictBody(shape []int, data []float32) ([]byte, error) {
	return json.Marshal(export.InputTensor{Shape: shape, Data: data})
}

// RandomBody builds a deterministic random predict payload: batch
// samples of the given sample shape (batch 1 emits the bare sample
// shape).
func RandomBody(sample []int, batch int, seed int64) ([]byte, error) {
	if batch <= 0 {
		batch = 1
	}
	g := tensor.NewRNG(seed)
	shape := sample
	if batch > 1 {
		shape = append([]int{batch}, sample...)
	}
	x := g.Uniform(0, 1, shape...)
	return PredictBody(shape, x.Data)
}

// FormatLoadReport renders a human-readable run summary.
func FormatLoadReport(rep *LoadReport) string {
	var sb bytes.Buffer
	if rep.Mode == "closed" {
		fmt.Fprintf(&sb, "closed loop, %d clients, %.2fs\n", rep.Clients, rep.DurationSec)
	} else {
		fmt.Fprintf(&sb, "open loop, target %.0f qps, %.2fs\n", rep.TargetQPS, rep.DurationSec)
	}
	fmt.Fprintf(&sb, "sent %d  ok %d  rejected(429) %d  expired(504) %d  errors %d  dropped %d\n",
		rep.Sent, rep.OK, rep.Rejected, rep.Expired, rep.Errors, rep.Dropped)
	fmt.Fprintf(&sb, "throughput %.1f req/s\n", rep.ThroughputRPS)
	fmt.Fprintf(&sb, "latency mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		time.Duration(rep.MeanNs), time.Duration(rep.P50Ns),
		time.Duration(rep.P95Ns), time.Duration(rep.P99Ns), time.Duration(rep.MaxNs))
	return sb.String()
}
