package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/export"
	"torch2chip/internal/tensor"
)

// LoadOptions configure one load-generation run against the HTTP API.
type LoadOptions struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Model is the target model name.
	Model string
	// Body is the predict payload fired on every request.
	Body []byte
	// Mode is "closed" (Clients loops of back-to-back requests, load
	// tracks service capacity) or "open" (requests fired at QPS
	// regardless of completions, load tests overload behavior).
	Mode string
	// Clients is the closed-loop concurrency (default 8).
	Clients int
	// QPS is the open-loop arrival rate (default 100).
	QPS float64
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// MaxRequests optionally caps total requests (0 = duration-bound).
	MaxRequests int
	// DeadlineMS, when > 0, is sent as ?deadline_ms= on every request.
	DeadlineMS int
	// DeadlinesMS, when non-empty, overrides DeadlineMS with a cycled
	// mix of deadlines (e.g. tight and loose SLO classes sharing one
	// run), which is what separates EDF from FIFO scheduling.
	DeadlinesMS []int
	// Priority, when non-empty, is sent as ?priority= on every request
	// ("high", "normal", "low").
	Priority string
	// Bodies, when non-empty, overrides Body with a pool of payloads
	// sampled per request — the input-repeat trace cache experiments
	// need. ZipfS > 1 samples the pool Zipf-distributed (body 0 most
	// popular); otherwise bodies are sampled uniformly.
	Bodies [][]byte
	// ZipfS is the Zipf skew for Bodies sampling (1.1 = the committed
	// cache trace; values <= 1 mean uniform).
	ZipfS float64
	// Seed makes body sampling deterministic (default 1).
	Seed int64
	// Schedule, when non-empty, shapes the open-loop arrival rate:
	// Duration splits into len(Schedule) equal segments, segment k
	// firing at QPS × Schedule[k] — a bursty or diurnal-ramp trace from
	// one flag.
	Schedule []float64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Mode == "" {
		o.Mode = "closed"
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.QPS <= 0 {
		o.QPS = 100
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LoadReport is the run summary: counts by outcome, achieved
// throughput, and latency percentiles over successful requests.
type LoadReport struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	DurationSec float64 `json:"duration_sec"`

	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"` // HTTP 429: admission shed
	Expired  int `json:"expired"`  // HTTP 504: deadline drop
	Errors   int `json:"errors"`   // transport failures and 5xx
	Dropped  int `json:"dropped"`  // open-loop arrivals skipped at the outstanding cap

	// Attainment is OK/Sent — with per-request deadlines, the fraction
	// of offered load that met its SLO (the EDF-vs-FIFO scoreboard).
	Attainment float64 `json:"attainment"`

	ThroughputRPS float64 `json:"throughput_rps"`
	MeanNs        int64   `json:"mean_ns"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
}

// collector accumulates per-request outcomes across client goroutines.
type collector struct {
	mu        sync.Mutex
	latencies []int64
	sent      atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64
	errors    atomic.Int64
}

func (c *collector) fire(client *http.Client, url string, body []byte) {
	c.sent.Add(1)
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		c.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		ns := time.Since(start).Nanoseconds()
		c.mu.Lock()
		c.latencies = append(c.latencies, ns)
		c.mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		c.rejected.Add(1)
	case resp.StatusCode == http.StatusGatewayTimeout:
		c.expired.Add(1)
	default:
		c.errors.Add(1)
	}
}

// RunLoad drives the predict endpoint per opts and reports throughput
// and latency percentiles.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if opts.URL == "" || opts.Model == "" || (len(opts.Body) == 0 && len(opts.Bodies) == 0) {
		return nil, fmt.Errorf("serve: loadgen needs URL, Model, and Body or Bodies")
	}
	// Precompute the URL variants (one per deadline in the mix, cycled
	// per request) and the body pool sampler.
	base := fmt.Sprintf("%s/v1/models/%s:predict", opts.URL, opts.Model)
	deadlines := opts.DeadlinesMS
	if len(deadlines) == 0 && opts.DeadlineMS > 0 {
		deadlines = []int{opts.DeadlineMS}
	}
	urls := []string{base}
	if len(deadlines) > 0 {
		urls = urls[:0]
		for _, ms := range deadlines {
			urls = append(urls, fmt.Sprintf("%s?deadline_ms=%d", base, ms))
		}
	}
	if opts.Priority != "" {
		for i, u := range urls {
			sep := "?"
			if strings.Contains(u, "?") {
				sep = "&"
			}
			urls[i] = u + sep + "priority=" + opts.Priority
		}
	}
	var urlSeq atomic.Uint64
	nextURL := func() string {
		if len(urls) == 1 {
			return urls[0]
		}
		return urls[(urlSeq.Add(1)-1)%uint64(len(urls))]
	}
	// bodyPicker returns a per-goroutine sampler over the body pool
	// (rand.Zipf is not goroutine-safe, so each client gets its own).
	bodyPicker := func(seed int64) func() []byte {
		if len(opts.Bodies) == 0 {
			return func() []byte { return opts.Body }
		}
		rng := rand.New(rand.NewSource(seed))
		if opts.ZipfS > 1 && len(opts.Bodies) > 1 {
			z := rand.NewZipf(rng, opts.ZipfS, 1, uint64(len(opts.Bodies)-1))
			return func() []byte { return opts.Bodies[z.Uint64()] }
		}
		return func() []byte { return opts.Bodies[rng.Intn(len(opts.Bodies))] }
	}
	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Clients + 64,
			MaxIdleConnsPerHost: opts.Clients + 64,
		},
	}

	col := &collector{}
	stop := time.Now().Add(opts.Duration)
	budget := int64(opts.MaxRequests)
	take := func() bool {
		if time.Now().After(stop) {
			return false
		}
		return budget <= 0 || col.sent.Load() < budget
	}
	start := time.Now()
	var dropped int64
	switch opts.Mode {
	case "closed":
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				pick := bodyPicker(opts.Seed + int64(c))
				for take() {
					col.fire(client, nextURL(), pick())
				}
			}(c)
		}
		wg.Wait()
	case "open":
		// Outstanding requests are capped so a stalled server cannot
		// spawn unbounded goroutines; arrivals past the cap are counted
		// as dropped, not silently delayed (that would close the loop).
		slots := make(chan struct{}, 4096)
		var wg sync.WaitGroup
		pick := bodyPicker(opts.Seed)
		// The arrival schedule: one segment at QPS when none was given,
		// otherwise Duration/len(Schedule) per segment at QPS×multiplier.
		schedule := opts.Schedule
		if len(schedule) == 0 {
			schedule = []float64{1}
		}
		segDur := opts.Duration / time.Duration(len(schedule))
		for _, mult := range schedule {
			rate := opts.QPS * mult
			if rate <= 0 {
				if !sleepWhile(take, segDur) {
					break
				}
				continue
			}
			// Deficit-based pacing: the dispatcher shares cores with the
			// server under test, and a starved loop blocking on a bare
			// time.Ticker silently sheds every missed tick, collapsing the
			// offered rate to the service rate. Each wakeup instead
			// launches however many arrivals the elapsed time now owes, so
			// the target rate holds even when wakeups are late.
			segStart := time.Now()
			segEnd := segStart.Add(segDur)
			launched := 0
			wake := time.NewTicker(time.Millisecond)
			for take() {
				now := time.Now()
				if now.After(segEnd) {
					break
				}
				owed := int(now.Sub(segStart).Seconds()*rate) - launched
				for ; owed > 0; owed-- {
					launched++
					select {
					case slots <- struct{}{}:
						wg.Add(1)
						go func(url string, body []byte) {
							defer wg.Done()
							col.fire(client, url, body)
							<-slots
						}(nextURL(), pick())
					default:
						dropped++
					}
				}
				<-wake.C
			}
			wake.Stop()
			if !take() {
				break
			}
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("serve: unknown load mode %q", opts.Mode)
	}
	elapsed := time.Since(start)

	rep := &LoadReport{
		Mode:        opts.Mode,
		DurationSec: elapsed.Seconds(),
		Sent:        int(col.sent.Load()),
		OK:          len(col.latencies),
		Rejected:    int(col.rejected.Load()),
		Expired:     int(col.expired.Load()),
		Errors:      int(col.errors.Load()),
		Dropped:     int(dropped),
	}
	if opts.Mode == "closed" {
		rep.Clients = opts.Clients
	} else {
		rep.TargetQPS = opts.QPS
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	if rep.Sent > 0 {
		rep.Attainment = float64(rep.OK) / float64(rep.Sent)
	}
	lat := col.latencies
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		rep.MeanNs = sum / int64(len(lat))
		rep.P50Ns = percentile(lat, 0.50)
		rep.P95Ns = percentile(lat, 0.95)
		rep.P99Ns = percentile(lat, 0.99)
		rep.MaxNs = lat[len(lat)-1]
	}
	return rep, nil
}

// sleepWhile idles through a zero-rate schedule segment in small steps,
// returning false as soon as take() says the run is over.
func sleepWhile(take func() bool, d time.Duration) bool {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		if !take() {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
	return take()
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// PredictBody marshals one predict payload.
func PredictBody(shape []int, data []float32) ([]byte, error) {
	return json.Marshal(export.InputTensor{Shape: shape, Data: data})
}

// RandomBody builds a deterministic random predict payload: batch
// samples of the given sample shape (batch 1 emits the bare sample
// shape).
func RandomBody(sample []int, batch int, seed int64) ([]byte, error) {
	if batch <= 0 {
		batch = 1
	}
	g := tensor.NewRNG(seed)
	shape := sample
	if batch > 1 {
		shape = append([]int{batch}, sample...)
	}
	x := g.Uniform(0, 1, shape...)
	return PredictBody(shape, x.Data)
}

// ZipfBodies builds a deterministic pool of n distinct single-sample
// predict payloads for the input-repeat cache experiments: sampled with
// ZipfS > 1, body 0 is the hot head of the popularity distribution.
func ZipfBodies(sample []int, batch, n int, seed int64) ([][]byte, error) {
	if n <= 0 {
		n = 1
	}
	bodies := make([][]byte, n)
	for i := range bodies {
		b, err := RandomBody(sample, batch, seed+int64(i))
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// ParseRateSchedule parses a comma-separated list of open-loop rate
// multipliers like "1,4,0.5,4" (equal-duration segments).
func ParseRateSchedule(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("serve: bad rate schedule %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseIntList parses a comma-separated list of positive integers like
// "25,250" (the mixed-deadline flag).
func ParseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("serve: bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ScrapeMetric pulls one sample out of a Prometheus text exposition:
// the first series of metric labeled model=name (any extra labels
// match). The loadgen CLI uses it to report cache hit rates without a
// metrics client dependency.
func ScrapeMetric(text, metric, model string) (float64, bool) {
	want := fmt.Sprintf("model=%q", model)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, metric) {
			continue
		}
		rest := line[len(metric):]
		// Exact metric name: next char must open the label set or be a
		// space (otherwise we matched a prefix like _total vs _totals).
		if len(rest) == 0 || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		if model != "" && !strings.Contains(rest, want) {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			return v, true
		}
	}
	return 0, false
}

// FormatLoadReport renders a human-readable run summary.
func FormatLoadReport(rep *LoadReport) string {
	var sb bytes.Buffer
	if rep.Mode == "closed" {
		fmt.Fprintf(&sb, "closed loop, %d clients, %.2fs\n", rep.Clients, rep.DurationSec)
	} else {
		fmt.Fprintf(&sb, "open loop, target %.0f qps, %.2fs\n", rep.TargetQPS, rep.DurationSec)
	}
	fmt.Fprintf(&sb, "sent %d  ok %d  rejected(429) %d  expired(504) %d  errors %d  dropped %d  attainment %.3f\n",
		rep.Sent, rep.OK, rep.Rejected, rep.Expired, rep.Errors, rep.Dropped, rep.Attainment)
	fmt.Fprintf(&sb, "throughput %.1f req/s\n", rep.ThroughputRPS)
	fmt.Fprintf(&sb, "latency mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		time.Duration(rep.MeanNs), time.Duration(rep.P50Ns),
		time.Duration(rep.P95Ns), time.Duration(rep.P99Ns), time.Duration(rep.MaxNs))
	return sb.String()
}
