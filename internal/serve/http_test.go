package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/serve"
	"torch2chip/internal/tensor"
)

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func checkpointBody(t *testing.T, ck *export.Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ck.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHTTPEndToEnd(t *testing.T) {
	ck, im := buildCheckpoint(t, 5)
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()

	// Upload the checkpoint.
	resp, body := postJSON(t, ts.URL+"/v1/models/cnn", checkpointBody(t, ck))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var info serve.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Name != "cnn" {
		t.Fatalf("upload info %+v", info)
	}

	// healthz.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"ok"`) {
		t.Fatalf("healthz %d: %s", hr.StatusCode, hb)
	}

	// Single-sample predict, bit-identical to the interpreter.
	g := tensor.NewRNG(500)
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	pb, err := serve.PredictBody([]int{3, 8, 8}, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("predictions %d, want 1", len(pr.Predictions))
	}
	want := im.Forward(x)
	if pr.Predictions[0].Class != want.Argmax() {
		t.Fatalf("class %d, want %d", pr.Predictions[0].Class, want.Argmax())
	}
	for i := range want.Data {
		if pr.Predictions[0].Logits[i] != want.Data[i] {
			t.Fatalf("logit[%d] = %v, interpreter %v", i, pr.Predictions[0].Logits[i], want.Data[i])
		}
	}

	// Batched predict: shape [N, sample...], one prediction per sample.
	const batch = 3
	xb := g.Uniform(0, 1, batch, 3, 8, 8)
	pb, err = serve.PredictBody([]int{batch, 3, 8, 8}, xb.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batched predict status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != batch {
		t.Fatalf("predictions %d, want %d", len(pr.Predictions), batch)
	}
	sampleN := len(xb.Data) / batch
	for i := 0; i < batch; i++ {
		xi := tensor.FromSlice(append([]float32(nil), xb.Data[i*sampleN:(i+1)*sampleN]...), 1, 3, 8, 8)
		wi := im.Forward(xi)
		for j := range wi.Data {
			if pr.Predictions[i].Logits[j] != wi.Data[j] {
				t.Fatalf("sample %d logit[%d] = %v, interpreter %v", i, j, pr.Predictions[i].Logits[j], wi.Data[j])
			}
		}
	}

	// Listing.
	lr, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	if !strings.Contains(string(lb), `"cnn"`) {
		t.Fatalf("listing missing model: %s", lb)
	}

	// Hot reload over HTTP bumps the version.
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn", checkpointBody(t, ck))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info.Version)
	}

	// Replaying the first input against the reloaded version: the
	// checkpoint content is identical, so the fingerprint-keyed cache
	// stays warm across the reload and serves this as a hit —
	// bit-identical logits, no engine execution.
	pbr, err := serve.PredictBody([]int{3, 8, 8}, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict", pbr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload predict status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Predictions[0].Cached {
		t.Fatalf("post-reload replay not served from cache: %+v", pr.Predictions[0])
	}
	for i := range want.Data {
		if pr.Predictions[0].Logits[i] != want.Data[i] {
			t.Fatalf("cached logit[%d] = %v, interpreter %v", i, pr.Predictions[0].Logits[i], want.Data[i])
		}
	}

	// A fresh input still executes: bound executors make the memory
	// gauges below live for the reloaded pool.
	xf := g.Uniform(0, 1, 1, 3, 8, 8)
	pbf, err := serve.PredictBody([]int{3, 8, 8}, xf.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict", pbf)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload fresh predict status %d: %s", resp.StatusCode, body)
	}

	// Metrics: per-model counters and the engine histogram/gauges.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	ms := string(mb)
	for _, wantLine := range []string{
		`t2c_requests_total{model="cnn",result="ok"} 4`,
		`t2c_request_latency_seconds_count{model="cnn",result="ok"} 4`,
		`t2c_request_latency_seconds_bucket{model="cnn",result="ok",le="+Inf"} 4`,
		`t2c_replica_queue_depth{model="cnn"}`,
		`t2c_batch_wait_seconds_count{model="cnn"}`,
		`t2c_batch_exec_seconds_count{model="cnn"}`,
		`t2c_model_version{model="cnn"} 2`,
		`t2c_engine_requests_total{model="cnn"} 5`, // 1 single + 3 batched + 1 post-reload fresh
		`t2c_cache_hits_total{model="cnn"} 1`,      // the post-reload replay
		`t2c_engine_arena_bytes{model="cnn"}`,
		`t2c_engine_scratch_bytes{model="cnn"}`,
		`t2c_engine_weight_sparsity{model="cnn"}`,
		`t2c_engine_skip_fraction{model="cnn"}`,
	} {
		if !strings.Contains(ms, wantLine) {
			t.Fatalf("metrics missing %q in:\n%s", wantLine, ms)
		}
	}
	// Traffic has flowed through the reloaded version, so its executors
	// hold at least one planned arena: the gauge must be positive.
	var arena int64
	for _, line := range strings.Split(ms, "\n") {
		if strings.HasPrefix(line, `t2c_engine_arena_bytes{model="cnn"} `) {
			if _, err := fmt.Sscanf(line, `t2c_engine_arena_bytes{model="cnn"} %d`, &arena); err != nil {
				t.Fatalf("unparsable arena gauge %q: %v", line, err)
			}
		}
	}
	if arena <= 0 {
		t.Fatalf("arena gauge = %d, want > 0", arena)
	}

	// DELETE retires the model; predict then 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/cnn", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dr.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after delete status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPRejectsBadRequests(t *testing.T) {
	ck, _ := buildCheckpoint(t, 6)
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	// Unknown model.
	g := tensor.NewRNG(600)
	pb, _ := serve.PredictBody([]int{3, 8, 8}, g.Uniform(0, 1, 3, 8, 8).Data)
	resp, _ := postJSON(t, ts.URL+"/v1/models/nope:predict", pb)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d, want 404", resp.StatusCode)
	}

	// Transposed layout with matching element count.
	bad, _ := serve.PredictBody([]int{8, 8, 3}, g.Uniform(0, 1, 8, 8, 3).Data)
	resp, body := postJSON(t, ts.URL+"/v1/models/cnn:predict", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("transposed input status %d (%s), want 400", resp.StatusCode, body)
	}

	// Garbage payloads.
	resp, _ = postJSON(t, ts.URL+"/v1/models/cnn:predict", []byte("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage predict status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models/other", []byte("not a checkpoint"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status %d, want 400", resp.StatusCode)
	}

	// Bad deadline parameters: unparsable, negative, and zero are all
	// client errors, not generic 500s.
	for _, q := range []string{"banana", "-5", "0"} {
		resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict?deadline_ms="+q, pb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline_ms=%s status %d (%s), want 400", q, resp.StatusCode, body)
		}
	}

	// Unknown priority class is a client error; known classes serve.
	resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict?priority=urgent", pb)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("priority=urgent status %d (%s), want 400", resp.StatusCode, body)
	}
	for _, q := range []string{"high", "normal", "low"} {
		resp, body = postJSON(t, ts.URL+"/v1/models/cnn:predict?priority="+q, pb)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("priority=%s status %d (%s), want 200", q, resp.StatusCode, body)
		}
	}
}

// TestHTTPDeadlineExpiredAtAdmission: a request whose deadline has
// already passed once the body is parsed must be rejected with 504
// before it reaches the engine at all — no fan-out, no wasted compute.
func TestHTTPDeadlineExpiredAtAdmission(t *testing.T) {
	ck, _ := buildCheckpoint(t, 8)
	reg := serve.NewRegistry(serve.Options{CacheCapacity: -1})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	// A large batch makes body decode reliably outlast the 1 ms deadline.
	g := tensor.NewRNG(601)
	x := g.Uniform(0, 1, 256, 3, 8, 8)
	pb, err := serve.PredictBody([]int{256, 3, 8, 8}, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/models/cnn:predict?deadline_ms=1", pb)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("pre-expired predict status %d (%s), want 504", resp.StatusCode, body)
	}
	if got := reg.Models()[0].Stats.Requests; got != 0 {
		t.Fatalf("expired request fanned out to the engine (%d requests served)", got)
	}
}

func TestHTTPOverloadReturns429(t *testing.T) {
	ck, _ := buildCheckpoint(t, 7)
	gate := make(chan struct{}, 1)
	release := make(chan struct{})
	reg := serve.NewRegistry(serve.Options{
		MaxInFlight: 1,
		Engine:      engine.ServerOptions{Workers: 1, MaxBatch: 1, QueueSize: 1, Kernels: blockingKernels(gate, release)},
	})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	g := tensor.NewRNG(700)
	pb, _ := serve.PredictBody([]int{3, 8, 8}, g.Uniform(0, 1, 3, 8, 8).Data)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held request finished %d: %s", resp.StatusCode, body)
		}
	}()
	<-gate // worker parked mid-execute, in-flight budget spent

	resp, body := postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d (%s), want 429", resp.StatusCode, body)
	}
	close(release)
	wg.Wait()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), `t2c_requests_total{model="cnn",result="rejected"} 1`) {
		t.Fatalf("metrics missing rejected counter:\n%s", mb)
	}
}

func TestHTTPBatchWiderThanAdmissionBudget(t *testing.T) {
	// A single batched request larger than MaxInFlight must run in
	// waves and succeed on an idle server, not 429 against itself.
	ck, _ := buildCheckpoint(t, 9)
	reg := serve.NewRegistry(serve.Options{MaxInFlight: 2})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	const batch = 6
	g := tensor.NewRNG(800)
	pb, err := serve.PredictBody([]int{batch, 3, 8, 8}, g.Uniform(0, 1, batch, 3, 8, 8).Data)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/models/cnn:predict", pb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wide batch status %d (%s), want 200", resp.StatusCode, body)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != batch {
		t.Fatalf("predictions %d, want %d", len(pr.Predictions), batch)
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	ck, _ := buildCheckpoint(t, 8)
	reg := serve.NewRegistry(serve.Options{})
	defer reg.Close()
	ts := httptest.NewServer(serve.NewHandler(reg, serve.HandlerOptions{}))
	defer ts.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}

	body, err := serve.RandomBody([]int{3, 8, 8}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.RunLoad(serve.LoadOptions{
		URL: ts.URL, Model: "cnn", Body: body,
		Mode: "closed", Clients: 4, MaxRequests: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK < 64 || rep.Errors > 0 || rep.Rejected > 0 {
		t.Fatalf("load report %+v, want ≥64 ok and no failures", rep)
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns || rep.ThroughputRPS <= 0 {
		t.Fatalf("latency stats %+v look wrong", rep)
	}
	if fmt.Sprint(serve.FormatLoadReport(rep)) == "" {
		t.Fatal("empty report")
	}
}
