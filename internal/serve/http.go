package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// HandlerOptions tune the HTTP layer.
type HandlerOptions struct {
	// MaxBodyBytes bounds request bodies (predict payloads and
	// checkpoint uploads). Default 1 GiB.
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// serving mux (off by default: profiles expose internals, so the
	// flag is an explicit opt-in).
	EnablePprof bool
}

func (o HandlerOptions) withDefaults() HandlerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
	return o
}

// Handler is the HTTP/JSON front end over a Registry:
//
//	POST /v1/models/{name}:predict   run inference (single or batched tensor)
//	POST /v1/models/{name}           load / hot-reload a checkpoint
//	DELETE /v1/models/{name}         retire a model
//	GET  /v1/models                  list models and serving stats
//	GET  /healthz                    liveness probe
//	GET  /metrics                    Prometheus text metrics
//	GET  /debug/trace?model={name}   Chrome trace-event JSON span dump
//	GET  /debug/pprof/...            stdlib profiles (EnablePprof only)
type Handler struct {
	reg      *Registry
	metrics  *Metrics
	opts     HandlerOptions
	mux      *http.ServeMux
	traceSeq atomic.Uint64 // request trace-id allocator
}

// NewHandler wires the API routes over reg.
func NewHandler(reg *Registry, opts HandlerOptions) *Handler {
	h := &Handler{reg: reg, metrics: NewMetrics(), opts: opts.withDefaults(), mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/metrics", h.serveMetrics)
	h.mux.HandleFunc("/v1/models", h.list)
	h.mux.HandleFunc("/v1/models/", h.models)
	h.mux.HandleFunc("/debug/trace", h.debugTrace)
	if h.opts.EnablePprof {
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h
}

// Metrics exposes the handler's metrics store (the bench and tests read
// observed counters through the /metrics endpoint instead).
func (h *Handler) Metrics() *Metrics { return h.metrics }

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// Prediction is one sample's result. Cached marks responses served from
// the content-addressed inference cache — bit-identical to a recompute,
// flagged only so operators can attribute latency.
type Prediction struct {
	Class   int       `json:"class"`
	Logits  []float32 `json:"logits"`
	Version int       `json:"version"`
	Cached  bool      `json:"cached,omitempty"`
}

// PredictResponse is the predict endpoint's body.
type PredictResponse struct {
	Model       string       `json:"model"`
	Predictions []Prediction `json:"predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps serving errors to HTTP codes: overload sheds as 429,
// expired deadlines as 504, unknown models as 404.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, ResultInvalid
	case errors.Is(err, ErrOverloaded), errors.Is(err, engine.ErrQueueFull):
		return http.StatusTooManyRequests, ResultRejected
	case errors.Is(err, engine.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, ResultExpired
	case errors.Is(err, engine.ErrShapeMismatch):
		// A valid-at-parse-time request can still mis-shape if a hot
		// reload changed the model's input shape mid-request.
		return http.StatusBadRequest, ResultInvalid
	default:
		return http.StatusInternalServerError, ResultError
	}
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": len(h.reg.Models())})
}

func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.metrics.WriteText(w, h.reg)
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	infos := h.reg.Models()
	if infos == nil {
		infos = []ModelInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

// models dispatches /v1/models/{name} and /v1/models/{name}:predict.
func (h *Handler) models(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if rest == "" || strings.Contains(rest, "/") {
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
		return
	}
	if name, ok := strings.CutSuffix(rest, ":predict"); ok {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		h.predict(w, r, name)
		return
	}
	switch r.Method {
	case http.MethodPost:
		h.load(w, r, rest)
	case http.MethodDelete:
		if err := h.reg.Remove(rest); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": rest})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use POST or DELETE")
	}
}

// Span lanes of the HTTP layer. Engine workers use their worker index
// and the batcher uses lane 999, so HTTP spans start at 1000: the
// request span on httpLane, fan-out spans spread over the next
// fanoutLanes so concurrent samples don't stack on one Chrome track.
const (
	httpLane    = 1000
	fanoutLanes = 63
)

// traceID resolves the request's trace id: an X-Trace-Id header (hex,
// non-zero) propagates an upstream id, otherwise a fresh one is drawn
// from the handler's counter.
func (h *Handler) traceID(r *http.Request) uint64 {
	if v := r.Header.Get("X-Trace-Id"); v != "" {
		if id, err := strconv.ParseUint(v, 16, 64); err == nil && id != 0 {
			return id
		}
	}
	return h.traceSeq.Add(1)
}

// resultCode compresses a result label into a span argument.
func resultCode(result string) int64 {
	switch result {
	case ResultOK:
		return 0
	case ResultRejected:
		return 1
	case ResultExpired:
		return 2
	case ResultInvalid:
		return 3
	default:
		return 4
	}
}

// predict parses a single or batched input tensor, fans the samples out
// concurrently (so one batched request coalesces in the micro-batcher),
// and replies with per-sample logits and argmax classes.
func (h *Handler) predict(w http.ResponseWriter, r *http.Request, name string) {
	start := time.Now()
	sample, err := h.reg.SampleShape(name)
	if err != nil {
		h.metrics.ObserveUnknown()
		writeError(w, http.StatusNotFound, "model %q not loaded", name)
		return
	}

	// When the model's tracer is armed and this request is sampled,
	// record a request span plus one fan-out span per sample, all
	// carrying one trace id that the engine stitches into its queue-wait
	// spans. The untraced path pays one nil-ring branch.
	ring := h.reg.TraceRing(name)
	tracer := ring.Tracer()
	traced := ring.Active() && tracer.SampleRequest()
	var tid uint64
	var reqStart int64
	var nmRequest, nmFanout uint32
	if traced {
		tid = h.traceID(r)
		reqStart = ring.Now()
		nmRequest = tracer.Intern("request")
		nmFanout = tracer.Intern("fanout")
		w.Header().Set("X-Trace-Id", strconv.FormatUint(tid, 16))
	}
	endSpan := func(samples int, result string) {
		if traced {
			now := ring.Now()
			ring.Record(trace.Span{Start: reqStart, Dur: now - reqStart,
				Name: nmRequest, Kind: trace.KindRequest, TID: httpLane,
				ID: tid, A0: int64(samples), A1: resultCode(result)})
		}
	}
	// Validate scheduling parameters before reading the body: a request
	// with a malformed deadline or priority is a client error (400)
	// regardless of payload, and rejecting it here skips the tensor parse.
	deadline, err := h.deadline(r)
	if err != nil {
		h.metrics.Observe(name, ResultInvalid, 0)
		endSpan(0, ResultInvalid)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	class, err := h.priority(r)
	if err != nil {
		h.metrics.Observe(name, ResultInvalid, 0)
		endSpan(0, ResultInvalid)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	in, err := export.ReadInputJSON(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes))
	if err != nil {
		h.metrics.Observe(name, ResultInvalid, 0)
		endSpan(0, ResultInvalid)
		writeError(w, http.StatusBadRequest, "bad input tensor: %v", err)
		return
	}
	xs, err := in.Samples(sample)
	if err != nil {
		h.metrics.Observe(name, ResultInvalid, 0)
		endSpan(0, ResultInvalid)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A deadline that expired while the body was read (or arrived
	// already dead) is rejected before any fan-out: no admission tokens,
	// no queue slots, no execution for work that cannot meet its SLO.
	if !deadline.IsZero() && time.Now().After(deadline) {
		h.metrics.Observe(name, ResultExpired, time.Since(start))
		endSpan(len(xs), ResultExpired)
		writeError(w, http.StatusGatewayTimeout, "%v", engine.ErrDeadlineExceeded)
		return
	}

	// Fan out at most MaxInFlight samples at a time: each sample is one
	// admission unit, so a wider batch would exhaust the budget against
	// itself and 429 even on an idle server. Waves keep any batch size
	// servable while still shedding against concurrent traffic.
	width := len(xs)
	if m := h.reg.MaxInFlight(); m > 0 && m < width {
		width = m
	}
	preds := make([]Prediction, len(xs))
	errs := make([]error, len(xs))
	slots := make(chan struct{}, width)
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		slots <- struct{}{}
		go func(i int, x *tensor.Tensor) {
			defer wg.Done()
			defer func() { <-slots }()
			var t0 int64
			if traced {
				t0 = ring.Now()
			}
			res, err := h.reg.Predict(name, x, deadline, class, tid)
			if traced {
				code := int64(0)
				if err != nil {
					_, res := statusFor(err)
					code = resultCode(res)
				}
				ring.Record(trace.Span{Start: t0, Dur: ring.Now() - t0,
					Name: nmFanout, Kind: trace.KindFanout,
					TID: httpLane + 1 + int32(i%fanoutLanes),
					ID:  tid, A0: int64(i), A1: code})
			}
			if err != nil {
				errs[i] = err
				return
			}
			preds[i] = Prediction{Class: res.Y.Argmax(), Logits: res.Y.Data, Version: res.Version, Cached: res.Cached}
		}(i, x)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			code, result := statusFor(err)
			h.metrics.Observe(name, result, time.Since(start))
			endSpan(len(xs), result)
			writeError(w, code, "%v", err)
			return
		}
	}
	h.metrics.Observe(name, ResultOK, time.Since(start))
	endSpan(len(xs), ResultOK)
	writeJSON(w, http.StatusOK, PredictResponse{Model: name, Predictions: preds})
}

// debugTrace dumps ?model=X's recorded spans as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing). The dump is a
// flight-recorder snapshot: the most recent spans still intact in the
// model's rings, sorted by start time.
func (h *Handler) debugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing ?model= parameter")
		return
	}
	t := h.reg.Tracer(name)
	if t == nil {
		writeError(w, http.StatusNotFound,
			"no trace for model %q (model not loaded, or serving started without tracing)", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChrome(w, t, name, t.Snapshot())
}

// maxDeadlineMS caps ?deadline_ms= so the millisecond→Duration
// conversion cannot overflow int64 nanoseconds (2^40 ms ≈ 35 years —
// anything larger means "no deadline" in practice anyway).
const maxDeadlineMS = 1 << 40

// deadline resolves the request deadline: ?deadline_ms= overrides the
// registry default. Unparsable, zero, or negative values are client
// errors the predict handler maps to 400.
func (h *Handler) deadline(r *http.Request) (time.Time, error) {
	q := r.URL.Query().Get("deadline_ms")
	if q == "" {
		if d := h.reg.opts.DefaultDeadline; d > 0 {
			return time.Now().Add(d), nil
		}
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(q, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, fmt.Errorf("bad deadline_ms %q (want a positive integer)", q)
	}
	if ms > maxDeadlineMS {
		ms = maxDeadlineMS
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
}

// priority resolves the request's priority class from ?priority= (the
// X-Priority header is the fallback): high, normal (the default), or
// low. Unknown names are client errors mapped to 400.
func (h *Handler) priority(r *http.Request) (engine.PriorityClass, error) {
	q := r.URL.Query().Get("priority")
	if q == "" {
		q = r.Header.Get("X-Priority")
	}
	return engine.ParsePriority(q)
}

// load reads a checkpoint body and installs it under name (hot reload
// when the name already serves). ?shape=C,H,W overrides the sample
// shape for checkpoints that predate the recorded in_shape field.
func (h *Handler) load(w http.ResponseWriter, r *http.Request, name string) {
	ck, err := export.ReadJSON(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad checkpoint: %v", err)
		return
	}
	var sample []int
	if q := r.URL.Query().Get("shape"); q != "" {
		if sample, err = ParseShape(q); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	info, err := h.reg.Load(name, ck, sample)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusOK
	if info.Version == 1 {
		code = http.StatusCreated
	}
	writeJSON(w, code, info)
}

// ParseShape parses a comma-separated shape like "3,32,32".
func ParseShape(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("serve: bad shape %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
