package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/trace"
)

// Request results counted per model by the HTTP layer.
const (
	ResultOK       = "ok"       // 200, logits returned
	ResultRejected = "rejected" // 429, shed by admission control
	ResultExpired  = "expired"  // 504, deadline passed before execution
	ResultError    = "error"    // 500, execution failure
	ResultInvalid  = "invalid"  // 400, malformed payload
)

var allResults = []string{ResultOK, ResultRejected, ResultExpired, ResultError, ResultInvalid}

// latencyResults are the results that get a latency histogram: requests
// that reached the serving path. Rejections and malformed payloads fail
// before any meaningful latency accrues, so histograms for them would
// only blur the percentiles.
var latencyResults = []string{ResultOK, ResultExpired, ResultError}

// latencyBucketsNs are the histogram upper bounds (100µs … 10s,
// roughly 1-2.5-5 per decade), exposed in seconds in the Prometheus
// text format; an implicit +Inf bucket follows.
var latencyBucketsNs = []int64{
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000,
	10_000_000_000,
}

// histogram is a fixed-bucket cumulative latency histogram with atomic
// counters (per-bucket counts are non-cumulative internally and summed
// at exposition time). The last bucket is the implicit +Inf overflow.
type histogram struct {
	buckets []atomic.Int64 // len(latencyBucketsNs)+1
	sumNs   atomic.Int64
	count   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Int64, len(latencyBucketsNs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := sort.Search(len(latencyBucketsNs), func(i int) bool { return ns <= latencyBucketsNs[i] })
	h.buckets[i].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// modelMetrics is the HTTP-side per-model record: result counters and
// predict-latency histograms keyed by result (ok / expired / error), so
// timeout and failure latency is visible instead of only the happy
// path.
type modelMetrics struct {
	results map[string]*atomic.Int64
	latency map[string]*histogram
}

func newModelMetrics() *modelMetrics {
	mm := &modelMetrics{results: map[string]*atomic.Int64{}, latency: map[string]*histogram{}}
	for _, res := range allResults {
		mm.results[res] = &atomic.Int64{}
	}
	for _, res := range latencyResults {
		mm.latency[res] = newHistogram()
	}
	return mm
}

// Metrics aggregates per-model HTTP serving counters. The engine-side
// counters (batches, coalescing, queue rejects) live in the registry
// and are joined in at exposition time by the handler. Requests naming
// unknown models share one unlabeled counter: per-name entries keyed by
// attacker-chosen URL segments would grow the map (and every scrape)
// without bound.
type Metrics struct {
	mu      sync.RWMutex
	models  map[string]*modelMetrics
	unknown atomic.Int64
}

// ObserveUnknown counts a request naming a model that is not loaded.
func (m *Metrics) ObserveUnknown() { m.unknown.Add(1) }

// NewMetrics builds an empty metrics store.
func NewMetrics() *Metrics { return &Metrics{models: map[string]*modelMetrics{}} }

func (m *Metrics) model(name string) *modelMetrics {
	m.mu.RLock()
	mm := m.models[name]
	m.mu.RUnlock()
	if mm != nil {
		return mm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if mm = m.models[name]; mm == nil {
		mm = newModelMetrics()
		m.models[name] = mm
	}
	return mm
}

// Observe records one predict request's result and latency. Latency
// feeds the result's histogram when it has one (ok, expired, error).
func (m *Metrics) Observe(model, result string, d time.Duration) {
	mm := m.model(model)
	if c, ok := mm.results[result]; ok {
		c.Add(1)
	}
	if h, ok := mm.latency[result]; ok {
		h.observe(d)
	}
}

// WriteText emits the Prometheus text exposition (format 0.0.4) for the
// HTTP-side counters plus the registry's engine-level stats.
func (m *Metrics) WriteText(w io.Writer, reg *Registry) {
	m.mu.RLock()
	names := make([]string, 0, len(m.models))
	for n := range m.models {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP t2c_requests_unknown_total Predict requests naming a model that is not loaded.\n")
	fmt.Fprintf(w, "# TYPE t2c_requests_unknown_total counter\n")
	fmt.Fprintf(w, "t2c_requests_unknown_total %d\n", m.unknown.Load())

	fmt.Fprintf(w, "# HELP t2c_requests_total Predict requests by model and result.\n")
	fmt.Fprintf(w, "# TYPE t2c_requests_total counter\n")
	for _, n := range names {
		mm := m.model(n)
		for _, res := range allResults {
			fmt.Fprintf(w, "t2c_requests_total{model=%q,result=%q} %d\n", n, res, mm.results[res].Load())
		}
	}

	fmt.Fprintf(w, "# HELP t2c_request_latency_seconds Predict latency by model and result.\n")
	fmt.Fprintf(w, "# TYPE t2c_request_latency_seconds histogram\n")
	for _, n := range names {
		mm := m.model(n)
		for _, res := range latencyResults {
			h := mm.latency[res]
			labels := fmt.Sprintf("model=%q,result=%q", n, res)
			cum := int64(0)
			for i, ub := range latencyBucketsNs {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "t2c_request_latency_seconds_bucket{%s,le=\"%g\"} %d\n",
					labels, float64(ub)/1e9, cum)
			}
			cum += h.buckets[len(latencyBucketsNs)].Load()
			fmt.Fprintf(w, "t2c_request_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
			fmt.Fprintf(w, "t2c_request_latency_seconds_sum{%s} %g\n", labels, float64(h.sumNs.Load())/1e9)
			fmt.Fprintf(w, "t2c_request_latency_seconds_count{%s} %d\n", labels, h.count.Load())
		}
	}

	if reg == nil {
		return
	}
	infos := reg.Models()
	emit := func(metric, help, typ string, val func(ModelInfo) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		for _, mi := range infos {
			fmt.Fprintf(w, "%s{model=%q} %d\n", metric, mi.Name, val(mi))
		}
	}
	emit("t2c_model_version", "Currently served checkpoint version.", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.Version) })
	emit("t2c_model_replicas", "engine.Server replicas behind the model.", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.Replicas) })
	emit("t2c_engine_requests_total", "Samples served by the replica pools.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.Requests })
	emit("t2c_engine_batches_total", "Batched executes run by the replica pools.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.Batches })
	emit("t2c_engine_failures_total", "Samples that failed during execution.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.Failures })
	emit("t2c_engine_queue_rejects_total", "Samples fast-failed on full replica queues.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.Rejected })
	emit("t2c_engine_deadline_drops_total", "Samples dropped unexecuted past their deadline.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.Expired })
	emit("t2c_admission_rejects_total", "Requests shed by the max-in-flight admission gate.", "counter",
		func(mi ModelInfo) int64 { return mi.Shed })
	emit("t2c_engine_arena_bytes", "Planned per-dtype buffer arenas held by the serving version's executors.", "gauge",
		func(mi ModelInfo) int64 { return mi.Mem.ArenaBytes })
	emit("t2c_engine_scratch_bytes", "Kernel scratch bound by the serving version's executors.", "gauge",
		func(mi ModelInfo) int64 { return mi.Mem.ScratchBytes })
	emit("t2c_engine_waves", "Parallel scheduling waves in the serving version's plan.", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.Mem.Waves) })
	fmt.Fprintf(w, "# HELP t2c_engine_parallel_fraction Modeled work share inside parallel waves.\n# TYPE t2c_engine_parallel_fraction gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_engine_parallel_fraction{model=%q} %g\n", mi.Name, mi.Mem.ParallelFraction)
	}
	fmt.Fprintf(w, "# HELP t2c_engine_weight_sparsity Exactly-zero weight fraction of the serving program.\n# TYPE t2c_engine_weight_sparsity gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_engine_weight_sparsity{model=%q} %g\n", mi.Name, mi.Mem.WeightSparsity)
	}
	fmt.Fprintf(w, "# HELP t2c_engine_skip_fraction Modeled MAC share skipped by the sparsity-aware kernels.\n# TYPE t2c_engine_skip_fraction gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_engine_skip_fraction{model=%q} %g\n", mi.Name, mi.Mem.SkipFraction)
	}
	fmt.Fprintf(w, "# HELP t2c_engine_mean_batch Mean samples per batched execute.\n# TYPE t2c_engine_mean_batch gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_engine_mean_batch{model=%q} %g\n", mi.Name, mi.Stats.MeanBatch())
	}
	emit("t2c_replica_queue_depth", "Requests waiting in replica queues, sampled at scrape time.", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.QueueDepth) })
	emit("t2c_cache_hits_total", "Inference-cache hits (bit-identical to recompute).", "counter",
		func(mi ModelInfo) int64 { return mi.Cache.Hits })
	emit("t2c_cache_misses_total", "Inference-cache misses.", "counter",
		func(mi ModelInfo) int64 { return mi.Cache.Misses })
	emit("t2c_cache_evictions_total", "Inference-cache LRU evictions.", "counter",
		func(mi ModelInfo) int64 { return mi.Cache.Evictions })
	emit("t2c_cache_suppressed_total", "Inserts skipped while hit-rate admission backed caching off.", "counter",
		func(mi ModelInfo) int64 { return mi.Cache.Suppressed })
	emit("t2c_cache_entries", "Inference-cache entries currently held.", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.Cache.Entries) })
	emit("t2c_cache_capacity", "Inference-cache capacity (0 = caching disabled).", "gauge",
		func(mi ModelInfo) int64 { return int64(mi.Cache.Capacity) })
	fmt.Fprintf(w, "# HELP t2c_cache_hit_rate Lifetime inference-cache hit rate.\n# TYPE t2c_cache_hit_rate gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_cache_hit_rate{model=%q} %g\n", mi.Name, mi.Cache.HitRate)
	}
	emit("t2c_sched_shed_high_total", "High-class samples shed on full replica queues.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.ShedHigh })
	emit("t2c_sched_shed_normal_total", "Normal-class samples shed on full replica queues.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.ShedNormal })
	emit("t2c_sched_shed_low_total", "Low-class samples shed on full replica queues.", "counter",
		func(mi ModelInfo) int64 { return mi.Stats.ShedLow })
	emit("t2c_modeled_batch_ns", "Modeled full-batch execution cost in nanoseconds (EstimateCost at MaxBatch).", "gauge",
		func(mi ModelInfo) int64 { return mi.Cost.ModeledBatchNs })
	fmt.Fprintf(w, "# HELP t2c_batch_cost_abs_err Mean relative modeled-vs-measured batch execution error.\n# TYPE t2c_batch_cost_abs_err gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "t2c_batch_cost_abs_err{model=%q} %g\n", mi.Name, mi.Cost.MeanAbsErr())
	}
	fmt.Fprintf(w, "# HELP t2c_batch_wait_seconds Time each dispatched batch sat open in the batcher.\n# TYPE t2c_batch_wait_seconds histogram\n")
	for _, mi := range infos {
		writeHistSnapshot(w, "t2c_batch_wait_seconds", fmt.Sprintf("model=%q", mi.Name), mi.BatchWait)
	}
	fmt.Fprintf(w, "# HELP t2c_batch_exec_seconds Measured batch execution time.\n# TYPE t2c_batch_exec_seconds histogram\n")
	for _, mi := range infos {
		writeHistSnapshot(w, "t2c_batch_exec_seconds", fmt.Sprintf("model=%q", mi.Name), mi.BatchExec)
	}
	fmt.Fprintf(w, "# HELP t2c_batch_slack_seconds Earliest-deadline slack remaining at batch dispatch.\n# TYPE t2c_batch_slack_seconds histogram\n")
	for _, mi := range infos {
		writeHistSnapshot(w, "t2c_batch_slack_seconds", fmt.Sprintf("model=%q", mi.Name), mi.BatchSlack)
	}
	// Per-op execution-time histograms exist only when the registry was
	// built with tracing: they aggregate the engine's instruction spans.
	wroteOpHeader := false
	for _, mi := range infos {
		ops := reg.Tracer(mi.Name).OpProfile()
		if len(ops) > 0 && !wroteOpHeader {
			fmt.Fprintf(w, "# HELP t2c_op_seconds Measured per-instruction execution time by op kind (traced models only).\n# TYPE t2c_op_seconds histogram\n")
			wroteOpHeader = true
		}
		for _, op := range ops {
			writeHistSnapshot(w, "t2c_op_seconds", fmt.Sprintf("model=%q,op=%q", mi.Name, op.Name), op.Hist)
		}
	}
}

// writeHistSnapshot emits one trace.HistSnapshot (ns bounds,
// non-cumulative counts) as a Prometheus histogram in seconds.
func writeHistSnapshot(w io.Writer, metric, labels string, h trace.HistSnapshot) {
	cum := int64(0)
	for i, ub := range h.BoundsNs {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", metric, labels, float64(ub)/1e9, cum)
	}
	if n := len(h.BoundsNs); n < len(h.Counts) {
		cum += h.Counts[n]
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", metric, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", metric, labels, float64(h.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", metric, labels, h.Count)
}
