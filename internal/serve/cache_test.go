package serve_test

import (
	"testing"
	"time"

	"torch2chip/internal/engine"
	"torch2chip/internal/serve"
	"torch2chip/internal/tensor"
)

// predictOnce drives the cache-aware Predict path with no deadline and
// normal priority.
func predictOnce(t *testing.T, reg *serve.Registry, name string, x *tensor.Tensor) serve.PredictResult {
	t.Helper()
	res, err := reg.Predict(name, x, time.Time{}, engine.PriNormal, 0)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	return res
}

// cacheInfo fetches the single model's info snapshot.
func cacheInfo(t *testing.T, reg *serve.Registry) serve.ModelInfo {
	t.Helper()
	ms := reg.Models()
	if len(ms) != 1 {
		t.Fatalf("expected one model, got %d", len(ms))
	}
	return ms[0]
}

// TestPredictCacheHitBitIdentical: the second Predict of the same input
// must be served from the cache and be bit-identical both to the first
// response and to the interpreter oracle — the cache's core invariant.
func TestPredictCacheHitBitIdentical(t *testing.T) {
	ck, im := buildCheckpoint(t, 30)
	reg := serve.NewRegistry(serve.Options{CacheCapacity: 64})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(500)
	x := g.Uniform(0, 1, 1, 3, 8, 8)

	r1 := predictOnce(t, reg, "cnn", x)
	if r1.Cached {
		t.Fatal("first request of an input reported Cached")
	}
	assertSame(t, r1.Y, im.Forward(x), "cold predict vs interpreter")

	r2 := predictOnce(t, reg, "cnn", x)
	if !r2.Cached {
		t.Fatal("repeated request of an input was not served from the cache")
	}
	assertSame(t, r2.Y, r1.Y, "cache hit vs recompute")
	assertSame(t, r2.Y, im.Forward(x), "cache hit vs interpreter")

	cs := cacheInfo(t, reg).Cache
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit, 1 miss, 1 entry", cs)
	}
}

// TestPredictCacheReloadChangedWeights: a hot reload with different
// weights changes the program fingerprint, so cached entries of the old
// version must be unreachable and the replayed input recomputed against
// the new weights.
func TestPredictCacheReloadChangedWeights(t *testing.T) {
	ck1, _ := buildCheckpoint(t, 31)
	ck2, im2 := buildCheckpoint(t, 32)
	reg := serve.NewRegistry(serve.Options{CacheCapacity: 64})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck1, nil); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(501)
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	predictOnce(t, reg, "cnn", x)
	fp1 := cacheInfo(t, reg).Fingerprint

	if _, err := reg.Load("cnn", ck2, nil); err != nil {
		t.Fatal(err)
	}
	fp2 := cacheInfo(t, reg).Fingerprint
	if fp1 == fp2 {
		t.Fatalf("fingerprint unchanged across a changed-weights reload: %s", fp1)
	}

	r := predictOnce(t, reg, "cnn", x)
	if r.Cached {
		t.Fatal("replay after a changed-weights reload was served from the cache")
	}
	if r.Version != 2 {
		t.Fatalf("replay served by version %d, want 2", r.Version)
	}
	assertSame(t, r.Y, im2.Forward(x), "post-reload predict vs new interpreter")
	if cs := cacheInfo(t, reg).Cache; cs.Entries != 1 {
		t.Fatalf("entries after flush+recompute = %d, want 1", cs.Entries)
	}
}

// TestPredictCacheReloadUnchangedWeights: reloading a bit-identical
// checkpoint keeps the fingerprint, so the warm cache must survive the
// version bump and keep answering hits.
func TestPredictCacheReloadUnchangedWeights(t *testing.T) {
	ck, _ := buildCheckpoint(t, 33)
	reg := serve.NewRegistry(serve.Options{CacheCapacity: 64})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(502)
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	r1 := predictOnce(t, reg, "cnn", x)
	fp1 := cacheInfo(t, reg).Fingerprint

	info, err := reg.Load("cnn", ck, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("reload version = %d, want 2", info.Version)
	}
	if fp2 := cacheInfo(t, reg).Fingerprint; fp2 != fp1 {
		t.Fatalf("fingerprint changed across an unchanged-weights reload: %s vs %s", fp1, fp2)
	}

	r2 := predictOnce(t, reg, "cnn", x)
	if !r2.Cached {
		t.Fatal("warm entry was lost across an unchanged-weights reload")
	}
	assertSame(t, r2.Y, r1.Y, "preserved entry vs original response")
}

// TestPredictCacheEvictsLRU: with capacity 2, a third distinct input
// must evict the least-recently-used entry, and only that one.
func TestPredictCacheEvictsLRU(t *testing.T) {
	ck, _ := buildCheckpoint(t, 34)
	reg := serve.NewRegistry(serve.Options{CacheCapacity: 2})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(503)
	x1 := g.Uniform(0, 1, 1, 3, 8, 8)
	x2 := g.Uniform(0, 1, 1, 3, 8, 8)
	x3 := g.Uniform(0, 1, 1, 3, 8, 8)

	predictOnce(t, reg, "cnn", x1)
	predictOnce(t, reg, "cnn", x2)
	predictOnce(t, reg, "cnn", x3) // evicts x1
	cs := cacheInfo(t, reg).Cache
	if cs.Entries != 2 || cs.Evictions != 1 {
		t.Fatalf("cache stats after overflow = %+v, want 2 entries, 1 eviction", cs)
	}
	if r := predictOnce(t, reg, "cnn", x1); r.Cached {
		t.Fatal("evicted input was still served from the cache")
	}
	if r := predictOnce(t, reg, "cnn", x3); !r.Cached {
		t.Fatal("recently used entry was evicted instead of the LRU one")
	}
}

// TestPredictCacheAdmissionBacksOff: a trace that never repeats keeps
// the measured hit rate under the floor, so after the first full
// admission window inserts must be suppressed instead of churning the
// LRU with entries that will never hit.
func TestPredictCacheAdmissionBacksOff(t *testing.T) {
	ck, _ := buildCheckpoint(t, 35)
	reg := serve.NewRegistry(serve.Options{
		CacheCapacity: 64, CacheHitFloor: 0.9, CacheWindow: 4,
	})
	defer reg.Close()
	if _, err := reg.Load("cnn", ck, nil); err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(504)
	const n = 8
	for i := 0; i < n; i++ {
		x := g.Uniform(0, 1, 1, 3, 8, 8)
		if r := predictOnce(t, reg, "cnn", x); r.Cached {
			t.Fatalf("distinct input %d reported Cached", i)
		}
	}
	cs := cacheInfo(t, reg).Cache
	if cs.Suppressed == 0 {
		t.Fatalf("cache stats = %+v, want suppressed inserts after a below-floor window", cs)
	}
	if int64(cs.Entries) >= cs.Misses {
		t.Fatalf("every miss was inserted (%d entries / %d misses): admission never backed off", cs.Entries, cs.Misses)
	}
}
