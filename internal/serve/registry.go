// Package serve is the network-facing multi-model serving layer on top
// of internal/engine: a registry of named, versioned models loaded from
// exported checkpoints, each backed by a pool of engine.Server replicas,
// with atomic hot reload, admission control (bounded queues, max
// in-flight, per-request deadlines), an HTTP/JSON API, Prometheus-style
// metrics, and a load generator used by cmd/t2c-load and the serve
// benchmark.
//
// The invariant inherited from the engine holds end to end: every
// response served over HTTP is bit-identical to IntModel.Forward of the
// checkpoint version that served it.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// ErrNotFound is returned for requests naming an unknown model.
var ErrNotFound = errors.New("serve: model not found")

// ErrOverloaded is the admission controller's fast-fail: the model's
// max in-flight budget is spent, so the request is shed immediately
// (HTTP 429) instead of queueing unboundedly.
var ErrOverloaded = errors.New("serve: too many in-flight requests")

// ErrClosed is returned once the registry has shut down.
var ErrClosed = errors.New("serve: registry is closed")

// Options configure how the registry builds and guards model entries.
type Options struct {
	// Replicas is the number of engine.Server replicas per model
	// (default 1). All replicas share one *engine.Program, and with it
	// the per-program prepacked-kernel cache.
	Replicas int
	// Engine tunes each replica's batching runtime.
	Engine engine.ServerOptions
	// MaxInFlight bounds admitted-but-unfinished requests per model
	// (default 4 × the per-replica queue capacity × Replicas).
	MaxInFlight int
	// DefaultDeadline is applied to requests that carry none (0 = none).
	DefaultDeadline time.Duration
	// OptLevel is applied to loaded programs compiled below it, so old
	// unfused checkpoints serve at current speed (default OptFuse).
	OptLevel engine.OptLevel
	// RawOptLevel serves checkpoints exactly as stored when true
	// (OptLevel zero-value means "default to OptFuse" otherwise).
	RawOptLevel bool
	// Trace, when non-nil, gives every model entry its own armed
	// span Tracer sized by the config: engine replicas record
	// instruction/wave/batch spans, the HTTP layer records
	// request/fanout spans, and /debug/trace?model=X snapshots them as
	// Chrome trace-event JSON. nil keeps the engine hot path at its
	// untraced cost (a nil-ring branch per execute).
	Trace *trace.Config
	// CacheCapacity bounds each model's content-addressed inference
	// cache in entries (default 1024; negative disables caching). Hits
	// are bit-identical to recompute by construction — the key covers
	// the program's content fingerprint and the full quantized input
	// codes — and bypass admission and batching entirely.
	CacheCapacity int
	// CacheHitFloor is the observed hit rate below which a model's
	// cache stops admitting inserts (default 0.02; negative disables
	// the floor). Measured over CacheWindow lookups with exponential
	// backoff, so models whose traffic never repeats shed the caching
	// overhead instead of churning entries.
	CacheHitFloor float64
	// CacheWindow is the admission-measurement window in lookups
	// (default 512).
	CacheWindow int
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.MaxInFlight <= 0 {
		eng := o.Engine.WithDefaults()
		o.MaxInFlight = 4 * eng.QueueSize * o.Replicas
	}
	if o.OptLevel == engine.OptNone && !o.RawOptLevel {
		o.OptLevel = engine.OptFuse
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 1024
	}
	if o.CacheHitFloor == 0 {
		o.CacheHitFloor = 0.02
	} else if o.CacheHitFloor < 0 {
		o.CacheHitFloor = 0
	}
	if o.CacheWindow <= 0 {
		o.CacheWindow = 512
	}
	return o
}

// Model is one immutable loaded checkpoint version: a program plus its
// replica pool. It is reference-counted; the registry holds one
// reference until the version is retired by a reload, and every
// in-flight request holds one, so a hot swap never closes a pool out
// from under a request.
type Model struct {
	Name    string
	Version int
	Sample  []int

	prog *engine.Program
	fp   uint64 // program content fingerprint: the cache-key version
	pool []*engine.Server
	rr   atomic.Uint64

	refs      atomic.Int64
	drained   chan struct{}
	onDrained func(engine.ServerStats)
}

func (m *Model) acquire() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (m *Model) release() {
	if m.refs.Add(-1) == 0 {
		var st engine.ServerStats
		for _, s := range m.pool {
			s.Close()
			st.Add(s.Stats())
		}
		if m.onDrained != nil {
			m.onDrained(st)
		}
		close(m.drained)
	}
}

// inferCodes round-robins a quantized sample across replicas; a replica
// reporting a full queue is skipped, and only when every replica is
// saturated does the queue-full error surface to the caller (under EDF
// that rejection may name an evicted lower-urgency victim rather than
// this request). tid is the request trace id stitched into the
// replica's queue-wait span (0 = untraced).
func (m *Model) inferCodes(codes *tensor.IntTensor, deadline time.Time, class engine.PriorityClass, tid uint64) (*tensor.IntTensor, error) {
	start := m.rr.Add(1)
	n := uint64(len(m.pool))
	for i := uint64(0); i < n; i++ {
		y, err := m.pool[(start+i)%n].TryInferCodes(codes, deadline, class, tid)
		if !errors.Is(err, engine.ErrQueueFull) {
			return y, err
		}
	}
	return nil, engine.ErrQueueFull
}

// queueDepth sums the instantaneous replica queue lengths.
func (m *Model) queueDepth() int {
	d := 0
	for _, s := range m.pool {
		d += s.QueueDepth()
	}
	return d
}

// batchWait merges the replicas' batch-formation-wait histograms.
func (m *Model) batchWait() trace.HistSnapshot {
	var h trace.HistSnapshot
	for _, s := range m.pool {
		h.Merge(s.BatchWait())
	}
	return h
}

// batchExec merges the replicas' measured batch-execution histograms.
func (m *Model) batchExec() trace.HistSnapshot {
	var h trace.HistSnapshot
	for _, s := range m.pool {
		h.Merge(s.BatchExec())
	}
	return h
}

// batchSlack merges the replicas' dispatch-time deadline-slack
// histograms.
func (m *Model) batchSlack() trace.HistSnapshot {
	var h trace.HistSnapshot
	for _, s := range m.pool {
		h.Merge(s.BatchSlack())
	}
	return h
}

// costStats aggregates the replicas' modeled-vs-measured cost record.
func (m *Model) costStats() engine.CostStats {
	var c engine.CostStats
	for _, s := range m.pool {
		c.Add(s.CostStats())
	}
	return c
}

// stats aggregates the live replica pools.
func (m *Model) stats() engine.ServerStats {
	var st engine.ServerStats
	for _, s := range m.pool {
		st.Add(s.Stats())
	}
	return st
}

// mem aggregates the live replica pools' executor memory (gauge
// semantics: retired versions no longer hold arenas and are excluded).
func (m *Model) mem() engine.ServerMemStats {
	var mem engine.ServerMemStats
	for _, s := range m.pool {
		ms := s.MemStats()
		mem.ArenaBytes += ms.ArenaBytes
		mem.ScratchBytes += ms.ScratchBytes
		// Parallelism stats describe the shared plan, not a footprint:
		// replicas bind the same program, so take the max instead of
		// summing.
		if ms.Waves > mem.Waves {
			mem.Waves = ms.Waves
		}
		if ms.ParallelFraction > mem.ParallelFraction {
			mem.ParallelFraction = ms.ParallelFraction
		}
		// Sparsity stats likewise describe the shared program.
		if ms.WeightSparsity > mem.WeightSparsity {
			mem.WeightSparsity = ms.WeightSparsity
		}
		if ms.SkipFraction > mem.SkipFraction {
			mem.SkipFraction = ms.SkipFraction
		}
	}
	return mem
}

// entry is the long-lived per-name state: the current model version,
// the admission semaphore (which survives reloads, so the in-flight cap
// applies to the name, not the version), and counters folded in from
// drained versions.
type entry struct {
	name    string
	cur     atomic.Pointer[Model]
	loadMu  sync.Mutex // serializes reloads of this name
	version atomic.Int64

	// tracer and httpRing are set once at entry creation (nil when the
	// registry was built without Options.Trace) and immutable after, so
	// every serving path may read them without synchronization. The
	// tracer survives hot reloads: a new version's replicas record into
	// the same rings, keeping one timeline per model name.
	tracer      *trace.Tracer
	httpRing    *trace.Ring
	nmAdmission uint32

	tokens      chan struct{} // admission: max in-flight
	admRejected atomic.Int64

	// cache is the entry's content-addressed inference cache (nil when
	// disabled). It survives hot reloads — keys embed the program
	// fingerprint, so a content-changing reload makes old entries
	// unreachable (Load flushes them eagerly), while a content-identical
	// reload keeps the cache warm.
	cache *modelCache

	retiredMu sync.Mutex
	retired   engine.ServerStats
}

func (e *entry) admit() bool {
	select {
	case e.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// admitClass is admit with priority-aware shedding: low-class requests
// are refused while the last quarter of the in-flight budget (min 1
// token) is all that remains, so under overload PriLow sheds first and
// better classes keep headroom. With a budget of 1 the reserve is the
// whole budget — PriLow is never admitted there, which a config that
// small has opted into.
func (e *entry) admitClass(class engine.PriorityClass) bool {
	if class > engine.PriNormal {
		budget := cap(e.tokens)
		reserve := budget / 4
		if reserve < 1 {
			reserve = 1
		}
		if len(e.tokens) >= budget-reserve {
			return false
		}
	}
	return e.admit()
}

func (e *entry) done() { <-e.tokens }

func (e *entry) absorb(st engine.ServerStats) {
	e.retiredMu.Lock()
	e.retired.Add(st)
	e.retiredMu.Unlock()
}

// Registry maps model names to versioned serving entries.
type Registry struct {
	opts Options

	mu      sync.RWMutex
	entries map[string]*entry
	closed  bool

	wg sync.WaitGroup // model versions not yet drained
}

// NewRegistry builds an empty registry.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts.withDefaults(), entries: map[string]*entry{}}
}

// Load installs a checkpoint under name, creating the entry or — if the
// name already serves — hot-swapping the new version in atomically. The
// swapped-out version keeps serving its in-flight requests and its
// pools are closed only once the last of them finishes, so a reload
// under traffic drops nothing. sample overrides the single-sample input
// shape; nil uses the shape recorded in the checkpoint's program
// section (pre-PR-3 checkpoints have none and require the override).
func (r *Registry) Load(name string, ck *export.Checkpoint, sample []int) (ModelInfo, error) {
	if name == "" {
		return ModelInfo{}, fmt.Errorf("serve: empty model name")
	}
	prog, err := engine.FromCheckpoint(ck)
	if err != nil {
		return ModelInfo{}, err
	}
	if prog.OptLevel < r.opts.OptLevel {
		prog = engine.Optimize(prog, r.opts.OptLevel)
	}
	if sample == nil {
		sample = prog.InShape
	}
	if len(sample) == 0 {
		return ModelInfo{}, fmt.Errorf("serve: checkpoint for %q records no input shape; pass one explicitly", name)
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ModelInfo{}, ErrClosed
	}
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name, tokens: make(chan struct{}, r.opts.MaxInFlight)}
		e.cache = newModelCache(r.opts.CacheCapacity, r.opts.CacheHitFloor, int64(r.opts.CacheWindow))
		if r.opts.Trace != nil {
			e.tracer = trace.New(*r.opts.Trace)
			e.tracer.SetEnabled(true)
			e.httpRing = e.tracer.NewRing()
			e.nmAdmission = e.tracer.Intern("admission_reject")
		}
		r.entries[name] = e
	}
	r.wg.Add(1) // for the model built below; released in onDrained
	r.mu.Unlock()

	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	// Re-check under loadMu: Close sets closed before sweeping entries
	// (taking each loadMu), so either we see closed here and abort, or
	// Close's sweep runs after our publish and retires the new model.
	// Without this, a Load that passed the first check while Close swept
	// would publish a version nothing ever releases, deadlocking Close.
	r.mu.RLock()
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		r.wg.Done()
		return ModelInfo{}, ErrClosed
	}
	eng := r.opts.Engine
	eng.Trace = e.tracer
	pool := make([]*engine.Server, r.opts.Replicas)
	for i := range pool {
		srv, err := engine.NewServer(prog, sample, eng)
		if err != nil {
			for _, s := range pool[:i] {
				s.Close()
			}
			r.wg.Done()
			return ModelInfo{}, err
		}
		pool[i] = srv
	}
	m := &Model{
		Name:    name,
		Version: int(e.version.Add(1)),
		Sample:  append([]int(nil), sample...),
		prog:    prog,
		fp:      prog.Fingerprint(),
		pool:    pool,
		drained: make(chan struct{}),
	}
	m.onDrained = func(st engine.ServerStats) {
		e.absorb(st)
		r.wg.Done()
	}
	m.refs.Store(1)
	if old := e.cur.Swap(m); old != nil {
		if old.fp != m.fp {
			// Content changed: the old version's cache entries are already
			// unreachable (keys embed the fingerprint); flush to free the
			// memory now rather than waiting for LRU churn.
			e.cache.flush()
		}
		old.release() // drop the registry reference; drains asynchronously
	}
	return r.info(e, m), nil
}

func (r *Registry) lookup(name string) *entry {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	return e
}

// Infer serves one sample through name's current version with the
// registry's default deadline. It returns the version that served the
// request, so callers can attribute the response to a checkpoint even
// across a concurrent hot reload.
func (r *Registry) Infer(name string, x *tensor.Tensor) (*tensor.Tensor, int, error) {
	var deadline time.Time
	if r.opts.DefaultDeadline > 0 {
		deadline = time.Now().Add(r.opts.DefaultDeadline)
	}
	return r.InferDeadline(name, x, deadline)
}

// InferDeadline is Infer with an explicit deadline (zero = none beyond
// the admission queue bound).
func (r *Registry) InferDeadline(name string, x *tensor.Tensor, deadline time.Time) (*tensor.Tensor, int, error) {
	return r.InferTraced(name, x, deadline, 0)
}

// InferTraced is InferDeadline carrying a request trace id: the id is
// stitched into the replica's queue-wait span so the HTTP request span
// and the engine-side spans join on it in the trace. An admission
// rejection records a zero-duration admission span against the same id.
// tid 0 means "not a traced request".
func (r *Registry) InferTraced(name string, x *tensor.Tensor, deadline time.Time, tid uint64) (*tensor.Tensor, int, error) {
	res, err := r.Predict(name, x, deadline, engine.PriNormal, tid)
	return res.Y, res.Version, err
}

// PredictResult is one served sample: logits, the checkpoint version
// that computed them, and whether they came from the inference cache
// (bit-identical to recompute either way).
type PredictResult struct {
	Y       *tensor.Tensor
	Version int
	Cached  bool
}

// Predict serves one sample through name's current version: quantize,
// consult the content-addressed cache (hits return immediately,
// bypassing admission and the batcher), then admit under the request's
// priority class and run the codes through a replica. The request
// travels as quantized codes end to end, so a cache hit and a
// recompute are bit-identical by construction.
func (r *Registry) Predict(name string, x *tensor.Tensor, deadline time.Time, class engine.PriorityClass, tid uint64) (PredictResult, error) {
	e := r.lookup(name)
	if e == nil {
		return PredictResult{}, ErrNotFound
	}
	for {
		m := e.cur.Load()
		if m == nil {
			return PredictResult{}, ErrNotFound
		}
		if !m.acquire() {
			// Retired between the pointer load and the ref grab: the
			// swap that retired it already published a successor.
			continue
		}
		res, err := r.predictOn(e, m, x, deadline, class, tid)
		m.release()
		return res, err
	}
}

func (r *Registry) predictOn(e *entry, m *Model, x *tensor.Tensor, deadline time.Time, class engine.PriorityClass, tid uint64) (PredictResult, error) {
	if err := checkSample(x.Shape, m.Sample); err != nil {
		return PredictResult{}, err
	}
	// Quantize up front: the codes are both the cache key material and —
	// on a miss — exactly what executes, which is what makes a later hit
	// provably identical to the recompute it replaced.
	codes := tensor.NewInt(x.Shape...)
	m.prog.InQuant.QuantizeTo(codes, x)
	key := cacheKey(m.fp, codes.Data)
	if out, shape, ok := e.cache.get(key, codes.Data); ok {
		return PredictResult{Y: m.prog.DequantizeOutput(out, shape), Version: m.Version, Cached: true}, nil
	}
	if !e.admitClass(class) {
		e.admRejected.Add(1)
		if ring := e.httpRing; tid != 0 && ring.Active() {
			ring.Record(trace.Span{Start: ring.Now(), Name: e.nmAdmission,
				Kind: trace.KindAdmission, TID: httpLane, ID: tid, A0: 1})
		}
		return PredictResult{}, ErrOverloaded
	}
	defer e.done()
	out, err := m.inferCodes(codes, deadline, class, tid)
	if err != nil {
		return PredictResult{}, err
	}
	// A put racing a hot reload is harmless: the key embeds the
	// fingerprint this result was computed under, so a new version never
	// reads it and LRU churn reclaims the slot.
	e.cache.put(key, codes.Data, out.Data, out.Shape)
	return PredictResult{Y: m.prog.DequantizeOutput(out.Data, out.Shape), Version: m.Version}, nil
}

// checkSample validates a request tensor shape against the model's
// single-sample shape, accepting the [1, sample...] batch-of-one form —
// the serve-side mirror of the engine server's own check, needed here
// because quantization and cache lookup run before any replica sees the
// request.
func checkSample(shape, sample []int) error {
	sh := shape
	if len(sh) == len(sample)+1 && sh[0] == 1 {
		sh = sh[1:]
	}
	ok := len(sh) == len(sample)
	for i := 0; ok && i < len(sh); i++ {
		ok = sh[i] == sample[i]
	}
	if !ok {
		return fmt.Errorf("%w: sample shape %v, model expects %v", engine.ErrShapeMismatch, shape, sample)
	}
	return nil
}

// Tracer returns name's span tracer (nil when the model is unknown or
// the registry was built without tracing).
func (r *Registry) Tracer(name string) *trace.Tracer {
	if e := r.lookup(name); e != nil {
		return e.tracer
	}
	return nil
}

// TraceRing returns name's HTTP-layer span ring (nil-safe: recording
// guards on Active).
func (r *Registry) TraceRing(name string) *trace.Ring {
	if e := r.lookup(name); e != nil {
		return e.httpRing
	}
	return nil
}

// MaxInFlight reports the per-model admission budget, so the HTTP
// layer can bound a batched request's fan-out to a width that can
// actually be admitted.
func (r *Registry) MaxInFlight() int { return r.opts.MaxInFlight }

// SampleShape reports the input shape name currently expects.
func (r *Registry) SampleShape(name string) ([]int, error) {
	e := r.lookup(name)
	if e == nil {
		return nil, ErrNotFound
	}
	m := e.cur.Load()
	if m == nil {
		return nil, ErrNotFound
	}
	return append([]int(nil), m.Sample...), nil
}

// ModelInfo is the listing/reporting view of one model entry.
type ModelInfo struct {
	Name     string             `json:"name"`
	Version  int                `json:"version"`
	Sample   []int              `json:"sample_shape"`
	Replicas int                `json:"replicas"`
	Stats    engine.ServerStats `json:"stats"`
	Shed     int64              `json:"admission_rejected"`
	// Mem is the current version's executor memory footprint (planned
	// per-dtype arenas + kernel scratch across the replica pool).
	Mem engine.ServerMemStats `json:"mem"`
	// QueueDepth is the instantaneous sum of replica queue lengths at
	// the time the info was taken.
	QueueDepth int `json:"queue_depth"`
	// BatchWait is the always-on batch-formation-wait histogram merged
	// across the live replica pool.
	BatchWait trace.HistSnapshot `json:"batch_wait"`
	// BatchExec is the measured batch-execution-time histogram — the
	// measured side of the scheduler's cost model.
	BatchExec trace.HistSnapshot `json:"batch_exec"`
	// BatchSlack is the dispatch-time earliest-deadline slack histogram
	// (deadlined batches only).
	BatchSlack trace.HistSnapshot `json:"batch_slack"`
	// Cost is the modeled-vs-measured batch execution record of the
	// live replica pool.
	Cost engine.CostStats `json:"cost"`
	// Cache is the entry's inference-cache snapshot (zero capacity when
	// caching is disabled).
	Cache CacheStats `json:"cache"`
	// Fingerprint is the serving program's content fingerprint (the
	// cache-key version component), hex-encoded.
	Fingerprint string `json:"fingerprint"`
}

func (r *Registry) info(e *entry, m *Model) ModelInfo {
	st := e.engineStats(m)
	return ModelInfo{
		Name:        e.name,
		Version:     m.Version,
		Sample:      append([]int(nil), m.Sample...),
		Replicas:    len(m.pool),
		Stats:       st,
		Shed:        e.admRejected.Load(),
		Mem:         m.mem(),
		QueueDepth:  m.queueDepth(),
		BatchWait:   m.batchWait(),
		BatchExec:   m.batchExec(),
		BatchSlack:  m.batchSlack(),
		Cost:        m.costStats(),
		Cache:       e.cache.stats(),
		Fingerprint: fmt.Sprintf("%016x", m.fp),
	}
}

// engineStats folds drained-version totals into the live pools' counters.
func (e *entry) engineStats(m *Model) engine.ServerStats {
	e.retiredMu.Lock()
	st := e.retired
	e.retiredMu.Unlock()
	if m != nil {
		st.Add(m.stats())
	}
	return st
}

// Models lists all entries sorted by name.
func (r *Registry) Models() []ModelInfo {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	var out []ModelInfo
	for _, e := range entries {
		m := e.cur.Load()
		if m == nil {
			continue
		}
		out = append(out, r.info(e, m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove retires name: the current version drains and closes, and
// further requests return ErrNotFound.
func (r *Registry) Remove(name string) error {
	e := r.lookup(name)
	if e == nil {
		return ErrNotFound
	}
	e.loadMu.Lock()
	m := e.cur.Swap(nil)
	e.loadMu.Unlock()
	if m == nil {
		return ErrNotFound
	}
	m.release()
	return nil
}

// Close retires every model and blocks until all versions — including
// ones already retired by reloads — have drained their in-flight
// requests and closed their pools.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.loadMu.Lock()
		m := e.cur.Swap(nil)
		e.loadMu.Unlock()
		if m != nil {
			m.release()
		}
	}
	r.wg.Wait()
}
