package prune

import (
	"math"
	"testing"
	"testing/quick"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

func TestMagnitudeReachesTarget(t *testing.T) {
	g := tensor.NewRNG(1)
	p := nn.NewParam("w", g.Randn(1, 50, 50))
	m := NewMagnitude([]*nn.Param{p}, 0.8)
	m.Step(1)
	if s := m.Sparsity(); math.Abs(s-0.8) > 0.01 {
		t.Fatalf("sparsity %v, want 0.8", s)
	}
	if s := TensorSparsity(p.Data); math.Abs(s-0.8) > 0.01 {
		t.Fatalf("tensor zeros %v, want 0.8", s)
	}
}

func TestMagnitudeKeepsLargest(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{0.1, -5, 0.2, 4, -0.05, 3, 0.3, -2}, 8))
	m := NewMagnitude([]*nn.Param{p}, 0.5)
	m.Step(1)
	// The four largest magnitudes (5,4,3,2) must survive.
	want := []float32{0, -5, 0, 4, 0, 3, 0, -2}
	for i := range want {
		if p.Data.Data[i] != want[i] {
			t.Fatalf("w[%d] = %v, want %v", i, p.Data.Data[i], want[i])
		}
	}
}

func TestGradualScheduleMonotone(t *testing.T) {
	g := tensor.NewRNG(2)
	p := nn.NewParam("w", g.Randn(1, 40, 40))
	m := NewMagnitude([]*nn.Param{p}, 0.9)
	m.InitialSparsity = 0.1
	prev := -1.0
	for _, prog := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m.Step(prog)
		s := m.Sparsity()
		if s < prev-0.01 {
			t.Fatalf("sparsity decreased: %v after %v", s, prev)
		}
		prev = s
	}
	if math.Abs(prev-0.9) > 0.02 {
		t.Fatalf("final sparsity %v, want 0.9", prev)
	}
	// Early progress must be near the initial sparsity, not the target.
	m2 := NewMagnitude([]*nn.Param{nn.NewParam("w", g.Randn(1, 40, 40))}, 0.9)
	m2.InitialSparsity = 0.1
	m2.Step(0)
	if s := m2.Sparsity(); s > 0.2 {
		t.Fatalf("sparsity at t=0 is %v, want ≈0.1", s)
	}
}

func TestApplyKeepsPrunedAtZero(t *testing.T) {
	g := tensor.NewRNG(3)
	p := nn.NewParam("w", g.Randn(1, 100))
	m := NewMagnitude([]*nn.Param{p}, 0.5)
	m.Step(1)
	// Simulate an optimizer update that perturbs everything.
	for i := range p.Data.Data {
		p.Data.Data[i] += 0.3
	}
	m.Apply()
	if s := TensorSparsity(p.Data); math.Abs(s-0.5) > 0.02 {
		t.Fatalf("after Apply sparsity %v", s)
	}
}

func TestRegrowPreservesSparsity(t *testing.T) {
	g := tensor.NewRNG(4)
	p := nn.NewParam("w", g.Randn(1, 60, 60))
	m := NewMagnitude([]*nn.Param{p}, 0.7)
	m.Regrow = 0.2
	// Give pruned weights distinct gradients so regrowth has signal.
	for i := range p.Grad.Data {
		p.Grad.Data[i] = g.NormFloat32()
	}
	m.Step(1)
	if s := m.Sparsity(); math.Abs(s-0.7) > 0.02 {
		t.Fatalf("regrow broke sparsity: %v", s)
	}
}

func TestNMBasic(t *testing.T) {
	g := tensor.NewRNG(5)
	p := nn.NewParam("w", g.Randn(1, 16, 16))
	nm, err := NewNM([]*nn.Param{p}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	nm.Step(0)
	if s := nm.Sparsity(); math.Abs(s-0.5) > 1e-6 {
		t.Fatalf("2:4 sparsity %v, want exactly 0.5", s)
	}
	// Verify the group structure on the float tensor.
	for gi := 0; gi+4 <= 256; gi += 4 {
		nz := 0
		for j := 0; j < 4; j++ {
			if p.Data.Data[gi+j] != 0 {
				nz++
			}
		}
		if nz > 2 {
			t.Fatalf("group %d has %d non-zeros", gi, nz)
		}
	}
}

func TestNMKeepsLargestPerGroup(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float32{1, -9, 2, 8, 0.5, 0.6, -0.7, 0.1}, 8))
	nm, _ := NewNM([]*nn.Param{p}, 2, 4)
	nm.Step(0)
	want := []float32{0, -9, 0, 8, 0, 0.6, -0.7, 0}
	for i := range want {
		if p.Data.Data[i] != want[i] {
			t.Fatalf("w[%d] = %v, want %v", i, p.Data.Data[i], want[i])
		}
	}
}

func TestNMInvalidRatio(t *testing.T) {
	if _, err := NewNM(nil, 4, 2); err == nil {
		t.Fatal("4:2 must be rejected")
	}
	if _, err := NewNM(nil, 0, 4); err == nil {
		t.Fatal("0:4 must be rejected")
	}
}

func TestCheckNM(t *testing.T) {
	good := tensor.IntFromSlice([]int64{1, 0, 2, 0, 0, 3, 0, 4}, 8)
	if err := CheckNM(good, 2, 4); err != nil {
		t.Fatal(err)
	}
	bad := tensor.IntFromSlice([]int64{1, 1, 1, 0}, 4)
	if err := CheckNM(bad, 2, 4); err == nil {
		t.Fatal("3 non-zeros in a 2:4 group must fail")
	}
}

func TestPrunableParamsSelection(t *testing.T) {
	g := tensor.NewRNG(6)
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 4, 3, 1, 1, 1, true),
		nn.NewBatchNorm2d(4),
		&nn.ReLU{},
		nn.NewLinear(g, 16, 4, true),
	)
	ps := PrunableParams(model)
	// Only the conv weight and linear weight; not biases or BN params.
	if len(ps) != 2 {
		t.Fatalf("prunable %d, want 2", len(ps))
	}
}

func TestNMProperty(t *testing.T) {
	// Any random tensor pruned with N:M must pass CheckNM after integer
	// quantization (zeros stay zeros through round(x/s)).
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		p := nn.NewParam("w", g.Randn(1, 8, 12))
		nm, err := NewNM([]*nn.Param{p}, 2, 4)
		if err != nil {
			return false
		}
		nm.Step(0)
		codes := tensor.NewInt(96)
		for i, v := range p.Data.Data {
			codes.Data[i] = int64(math.Round(float64(v) / 0.01))
		}
		return CheckNM(codes, 2, 4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
