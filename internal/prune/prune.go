// Package prune implements the paper's user-customizable sparsification:
// element-wise magnitude pruning, the GraNet-style gradual prune-and-
// regrow schedule, and N:M fine-grained structured sparsity (e.g. 2:4).
// Masks are applied to the float weights during training and materialize
// as real zeros in the exported integer tensors, never as side-band masks.
package prune

import (
	"fmt"
	"math"
	"sort"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// Pruner computes and applies sparsity masks to a set of parameters.
type Pruner interface {
	// Step updates the masks for the given training progress in [0,1] and
	// applies them to the weights.
	Step(progress float64)
	// Apply re-applies the current masks (call after every optimizer
	// update so pruned weights stay zero).
	Apply()
	// Sparsity reports the fraction of masked weights.
	Sparsity() float64
}

// maskedParam pairs a parameter with its binary mask.
type maskedParam struct {
	p    *nn.Param
	mask []bool
}

func newMasked(p *nn.Param) *maskedParam {
	return &maskedParam{p: p, mask: make([]bool, p.Data.Numel())}
}

func (m *maskedParam) apply() {
	for i, dead := range m.mask {
		if dead {
			m.p.Data.Data[i] = 0
			m.p.Grad.Data[i] = 0
		}
	}
}

func (m *maskedParam) count() (dead, total int) {
	for _, d := range m.mask {
		if d {
			dead++
		}
	}
	return dead, len(m.mask)
}

// PrunableParams selects the weight tensors of conv and linear layers
// (norm parameters and biases are never pruned).
func PrunableParams(root nn.Layer) []*nn.Param {
	var out []*nn.Param
	var walk func(l nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv2d:
			out = append(out, v.W)
		case *nn.Linear:
			out = append(out, v.W)
		}
		if c, ok := l.(nn.Container); ok {
			for _, sub := range c.Children() {
				walk(sub)
			}
		}
	}
	walk(root)
	return out
}

// Magnitude prunes the globally smallest |w| to reach a target sparsity,
// with an optional GraNet-style gradual schedule and regrowth.
type Magnitude struct {
	Target float64
	// InitialSparsity starts the gradual schedule (GraNet prunes from a
	// partially sparse model).
	InitialSparsity float64
	// Regrow re-activates the largest-gradient pruned weights each step
	// (the "neuroregeneration" of GraNet); fraction of pruned weights.
	Regrow float64
	params []*maskedParam
}

// NewMagnitude builds a global magnitude pruner over the given parameters.
func NewMagnitude(params []*nn.Param, target float64) *Magnitude {
	m := &Magnitude{Target: target}
	for _, p := range params {
		m.params = append(m.params, newMasked(p))
	}
	return m
}

// currentTarget implements the cubic sparsity ramp s(t) = s_f + (s_i −
// s_f)·(1−t)³ used by gradual pruning.
func (m *Magnitude) currentTarget(progress float64) float64 {
	if progress >= 1 {
		return m.Target
	}
	if progress < 0 {
		progress = 0
	}
	d := 1 - progress
	return m.Target + (m.InitialSparsity-m.Target)*d*d*d
}

// Step recomputes the global threshold at the scheduled sparsity and
// rebuilds all masks.
func (m *Magnitude) Step(progress float64) {
	target := m.currentTarget(progress)
	// Gather all magnitudes.
	var all []float32
	for _, mp := range m.params {
		for _, v := range mp.p.Data.Data {
			if v < 0 {
				v = -v
			}
			all = append(all, v)
		}
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	k := int(target * float64(len(all)))
	if k >= len(all) {
		k = len(all) - 1
	}
	var thr float32
	if k > 0 {
		thr = all[k]
	}
	for _, mp := range m.params {
		for i, v := range mp.p.Data.Data {
			a := v
			if a < 0 {
				a = -a
			}
			mp.mask[i] = a < thr
		}
	}
	if m.Regrow > 0 {
		m.regrow()
	}
	m.Apply()
}

// regrow revives the pruned weights with the largest gradient magnitude,
// then re-kills the same number of smallest-magnitude live weights so the
// sparsity level is preserved.
func (m *Magnitude) regrow() {
	type cand struct {
		mp  *maskedParam
		idx int
		val float32
	}
	var pruned, live []cand
	for _, mp := range m.params {
		for i, dead := range mp.mask {
			g := mp.p.Grad.Data[i]
			if g < 0 {
				g = -g
			}
			w := mp.p.Data.Data[i]
			if w < 0 {
				w = -w
			}
			if dead {
				pruned = append(pruned, cand{mp, i, g})
			} else {
				live = append(live, cand{mp, i, w})
			}
		}
	}
	n := int(m.Regrow * float64(len(pruned)))
	if n == 0 || len(live) == 0 {
		return
	}
	sort.Slice(pruned, func(i, j int) bool { return pruned[i].val > pruned[j].val })
	sort.Slice(live, func(i, j int) bool { return live[i].val < live[j].val })
	if n > len(live) {
		n = len(live)
	}
	for i := 0; i < n; i++ {
		pruned[i].mp.mask[pruned[i].idx] = false
		live[i].mp.mask[live[i].idx] = true
	}
}

// Apply re-applies masks.
func (m *Magnitude) Apply() {
	for _, mp := range m.params {
		mp.apply()
	}
}

// Sparsity reports the masked fraction.
func (m *Magnitude) Sparsity() float64 {
	var dead, total int
	for _, mp := range m.params {
		d, t := mp.count()
		dead += d
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(dead) / float64(total)
}

// NM implements N:M structured fine-grained sparsity: in every group of M
// consecutive weights (along the input dimension), only the N largest
// magnitudes survive. N:M=2:4 gives 50% sparsity with hardware-friendly
// structure.
type NM struct {
	N, M   int
	params []*maskedParam
}

// NewNM builds an N:M pruner.
func NewNM(params []*nn.Param, n, m int) (*NM, error) {
	if n <= 0 || m <= 0 || n > m {
		return nil, fmt.Errorf("prune: invalid N:M = %d:%d", n, m)
	}
	p := &NM{N: n, M: m}
	for _, pp := range params {
		p.params = append(p.params, newMasked(pp))
	}
	return p, nil
}

// Step rebuilds the group masks (progress is ignored: N:M is a fixed
// pattern, typically applied from scratch per Zhou et al. 2021).
func (p *NM) Step(progress float64) {
	_ = progress
	for _, mp := range p.params {
		data := mp.p.Data.Data
		for g := 0; g+p.M <= len(data); g += p.M {
			// Select the N largest |w| in the group.
			type iv struct {
				i int
				v float32
			}
			group := make([]iv, p.M)
			for j := 0; j < p.M; j++ {
				v := data[g+j]
				if v < 0 {
					v = -v
				}
				group[j] = iv{g + j, v}
			}
			sort.Slice(group, func(a, b int) bool { return group[a].v > group[b].v })
			for j, e := range group {
				mp.mask[e.i] = j >= p.N
			}
		}
		// Tail shorter than M stays dense.
		for j := (len(data) / p.M) * p.M; j < len(data); j++ {
			mp.mask[j] = false
		}
	}
	p.Apply()
}

// Apply re-applies masks.
func (p *NM) Apply() {
	for _, mp := range p.params {
		mp.apply()
	}
}

// Sparsity reports the masked fraction.
func (p *NM) Sparsity() float64 {
	var dead, total int
	for _, mp := range p.params {
		d, t := mp.count()
		dead += d
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(dead) / float64(total)
}

// CheckNM verifies that every complete group of M consecutive elements in
// t has at most N non-zeros; the exported-tensor invariant of Table 3.
func CheckNM(t *tensor.IntTensor, n, m int) error {
	for g := 0; g+m <= len(t.Data); g += m {
		nz := 0
		for j := 0; j < m; j++ {
			if t.Data[g+j] != 0 {
				nz++
			}
		}
		if nz > n {
			return fmt.Errorf("prune: group at %d has %d non-zeros (> %d:%d)", g, nz, n, m)
		}
	}
	return nil
}

// TensorSparsity reports the zero fraction of a float tensor.
func TensorSparsity(t *tensor.Tensor) float64 {
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / math.Max(1, float64(len(t.Data)))
}

// IntTensorSparsity reports the zero fraction of an integer tensor —
// the post-quantization sparsity the engine actually sees. Pruned float
// weights export as exact integer zeros (symmetric weight quantizers map
// 0 to code 0), and quantization may round additional tiny weights to
// zero, so this is never below the float-side sparsity.
func IntTensorSparsity(t *tensor.IntTensor) float64 {
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / math.Max(1, float64(len(t.Data)))
}
