// Package ssl implements the self-supervised pre-training recipe the
// paper ships for powerful foundation-model compression: the Barlow Twins
// redundancy-reduction loss (Zbontar et al., 2021) with the
// cross-distillation (XD) correlation term of Eq. 16 (Meng et al., 2023).
// Both losses operate on batch-normalized embeddings of two augmented
// views and return analytic gradients for the explicit backward pass.
package ssl

import (
	"math"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// normalized holds a batch-normalized embedding with the statistics needed
// to backprop through the normalization.
type normalized struct {
	zn    *tensor.Tensor
	ivstd []float32
}

// normalize standardizes each embedding dimension over the batch.
func normalize(z *tensor.Tensor) *normalized {
	n, d := z.Shape[0], z.Shape[1]
	out := &normalized{zn: tensor.New(n, d), ivstd: make([]float32, d)}
	for j := 0; j < d; j++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(z.Data[i*d+j])
			sum += v
			sq += v * v
		}
		mu := sum / float64(n)
		va := sq/float64(n) - mu*mu
		if va < 1e-8 {
			va = 1e-8
		}
		iv := 1 / math.Sqrt(va)
		out.ivstd[j] = float32(iv)
		for i := 0; i < n; i++ {
			out.zn.Data[i*d+j] = float32((float64(z.Data[i*d+j]) - mu) * iv)
		}
	}
	return out
}

// backNormalize maps a gradient w.r.t. the normalized embedding back to
// the raw embedding (per-dimension batch-norm backward).
func (nm *normalized) backNormalize(g *tensor.Tensor) *tensor.Tensor {
	n, d := g.Shape[0], g.Shape[1]
	out := tensor.New(n, d)
	for j := 0; j < d; j++ {
		var mg, mgz float64
		for i := 0; i < n; i++ {
			mg += float64(g.Data[i*d+j])
			mgz += float64(g.Data[i*d+j]) * float64(nm.zn.Data[i*d+j])
		}
		mg /= float64(n)
		mgz /= float64(n)
		iv := nm.ivstd[j]
		for i := 0; i < n; i++ {
			out.Data[i*d+j] = iv * (g.Data[i*d+j] - float32(mg) - nm.zn.Data[i*d+j]*float32(mgz))
		}
	}
	return out
}

// crossCorrelation computes C = Aᵀ·B / N for normalized embeddings.
func crossCorrelation(a, b *tensor.Tensor) *tensor.Tensor {
	n := a.Shape[0]
	c := tensor.MatMul(tensor.Transpose(a), b)
	tensor.ScaleInPlace(c, 1/float32(n))
	return c
}

// BarlowLoss computes the Barlow Twins loss Σ(1−C_ii)² + λΣ_{i≠j}C_ij² on
// two view embeddings z1, z2 of shape [N, D], returning the loss and the
// gradients with respect to z1 and z2.
func BarlowLoss(z1, z2 *tensor.Tensor, lambda float32) (float32, *tensor.Tensor, *tensor.Tensor) {
	n, d := z1.Shape[0], z1.Shape[1]
	n1 := normalize(z1)
	n2 := normalize(z2)
	c := crossCorrelation(n1.zn, n2.zn)
	var loss float64
	gc := tensor.New(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cij := c.Data[i*d+j]
			if i == j {
				diff := 1 - cij
				loss += float64(diff) * float64(diff)
				gc.Data[i*d+j] = -2 * diff
			} else {
				loss += float64(lambda) * float64(cij) * float64(cij)
				gc.Data[i*d+j] = 2 * lambda * cij
			}
		}
	}
	// dL/dA = B·Gᵀ/N, dL/dB = A·G/N for C = AᵀB/N.
	inv := 1 / float32(n)
	ga := tensor.MatMul(n2.zn, tensor.Transpose(gc))
	tensor.ScaleInPlace(ga, inv)
	gb := tensor.MatMul(n1.zn, gc)
	tensor.ScaleInPlace(gb, inv)
	return float32(loss), n1.backNormalize(ga), n2.backNormalize(gb)
}

// XDLoss is the cross-distillation correlation term of Eq. 16 applied
// between the encoder features of the two views (the lightweight-model
// adaptation of Meng et al. 2023; see DESIGN.md): the diagonal of the
// cross-view feature correlation is pulled to 1 and the off-diagonal
// redundancy is suppressed. Returns the loss and gradients w.r.t. both
// feature tensors.
func XDLoss(h1, h2 *tensor.Tensor, lambda float32) (float32, *tensor.Tensor, *tensor.Tensor) {
	return BarlowLoss(h1, h2, lambda)
}

// Projector is the two-layer MLP head appended to the encoder during SSL
// pre-training and discarded afterwards.
type Projector struct {
	Net *nn.Sequential
}

// NewProjector builds the projection head encoderDim → projDim.
func NewProjector(g *tensor.RNG, encoderDim, projDim int) *Projector {
	return &Projector{Net: nn.NewSequential(
		nn.NewLinear(g, encoderDim, projDim, true),
		&nn.ReLU{},
		nn.NewLinear(g, projDim, projDim, true),
	)}
}

// Forward projects features.
func (p *Projector) Forward(h *tensor.Tensor) *tensor.Tensor { return p.Net.Forward(h) }

// Backward propagates the embedding gradient back to the features.
func (p *Projector) Backward(g *tensor.Tensor) *tensor.Tensor { return p.Net.Backward(g) }

// Params returns the projector parameters.
func (p *Projector) Params() []*nn.Param { return p.Net.Params() }
