package ssl

import (
	"math"
	"testing"

	"torch2chip/internal/tensor"
)

func TestNormalizeStatistics(t *testing.T) {
	g := tensor.NewRNG(1)
	z := g.Randn(2, 32, 8)
	nm := normalize(z)
	for j := 0; j < 8; j++ {
		var sum, sq float64
		for i := 0; i < 32; i++ {
			v := float64(nm.zn.Data[i*8+j])
			sum += v
			sq += v * v
		}
		mu := sum / 32
		va := sq/32 - mu*mu
		if math.Abs(mu) > 1e-5 || math.Abs(va-1) > 1e-3 {
			t.Fatalf("dim %d: mean %v var %v", j, mu, va)
		}
	}
}

func TestBarlowLossZeroAtIdentityCorrelation(t *testing.T) {
	// Identical views with decorrelated dims → C = I → loss ≈ 0.
	g := tensor.NewRNG(2)
	z := g.Randn(1, 256, 4) // large batch decorrelates random dims
	loss, _, _ := BarlowLoss(z, z, 0.005)
	if loss > 0.05 {
		t.Fatalf("loss for identical decorrelated views = %v", loss)
	}
}

func TestBarlowLossPositiveForIndependentViews(t *testing.T) {
	g := tensor.NewRNG(3)
	z1 := g.Randn(1, 64, 8)
	z2 := g.Randn(1, 64, 8)
	loss, _, _ := BarlowLoss(z1, z2, 0.005)
	// Independent views have C_ii ≈ 0 → diagonal loss ≈ D.
	if loss < 4 {
		t.Fatalf("independent views loss = %v, want ≈8", loss)
	}
}

func TestBarlowGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(4)
	z1 := g.Randn(1, 6, 4)
	z2 := g.Randn(1, 6, 4)
	const lambda = 0.1
	_, g1, g2 := BarlowLoss(z1, z2, lambda)
	const eps = 1e-2
	for _, idx := range []int{0, 7, 23} {
		orig := z1.Data[idx]
		z1.Data[idx] = orig + eps
		lp, _, _ := BarlowLoss(z1, z2, lambda)
		z1.Data[idx] = orig - eps
		lm, _, _ := BarlowLoss(z1, z2, lambda)
		z1.Data[idx] = orig
		num := float64(lp-lm) / (2 * eps)
		if math.Abs(num-float64(g1.Data[idx])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("g1[%d]: numerical %v analytic %v", idx, num, g1.Data[idx])
		}
	}
	for _, idx := range []int{3, 11} {
		orig := z2.Data[idx]
		z2.Data[idx] = orig + eps
		lp, _, _ := BarlowLoss(z1, z2, lambda)
		z2.Data[idx] = orig - eps
		lm, _, _ := BarlowLoss(z1, z2, lambda)
		z2.Data[idx] = orig
		num := float64(lp-lm) / (2 * eps)
		if math.Abs(num-float64(g2.Data[idx])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("g2[%d]: numerical %v analytic %v", idx, num, g2.Data[idx])
		}
	}
}

func TestBarlowGradientDescends(t *testing.T) {
	// Descending the analytic gradient must reduce the loss.
	g := tensor.NewRNG(5)
	z1 := g.Randn(1, 32, 6)
	z2 := g.Randn(1, 32, 6)
	first, _, _ := BarlowLoss(z1, z2, 0.01)
	loss := first
	for i := 0; i < 50; i++ {
		var g1, g2 *tensor.Tensor
		loss, g1, g2 = BarlowLoss(z1, z2, 0.01)
		tensor.AxpyInPlace(z1, -0.5, g1)
		tensor.AxpyInPlace(z2, -0.5, g2)
	}
	if loss >= first/2 {
		t.Fatalf("gradient descent failed: %v → %v", first, loss)
	}
}

func TestProjectorShapes(t *testing.T) {
	g := tensor.NewRNG(6)
	p := NewProjector(g, 16, 32)
	h := g.Randn(1, 8, 16)
	z := p.Forward(h)
	if z.Shape[0] != 8 || z.Shape[1] != 32 {
		t.Fatalf("shape %v", z.Shape)
	}
	gh := p.Backward(g.Randn(1, 8, 32))
	if gh.Shape[1] != 16 {
		t.Fatalf("grad shape %v", gh.Shape)
	}
	if len(p.Params()) != 4 {
		t.Fatalf("params %d", len(p.Params()))
	}
}

func TestXDLossSymmetricAPI(t *testing.T) {
	g := tensor.NewRNG(7)
	h1 := g.Randn(1, 16, 8)
	h2 := g.Randn(1, 16, 8)
	l1, _, _ := XDLoss(h1, h2, 0.01)
	l2, _, _ := XDLoss(h2, h1, 0.01)
	if math.Abs(float64(l1-l2)) > 1e-4 {
		t.Fatalf("XD loss asymmetric: %v vs %v", l1, l2)
	}
}
