// Package data provides the synthetic stand-ins for the paper's datasets
// (CIFAR-10/100, ImageNet-1K, and the transfer suite Aircraft / Flowers /
// Food-101). Real photos are unavailable in this environment; each
// dataset is a seeded class-template generator whose samples are
// template + geometric and photometric jitter. The tasks are genuinely
// learnable (CNNs reach high accuracy with enough data) and quantization/
// pruning stress behaves like on natural images: accuracy degrades
// gracefully with precision, which is the property the paper's tables
// measure. See DESIGN.md for the substitution rationale.
package data

import (
	"fmt"
	"math"

	"torch2chip/internal/tensor"
)

// Dataset is an in-memory labelled image set (NCHW float32 in [0,1]).
type Dataset struct {
	Name       string
	NumClasses int
	C, H, W    int
	Images     []*tensor.Tensor // each [C,H,W]
	Labels     []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// Batch assembles samples at the given indices into an [n,C,H,W] tensor
// and a label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	n := len(idx)
	x := tensor.New(n, d.C, d.H, d.W)
	y := make([]int, n)
	sz := d.C * d.H * d.W
	for i, id := range idx {
		copy(x.Data[i*sz:(i+1)*sz], d.Images[id].Data)
		y[i] = d.Labels[id]
	}
	return x, y
}

// Subset returns a dataset view with the first n samples per class,
// emulating the low-label transfer regime of Table 4.
func (d *Dataset) Subset(perClass int) *Dataset {
	counts := make([]int, d.NumClasses)
	out := &Dataset{Name: d.Name + "-subset", NumClasses: d.NumClasses, C: d.C, H: d.H, W: d.W}
	for i, img := range d.Images {
		y := d.Labels[i]
		if counts[y] < perClass {
			counts[y]++
			out.Images = append(out.Images, img)
			out.Labels = append(out.Labels, y)
		}
	}
	return out
}

// Spec parameterizes a synthetic domain. Different domains (the transfer
// tasks) differ in their template statistics.
type Spec struct {
	Name       string
	NumClasses int
	Size       int // H = W
	// Blobs and Gratings control template complexity.
	Blobs    int
	Gratings int
	// Noise is the per-sample additive noise std.
	Noise float32
	// MaxShift is the per-sample translation jitter in pixels.
	MaxShift int
	Seed     int64
}

// Standard domain specs; sizes are scaled down from the papers' datasets
// so CPU training finishes in seconds (see DESIGN.md substitutions).
var (
	// SynthCIFAR10 stands in for CIFAR-10.
	SynthCIFAR10 = Spec{Name: "synth-cifar10", NumClasses: 10, Size: 16, Blobs: 3, Gratings: 2, Noise: 0.06, MaxShift: 2, Seed: 1001}
	// SynthCIFAR100 stands in for CIFAR-100.
	SynthCIFAR100 = Spec{Name: "synth-cifar100", NumClasses: 40, Size: 16, Blobs: 3, Gratings: 2, Noise: 0.06, MaxShift: 2, Seed: 1002}
	// SynthImageNet stands in for ImageNet-1K as the pre-training corpus.
	SynthImageNet = Spec{Name: "synth-imagenet", NumClasses: 20, Size: 16, Blobs: 4, Gratings: 3, Noise: 0.08, MaxShift: 3, Seed: 1003}
	// SynthAircraft / SynthFlowers / SynthFood are the transfer tasks.
	SynthAircraft = Spec{Name: "synth-aircraft", NumClasses: 10, Size: 16, Blobs: 2, Gratings: 4, Noise: 0.1, MaxShift: 3, Seed: 1004}
	SynthFlowers  = Spec{Name: "synth-flowers", NumClasses: 10, Size: 16, Blobs: 5, Gratings: 1, Noise: 0.08, MaxShift: 2, Seed: 1005}
	SynthFood     = Spec{Name: "synth-food", NumClasses: 10, Size: 16, Blobs: 4, Gratings: 2, Noise: 0.12, MaxShift: 2, Seed: 1006}
)

// Generate builds train and test splits for a spec.
func Generate(spec Spec, trainN, testN int) (train, test *Dataset) {
	g := tensor.NewRNG(spec.Seed)
	templates := make([]*tensor.Tensor, spec.NumClasses)
	for k := range templates {
		templates[k] = makeTemplate(g, spec)
	}
	make_ := func(n int, rng *tensor.RNG) *Dataset {
		d := &Dataset{Name: spec.Name, NumClasses: spec.NumClasses, C: 3, H: spec.Size, W: spec.Size}
		for i := 0; i < n; i++ {
			y := i % spec.NumClasses
			d.Images = append(d.Images, sample(rng, templates[y], spec))
			d.Labels = append(d.Labels, y)
		}
		return d
	}
	return make_(trainN, tensor.NewRNG(spec.Seed+1)), make_(testN, tensor.NewRNG(spec.Seed+2))
}

// makeTemplate draws a class prototype: Gaussian blobs plus sinusoidal
// gratings in random colors, normalized to [0.1, 0.9].
func makeTemplate(g *tensor.RNG, spec Spec) *tensor.Tensor {
	s := spec.Size
	t := tensor.New(3, s, s)
	for b := 0; b < spec.Blobs; b++ {
		cx := g.Float32() * float32(s)
		cy := g.Float32() * float32(s)
		sig := 1 + g.Float32()*float32(s)/4
		col := [3]float32{g.Float32(), g.Float32(), g.Float32()}
		for c := 0; c < 3; c++ {
			for y := 0; y < s; y++ {
				for x := 0; x < s; x++ {
					dx := float64(float32(x) - cx)
					dy := float64(float32(y) - cy)
					v := float32(math.Exp(-(dx*dx + dy*dy) / float64(2*sig*sig)))
					t.Data[(c*s+y)*s+x] += col[c] * v
				}
			}
		}
	}
	for gr := 0; gr < spec.Gratings; gr++ {
		fx := (g.Float32() - 0.5) * 2
		fy := (g.Float32() - 0.5) * 2
		ph := g.Float32() * 6.28
		col := [3]float32{g.Float32(), g.Float32(), g.Float32()}
		for c := 0; c < 3; c++ {
			for y := 0; y < s; y++ {
				for x := 0; x < s; x++ {
					v := float32(math.Sin(float64(fx*float32(x)+fy*float32(y)) + float64(ph)))
					t.Data[(c*s+y)*s+x] += 0.3 * col[c] * v
				}
			}
		}
	}
	// Normalize to [0.1, 0.9].
	lo, hi := t.Min(), t.Max()
	if hi-lo < 1e-6 {
		hi = lo + 1
	}
	for i, v := range t.Data {
		t.Data[i] = 0.1 + 0.8*(v-lo)/(hi-lo)
	}
	return t
}

// sample jitters a template: random shift, horizontal flip, contrast and
// brightness jitter, additive noise; clipped back to [0,1].
func sample(g *tensor.RNG, tpl *tensor.Tensor, spec Spec) *tensor.Tensor {
	s := spec.Size
	out := tensor.New(3, s, s)
	dx := g.Intn(2*spec.MaxShift+1) - spec.MaxShift
	dy := g.Intn(2*spec.MaxShift+1) - spec.MaxShift
	flip := g.Float32() < 0.5
	contrast := 0.8 + 0.4*g.Float32()
	bright := (g.Float32() - 0.5) * 0.2
	for c := 0; c < 3; c++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				sx, sy := x+dx, y+dy
				if flip {
					sx = s - 1 - sx
				}
				var v float32 = 0.5
				if sx >= 0 && sx < s && sy >= 0 && sy < s {
					v = tpl.Data[(c*s+sy)*s+sx]
				}
				v = (v-0.5)*contrast + 0.5 + bright + g.NormFloat32()*spec.Noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				out.Data[(c*s+y)*s+x] = v
			}
		}
	}
	return out
}

// Loader iterates a dataset in shuffled mini-batches.
type Loader struct {
	DS    *Dataset
	Batch int
	RNG   *tensor.RNG
	perm  []int
	pos   int
}

// NewLoader builds a loader; batch must be positive.
func NewLoader(ds *Dataset, batch int, rng *tensor.RNG) *Loader {
	if batch <= 0 {
		panic(fmt.Sprintf("data: batch %d", batch))
	}
	l := &Loader{DS: ds, Batch: batch, RNG: rng}
	l.reshuffle()
	return l
}

func (l *Loader) reshuffle() {
	if l.RNG != nil {
		l.perm = l.RNG.Perm(l.DS.Len())
	} else {
		l.perm = make([]int, l.DS.Len())
		for i := range l.perm {
			l.perm[i] = i
		}
	}
	l.pos = 0
}

// Next returns the next batch, reshuffling at epoch boundaries. ok is
// false exactly once per epoch (the epoch-end signal).
func (l *Loader) Next() (x *tensor.Tensor, y []int, ok bool) {
	if l.pos >= len(l.perm) {
		l.reshuffle()
		return nil, nil, false
	}
	end := l.pos + l.Batch
	if end > len(l.perm) {
		end = len(l.perm)
	}
	idx := l.perm[l.pos:end]
	l.pos = end
	x, y = l.DS.Batch(idx)
	return x, y, true
}

// TwoViews produces two independently augmented views of a batch for
// self-supervised training: random shift, flip, channel dropout-free
// noise and cutout.
func TwoViews(g *tensor.RNG, x *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	return augmentBatch(g, x), augmentBatch(g, x)
}

func augmentBatch(g *tensor.RNG, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.Shape...)
	for ni := 0; ni < n; ni++ {
		dx := g.Intn(5) - 2
		dy := g.Intn(5) - 2
		flip := g.Float32() < 0.5
		noise := g.Float32() * 0.08
		cutX, cutY, cutS := -10, -10, 0
		if g.Float32() < 0.5 {
			cutS = h / 4
			cutX = g.Intn(w)
			cutY = g.Intn(h)
		}
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					sx, sy := xx+dx, y+dy
					if flip {
						sx = w - 1 - sx
					}
					var v float32 = 0.5
					if sx >= 0 && sx < w && sy >= 0 && sy < h {
						v = x.Data[((ni*c+ci)*h+sy)*w+sx]
					}
					if xx >= cutX && xx < cutX+cutS && y >= cutY && y < cutY+cutS {
						v = 0.5
					}
					v += g.NormFloat32() * noise
					if v < 0 {
						v = 0
					}
					if v > 1 {
						v = 1
					}
					out.Data[((ni*c+ci)*h+y)*w+xx] = v
				}
			}
		}
	}
	return out
}
