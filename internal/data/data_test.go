package data

import (
	"math"
	"testing"

	"torch2chip/internal/tensor"
)

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(SynthCIFAR10, 20, 10)
	b, _ := Generate(SynthCIFAR10, 20, 10)
	if !tensor.AllClose(a.Images[7], b.Images[7], 0, 0) {
		t.Fatal("same spec must generate identical data")
	}
	if a.Labels[7] != b.Labels[7] {
		t.Fatal("labels must match")
	}
}

func TestGenerateRangeAndShape(t *testing.T) {
	train, test := Generate(SynthCIFAR10, 30, 10)
	if train.Len() != 30 || test.Len() != 10 {
		t.Fatalf("lens %d/%d", train.Len(), test.Len())
	}
	img := train.Images[0]
	if img.Shape[0] != 3 || img.Shape[1] != 16 {
		t.Fatalf("shape %v", img.Shape)
	}
	if img.Min() < 0 || img.Max() > 1 {
		t.Fatalf("pixel range [%v,%v]", img.Min(), img.Max())
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer (on average) than cross-class
	// samples — the learnability precondition.
	train, _ := Generate(SynthCIFAR10, 100, 10)
	dist := func(a, b *tensor.Tensor) float64 {
		var s float64
		for i := range a.Data {
			d := float64(a.Data[i] - b.Data[i])
			s += d * d
		}
		return s
	}
	var same, cross float64
	var ns, nc int
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			d := dist(train.Images[i], train.Images[j])
			if train.Labels[i] == train.Labels[j] {
				same += d
				ns++
			} else {
				cross += d
				nc++
			}
		}
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Fatalf("same-class dist %v not below cross-class %v", same/float64(ns), cross/float64(nc))
	}
}

func TestDomainsDiffer(t *testing.T) {
	a, _ := Generate(SynthAircraft, 10, 2)
	f, _ := Generate(SynthFlowers, 10, 2)
	if tensor.AllClose(a.Images[0], f.Images[0], 1e-3, 1e-3) {
		t.Fatal("different domains must generate different data")
	}
}

func TestBatchAssembly(t *testing.T) {
	train, _ := Generate(SynthCIFAR10, 20, 5)
	x, y := train.Batch([]int{0, 5, 10})
	if x.Shape[0] != 3 || x.Shape[1] != 3 || len(y) != 3 {
		t.Fatalf("batch shape %v labels %v", x.Shape, y)
	}
	// Row 1 must equal image 5.
	sz := 3 * 16 * 16
	for i := 0; i < sz; i++ {
		if x.Data[sz+i] != train.Images[5].Data[i] {
			t.Fatal("batch row mismatch")
		}
	}
}

func TestSubsetPerClass(t *testing.T) {
	train, _ := Generate(SynthCIFAR10, 100, 5)
	sub := train.Subset(3)
	if sub.Len() != 30 {
		t.Fatalf("subset len %d, want 30", sub.Len())
	}
	counts := map[int]int{}
	for _, y := range sub.Labels {
		counts[y]++
	}
	for y, c := range counts {
		if c != 3 {
			t.Fatalf("class %d has %d samples", y, c)
		}
	}
}

func TestLoaderCoversEpoch(t *testing.T) {
	train, _ := Generate(SynthCIFAR10, 25, 5)
	l := NewLoader(train, 8, tensor.NewRNG(1))
	seen := 0
	batches := 0
	for {
		x, y, ok := l.Next()
		if !ok {
			break
		}
		seen += len(y)
		batches++
		if x.Shape[0] != len(y) {
			t.Fatal("batch size mismatch")
		}
	}
	if seen != 25 || batches != 4 {
		t.Fatalf("epoch covered %d samples in %d batches", seen, batches)
	}
	// Next epoch starts fresh.
	_, _, ok := l.Next()
	if !ok {
		t.Fatal("second epoch must start after reset")
	}
}

func TestLoaderShufflesBetweenEpochs(t *testing.T) {
	train, _ := Generate(SynthCIFAR10, 50, 5)
	l := NewLoader(train, 50, tensor.NewRNG(2))
	_, y1, _ := l.Next()
	l.Next() // epoch end
	_, y2, _ := l.Next()
	same := true
	for i := range y1 {
		if y1[i] != y2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("loader must reshuffle between epochs")
	}
}

func TestTwoViewsDiffer(t *testing.T) {
	train, _ := Generate(SynthCIFAR10, 4, 2)
	x, _ := train.Batch([]int{0, 1, 2, 3})
	g := tensor.NewRNG(3)
	v1, v2 := TwoViews(g, x)
	if tensor.AllClose(v1, v2, 1e-4, 1e-4) {
		t.Fatal("the two SSL views must differ")
	}
	if v1.Min() < 0 || v1.Max() > 1 {
		t.Fatalf("view out of range [%v,%v]", v1.Min(), v1.Max())
	}
	// Views must stay correlated with the source (same content).
	var dot, na, nb float64
	for i := range x.Data {
		dot += float64(x.Data[i]) * float64(v1.Data[i])
		na += float64(x.Data[i]) * float64(x.Data[i])
		nb += float64(v1.Data[i]) * float64(v1.Data[i])
	}
	if corr := dot / (math.Sqrt(na) * math.Sqrt(nb)); corr < 0.7 {
		t.Fatalf("augmented view decorrelated from source: %v", corr)
	}
}
