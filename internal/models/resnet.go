// Package models implements the paper's model zoo — ResNet-20/18/50,
// MobileNet-V1, and ViT-7 — as width/depth-scaled variants trainable on
// CPU. Topologies are faithful (basic and bottleneck residual blocks,
// depthwise-separable convolutions, patch-embedded transformer blocks) so
// the toolkit's fusion and extraction paths are exercised exactly as on
// the full-size models; only the channel counts and input resolution are
// reduced (DESIGN.md, substitutions).
package models

import (
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// ResNetConfig selects a residual network variant.
type ResNetConfig struct {
	// BlocksPerStage is the number of residual blocks in each of the three
	// stages (ResNet-20 uses {3,3,3}; the scaled "ResNet-18" uses {2,2,2};
	// the scaled "ResNet-50" uses bottlenecks with {3,4,3}).
	BlocksPerStage []int
	// Bottleneck switches the block type (ResNet-50 family).
	Bottleneck bool
	// Width is the stage-1 channel count (16 in full ResNet-20).
	Width      int
	NumClasses int
}

// ResNet20 is the CIFAR-style 20-layer configuration at reduced width.
func ResNet20(numClasses int) ResNetConfig {
	return ResNetConfig{BlocksPerStage: []int{3, 3, 3}, Width: 8, NumClasses: numClasses}
}

// ResNet18 is the scaled basic-block ImageNet-style configuration.
func ResNet18(numClasses int) ResNetConfig {
	return ResNetConfig{BlocksPerStage: []int{2, 2, 2}, Width: 12, NumClasses: numClasses}
}

// ResNet50 is the scaled bottleneck configuration.
func ResNet50(numClasses int) ResNetConfig {
	return ResNetConfig{BlocksPerStage: []int{3, 4, 3}, Bottleneck: true, Width: 12, NumClasses: numClasses}
}

// NewResNet builds the network for 3-channel square inputs.
func NewResNet(g *tensor.RNG, cfg ResNetConfig) *nn.Sequential {
	w := cfg.Width
	layers := []nn.Layer{
		nn.NewConv2d(g, 3, w, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(w),
		&nn.ReLU{},
	}
	in := w
	for stage, nb := range cfg.BlocksPerStage {
		out := w << stage
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for b := 0; b < nb; b++ {
			s := 1
			if b == 0 {
				s = stride
			}
			if cfg.Bottleneck {
				layers = append(layers, bottleneckBlock(g, in, out, s)...)
				in = out * 2 // expansion 2 (full ResNet-50 uses 4)
			} else {
				layers = append(layers, basicBlock(g, in, out, s)...)
				in = out
			}
		}
	}
	layers = append(layers,
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, in, cfg.NumClasses, true),
	)
	return nn.NewSequential(layers...)
}

// basicBlock is conv3x3-BN-ReLU-conv3x3-BN with identity or 1x1-conv
// shortcut, followed by the post-add ReLU.
func basicBlock(g *tensor.RNG, in, out, stride int) []nn.Layer {
	body := nn.NewSequential(
		nn.NewConv2d(g, in, out, 3, stride, 1, 1, false),
		nn.NewBatchNorm2d(out),
		&nn.ReLU{},
		nn.NewConv2d(g, out, out, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(out),
	)
	var shortcut nn.Layer = nn.Identity{}
	if in != out || stride != 1 {
		shortcut = nn.NewSequential(
			nn.NewConv2d(g, in, out, 1, stride, 0, 1, false),
			nn.NewBatchNorm2d(out),
		)
	}
	return []nn.Layer{nn.NewResidual(body, shortcut), &nn.ReLU{}}
}

// bottleneckBlock is 1x1-reduce, 3x3, 1x1-expand with expansion 2.
func bottleneckBlock(g *tensor.RNG, in, mid, stride int) []nn.Layer {
	out := mid * 2
	body := nn.NewSequential(
		nn.NewConv2d(g, in, mid, 1, 1, 0, 1, false),
		nn.NewBatchNorm2d(mid),
		&nn.ReLU{},
		nn.NewConv2d(g, mid, mid, 3, stride, 1, 1, false),
		nn.NewBatchNorm2d(mid),
		&nn.ReLU{},
		nn.NewConv2d(g, mid, out, 1, 1, 0, 1, false),
		nn.NewBatchNorm2d(out),
	)
	var shortcut nn.Layer = nn.Identity{}
	if in != out || stride != 1 {
		shortcut = nn.NewSequential(
			nn.NewConv2d(g, in, out, 1, stride, 0, 1, false),
			nn.NewBatchNorm2d(out),
		)
	}
	return []nn.Layer{nn.NewResidual(body, shortcut), &nn.ReLU{}}
}

// CountParams returns the total number of scalar parameters of a model.
func CountParams(l nn.Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Data.Numel()
	}
	return n
}
