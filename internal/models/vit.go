package models

import (
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// ViTConfig selects the vision-transformer variant (the paper's ViT-7 at
// reduced dimension).
type ViTConfig struct {
	ImgSize    int
	Patch      int
	Dim        int
	Depth      int
	Heads      int
	MLPRatio   int
	NumClasses int
}

// ViT7 returns the scaled 7-block configuration.
func ViT7(imgSize, numClasses int) ViTConfig {
	return ViTConfig{ImgSize: imgSize, Patch: 4, Dim: 32, Depth: 7, Heads: 4, MLPRatio: 2, NumClasses: numClasses}
}

// PatchEmbed converts [N,3,H,W] to token embeddings [N,T,D] with a strided
// convolution, then adds learnable positional embeddings and a class token.
type PatchEmbed struct {
	Conv   nn.Layer // *nn.Conv2d (or QConv2d after Prepare)
	Pos    *nn.Param
	Cls    *nn.Param
	T      int // tokens including cls
	D      int
	nCache int
}

// NewPatchEmbed builds the embedding for the given geometry.
func NewPatchEmbed(g *tensor.RNG, cfg ViTConfig) *PatchEmbed {
	tok := (cfg.ImgSize / cfg.Patch) * (cfg.ImgSize / cfg.Patch)
	pe := &PatchEmbed{
		Conv: nn.NewConv2d(g, 3, cfg.Dim, cfg.Patch, cfg.Patch, 0, 1, true),
		T:    tok + 1,
		D:    cfg.Dim,
	}
	pe.Pos = nn.NewParam("vit.pos", g.Randn(0.02, tok+1, cfg.Dim))
	pe.Pos.NoDecay = true
	pe.Cls = nn.NewParam("vit.cls", g.Randn(0.02, cfg.Dim))
	pe.Cls.NoDecay = true
	return pe
}

// Forward embeds patches and prepends the class token.
func (pe *PatchEmbed) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	pe.nCache = n
	f := pe.Conv.Forward(x) // [N,D,h,w]
	d := f.Shape[1]
	sp := f.Shape[2] * f.Shape[3]
	out := tensor.New(n, pe.T, d)
	for ni := 0; ni < n; ni++ {
		// cls token
		for j := 0; j < d; j++ {
			out.Data[(ni*pe.T)*d+j] = pe.Cls.Data.Data[j] + pe.Pos.Data.Data[j]
		}
		for t := 0; t < sp; t++ {
			for j := 0; j < d; j++ {
				out.Data[(ni*pe.T+1+t)*d+j] = f.Data[(ni*d+j)*sp+t] + pe.Pos.Data.Data[(1+t)*d+j]
			}
		}
	}
	return out
}

// Backward routes gradients to the conv, position and class parameters.
func (pe *PatchEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := pe.nCache
	d := pe.D
	sp := pe.T - 1
	gf := tensor.New(n, d, intSqrt(sp), intSqrt(sp))
	for ni := 0; ni < n; ni++ {
		for j := 0; j < d; j++ {
			pe.Cls.Grad.Data[j] += grad.Data[(ni*pe.T)*d+j]
			pe.Pos.Grad.Data[j] += grad.Data[(ni*pe.T)*d+j]
		}
		for t := 0; t < sp; t++ {
			for j := 0; j < d; j++ {
				g := grad.Data[(ni*pe.T+1+t)*d+j]
				gf.Data[(ni*d+j)*sp+t] = g
				pe.Pos.Grad.Data[(1+t)*d+j] += g
			}
		}
	}
	return pe.Conv.Backward(gf)
}

func intSqrt(n int) int {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return 1
}

// Params returns conv, positional and class parameters.
func (pe *PatchEmbed) Params() []*nn.Param {
	return append(pe.Conv.Params(), pe.Pos, pe.Cls)
}

// Children exposes the embedding conv.
func (pe *PatchEmbed) Children() []nn.Layer { return []nn.Layer{pe.Conv} }

// Rewire lets the quantization pass replace the embedding conv.
func (pe *PatchEmbed) Rewire(f func(nn.Layer) nn.Layer) { pe.Conv = f(pe.Conv) }

// TransformerBlock is pre-norm attention + MLP with residual connections
// over [N,T,D] tokens.
type TransformerBlock struct {
	Norm1 *nn.LayerNorm
	Attn  nn.Layer // *nn.MultiHeadAttention (or QAttention)
	Norm2 *nn.LayerNorm
	FC1   nn.Layer // *nn.Linear (or QLinear)
	Act   nn.Layer // *nn.GELU (or QGELU, which observes the GELU input)
	FC2   nn.Layer
	D     int

	x1, x2 *tensor.Tensor // residual caches
	shape  []int
}

// NewTransformerBlock builds one encoder block.
func NewTransformerBlock(g *tensor.RNG, cfg ViTConfig) *TransformerBlock {
	hidden := cfg.Dim * cfg.MLPRatio
	return &TransformerBlock{
		Norm1: nn.NewLayerNorm(cfg.Dim),
		Attn:  nn.NewMultiHeadAttention(g, cfg.Dim, cfg.Heads),
		Norm2: nn.NewLayerNorm(cfg.Dim),
		FC1:   nn.NewLinear(g, cfg.Dim, hidden, true),
		Act:   &nn.GELU{},
		FC2:   nn.NewLinear(g, hidden, cfg.Dim, true),
		D:     cfg.Dim,
	}
}

// Forward computes x + Attn(LN(x)), then + MLP(LN(·)).
func (b *TransformerBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	b.shape = append(b.shape[:0], x.Shape...)
	b.x1 = x
	h := b.Attn.Forward(b.Norm1.Forward(x))
	y := tensor.Add(x, h)
	b.x2 = y
	n, t := y.Shape[0], y.Shape[1]
	flat := b.Norm2.Forward(y).Reshape(n*t, b.D)
	m := b.FC2.Forward(b.Act.Forward(b.FC1.Forward(flat)))
	return tensor.Add(y, m.Reshape(n, t, b.D))
}

// Backward propagates through both residual branches.
func (b *TransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t := b.shape[0], b.shape[1]
	gm := grad.Reshape(n*t, b.D)
	g1 := b.FC1.Backward(b.Act.Backward(b.FC2.Backward(gm)))
	gy := tensor.Add(grad, b.Norm2.Backward(g1.Reshape(n, t, b.D)))
	ga := b.Attn.Backward(gy)
	return tensor.Add(gy, b.Norm1.Backward(ga))
}

// Params returns all block parameters (including the activation's —
// a quantized GELU wrapper may carry learnable quantizer parameters).
func (b *TransformerBlock) Params() []*nn.Param {
	ps := b.Norm1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.Norm2.Params()...)
	ps = append(ps, b.FC1.Params()...)
	ps = append(ps, b.Act.Params()...)
	return append(ps, b.FC2.Params()...)
}

// Children exposes sub-layers for mode walks.
func (b *TransformerBlock) Children() []nn.Layer {
	return []nn.Layer{b.Norm1, b.Attn, b.Norm2, b.FC1, b.Act, b.FC2}
}

// Rewire lets the quantization pass swap the attention, the MLP linears,
// and the GELU (whose quantized wrapper calibrates the activation range
// the integer GELU table is built over).
func (b *TransformerBlock) Rewire(f func(nn.Layer) nn.Layer) {
	b.Attn = f(b.Attn)
	b.FC1 = f(b.FC1)
	b.Act = f(b.Act)
	b.FC2 = f(b.FC2)
}

// ClsHead takes the class token and projects it to logits.
type ClsHead struct {
	Norm *nn.LayerNorm
	FC   nn.Layer
	D    int
	n, t int
}

// NewClsHead builds the classification head.
func NewClsHead(g *tensor.RNG, cfg ViTConfig) *ClsHead {
	return &ClsHead{Norm: nn.NewLayerNorm(cfg.Dim), FC: nn.NewLinear(g, cfg.Dim, cfg.NumClasses, true), D: cfg.Dim}
}

// Forward normalizes tokens and classifies the class token.
func (h *ClsHead) Forward(x *tensor.Tensor) *tensor.Tensor {
	h.n, h.t = x.Shape[0], x.Shape[1]
	y := h.Norm.Forward(x)
	cls := tensor.New(h.n, h.D)
	for ni := 0; ni < h.n; ni++ {
		copy(cls.Data[ni*h.D:(ni+1)*h.D], y.Data[(ni*h.t)*h.D:(ni*h.t)*h.D+h.D])
	}
	return h.FC.Forward(cls)
}

// Backward scatters the class-token gradient back into the token grid.
func (h *ClsHead) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gcls := h.FC.Backward(grad)
	gy := tensor.New(h.n, h.t, h.D)
	for ni := 0; ni < h.n; ni++ {
		copy(gy.Data[(ni*h.t)*h.D:(ni*h.t)*h.D+h.D], gcls.Data[ni*h.D:(ni+1)*h.D])
	}
	return h.Norm.Backward(gy)
}

// Params returns head parameters.
func (h *ClsHead) Params() []*nn.Param {
	return append(h.Norm.Params(), h.FC.Params()...)
}

// Children exposes the norm and projection.
func (h *ClsHead) Children() []nn.Layer { return []nn.Layer{h.Norm, h.FC} }

// Rewire lets the quantization pass swap the classifier linear.
func (h *ClsHead) Rewire(f func(nn.Layer) nn.Layer) { h.FC = f(h.FC) }

// NewViT assembles the full transformer.
func NewViT(g *tensor.RNG, cfg ViTConfig) *nn.Sequential {
	layers := []nn.Layer{NewPatchEmbed(g, cfg)}
	for i := 0; i < cfg.Depth; i++ {
		layers = append(layers, NewTransformerBlock(g, cfg))
	}
	layers = append(layers, NewClsHead(g, cfg))
	return nn.NewSequential(layers...)
}
