package models

import (
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// MobileNetConfig selects the depthwise-separable CNN variant.
type MobileNetConfig struct {
	// WidthMult scales all channel counts (the paper's Mob-V1 (1×)).
	WidthMult  float32
	NumClasses int
	// Blocks is the number of depthwise-separable stages (full MobileNet
	// uses 13; the scaled variant defaults to 5).
	Blocks int
}

// MobileNetV1 returns the default scaled configuration.
func MobileNetV1(numClasses int) MobileNetConfig {
	return MobileNetConfig{WidthMult: 1, NumClasses: numClasses, Blocks: 5}
}

func scaleCh(c int, m float32) int {
	s := int(float32(c) * m)
	if s < 4 {
		s = 4
	}
	return s
}

// NewMobileNetV1 builds the depthwise-separable network: a stride-1 stem
// followed by [depthwise 3×3 → BN → ReLU6 → pointwise 1×1 → BN → ReLU6]
// stages, pooling, and the classifier. The whole network is a flat
// Sequential, so the deploy conversion lowers it fully to integers.
func NewMobileNetV1(g *tensor.RNG, cfg MobileNetConfig) *nn.Sequential {
	base := []int{8, 16, 16, 32, 32, 64, 64, 64, 64, 64, 64, 128, 128}
	strides := []int{1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 2, 1}
	if cfg.Blocks > len(base) {
		cfg.Blocks = len(base)
	}
	in := scaleCh(8, cfg.WidthMult)
	layers := []nn.Layer{
		nn.NewConv2d(g, 3, in, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(in),
		&nn.ReLU6{},
	}
	for b := 0; b < cfg.Blocks; b++ {
		out := scaleCh(base[b], cfg.WidthMult)
		s := strides[b]
		layers = append(layers,
			// depthwise
			nn.NewConv2d(g, in, in, 3, s, 1, in, false),
			nn.NewBatchNorm2d(in),
			&nn.ReLU6{},
			// pointwise
			nn.NewConv2d(g, in, out, 1, 1, 0, 1, false),
			nn.NewBatchNorm2d(out),
			&nn.ReLU6{},
		)
		in = out
	}
	layers = append(layers,
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, in, cfg.NumClasses, true),
	)
	return nn.NewSequential(layers...)
}
