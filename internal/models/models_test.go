package models

import (
	"testing"

	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

func TestResNet20ForwardShape(t *testing.T) {
	g := tensor.NewRNG(1)
	m := NewResNet(g, ResNet20(10))
	x := g.Uniform(0, 1, 2, 3, 16, 16)
	y := m.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 10 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestResNet50BottleneckShape(t *testing.T) {
	g := tensor.NewRNG(2)
	m := NewResNet(g, ResNet50(20))
	x := g.Uniform(0, 1, 1, 3, 16, 16)
	y := m.Forward(x)
	if y.Shape[1] != 20 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestResNetBackwardRuns(t *testing.T) {
	g := tensor.NewRNG(3)
	m := NewResNet(g, ResNet18(5))
	x := g.Uniform(0, 1, 2, 3, 16, 16)
	y := m.Forward(x)
	_, grad := nn.CrossEntropyLoss(y, []int{1, 3})
	gx := m.Backward(grad)
	if gx.Shape[1] != 3 || gx.Shape[2] != 16 {
		t.Fatalf("grad shape %v", gx.Shape)
	}
	// At least one conv weight must receive gradient.
	var touched bool
	for _, p := range m.Params() {
		if p.Grad.AbsMax() > 0 {
			touched = true
			break
		}
	}
	if !touched {
		t.Fatal("no parameter gradient accumulated")
	}
}

func TestMobileNetShapeAndDepthwise(t *testing.T) {
	g := tensor.NewRNG(4)
	m := NewMobileNetV1(g, MobileNetV1(10))
	x := g.Uniform(0, 1, 2, 3, 16, 16)
	y := m.Forward(x)
	if y.Shape[1] != 10 {
		t.Fatalf("shape %v", y.Shape)
	}
	// There must be grouped convolutions (depthwise).
	dw := 0
	for _, l := range m.Layers {
		if c, ok := l.(*nn.Conv2d); ok && c.P.Groups > 1 {
			dw++
		}
	}
	if dw == 0 {
		t.Fatal("MobileNet must contain depthwise convs")
	}
}

func TestMobileNetWidthMult(t *testing.T) {
	g := tensor.NewRNG(5)
	full := CountParams(NewMobileNetV1(g, MobileNetV1(10)))
	half := CountParams(NewMobileNetV1(g, MobileNetConfig{WidthMult: 0.5, NumClasses: 10, Blocks: 5}))
	if half >= full {
		t.Fatalf("0.5× (%d params) must be smaller than 1× (%d)", half, full)
	}
}

func TestViTForwardBackward(t *testing.T) {
	g := tensor.NewRNG(6)
	cfg := ViT7(16, 10)
	cfg.Depth = 2 // keep the test fast
	m := NewViT(g, cfg)
	x := g.Uniform(0, 1, 2, 3, 16, 16)
	y := m.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 10 {
		t.Fatalf("shape %v", y.Shape)
	}
	_, grad := nn.CrossEntropyLoss(y, []int{0, 1})
	gx := m.Backward(grad)
	if gx.Shape[1] != 3 {
		t.Fatalf("grad shape %v", gx.Shape)
	}
}

func TestViTLearnsOneStep(t *testing.T) {
	g := tensor.NewRNG(7)
	cfg := ViT7(8, 4)
	cfg.Depth = 1
	cfg.Dim = 16
	m := NewViT(g, cfg)
	x := g.Uniform(0, 1, 4, 3, 8, 8)
	labels := []int{0, 1, 2, 3}
	var first, last float32
	for step := 0; step < 20; step++ {
		y := m.Forward(x)
		loss, grad := nn.CrossEntropyLoss(y, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		nn.ZeroGrads(m)
		m.Backward(grad)
		for _, p := range m.Params() {
			tensor.AxpyInPlace(p.Data, -0.05, p.Grad)
		}
	}
	if last >= first {
		t.Fatalf("ViT loss did not decrease: %v → %v", first, last)
	}
}

func TestPrepareQuantizesResNet(t *testing.T) {
	g := tensor.NewRNG(8)
	m := NewResNet(g, ResNet20(10))
	quant.Prepare(m, quant.Config{WBits: 4, ABits: 4, Weight: "sawb", Act: "pact", PerChannel: true})
	convs, lins, _ := quant.QuantizedLayers(m)
	// ResNet-20: 19 convs (stem + 9 blocks × 2 + 2 downsample shortcuts) + 1 linear.
	if len(convs) < 19 || len(lins) != 1 {
		t.Fatalf("prepare found %d convs, %d linears", len(convs), len(lins))
	}
	x := g.Uniform(0, 1, 1, 3, 16, 16)
	y := m.Forward(x)
	if y.Shape[1] != 10 {
		t.Fatalf("quantized forward shape %v", y.Shape)
	}
}

func TestPrepareQuantizesViTViaRewire(t *testing.T) {
	g := tensor.NewRNG(9)
	cfg := ViT7(8, 4)
	cfg.Depth = 2
	cfg.Dim = 16
	m := NewViT(g, cfg)
	quant.Prepare(m, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax"})
	convs, lins, attns := quant.QuantizedLayers(m)
	if len(convs) != 1 {
		t.Fatalf("patch-embed conv not quantized: %d", len(convs))
	}
	// Each block: 4 attention projections + 2 MLP linears; head: 1 linear.
	if len(lins) != 2*6+1 {
		t.Fatalf("linears quantized: %d, want 13", len(lins))
	}
	if len(attns) != 2 {
		t.Fatalf("attentions quantized: %d", len(attns))
	}
	x := g.Uniform(0, 1, 1, 3, 8, 8)
	if y := m.Forward(x); y.Shape[1] != 4 {
		t.Fatalf("shape %v", y.Shape)
	}
	// Infer mode must run integer matmuls end to end.
	quant.SetCalibrating(m, false)
	quant.SetMode(m, quant.ModeInfer)
	if y := m.Forward(x); y.Shape[1] != 4 {
		t.Fatalf("infer shape %v", y.Shape)
	}
}

func TestCountParamsPositive(t *testing.T) {
	g := tensor.NewRNG(10)
	if CountParams(NewResNet(g, ResNet20(10))) <= 0 {
		t.Fatal("param count must be positive")
	}
}
