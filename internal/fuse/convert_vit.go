package fuse

// ViT lowering: converts the prepared+calibrated transformer blocks into
// the integer-only deploy layers of vit.go. Requantization points follow
// the calibrated observers wherever one exists (projection inputs, the
// QKᵀ/attn·V operand quantizers, the GELU input, the final logits); the
// two places with no observer — the embedding output and the residual
// block boundaries — use synthesized 16-bit signed targets whose scale
// is derived so that clipping is impossible (embedding: an analytic
// accumulator bound with 4x headroom; boundaries: the block entry scale,
// which leaves 256x headroom over the 8-bit code range entering the
// block). LayerNorm renormalizes per row, so those synthesized absolute
// scales only affect storage precision, never downstream calibration.

import (
	"fmt"
	"math"

	"torch2chip/internal/intmath"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

const (
	// embedCodeBudget is the target magnitude of embedding codes inside
	// the int16 range: the analytic bound maps to ±embedCodeBudget,
	// leaving 4x clamp headroom for residual-stream growth downstream.
	embedCodeBudget = 8192
	// boundaryBits is the storage width of residual block boundaries.
	boundaryBits = 16
	// smProbBits is the probability code width; probabilities carry the
	// exact scale 1/(2^smProbBits − 1) with no calibration needed. 8
	// bits keeps the [T,T] attention maps in single-byte storage AND
	// keeps the attn·V rescale S_p·S_v/S_proj representable in the INT16
	// fixed-point MulQuant (wider probability codes shrink that ratio
	// below the fixed-point resolution and destroy the product).
	smProbBits = 8
)

// smLogitScale is the softmax logit resolution (temperature step). The
// logit code WIDTH is chosen per attention from the analytic raw-logit
// bound — max subtraction happens inside the integer softmax, so the
// requantized codes must hold unshifted logits without clipping.
const smLogitScale = float32(1) / 64

func qRangeOf(t target) (int64, int64) {
	if t.signed {
		return -(1 << (t.bits - 1)), 1<<(t.bits-1) - 1
	}
	return 0, 1<<t.bits - 1
}

// geluFloat is the tanh-approximation GELU, identical to nn.GELU.
func geluFloat(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x)))
}

// lowerPatchEmbed lowers the patch embedding: the conv requantizes into
// a synthesized 16-bit embedding target, and the positional + class
// parameters quantize to codes at that same scale so the embedding add
// is a plain integer add.
func (c *converter) lowerPatchEmbed(pe *models.PatchEmbed, cur state) (*IntPatchEmbed, state, error) {
	qc, ok := pe.Conv.(*quant.QConv2d)
	if !ok {
		return nil, cur, fmt.Errorf("fuse: patch-embed conv is %T, not a quantized conv (run quant.Prepare first)", pe.Conv)
	}
	aq := qc.AQuant.Base()
	// Analytic output bound from the float weights: |out| ≤ max_oc
	// Σ_j |w_oc,j| · (S_x · maxShift) + |b_oc|, with maxShift the largest
	// zero-point-corrected input code magnitude. The fused integer
	// weights re-quantize these same floats, so the true bound differs
	// only by the weight quantization step — absorbed by the 4x margin.
	maxShift := aq.QMax() - aq.Zero[0]
	if s := aq.Zero[0] - aq.QMin(); s > maxShift {
		maxShift = s
	}
	o := qc.Conv.OutC
	wf := qc.Conv.W.Data
	k := wf.Numel() / o
	var bound float64
	for oc := 0; oc < o; oc++ {
		var s float64
		for _, w := range wf.Data[oc*k : (oc+1)*k] {
			s += math.Abs(float64(w))
		}
		v := s * float64(aq.Scale[0]) * float64(maxShift)
		if qc.Conv.B != nil {
			v += math.Abs(float64(qc.Conv.B.Data.Data[oc]))
		}
		if v > bound {
			bound = v
		}
	}
	var posMax float64
	for _, v := range pe.Pos.Data.Data {
		posMax = math.Max(posMax, math.Abs(float64(v)))
	}
	var clsMax float64
	for _, v := range pe.Cls.Data.Data {
		clsMax = math.Max(clsMax, math.Abs(float64(v)))
	}
	bound += posMax + clsMax
	if bound <= 0 {
		bound = 1
	}
	tgt := target{scale: float32(bound / embedCodeBudget), zero: 0, bits: boundaryBits, signed: true}
	conv, err := c.lowerConv(qc, IdentityBN(o), cur, tgt)
	if err != nil {
		return nil, cur, err
	}
	lo, hi := qRangeOf(tgt)
	poscls := tensor.NewInt(pe.T, pe.D)
	for j := 0; j < pe.D; j++ {
		poscls.Data[j] = intmath.RoundClip(
			(float64(pe.Cls.Data.Data[j])+float64(pe.Pos.Data.Data[j]))/float64(tgt.scale), lo, hi)
	}
	for t := 1; t < pe.T; t++ {
		for j := 0; j < pe.D; j++ {
			poscls.Data[t*pe.D+j] = intmath.RoundClip(
				float64(pe.Pos.Data.Data[t*pe.D+j])/float64(tgt.scale), lo, hi)
		}
	}
	il := &IntPatchEmbed{Conv: conv, PosCls: poscls, T: pe.T, D: pe.D, ClampLo: lo, ClampHi: hi, Scale: tgt.scale}
	return il, state{scale: tgt.scale, zero: 0}, nil
}

// lowerLayerNorm builds the integer LayerNorm: normalization constants
// from D and the input scale (which positions the float epsilon in the
// code domain), and the γ/β affine folded with the requantization into
// tgt.
func (c *converter) lowerLayerNorm(ln *nn.LayerNorm, inScale float32, tgt target) (*IntLayerNorm, error) {
	d := ln.D
	fb := uint(LNFracBits)
	kc := int64(math.Round(math.Sqrt(float64(d)) * float64(int64(1)<<fb)))
	eps := float64(ln.Eps) * float64(d) * float64(d) * float64(d) /
		(float64(inScale) * float64(inScale))
	den := float32(int64(1)<<fb) * tgt.scale
	scale := make([]float32, d)
	bias := make([]float32, d)
	for j := 0; j < d; j++ {
		scale[j] = ln.Gamma.Data.Data[j] / den
		bias[j] = ln.Beta.Data.Data[j] / tgt.scale
	}
	mq, err := c.mkMulQuant(scale, bias, "layernorm", tgt)
	if err != nil {
		return nil, err
	}
	return &IntLayerNorm{D: d, K: kc, FB: fb, EpsAdd: int64(math.Round(eps)), Scaler: mq}, nil
}

// lowerGELU tabulates GELU from the calibrated input quantizer into the
// consumer's activation quantizer.
func (c *converter) lowerGELU(qg *quant.QGELU, tgt target) *IntGELU {
	gq := qg.AQuant.Base()
	inS, inZ := gq.Scale[0], gq.Zero[0]
	lut := intmath.NewLUTQuant(geluFloat, gq.QMin(), gq.QMax(),
		func(code int64) float64 { return float64(code-inZ) * float64(inS) },
		tgt.scale, tgt.zero, tgt.bits, tgt.signed)
	lo, hi := qRangeOf(tgt)
	return &IntGELU{LUT: lut, OutLo: lo, OutHi: hi}
}

// lowerAttention lowers a quantized MHA into IntAttention; cur is the
// state of the codes entering the projections, tgt the requantization
// target of the attention output (the residual branch's fine scale).
func (c *converter) lowerAttention(qa *quant.QAttention, cur state, tgt target) (*IntAttention, error) {
	m := qa.MultiHeadAttention
	heads, d := m.Heads, m.D
	if heads <= 0 || d%heads != 0 {
		return nil, fmt.Errorf("fuse: attention dim %d not divisible by %d heads", d, heads)
	}
	qT := targetOf(qa.QK.AQuant.Base())
	kT := targetOf(qa.QK.BQuant.Base())
	vT := targetOf(qa.AV.BQuant.Base())
	projT := targetOf(qa.OProj.AQuant.Base())
	qL, err := c.lowerLinear(qa.QProj, cur, qT)
	if err != nil {
		return nil, err
	}
	kL, err := c.lowerLinear(qa.KProj, cur, kT)
	if err != nil {
		return nil, err
	}
	vL, err := c.lowerLinear(qa.VProj, cur, vT)
	if err != nil {
		return nil, err
	}
	// QKᵀ: acc·S_q·S_k/√dh requantizes into the softmax logit domain at
	// step smLogitScale; the code width comes from the exact pre-shift bound
	// |logit| ≤ dh·|q|max·|k|max/√dh, so raw logits never clip before the
	// softmax's internal max subtraction.
	dh := d / heads
	codeMax := func(t target) float64 {
		lo, hi := qRangeOf(t)
		m := hi
		if -lo > m {
			m = -lo
		}
		return float64(m)
	}
	bound := math.Sqrt(float64(dh)) * codeMax(qT) * float64(qT.scale) * codeMax(kT) * float64(kT.scale)
	smBits := 8
	for float64(int64(1)<<(smBits-1)-1)*float64(smLogitScale) < bound && smBits < 16 {
		smBits++
	}
	smT := target{scale: smLogitScale, zero: 0, bits: smBits, signed: true}
	qkScale := qT.scale * kT.scale / (float32(math.Sqrt(float64(dh))) * smT.scale)
	qkMQ, err := c.mkMulQuant([]float32{qkScale}, []float32{0}, "attention-qk", smT)
	if err != nil {
		return nil, err
	}
	smLo, smHi := qRangeOf(smT)
	sm := intmath.NewLUTSoftmax(smLo, smHi, smT.scale, smProbBits)
	// attn·V: probabilities carry the exact scale 1/(2^bits−1); the
	// product requantizes into the output projection's input quantizer.
	avMQ, err := c.mkMulQuant([]float32{sm.ProbScale * vT.scale / projT.scale}, []float32{0}, "attention-av", projT)
	if err != nil {
		return nil, err
	}
	pL, err := c.lowerLinear(qa.OProj, state{scale: projT.scale, zero: projT.zero}, tgt)
	if err != nil {
		return nil, err
	}
	return &IntAttention{
		Heads: heads, D: d,
		Q: qL, K: kL, V: vL,
		QKZA: qT.zero, QKZB: kT.zero, QKScale: qkMQ,
		Softmax: sm,
		AVZB:    vT.zero, AVScale: avMQ,
		Proj: pL,
	}, nil
}

// lowerTransformerBlock lowers one encoder block into two IntResiduals:
// x + Attn(LN1(x)) and y + FC2(GELU(FC1(LN2(y)))). Both block
// boundaries store 16-bit signed codes at the block entry scale — the
// branches requantize to the 2^shift finer scale, add, shift back.
func (c *converter) lowerTransformerBlock(b *models.TransformerBlock, cur state) ([]IntLayer, state, error) {
	qa, ok := b.Attn.(*quant.QAttention)
	if !ok {
		return nil, cur, fmt.Errorf("fuse: block attention is %T, not quantized", b.Attn)
	}
	fc1, ok := b.FC1.(*quant.QLinear)
	if !ok {
		return nil, cur, fmt.Errorf("fuse: block FC1 is %T, not quantized", b.FC1)
	}
	fc2, ok := b.FC2.(*quant.QLinear)
	if !ok {
		return nil, cur, fmt.Errorf("fuse: block FC2 is %T, not quantized", b.FC2)
	}
	qg, ok := b.Act.(*quant.QGELU)
	if !ok {
		return nil, cur, fmt.Errorf("fuse: block GELU is %T, not quantized", b.Act)
	}
	shift := c.opts.ResidualShift
	boundary := target{scale: cur.scale, zero: 0, bits: boundaryBits, signed: true}
	fine := boundary.scale / float32(int64(1)<<shift)
	branchTarget := target{scale: fine, zero: 0, bits: 16, signed: true}
	lo, hi := qRangeOf(boundary)

	mkShortcut := func(from state) ([]IntLayer, error) {
		mq, err := c.mkMulQuant(
			[]float32{from.scale / fine},
			[]float32{-float32(from.zero) * from.scale / fine},
			"shortcut", branchTarget)
		if err != nil {
			return nil, err
		}
		return []IntLayer{&IntRescale{Scaler: mq}}, nil
	}

	// Residual 1: x + Attn(LN1(x)).
	lnT1 := targetOf(qa.QProj.AQuant.Base())
	ln1, err := c.lowerLayerNorm(b.Norm1, cur.scale, lnT1)
	if err != nil {
		return nil, cur, err
	}
	attn, err := c.lowerAttention(qa, state{scale: lnT1.scale, zero: lnT1.zero}, branchTarget)
	if err != nil {
		return nil, cur, err
	}
	sc1, err := mkShortcut(cur)
	if err != nil {
		return nil, cur, err
	}
	res1 := &IntResidual{Body: []IntLayer{ln1, attn}, Shortcut: sc1, Shift: shift, ClampLo: lo, ClampHi: hi}
	cur = state{scale: boundary.scale, zero: 0}

	// Residual 2: y + FC2(GELU(FC1(LN2(y)))).
	lnT2 := targetOf(fc1.AQuant.Base())
	ln2, err := c.lowerLayerNorm(b.Norm2, cur.scale, lnT2)
	if err != nil {
		return nil, cur, err
	}
	geluT := targetOf(qg.AQuant.Base())
	fc1i, err := c.lowerLinear(fc1, state{scale: lnT2.scale, zero: lnT2.zero}, geluT)
	if err != nil {
		return nil, cur, err
	}
	fc2T := targetOf(fc2.AQuant.Base())
	gelu := c.lowerGELU(qg, fc2T)
	fc2i, err := c.lowerLinear(fc2, state{scale: fc2T.scale, zero: fc2T.zero}, branchTarget)
	if err != nil {
		return nil, cur, err
	}
	sc2, err := mkShortcut(cur)
	if err != nil {
		return nil, cur, err
	}
	res2 := &IntResidual{Body: []IntLayer{ln2, fc1i, gelu, fc2i}, Shortcut: sc2, Shift: shift, ClampLo: lo, ClampHi: hi}
	return []IntLayer{res1, res2}, state{scale: boundary.scale, zero: 0}, nil
}

// lowerClsHead lowers the classification head: slice the class token,
// integer LayerNorm into the classifier's input quantizer, classify.
func (c *converter) lowerClsHead(h *models.ClsHead, cur state, final target) ([]IntLayer, error) {
	fc, ok := h.FC.(*quant.QLinear)
	if !ok {
		return nil, fmt.Errorf("fuse: head classifier is %T, not quantized", h.FC)
	}
	lnT := targetOf(fc.AQuant.Base())
	ln, err := c.lowerLayerNorm(h.Norm, cur.scale, lnT)
	if err != nil {
		return nil, err
	}
	lin, err := c.lowerLinear(fc, state{scale: lnT.scale, zero: lnT.zero}, final)
	if err != nil {
		return nil, err
	}
	return []IntLayer{IntSliceCls{}, ln, lin}, nil
}
