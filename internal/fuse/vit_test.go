package fuse_test

// Integer-transformer conversion tests: the deploy pipeline must track
// the float model within calibration tolerance (the fake-quant model is
// the calibration floor — the integer pipeline adds only bounded extra
// noise on top of it), and the integer LayerNorm must land on the same
// code grid as the float LayerNorm up to ±2 codes.

import (
	"math"
	"testing"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// buildViT constructs the test transformer (deterministic init per seed).
func buildViT(seed int64, depth int) nn.Layer {
	g := tensor.NewRNG(seed)
	cfg := models.ViT7(32, 10)
	cfg.Depth = depth
	return models.NewViT(g, cfg)
}

// convertViT runs prepare→calibrate→convert on a fresh ViT.
func convertViT(t testing.TB, seed int64, depth int) (nn.Layer, *fuse.IntModel) {
	t.Helper()
	model := buildViT(seed, depth)
	calib, _ := data.Generate(data.SynthCIFAR10, 16, 8)
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	im, err := t2c.Convert()
	if err != nil {
		t.Fatal(err)
	}
	return model, im
}

func meanAbsDiff(a, b *tensor.Tensor) float64 {
	var sum float64
	for i := range a.Data {
		sum += math.Abs(float64(a.Data[i] - b.Data[i]))
	}
	return sum / float64(len(a.Data))
}

// TestViTConvertTracksFloat: the integer deploy model's logits stay
// within calibration tolerance of the FP32 model — bounded by a small
// multiple of the fake-quant model's own distance from FP32 (the noise
// the chosen quantizers introduce before any integer lowering).
func TestViTConvertTracksFloat(t *testing.T) {
	raw := buildViT(3, 2)
	nn.SetTraining(raw, false)
	fq, im := convertViT(t, 3, 2)

	g := tensor.NewRNG(77)
	x := g.Uniform(0, 1, 4, 3, 32, 32)
	yRaw := raw.Forward(x)
	yFQ := fq.Forward(x)
	yInt := im.Forward(x)

	floorErr := meanAbsDiff(yRaw, yFQ)
	intErr := meanAbsDiff(yRaw, yInt)
	t.Logf("mean |fq-raw| = %.4f, mean |int-raw| = %.4f", floorErr, intErr)
	if floorErr == 0 {
		t.Fatal("fake-quant floor is zero; calibration did not run")
	}
	if intErr > 3*floorErr {
		t.Fatalf("integer logits drift %.4f exceeds 3x the calibration floor %.4f", intErr, floorErr)
	}
}

// TestViTIntLayerNormMatchesFloat: the integer LayerNorm (integer Newton
// square root, code-domain epsilon) lands within ±2 codes of the float
// LayerNorm quantized on the same grid.
func TestViTIntLayerNormMatchesFloat(t *testing.T) {
	fq, im := convertViT(t, 3, 2)
	g := tensor.NewRNG(78)
	x := g.Uniform(0, 1, 2, 3, 32, 32)

	seq := fq.(*nn.Sequential)
	blk := seq.Layers[1].(*models.TransformerBlock)
	qa := blk.Attn.(*quant.QAttention)
	femb := seq.Layers[0].Forward(x)
	fln := blk.Norm1.Forward(femb)

	pe := im.Layers[0].(*fuse.IntPatchEmbed)
	res1 := im.Layers[1].(*fuse.IntResidual)
	ln1 := res1.Body[0].(*fuse.IntLayerNorm)
	if ln1.EpsAdd <= 0 {
		t.Fatalf("integer LayerNorm lost the epsilon fold: EpsAdd=%d", ln1.EpsAdd)
	}
	qln := ln1.Forward(pe.Forward(im.InQuant.Quantize(x)))

	aq := qa.QProj.AQuant.Base()
	s := float64(aq.Scale[0])
	var maxd int64
	for i := range fln.Data {
		c := int64(math.Round(float64(fln.Data[i]) / s))
		if c < aq.QMin() {
			c = aq.QMin()
		}
		if c > aq.QMax() {
			c = aq.QMax()
		}
		d := qln.Data[i] - c
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 2 {
		t.Fatalf("integer LayerNorm deviates %d codes from the float grid", maxd)
	}
}

// TestViTConvertRequiresPrepared: converting an unprepared ViT must fail
// with a clear error instead of mis-compiling.
func TestViTConvertRequiresPrepared(t *testing.T) {
	model := buildViT(5, 1)
	nn.SetTraining(model, false)
	outQ := quant.NewMinMax(12, true, false)
	outQ.Observe(tensor.Ones(4, 10))
	opts := fuse.DefaultOptions()
	opts.OutQuant = outQ.Base()
	if _, err := fuse.Convert(model, opts); err == nil {
		t.Fatal("expected conversion of an unprepared ViT to fail")
	}
}
