package fuse

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// Scheme selects the fusion strategy.
type Scheme int

const (
	// SchemeAuto picks PreFuse for ≥8-bit weights and channel-wise
	// scaling below 8 bits, the paper's recommendation.
	SchemeAuto Scheme = iota
	// SchemePreFuse folds BN into weights before quantization (Eq. 8–11).
	SchemePreFuse
	// SchemeChannelWise keeps BN as per-channel scale+bias inside
	// MulQuant (Eq. 12–15).
	SchemeChannelWise
)

// Options configure Convert.
type Options struct {
	Scheme Scheme
	// IntBits+FracBits=16 define the MulQuant fixed-point split, e.g.
	// (4, 12) is the paper's INT(12,4) with 12 fractional bits.
	IntBits, FracBits int
	// AutoSplit picks the per-layer INT16 split automatically so that the
	// largest fused scale always fits (the paper reports the per-model
	// "optimal scaling precision"); when false the global split is used
	// and out-of-range scales are rejected.
	AutoSplit bool
	// ResidualShift carries residual branch codes at a 2^shift finer
	// scale, shifting back after the integer add; this keeps the
	// block-boundary requantization noise well below one activation step.
	ResidualShift int
	// OutQuant quantizes the final logits (16-bit symmetric by default);
	// callers calibrate it on held-out data before Convert.
	OutQuant *quant.QBase
}

// DefaultOptions returns the paper's INT16 (12 fractional, 4 integer)
// split with automatic per-layer adjustment enabled.
func DefaultOptions() Options {
	return Options{Scheme: SchemeAuto, IntBits: 4, FracBits: 12, AutoSplit: true, ResidualShift: 6}
}

// IntLayer is one stage of the integer-only deploy pipeline.
type IntLayer interface {
	Forward(x *tensor.IntTensor) *tensor.IntTensor
}

// IntConv2d is a vanilla convolution holding integer weights and a
// MulQuant scaler — the deploy-mode layer of Figure 3(c).
type IntConv2d struct {
	Name   string
	W      *tensor.IntTensor
	P      tensor.ConvParams
	InZero int64
	Scaler *intmath.MulQuant
	// WBits records the logical weight precision for export/size audits.
	WBits int
}

// Forward runs integer conv then fixed-point requantization.
func (l *IntConv2d) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	acc := intmath.Conv2dInt(x, l.W, l.InZero, l.P)
	return l.Scaler.Apply(acc, 1)
}

// OutDType is the narrowest storage for this layer's output codes,
// derived from the scaler's requantization range.
func (l *IntConv2d) OutDType() tensor.DType { return l.Scaler.OutDType() }

// WeightDType is the narrowest storage for the integer weights, derived
// from the quantizer's declared precision (weights are always signed).
func (l *IntConv2d) WeightDType() tensor.DType {
	return tensor.DTypeForRange(-(1 << (l.WBits - 1)), 1<<(l.WBits-1)-1)
}

// IntLinear is the deploy-mode fully connected layer.
type IntLinear struct {
	Name   string
	W      *tensor.IntTensor
	InZero int64
	Scaler *intmath.MulQuant
	WBits  int
}

// Forward runs integer matmul then requantization. Inputs of rank > 2
// (ViT token tensors [N,T,D]) are treated as row-major [rows, D] views;
// the output keeps the leading dimensions with the last replaced by the
// layer's output width.
func (l *IntLinear) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	xs := x
	if l.InZero != 0 {
		xs = x.Clone()
		for i := range xs.Data {
			xs.Data[i] -= l.InZero
		}
	}
	if len(xs.Shape) != 2 {
		k := xs.Shape[len(xs.Shape)-1]
		xs = xs.Reshape(xs.Numel()/k, k)
	}
	acc := intmath.MatMulIntT(xs, l.W)
	out := l.Scaler.Apply(acc, 1)
	if len(x.Shape) != 2 {
		shape := append([]int(nil), x.Shape[:len(x.Shape)-1]...)
		shape = append(shape, l.W.Shape[0])
		out = out.Reshape(shape...)
	}
	return out
}

// OutDType is the narrowest storage for this layer's output codes.
func (l *IntLinear) OutDType() tensor.DType { return l.Scaler.OutDType() }

// WeightDType is the narrowest storage for the integer weights.
func (l *IntLinear) WeightDType() tensor.DType {
	return tensor.DTypeForRange(-(1 << (l.WBits - 1)), 1<<(l.WBits-1)-1)
}

// IntAvgPool averages codes over a window (0 = global) with integer
// round-to-nearest; codes keep their scale.
type IntAvgPool struct{ Kernel, Stride int }

// Forward averages integer codes.
func (l *IntAvgPool) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if l.Kernel == 0 {
		out := tensor.NewInt(n, c, 1, 1)
		cnt := int64(h * w)
		for i := 0; i < n*c; i++ {
			var s int64
			for _, v := range x.Data[i*h*w : (i+1)*h*w] {
				s += v
			}
			if s >= 0 {
				out.Data[i] = (s + cnt/2) / cnt
			} else {
				out.Data[i] = -((-s + cnt/2) / cnt)
			}
		}
		return out
	}
	k, st := l.Kernel, l.Stride
	if st <= 0 {
		st = k
	}
	oh, ow := (h-k)/st+1, (w-k)/st+1
	out := tensor.NewInt(n, c, oh, ow)
	cnt := int64(k * k)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s int64
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += plane[(oy*st+ky)*w+(ox*st+kx)]
					}
				}
				if s >= 0 {
					out.Data[i*oh*ow+oy*ow+ox] = (s + cnt/2) / cnt
				} else {
					out.Data[i*oh*ow+oy*ow+ox] = -((-s + cnt/2) / cnt)
				}
			}
		}
	}
	return out
}

// IntFlatten reshapes [N,...] to [N,rest].
type IntFlatten struct{}

// Forward flattens.
func (IntFlatten) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	return x.Reshape(x.Shape[0], tensor.Numel(x.Shape)/x.Shape[0])
}

// IntResidual adds two branch pipelines elementwise, shifts the sum back
// from the finer branch scale (codes are carried at 2^Shift × finer
// resolution than the block output), and clamps to the declared output
// range. Both branches must emit codes at the same scale; Convert
// guarantees this by rescaling each branch to the block's output
// quantizer.
type IntResidual struct {
	Body     []IntLayer
	Shortcut []IntLayer
	Shift    int
	ClampLo  int64
	ClampHi  int64
}

// Forward computes clamp((body(x) + shortcut(x)) >> Shift).
func (r *IntResidual) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	b := x
	for _, l := range r.Body {
		b = l.Forward(b)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s)
	}
	out := tensor.NewInt(b.Shape...)
	half := int64(0)
	if r.Shift > 0 {
		half = 1 << (r.Shift - 1)
	}
	for i := range b.Data {
		v := b.Data[i] + s.Data[i]
		if r.Shift > 0 {
			if v >= 0 {
				v = (v + half) >> r.Shift
			} else {
				v = -((-v + half) >> r.Shift)
			}
		}
		if v < r.ClampLo {
			v = r.ClampLo
		}
		if v > r.ClampHi {
			v = r.ClampHi
		}
		out.Data[i] = v
	}
	return out
}

// OutDType is the narrowest storage for the block output codes, derived
// from the add's clamp range.
func (r *IntResidual) OutDType() tensor.DType {
	return tensor.DTypeForRange(r.ClampLo, r.ClampHi)
}

// IntRescale is a bare MulQuant stage (used for identity shortcuts and
// scale conversions between blocks).
type IntRescale struct{ Scaler *intmath.MulQuant }

// Forward requantizes the codes.
func (l *IntRescale) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	return l.Scaler.Apply(x, -1)
}

// OutDType is the narrowest storage for the rescaled codes.
func (l *IntRescale) OutDType() tensor.DType { return l.Scaler.OutDType() }

// IntModel is the deployable integer-only network: a float input is
// quantized once at the boundary, every internal stage exchanges integer
// codes, and the output codes are dequantized to float logits.
type IntModel struct {
	InQuant  *quant.QBase
	Layers   []IntLayer
	OutScale float32
	OutZero  int64
}

// Forward runs the integer pipeline end to end.
func (m *IntModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	codes := m.InQuant.Quantize(x)
	for _, l := range m.Layers {
		codes = l.Forward(codes)
	}
	out := tensor.New(codes.Shape...)
	for i, c := range codes.Data {
		out.Data[i] = float32(c-m.OutZero) * m.OutScale
	}
	return out
}

// ForwardCodes runs the pipeline and returns raw output codes.
func (m *IntModel) ForwardCodes(x *tensor.Tensor) *tensor.IntTensor {
	codes := m.InQuant.Quantize(x)
	for _, l := range m.Layers {
		codes = l.Forward(codes)
	}
	return codes
}

// IntTensors returns every integer parameter tensor in the model keyed by
// name, the input to the export formats.
func (m *IntModel) IntTensors() map[string]*tensor.IntTensor {
	out := map[string]*tensor.IntTensor{}
	addLinear := func(name string, v *IntLinear) {
		out[name+".linear.weight"] = v.W
		out[name+".scaler.scale"] = scalerScaleTensor(v.Scaler)
		out[name+".scaler.bias"] = scalerBiasTensor(v.Scaler)
	}
	var walk func(ls []IntLayer, prefix string)
	walk = func(ls []IntLayer, prefix string) {
		for i, l := range ls {
			name := fmt.Sprintf("%s%d", prefix, i)
			switch v := l.(type) {
			case *IntConv2d:
				out[name+".conv.weight"] = v.W
				out[name+".scaler.scale"] = scalerScaleTensor(v.Scaler)
				out[name+".scaler.bias"] = scalerBiasTensor(v.Scaler)
			case *IntLinear:
				addLinear(name, v)
			case *IntPatchEmbed:
				out[name+".conv.weight"] = v.Conv.W
				out[name+".scaler.scale"] = scalerScaleTensor(v.Conv.Scaler)
				out[name+".scaler.bias"] = scalerBiasTensor(v.Conv.Scaler)
				out[name+".embed.poscls"] = v.PosCls
			case *IntLayerNorm:
				out[name+".scaler.scale"] = scalerScaleTensor(v.Scaler)
				out[name+".scaler.bias"] = scalerBiasTensor(v.Scaler)
			case *IntAttention:
				addLinear(name+".q", v.Q)
				addLinear(name+".k", v.K)
				addLinear(name+".v", v.V)
				addLinear(name+".proj", v.Proj)
				out[name+".qk.scaler.scale"] = scalerScaleTensor(v.QKScale)
				out[name+".qk.scaler.bias"] = scalerBiasTensor(v.QKScale)
				out[name+".av.scaler.scale"] = scalerScaleTensor(v.AVScale)
				out[name+".av.scaler.bias"] = scalerBiasTensor(v.AVScale)
			case *IntResidual:
				walk(v.Body, name+".body.")
				walk(v.Shortcut, name+".shortcut.")
			}
		}
	}
	walk(m.Layers, "layers.")
	return out
}

func scalerScaleTensor(m *intmath.MulQuant) *tensor.IntTensor {
	t := tensor.NewInt(len(m.ScaleFx))
	for i, v := range m.ScaleFx {
		t.Data[i] = int64(v)
	}
	return t
}

func scalerBiasTensor(m *intmath.MulQuant) *tensor.IntTensor {
	t := tensor.NewInt(len(m.BiasFx))
	for i, v := range m.BiasFx {
		t.Data[i] = int64(v)
	}
	return t
}

// SizeBytes returns the deployed model size assuming WBits-wide weight
// storage and INT16 scaler entries, the "Model Size (MB)" column of
// Table 2.
func (m *IntModel) SizeBytes() int64 {
	var total int64
	linBytes := func(v *IntLinear) int64 {
		return int64(v.W.Numel()*v.WBits+7)/8 +
			int64(len(v.Scaler.ScaleFx))*2 + int64(len(v.Scaler.BiasFx))*4
	}
	var walk func(ls []IntLayer)
	walk = func(ls []IntLayer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *IntConv2d:
				total += int64(v.W.Numel()*v.WBits+7) / 8
				total += int64(len(v.Scaler.ScaleFx))*2 + int64(len(v.Scaler.BiasFx))*4
			case *IntLinear:
				total += linBytes(v)
			case *IntPatchEmbed:
				total += int64(v.Conv.W.Numel()*v.Conv.WBits+7) / 8
				total += int64(len(v.Conv.Scaler.ScaleFx))*2 + int64(len(v.Conv.Scaler.BiasFx))*4
				total += int64(v.PosCls.Numel()) * 2 // 16-bit embedding codes
			case *IntLayerNorm:
				total += int64(len(v.Scaler.ScaleFx))*2 + int64(len(v.Scaler.BiasFx))*4
			case *IntGELU:
				total += int64(len(v.LUT.Table)) * 2 // 8→8-bit table, 16-bit entries
			case *IntAttention:
				total += linBytes(v.Q) + linBytes(v.K) + linBytes(v.V) + linBytes(v.Proj)
				total += 2*2 + 2*4 // unified QK/AV scaler entries
				total += int64(len(v.Softmax.Exp.Table)) * 2
			case *IntResidual:
				walk(v.Body)
				walk(v.Shortcut)
			}
		}
	}
	walk(m.Layers)
	return total
}
