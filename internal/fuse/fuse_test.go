package fuse

import (
	"math"
	"testing"
	"testing/quick"

	"torch2chip/internal/intmath"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

func TestExtractBNMatchesEvalForward(t *testing.T) {
	// γ*·y + β* must reproduce the eval-mode BatchNorm output exactly.
	g := tensor.NewRNG(1)
	bn := nn.NewBatchNorm2d(3)
	// Realistic running stats.
	for ch := 0; ch < 3; ch++ {
		bn.RunningMean.Data[ch] = g.NormFloat32()
		bn.RunningVar.Data[ch] = g.Float32()*2 + 0.1
		bn.Gamma.Data.Data[ch] = g.Float32() + 0.5
		bn.Beta.Data.Data[ch] = g.NormFloat32()
	}
	bn.SetTraining(false)
	x := g.Randn(1, 2, 3, 4, 4)
	want := bn.Forward(x)
	p := ExtractBN(bn)
	got := tensor.New(x.Shape...)
	sp := 16
	for ni := 0; ni < 2; ni++ {
		for ch := 0; ch < 3; ch++ {
			for i := 0; i < sp; i++ {
				idx := (ni*3+ch)*sp + i
				got.Data[idx] = p.GammaStar[ch]*x.Data[idx] + p.BetaStar[ch]
			}
		}
	}
	if !tensor.AllClose(got, want, 1e-5, 1e-5) {
		t.Fatalf("BN extraction mismatch %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestPreFuseExactAtFP32(t *testing.T) {
	// Pre-fusing BN into weights must be exact in float: conv(x, γ*W) + β̄
	// == BN(conv(x, W) + b).
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		conv := nn.NewConv2d(g, 2, 3, 3, 1, 1, 1, true)
		for i := range conv.B.Data.Data {
			conv.B.Data.Data[i] = g.NormFloat32()
		}
		bn := nn.NewBatchNorm2d(3)
		for ch := 0; ch < 3; ch++ {
			bn.RunningMean.Data[ch] = g.NormFloat32()
			bn.RunningVar.Data[ch] = g.Float32() + 0.2
			bn.Gamma.Data.Data[ch] = g.Float32() + 0.5
			bn.Beta.Data.Data[ch] = g.NormFloat32()
		}
		bn.SetTraining(false)
		x := g.Randn(1, 1, 2, 5, 5)
		want := bn.Forward(conv.Forward(x))
		p := ExtractBN(bn)
		wf, bf := PreFuse(conv.W.Data, conv.B.Data, p)
		got := tensor.Conv2d(x, wf, bf, conv.P)
		return tensor.AllClose(got, want, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelWiseFusionExactAtFP32(t *testing.T) {
	// The channel-wise scheme (γ*·conv + β̄) must also be exact.
	g := tensor.NewRNG(2)
	conv := nn.NewConv2d(g, 2, 4, 3, 1, 1, 1, false)
	bn := nn.NewBatchNorm2d(4)
	for ch := 0; ch < 4; ch++ {
		bn.RunningMean.Data[ch] = g.NormFloat32()
		bn.RunningVar.Data[ch] = g.Float32() + 0.2
	}
	bn.SetTraining(false)
	x := g.Randn(1, 1, 2, 4, 4)
	want := bn.Forward(conv.Forward(x))
	got := FusedFloatForward(x, conv.W.Data, nil, ExtractBN(bn), conv.P)
	if !tensor.AllClose(got, want, 1e-4, 1e-4) {
		t.Fatalf("channel-wise fusion mismatch %v", tensor.MaxAbsDiff(got, want))
	}
}

// buildCalibratedCNN creates a small conv-bn-relu → conv-bn-relu → pool →
// linear model, prepares it with the given bits, and calibrates it.
func buildCalibratedCNN(t *testing.T, g *tensor.RNG, wbits, abits int, weight, act string) (nn.Layer, *quant.QBase, *tensor.Tensor) {
	t.Helper()
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 8, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		nn.NewConv2d(g, 8, 8, 3, 2, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 8, 10, true),
	)
	// Make BN running stats realistic by running training batches.
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	nn.SetTraining(model, false)
	quant.Prepare(model, quant.Config{WBits: wbits, ABits: abits, Weight: weight, Act: act, PerChannel: true})
	// Calibrate observers.
	x := g.Uniform(0, 1, 4, 3, 8, 8)
	outQ := quant.NewMinMax(12, true, false)
	for i := 0; i < 4; i++ {
		logits := model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
		outQ.Observe(logits)
	}
	quant.SetCalibrating(model, false)
	return model, outQ.Base(), x
}

func TestConvertDeployMatchesInferMode(t *testing.T) {
	// The headline Fig-3 invariant: the fully fused integer-only deploy
	// model must match the dual-path infer mode within fixed-point
	// tolerance, for both fusion schemes.
	for _, tc := range []struct {
		name   string
		scheme Scheme
		wbits  int
	}{
		{"prefuse-8bit", SchemePreFuse, 8},
		{"channelwise-8bit", SchemeChannelWise, 8},
		{"channelwise-4bit", SchemeChannelWise, 4},
		{"auto-4bit", SchemeAuto, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(42)
			model, outQ, x := buildCalibratedCNN(t, g, tc.wbits, 8, "minmax", "minmax")
			opts := DefaultOptions()
			opts.Scheme = tc.scheme
			opts.OutQuant = outQ
			im, err := Convert(model, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: float model with fake-quant (train path, frozen).
			ref := model.Forward(x)
			got := im.Forward(x)
			// Compare top-1 agreement and numeric distance.
			n, c := ref.Shape[0], ref.Shape[1]
			agree := 0
			for i := 0; i < n; i++ {
				ri := tensor.FromSlice(ref.Data[i*c:(i+1)*c], c).Argmax()
				gi := tensor.FromSlice(got.Data[i*c:(i+1)*c], c).Argmax()
				if ri == gi {
					agree++
				}
			}
			if agree < n {
				t.Errorf("top-1 agreement %d/%d", agree, n)
			}
			if d := tensor.MaxAbsDiff(ref, got); d > 0.12 {
				t.Errorf("deploy vs train-path distance %v too large", d)
			}
		})
	}
}

func TestConvertResidualNetwork(t *testing.T) {
	g := tensor.NewRNG(7)
	block := nn.NewResidual(
		nn.NewSequential(
			nn.NewConv2d(g, 4, 4, 3, 1, 1, 1, false),
			nn.NewBatchNorm2d(4),
			&nn.ReLU{},
			nn.NewConv2d(g, 4, 4, 3, 1, 1, 1, false),
			nn.NewBatchNorm2d(4),
		),
		nn.Identity{},
	)
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 4, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(4),
		&nn.ReLU{},
		block,
		&nn.ReLU{},
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 4, 5, true),
	)
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	nn.SetTraining(model, false)
	quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true})
	outQ := quant.NewMinMax(12, true, false)
	for i := 0; i < 4; i++ {
		outQ.Observe(model.Forward(g.Uniform(0, 1, 4, 3, 8, 8)))
	}
	quant.SetCalibrating(model, false)
	opts := DefaultOptions()
	opts.OutQuant = outQ.Base()
	im, err := Convert(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Uniform(0, 1, 4, 3, 8, 8)
	ref := model.Forward(x)
	got := im.Forward(x)
	if d := tensor.MaxAbsDiff(ref, got); d > 0.2 {
		t.Fatalf("residual deploy distance %v", d)
	}
}

func TestConvertRejectsUnpreparedModel(t *testing.T) {
	g := tensor.NewRNG(3)
	model := nn.NewSequential(nn.NewConv2d(g, 1, 1, 3, 1, 1, 1, false))
	opts := DefaultOptions()
	opts.OutQuant = quant.NewQBase(16, true, false)
	if _, err := Convert(model, opts); err == nil {
		t.Fatal("expected error for unquantized model")
	}
}

func TestConvertRejectsMissingOutQuant(t *testing.T) {
	g := tensor.NewRNG(4)
	model := nn.NewSequential(nn.NewConv2d(g, 1, 1, 3, 1, 1, 1, false))
	quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax"})
	if _, err := Convert(model, DefaultOptions()); err == nil {
		t.Fatal("expected error for missing OutQuant")
	}
}

func TestConvertRejectsBadSplit(t *testing.T) {
	opts := Options{IntBits: 9, FracBits: 4, OutQuant: quant.NewQBase(16, true, false)}
	if _, err := Convert(nn.NewSequential(), opts); err == nil {
		t.Fatal("expected error for non-INT16 split")
	}
}

func TestIntModelTensorsAndSize(t *testing.T) {
	g := tensor.NewRNG(5)
	model, outQ, _ := buildCalibratedCNN(t, g, 4, 8, "minmax", "minmax")
	opts := DefaultOptions()
	opts.OutQuant = outQ
	im, err := Convert(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := im.IntTensors()
	// 2 convs + 1 linear, each with weight + scale + bias = 9 tensors.
	if len(ts) != 9 {
		t.Fatalf("IntTensors len = %d: %v", len(ts), keys(ts))
	}
	size := im.SizeBytes()
	// 4-bit weights: conv1 8·3·9=216, conv2 8·8·9=576, fc 10·8=80 weights
	// → (216+576+80)/2 = 436 bytes + scalers.
	if size < 400 || size > 1200 {
		t.Fatalf("SizeBytes = %d out of plausible range", size)
	}
}

func keys(m map[string]*tensor.IntTensor) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestIntAvgPoolMatchesFloat(t *testing.T) {
	x := tensor.IntFromSlice([]int64{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	p := &IntAvgPool{Kernel: 0}
	y := p.Forward(x)
	if y.Data[0] != 3 || y.Data[1] != 10 {
		t.Fatalf("int avgpool = %v", y.Data)
	}
}

func TestIntAvgPoolNegativeRounding(t *testing.T) {
	x := tensor.IntFromSlice([]int64{-1, -2, -3, -4}, 1, 1, 2, 2)
	p := &IntAvgPool{Kernel: 0}
	y := p.Forward(x)
	if y.Data[0] != -3 { // -10/4 = -2.5 → round half away = -3
		t.Fatalf("negative rounding = %v", y.Data[0])
	}
}

func TestQuantizedBNFusionStability(t *testing.T) {
	// The paper's motivation for channel-wise fusion (Park & Yoo 2020):
	// at 4-bit, pre-fusing BN into the weights and re-quantizing with a
	// unified scale crushes channels with small γ*, while the channel-wise
	// MulQuant scheme preserves per-channel resolution. Compare how well
	// each scheme reconstructs the fused float weights γ*·W per channel.
	g := tensor.NewRNG(11)
	const o, chSize = 8, 36
	w := g.Randn(0.5, o, 4, 3, 3)
	gamma := make([]float32, o)
	for ch := 0; ch < o; ch++ {
		gamma[ch] = float32(math.Pow(10, float64(ch)/3.5-1)) // 0.1 … ~10
	}
	// Float fused reference γ*·W.
	ref := w.Clone()
	for ch := 0; ch < o; ch++ {
		for i := 0; i < chSize; i++ {
			ref.Data[ch*chSize+i] *= gamma[ch]
		}
	}
	const bits = 4
	// Pre-fuse: quantize γ*·W with a unified scale.
	pre := quant.NewMinMax(bits, true, false)
	pre.Observe(ref)
	preRec := pre.Dequantize(pre.Quantize(ref))
	// Channel-wise: quantize W per channel, reconstruct with γ*·S_w·code.
	cw := quant.NewMinMax(bits, true, true)
	cw.Observe(w)
	codes := cw.Quantize(w)
	cwRec := tensor.New(w.Shape...)
	for ch := 0; ch < o; ch++ {
		s := cw.Scale[ch] * gamma[ch]
		for i := 0; i < chSize; i++ {
			cwRec.Data[ch*chSize+i] = float32(codes.Data[ch*chSize+i]) * s
		}
	}
	// Per-channel relative RMSE: channel-wise must win on the small-γ*
	// channels and overall.
	relErr := func(rec *tensor.Tensor, ch int) float64 {
		var num, den float64
		for i := 0; i < chSize; i++ {
			d := float64(rec.Data[ch*chSize+i] - ref.Data[ch*chSize+i])
			num += d * d
			den += float64(ref.Data[ch*chSize+i]) * float64(ref.Data[ch*chSize+i])
		}
		return math.Sqrt(num / den)
	}
	var preTot, cwTot float64
	for ch := 0; ch < o; ch++ {
		preTot += relErr(preRec, ch)
		cwTot += relErr(cwRec, ch)
	}
	if cwTot >= preTot {
		t.Fatalf("channel-wise total rel-RMSE %v should beat pre-fuse %v", cwTot, preTot)
	}
	// The smallest-γ* channel must be catastrophically bad under pre-fuse.
	if relErr(preRec, 0) < 2*relErr(cwRec, 0) {
		t.Fatalf("pre-fuse small-γ channel err %v vs channel-wise %v: expected ≥2× gap",
			relErr(preRec, 0), relErr(cwRec, 0))
	}
}

func TestConvertResidualConvShortcut(t *testing.T) {
	// Downsampling block: stride-2 body with a 1x1-conv+BN shortcut, the
	// ResNet stage-transition pattern.
	g := tensor.NewRNG(21)
	block := nn.NewResidual(
		nn.NewSequential(
			nn.NewConv2d(g, 4, 8, 3, 2, 1, 1, false),
			nn.NewBatchNorm2d(8),
			&nn.ReLU{},
			nn.NewConv2d(g, 8, 8, 3, 1, 1, 1, false),
			nn.NewBatchNorm2d(8),
		),
		nn.NewSequential(
			nn.NewConv2d(g, 4, 8, 1, 2, 0, 1, false),
			nn.NewBatchNorm2d(8),
		),
	)
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 4, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(4),
		&nn.ReLU{},
		block,
		&nn.ReLU{},
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 8, 5, true),
	)
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	nn.SetTraining(model, false)
	quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true})
	outQ := quant.NewMinMax(12, true, false)
	for i := 0; i < 4; i++ {
		outQ.Observe(model.Forward(g.Uniform(0, 1, 4, 3, 8, 8)))
	}
	quant.SetCalibrating(model, false)
	opts := DefaultOptions()
	opts.OutQuant = outQ.Base()
	im, err := Convert(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Uniform(0, 1, 4, 3, 8, 8)
	ref := model.Forward(x)
	got := im.Forward(x)
	if d := tensor.MaxAbsDiff(ref, got); d > 0.25 {
		t.Fatalf("conv-shortcut residual deploy distance %v", d)
	}
	// The residual stage must contain a lowered conv in the shortcut.
	var res *IntResidual
	for _, l := range im.Layers {
		if r, ok := l.(*IntResidual); ok {
			res = r
		}
	}
	if res == nil {
		t.Fatal("no IntResidual in deploy model")
	}
	if len(res.Shortcut) == 0 {
		t.Fatal("shortcut branch empty")
	}
	if _, ok := res.Shortcut[0].(*IntConv2d); !ok {
		t.Fatalf("shortcut lowered to %T, want IntConv2d", res.Shortcut[0])
	}
}

func TestSparsitySurvivesConversion(t *testing.T) {
	// Weights pruned to real zeros must stay zeros in the exported
	// integer tensors (Table-3 invariant).
	g := tensor.NewRNG(22)
	model, outQ, _ := buildCalibratedCNN(t, g, 8, 8, "minmax", "minmax")
	// Zero out half of the first conv's weights post-hoc and refreeze.
	convs, _, _ := quant.QuantizedLayers(model)
	w := convs[0].Conv.W.Data
	for i := 0; i < len(w.Data); i += 2 {
		w.Data[i] = 0
	}
	convs[0].Freeze()
	opts := DefaultOptions()
	opts.Scheme = SchemeChannelWise
	opts.OutQuant = outQ
	im, err := Convert(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, tt := range im.IntTensors() {
		if name != "layers.0.conv.weight" {
			continue
		}
		for i := 0; i < len(tt.Data); i += 2 {
			if tt.Data[i] != 0 {
				t.Fatalf("pruned weight %d is %d in integer tensor", i, tt.Data[i])
			}
		}
		return
	}
	t.Fatal("first conv weight tensor not found")
}

func TestAutoSplitPicksFittingRange(t *testing.T) {
	c := &converter{opts: Options{AutoSplit: true, IntBits: 4, FracBits: 12}}
	tgt := target{scale: 1, zero: 0, bits: 8, signed: true}
	// A scale of 100 needs 8 integer bits; INT(12,4) would saturate.
	mq, err := c.mkMulQuant([]float32{100}, []float32{0}, "test", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if mq.IntBits < 8 {
		t.Fatalf("auto split chose %d integer bits for scale 100", mq.IntBits)
	}
	// Representation error must stay relative.
	got := float64(mq.ScaleFx[0]) / float64(int64(1)<<mq.FracBits)
	if got < 99 || got > 101 {
		t.Fatalf("scale 100 encoded as %v", got)
	}
	// A tiny scale keeps maximal fractional bits.
	mq2, err := c.mkMulQuant([]float32{0.001}, []float32{0}, "test", tgt)
	if err != nil {
		t.Fatal(err)
	}
	if mq2.FracBits != 15 {
		t.Fatalf("tiny scale got %d frac bits, want 15", mq2.FracBits)
	}
}

func TestExplicitSplitStillRejectsOverflow(t *testing.T) {
	c := &converter{opts: Options{AutoSplit: false, IntBits: 4, FracBits: 12}}
	tgt := target{scale: 1, zero: 0, bits: 8, signed: true}
	if _, err := c.mkMulQuant([]float32{100}, []float32{0}, "test", tgt); err == nil {
		t.Fatal("scale 100 must overflow INT(12,4) when AutoSplit is off")
	}
}

func TestResidualShiftReducesBoundaryError(t *testing.T) {
	// With the fine-scale residual add (shift>0) the deploy model must be
	// at least as close to the train path as with shift 0.
	build := func(shift int) float32 {
		g := tensor.NewRNG(42)
		block := nn.NewResidual(
			nn.NewSequential(
				nn.NewConv2d(g, 4, 4, 3, 1, 1, 1, false),
				nn.NewBatchNorm2d(4),
				&nn.ReLU{},
				nn.NewConv2d(g, 4, 4, 3, 1, 1, 1, false),
				nn.NewBatchNorm2d(4),
			),
			nn.Identity{},
		)
		model := nn.NewSequential(
			nn.NewConv2d(g, 3, 4, 3, 1, 1, 1, false),
			nn.NewBatchNorm2d(4),
			&nn.ReLU{},
			block,
			&nn.ReLU{},
			&nn.AvgPool{Kernel: 0},
			&nn.Flatten{},
			nn.NewLinear(g, 4, 5, true),
		)
		for i := 0; i < 4; i++ {
			model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
		}
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true})
		outQ := quant.NewMinMax(12, true, false)
		for i := 0; i < 4; i++ {
			outQ.Observe(model.Forward(g.Uniform(0, 1, 4, 3, 8, 8)))
		}
		quant.SetCalibrating(model, false)
		opts := DefaultOptions()
		opts.ResidualShift = shift
		opts.OutQuant = outQ.Base()
		im, err := Convert(model, opts)
		if err != nil {
			t.Fatal(err)
		}
		x := g.Uniform(0, 1, 8, 3, 8, 8)
		return tensor.MaxAbsDiff(model.Forward(x), im.Forward(x))
	}
	coarse := build(0)
	fine := build(6)
	if fine > coarse {
		t.Fatalf("shift-6 error %v worse than shift-0 error %v", fine, coarse)
	}
}

func TestIntRescaleIdentity(t *testing.T) {
	mq, err := intmath.NewMulQuant([]float32{1}, []float32{0}, 4, 12, 16, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &IntRescale{Scaler: mq}
	x := tensor.IntFromSlice([]int64{-5, 0, 7, 123}, 4)
	y := r.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity rescale changed %d → %d", x.Data[i], y.Data[i])
		}
	}
}
