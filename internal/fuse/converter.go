package fuse

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// state tracks the quantization parameters of the codes flowing through
// the pipeline at a given point of the conversion walk.
type state struct {
	scale float32
	zero  int64
}

// target describes the quantizer the current op must requantize into: the
// activation quantizer of the next quantized layer (S_x^{l+1} in Eq. 14–15)
// or the output quantizer at the very end.
type target struct {
	scale  float32
	zero   int64
	bits   int
	signed bool
}

func targetOf(q *quant.QBase) target {
	return target{scale: q.Scale[0], zero: q.Zero[0], bits: q.NBits, signed: q.Signed}
}

// Convert lowers a prepared, calibrated, frozen model into the
// integer-only deploy pipeline. The model must be a Sequential whose
// quantized layers have calibrated observers (run calibration batches in
// ModeTrain first, then freeze with SetCalibrating(false)).
func Convert(model nn.Layer, opts Options) (*IntModel, error) {
	if opts.IntBits+opts.FracBits != 16 {
		return nil, fmt.Errorf("fuse: INT(%d,%d) is not an INT16 split", opts.FracBits, opts.IntBits)
	}
	if opts.OutQuant == nil {
		return nil, fmt.Errorf("fuse: Options.OutQuant must be calibrated on logits before Convert")
	}
	ops := flatten(model)
	inQ := firstActQuant(ops)
	if inQ == nil {
		return nil, fmt.Errorf("fuse: model has no quantized layers")
	}
	c := &converter{opts: opts}
	entry := state{scale: inQ.Scale[0], zero: inQ.Zero[0]}
	layers, _, err := c.convertSeq(ops, entry, targetOf(opts.OutQuant))
	if err != nil {
		return nil, err
	}
	return &IntModel{
		InQuant:  inQ,
		Layers:   layers,
		OutScale: opts.OutQuant.Scale[0],
		OutZero:  opts.OutQuant.Zero[0],
	}, nil
}

type converter struct{ opts Options }

// mkMulQuant builds a MulQuant for the given fused scales, choosing the
// INT16 split automatically when AutoSplit is set: the smallest integer
// field that holds the largest |scale| keeps the most fractional bits.
func (c *converter) mkMulQuant(scale, bias []float32, kind string, tgt target) (*intmath.MulQuant, error) {
	intBits, fracBits := c.opts.IntBits, c.opts.FracBits
	if c.opts.AutoSplit {
		var mx float32
		for _, s := range scale {
			if s < 0 {
				s = -s
			}
			if s > mx {
				mx = s
			}
		}
		intBits = 1
		for mx >= float32(int64(1)<<(intBits-1)) && intBits < 15 {
			intBits++
		}
		fracBits = 16 - intBits
	} else if err := c.checkRange(scale, kind); err != nil {
		return nil, err
	}
	return intmath.NewMulQuant(scale, bias, intBits, fracBits, tgt.bits, tgt.signed, tgt.zero)
}

// flatten inlines nested Sequentials into a flat op list.
func flatten(l nn.Layer) []nn.Layer {
	if s, ok := l.(*nn.Sequential); ok {
		var out []nn.Layer
		for _, sub := range s.Layers {
			out = append(out, flatten(sub)...)
		}
		return out
	}
	return []nn.Layer{l}
}

// firstActQuant returns the activation quantizer that guards the model
// input.
func firstActQuant(ops []nn.Layer) *quant.QBase {
	for _, op := range ops {
		if q := entryActQuant(op); q != nil {
			return q
		}
	}
	return nil
}

// entryActQuant returns the activation quantizer that codes entering op
// must satisfy.
func entryActQuant(op nn.Layer) *quant.QBase {
	switch v := op.(type) {
	case *quant.QConv2d:
		return v.AQuant.Base()
	case *quant.QLinear:
		return v.AQuant.Base()
	case *nn.Residual:
		return firstActQuant(flatten(v.Body))
	case *models.PatchEmbed:
		if qc, ok := v.Conv.(*quant.QConv2d); ok {
			return qc.AQuant.Base()
		}
	}
	return nil
}

// nextTarget finds the requantization target after position i. When an
// average-pooling stage sits between this op and the next quantized layer,
// the intermediate codes are widened to 16 bits at the same scale: pooling
// reduces magnitude, so the downstream observer (calibrated post-pool)
// would otherwise clip pre-pool peaks.
func (c *converter) nextTarget(ops []nn.Layer, i int, final target) target {
	widen := false
	for j := i + 1; j < len(ops); j++ {
		if _, ok := ops[j].(*nn.AvgPool); ok {
			widen = true
		}
		if q := entryActQuant(ops[j]); q != nil {
			t := targetOf(q)
			if widen {
				t.bits = 16
			}
			return t
		}
	}
	return final
}

// convertSeq lowers a flat op sequence. entry describes incoming codes;
// final is the requantization target for the last quantized op.
func (c *converter) convertSeq(ops []nn.Layer, entry state, final target) ([]IntLayer, state, error) {
	var out []IntLayer
	cur := entry
	for i := 0; i < len(ops); i++ {
		switch v := ops[i].(type) {
		case *quant.QConv2d:
			// Peek for a following BatchNorm (consumed by fusion).
			bnp := IdentityBN(v.Conv.OutC)
			if i+1 < len(ops) {
				if bn, ok := ops[i+1].(*nn.BatchNorm2d); ok {
					bnp = ExtractBN(bn)
					i++
				}
			}
			tgt := c.nextTarget(ops, i, final)
			il, err := c.lowerConv(v, bnp, cur, tgt)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, il)
			cur = state{scale: tgt.scale, zero: tgt.zero}
		case *quant.QLinear:
			tgt := c.nextTarget(ops, i, final)
			il, err := c.lowerLinear(v, cur, tgt)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, il)
			cur = state{scale: tgt.scale, zero: tgt.zero}
		case *nn.Residual:
			tgt := c.nextTarget(ops, i, final)
			il, err := c.lowerResidual(v, cur, tgt)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, il)
			cur = state{scale: tgt.scale, zero: tgt.zero}
		case *models.PatchEmbed:
			il, st, err := c.lowerPatchEmbed(v, cur)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, il)
			cur = st
		case *models.TransformerBlock:
			ls, st, err := c.lowerTransformerBlock(v, cur)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, ls...)
			cur = st
		case *models.ClsHead:
			ls, err := c.lowerClsHead(v, cur, final)
			if err != nil {
				return nil, cur, err
			}
			out = append(out, ls...)
			cur = state{scale: final.scale, zero: final.zero}
		case *nn.ReLU, *nn.ReLU6:
			// Absorbed: the preceding MulQuant clamps to the unsigned
			// range of the next activation quantizer.
		case *nn.BatchNorm2d:
			return nil, cur, fmt.Errorf("fuse: BatchNorm without preceding quantized conv at op %d", i)
		case *nn.AvgPool:
			out = append(out, &IntAvgPool{Kernel: v.Kernel, Stride: v.Stride})
		case *nn.Flatten:
			out = append(out, IntFlatten{})
		case *nn.Dropout, nn.Identity:
			// Identity at inference.
		default:
			return nil, cur, fmt.Errorf("fuse: unsupported layer %T in deploy conversion", v)
		}
	}
	return out, cur, nil
}

// lowerConv builds the IntConv2d implementing Eq. 14/15 for the given
// incoming codes and requantization target.
func (c *converter) lowerConv(v *quant.QConv2d, bnp BNParams, cur state, tgt target) (*IntConv2d, error) {
	wb := v.WQuant.Base()
	scheme := c.opts.Scheme
	if scheme == SchemeAuto {
		if wb.NBits >= 8 {
			scheme = SchemePreFuse
		} else {
			scheme = SchemeChannelWise
		}
	}
	o := v.Conv.OutC
	var wq *tensor.IntTensor
	scale := make([]float32, o)
	bias := make([]float32, o)
	switch scheme {
	case SchemePreFuse:
		// Eq. 8–11: fold γ*/β* into weights, re-quantize the fused weight
		// with a unified scale, keep a per-channel bias.
		var biasT *tensor.Tensor
		if v.Conv.B != nil {
			biasT = v.Conv.B.Data
		}
		wf, bf := PreFuse(v.Conv.W.Data, biasT, bnp)
		fq := quant.NewMinMax(wb.NBits, true, false)
		fq.Observe(wf)
		wq = fq.Quantize(wf)
		sw := fq.Base().Scale[0]
		u := sw * cur.scale / tgt.scale
		for oc := 0; oc < o; oc++ {
			scale[oc] = u
			bias[oc] = bf.Data[oc] / tgt.scale
		}
	case SchemeChannelWise:
		// Eq. 12–15: keep the user quantizer's integer weights and carry
		// γ* inside the per-channel MulQuant scale.
		wq = v.IntWeights()
		for oc := 0; oc < o; oc++ {
			sw := wb.Scale[0]
			if wb.PerChannel && len(wb.Scale) > 1 {
				sw = wb.Scale[oc]
			}
			scale[oc] = bnp.GammaStar[oc] * sw * cur.scale / tgt.scale
			b := bnp.BetaStar[oc]
			if v.Conv.B != nil {
				b += bnp.GammaStar[oc] * v.Conv.B.Data.Data[oc]
			}
			bias[oc] = b / tgt.scale
		}
	default:
		return nil, fmt.Errorf("fuse: unknown scheme %d", scheme)
	}
	mq, err := c.mkMulQuant(scale, bias, "conv", tgt)
	if err != nil {
		return nil, err
	}
	return &IntConv2d{W: wq, P: v.Conv.P, InZero: cur.zero, Scaler: mq, WBits: wb.NBits}, nil
}

// lowerLinear builds the IntLinear stage.
func (c *converter) lowerLinear(v *quant.QLinear, cur state, tgt target) (*IntLinear, error) {
	wb := v.WQuant.Base()
	wq := v.IntWeights()
	o := v.Lin.Out
	scale := make([]float32, o)
	bias := make([]float32, o)
	for j := 0; j < o; j++ {
		sw := wb.Scale[0]
		if wb.PerChannel && len(wb.Scale) > 1 {
			sw = wb.Scale[j]
		}
		scale[j] = sw * cur.scale / tgt.scale
		if v.Lin.B != nil {
			bias[j] = v.Lin.B.Data.Data[j] / tgt.scale
		}
	}
	mq, err := c.mkMulQuant(scale, bias, "linear", tgt)
	if err != nil {
		return nil, err
	}
	return &IntLinear{W: wq, InZero: cur.zero, Scaler: mq, WBits: wb.NBits}, nil
}

// lowerResidual converts both branches so that each emits 16-bit signed
// codes at the block target scale; the add then clamps into the target
// activation range (the post-add ReLU becomes the unsigned clamp).
func (c *converter) lowerResidual(r *nn.Residual, cur state, tgt target) (*IntResidual, error) {
	shift := c.opts.ResidualShift
	fine := tgt.scale / float32(int64(1)<<shift)
	branchTarget := target{scale: fine, zero: 0, bits: 16, signed: true}
	bodyOps := flatten(r.Body)
	body, _, err := c.convertSeq(bodyOps, cur, branchTarget)
	if err != nil {
		return nil, err
	}
	var shortcut []IntLayer
	switch sc := r.Shortcut.(type) {
	case nn.Identity:
		// Rescale entry codes (scale cur.scale, zero cur.zero) to the
		// fine branch scale with a bare MulQuant: code' = (code−z)·S/S_f.
		mq, err := c.mkMulQuant(
			[]float32{cur.scale / fine},
			[]float32{-float32(cur.zero) * cur.scale / fine},
			"shortcut", branchTarget)
		if err != nil {
			return nil, err
		}
		shortcut = []IntLayer{&IntRescale{Scaler: mq}}
	default:
		scOps := flatten(sc)
		shortcut, _, err = c.convertSeq(scOps, cur, branchTarget)
		if err != nil {
			return nil, err
		}
	}
	lo, hi := int64(0), int64(1)<<tgt.bits-1
	if tgt.signed {
		lo, hi = -(1 << (tgt.bits - 1)), 1<<(tgt.bits-1)-1
	}
	return &IntResidual{Body: body, Shortcut: shortcut, Shift: shift, ClampLo: lo, ClampHi: hi}, nil
}

// checkRange rejects fused scales that exceed the fixed-point integer
// range: the INT(frac,int) split must represent every per-channel scale,
// otherwise the MulQuant codes saturate and the deploy model silently
// diverges. Users hitting this should widen IntBits or lower the logit
// quantizer precision (which raises S_out and shrinks the ratio).
func (c *converter) checkRange(scale []float32, kind string) error {
	limit := float32(int64(1)<<(c.opts.IntBits-1)) - 1/float32(int64(1)<<c.opts.FracBits)
	for i, s := range scale {
		if s > limit || s < -limit {
			return fmt.Errorf("fuse: %s scale[%d]=%v exceeds INT(%d,%d) range ±%v; widen IntBits or lower the output precision",
				kind, i, s, c.opts.FracBits, c.opts.IntBits, limit)
		}
	}
	return nil
}
