// Package fuse implements the paper's automatic post-training fusion and
// model conversion: BatchNorm folding (the 8-bit "Pre-Fusing" scheme of
// Eq. 8–11 and the sub-8-bit channel-wise scheme of Eq. 12–15), the
// construction of the integer-only deploy model whose scaling runs through
// MulQuant modules, and the "custom → vanilla" conversion that leaves only
// integer parameters behind.
package fuse

import (
	"math"

	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// BNParams is the channel-wise scale γ* and shift β* extracted from a
// BatchNorm layer (Eq. 12–13): γ* = γ/√(σ²+ε), β* = β − γ*·μ.
type BNParams struct {
	GammaStar []float32
	BetaStar  []float32
}

// ExtractBN computes γ*/β* from running statistics.
func ExtractBN(bn *nn.BatchNorm2d) BNParams {
	c := bn.C
	p := BNParams{GammaStar: make([]float32, c), BetaStar: make([]float32, c)}
	for ch := 0; ch < c; ch++ {
		iv := float32(1 / math.Sqrt(float64(bn.RunningVar.Data[ch])+float64(bn.Eps)))
		p.GammaStar[ch] = bn.Gamma.Data.Data[ch] * iv
		p.BetaStar[ch] = bn.Beta.Data.Data[ch] - p.GammaStar[ch]*bn.RunningMean.Data[ch]
	}
	return p
}

// Identity returns BNParams that leave the activation unchanged, used when
// a convolution has no following BatchNorm.
func IdentityBN(c int) BNParams {
	p := BNParams{GammaStar: make([]float32, c), BetaStar: make([]float32, c)}
	for i := range p.GammaStar {
		p.GammaStar[i] = 1
	}
	return p
}

// PreFuse folds BN into the convolution weights (the 8-bit scheme,
// Eq. 8–11): W̄[oc] = γ*[oc]·W[oc], b̄[oc] = β*[oc] + γ*[oc]·b[oc].
// It returns the fused weight and bias without modifying the inputs.
func PreFuse(w *tensor.Tensor, bias *tensor.Tensor, p BNParams) (*tensor.Tensor, *tensor.Tensor) {
	o := w.Shape[0]
	chSize := len(w.Data) / o
	wf := w.Clone()
	bf := tensor.New(o)
	for oc := 0; oc < o; oc++ {
		g := p.GammaStar[oc]
		seg := wf.Data[oc*chSize : (oc+1)*chSize]
		for i := range seg {
			seg[i] *= g
		}
		bf.Data[oc] = p.BetaStar[oc]
		if bias != nil {
			bf.Data[oc] += g * bias.Data[oc]
		}
	}
	return wf, bf
}

// FusedFloatForward computes conv→BN in one fused float op, used by tests
// to prove both fusion schemes are exact at FP32.
func FusedFloatForward(x, w *tensor.Tensor, bias *tensor.Tensor, p BNParams, cp tensor.ConvParams) *tensor.Tensor {
	y := tensor.Conv2d(x, w, nil, cp)
	n, o := y.Shape[0], y.Shape[1]
	sp := y.Shape[2] * y.Shape[3]
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < o; oc++ {
			g := p.GammaStar[oc]
			b := p.BetaStar[oc]
			if bias != nil {
				b += g * bias.Data[oc]
			}
			seg := y.Data[(ni*o+oc)*sp : (ni*o+oc+1)*sp]
			for i := range seg {
				seg[i] = g*seg[i] + b
			}
		}
	}
	return y
}
