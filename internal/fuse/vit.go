package fuse

// Integer transformer deploy layers: the all-integer lowering of the
// ViT building blocks (Figure 4 of the paper). Every stage exchanges
// integer codes — LayerNorm normalizes with an integer Newton square
// root, softmax and GELU go through fixed lookup tables, and the two
// attention matmuls accumulate in int64 and requantize through MulQuant
// — so the pipeline is exactly reproducible by the compiled engine.

import (
	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// LNFracBits is the fixed-point precision of the normalized LayerNorm
// value: x̂ is carried as round(x̂ · 2^LNFracBits) before the per-channel
// γ/β affine collapses into the layer's MulQuant.
const LNFracBits = 12

// IntLayerNorm is the integer-only LayerNorm. Normalization is
// shift/scale-invariant, so it runs directly on incoming codes with no
// zero-point or scale bookkeeping: per row, d_i = D·q_i − Σq (exact),
// x̂_i = d_i·√D / √(Σd²), computed as d_i·K / isqrt(Σd²+1) with
// K = round(√D·2^FB) and a pure-integer Newton square root. The
// per-channel γ/β affine plus the requantization into the consumer's
// activation quantizer is one MulQuant over the fixed-point x̂ codes.
type IntLayerNorm struct {
	D  int
	K  int64
	FB uint
	// EpsAdd folds the float LayerNorm epsilon into the code domain:
	// float divides by √(σ² + ε) over values x = code·S, so the integer
	// path adds E = round(D³·ε/S²) to Σd² before the square root —
	// without it, near-constant rows normalize visibly differently from
	// the float reference.
	EpsAdd int64
	Scaler *intmath.MulQuant
}

// Forward normalizes each row of the flattened [rows, D] view.
func (l *IntLayerNorm) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	d := l.D
	rows := x.Numel() / d
	acc := tensor.NewInt(x.Shape...)
	for r := 0; r < rows; r++ {
		seg := x.Data[r*d : (r+1)*d]
		var sum int64
		for _, q := range seg {
			sum += q
		}
		dd := acc.Data[r*d : (r+1)*d]
		s2 := l.EpsAdd + 1 // +1 guards a constant row at EpsAdd 0
		for i, q := range seg {
			di := int64(d)*q - sum
			dd[i] = di
			s2 += di * di
		}
		root := intmath.ISqrt(s2)
		for i, di := range dd {
			dd[i] = intmath.RoundDiv(di*l.K, root)
		}
	}
	return l.Scaler.Apply(acc, len(acc.Shape)-1)
}

// OutDType is the narrowest storage for the requantized output codes.
func (l *IntLayerNorm) OutDType() tensor.DType { return l.Scaler.OutDType() }

// IntGELU maps codes through the fixed GELU lookup table (input domain =
// the calibrated GELU-input quantizer, output = the consumer's affine
// activation quantizer, zero point folded into the table entries).
type IntGELU struct {
	LUT *intmath.LUT
	// OutLo/OutHi record the declared output code range (the consumer
	// quantizer's range); every table entry lies inside it, and the
	// engine plans the output buffer's storage dtype from it.
	OutLo, OutHi int64
}

// Forward applies the table elementwise.
func (l *IntGELU) Forward(x *tensor.IntTensor) *tensor.IntTensor { return l.LUT.Apply(x) }

// OutDType is the narrowest storage for the table's output codes.
func (l *IntGELU) OutDType() tensor.DType { return tensor.DTypeForRange(l.OutLo, l.OutHi) }

// IntSliceCls takes token 0 of a [N, T, D] token tensor — the class
// token the head classifies. Slicing before the head LayerNorm is exact
// (LayerNorm is per-row) and skips normalizing the discarded tokens.
type IntSliceCls struct{}

// Forward returns the [N, D] class-token rows.
func (IntSliceCls) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	n, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	out := tensor.NewInt(n, d)
	for ni := 0; ni < n; ni++ {
		copy(out.Data[ni*d:(ni+1)*d], x.Data[ni*t*d:ni*t*d+d])
	}
	return out
}

// IntPatchEmbed is the integer patch embedding: the strided integer
// convolution requantizes into a synthesized 16-bit embedding scale
// (derived from an exact accumulator bound, so clipping is impossible),
// the [N,D,h,w] feature map transposes into [N,T,D] token rows, and the
// pre-quantized positional (+class) codes add in with a final clamp.
type IntPatchEmbed struct {
	Conv *IntConv2d
	// PosCls holds [T, D] codes at the embedding scale: row 0 is the
	// class token plus its positional embedding, rows 1..T-1 the patch
	// positional embeddings.
	PosCls           *tensor.IntTensor
	T, D             int
	ClampLo, ClampHi int64
	// Scale is the embedding code scale (value = code · Scale); the block
	// boundaries downstream store codes at this same scale.
	Scale float32
}

// Forward embeds patches and prepends the class token.
func (l *IntPatchEmbed) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	f := l.Conv.Forward(x) // [N, D, h, w]
	n, d := f.Shape[0], f.Shape[1]
	sp := f.Shape[2] * f.Shape[3]
	out := tensor.NewInt(n, l.T, d)
	clamp := func(v int64) int64 {
		if v < l.ClampLo {
			return l.ClampLo
		}
		if v > l.ClampHi {
			return l.ClampHi
		}
		return v
	}
	for ni := 0; ni < n; ni++ {
		base := ni * l.T * d
		for j := 0; j < d; j++ {
			out.Data[base+j] = clamp(l.PosCls.Data[j])
		}
		for t := 0; t < sp; t++ {
			row := out.Data[base+(1+t)*d : base+(2+t)*d]
			pos := l.PosCls.Data[(1+t)*d : (2+t)*d]
			for j := 0; j < d; j++ {
				row[j] = clamp(f.Data[(ni*d+j)*sp+t] + pos[j])
			}
		}
	}
	return out
}

// OutDType is the narrowest storage for the clamped embedding codes.
func (l *IntPatchEmbed) OutDType() tensor.DType {
	return tensor.DTypeForRange(l.ClampLo, l.ClampHi)
}

// IntAttention is integer-only multi-head self-attention: the four
// projections are IntLinears, QKᵀ and attn·V run as integer matmuls per
// (sample, head) with MulQuant requantization at each product, and the
// row softmax is the LUT-based integer softmax. Probability codes carry
// the exact scale 1/(2^bits−1), so the attn·V requantization needs no
// calibrated observer for the probabilities.
type IntAttention struct {
	Heads, D int
	Q, K, V  *IntLinear
	// QKZA/QKZB are the query/key operand zero points; QKScale folds
	// S_q·S_k/(√dh · S_logit) and emits the softmax's 8-bit logit codes.
	QKZA, QKZB int64
	QKScale    *intmath.MulQuant
	Softmax    *intmath.LUTSoftmax
	// AVZB is the value operand zero point (probabilities are zero-free);
	// AVScale folds S_p·S_v/S_proj into the projection's input quantizer.
	AVZB    int64
	AVScale *intmath.MulQuant
	Proj    *IntLinear
}

// Forward computes integer self-attention over [N, T, D] codes.
func (a *IntAttention) Forward(x *tensor.IntTensor) *tensor.IntTensor {
	n, t := x.Shape[0], x.Shape[1]
	dh := a.D / a.Heads
	q := a.Q.Forward(x)
	k := a.K.Forward(x)
	v := a.V.Forward(x)
	qh := splitHeadCodes(q, a.Heads)
	kh := splitHeadCodes(k, a.Heads)
	vh := splitHeadCodes(v, a.Heads)
	ctx := tensor.NewInt(n*a.Heads, t, dh)
	for b := 0; b < n*a.Heads; b++ {
		qb := headView(qh, b)
		kb := headView(kh, b)
		vb := headView(vh, b)
		logits := a.QKScale.Apply(matMulShifted(qb, kb, a.QKZA, a.QKZB, true), -1)
		probs := a.Softmax.Apply(logits)
		av := a.AVScale.Apply(matMulShifted(probs, vb, 0, a.AVZB, false), -1)
		copy(ctx.Data[b*t*dh:(b+1)*t*dh], av.Data)
	}
	merged := mergeHeadCodes(ctx, a.Heads)
	return a.Proj.Forward(merged)
}

// OutDType is the narrowest storage for the projection's output codes.
func (a *IntAttention) OutDType() tensor.DType { return a.Proj.OutDType() }

// splitHeadCodes rearranges [N, T, D] into [N·H, T, D/H].
func splitHeadCodes(x *tensor.IntTensor, heads int) *tensor.IntTensor {
	n, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	dh := d / heads
	out := tensor.NewInt(n*heads, t, dh)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < heads; h++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[(ni*t+ti)*d+h*dh : (ni*t+ti)*d+(h+1)*dh]
				copy(out.Data[((ni*heads+h)*t+ti)*dh:((ni*heads+h)*t+ti+1)*dh], src)
			}
		}
	}
	return out
}

// mergeHeadCodes is the inverse of splitHeadCodes: [B, T, dh] → [B/H, T, dh·H].
func mergeHeadCodes(x *tensor.IntTensor, heads int) *tensor.IntTensor {
	b, t, dh := x.Shape[0], x.Shape[1], x.Shape[2]
	n, d := b/heads, dh*heads
	out := tensor.NewInt(n, t, d)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < heads; h++ {
			for ti := 0; ti < t; ti++ {
				dst := out.Data[(ni*t+ti)*d+h*dh : (ni*t+ti)*d+(h+1)*dh]
				copy(dst, x.Data[((ni*heads+h)*t+ti)*dh:((ni*heads+h)*t+ti+1)*dh])
			}
		}
	}
	return out
}

// headView returns the rank-2 view of batch entry b of a [B, M, K] tensor.
func headView(x *tensor.IntTensor, b int) *tensor.IntTensor {
	m, k := x.Shape[1], x.Shape[2]
	return &tensor.IntTensor{Shape: []int{m, k}, Data: x.Data[b*m*k : (b+1)*m*k]}
}

// matMulShifted computes the zero-point-corrected integer product
// Σ (a−za)(b−zb) with int64 accumulation; transB selects A×Bᵀ.
func matMulShifted(a, b *tensor.IntTensor, za, zb int64, transB bool) *tensor.IntTensor {
	as := a
	if za != 0 {
		as = a.Clone()
		for i := range as.Data {
			as.Data[i] -= za
		}
	}
	bs := b
	if zb != 0 {
		bs = b.Clone()
		for i := range bs.Data {
			bs.Data[i] -= zb
		}
	}
	if transB {
		return intmath.MatMulIntT(as, bs)
	}
	return intmath.MatMulInt(as, bs)
}
