package intmath

import (
	"math"
	"testing"
	"testing/quick"

	"torch2chip/internal/tensor"
)

func TestMatMulIntKnown(t *testing.T) {
	a := tensor.IntFromSlice([]int64{1, 2, 3, 4}, 2, 2)
	b := tensor.IntFromSlice([]int64{5, 6, 7, 8}, 2, 2)
	c := MatMulInt(a, b)
	want := []int64{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("c[%d] = %d, want %d", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulIntTMatches(t *testing.T) {
	g := tensor.NewRNG(1)
	a := tensor.NewInt(5, 7)
	b := tensor.NewInt(3, 7)
	for i := range a.Data {
		a.Data[i] = int64(g.Intn(255)) - 127
	}
	for i := range b.Data {
		b.Data[i] = int64(g.Intn(255)) - 127
	}
	got := MatMulIntT(a, b)
	// Reference through float matmul (values small enough to be exact).
	ref := tensor.MatMulT(a.Float(), b.Float())
	for i := range got.Data {
		if float32(got.Data[i]) != ref.Data[i] {
			t.Fatalf("intT[%d] = %d, float ref %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestConv2dIntMatchesFloat(t *testing.T) {
	// Integer conv with small codes must agree exactly with float conv.
	g := tensor.NewRNG(2)
	x := tensor.NewInt(2, 3, 6, 6)
	w := tensor.NewInt(4, 3, 3, 3)
	for i := range x.Data {
		x.Data[i] = int64(g.Intn(255))
	}
	for i := range w.Data {
		w.Data[i] = int64(g.Intn(15)) - 7
	}
	p := tensor.ConvParams{Stride: 2, Padding: 1}
	got := Conv2dInt(x, w, 0, p)
	ref := tensor.Conv2d(x.Float(), w.Float(), nil, p)
	for i := range got.Data {
		if float32(got.Data[i]) != ref.Data[i] {
			t.Fatalf("conv[%d] = %d, float ref %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestConv2dIntZeroPoint(t *testing.T) {
	// Subtracting zx inside the kernel must equal pre-subtracting it,
	// including in padded regions (padding contributes -zx·w).
	g := tensor.NewRNG(3)
	x := tensor.NewInt(1, 2, 5, 5)
	w := tensor.NewInt(3, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = int64(g.Intn(200))
	}
	for i := range w.Data {
		w.Data[i] = int64(g.Intn(15)) - 7
	}
	const zx = 100
	p := tensor.ConvParams{Stride: 1, Padding: 1}
	got := Conv2dInt(x, w, zx, p)
	shifted := x.Clone()
	for i := range shifted.Data {
		shifted.Data[i] -= zx
	}
	// Padded zeros also shift by -zx in the fused kernel; emulate by
	// convolving shifted input where padding contributes -zx too. Build a
	// manually padded tensor.
	padded := tensor.NewInt(1, 2, 7, 7)
	for ch := 0; ch < 2; ch++ {
		for y := 0; y < 7; y++ {
			for xx := 0; xx < 7; xx++ {
				idx := (ch*7+y)*7 + xx
				if y == 0 || y == 6 || xx == 0 || xx == 6 {
					padded.Data[idx] = -zx
				} else {
					padded.Data[idx] = shifted.Data[(ch*5+(y-1))*5+(xx-1)]
				}
			}
		}
	}
	ref := Conv2dInt(padded, w, 0, tensor.ConvParams{Stride: 1, Padding: 0})
	for i := range got.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("zp conv[%d] = %d, ref %d", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestConv2dIntGrouped(t *testing.T) {
	g := tensor.NewRNG(4)
	x := tensor.NewInt(1, 4, 4, 4)
	w := tensor.NewInt(4, 1, 3, 3) // depthwise
	for i := range x.Data {
		x.Data[i] = int64(g.Intn(100))
	}
	for i := range w.Data {
		w.Data[i] = int64(g.Intn(7)) - 3
	}
	p := tensor.ConvParams{Stride: 1, Padding: 1, Groups: 4}
	got := Conv2dInt(x, w, 0, p)
	ref := tensor.Conv2d(x.Float(), w.Float(), nil, p)
	for i := range got.Data {
		if float32(got.Data[i]) != ref.Data[i] {
			t.Fatalf("depthwise conv[%d] = %d, ref %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestMulQuantInvalidSplit(t *testing.T) {
	if _, err := NewMulQuant([]float32{1}, []float32{0}, 8, 4, 8, true, 0); err == nil {
		t.Fatal("INT(8,4) is not 16 bits; expected error")
	}
}

func TestMulQuantMatchesFloatReference(t *testing.T) {
	// The paper's INT(12,4)-style fixed point: integer rescale must match
	// the float reference within the fixed-point resolution bound.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		scale := []float32{g.Float32()*0.5 + 0.01}
		bias := []float32{g.NormFloat32()}
		mq, err := NewMulQuant(scale, bias, 4, 12, 8, true, 0)
		if err != nil {
			return false
		}
		acc := tensor.NewInt(1, 1, 4, 4)
		for i := range acc.Data {
			acc.Data[i] = int64(g.Intn(2000)) - 1000
		}
		got := mq.Apply(acc, 1)
		ref := mq.FloatReference(acc, 1, scale, bias)
		for i := range got.Data {
			d := got.Data[i] - ref.Data[i]
			if d < 0 {
				d = -d
			}
			// Fixed-point scale error ≤ 2^-13 per accumulator unit plus
			// one rounding step.
			bound := int64(math.Ceil(float64(absInt(acc.Data[i]))*mq.MaxScaleError())) + 1
			if d > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func absInt(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMulQuantPerChannel(t *testing.T) {
	scale := []float32{0.5, 2}
	bias := []float32{0, 8}
	mq, err := NewMulQuant(scale, bias, 4, 12, 16, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc := tensor.IntFromSlice([]int64{10, 10, 10, 10}, 1, 2, 2, 1)
	out := mq.Apply(acc, 1)
	// ch0: 10*0.5=5; ch1: 10*2+8=28
	if out.Data[0] != 5 || out.Data[1] != 5 || out.Data[2] != 28 || out.Data[3] != 28 {
		t.Fatalf("per-channel mulquant = %v", out.Data)
	}
}

func TestMulQuantOutputClipping(t *testing.T) {
	mq, err := NewMulQuant([]float32{1}, []float32{0}, 8, 8, 4, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc := tensor.IntFromSlice([]int64{1000, -1000, 3}, 3)
	out := mq.Apply(acc, -1)
	if out.Data[0] != 7 || out.Data[1] != -8 || out.Data[2] != 3 {
		t.Fatalf("clipping = %v", out.Data)
	}
}

func TestMulQuantUnsignedOutput(t *testing.T) {
	mq, err := NewMulQuant([]float32{1}, []float32{0}, 8, 8, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc := tensor.IntFromSlice([]int64{-5, 300, 7}, 3)
	out := mq.Apply(acc, -1)
	if out.Data[0] != 0 || out.Data[1] != 255 || out.Data[2] != 7 {
		t.Fatalf("unsigned clip = %v", out.Data)
	}
}

func TestLUTMatchesFunction(t *testing.T) {
	relu := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	}
	l := NewLUT(relu, -128, 127, 0.1, 0.1, 16, true)
	for _, c := range []int64{-128, -1, 0, 1, 64, 127} {
		got := l.Lookup(c)
		want := int64(math.Round(relu(float64(c)*0.1) / 0.1))
		if got != want {
			t.Fatalf("lut(%d) = %d, want %d", c, got, want)
		}
	}
	// Out-of-range saturates.
	if l.Lookup(500) != l.Lookup(127) || l.Lookup(-500) != l.Lookup(-128) {
		t.Fatal("LUT must saturate at table edges")
	}
}

func TestLUTSoftmaxApproximatesFloat(t *testing.T) {
	g := tensor.NewRNG(5)
	const inScale = 0.05
	ls := NewLUTSoftmax(-128, 127, inScale, 8)
	x := tensor.NewInt(4, 10)
	for i := range x.Data {
		x.Data[i] = int64(g.Intn(255)) - 128
	}
	probs := ls.FloatProbs(ls.Apply(x))
	ref := tensor.Softmax(tensor.Scale(x.Float(), inScale))
	if tensor.MaxAbsDiff(probs, ref) > 0.02 {
		t.Fatalf("LUT softmax error %v", tensor.MaxAbsDiff(probs, ref))
	}
	// Rows must sum to ≈1.
	for r := 0; r < 4; r++ {
		var s float64
		for j := 0; j < 10; j++ {
			s += float64(probs.Data[r*10+j])
		}
		if math.Abs(s-1) > 0.05 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestLUTSoftmaxShiftInvariance(t *testing.T) {
	// Integer softmax must be invariant to a constant code shift (max
	// subtraction), like its float counterpart.
	ls := NewLUTSoftmax(-128, 127, 0.1, 8)
	x := tensor.IntFromSlice([]int64{10, 20, 30, 40}, 1, 4)
	y1 := ls.Apply(x)
	shifted := x.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 50
	}
	y2 := ls.Apply(shifted)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("shift variance at %d: %d vs %d", i, y1.Data[i], y2.Data[i])
		}
	}
}

func TestLUTGELU(t *testing.T) {
	const s = 0.05
	l := NewLUTGELU(-128, 127, s)
	gelu := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x)))
	}
	for _, c := range []int64{-100, -10, 0, 10, 100} {
		got := float64(l.Lookup(c)) * s
		want := gelu(float64(c) * s)
		if math.Abs(got-want) > s {
			t.Fatalf("gelu lut(%d): %v vs %v", c, got, want)
		}
	}
}

func TestRoundClip(t *testing.T) {
	if RoundClip(2.5, -10, 10) != 3 {
		t.Fatalf("round 2.5 = %d", RoundClip(2.5, -10, 10))
	}
	if RoundClip(100, -10, 10) != 10 || RoundClip(-100, -10, 10) != -10 {
		t.Fatal("clip failed")
	}
}
