package intmath

import "testing"

// TestSwarLegalBoundary pins the lane-overflow legality rule at its
// exact edge for full 8-bit spans on both sides (aSpan = wSpan = 255):
// one 32-bit lane holds K·255·255 ⇔ K ≤ 66051.
func TestSwarLegalBoundary(t *testing.T) {
	if !SwarLegal(66051, 255, 255) {
		t.Fatal("K=66051 at full spans must be legal: 66051·255·255 ≤ 2³²−1")
	}
	if SwarLegal(66052, 255, 255) {
		t.Fatal("K=66052 at full spans must be illegal: 66052·255·255 > 2³²−1")
	}
	// The bound really is exact, not merely monotone.
	if p := int64(66051) * 255 * 255; p > SwarLaneMax {
		t.Fatalf("66051·255·255 = %d exceeds the lane max %d", p, int64(SwarLaneMax))
	}
	if p := int64(66052) * 255 * 255; p <= SwarLaneMax {
		t.Fatalf("66052·255·255 = %d fits the lane max %d", p, int64(SwarLaneMax))
	}
}

func TestSwarLegalEdgeCases(t *testing.T) {
	// Zero on any axis is trivially legal (the sum is 0).
	for _, c := range [][3]int64{{0, 255, 255}, {100, 0, 255}, {100, 255, 0}} {
		if !SwarLegal(c[0], c[1], c[2]) {
			t.Fatalf("SwarLegal%v = false, want true", c)
		}
	}
	// Negative arguments are rejected.
	for _, c := range [][3]int64{{-1, 255, 255}, {1, -1, 255}, {1, 255, -1}} {
		if SwarLegal(c[0], c[1], c[2]) {
			t.Fatalf("SwarLegal%v = true, want false", c)
		}
	}
	// Arguments whose product overflows int64 must not wrap to legal.
	if SwarLegal(1<<40, 1<<30, 1<<30) {
		t.Fatal("huge operands wrapped to legal")
	}
	if !SwarLegal(1, SwarLaneMax, 1) {
		t.Fatal("1·laneMax·1 must be legal")
	}
	if SwarLegal(2, SwarLaneMax, 1) {
		t.Fatal("2·laneMax·1 must be illegal")
	}
}

// TestPackLanesRoundTrip: lane packing and extraction are inverses, and
// independent lane sums accumulate without cross-lane carry while both
// lanes stay below 2³².
func TestPackLanesRoundTrip(t *testing.T) {
	cases := [][2]uint32{{0, 0}, {1, 0}, {0, 1}, {255, 255}, {SwarLaneMax, SwarLaneMax}, {12345, 67890}}
	for _, c := range cases {
		w := PackLanes2(c[0], c[1])
		if got := LaneLo(w); got != int64(c[0]) {
			t.Fatalf("LaneLo(Pack(%d,%d)) = %d", c[0], c[1], got)
		}
		if got := LaneHi(w); got != int64(c[1]) {
			t.Fatalf("LaneHi(Pack(%d,%d)) = %d", c[0], c[1], got)
		}
	}
	// Accumulated multiply-adds stay per-lane exact at the legality bound.
	var acc uint64
	var lo, hi int64
	for i := 0; i < 66051; i++ {
		a := uint64(i % 256)
		w := PackLanes2(uint32(255-i%256), uint32(i%251))
		acc += a * w
		lo += int64(a) * int64(255-i%256)
		hi += int64(a) * int64(i%251)
	}
	if LaneLo(acc) != lo || LaneHi(acc) != hi {
		t.Fatalf("lane sums (%d, %d) diverge from scalar (%d, %d)",
			LaneLo(acc), LaneHi(acc), lo, hi)
	}
}
