// Package intmath provides the integer-only compute kernels used by the
// inference and deploy paths: int64-accumulating GEMM and convolution,
// the MulQuant fixed-point rescaling module (INT16 scale and bias with a
// user-defined integer/fraction split), and LUT-based non-linear function
// approximation (Softmax, GELU) for integer-only transformers.
package intmath

import (
	"fmt"
	"math"

	"torch2chip/internal/tensor"
)

// MatMulInt computes C[m,n] = A[m,k] × B[k,n] over integer tensors with
// int64 accumulation.
func MatMulInt(a, b *tensor.IntTensor) *tensor.IntTensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("intmath: MatMulInt shapes %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := tensor.NewInt(m, n)
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

// MatMulIntT computes A[m,k] × Bᵀ for B[n,k].
func MatMulIntT(a, b *tensor.IntTensor) *tensor.IntTensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("intmath: MatMulIntT shapes %v × %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := tensor.NewInt(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s int64
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// Conv2dInt computes a grouped integer convolution of x [N,C,H,W] with
// weights w [O,C/g,kH,kW], accumulating in int64. An optional zero point
// zx is subtracted from x on the fly (asymmetric activations).
func Conv2dInt(x, w *tensor.IntTensor, zx int64, p tensor.ConvParams) *tensor.IntTensor {
	if p.Stride <= 0 {
		p.Stride = 1
	}
	if p.Groups <= 0 {
		p.Groups = 1
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(wd, kW)
	out := tensor.NewInt(n, o, oh, ow)
	og := o / p.Groups
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < o; oc++ {
			g := oc / og
			wBase := oc * cg * kH * kW
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc int64
					for ch := 0; ch < cg; ch++ {
						inCh := g*cg + ch
						xBase := (ni*c + inCh) * h * wd
						for ky := 0; ky < kH; ky++ {
							iy := oy*p.Stride - p.Padding + ky
							if iy < 0 || iy >= h {
								// Padded region contributes (0 - zx)·w.
								if zx != 0 {
									for kx := 0; kx < kW; kx++ {
										acc += -zx * w.Data[wBase+(ch*kH+ky)*kW+kx]
									}
								}
								continue
							}
							for kx := 0; kx < kW; kx++ {
								ix := ox*p.Stride - p.Padding + kx
								var xv int64
								if ix >= 0 && ix < wd {
									xv = x.Data[xBase+iy*wd+ix]
								}
								acc += (xv - zx) * w.Data[wBase+(ch*kH+ky)*kW+kx]
							}
						}
					}
					out.Data[((ni*o+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// RoundClip rounds v to the nearest integer and clips to [lo, hi].
func RoundClip(v float64, lo, hi int64) int64 {
	c := int64(math.Round(v))
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}
