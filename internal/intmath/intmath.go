// Package intmath provides the integer-only compute kernels used by the
// inference and deploy paths: int64-accumulating GEMM and convolution,
// the MulQuant fixed-point rescaling module (INT16 scale and bias with a
// user-defined integer/fraction split), and LUT-based non-linear function
// approximation (Softmax, GELU) for integer-only transformers.
package intmath

import (
	"fmt"
	"math"
	"math/bits"

	"torch2chip/internal/tensor"
)

// MatMulInt computes C[m,n] = A[m,k] × B[k,n] over integer tensors with
// int64 accumulation.
func MatMulInt(a, b *tensor.IntTensor) *tensor.IntTensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("intmath: MatMulInt shapes %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := tensor.NewInt(m, n)
	for i := 0; i < m; i++ {
		ci := c.Data[i*n : (i+1)*n]
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

// MatMulIntT computes A[m,k] × Bᵀ for B[n,k].
func MatMulIntT(a, b *tensor.IntTensor) *tensor.IntTensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("intmath: MatMulIntT shapes %v × %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := tensor.NewInt(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s int64
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// Conv2dInt computes a grouped integer convolution of x [N,C,H,W] with
// weights w [O,C/g,kH,kW], accumulating in int64. An optional zero point
// zx is subtracted from x on the fly (asymmetric activations).
func Conv2dInt(x, w *tensor.IntTensor, zx int64, p tensor.ConvParams) *tensor.IntTensor {
	if p.Stride <= 0 {
		p.Stride = 1
	}
	if p.Groups <= 0 {
		p.Groups = 1
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(wd, kW)
	out := tensor.NewInt(n, o, oh, ow)
	og := o / p.Groups
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < o; oc++ {
			g := oc / og
			wBase := oc * cg * kH * kW
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc int64
					for ch := 0; ch < cg; ch++ {
						inCh := g*cg + ch
						xBase := (ni*c + inCh) * h * wd
						for ky := 0; ky < kH; ky++ {
							iy := oy*p.Stride - p.Padding + ky
							if iy < 0 || iy >= h {
								// Padded region contributes (0 - zx)·w.
								if zx != 0 {
									for kx := 0; kx < kW; kx++ {
										acc += -zx * w.Data[wBase+(ch*kH+ky)*kW+kx]
									}
								}
								continue
							}
							for kx := 0; kx < kW; kx++ {
								ix := ox*p.Stride - p.Padding + kx
								var xv int64
								if ix >= 0 && ix < wd {
									xv = x.Data[xBase+iy*wd+ix]
								}
								acc += (xv - zx) * w.Data[wBase+(ch*kH+ky)*kW+kx]
							}
						}
					}
					out.Data[((ni*o+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// RoundDiv divides num by den (den > 0) rounding half away from zero —
// the shared integer-division rounding every deploy stage uses, so the
// interpreter and the engine kernels agree bit for bit.
func RoundDiv(num, den int64) int64 {
	if num >= 0 {
		return (num + den/2) / den
	}
	return -((-num + den/2) / den)
}

// ISqrt returns floor(sqrt(n)) computed with a pure-integer Newton
// iteration (seeded from the bit length, so convergence takes a handful
// of steps). Hardware-friendly and exactly reproducible: the integer
// LayerNorm normalization divides by this root, so every engine kernel
// lands on the same codes as the interpreter.
func ISqrt(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if n < 4 {
		return 1
	}
	// Seed x0 = 2^ceil(bits/2) ≥ sqrt(n); Newton from above is monotone
	// decreasing, so the loop exits at floor(sqrt(n)).
	x := int64(1) << ((bits.Len64(uint64(n)) + 1) / 2)
	for {
		y := (x + n/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

// RoundClip rounds v to the nearest integer and clips to [lo, hi].
func RoundClip(v float64, lo, hi int64) int64 {
	c := int64(math.Round(v))
	if c < lo {
		return lo
	}
	if c > hi {
		return hi
	}
	return c
}
