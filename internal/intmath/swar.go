package intmath

import "math"

// SWAR (SIMD-within-a-register) lane primitives for the packed int8 GEMM
// path. Two output channels share one 64-bit accumulator word, each
// owning a 32-bit lane. Both multiplicands are biased to be non-negative
// — activations to [0, 255] bytes, weights to [0, wSpan] — so lane sums
// grow monotonically and, as long as the final value of the low lane
// fits 32 bits, no carry ever crosses into the high lane: every
// intermediate partial sum is bounded by the final sum. SwarLegal is the
// per-instruction proof obligation for that bound.

// SwarLanes is the number of output channels packed per 64-bit word.
const SwarLanes = 2

// SwarLaneBits is the width of one packed sub-accumulator.
const SwarLaneBits = 32

// SwarLaneMax is the largest value a packed sub-accumulator may reach
// without corrupting the neighbouring lane.
const SwarLaneMax = math.MaxUint32

// SwarLegal reports whether a K-long dot product of biased activations
// (each ≤ aSpan) against biased weights (each ≤ wSpan) stays within one
// 32-bit lane: K·aSpan·wSpan ≤ SwarLaneMax. All arguments must be
// non-negative; the comparison is performed without overflow.
func SwarLegal(k, aSpan, wSpan int64) bool {
	if k < 0 || aSpan < 0 || wSpan < 0 {
		return false
	}
	if k == 0 || aSpan == 0 || wSpan == 0 {
		return true
	}
	if aSpan > SwarLaneMax || k > SwarLaneMax/aSpan {
		return false
	}
	return k*aSpan <= SwarLaneMax/wSpan
}

// PackLanes2 packs two biased weights into one accumulator word: lane 0
// (low) holds w0, lane 1 (high) holds w1. Both must be in [0, 2^32).
func PackLanes2(w0, w1 uint32) uint64 {
	return uint64(w0) | uint64(w1)<<SwarLaneBits
}

// LaneLo extracts the low 32-bit sub-accumulator.
func LaneLo(acc uint64) int64 { return int64(acc & SwarLaneMax) }

// LaneHi extracts the high 32-bit sub-accumulator.
func LaneHi(acc uint64) int64 { return int64(acc >> SwarLaneBits) }
