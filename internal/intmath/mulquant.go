package intmath

import (
	"fmt"
	"math"

	"torch2chip/internal/tensor"
)

// MulQuant is the integer rescale-and-requantize module that replaces the
// floating-point scale multiplication after fusion (Figure 3/4 of the
// paper). The per-channel (or unified) scale and bias are stored as INT16
// fixed-point numbers with a user-defined (integer, fraction) bit split,
// e.g. INT(12,4) = 4 integer bits and 12 fractional bits:
//
//	y_q = round_clip( (acc · scaleFx) >> frac  +  biasFx >> frac )
//
// computed entirely with integer arithmetic (the shift is a fixed-point
// divide). Outputs are clipped to the declared output bit-width.
type MulQuant struct {
	// ScaleFx and BiasFx are the fixed-point INT16 codes (one per channel,
	// or a single entry for unified scaling).
	ScaleFx []int16
	BiasFx  []int32 // bias uses the same fraction but wider storage headroom
	// FracBits / IntBits define the fixed-point split; FracBits+IntBits=16.
	FracBits int
	IntBits  int
	// OutBits / OutSigned define the requantized output range.
	OutBits   int
	OutSigned bool
	// OutZero is the output zero point added after rescale.
	OutZero int64
}

// NewMulQuant converts float per-channel scale and bias into fixed point.
// intBits+fracBits must equal 16 (an INT16 code).
func NewMulQuant(scale, bias []float32, intBits, fracBits, outBits int, outSigned bool, outZero int64) (*MulQuant, error) {
	if intBits+fracBits != 16 {
		return nil, fmt.Errorf("intmath: INT(%d,%d) is not an INT16 split", intBits, fracBits)
	}
	m := &MulQuant{
		ScaleFx: make([]int16, len(scale)), BiasFx: make([]int32, len(bias)),
		FracBits: fracBits, IntBits: intBits,
		OutBits: outBits, OutSigned: outSigned, OutZero: outZero,
	}
	lim := int64(1)<<15 - 1
	for i, s := range scale {
		c := RoundClip(float64(s)*float64(int64(1)<<fracBits), -lim-1, lim)
		m.ScaleFx[i] = int16(c)
	}
	blim := int64(1)<<31 - 1
	for i, b := range bias {
		c := RoundClip(float64(b)*float64(int64(1)<<fracBits), -blim-1, blim)
		m.BiasFx[i] = int32(c)
	}
	return m, nil
}

func (m *MulQuant) qRange() (int64, int64) {
	if m.OutSigned {
		return -(1 << (m.OutBits - 1)), 1<<(m.OutBits-1) - 1
	}
	return 0, 1<<m.OutBits - 1
}

// scaleAt returns the fixed-point codes for channel ch (unified scaling
// collapses to index 0).
func (m *MulQuant) scaleAt(ch int) (int64, int64) {
	if len(m.ScaleFx) == 1 {
		return int64(m.ScaleFx[0]), int64(m.BiasFx[0])
	}
	return int64(m.ScaleFx[ch]), int64(m.BiasFx[ch])
}

// Apply rescales an accumulator tensor [N,C,...] channel-wise. chDim
// selects which dimension indexes channels (1 for NCHW accumulators,
// -1 for unified scaling of matmul outputs).
func (m *MulQuant) Apply(acc *tensor.IntTensor, chDim int) *tensor.IntTensor {
	out := tensor.NewInt(acc.Shape...)
	m.ApplyTo(out, acc, chDim)
	return out
}

// ApplyTo is Apply writing into a caller-owned destination (same element
// count as acc), so planned-arena executors can rescale without
// allocating. out may alias acc.
func (m *MulQuant) ApplyTo(out, acc *tensor.IntTensor, chDim int) {
	if len(out.Data) != len(acc.Data) {
		panic("intmath: ApplyTo size mismatch")
	}
	lo, hi := m.qRange()
	half := int64(1) << (m.FracBits - 1)
	var chSize, nCh int
	if chDim < 0 || len(m.ScaleFx) == 1 {
		nCh = 1
		chSize = len(acc.Data)
	} else {
		nCh = acc.Shape[chDim]
		inner := 1
		for d := chDim + 1; d < len(acc.Shape); d++ {
			inner *= acc.Shape[d]
		}
		chSize = inner
	}
	for i, v := range acc.Data {
		ch := 0
		if nCh > 1 {
			ch = (i / chSize) % nCh
		}
		sfx, bfx := m.scaleAt(ch)
		out.Data[i] = m.requantize(v, sfx, bfx, half, lo, hi)
	}
}

// requantize is the per-element fixed-point multiply-add with
// round-to-nearest on the shift; every Apply variant funnels through it
// so the engine kernels stay bit-identical to the interpreter.
func (m *MulQuant) requantize(v, sfx, bfx, half, lo, hi int64) int64 {
	return Requantize(v, sfx, bfx, half, uint(m.FracBits), m.OutZero, lo, hi)
}

// Requantize is the scalar fixed-point rescale every MulQuant application
// funnels through: q = round_half_away((v·sfx + bfx) >> frac) + zero,
// clamped to [lo, hi]. It is exported so compiled-engine kernels that
// prepack the MulQuant constants produce bit-identical codes.
func Requantize(v, sfx, bfx, half int64, frac uint, zero, lo, hi int64) int64 {
	t := v*sfx + bfx
	var q int64
	if t >= 0 {
		q = (t + half) >> frac
	} else {
		q = -((-t + half) >> frac)
	}
	q += zero
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	return q
}

// Consts returns the scalar constants Requantize needs: the rounding
// half, the fraction shift, the output zero point, and the clamp range.
func (m *MulQuant) Consts() (half int64, frac uint, zero, lo, hi int64) {
	lo, hi = m.qRange()
	return int64(1) << (m.FracBits - 1), uint(m.FracBits), m.OutZero, lo, hi
}

// OutRange returns the requantized output code range [lo, hi] implied by
// OutBits/OutSigned — the value range every code this scaler emits lives
// in, and therefore the narrowest legal storage for its output tensor.
func (m *MulQuant) OutRange() (int64, int64) { return m.qRange() }

// OutDType returns the narrowest storage dtype that holds every output
// code, the activation-dtype annotation the typed engine plans with.
func (m *MulQuant) OutDType() tensor.DType {
	lo, hi := m.qRange()
	return tensor.DTypeForRange(lo, hi)
}

// Expand widens the fixed-point codes to n per-channel int64 pairs
// (unified scaling broadcasts entry 0), the layout prepacked kernels
// index without the per-element channel branch.
func (m *MulQuant) Expand(n int) (sfx, bfx []int64) {
	sfx, bfx = make([]int64, n), make([]int64, n)
	for i := 0; i < n; i++ {
		sfx[i], bfx[i] = m.scaleAt(i)
	}
	return sfx, bfx
}

// ApplySeg rescales a contiguous accumulator segment that belongs
// entirely to channel ch, writing dst[i] for each acc[i]. dst may alias
// acc. Parallel kernels use it to requantize one output plane per job.
func (m *MulQuant) ApplySeg(dst, acc []int64, ch int) {
	lo, hi := m.qRange()
	half := int64(1) << (m.FracBits - 1)
	sfx, bfx := m.scaleAt(ch)
	for i, v := range acc {
		dst[i] = m.requantize(v, sfx, bfx, half, lo, hi)
	}
}

// ApplyGather rescales channel ch reading src strided (src[i*stride] for
// i in [0,len(dst))), writing dst densely. This lets a GEMM output laid
// out [rows, channels] be requantized straight into NCHW planes without
// an intermediate scatter pass.
func (m *MulQuant) ApplyGather(dst, src []int64, stride, ch int) {
	lo, hi := m.qRange()
	half := int64(1) << (m.FracBits - 1)
	sfx, bfx := m.scaleAt(ch)
	for i := range dst {
		dst[i] = m.requantize(src[i*stride], sfx, bfx, half, lo, hi)
	}
}

// FloatReference computes the float-precision reference of Apply, used by
// tests to bound the fixed-point error.
func (m *MulQuant) FloatReference(acc *tensor.IntTensor, chDim int, scale, bias []float32) *tensor.IntTensor {
	out := tensor.NewInt(acc.Shape...)
	lo, hi := m.qRange()
	var chSize, nCh int
	if chDim < 0 || len(scale) == 1 {
		nCh = 1
		chSize = len(acc.Data)
	} else {
		nCh = acc.Shape[chDim]
		inner := 1
		for d := chDim + 1; d < len(acc.Shape); d++ {
			inner *= acc.Shape[d]
		}
		chSize = inner
	}
	for i, v := range acc.Data {
		ch := 0
		if nCh > 1 {
			ch = (i / chSize) % nCh
		}
		s, b := scale[0], bias[0]
		if nCh > 1 {
			s, b = scale[ch], bias[ch]
		}
		out.Data[i] = RoundClip(float64(v)*float64(s)+float64(b)+float64(m.OutZero), lo, hi)
	}
	return out
}

// MaxScaleError returns the worst-case representable scale error of the
// fixed-point encoding, 2^-frac/2.
func (m *MulQuant) MaxScaleError() float64 {
	return math.Pow(2, -float64(m.FracBits)) / 2
}
