package intmath

import (
	"math"

	"torch2chip/internal/tensor"
)

// LUT approximates a scalar non-linear function over integer inputs by
// table lookup, the deploy-time replacement the paper uses for Softmax and
// GELU inside integer-only transformers. Inputs are integer codes in
// [InMin, InMax] (the quantized domain); outputs are integer codes with
// the declared output scale.
type LUT struct {
	InMin, InMax int64
	// Table maps code (x - InMin) to the output code.
	Table []int64
	// OutScale converts output codes back to float (out = code · OutScale).
	OutScale float32
}

// NewLUT tabulates f over the quantized input domain. inScale converts an
// input code to its float value; outScale quantizes the output with the
// given output bit range.
func NewLUT(f func(float64) float64, inMin, inMax int64, inScale float32, outScale float32, outBits int, outSigned bool) *LUT {
	l := &LUT{InMin: inMin, InMax: inMax, OutScale: outScale, Table: make([]int64, inMax-inMin+1)}
	var lo, hi int64
	if outSigned {
		lo, hi = -(1 << (outBits - 1)), 1<<(outBits-1)-1
	} else {
		lo, hi = 0, 1<<outBits-1
	}
	for c := inMin; c <= inMax; c++ {
		y := f(float64(c) * float64(inScale))
		l.Table[c-inMin] = RoundClip(y/float64(outScale), lo, hi)
	}
	return l
}

// Lookup maps one input code through the table, clamping out-of-range
// codes to the table edges (saturating hardware behaviour).
func (l *LUT) Lookup(c int64) int64 {
	if c < l.InMin {
		c = l.InMin
	}
	if c > l.InMax {
		c = l.InMax
	}
	return l.Table[c-l.InMin]
}

// Apply maps a whole tensor through the table.
func (l *LUT) Apply(x *tensor.IntTensor) *tensor.IntTensor {
	out := tensor.NewInt(x.Shape...)
	for i, c := range x.Data {
		out.Data[i] = l.Lookup(c)
	}
	return out
}

// LUTSoftmax performs the integer-only softmax used inside quantized
// attention (Figure 4): exponentials come from an 8-bit-input, 16-bit
// fixed-point-output LUT; normalization is an integer divide.
type LUTSoftmax struct {
	exp *LUT
	// OutBits of the resulting probability codes (unsigned).
	OutBits int
	// probScale converts probability codes to float: p = code / 2^OutBits-ish
	ProbScale float32
}

// NewLUTSoftmax builds the exp LUT for logit codes in [inMin, inMax] with
// input scale inScale. The exp table stores 16-bit fixed-point values of
// exp(x - xmax) assuming inputs are pre-shifted by the row max.
func NewLUTSoftmax(inMin, inMax int64, inScale float32, outBits int) *LUTSoftmax {
	const expFrac = 15 // UQ1.15: exp(z) for z<=0 lies in (0,1]
	expScale := float32(math.Pow(2, -expFrac))
	exp := NewLUT(math.Exp, inMin-inMax, 0, inScale, expScale, 16, false)
	s := &LUTSoftmax{exp: exp, OutBits: outBits}
	s.ProbScale = 1 / float32(int64(1)<<outBits-1)
	return s
}

// Apply computes row-wise integer softmax over the last dimension of x.
// Each row is shifted by its max code before the LUT (standard
// max-subtraction), the LUT exponentials are summed in int64, and each
// probability is (e<<OutBits)/sum, an integer divide.
func (s *LUTSoftmax) Apply(x *tensor.IntTensor) *tensor.IntTensor {
	d := x.Shape[len(x.Shape)-1]
	rows := len(x.Data) / d
	out := tensor.NewInt(x.Shape...)
	scaleMax := int64(1)<<s.OutBits - 1
	for r := 0; r < rows; r++ {
		seg := x.Data[r*d : (r+1)*d]
		var mx int64 = math.MinInt64
		for _, c := range seg {
			if c > mx {
				mx = c
			}
		}
		var sum int64
		es := make([]int64, d)
		for j, c := range seg {
			e := s.exp.Lookup(c - mx)
			es[j] = e
			sum += e
		}
		if sum == 0 {
			sum = 1
		}
		o := out.Data[r*d : (r+1)*d]
		for j, e := range es {
			o[j] = (e*scaleMax + sum/2) / sum
		}
	}
	return out
}

// FloatProbs converts probability codes to float32 probabilities.
func (s *LUTSoftmax) FloatProbs(codes *tensor.IntTensor) *tensor.Tensor {
	out := tensor.New(codes.Shape...)
	for i, c := range codes.Data {
		out.Data[i] = float32(c) * s.ProbScale
	}
	return out
}

// NewLUTGELU tabulates GELU for the given quantized input domain with a
// symmetric int16 output of the same scale as the input, which keeps the
// activation in the integer domain between matmuls.
func NewLUTGELU(inMin, inMax int64, inScale float32) *LUT {
	gelu := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x)))
	}
	return NewLUT(gelu, inMin, inMax, inScale, inScale, 16, true)
}
