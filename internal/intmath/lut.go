package intmath

import (
	"math"

	"torch2chip/internal/tensor"
)

// LUT approximates a scalar non-linear function over integer inputs by
// table lookup, the deploy-time replacement the paper uses for Softmax and
// GELU inside integer-only transformers. Inputs are integer codes in
// [InMin, InMax] (the quantized domain); outputs are integer codes with
// the declared output scale.
type LUT struct {
	InMin, InMax int64
	// Table maps code (x - InMin) to the output code.
	Table []int64
	// OutScale converts output codes back to float (out = code · OutScale).
	OutScale float32
}

// NewLUT tabulates f over the quantized input domain. inScale converts an
// input code to its float value; outScale quantizes the output with the
// given output bit range.
func NewLUT(f func(float64) float64, inMin, inMax int64, inScale float32, outScale float32, outBits int, outSigned bool) *LUT {
	l := &LUT{InMin: inMin, InMax: inMax, OutScale: outScale, Table: make([]int64, inMax-inMin+1)}
	var lo, hi int64
	if outSigned {
		lo, hi = -(1 << (outBits - 1)), 1<<(outBits-1)-1
	} else {
		lo, hi = 0, 1<<outBits-1
	}
	for c := inMin; c <= inMax; c++ {
		y := f(float64(c) * float64(inScale))
		l.Table[c-inMin] = RoundClip(y/float64(outScale), lo, hi)
	}
	return l
}

// NewLUTQuant tabulates f between two affine quantizers: input codes in
// [inMin, inMax] decode through inVal (which owns the input scale and
// zero point), outputs re-quantize as round(y/outScale)+outZero clamped
// to the declared output range. This is the general form integer GELU
// uses — the input is a signed calibrated domain, the output an affine
// activation quantizer with a non-zero zero point.
func NewLUTQuant(f func(float64) float64, inMin, inMax int64, inVal func(int64) float64, outScale float32, outZero int64, outBits int, outSigned bool) *LUT {
	l := &LUT{InMin: inMin, InMax: inMax, OutScale: outScale, Table: make([]int64, inMax-inMin+1)}
	var lo, hi int64
	if outSigned {
		lo, hi = -(1 << (outBits - 1)), 1<<(outBits-1)-1
	} else {
		lo, hi = 0, 1<<outBits-1
	}
	for c := inMin; c <= inMax; c++ {
		y := f(inVal(c))
		l.Table[c-inMin] = RoundClip(y/float64(outScale)+float64(outZero), lo, hi)
	}
	return l
}

// Range returns the smallest and largest output code in the table.
func (l *LUT) Range() (int64, int64) {
	lo, hi := l.Table[0], l.Table[0]
	for _, v := range l.Table[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Lookup maps one input code through the table, clamping out-of-range
// codes to the table edges (saturating hardware behaviour).
func (l *LUT) Lookup(c int64) int64 {
	if c < l.InMin {
		c = l.InMin
	}
	if c > l.InMax {
		c = l.InMax
	}
	return l.Table[c-l.InMin]
}

// Apply maps a whole tensor through the table.
func (l *LUT) Apply(x *tensor.IntTensor) *tensor.IntTensor {
	out := tensor.NewInt(x.Shape...)
	for i, c := range x.Data {
		out.Data[i] = l.Lookup(c)
	}
	return out
}

// LUTSoftmax performs the integer-only softmax used inside quantized
// attention (Figure 4): exponentials come from an 8-bit-input, 16-bit
// fixed-point-output LUT; normalization is an integer divide.
type LUTSoftmax struct {
	// Exp is the exponential table over max-subtracted logit codes
	// (domain [inMin−inMax, 0]); exported so checkpoints can round-trip
	// the exact table the model was compiled with.
	Exp *LUT
	// OutBits of the resulting probability codes (unsigned).
	OutBits int
	// probScale converts probability codes to float: p = code / 2^OutBits-ish
	ProbScale float32
}

// NewLUTSoftmax builds the exp LUT for logit codes in [inMin, inMax] with
// input scale inScale. The exp table stores 16-bit fixed-point values of
// exp(x - xmax) assuming inputs are pre-shifted by the row max.
func NewLUTSoftmax(inMin, inMax int64, inScale float32, outBits int) *LUTSoftmax {
	const expFrac = 15 // UQ1.15: exp(z) for z<=0 lies in (0,1]
	expScale := float32(math.Pow(2, -expFrac))
	exp := NewLUT(math.Exp, inMin-inMax, 0, inScale, expScale, 16, false)
	s := &LUTSoftmax{Exp: exp, OutBits: outBits}
	s.ProbScale = 1 / float32(int64(1)<<outBits-1)
	return s
}

// ApplyRow computes the integer softmax of one logit row into dst (same
// length, may alias src): subtract the row max, look up UQ1.15
// exponentials, sum in int64, and emit (e·(2^OutBits−1) + sum/2)/sum.
// scratch must hold len(src) words. Both the interpreter and every
// engine kernel funnel through this, so the codes cannot drift.
func (s *LUTSoftmax) ApplyRow(dst, src, scratch []int64) {
	var mx int64 = math.MinInt64
	for _, c := range src {
		if c > mx {
			mx = c
		}
	}
	var sum int64
	for j, c := range src {
		e := s.Exp.Lookup(c - mx)
		scratch[j] = e
		sum += e
	}
	if sum == 0 {
		sum = 1
	}
	scaleMax := int64(1)<<s.OutBits - 1
	for j, e := range scratch[:len(src)] {
		dst[j] = (e*scaleMax + sum/2) / sum
	}
}

// Apply computes row-wise integer softmax over the last dimension of x.
// Each row is shifted by its max code before the LUT (standard
// max-subtraction), the LUT exponentials are summed in int64, and each
// probability is (e<<OutBits)/sum, an integer divide.
func (s *LUTSoftmax) Apply(x *tensor.IntTensor) *tensor.IntTensor {
	d := x.Shape[len(x.Shape)-1]
	rows := len(x.Data) / d
	out := tensor.NewInt(x.Shape...)
	scratch := make([]int64, d)
	for r := 0; r < rows; r++ {
		s.ApplyRow(out.Data[r*d:(r+1)*d], x.Data[r*d:(r+1)*d], scratch)
	}
	return out
}

// FloatProbs converts probability codes to float32 probabilities.
func (s *LUTSoftmax) FloatProbs(codes *tensor.IntTensor) *tensor.Tensor {
	out := tensor.New(codes.Shape...)
	for i, c := range codes.Data {
		out.Data[i] = float32(c) * s.ProbScale
	}
	return out
}

// NewLUTGELU tabulates GELU for the given quantized input domain with a
// symmetric int16 output of the same scale as the input, which keeps the
// activation in the integer domain between matmuls.
func NewLUTGELU(inMin, inMax int64, inScale float32) *LUT {
	gelu := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x)))
	}
	return NewLUT(gelu, inMin, inMax, inScale, inScale, 16, true)
}
