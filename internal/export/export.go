// Package export writes integer model parameters in the output formats of
// Figure 5: hexadecimal text for Verilog/SystemVerilog $readmemh, binary
// text for $readmemb, packed little-endian binary, and a JSON integer
// checkpoint. Every format has a matching reader so round trips are
// testable, and all encoders work from the IntTensor map produced by
// fuse.IntModel.
package export

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"torch2chip/internal/tensor"
)

// twosComplement encodes v into width bits (two's complement).
func twosComplement(v int64, width int) (uint64, error) {
	lo := -(int64(1) << (width - 1))
	hi := int64(1)<<(width-1) - 1
	if width >= 64 {
		return uint64(v), nil
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("export: value %d does not fit %d bits", v, width)
	}
	mask := uint64(1)<<width - 1
	return uint64(v) & mask, nil
}

// fromTwosComplement decodes a width-bit two's complement code.
func fromTwosComplement(u uint64, width int) int64 {
	if width < 64 && u&(1<<(width-1)) != 0 {
		return int64(u) - (1 << width)
	}
	return int64(u)
}

// WriteHex emits one hexadecimal token per element, the $readmemh layout:
// each line holds a two's-complement code padded to ceil(width/4) digits.
func WriteHex(w io.Writer, t *tensor.IntTensor, widthBits int) error {
	bw := bufio.NewWriter(w)
	digits := (widthBits + 3) / 4
	for _, v := range t.Data {
		u, err := twosComplement(v, widthBits)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%0*x\n", digits, u); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHex parses a $readmemh stream into codes of the given width.
func ReadHex(r io.Reader, widthBits int) ([]int64, error) {
	var out []int64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		u, err := strconv.ParseUint(line, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("export: bad hex token %q: %w", line, err)
		}
		out = append(out, fromTwosComplement(u, widthBits))
	}
	return out, sc.Err()
}

// WriteBin emits one binary token per element ($readmemb layout).
func WriteBin(w io.Writer, t *tensor.IntTensor, widthBits int) error {
	bw := bufio.NewWriter(w)
	for _, v := range t.Data {
		u, err := twosComplement(v, widthBits)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%0*b\n", widthBits, u); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBin parses a $readmemb stream.
func ReadBin(r io.Reader, widthBits int) ([]int64, error) {
	var out []int64
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		u, err := strconv.ParseUint(line, 2, 64)
		if err != nil {
			return nil, fmt.Errorf("export: bad binary token %q: %w", line, err)
		}
		out = append(out, fromTwosComplement(u, widthBits))
	}
	return out, sc.Err()
}

// WriteRaw packs codes little-endian at the smallest byte width that holds
// widthBits (1, 2, 4, or 8 bytes per element).
func WriteRaw(w io.Writer, t *tensor.IntTensor, widthBits int) error {
	bw := bufio.NewWriter(w)
	nb := byteWidth(widthBits)
	var buf [8]byte
	for _, v := range t.Data {
		u, err := twosComplement(v, widthBits)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:], u)
		if _, err := bw.Write(buf[:nb]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRaw unpacks a little-endian raw stream of n codes.
func ReadRaw(r io.Reader, widthBits, n int) ([]int64, error) {
	nb := byteWidth(widthBits)
	out := make([]int64, 0, n)
	buf := make([]byte, nb)
	var full [8]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		copy(full[:], buf)
		for j := nb; j < 8; j++ {
			full[j] = 0
		}
		u := binary.LittleEndian.Uint64(full[:])
		mask := uint64(1)<<(8*nb) - 1
		out = append(out, fromTwosComplement(u&widthMask(widthBits, mask), widthBits))
	}
	return out, nil
}

func widthMask(widthBits int, byteMask uint64) uint64 {
	if widthBits >= 64 {
		return byteMask
	}
	m := uint64(1)<<widthBits - 1
	if m < byteMask {
		return m
	}
	return byteMask
}

func byteWidth(widthBits int) int {
	switch {
	case widthBits <= 8:
		return 1
	case widthBits <= 16:
		return 2
	case widthBits <= 32:
		return 4
	default:
		return 8
	}
}

// Checkpoint is the JSON integer model file: tensor name → shape, width,
// and codes. It plays the role of the paper's "integer-only PyTorch model
// file": the model architecture stays vanilla, only integer parameters and
// scaler codes are stored.
type Checkpoint struct {
	Format  string                `json:"format"`
	Tensors map[string]CkptTensor `json:"tensors"`
	// Program is the optional compiled inference graph (engine.Program
	// lowered to a plain-data spec). Instruction weights reference
	// entries of Tensors by name, so the parameter payload is stored
	// once and shared between the interpreter and the engine.
	Program *ProgramSpec `json:"program,omitempty"`
}

// ProgramSpec is the serialized graph IR: a topo-ordered instruction
// list over numbered buffers plus the float↔code boundary parameters.
// OptLevel records the optimization pass the program was compiled with,
// so a reloaded checkpoint reconstructs the exact fused artifact.
type ProgramSpec struct {
	Version  int `json:"version"`
	OptLevel int `json:"opt_level,omitempty"`
	// InShape is the single-sample input shape (no batch dimension,
	// e.g. [3,32,32]). Optional for backward compatibility: older
	// checkpoints omit it and servers must be told the shape explicitly.
	InShape []int `json:"in_shape,omitempty"`
	// BufDTypes (spec version ≥ 3) annotates each buffer with its
	// narrow storage dtype ("i8", "u8", "i16", "u16", "i32", "i64").
	// Older checkpoints omit it and load with I64 storage everywhere.
	BufDTypes []string    `json:"buf_dtypes,omitempty"`
	InQuant   QuantSpec   `json:"in_quant"`
	OutScale  float32     `json:"out_scale"`
	OutZero   int64       `json:"out_zero"`
	NumBufs   int         `json:"num_bufs"`
	Input     int         `json:"input"`
	Output    int         `json:"output"`
	Instrs    []InstrSpec `json:"instrs"`
}

// QuantSpec serializes an activation quantizer's frozen parameters.
type QuantSpec struct {
	NBits  int       `json:"nbits"`
	Signed bool      `json:"signed"`
	Scale  []float32 `json:"scale"`
	Zero   []int64   `json:"zero"`
}

// ScalerSpec serializes a MulQuant fixed-point rescaler.
type ScalerSpec struct {
	ScaleFx   []int16 `json:"scale_fx"`
	BiasFx    []int32 `json:"bias_fx"`
	FracBits  int     `json:"frac_bits"`
	IntBits   int     `json:"int_bits"`
	OutBits   int     `json:"out_bits"`
	OutSigned bool    `json:"out_signed"`
	OutZero   int64   `json:"out_zero"`
}

// InstrSpec is one serialized instruction. Only the fields relevant to
// Kind are populated.
type InstrSpec struct {
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	In     []int  `json:"in"`
	Out    int    `json:"out"`
	Weight string `json:"weight,omitempty"` // Tensors key of the weight

	Stride  int   `json:"stride,omitempty"`
	Padding int   `json:"padding,omitempty"`
	Groups  int   `json:"groups,omitempty"`
	InZero  int64 `json:"in_zero,omitempty"`
	WBits   int   `json:"w_bits,omitempty"`

	Scaler *ScalerSpec `json:"scaler,omitempty"`

	Kernel     int `json:"kernel,omitempty"`
	PoolStride int `json:"pool_stride,omitempty"`

	Shift   int   `json:"shift,omitempty"`
	ClampLo int64 `json:"clamp_lo,omitempty"`
	ClampHi int64 `json:"clamp_hi,omitempty"`

	// Fused epilogue (spec version ≥ 2): a folded rescale stage, a folded
	// residual add (whose branch is the last In entry; Shift/Clamp fields
	// carry its parameters), and a folded flatten of the output view.
	FusedRescale *ScalerSpec `json:"fused_rescale,omitempty"`
	FusedAdd     bool        `json:"fused_add,omitempty"`
	FlattenOut   bool        `json:"flatten_out,omitempty"`

	// Transformer attributes (spec version ≥ 4). Matmul instructions
	// carry the operand zero points and transpose flag; head split/merge
	// carry Heads; layernorm carries the integer-normalization constants
	// (its Scaler field holds the γ/β fold); gelu and softmax carry their
	// lookup tables; embed references its positional/class code tensor
	// through Weight and reuses ClampLo/ClampHi.
	TransposeB bool         `json:"transpose_b,omitempty"`
	ZA         int64        `json:"za,omitempty"`
	ZB         int64        `json:"zb,omitempty"`
	Heads      int          `json:"heads,omitempty"`
	LNDim      int          `json:"ln_dim,omitempty"`
	LNK        int64        `json:"ln_k,omitempty"`
	LNFrac     int          `json:"ln_frac,omitempty"`
	LNEps      int64        `json:"ln_eps,omitempty"`
	Gelu       *LUTSpec     `json:"gelu,omitempty"`
	Softmax    *SoftmaxSpec `json:"softmax,omitempty"`
}

// LUTSpec serializes an integer lookup table (input domain plus the
// table codes; the output range lives in the instruction's clamp
// fields and is validated against every entry at load time).
type LUTSpec struct {
	InMin    int64   `json:"in_min"`
	Table    []int64 `json:"table"`
	OutScale float32 `json:"out_scale,omitempty"`
}

// SoftmaxSpec serializes the integer softmax: the UQ1.15 exponential
// table over max-subtracted logit codes and the probability code width.
type SoftmaxSpec struct {
	ExpInMin int64   `json:"exp_in_min"`
	ExpTable []int64 `json:"exp_table"`
	OutBits  int     `json:"out_bits"`
}

// CkptTensor is one named integer tensor.
type CkptTensor struct {
	Shape []int   `json:"shape"`
	Width int     `json:"width_bits"`
	Data  []int64 `json:"data"`
}

// NewCheckpoint builds a checkpoint from named tensors with per-tensor
// widths (weights use the weight precision; scaler entries use 16/32).
func NewCheckpoint(tensors map[string]*tensor.IntTensor, widths map[string]int) *Checkpoint {
	ck := &Checkpoint{Format: "torch2chip-int-v1", Tensors: map[string]CkptTensor{}}
	for name, t := range tensors {
		w := 32
		if ww, ok := widths[name]; ok {
			w = ww
		}
		ck.Tensors[name] = CkptTensor{Shape: append([]int(nil), t.Shape...), Width: w, Data: append([]int64(nil), t.Data...)}
	}
	return ck
}

// WriteJSON serializes the checkpoint.
func (c *Checkpoint) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadJSON parses a checkpoint.
func ReadJSON(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	if c.Format != "torch2chip-int-v1" {
		return nil, fmt.Errorf("export: unknown checkpoint format %q", c.Format)
	}
	return &c, nil
}

// Tensor reconstructs a named tensor from the checkpoint.
func (c *Checkpoint) Tensor(name string) (*tensor.IntTensor, error) {
	ct, ok := c.Tensors[name]
	if !ok {
		return nil, fmt.Errorf("export: tensor %q not in checkpoint", name)
	}
	return tensor.IntFromSlice(append([]int64(nil), ct.Data...), ct.Shape...), nil
}

// Names returns the sorted tensor names.
func (c *Checkpoint) Names() []string {
	names := make([]string, 0, len(c.Tensors))
	for n := range c.Tensors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InputTensor is a float tensor payload file: one serving request for
// the t2c serve subcommand (shape [C,H,W] or [1,C,H,W]).
type InputTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

// WriteInputJSON serializes a float tensor as a serving input file.
func WriteInputJSON(w io.Writer, shape []int, data []float32) error {
	return json.NewEncoder(w).Encode(InputTensor{Shape: shape, Data: data})
}

// ReadInputJSON parses a serving input file.
func ReadInputJSON(r io.Reader) (*InputTensor, error) {
	var t InputTensor
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	n := 1
	for _, s := range t.Shape {
		if s <= 0 {
			return nil, fmt.Errorf("export: bad input shape %v", t.Shape)
		}
		n *= s
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("export: input shape %v does not match %d values", t.Shape, len(t.Data))
	}
	return &t, nil
}

// Samples splits a (possibly batched) input payload into per-sample
// tensors of the given sample shape. Accepted layouts are exactly
// sample (one tensor) and [N, sample...] (a batch); anything else —
// including a transposed layout with a matching element count — is
// rejected so it cannot be silently misinterpreted.
func (t *InputTensor) Samples(sample []int) ([]*tensor.Tensor, error) {
	sh := t.Shape
	n := 1
	switch {
	case shapeEqual(sh, sample):
	case len(sh) == len(sample)+1 && shapeEqual(sh[1:], sample):
		n = sh[0]
	default:
		return nil, fmt.Errorf("export: input shape %v, want %v or [N,%v]", sh, sample, sample)
	}
	sampleN := len(t.Data) / n
	out := make([]*tensor.Tensor, n)
	for i := range out {
		data := append([]float32(nil), t.Data[i*sampleN:(i+1)*sampleN]...)
		out[i] = tensor.FromSlice(data, append([]int{1}, sample...)...)
	}
	return out, nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// QIntPack packs sub-byte codes densely (e.g. eight 4-bit codes in four
// bytes), the storage layout behind the "Model Size (MB)" accounting and
// the closest analogue of torch.qint packed tensors.
func QIntPack(t *tensor.IntTensor, widthBits int) ([]byte, error) {
	if widthBits < 1 || widthBits > 32 {
		return nil, fmt.Errorf("export: pack width %d unsupported", widthBits)
	}
	nbits := len(t.Data) * widthBits
	out := make([]byte, (nbits+7)/8)
	bit := 0
	for _, v := range t.Data {
		u, err := twosComplement(v, widthBits)
		if err != nil {
			return nil, err
		}
		for b := 0; b < widthBits; b++ {
			if u&(1<<b) != 0 {
				out[bit/8] |= 1 << (bit % 8)
			}
			bit++
		}
	}
	return out, nil
}

// QIntUnpack reverses QIntPack for n codes.
func QIntUnpack(data []byte, widthBits, n int) ([]int64, error) {
	need := (n*widthBits + 7) / 8
	if len(data) < need {
		return nil, fmt.Errorf("export: packed data too short: %d < %d", len(data), need)
	}
	out := make([]int64, n)
	bit := 0
	for i := 0; i < n; i++ {
		var u uint64
		for b := 0; b < widthBits; b++ {
			if data[bit/8]&(1<<(bit%8)) != 0 {
				u |= 1 << b
			}
			bit++
		}
		out[i] = fromTwosComplement(u, widthBits)
	}
	return out, nil
}
