package export

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"torch2chip/internal/tensor"
)

func randCodes(g *tensor.RNG, n, bits int) *tensor.IntTensor {
	t := tensor.NewInt(n)
	span := int64(1) << bits
	for i := range t.Data {
		t.Data[i] = g.Int63()%span - span/2
	}
	return t
}

func TestHexRoundTrip(t *testing.T) {
	for _, bits := range []int{2, 4, 8, 12, 16, 32} {
		g := tensor.NewRNG(int64(bits))
		codes := randCodes(g, 100, bits)
		var buf bytes.Buffer
		if err := WriteHex(&buf, codes, bits); err != nil {
			t.Fatalf("%d bits: %v", bits, err)
		}
		back, err := ReadHex(&buf, bits)
		if err != nil {
			t.Fatalf("%d bits: %v", bits, err)
		}
		for i := range codes.Data {
			if back[i] != codes.Data[i] {
				t.Fatalf("%d bits: [%d] %d != %d", bits, i, back[i], codes.Data[i])
			}
		}
	}
}

func TestHexTokenWidth(t *testing.T) {
	// 4-bit codes must be exactly one hex digit; 8-bit two digits.
	codes := tensor.IntFromSlice([]int64{-1, 0, 7, -8}, 4)
	var buf bytes.Buffer
	if err := WriteHex(&buf, codes, 4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	want := []string{"f", "0", "7", "8"}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("line %d = %q, want %q", i, l, want[i])
		}
	}
}

func TestHexRejectsOutOfRange(t *testing.T) {
	codes := tensor.IntFromSlice([]int64{200}, 1)
	var buf bytes.Buffer
	if err := WriteHex(&buf, codes, 8); err == nil {
		t.Fatal("200 does not fit signed 8-bit; expected error")
	}
}

func TestHexSkipsComments(t *testing.T) {
	in := "// memory init\n0a\n\nff\n"
	vals, err := ReadHex(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 10 || vals[1] != -1 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestBinRoundTrip(t *testing.T) {
	g := tensor.NewRNG(3)
	codes := randCodes(g, 64, 6)
	var buf bytes.Buffer
	if err := WriteBin(&buf, codes, 6); err != nil {
		t.Fatal(err)
	}
	// Every token is exactly 6 characters of 0/1.
	for _, line := range strings.Fields(buf.String()) {
		if len(line) != 6 || strings.Trim(line, "01") != "" {
			t.Fatalf("bad binary token %q", line)
		}
	}
	back, err := ReadBin(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes.Data {
		if back[i] != codes.Data[i] {
			t.Fatalf("[%d] %d != %d", i, back[i], codes.Data[i])
		}
	}
}

func TestRawRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		for _, bits := range []int{8, 16, 32} {
			codes := randCodes(g, 33, bits)
			var buf bytes.Buffer
			if err := WriteRaw(&buf, codes, bits); err != nil {
				return false
			}
			if buf.Len() != 33*byteWidth(bits) {
				return false
			}
			back, err := ReadRaw(&buf, bits, 33)
			if err != nil {
				return false
			}
			for i := range codes.Data {
				if back[i] != codes.Data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := tensor.NewRNG(5)
	tensors := map[string]*tensor.IntTensor{
		"conv.weight":  randCodes(g, 72, 4).Reshape(8, 9),
		"scaler.scale": randCodes(g, 8, 16),
	}
	ck := NewCheckpoint(tensors, map[string]int{"conv.weight": 4, "scaler.scale": 16})
	var buf bytes.Buffer
	if err := ck.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, err := back.Tensor("conv.weight")
	if err != nil {
		t.Fatal(err)
	}
	if w.Shape[0] != 8 || w.Shape[1] != 9 {
		t.Fatalf("shape %v", w.Shape)
	}
	for i := range w.Data {
		if w.Data[i] != tensors["conv.weight"].Data[i] {
			t.Fatalf("[%d] mismatch", i)
		}
	}
	if back.Tensors["conv.weight"].Width != 4 {
		t.Fatalf("width %d", back.Tensors["conv.weight"].Width)
	}
	if _, err := back.Tensor("missing"); err == nil {
		t.Fatal("expected error for missing tensor")
	}
	names := back.Names()
	if len(names) != 2 || names[0] != "conv.weight" {
		t.Fatalf("names %v", names)
	}
}

func TestCheckpointRejectsUnknownFormat(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"format":"other","tensors":{}}`)); err == nil {
		t.Fatal("expected format error")
	}
}

func TestQIntPackDensity(t *testing.T) {
	g := tensor.NewRNG(6)
	codes := randCodes(g, 16, 4)
	packed, err := QIntPack(codes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 8 { // 16 × 4 bits = 64 bits = 8 bytes
		t.Fatalf("packed size %d, want 8", len(packed))
	}
	back, err := QIntUnpack(packed, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes.Data {
		if back[i] != codes.Data[i] {
			t.Fatalf("[%d] %d != %d", i, back[i], codes.Data[i])
		}
	}
}

func TestQIntPackOddWidthProperty(t *testing.T) {
	// Odd widths like 3 or 5 bits must pack/unpack exactly too.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		for _, bits := range []int{2, 3, 5, 7} {
			codes := randCodes(g, 21, bits)
			packed, err := QIntPack(codes, bits)
			if err != nil {
				return false
			}
			back, err := QIntUnpack(packed, bits, 21)
			if err != nil {
				return false
			}
			for i := range codes.Data {
				if back[i] != codes.Data[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQIntUnpackShortBuffer(t *testing.T) {
	if _, err := QIntUnpack([]byte{0}, 8, 4); err == nil {
		t.Fatal("expected short-buffer error")
	}
}

func TestTwosComplementEdges(t *testing.T) {
	for _, tc := range []struct {
		v     int64
		width int
		want  uint64
	}{
		{-1, 4, 0xf},
		{-8, 4, 0x8},
		{7, 4, 0x7},
		{-128, 8, 0x80},
		{127, 8, 0x7f},
	} {
		u, err := twosComplement(tc.v, tc.width)
		if err != nil {
			t.Fatal(err)
		}
		if u != tc.want {
			t.Fatalf("tc(%d,%d) = %x, want %x", tc.v, tc.width, u, tc.want)
		}
		if back := fromTwosComplement(u, tc.width); back != tc.v {
			t.Fatalf("round trip %d → %d", tc.v, back)
		}
	}
}
