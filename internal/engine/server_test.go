package engine_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/tensor"
)

// blockingKernels returns a registry whose conv kernel parks on release
// (signalling gate on entry), so tests can hold a worker mid-execute and
// fill the admission pipeline deterministically.
func blockingKernels(gate chan struct{}, release chan struct{}) *engine.Registry {
	reg := engine.FastKernels()
	base, _ := reg.Lookup(engine.OpConv)
	reg.Register(engine.OpConv, func(ex *engine.Executor, idx int, it *engine.Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		select {
		case gate <- struct{}{}:
		default:
		}
		<-release
		base(ex, idx, it, in, out)
	})
	return reg
}

func TestServerValidatesSampleShape(t *testing.T) {
	g := tensor.NewRNG(41)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The documented forms must both work.
	if _, err := srv.Infer(g.Uniform(0, 1, 3, 8, 8)); err != nil {
		t.Fatalf("sample-shaped input rejected: %v", err)
	}
	if _, err := srv.Infer(g.Uniform(0, 1, 1, 3, 8, 8)); err != nil {
		t.Fatalf("[1,sample...] input rejected: %v", err)
	}
	// Same element count, different layout: must be rejected, not
	// silently misinferred.
	if _, err := srv.Infer(g.Uniform(0, 1, 8, 8, 3)); err == nil {
		t.Fatal("transposed-layout input with matching Numel was accepted")
	}
	if _, err := srv.Infer(g.Uniform(0, 1, 192)); err == nil {
		t.Fatal("flat input with matching Numel was accepted")
	}
	if _, err := srv.Infer(g.Uniform(0, 1, 2, 3, 8, 8)); err == nil {
		t.Fatal("batch-of-two input was accepted")
	}
}

func TestServerTryInferQueueFull(t *testing.T) {
	g := tensor.NewRNG(42)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)

	gate := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: 1, QueueSize: 1, Kernels: blockingKernels(gate, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	// LIFO defers: unblock the kernel, let every request finish, then
	// Close — a blocked sender holds the server's read lock, so Close
	// must come last even when the test bails out early.
	defer wg.Wait()
	defer unblock()

	// Hold the single worker mid-execute, then oversubscribe the
	// pipeline (worker + batches slot + batcher's hand + queue = 4
	// slots) so the queue stays full until the kernel is released. One
	// prebuilt input is shared read-only: the RNG is not thread-safe.
	x := g.Uniform(0, 1, 3, 8, 8)
	infer := func() {
		defer wg.Done()
		if _, err := srv.Infer(x); err != nil {
			t.Errorf("blocking Infer failed: %v", err)
		}
	}
	wg.Add(1)
	go infer()
	<-gate
	const extra = 7
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go infer()
	}

	// TryInfer must fast-fail once the queue is full. Polls that sneak
	// in while the pipeline is still filling are admitted and park on
	// their reply, so each poll runs in its own goroutine; admitted
	// polls complete after release and count as served requests.
	deadline := time.Now().Add(10 * time.Second)
	sawFull := false
	for !sawFull {
		if time.Now().After(deadline) {
			t.Error("TryInfer never reported a full queue on a saturated server")
			return
		}
		res := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.TryInfer(x, time.Time{})
			if err != nil && !errors.Is(err, engine.ErrQueueFull) {
				t.Errorf("TryInfer returned unexpected error: %v", err)
			}
			res <- err
		}()
		select {
		case err := <-res:
			sawFull = errors.Is(err, engine.ErrQueueFull)
		case <-time.After(200 * time.Millisecond):
			// Admitted and parked; it finishes after release.
		}
	}

	unblock()
	wg.Wait()
	st := srv.Stats()
	if st.Rejected < 1 {
		t.Fatalf("stats rejected = %d, want ≥ 1", st.Rejected)
	}
	if st.Requests < 1+extra {
		t.Fatalf("stats requests = %d, want ≥ %d (no admitted request may be dropped)", st.Requests, 1+extra)
	}
}

func TestServerDeadlineDropsUnexecuted(t *testing.T) {
	g := tensor.NewRNG(43)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)

	gate := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: 1, Kernels: blockingKernels(gate, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	x1, x2 := g.Uniform(0, 1, 3, 8, 8), g.Uniform(0, 1, 3, 8, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Infer(x1); err != nil {
			t.Errorf("blocking Infer failed: %v", err)
		}
	}()
	<-gate

	// Queued behind the held worker with a deadline that expires while it
	// waits: the worker must drop it unexecuted.
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := srv.TryInfer(x2, time.Now().Add(20*time.Millisecond))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-errc; !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("expired request returned %v, want ErrDeadlineExceeded", err)
	}
	st := srv.Stats()
	if st.Expired != 1 {
		t.Fatalf("stats expired = %d, want 1", st.Expired)
	}
	if st.Requests != 1 {
		t.Fatalf("stats requests = %d, want 1", st.Requests)
	}
}

// TestServerArenaBoundedUnderRaggedLoad: a single worker hit with every
// ragged batch size 1..MaxBatch must build executors only for the
// power-of-two buckets, so its arena footprint is bounded by the bucket
// plans — not by one arena per distinct batch size.
func TestServerArenaBoundedUnderRaggedLoad(t *testing.T) {
	g := tensor.NewRNG(91)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	const maxBatch = 8
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: maxBatch, BatchWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drive bursts of every size 1..MaxBatch; each burst is sent
	// concurrently and awaited, so the batcher coalesces it into one
	// batch of exactly that (ragged) size.
	for size := 1; size <= maxBatch; size++ {
		inputs := make([]*tensor.Tensor, size)
		for i := range inputs {
			inputs[i] = g.Uniform(0, 1, 1, 3, 8, 8)
		}
		var wg sync.WaitGroup
		for i := 0; i < size; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := srv.Infer(inputs[i]); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
	}

	// Bound: the sum of the power-of-two bucket plans (1, 2, 4, 8) for
	// the single worker. One arena per distinct ragged size would exceed
	// this (sizes 3, 5, 6, 7 would add four more arenas).
	var bound int64
	for b := 1; b <= maxBatch; b <<= 1 {
		plan, err := prog.PlanBuffers([]int{b, 3, 8, 8})
		if err != nil {
			t.Fatal(err)
		}
		bound += plan.ArenaBytes
	}
	got := srv.MemStats().ArenaBytes
	t.Logf("arena bytes after ragged 1..%d load: %d (pow2-bucket bound %d)", maxBatch, got, bound)
	if got > bound {
		t.Fatalf("arena bytes %d exceed the power-of-two bucket bound %d: ragged sizes are building their own executors", got, bound)
	}
}

func TestServerOptionsBoundKernelThreads(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	// Defaults must never oversubscribe: Workers×KernelThreads ≤ GOMAXPROCS.
	d := engine.ServerOptions{}.WithDefaults()
	if d.KernelThreads < 1 {
		t.Fatalf("default KernelThreads %d < 1", d.KernelThreads)
	}
	if d.Workers*d.KernelThreads > maxp {
		t.Fatalf("default Workers(%d)×KernelThreads(%d) oversubscribes GOMAXPROCS=%d",
			d.Workers, d.KernelThreads, maxp)
	}
	// An explicitly oversubscribed config is trimmed on the kernel-thread
	// side, down to the floor of 1 thread per worker.
	o := engine.ServerOptions{Workers: 2 * maxp, KernelThreads: 2 * maxp}.WithDefaults()
	if o.Workers != 2*maxp {
		t.Fatalf("explicit Workers rewritten: %d", o.Workers)
	}
	if o.KernelThreads != 1 {
		t.Fatalf("oversubscribed KernelThreads resolved to %d, want floor 1", o.KernelThreads)
	}
	// A config that fits is kept verbatim.
	k := engine.ServerOptions{Workers: 1, KernelThreads: maxp}.WithDefaults()
	if k.KernelThreads != maxp {
		t.Fatalf("fitting KernelThreads rewritten: %d, want %d", k.KernelThreads, maxp)
	}
}

// TestServerOversubscribedDrains is the regression test for the worker
// budget: a config whose worker × kernel-thread product far exceeds the
// machine must still serve every request correctly and drain on Close,
// with each executor's parallelism clamped instead of the replicas
// multiplying into the pool.
func TestServerOversubscribedDrains(t *testing.T) {
	g := tensor.NewRNG(47)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)

	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers:       8,
		KernelThreads: 8,
		MaxBatch:      4,
		Kernels:       engine.FastKernels(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a plain single-sample executor on the same registry.
	ref, err := engine.NewExecutor(prog, []int{1, 3, 8, 8}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	inputs := make([]*tensor.Tensor, n)
	want := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = g.Uniform(0, 1, 3, 8, 8)
		y, err := ref.Execute(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			y, err := srv.Infer(inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			for j := range y.Data {
				if y.Data[j] != want[i].Data[j] {
					t.Errorf("request %d diverges from the reference executor at %d", i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	srv.Close() // must drain, not deadlock
	if got := srv.Stats().Requests; got != n {
		t.Fatalf("served %d of %d requests", got, n)
	}
}
