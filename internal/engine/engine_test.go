package engine_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// compile runs prepare→calibrate→convert→lower on a model over synthetic
// CIFAR data and returns the interpreter and the compiled program.
func compile(t testing.TB, model nn.Layer, calib *data.Dataset) (*fuse.IntModel, *engine.Program) {
	t.Helper()
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return cm.Int, cm.Prog
}

// smallCNN is a conv-bn-relu ×2 → pool → linear chain with realistic BN
// statistics.
func smallCNN(g *tensor.RNG) nn.Layer {
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 8, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		nn.NewConv2d(g, 8, 8, 3, 2, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 8, 10, true),
	)
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	return model
}

// assertBitIdentical checks that the program reproduces the interpreter's
// output codes and logits exactly on batch inputs.
func assertBitIdentical(t *testing.T, im *fuse.IntModel, prog *engine.Program, x *tensor.Tensor, reg *engine.Registry) {
	t.Helper()
	ex, err := engine.NewExecutor(prog, x.Shape, engine.WithKernels(reg))
	if err != nil {
		t.Fatal(err)
	}
	wantCodes := im.ForwardCodes(x)
	gotCodes, err := ex.ExecuteCodes(im.InQuant.Quantize(x), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCodes.Data) != len(gotCodes.Data) {
		t.Fatalf("code count %d vs %d", len(gotCodes.Data), len(wantCodes.Data))
	}
	for i := range wantCodes.Data {
		if wantCodes.Data[i] != gotCodes.Data[i] {
			t.Fatalf("code[%d] = %d, interpreter %d", i, gotCodes.Data[i], wantCodes.Data[i])
		}
	}
	want := im.Forward(x)
	got, err := ex.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("logit[%d] = %v, interpreter %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestExecuteBitIdenticalSmallCNN(t *testing.T) {
	g := tensor.NewRNG(1)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	// The synthetic dataset is 32×32; smallCNN was warmed on 8×8 — both
	// work since the model is input-size agnostic until the flatten.
	im, prog := compile(t, model, calib)
	x := g.Uniform(0, 1, 4, 3, 8, 8)
	t.Run("fast", func(t *testing.T) { assertBitIdentical(t, im, prog, x, engine.FastKernels()) })
	t.Run("reference", func(t *testing.T) { assertBitIdentical(t, im, prog, x, engine.ReferenceKernels()) })
}

func TestExecuteBitIdenticalZoo(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	for _, tc := range []struct {
		name  string
		build func(g *tensor.RNG) nn.Layer
	}{
		{"resnet20", func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet20(10)) }},
		{"resnet18", func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet18(10)) }},
		{"resnet50", func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet50(10)) }},
		{"mobilenet", func(g *tensor.RNG) nn.Layer {
			return models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 4})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(7)
			model := tc.build(g)
			// Realistic BN running statistics before freezing.
			x, _ := calib.Batch([]int{0, 1, 2, 3})
			model.Forward(x)
			im, prog := compile(t, model, calib)
			for _, batch := range []int{1, 3} {
				xb := g.Uniform(0, 1, batch, 3, 32, 32)
				assertBitIdentical(t, im, prog, xb, engine.FastKernels())
			}
		})
	}
}

// The ViT deploy path is covered by the zoo-parity suite in vit_test.go:
// since PR 5, Convert lowers attention/LayerNorm/GELU/softmax to
// integer-only layers and the compiled program must match
// IntModel.Forward bit for bit (TestViTZooParity replaces the old
// TestViTNotLowerable, which asserted the compile failed).

func TestPlannerReusesBuffers(t *testing.T) {
	g := tensor.NewRNG(11)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := models.NewResNet(g, models.ResNet20(10))
	x, _ := calib.Batch([]int{0, 1})
	model.Forward(x)
	_, prog := compile(t, model, calib)
	plan, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes >= plan.NaiveBytes {
		t.Fatalf("planned %d bytes not smaller than naive %d", plan.ArenaBytes, plan.NaiveBytes)
	}
	// A deep residual chain should reuse aggressively: expect ≥2× saving.
	if 2*plan.ArenaBytes > plan.NaiveBytes {
		t.Errorf("planned %d vs naive %d: expected ≥2× reuse", plan.ArenaBytes, plan.NaiveBytes)
	}
	// Every buffer must fit inside its dtype's arena.
	for b, off := range plan.Offsets {
		if off < 0 {
			continue
		}
		if end := off + tensor.Numel(plan.Shapes[b]); end > plan.ArenaElems[plan.DTypes[b]] {
			t.Fatalf("buffer %d (%s) [%d,%d) exceeds arena %d", b, plan.DTypes[b], off, end, plan.ArenaElems[plan.DTypes[b]])
		}
	}
}

func TestPlannerRejectsBadShape(t *testing.T) {
	g := tensor.NewRNG(12)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	if _, err := prog.PlanBuffers([]int{1, 3}); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestExecutorRejectsWrongInput(t *testing.T) {
	g := tensor.NewRNG(13)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	ex, err := engine.NewExecutor(prog, []int{2, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(g.Uniform(0, 1, 4, 3, 8, 8)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := tensor.NewRNG(21)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := models.NewResNet(g, models.ResNet20(10))
	x, _ := calib.Batch([]int{0, 1})
	model.Forward(x)

	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize: program spec + the interpreter's tensor table (weight
	// names are shared between the two).
	cm.Prog.InShape = []int{3, 32, 32}
	ck := export.NewCheckpoint(cm.Int.IntTensors(), nil)
	ck.Program = cm.Prog.Spec()
	var buf bytes.Buffer
	if err := ck.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := export.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := engine.FromCheckpoint(ck2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog2.InShape) != 3 || prog2.InShape[0] != 3 || prog2.InShape[1] != 32 || prog2.InShape[2] != 32 {
		t.Fatalf("round-tripped InShape = %v, want [3 32 32]", prog2.InShape)
	}

	xb := g.Uniform(0, 1, 2, 3, 32, 32)
	ex1, err := engine.NewExecutor(cm.Prog, xb.Shape)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := engine.NewExecutor(prog2, xb.Shape)
	if err != nil {
		t.Fatal(err)
	}
	y1, err := ex1.Execute(xb)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := ex2.Execute(xb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("round-tripped logit[%d] = %v, want %v", i, y2.Data[i], y1.Data[i])
		}
	}
	// And the round-tripped program still matches the interpreter.
	assertBitIdentical(t, cm.Int, prog2, xb, engine.FastKernels())
}

func TestFromCheckpointRejectsMissingProgram(t *testing.T) {
	ck := export.NewCheckpoint(map[string]*tensor.IntTensor{}, nil)
	if _, err := engine.FromCheckpoint(ck); err == nil {
		t.Fatal("expected error for checkpoint without program section")
	}
}

func TestServerMatchesDirectExecution(t *testing.T) {
	g := tensor.NewRNG(31)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	im, prog := compile(t, model, calib)

	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 24
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = g.Uniform(0, 1, 1, 3, 8, 8)
	}
	results := make([]*tensor.Tensor, n)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			y, err := srv.Infer(inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = y
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if results[i] == nil {
			t.Fatalf("request %d returned no result", i)
		}
		want := im.Forward(inputs[i])
		for j := range want.Data {
			if results[i].Data[j] != want.Data[j] {
				t.Fatalf("request %d logit %d = %v, interpreter %v", i, j, results[i].Data[j], want.Data[j])
			}
		}
	}
	st := srv.Stats()
	if st.Requests != n {
		t.Fatalf("stats requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= n {
		t.Errorf("no coalescing: %d batches for %d requests", st.Batches, n)
	}
}

func TestServerFullBatchDispatchesImmediately(t *testing.T) {
	// Regression: a full batch must dispatch the moment it fills, not on
	// the next timer tick. With BatchWait set absurdly high, 2×MaxBatch
	// concurrent requests only complete quickly if the batcher flushes
	// full batches without consulting the timer.
	g := tensor.NewRNG(34)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 2, MaxBatch: 4, BatchWait: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 8 // exactly two full batches
	inputs := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = g.Uniform(0, 1, 1, 3, 8, 8)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(inputs[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("full batches took %s; the batcher waited on the flush timer", el)
	}
	if st := srv.Stats(); st.Requests != n {
		t.Fatalf("served %d requests, want %d", st.Requests, n)
	}
}

func TestServerRejectsAfterClose(t *testing.T) {
	g := tensor.NewRNG(32)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Infer(g.Uniform(0, 1, 1, 3, 8, 8)); err == nil {
		t.Fatal("expected error after Close")
	}
	srv.Close() // double close must be safe
}

func TestKernelRegistryPluggable(t *testing.T) {
	g := tensor.NewRNG(33)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	_, prog := compile(t, model, calib)
	// A registry missing a required kind must be rejected up front.
	reg := engine.NewRegistry()
	if _, err := engine.NewExecutor(prog, []int{1, 3, 8, 8}, engine.WithKernels(reg)); err == nil {
		t.Fatal("expected missing-kernel error")
	}
	// A custom kernel must be picked up: count conv invocations.
	calls := 0
	custom := engine.FastKernels()
	base, _ := custom.Lookup(engine.OpConv)
	custom.Register(engine.OpConv, func(ex *engine.Executor, idx int, it *engine.Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		calls++
		base(ex, idx, it, in, out)
	})
	ex, err := engine.NewExecutor(prog, []int{1, 3, 8, 8}, engine.WithKernels(custom))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(g.Uniform(0, 1, 1, 3, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("custom conv kernel called %d times, want 2", calls)
	}
}
