package engine

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// KernelFunc executes one instruction: read the input buffers, write the
// output buffer. idx is the instruction's position in the program —
// kernels use it to cache per-instruction state (tensor headers, shape
// math) across calls via Executor.KernelState, which is how the fast
// kernels reach zero steady-state allocations. Kernels must be
// bit-identical to the corresponding IntLayer.Forward — integer
// arithmetic makes this checkable exactly — and must not retain
// references to the buffers (arena storage is reused).
type KernelFunc func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor)

// PrepFunc builds per-instruction kernel state at executor bind time:
// prepacked weight panels, epilogue constant vectors, cached im2col
// index maps, scratch reservations. The returned state lands in the
// executor's KernelState slot before the first Execute, so the steady
// state runs with zero shape math and zero allocation.
type PrepFunc func(ex *Executor, idx int, it *Instr) (any, error)

// Registry maps op kinds to kernels (and optional bind-time prep hooks).
// An Executor copies the table it is given, so concurrent servers never
// observe later mutation. A registry additionally declares whether its
// kernel set understands narrow typed buffers (typed); installing any
// custom kernel clears the flag, so third-party kernels — which read
// buffers through the legacy `.Data` int64 view — always execute
// against I64-planned arenas.
type Registry struct {
	kernels map[OpKind]KernelFunc
	preps   map[OpKind]PrepFunc
	typed   bool
	swar    bool
	sparse  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kernels: map[OpKind]KernelFunc{}, preps: map[OpKind]PrepFunc{}}
}

// Register installs (or replaces) the kernel for kind. Any prep hook
// registered for kind is kept, so wrapping a kernel (e.g. to count
// calls) does not lose its prepacked state. The registry drops to
// I64-planned buffers: a custom kernel cannot be assumed dtype-aware.
func (r *Registry) Register(kind OpKind, k KernelFunc) {
	r.kernels[kind] = k
	r.typed = false
	r.swar = false
	r.sparse = false
}

// RegisterPrep installs the bind-time prep hook for kind (and, like
// Register, pins the registry to I64 buffers).
func (r *Registry) RegisterPrep(kind OpKind, p PrepFunc) {
	r.preps[kind] = p
	r.typed = false
	r.swar = false
	r.sparse = false
}

// TypedStorage reports whether executors built from this registry plan
// narrow per-dtype arenas.
func (r *Registry) TypedStorage() bool { return r.typed }

// Lookup returns the kernel for kind.
func (r *Registry) Lookup(kind OpKind) (KernelFunc, bool) {
	k, ok := r.kernels[kind]
	return k, ok
}

// lookupPrep returns the prep hook for kind.
func (r *Registry) lookupPrep(kind OpKind) (PrepFunc, bool) {
	p, ok := r.preps[kind]
	return p, ok
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	for k, v := range r.kernels {
		c.kernels[k] = v
	}
	for k, v := range r.preps {
		c.preps[k] = v
	}
	c.typed = r.typed
	c.swar = r.swar
	c.sparse = r.sparse
	return c
}

// addShiftClamp is the residual-add epilogue shared by every kernel:
// shift back with round-half-away (when shift > 0) and clamp. It mirrors
// fuse.IntResidual.Forward exactly.
func addShiftClamp(v int64, shift int, half, lo, hi int64) int64 {
	if shift > 0 {
		if v >= 0 {
			v = (v + half) >> uint(shift)
		} else {
			v = -((-v + half) >> uint(shift))
		}
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// addHalfOf returns the rounding constant of a shift-back.
func addHalfOf(shift int) int64 {
	if shift > 0 {
		return 1 << uint(shift-1)
	}
	return 0
}

// fusedConsts unpacks an instruction's folded epilogue — the optional
// FusedRescale stage and the optional FusedAdd/shift/clamp — into plain
// scalars. It is the single implementation of the fused value pipeline:
// every kernel path (reference, im2col, prepacked) finishes elements
// through finish(), so a semantic change cannot drift between them.
type fusedConsts struct {
	hasRe                bool
	reSfx, reBfx, reHalf int64
	reFrac               uint
	reZero, reLo, reHi   int64

	hasAdd       bool
	addShift     int
	addHalf      int64
	addLo, addHi int64
}

func fusedConstsOf(it *Instr) fusedConsts {
	fc := fusedConsts{}
	if re := it.FusedRescale; re != nil {
		fc.hasRe = true
		fc.reHalf, fc.reFrac, fc.reZero, fc.reLo, fc.reHi = re.Consts()
		// Bare rescales apply unified scaling (channel 0), matching
		// MulQuant.ApplyTo with chDim < 0.
		fc.reSfx, fc.reBfx = int64(re.ScaleFx[0]), int64(re.BiasFx[0])
	}
	if it.FusedAdd {
		fc.hasAdd = true
		fc.addShift = it.Shift
		fc.addHalf = addHalfOf(it.Shift)
		fc.addLo, fc.addHi = it.ClampLo, it.ClampHi
	}
	return fc
}

func (fc *fusedConsts) active() bool { return fc.hasRe || fc.hasAdd }

// finish runs one already-requantized value through the folded epilogue.
// add is indexed by di and read here — before the caller writes dst[di]
// — which is what the planner's in-place placement relies on.
func (fc *fusedConsts) finish(q int64, add []int64, di int) int64 {
	if fc.hasRe {
		q = intmath.Requantize(q, fc.reSfx, fc.reBfx, fc.reHalf, fc.reFrac, fc.reZero, fc.reLo, fc.reHi)
	}
	if fc.hasAdd {
		q = addShiftClamp(q+add[di], fc.addShift, fc.addHalf, fc.addLo, fc.addHi)
	}
	return q
}

// applyFusedEpilogue finishes an instruction's already-requantized codes
// src through its folded epilogue, writing dst. Every element is read
// (src[i], add[i]) before dst[i] is written, so dst may alias src or
// add.
func applyFusedEpilogue(it *Instr, dst, src, add []int64) {
	fc := fusedConstsOf(it)
	if !fc.active() {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		return
	}
	for i, v := range src {
		dst[i] = fc.finish(v, add, i)
	}
}

// fusedAddOperand returns the fused residual branch's codes (nil when
// the instruction carries no FusedAdd).
func fusedAddOperand(it *Instr, in []*tensor.IntTensor) []int64 {
	if !it.FusedAdd {
		return nil
	}
	return in[len(in)-1].Data
}

// ReferenceKernels returns kernels that wrap the interpreter's per-layer
// logic directly (allocating like it does); they are the oracle the fast
// kernels are tested against. They honor fused epilogues, so optimized
// programs can run under the reference registry for parity checks.
func ReferenceKernels() *Registry {
	r := NewRegistry()
	r.Register(OpConv, func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		acc := intmath.Conv2dInt(in[0], it.W, it.InZero, it.P)
		it.Scaler.ApplyTo(acc, acc, 1) // in place: acc is scratch, out may alias the fused branch
		applyFusedEpilogue(it, out.Data, acc.Data, fusedAddOperand(it, in))
	})
	r.Register(OpLinear, func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		xs := in[0]
		if it.InZero != 0 {
			xs = in[0].Clone()
			for i := range xs.Data {
				xs.Data[i] -= it.InZero
			}
		}
		if len(xs.Shape) != 2 {
			k := xs.Shape[len(xs.Shape)-1]
			xs = xs.Reshape(xs.Numel()/k, k)
		}
		acc := intmath.MatMulIntT(xs, it.W)
		it.Scaler.ApplyTo(acc, acc, 1)
		applyFusedEpilogue(it, out.Data, acc.Data, fusedAddOperand(it, in))
	})
	r.Register(OpAvgPool, kernelAvgPool)
	r.Register(OpFlatten, kernelFlattenNop)
	r.Register(OpRescale, kernelRescale)
	r.Register(OpAdd, kernelResAdd)
	registerViTKernels(r)
	return r
}

// FastKernels returns the default kernel set: conv and linear bind
// prepacked state at executor construction (weight panels, cached im2col
// index maps, epilogue constant vectors) and run tiled integer GEMM with
// per-slot scratch, so steady-state execution does no shape math and no
// allocation. Grouped/depthwise convolution takes a dedicated
// register-blocked direct kernel. The set is dtype-aware: executors plan
// narrow per-dtype arenas, conv/linear run the int8-panel GEMM with
// int32 accumulation where the program's value ranges permit, and odd
// widths fall back to the I64 kernels per instruction.
// Where the storage pass additionally proves the SWAR lane bound, dense
// conv/linear run the lane-packed microkernel (two output channels per
// 64-bit accumulator word over byte-gathered activation panels).
func FastKernels() *Registry {
	r := ReferenceKernels().Clone()
	r.Register(OpConv, kernelConvPacked)
	r.RegisterPrep(OpConv, prepConv)
	r.Register(OpLinear, kernelLinearPacked)
	r.RegisterPrep(OpLinear, prepLinear)
	r.RegisterPrep(OpMatMul, prepMatMul)
	r.typed = true
	r.swar = true
	r.sparse = true
	return r
}

// FastKernelsNoSwar is FastKernels with the SWAR microkernel disabled:
// the PR-5 typed int32-panel configuration, kept as the measured baseline
// the lane-packed path is compared against (`fused+prepacked` bench
// rows).
func FastKernelsNoSwar() *Registry {
	r := FastKernels()
	r.swar = false
	return r
}

// FastKernelsI64 is FastKernels pinned to I64 storage: the same fused
// prepacked kernels over plain int64 arenas — the PR-2 configuration,
// kept as the measured baseline typed storage is compared against.
func FastKernelsI64() *Registry {
	r := FastKernels()
	r.typed = false
	r.swar = false
	r.sparse = false
	return r
}

// FastKernelsNoSparse is FastKernels with sparsity-aware binding
// disabled: pruned weights run the dense typed/SWAR kernels over the
// full K range — the measured baseline the zero-panel skipping and
// N:M-packed paths are compared against (`fused+prepacked+dense` bench
// rows).
func FastKernelsNoSparse() *Registry {
	r := FastKernels()
	r.sparse = false
	return r
}

// Im2ColKernels returns the PR-1 fast path — full im2col materialization
// plus blocked GEMM, lazy first-call state — kept as the measured
// baseline the prepacked kernels are compared against in the bench
// harness.
func Im2ColKernels() *Registry {
	r := ReferenceKernels().Clone()
	r.Register(OpConv, kernelConvFast)
	r.Register(OpLinear, kernelLinearFast)
	return r
}

// defaultRegistry backs DefaultKernels; Register mutates it before any
// executor is built (init-time plugging).
var defaultRegistry = FastKernels()

// DefaultKernels returns the process-wide default kernel set.
func DefaultKernels() *Registry { return defaultRegistry }

// Register installs a kernel into the process-wide default set, keyed by
// op kind. Call before constructing executors or servers. Like
// Registry.Register, this pins the default set to I64 storage — custom
// kernels read buffers through the legacy `.Data` view.
func Register(kind OpKind, k KernelFunc) { defaultRegistry.Register(kind, k) }

// kernelConvFast lowers dense convolution onto im2col + blocked parallel
// GEMM; grouped convolution (MobileNet depthwise) takes a direct parallel
// per-(sample,channel) loop, where im2col would shred locality.
func kernelConvFast(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	pp := it.P
	if pp.Stride <= 0 {
		pp.Stride = 1
	}
	if pp.Groups <= 0 {
		pp.Groups = 1
	}
	if pp.Groups == 1 {
		kernelConvGEMM(ex, idx, it, in, out, pp)
		return
	}
	kernelConvGrouped(ex, it, in, out, pp)
}

// convState caches the im2col/GEMM tensor headers for one conv
// instruction; the backing scratch is rebound every call (it is shared
// across instructions and grow-only).
type convState struct {
	cols, wmat, prod tensor.IntTensor
}

func kernelConvGEMM(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor, pp tensor.ConvParams) {
	x := in[0]
	n, _, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	spatial := oh * ow
	colW := cg * kH * kW
	sp := ex.KernelState(idx)
	st, ok := (*sp).(*convState)
	if !ok {
		st = &convState{
			cols: tensor.IntTensor{Shape: []int{n * spatial, colW}},
			wmat: tensor.IntTensor{Shape: []int{o, colW}, Data: it.W.Data},
			prod: tensor.IntTensor{Shape: []int{n * spatial, o}},
		}
		*sp = st
	}
	st.cols.Data = ex.scratch(0, n*spatial*colW)
	st.prod.Data = ex.scratch(1, n*spatial*o)
	tensor.Im2ColIntTo(&st.cols, x, kH, kW, pp, it.InZero)
	tensor.MatMulIntTTo(&st.prod, &st.cols, &st.wmat)
	// Requantize straight out of the [n*spatial, o] GEMM layout into NCHW
	// planes: per output channel the scaler is constant, so each
	// (sample, channel) plane is one strided gather.
	prod := st.prod.Data
	scaler := it.Scaler
	fused := it.FusedRescale != nil || it.FusedAdd
	add := fusedAddOperand(it, in)
	tensor.ParallelForIntN(n*o, ex.maxPar, n*o*spatial >= 1<<15, func(job int) {
		ni, oc := job/o, job%o
		base := (ni*o + oc) * spatial
		dst := out.Data[base : base+spatial]
		if !fused {
			scaler.ApplyGather(dst, prod[ni*spatial*o+oc:], o, oc)
			return
		}
		var addSeg []int64
		if add != nil {
			addSeg = add[base : base+spatial]
		}
		epilogueGather(it, dst, prod[ni*spatial*o+oc:], o, oc, addSeg)
	})
}

// scalerConsts mirrors MulQuant.scaleAt using the exported fields
// (unified scaling collapses to entry 0).
func scalerConsts(m *intmath.MulQuant, ch int) (int64, int64) {
	if len(m.ScaleFx) == 1 {
		return int64(m.ScaleFx[0]), int64(m.BiasFx[0])
	}
	return int64(m.ScaleFx[ch]), int64(m.BiasFx[ch])
}

// epilogueGather requantizes one output plane straight out of a strided
// accumulator layout through the instruction's own scaler at channel oc,
// then the fused epilogue, writing dst densely. add is indexed like dst;
// every element reads src and add before writing dst, so dst may alias
// add (the planner's in-place fused-add placement).
func epilogueGather(it *Instr, dst, src []int64, stride, oc int, add []int64) {
	half, frac, zero, lo, hi := it.Scaler.Consts()
	sfx, bfx := scalerConsts(it.Scaler, oc)
	fc := fusedConstsOf(it)
	for i := range dst {
		q := intmath.Requantize(src[i*stride], sfx, bfx, half, frac, zero, lo, hi)
		dst[i] = fc.finish(q, add, i)
	}
}

func kernelConvGrouped(ex *Executor, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor, pp tensor.ConvParams) {
	x := in[0]
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	og := o / pp.Groups
	zx := it.InZero
	scaler := it.Scaler
	fused := it.FusedRescale != nil || it.FusedAdd
	add := fusedAddOperand(it, in)
	tensor.ParallelForIntN(n*o, ex.maxPar, n*o*oh*ow*cg*kH*kW >= 1<<15, func(job int) {
		ni, oc := job/o, job%o
		g := oc / og
		wBase := oc * cg * kH * kW
		base := (ni*o + oc) * oh * ow
		seg := out.Data[base : base+oh*ow]
		// A fused epilogue must finish each element in one read-then-write
		// step (the planner may alias out onto the fused branch); hoist
		// all epilogue constants out of the site loop.
		var fc fusedConsts
		var half, zero, lo, hi, sfx, bfx int64
		var frac uint
		var addSeg []int64
		if fused {
			half, frac, zero, lo, hi = scaler.Consts()
			sfx, bfx = scalerConsts(scaler, oc)
			fc = fusedConstsOf(it)
			if add != nil {
				addSeg = add[base : base+oh*ow]
			}
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s int64
				for ch := 0; ch < cg; ch++ {
					xBase := (ni*c + g*cg + ch) * h * w
					for ky := 0; ky < kH; ky++ {
						iy := oy*pp.Stride - pp.Padding + ky
						for kx := 0; kx < kW; kx++ {
							ix := ox*pp.Stride - pp.Padding + kx
							var xv int64
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								xv = x.Data[xBase+iy*w+ix]
							}
							s += (xv - zx) * it.W.Data[wBase+(ch*kH+ky)*kW+kx]
						}
					}
				}
				if fused {
					si := oy*ow + ox
					q := intmath.Requantize(s, sfx, bfx, half, frac, zero, lo, hi)
					seg[si] = fc.finish(q, addSeg, si)
				} else {
					seg[oy*ow+ox] = s
				}
			}
		}
		if !fused {
			// In-place requantize of the finished plane.
			scaler.ApplySeg(seg, seg, oc)
		}
	})
}

// linState caches the 2-D view, shifted-input, and accumulator headers
// for one linear instruction (inputs of rank > 2 run as row-major
// [rows, K] views).
type linState struct {
	view, shifted, acc tensor.IntTensor
}

func kernelLinearFast(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	k := x.Shape[len(x.Shape)-1]
	rows := x.Numel() / k
	sp := ex.KernelState(idx)
	st, ok := (*sp).(*linState)
	if !ok {
		st = &linState{
			view:    tensor.IntTensor{Shape: []int{rows, k}},
			shifted: tensor.IntTensor{Shape: []int{rows, k}},
			acc:     tensor.IntTensor{Shape: []int{rows, it.W.Shape[0]}},
		}
		*sp = st
	}
	st.view.Data = x.Data
	x2 := &st.view
	if it.InZero != 0 {
		st.shifted.Data = ex.scratch(0, len(x.Data))
		for i, v := range x.Data {
			st.shifted.Data[i] = v - it.InZero
		}
		x2 = &st.shifted
	}
	st.acc.Data = ex.scratch(1, rows*it.W.Shape[0])
	tensor.MatMulIntTTo(&st.acc, x2, it.W)
	if it.FusedRescale == nil && !it.FusedAdd {
		it.Scaler.ApplyTo(out, &st.acc, 1)
		return
	}
	epilogueRowMajor(it, out.Data, st.acc.Data, it.W.Shape[0], fusedAddOperand(it, in))
}

// epilogueRowMajor finishes a [rows, o] accumulator through the own
// scaler (per output channel) and the fused epilogue, element-aligned
// with dst and add, reading before writing (dst may alias add).
func epilogueRowMajor(it *Instr, dst, src []int64, o int, add []int64) {
	half, frac, zero, lo, hi := it.Scaler.Consts()
	fc := fusedConstsOf(it)
	for i, v := range src {
		sfx, bfx := scalerConsts(it.Scaler, i%o)
		q := intmath.Requantize(v, sfx, bfx, half, frac, zero, lo, hi)
		dst[i] = fc.finish(q, add, i)
	}
}

// elemChunk is the staging size of the chunked typed elementwise paths:
// narrow operands are widened into an int64 scratch chunk, the epilogue
// runs over the chunk, and the result narrows back into the output —
// three passes over a cache-resident block, which keeps the dtype
// dispatch out of the per-element loop.
const elemChunk = 4096

// allI64 reports whether an instruction's operands and output are all
// stored as legacy I64 buffers, enabling the pre-typed fast paths.
func allI64(in []*tensor.IntTensor, out *tensor.IntTensor) bool {
	if out.DType != tensor.I64 {
		return false
	}
	for _, t := range in {
		if t.DType != tensor.I64 {
			return false
		}
	}
	return true
}

// kernelAvgPool mirrors fuse.IntAvgPool.Forward (round-half-away integer
// mean), writing into the planned output.
func kernelAvgPool(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if !allI64(in, out) {
		kernelAvgPoolTyped(ex, it, in[0], out)
		return
	}
	x := in[0]
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if it.Kernel == 0 {
		cnt := int64(h * w)
		for i := 0; i < n*c; i++ {
			var s int64
			for _, v := range x.Data[i*h*w : (i+1)*h*w] {
				s += v
			}
			out.Data[i] = intmath.RoundDiv(s, cnt)
		}
		return
	}
	k, st := it.Kernel, it.Stride
	if st <= 0 {
		st = k
	}
	oh, ow := (h-k)/st+1, (w-k)/st+1
	cnt := int64(k * k)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s int64
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += plane[(oy*st+ky)*w+(ox*st+kx)]
					}
				}
				out.Data[i*oh*ow+oy*ow+ox] = intmath.RoundDiv(s, cnt)
			}
		}
	}
}

// kernelAvgPoolTyped pools narrow buffers one (sample, channel) plane at
// a time: widen the plane into int64 scratch, run the identical integer
// mean, and narrow the pooled plane into the output (means never leave
// the input's value range, so the store is always representable).
func kernelAvgPoolTyped(ex *Executor, it *Instr, x, out *tensor.IntTensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	k, st := it.Kernel, it.Stride
	oh, ow := 1, 1
	if k > 0 {
		if st <= 0 {
			st = k
		}
		oh, ow = (h-k)/st+1, (w-k)/st+1
	}
	plane := ex.scratch(2, h*w)
	pooled := ex.scratch(3, oh*ow)
	for i := 0; i < n*c; i++ {
		x.ReadInt64(plane, i*h*w)
		if k == 0 {
			cnt := int64(h * w)
			var s int64
			for _, v := range plane {
				s += v
			}
			pooled[0] = intmath.RoundDiv(s, cnt)
		} else {
			cnt := int64(k * k)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s int64
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							s += plane[(oy*st+ky)*w+(ox*st+kx)]
						}
					}
					pooled[oy*ow+ox] = intmath.RoundDiv(s, cnt)
				}
			}
		}
		out.WriteInt64(pooled, i*oh*ow)
	}
}

// kernelFlattenNop: flatten outputs alias their input storage; the
// executor binds both buffers to the same arena words at prepare time.
func kernelFlattenNop(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
}

// kernelRescale applies the bare MulQuant stage; with a fused residual
// add (the common identity-shortcut fold) the whole block epilogue —
// rescale, add, shift-back, clamp — is one read-then-write pass, so the
// planner may alias the output onto either dying input. Narrow buffers
// take the chunked widen→compute→narrow staging path: the output chunk
// is stored only after its input (and fused-branch) chunk is fully read,
// which preserves the in-place aliasing contract at equal dtypes.
func kernelRescale(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if !allI64(in, out) {
		kernelRescaleTyped(ex, it, in, out)
		return
	}
	if it.FusedRescale == nil && !it.FusedAdd {
		it.Scaler.ApplyTo(out, in[0], -1)
		return
	}
	half, frac, zero, lo, hi := it.Scaler.Consts()
	sfx, bfx := int64(it.Scaler.ScaleFx[0]), int64(it.Scaler.BiasFx[0])
	fc := fusedConstsOf(it)
	add := fusedAddOperand(it, in)
	for i, v := range in[0].Data {
		q := intmath.Requantize(v, sfx, bfx, half, frac, zero, lo, hi)
		out.Data[i] = fc.finish(q, add, i)
	}
}

func kernelRescaleTyped(ex *Executor, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	half, frac, zero, lo, hi := it.Scaler.Consts()
	sfx, bfx := int64(it.Scaler.ScaleFx[0]), int64(it.Scaler.BiasFx[0])
	fc := fusedConstsOf(it)
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	n := out.Numel()
	a := ex.scratch(2, elemChunk)
	b := ex.scratch(3, elemChunk)
	for c0 := 0; c0 < n; c0 += elemChunk {
		m := n - c0
		if m > elemChunk {
			m = elemChunk
		}
		av := a[:m]
		in[0].ReadInt64(av, c0)
		var bv []int64
		if add != nil {
			bv = b[:m]
			add.ReadInt64(bv, c0)
		}
		for i, v := range av {
			q := intmath.Requantize(v, sfx, bfx, half, frac, zero, lo, hi)
			av[i] = fc.finish(q, bv, i)
		}
		out.WriteInt64(av, c0)
	}
}

// kernelResAdd mirrors fuse.IntResidual's add/shift-back/clamp epilogue.
func kernelResAdd(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	b, s := in[0], in[1]
	half := addHalfOf(it.Shift)
	if !allI64(in, out) {
		n := out.Numel()
		av := ex.scratch(2, elemChunk)
		bv := ex.scratch(3, elemChunk)
		for c0 := 0; c0 < n; c0 += elemChunk {
			m := n - c0
			if m > elemChunk {
				m = elemChunk
			}
			b.ReadInt64(av[:m], c0)
			s.ReadInt64(bv[:m], c0)
			for i := 0; i < m; i++ {
				av[i] = addShiftClamp(av[i]+bv[i], it.Shift, half, it.ClampLo, it.ClampHi)
			}
			out.WriteInt64(av[:m], c0)
		}
		return
	}
	for i := range b.Data {
		out.Data[i] = addShiftClamp(b.Data[i]+s.Data[i], it.Shift, half, it.ClampLo, it.ClampHi)
	}
}

// checkKernels verifies every instruction kind in p has a kernel.
func checkKernels(p *Program, r *Registry) error {
	for _, it := range p.Instrs {
		if _, ok := r.Lookup(it.Kind); !ok {
			return fmt.Errorf("engine: no kernel registered for op %q", it.Kind)
		}
	}
	return nil
}
