package engine

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// KernelFunc executes one instruction: read the input buffers, write the
// output buffer. idx is the instruction's position in the program —
// kernels use it to cache per-instruction state (tensor headers, shape
// math) across calls via Executor.KernelState, which is how the fast
// kernels reach zero steady-state allocations. Kernels must be
// bit-identical to the corresponding IntLayer.Forward — integer
// arithmetic makes this checkable exactly — and must not retain
// references to the buffers (arena storage is reused).
type KernelFunc func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor)

// Registry maps op kinds to kernels. An Executor copies the table it is
// given, so concurrent servers never observe later mutation.
type Registry struct {
	kernels map[OpKind]KernelFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{kernels: map[OpKind]KernelFunc{}} }

// Register installs (or replaces) the kernel for kind.
func (r *Registry) Register(kind OpKind, k KernelFunc) { r.kernels[kind] = k }

// Lookup returns the kernel for kind.
func (r *Registry) Lookup(kind OpKind) (KernelFunc, bool) {
	k, ok := r.kernels[kind]
	return k, ok
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	for k, v := range r.kernels {
		c.kernels[k] = v
	}
	return c
}

// ReferenceKernels returns kernels that wrap the interpreter's per-layer
// logic directly (allocating like it does); they are the oracle the fast
// kernels are tested against.
func ReferenceKernels() *Registry {
	r := NewRegistry()
	r.Register(OpConv, func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		acc := intmath.Conv2dInt(in[0], it.W, it.InZero, it.P)
		it.Scaler.ApplyTo(out, acc, 1)
	})
	r.Register(OpLinear, func(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		xs := in[0]
		if it.InZero != 0 {
			xs = in[0].Clone()
			for i := range xs.Data {
				xs.Data[i] -= it.InZero
			}
		}
		acc := intmath.MatMulIntT(xs, it.W)
		it.Scaler.ApplyTo(out, acc, 1)
	})
	r.Register(OpAvgPool, kernelAvgPool)
	r.Register(OpFlatten, kernelFlattenNop)
	r.Register(OpRescale, kernelRescale)
	r.Register(OpAdd, kernelResAdd)
	return r
}

// FastKernels returns the default kernel set: the conv and linear hot
// paths run blocked, parallel integer GEMM (im2col for dense conv, a
// direct parallel loop for grouped/depthwise conv) with all scratch drawn
// from the executor, so steady-state execution does not allocate.
func FastKernels() *Registry {
	r := ReferenceKernels().Clone()
	r.Register(OpConv, kernelConvFast)
	r.Register(OpLinear, kernelLinearFast)
	return r
}

// defaultRegistry backs DefaultKernels; Register mutates it before any
// executor is built (init-time plugging).
var defaultRegistry = FastKernels()

// DefaultKernels returns the process-wide default kernel set.
func DefaultKernels() *Registry { return defaultRegistry }

// Register installs a kernel into the process-wide default set, keyed by
// op kind. Call before constructing executors or servers.
func Register(kind OpKind, k KernelFunc) { defaultRegistry.Register(kind, k) }

// kernelConvFast lowers dense convolution onto im2col + blocked parallel
// GEMM; grouped convolution (MobileNet depthwise) takes a direct parallel
// per-(sample,channel) loop, where im2col would shred locality.
func kernelConvFast(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	pp := it.P
	if pp.Stride <= 0 {
		pp.Stride = 1
	}
	if pp.Groups <= 0 {
		pp.Groups = 1
	}
	if pp.Groups == 1 {
		kernelConvGEMM(ex, idx, it, x, out, pp)
		return
	}
	kernelConvGrouped(it, x, out, pp)
}

// convState caches the im2col/GEMM tensor headers for one conv
// instruction; the backing scratch is rebound every call (it is shared
// across instructions and grow-only).
type convState struct {
	cols, wmat, prod tensor.IntTensor
}

func kernelConvGEMM(ex *Executor, idx int, it *Instr, x, out *tensor.IntTensor, pp tensor.ConvParams) {
	n, _, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	spatial := oh * ow
	colW := cg * kH * kW
	sp := ex.KernelState(idx)
	st, ok := (*sp).(*convState)
	if !ok {
		st = &convState{
			cols: tensor.IntTensor{Shape: []int{n * spatial, colW}},
			wmat: tensor.IntTensor{Shape: []int{o, colW}, Data: it.W.Data},
			prod: tensor.IntTensor{Shape: []int{n * spatial, o}},
		}
		*sp = st
	}
	st.cols.Data = ex.scratch(0, n*spatial*colW)
	st.prod.Data = ex.scratch(1, n*spatial*o)
	tensor.Im2ColIntTo(&st.cols, x, kH, kW, pp, it.InZero)
	tensor.MatMulIntTTo(&st.prod, &st.cols, &st.wmat)
	// Requantize straight out of the [n*spatial, o] GEMM layout into NCHW
	// planes: per output channel the scaler is constant, so each
	// (sample, channel) plane is one strided gather.
	prod := st.prod.Data
	scaler := it.Scaler
	tensor.ParallelForInt(n*o, n*o*spatial >= 1<<15, func(job int) {
		ni, oc := job/o, job%o
		dst := out.Data[(ni*o+oc)*spatial : (ni*o+oc+1)*spatial]
		scaler.ApplyGather(dst, prod[ni*spatial*o+oc:], o, oc)
	})
}

func kernelConvGrouped(it *Instr, x, out *tensor.IntTensor, pp tensor.ConvParams) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	og := o / pp.Groups
	zx := it.InZero
	scaler := it.Scaler
	tensor.ParallelForInt(n*o, n*o*oh*ow*cg*kH*kW >= 1<<15, func(job int) {
		ni, oc := job/o, job%o
		g := oc / og
		wBase := oc * cg * kH * kW
		seg := out.Data[(ni*o+oc)*oh*ow : (ni*o+oc+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s int64
				for ch := 0; ch < cg; ch++ {
					xBase := (ni*c + g*cg + ch) * h * w
					for ky := 0; ky < kH; ky++ {
						iy := oy*pp.Stride - pp.Padding + ky
						for kx := 0; kx < kW; kx++ {
							ix := ox*pp.Stride - pp.Padding + kx
							var xv int64
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								xv = x.Data[xBase+iy*w+ix]
							}
							s += (xv - zx) * it.W.Data[wBase+(ch*kH+ky)*kW+kx]
						}
					}
				}
				seg[oy*ow+ox] = s
			}
		}
		// In-place requantize of the finished plane.
		scaler.ApplySeg(seg, seg, oc)
	})
}

// linState caches the shifted-input and accumulator headers for one
// linear instruction.
type linState struct {
	shifted, acc tensor.IntTensor
}

func kernelLinearFast(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	sp := ex.KernelState(idx)
	st, ok := (*sp).(*linState)
	if !ok {
		st = &linState{
			shifted: tensor.IntTensor{Shape: append([]int(nil), x.Shape...)},
			acc:     tensor.IntTensor{Shape: []int{x.Shape[0], it.W.Shape[0]}},
		}
		*sp = st
	}
	if it.InZero != 0 {
		st.shifted.Data = ex.scratch(0, len(x.Data))
		for i, v := range x.Data {
			st.shifted.Data[i] = v - it.InZero
		}
		x = &st.shifted
	}
	st.acc.Data = ex.scratch(1, x.Shape[0]*it.W.Shape[0])
	tensor.MatMulIntTTo(&st.acc, x, it.W)
	it.Scaler.ApplyTo(out, &st.acc, 1)
}

// kernelAvgPool mirrors fuse.IntAvgPool.Forward (round-half-away integer
// mean), writing into the planned output.
func kernelAvgPool(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if it.Kernel == 0 {
		cnt := int64(h * w)
		for i := 0; i < n*c; i++ {
			var s int64
			for _, v := range x.Data[i*h*w : (i+1)*h*w] {
				s += v
			}
			out.Data[i] = roundDiv(s, cnt)
		}
		return
	}
	k, st := it.Kernel, it.Stride
	if st <= 0 {
		st = k
	}
	oh, ow := (h-k)/st+1, (w-k)/st+1
	cnt := int64(k * k)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s int64
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += plane[(oy*st+ky)*w+(ox*st+kx)]
					}
				}
				out.Data[i*oh*ow+oy*ow+ox] = roundDiv(s, cnt)
			}
		}
	}
}

func roundDiv(s, cnt int64) int64 {
	if s >= 0 {
		return (s + cnt/2) / cnt
	}
	return -((-s + cnt/2) / cnt)
}

// kernelFlattenNop: flatten outputs alias their input storage; the
// executor binds both buffers to the same arena words at prepare time.
func kernelFlattenNop(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
}

func kernelRescale(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	it.Scaler.ApplyTo(out, in[0], -1)
}

// kernelResAdd mirrors fuse.IntResidual's add/shift-back/clamp epilogue.
func kernelResAdd(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	b, s := in[0], in[1]
	half := int64(0)
	if it.Shift > 0 {
		half = 1 << (it.Shift - 1)
	}
	for i := range b.Data {
		v := b.Data[i] + s.Data[i]
		if it.Shift > 0 {
			if v >= 0 {
				v = (v + half) >> it.Shift
			} else {
				v = -((-v + half) >> it.Shift)
			}
		}
		if v < it.ClampLo {
			v = it.ClampLo
		}
		if v > it.ClampHi {
			v = it.ClampHi
		}
		out.Data[i] = v
	}
}

// checkKernels verifies every instruction kind in p has a kernel.
func checkKernels(p *Program, r *Registry) error {
	for _, it := range p.Instrs {
		if _, ok := r.Lookup(it.Kind); !ok {
			return fmt.Errorf("engine: no kernel registered for op %q", it.Kind)
		}
	}
	return nil
}
