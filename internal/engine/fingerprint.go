package engine

// Program content fingerprinting for the serving layer's
// content-addressed inference cache. The fingerprint covers every field
// that can affect an output code — the input quantizer, the output
// dequantization parameters, and each instruction's kind, topology,
// weights, scalers, tables, and fused epilogue — so two programs with
// equal fingerprints compute identical codes for identical input codes
// (up to 64-bit hash collisions, which the cache additionally guards
// against by comparing the full stored input codes on every hit).
// Instruction names and optimization bookkeeping that cannot change
// values are deliberately included only where they change structure:
// a fused and an unfused build of the same checkpoint hash differently,
// which is safe (they compute identical values but never share cache
// entries) and keeps the walk simple.

import (
	"math"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// fnv64 accumulates 64-bit words FNV-1a style, the same mixing the
// prepack layer's weight fingerprint uses.
type fnv64 uint64

func newFNV64() fnv64 { return 14695981039346656037 }

func (h *fnv64) word(v uint64) {
	*h ^= fnv64(v)
	*h *= 1099511628211
}

func (h *fnv64) i64(v int64)   { h.word(uint64(v)) }
func (h *fnv64) f32(v float32) { h.word(uint64(math.Float32bits(v))) }

func (h *fnv64) boolean(v bool) {
	if v {
		h.word(3)
	} else {
		h.word(2)
	}
}

func (h *fnv64) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
}

func (h *fnv64) ints(vs []int) {
	h.word(uint64(len(vs)))
	for _, v := range vs {
		h.i64(int64(v))
	}
}

func (h *fnv64) i64s(vs []int64) {
	h.word(uint64(len(vs)))
	for _, v := range vs {
		h.i64(v)
	}
}

// intTensor hashes shape and content, dtype-independent (the I64 view
// when present, element reads otherwise): two tensors holding the same
// codes hash equal regardless of storage width.
func (h *fnv64) intTensor(t *tensor.IntTensor) {
	if t == nil {
		h.word(0)
		return
	}
	h.word(1)
	h.ints(t.Shape)
	if t.Data != nil {
		for _, v := range t.Data {
			h.i64(v)
		}
		return
	}
	n := t.Numel()
	for i := 0; i < n; i++ {
		h.i64(t.Get(i))
	}
}

func (h *fnv64) mulQuant(m *intmath.MulQuant) {
	if m == nil {
		h.word(0)
		return
	}
	h.word(1)
	h.word(uint64(len(m.ScaleFx)))
	for _, v := range m.ScaleFx {
		h.i64(int64(v))
	}
	h.word(uint64(len(m.BiasFx)))
	for _, v := range m.BiasFx {
		h.i64(int64(v))
	}
	h.i64(int64(m.FracBits))
	h.i64(int64(m.IntBits))
	h.i64(int64(m.OutBits))
	h.boolean(m.OutSigned)
	h.i64(m.OutZero)
}

func (h *fnv64) lut(l *intmath.LUT) {
	if l == nil {
		h.word(0)
		return
	}
	h.word(1)
	h.i64(l.InMin)
	h.i64(l.InMax)
	h.i64s(l.Table)
	h.f32(l.OutScale)
}

// Fingerprint hashes every value-affecting field of the program. Equal
// fingerprints mean equal outputs for equal input codes; a hot reload
// that changes any weight, scale, table, or the graph itself changes
// the fingerprint, which is what lets the serving cache key on it and
// invalidate naturally.
func (p *Program) Fingerprint() uint64 {
	h := newFNV64()
	h.str("t2c-program-fp-v1")
	if q := p.InQuant; q != nil {
		h.word(1)
		h.i64(int64(q.NBits))
		h.boolean(q.Signed)
		h.boolean(q.PerChannel)
		h.word(uint64(len(q.Scale)))
		for _, s := range q.Scale {
			h.f32(s)
		}
		h.i64s(q.Zero)
	} else {
		h.word(0)
	}
	h.f32(p.OutScale)
	h.i64(p.OutZero)
	h.i64(int64(p.NumBufs))
	h.i64(int64(p.Input))
	h.i64(int64(p.Output))
	h.ints(p.InShape)
	h.word(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		it := &p.Instrs[i]
		h.str(string(it.Kind))
		h.ints(it.In)
		h.i64(int64(it.Out))
		h.intTensor(it.W)
		h.i64(int64(it.P.Stride))
		h.i64(int64(it.P.Padding))
		h.i64(int64(it.P.Groups))
		h.i64(it.InZero)
		h.mulQuant(it.Scaler)
		h.i64(int64(it.WBits))
		h.i64(int64(it.Kernel))
		h.i64(int64(it.Stride))
		h.i64(int64(it.Shift))
		h.i64(it.ClampLo)
		h.i64(it.ClampHi)
		h.boolean(it.TransposeB)
		h.i64(it.ZA)
		h.i64(it.ZB)
		h.i64(int64(it.Heads))
		h.i64(int64(it.LNDim))
		h.i64(it.LNK)
		h.i64(int64(it.LNFrac))
		h.i64(it.LNEps)
		h.lut(it.Gelu)
		if sm := it.SM; sm != nil {
			h.word(1)
			h.lut(sm.Exp)
			h.i64(int64(sm.OutBits))
			h.f32(sm.ProbScale)
		} else {
			h.word(0)
		}
		h.intTensor(it.Pos)
		h.mulQuant(it.FusedRescale)
		h.boolean(it.FusedAdd)
		h.boolean(it.FlattenOut)
	}
	return uint64(h)
}
