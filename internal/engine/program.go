// Package engine compiles the fused integer deploy model (fuse.IntModel)
// into an explicit graph IR — a topologically ordered instruction list
// over numbered integer buffers — and executes it with pluggable kernels,
// a static liveness-planned buffer arena, and a batched serving runtime.
//
// The interpreter (IntModel.Forward) walks a tree of IntLayers and
// allocates a fresh tensor at every op; it remains the semantic oracle.
// The engine runs the same integer arithmetic instruction by instruction,
// bit-identically, but with all intermediate storage placed once at plan
// time and reused across calls, which is what a serving runtime needs.
package engine

import (
	"fmt"
	"sync"

	"torch2chip/internal/fuse"
	"torch2chip/internal/intmath"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// OpKind names an instruction's operation; kernels are registered per kind.
type OpKind string

// Instruction kinds lowered from the deploy pipeline.
const (
	OpConv    OpKind = "conv"    // integer conv + MulQuant rescale
	OpLinear  OpKind = "linear"  // integer matmul + MulQuant rescale
	OpAvgPool OpKind = "avgpool" // integer average pooling
	OpFlatten OpKind = "flatten" // reshape; aliases its input buffer
	OpRescale OpKind = "rescale" // bare MulQuant stage
	OpAdd     OpKind = "resadd"  // residual add with shift-back and clamp

	// Transformer instruction kinds (spec version ≥ 4), lowered from the
	// integer ViT deploy layers.
	OpMatMul     OpKind = "matmul"      // batched zero-corrected matmul + MulQuant
	OpLayerNorm  OpKind = "layernorm"   // integer LayerNorm + γ/β MulQuant
	OpSoftmax    OpKind = "softmax"     // LUT integer softmax over the last dim
	OpGelu       OpKind = "gelu"        // elementwise GELU lookup table
	OpSplitHeads OpKind = "split_heads" // [N,T,D] → [N·H,T,D/H] transpose copy
	OpMergeHeads OpKind = "merge_heads" // [N·H,T,dh] → [N,T,dh·H] inverse copy
	OpEmbed      OpKind = "embed"       // NCHW → tokens + positional/class add
	OpSliceCls   OpKind = "cls"         // [N,T,D] → [N,D] class-token slice
)

// Instr is one operation over numbered buffers. Only the attribute fields
// relevant to Kind are set.
type Instr struct {
	Kind OpKind
	// Name mirrors the IntModel tree path (e.g. "layers.3.body.0") so
	// instruction weights share names with fuse.IntModel.IntTensors.
	Name string
	In   []int
	Out  int

	// Conv / linear attributes.
	W      *tensor.IntTensor
	P      tensor.ConvParams
	InZero int64
	Scaler *intmath.MulQuant // also set for rescale
	WBits  int

	// Avgpool attributes.
	Kernel, Stride int

	// Residual-add attributes, also used by a FusedAdd epilogue. Embed,
	// gelu, and softmax instructions reuse ClampLo/ClampHi as their
	// declared output code range (gelu/softmax tables are validated
	// against it at load time).
	Shift            int
	ClampLo, ClampHi int64

	// Transformer attributes (only for the v4 instruction kinds).
	TransposeB bool                // matmul: A×Bᵀ (QKᵀ) vs A×B (attn·V)
	ZA, ZB     int64               // matmul operand zero points
	Heads      int                 // split_heads / merge_heads
	LNDim      int                 // layernorm: normalized width D
	LNK        int64               // layernorm: round(√D · 2^LNFrac)
	LNFrac     uint                // layernorm: fixed-point bits of x̂
	LNEps      int64               // layernorm: code-domain epsilon add
	Gelu       *intmath.LUT        // gelu lookup table
	SM         *intmath.LUTSoftmax // softmax exp table + prob width
	Pos        *tensor.IntTensor   // embed: [T,D] positional+class codes

	// Fused epilogue, attached by the Optimize pass. The value pipeline
	// per output element is: own op (+ Scaler) → FusedRescale →
	// FusedAdd(+Shift/Clamp) → output write; FlattenOut only reshapes
	// the written buffer. Kernels must honor all three.
	FusedRescale *intmath.MulQuant // folded OpRescale consumer
	FusedAdd     bool              // folded OpAdd: last In entry is the other branch
	FlattenOut   bool              // folded OpFlatten: output is the 2-D view
}

// AddOperand returns the buffer id of the fused residual branch (the
// last input) for instructions carrying a FusedAdd epilogue.
func (it *Instr) AddOperand() int { return it.In[len(it.In)-1] }

// Program is the compiled integer inference graph: a topo-ordered
// instruction list plus the float↔code boundary parameters.
type Program struct {
	InQuant  *quant.QBase
	OutScale float32
	OutZero  int64

	Instrs  []Instr
	NumBufs int
	Input   int // buffer holding input codes
	Output  int // buffer holding output codes

	// OptLevel records which optimization pass produced this program
	// (OptNone for freshly lowered programs); it round-trips through
	// checkpoints so a reloaded artifact is the exact one benchmarked.
	OptLevel OptLevel

	// InShape is the single-sample input shape the model was compiled
	// for (no batch dimension). It round-trips through checkpoints so a
	// serving registry can size replica pools without being told the
	// shape out of band; nil on pre-PR-3 checkpoints.
	InShape []int

	// BufDTypes annotates each buffer with the narrowest storage dtype
	// that holds every code the producing instruction can emit (derived
	// from the quantizers' bit-widths; see AnnotateDTypes). nil means
	// unannotated — pre-v3 checkpoints load that way — and the engine
	// then plans plain I64 arenas exactly like before typed storage.
	BufDTypes []tensor.DType

	// pack caches prepacked kernel state that is batch- and
	// executor-independent (weight panels, zero-point row sums, im2col
	// index maps), so a server's many (worker, batch-size) executors
	// bind against one copy instead of re-packing the model each time.
	pack *packCache

	// stor caches the resolved typed-storage plan (guarded by
	// packInitMu; see storage()).
	stor *storageInfo

	// spar caches the per-instruction weight-sparsity analysis (guarded
	// by packInitMu; see sparsity()).
	spar []instrSparsity
}

// packInitMu guards lazy creation of the per-program pack cache, so
// concurrently built executors (server workers) agree on one cache.
var packInitMu sync.Mutex

func (p *Program) packs() *packCache {
	packInitMu.Lock()
	if p.pack == nil {
		p.pack = &packCache{}
	}
	pc := p.pack
	packInitMu.Unlock()
	return pc
}

func (p *Program) newBuf() int {
	id := p.NumBufs
	p.NumBufs++
	return id
}

// Lower compiles an IntModel into a Program. The resulting program
// executes bit-identically to im.Forward for any input.
func Lower(im *fuse.IntModel) (*Program, error) {
	p := &Program{InQuant: im.InQuant, OutScale: im.OutScale, OutZero: im.OutZero}
	p.Input = p.newBuf()
	out, err := p.lowerSeq(im.Layers, p.Input, "layers.")
	if err != nil {
		return nil, err
	}
	p.Output = out
	if err := p.AnnotateDTypes(); err != nil {
		return nil, err
	}
	return p, nil
}

// lowerSeq appends instructions for a layer chain starting from buffer
// cur and returns the buffer holding the chain's output codes.
func (p *Program) lowerSeq(layers []fuse.IntLayer, cur int, prefix string) (int, error) {
	for i, l := range layers {
		name := fmt.Sprintf("%s%d", prefix, i)
		switch v := l.(type) {
		case *fuse.IntConv2d:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpConv, Name: name, In: []int{cur}, Out: out,
				W: v.W, P: v.P, InZero: v.InZero, Scaler: v.Scaler, WBits: v.WBits,
			})
			cur = out
		case *fuse.IntLinear:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpLinear, Name: name, In: []int{cur}, Out: out,
				W: v.W, InZero: v.InZero, Scaler: v.Scaler, WBits: v.WBits,
			})
			cur = out
		case *fuse.IntAvgPool:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpAvgPool, Name: name, In: []int{cur}, Out: out,
				Kernel: v.Kernel, Stride: v.Stride,
			})
			cur = out
		case fuse.IntFlatten:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{Kind: OpFlatten, Name: name, In: []int{cur}, Out: out})
			cur = out
		case *fuse.IntRescale:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpRescale, Name: name, In: []int{cur}, Out: out, Scaler: v.Scaler,
			})
			cur = out
		case *fuse.IntPatchEmbed:
			conv := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpConv, Name: name, In: []int{cur}, Out: conv,
				W: v.Conv.W, P: v.Conv.P, InZero: v.Conv.InZero, Scaler: v.Conv.Scaler, WBits: v.Conv.WBits,
			})
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpEmbed, Name: name + ".embed", In: []int{conv}, Out: out,
				Pos: v.PosCls, ClampLo: v.ClampLo, ClampHi: v.ClampHi,
			})
			cur = out
		case *fuse.IntLayerNorm:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpLayerNorm, Name: name, In: []int{cur}, Out: out,
				LNDim: v.D, LNK: v.K, LNFrac: v.FB, LNEps: v.EpsAdd, Scaler: v.Scaler,
			})
			cur = out
		case *fuse.IntGELU:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpGelu, Name: name, In: []int{cur}, Out: out,
				Gelu: v.LUT, ClampLo: v.OutLo, ClampHi: v.OutHi,
			})
			cur = out
		case fuse.IntSliceCls:
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{Kind: OpSliceCls, Name: name, In: []int{cur}, Out: out})
			cur = out
		case *fuse.IntAttention:
			out, err := p.lowerAttention(v, cur, name)
			if err != nil {
				return 0, err
			}
			cur = out
		case *fuse.IntResidual:
			body, err := p.lowerSeq(v.Body, cur, name+".body.")
			if err != nil {
				return 0, err
			}
			short, err := p.lowerSeq(v.Shortcut, cur, name+".shortcut.")
			if err != nil {
				return 0, err
			}
			out := p.newBuf()
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpAdd, Name: name, In: []int{body, short}, Out: out,
				Shift: v.Shift, ClampLo: v.ClampLo, ClampHi: v.ClampHi,
			})
			cur = out
		default:
			return 0, fmt.Errorf("engine: cannot lower layer %T", l)
		}
	}
	return cur, nil
}

// lowerAttention appends the instruction sequence of one integer
// attention block: three projections, head splits, the two requantized
// batched matmuls around the integer softmax, head merge, and the output
// projection.
func (p *Program) lowerAttention(v *fuse.IntAttention, cur int, name string) (int, error) {
	if v.Heads <= 0 || v.D%v.Heads != 0 {
		return 0, fmt.Errorf("engine: attention %s dim %d not divisible by %d heads", name, v.D, v.Heads)
	}
	lin := func(suffix string, l *fuse.IntLinear, in int) int {
		out := p.newBuf()
		p.Instrs = append(p.Instrs, Instr{
			Kind: OpLinear, Name: name + suffix, In: []int{in}, Out: out,
			W: l.W, InZero: l.InZero, Scaler: l.Scaler, WBits: l.WBits,
		})
		return out
	}
	split := func(suffix string, in int) int {
		out := p.newBuf()
		p.Instrs = append(p.Instrs, Instr{
			Kind: OpSplitHeads, Name: name + suffix, In: []int{in}, Out: out, Heads: v.Heads,
		})
		return out
	}
	q := split(".qh", lin(".q", v.Q, cur))
	k := split(".kh", lin(".k", v.K, cur))
	vv := split(".vh", lin(".v", v.V, cur))
	logits := p.newBuf()
	p.Instrs = append(p.Instrs, Instr{
		Kind: OpMatMul, Name: name + ".qk", In: []int{q, k}, Out: logits,
		TransposeB: true, ZA: v.QKZA, ZB: v.QKZB, Scaler: v.QKScale,
	})
	probs := p.newBuf()
	p.Instrs = append(p.Instrs, Instr{
		Kind: OpSoftmax, Name: name + ".softmax", In: []int{logits}, Out: probs,
		SM: v.Softmax, ClampLo: 0, ClampHi: 1<<v.Softmax.OutBits - 1,
	})
	av := p.newBuf()
	p.Instrs = append(p.Instrs, Instr{
		Kind: OpMatMul, Name: name + ".av", In: []int{probs, vv}, Out: av,
		ZA: 0, ZB: v.AVZB, Scaler: v.AVScale,
	})
	merged := p.newBuf()
	p.Instrs = append(p.Instrs, Instr{
		Kind: OpMergeHeads, Name: name + ".merge", In: []int{av}, Out: merged, Heads: v.Heads,
	})
	return lin(".proj", v.Proj, merged), nil
}

// InferShapes computes the shape of every buffer for a given input shape,
// validating instruction operands along the way.
func (p *Program) InferShapes(inShape []int) ([][]int, error) {
	shapes := make([][]int, p.NumBufs)
	shapes[p.Input] = append([]int(nil), inShape...)
	for idx, it := range p.Instrs {
		for _, b := range it.In {
			if shapes[b] == nil {
				return nil, fmt.Errorf("engine: instr %d (%s) reads undefined buffer %d", idx, it.Kind, b)
			}
		}
		in := shapes[it.In[0]]
		var natural []int
		switch it.Kind {
		case OpConv:
			if len(in) != 4 {
				return nil, fmt.Errorf("engine: %s input rank %d, want NCHW", it.Name, len(in))
			}
			o, kH, kW := it.W.Shape[0], it.W.Shape[2], it.W.Shape[3]
			pp := it.P
			if pp.Stride <= 0 {
				pp.Stride = 1
			}
			groups := pp.Groups
			if groups <= 0 {
				groups = 1
			}
			if in[1] != it.W.Shape[1]*groups {
				return nil, fmt.Errorf("engine: %s input channels %d, weight %v with %d groups expects %d",
					it.Name, in[1], it.W.Shape, groups, it.W.Shape[1]*groups)
			}
			oh, ow := pp.ConvOutSize(in[2], kH), pp.ConvOutSize(in[3], kW)
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("engine: %s input %v too small for %dx%d kernel", it.Name, in, kH, kW)
			}
			natural = []int{in[0], o, oh, ow}
		case OpLinear:
			// Row-major [..., K] inputs of any rank ≥ 2: the kernel treats
			// leading dimensions as rows (ViT token tensors are [N,T,D]).
			if len(in) < 2 || in[len(in)-1] != it.W.Shape[1] {
				return nil, fmt.Errorf("engine: %s input %v incompatible with weight %v", it.Name, in, it.W.Shape)
			}
			natural = append(append([]int(nil), in[:len(in)-1]...), it.W.Shape[0])
		case OpAvgPool:
			if len(in) != 4 {
				return nil, fmt.Errorf("engine: %s input rank %d, want NCHW", it.Name, len(in))
			}
			if it.Kernel == 0 {
				natural = []int{in[0], in[1], 1, 1}
			} else {
				st := it.Stride
				if st <= 0 {
					st = it.Kernel
				}
				oh, ow := (in[2]-it.Kernel)/st+1, (in[3]-it.Kernel)/st+1
				if oh <= 0 || ow <= 0 {
					return nil, fmt.Errorf("engine: %s input %v too small for %d-pool", it.Name, in, it.Kernel)
				}
				natural = []int{in[0], in[1], oh, ow}
			}
		case OpFlatten:
			natural = []int{in[0], tensor.Numel(in) / in[0]}
		case OpRescale:
			natural = append([]int(nil), in...)
		case OpAdd:
			b, s := shapes[it.In[0]], shapes[it.In[1]]
			if tensor.Numel(b) != tensor.Numel(s) {
				return nil, fmt.Errorf("engine: %s branch shapes %v vs %v", it.Name, b, s)
			}
			natural = append([]int(nil), b...)
		case OpMatMul:
			bsh := shapes[it.In[1]]
			if len(in) != 3 || len(bsh) != 3 || in[0] != bsh[0] {
				return nil, fmt.Errorf("engine: %s operands %v × %v, want matching [B,·,·]", it.Name, in, bsh)
			}
			if it.TransposeB {
				if in[2] != bsh[2] {
					return nil, fmt.Errorf("engine: %s inner dims %v × %vᵀ", it.Name, in, bsh)
				}
				natural = []int{in[0], in[1], bsh[1]}
			} else {
				if in[2] != bsh[1] {
					return nil, fmt.Errorf("engine: %s inner dims %v × %v", it.Name, in, bsh)
				}
				natural = []int{in[0], in[1], bsh[2]}
			}
		case OpLayerNorm:
			if len(in) < 2 || in[len(in)-1] != it.LNDim {
				return nil, fmt.Errorf("engine: %s input %v does not end in D=%d", it.Name, in, it.LNDim)
			}
			natural = append([]int(nil), in...)
		case OpSoftmax, OpGelu:
			if len(in) < 1 {
				return nil, fmt.Errorf("engine: %s scalar input", it.Name)
			}
			natural = append([]int(nil), in...)
		case OpSplitHeads:
			if len(in) != 3 || it.Heads <= 0 || in[2]%it.Heads != 0 {
				return nil, fmt.Errorf("engine: %s input %v not splittable into %d heads", it.Name, in, it.Heads)
			}
			natural = []int{in[0] * it.Heads, in[1], in[2] / it.Heads}
		case OpMergeHeads:
			if len(in) != 3 || it.Heads <= 0 || in[0]%it.Heads != 0 {
				return nil, fmt.Errorf("engine: %s input %v not mergeable from %d heads", it.Name, in, it.Heads)
			}
			natural = []int{in[0] / it.Heads, in[1], in[2] * it.Heads}
		case OpEmbed:
			if len(in) != 4 || it.Pos == nil || len(it.Pos.Shape) != 2 {
				return nil, fmt.Errorf("engine: %s input %v / pos table malformed", it.Name, in)
			}
			tTok, d := it.Pos.Shape[0], it.Pos.Shape[1]
			if in[1] != d || in[2]*in[3]+1 != tTok {
				return nil, fmt.Errorf("engine: %s feature map %v incompatible with pos table %v", it.Name, in, it.Pos.Shape)
			}
			natural = []int{in[0], tTok, d}
		case OpSliceCls:
			if len(in) != 3 {
				return nil, fmt.Errorf("engine: %s input rank %d, want [N,T,D]", it.Name, len(in))
			}
			natural = []int{in[0], in[2]}
		default:
			return nil, fmt.Errorf("engine: unknown op kind %q", it.Kind)
		}
		// Fused epilogues are only defined for the kinds whose kernels
		// apply them; anything else (e.g. a corrupt checkpoint attaching
		// one to avgpool) must be rejected, not silently ignored.
		if it.FusedRescale != nil && it.Kind != OpConv && it.Kind != OpLinear {
			return nil, fmt.Errorf("engine: %s (%s) cannot carry a fused rescale", it.Name, it.Kind)
		}
		if it.FusedAdd {
			if it.Kind != OpConv && it.Kind != OpLinear && it.Kind != OpRescale {
				return nil, fmt.Errorf("engine: %s (%s) cannot carry a fused add", it.Name, it.Kind)
			}
			if len(it.In) < 2 {
				return nil, fmt.Errorf("engine: %s fused add missing branch operand", it.Name)
			}
			br := shapes[it.AddOperand()]
			if tensor.Numel(br) != tensor.Numel(natural) {
				return nil, fmt.Errorf("engine: %s fused-add branch %v vs output %v", it.Name, br, natural)
			}
		}
		if it.FlattenOut {
			natural = []int{natural[0], tensor.Numel(natural) / natural[0]}
		}
		shapes[it.Out] = natural
	}
	if shapes[p.Output] == nil {
		return nil, fmt.Errorf("engine: output buffer %d never written", p.Output)
	}
	return shapes, nil
}

// WeightTensors returns the instruction weight tensors keyed by the same
// names fuse.IntModel.IntTensors uses (Name + ".conv.weight" /
// ".linear.weight"), so a checkpoint's tensor section can be shared
// between the interpreter and the engine.
func (p *Program) WeightTensors() map[string]*tensor.IntTensor {
	out := map[string]*tensor.IntTensor{}
	for i := range p.Instrs {
		it := &p.Instrs[i]
		switch it.Kind {
		case OpConv:
			out[it.Name+".conv.weight"] = it.W
		case OpLinear:
			out[it.Name+".linear.weight"] = it.W
		case OpEmbed:
			out[it.Name+".poscls"] = it.Pos
		}
	}
	return out
}
