package engine_test

// Typed-storage tests: the narrow-precision engine must stay bit-exact
// with the IntModel interpreter across every registry, opt level, and
// dtype mix; the planner's byte accounting must show the narrow arenas
// actually shrinking; and odd-width models must fall back to I64
// storage without losing exactness.

import (
	"bytes"
	"strings"
	"testing"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// resnet20ArenaBudgetBytes is the committed ceiling for the resnet20
// fused typed plan at batch 8. The PR-3 I64 baseline was 1,572,864 B;
// typed storage plans ≤ this budget (measured 295,424 B, unchanged by
// parallelism-aware placement: the fused chain has no independent GEMM
// pair, so the wave-aware plan degenerates to the serial plan), and
// CI's bench-smoke job fails if a dtype-widening regression pushes the
// plan back over it.
const resnet20ArenaBudgetBytes = 320_000

// compileZoo builds, calibrates, and compiles a zoo model.
func compileZoo(t testing.TB, name string, calib *data.Dataset) (*core.Compiled, *engine.Program) {
	t.Helper()
	g := tensor.NewRNG(7)
	var model nn.Layer
	switch name {
	case "resnet20":
		model = models.NewResNet(g, models.ResNet20(10))
	case "mobilenet":
		model = models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 4})
	default:
		t.Fatalf("unknown zoo model %q", name)
	}
	x, _ := calib.Batch([]int{0, 1, 2, 3})
	model.Forward(x)
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return cm, cm.Prog
}

// TestTypedZooParityAcrossRegistriesAndOptLevels asserts bit-identity of
// the typed-storage engine against IntModel.Forward for every kernel
// registry at both opt levels — the dtype mixes differ per model
// (mobilenet is rescale-free, resnet carries I16 residual-fine codes and
// U16 pooled codes), so together the zoo exercises every narrow path.
func TestTypedZooParityAcrossRegistriesAndOptLevels(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	for _, name := range []string{"resnet20", "mobilenet"} {
		t.Run(name, func(t *testing.T) {
			cm, fused := compileZoo(t, name, calib)
			unfused, err := engine.Lower(cm.Int)
			if err != nil {
				t.Fatal(err)
			}
			g := tensor.NewRNG(17)
			regs := map[string]func() *engine.Registry{
				"fast-typed":  engine.FastKernels,
				"fast-noswar": engine.FastKernelsNoSwar,
				"fast-i64":    engine.FastKernelsI64,
				"im2col":      engine.Im2ColKernels,
				"reference":   engine.ReferenceKernels,
			}
			for _, prog := range []*engine.Program{unfused, fused} {
				for rname, mk := range regs {
					for _, batch := range []int{1, 3} {
						xb := g.Uniform(0, 1, batch, 3, 32, 32)
						t.Run(rname, func(t *testing.T) {
							assertBitIdentical(t, cm.Int, prog, xb, mk())
						})
					}
				}
			}
		})
	}
}

// TestTypedStorageNarrowsArena is the I8-vs-I64 planner regression: the
// same fused program planned typed must be at least 4x smaller than the
// I64 plan on resnet20, and must actually place narrow arenas.
func TestTypedStorageNarrowsArena(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZoo(t, "resnet20", calib)
	typed, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := prog.PlanBuffersI64([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("typed plan: %s", typed)
	t.Logf("wide plan:  %s", wide)
	if typed.ArenaElems[tensor.I8]+typed.ArenaElems[tensor.U8] == 0 {
		t.Fatalf("typed plan placed no 8-bit arena: %s", typed)
	}
	if wide.ArenaElems[tensor.I64] == 0 || wide.ArenaBytes != int64(wide.ArenaElems[tensor.I64])*8 {
		t.Fatalf("I64 plan not pure I64: %s", wide)
	}
	if typed.ArenaBytes*4 > wide.ArenaBytes {
		t.Fatalf("typed arena %d B is not ≥4x smaller than I64 arena %d B", typed.ArenaBytes, wide.ArenaBytes)
	}
}

// TestResNet20ArenaBudget fails when the fused typed plan exceeds the
// committed byte budget — the CI tripwire against silent dtype widening.
func TestResNet20ArenaBudget(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZoo(t, "resnet20", calib)
	plan, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resnet20 batch-8 typed plan: %s", plan)
	if plan.ArenaBytes > resnet20ArenaBudgetBytes {
		t.Fatalf("resnet20 batch-8 arena %d B exceeds committed budget %d B",
			plan.ArenaBytes, resnet20ArenaBudgetBytes)
	}
}

// reloadProgram serializes a program (with im's tensor table) through
// JSON and reconstructs it, optionally rewriting the spec first.
func reloadProgram(t *testing.T, tensors map[string]*tensor.IntTensor, spec *export.ProgramSpec) (*engine.Program, error) {
	t.Helper()
	ck := export.NewCheckpoint(tensors, nil)
	ck.Program = spec
	var buf bytes.Buffer
	if err := ck.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := export.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return engine.FromCheckpoint(ck2)
}

// TestSpecV3DTypesRoundTrip: a v3 checkpoint restores the storage
// annotation (same narrow plan), a spec downgraded to v2 loads
// unannotated with I64 arenas, and a spec whose stored dtype is too
// narrow for the derived code range is rejected.
func TestSpecV3DTypesRoundTrip(t *testing.T) {
	g := tensor.NewRNG(61)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	im, prog := compile(t, smallCNN(g), calib)
	inShape := []int{2, 3, 8, 8}

	spec := prog.Spec()
	if spec.Version != engine.ProgramSpecVersion || len(spec.BufDTypes) != prog.NumBufs {
		t.Fatalf("spec version %d with %d dtypes, want %d with %d",
			spec.Version, len(spec.BufDTypes), engine.ProgramSpecVersion, prog.NumBufs)
	}
	p3, err := reloadProgram(t, im.IntTensors(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Annotated() {
		t.Fatal("v3 reload lost the dtype annotation")
	}
	want, err := prog.PlanBuffers(inShape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p3.PlanBuffers(inShape)
	if err != nil {
		t.Fatal(err)
	}
	if got.ArenaBytes != want.ArenaBytes {
		t.Fatalf("reloaded plan %d B, original %d B", got.ArenaBytes, want.ArenaBytes)
	}
	xb := g.Uniform(0, 1, 2, 3, 8, 8)
	assertBitIdentical(t, im, p3, xb, engine.FastKernels())

	// Downgraded v2 spec: loads, unannotated, plans pure I64.
	legacy := prog.Spec()
	legacy.Version = 2
	legacy.BufDTypes = nil
	p2, err := reloadProgram(t, im.IntTensors(), legacy)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Annotated() {
		t.Fatal("v2 reload must stay unannotated")
	}
	wide, err := p2.PlanBuffers(inShape)
	if err != nil {
		t.Fatal(err)
	}
	i64Plan, err := prog.PlanBuffersI64(inShape)
	if err != nil {
		t.Fatal(err)
	}
	if wide.ArenaBytes != i64Plan.ArenaBytes {
		t.Fatalf("v2 plan %d B, want the I64 plan's %d B", wide.ArenaBytes, i64Plan.ArenaBytes)
	}
	assertBitIdentical(t, im, p2, xb, engine.FastKernels())

	// A stored dtype too narrow for the derived range must be rejected.
	bad := prog.Spec()
	for i := range bad.BufDTypes {
		bad.BufDTypes[i] = "i8" // the 12-bit logit output cannot fit i8
	}
	if _, err := reloadProgram(t, im.IntTensors(), bad); err == nil {
		t.Fatal("expected narrow-dtype validation error")
	} else if !strings.Contains(err.Error(), "cannot hold") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestExecuteCodesRejectsOutOfRangeInput: the typed engine must refuse
// raw input codes outside the planned narrow storage range instead of
// silently wrapping them on the narrowing store.
func TestExecuteCodesRejectsOutOfRangeInput(t *testing.T) {
	g := tensor.NewRNG(71)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	im, prog := compile(t, smallCNN(g), calib)
	ex, err := engine.NewExecutor(prog, []int{1, 3, 8, 8}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	codes := im.InQuant.Quantize(g.Uniform(0, 1, 1, 3, 8, 8))
	if _, err := ex.ExecuteCodes(codes, nil); err != nil {
		t.Fatalf("in-range codes rejected: %v", err)
	}
	codes.Data[0] = 1 << 20
	if _, err := ex.ExecuteCodes(codes, nil); err == nil {
		t.Fatal("expected out-of-range input code to be rejected")
	}
}

// TestOddWidthModelFallsBackToI64 compiles a model with 12-bit weights —
// too wide for the int8 panels — and asserts every conv/linear touching
// buffer is demoted to I64 storage while execution stays bit-identical.
func TestOddWidthModelFallsBackToI64(t *testing.T) {
	g := tensor.NewRNG(51)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := smallCNN(g)
	cfg := core.DefaultConfig()
	cfg.Quant.WBits = 12
	t2c := core.New(model, cfg)
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := engine.NewExecutor(cm.Prog, []int{2, 3, 8, 8}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	plan := ex.Plan()
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		if d != tensor.I64 && plan.ArenaElems[d] != 0 {
			t.Fatalf("odd-width model placed a %s arena: %s", d, plan)
		}
	}
	// 12-bit weights really are too wide for int8 somewhere.
	wide := false
	for _, it := range cm.Prog.Instrs {
		if it.W == nil {
			continue
		}
		if mn, mx := it.W.MinMax(); mn < -128 || mx > 127 {
			wide = true
		}
	}
	if !wide {
		t.Skip("12-bit quantizer produced int8-range weights; fallback not exercised")
	}
	xb := g.Uniform(0, 1, 2, 3, 8, 8)
	assertBitIdentical(t, cm.Int, cm.Prog, xb, engine.FastKernels())
}
