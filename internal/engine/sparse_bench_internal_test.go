package engine

// Microkernel benchmarks that locate the sparse-vs-dense break-even
// points the dispatch heuristics encode: at what skip fraction does each
// sparse inner loop beat the dense SWAR kernel it displaces?

import (
	"fmt"
	"testing"

	"torch2chip/internal/intmath"
)

func benchWeights(o, k int, sparsity float64) []int64 {
	return sparseWeights(o, k, sparsity, 99)
}

func benchPanel32(m, colW int) []int32 {
	p := make([]int32, m*colW)
	s := uint64(1)
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = int32(s>>33%255) - 127
	}
	return p
}

func benchPanelBytes(m, colW int) ([]uint8, []int64) {
	p := make([]uint8, m*colW)
	sums := make([]int64, m)
	s := uint64(1)
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = uint8(s >> 33 % 256)
		sums[i/colW] += int64(p[i])
	}
	return p, sums
}

func BenchmarkSparseKernels(b *testing.B) {
	const o, k, m = 64, 576, 64
	np := (o + panelW - 1) / panelW
	acc := make([]int32, o*m)
	panel32 := benchPanel32(m, k)
	panelB, sums := benchPanelBytes(m, k)
	for _, s := range []float64{0.5, 0.7, 0.85} {
		w := benchWeights(o, k, s)
		sk := buildPanelSkip(w, o, k)
		wp32 := packPanels32(w, o, k)
		const ba, bw = 128, 128
		wps := packPanelsSwar(w, o, k, bw)
		wsum := rowSumsScaled(w, o, k, 1)
		bcorr := make([]int64, o)
		for i, v := range wsum {
			bcorr[i] = ba * v
		}
		name := fmt.Sprintf("s%.0f", s*100)
		b.Run("dense-swar/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanelsSwar(acc, panelB, wps, sums, bcorr, bw, m, k, o, np, m, 1)
			}
		})
		b.Run("dense-i32/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanels32(acc, panel32, wp32, m, k, o, np)
			}
		})
		b.Run("pair-swar/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanelsSwarSparse(acc, panelB, wps, sk, bcorr, bw, m, k, o, np, m, 1)
			}
		})
		b.Run("csr-i32/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanels32CSR(acc, panel32, sk, m, k, o)
			}
		})
	}
	// Column-structured sparsity: every channel shares the same live
	// positions, so the pair live lists collapse to the per-channel lists
	// (liveMacs == csrMacs) and the dual-lane kernel runs no single-lane
	// entries — the pair-skipping SWAR kernel's best case.
	for _, s := range []float64{0.5, 0.7, 0.85} {
		w := make([]int64, o*k)
		live := int(float64(k) * (1 - s))
		for oc := 0; oc < o; oc++ {
			for t := 0; t < live; t++ {
				j := (t*661 + 13) % k
				if t%2 == 0 {
					w[oc*k+j] = 95
				} else {
					w[oc*k+j] = -95
				}
			}
		}
		sk := buildPanelSkip(w, o, k)
		const ba, bw = 128, 128
		wps := packPanelsSwar(w, o, k, bw)
		wsum := rowSumsScaled(w, o, k, 1)
		bcorr := make([]int64, o)
		for i, v := range wsum {
			bcorr[i] = ba * v
		}
		name := fmt.Sprintf("s%.0f", s*100)
		b.Run("pair-swar-shared/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanelsSwarSparse(acc, panelB, wps, sk, bcorr, bw, m, k, o, np, m, 1)
			}
		})
		b.Run("csr-shared/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanels32CSR(acc, panel32, sk, m, k, o)
			}
		})
	}
	for _, n := range []int{1, 2} {
		w := nmWeights(o, k, n, 99)
		nm := buildNMPack(w, o, k, n)
		sk := buildPanelSkip(w, o, k)
		b.Run(fmt.Sprintf("nm-i32/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanelsNM(acc, panel32, nm, m, k, o)
			}
		})
		b.Run(fmt.Sprintf("nm-csr/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmPanels32CSR(acc, panel32, sk, m, k, o)
			}
		})
	}
	_ = intmath.LaneLo
}
