package engine_test

// Black-box SWAR and multicore tests: kernel-path selection (including
// the overflow fallback) via KernelChoices, bit-parity across
// parallelism settings, wave scheduling on the transformer, and a
// scaling sanity check on multicore runners.

import (
	"runtime"
	"testing"
	"time"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// TestSwarKernelSelectionOnZoo asserts the storage pass actually binds
// the SWAR path where it is legal and falls back where it is not: dense
// convs/linears on the 8-bit zoo models bind "swar", grouped/depthwise
// convs (excluded from lane packing) stay on the direct int32 path, and
// the no-SWAR registry binds none.
func TestSwarKernelSelectionOnZoo(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	for _, name := range []string{"resnet20", "mobilenet"} {
		_, prog := compileZoo(t, name, calib)
		ex, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernels()))
		if err != nil {
			t.Fatal(err)
		}
		var swar, direct int
		for _, c := range ex.KernelChoices() {
			switch c.Path {
			case "swar":
				swar++
				if c.Lanes != 2 {
					t.Fatalf("%s %s: swar lanes %d, want 2", name, c.Name, c.Lanes)
				}
				if c.TileM <= 0 {
					t.Fatalf("%s %s: swar tile %d", name, c.Name, c.TileM)
				}
			case "i32-direct":
				direct++
			}
		}
		if swar == 0 {
			t.Fatalf("%s bound no SWAR instruction", name)
		}
		if name == "mobilenet" && direct == 0 {
			t.Fatal("mobilenet depthwise convs must stay on the direct int32 fallback")
		}
		exNo, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernelsNoSwar()))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range exNo.KernelChoices() {
			if c.Path == "swar" {
				t.Fatalf("%s no-swar registry bound a SWAR kernel at %s", name, c.Name)
			}
		}
	}
}

// TestEngineParityAcrossParallelism: the engine's codes are bit-identical
// whatever the parallelism — across the process-wide cap and across the
// per-executor WithMaxParallel bound (which also gates wave-parallel
// execution).
func TestEngineParityAcrossParallelism(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	progs := map[string]*engine.Program{}
	_, progs["resnet20"] = compileZoo(t, "resnet20", calib)
	_, progs["vit"] = compileViT(t, 3, 1)
	g := tensor.NewRNG(23)
	x := g.Uniform(0, 1, 4, 3, 32, 32)
	for name, prog := range progs {
		var ref *tensor.Tensor
		for _, maxPar := range []int{1, 2, 0} {
			ex, err := engine.NewExecutor(prog, x.Shape,
				engine.WithKernels(engine.FastKernels()), engine.WithMaxParallel(maxPar))
			if err != nil {
				t.Fatal(err)
			}
			for _, width := range []int{1, 4} {
				old := tensor.SetParallelism(width)
				y, err := ex.Execute(x)
				tensor.SetParallelism(old)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = y
					continue
				}
				for i := range ref.Data {
					if y.Data[i] != ref.Data[i] {
						t.Fatalf("%s maxPar=%d width=%d diverges at %d", name, maxPar, width, i)
					}
				}
			}
		}
	}
}

// branchyCNN has a residual block whose shortcut carries its own conv —
// the two branch convs are independent IR nodes whose outputs are
// simultaneously live at the join, so (unfused) the planner must place
// them disjointly and the wave scheduler may run them concurrently.
func branchyCNN(g *tensor.RNG) nn.Layer {
	model := nn.NewSequential(
		nn.NewConv2d(g, 3, 8, 3, 1, 1, 1, false),
		nn.NewBatchNorm2d(8),
		&nn.ReLU{},
		nn.NewResidual(
			nn.NewSequential(
				nn.NewConv2d(g, 8, 8, 3, 1, 1, 1, false),
				nn.NewBatchNorm2d(8),
				&nn.ReLU{},
			),
			nn.NewConv2d(g, 8, 8, 1, 1, 0, 1, false),
		),
		&nn.AvgPool{Kernel: 0},
		&nn.Flatten{},
		nn.NewLinear(g, 8, 10, true),
	)
	for i := 0; i < 4; i++ {
		model.Forward(g.Uniform(0, 1, 4, 3, 8, 8))
	}
	return model
}

// TestWavesOnBranchedResidual: on the unfused branched program the
// scheduler must group the two independent branch convs into one wave,
// the wave-parallel path must actually engage on a small input (where
// intra-op tiling cannot saturate the pool alone), and its output must
// be bit-identical to a serial executor's. The fused program serializes
// the join (add-fusion consumes the body output inside the shortcut
// conv), so there waves degenerate to singletons — both variants must
// still cover every instruction exactly once.
func TestWavesOnBranchedResidual(t *testing.T) {
	g := tensor.NewRNG(5)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	im, fused := compile(t, branchyCNN(g), calib)
	unfused, err := engine.Lower(im)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 on a 4×4 input: 16 conv sites split to at most two tiles
	// per branch (tile floor 8), so no member can saturate a ≥4-wide
	// pool and the wave heuristic must choose cross-instruction
	// concurrency.
	x := g.Uniform(0, 1, 1, 3, 4, 4)
	for _, tc := range []struct {
		name     string
		prog     *engine.Program
		wantWave bool
	}{
		{"unfused", unfused, true},
		{"fused", fused, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ex, err := engine.NewExecutor(tc.prog, x.Shape, engine.WithKernels(engine.FastKernels()))
			if err != nil {
				t.Fatal(err)
			}
			sum := ex.WaveSummary()
			total, widest := 0, 0
			for _, n := range sum {
				total += n
				if n > widest {
					widest = n
				}
			}
			if total != len(tc.prog.Instrs) {
				t.Fatalf("waves cover %d of %d instructions", total, len(tc.prog.Instrs))
			}
			if tc.wantWave && widest < 2 {
				t.Fatalf("no multi-instruction wave on the unfused branched program: %v", sum)
			}
			y, err := ex.Execute(x)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantWave {
				if ex.WaveParallelRuns() == 0 {
					t.Fatalf("wave-parallel path never engaged (pool width %d, waves %v)",
						tensor.Parallelism(), sum)
				}
			} else if ex.WaveParallelRuns() != 0 {
				t.Fatal("singleton waves must not run member-concurrently")
			}
			serial, err := engine.NewExecutor(tc.prog, x.Shape,
				engine.WithKernels(engine.FastKernels()), engine.WithMaxParallel(1))
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.Execute(x)
			if err != nil {
				t.Fatal(err)
			}
			if serial.WaveParallelRuns() != 0 {
				t.Fatal("WithMaxParallel(1) executor ran a wave concurrently")
			}
			for i := range want.Data {
				if y.Data[i] != want.Data[i] {
					t.Fatalf("wave-parallel output diverges from serial at %d", i)
				}
			}
		})
	}
}

// TestEngineScalingSanity: on a ≥4-core runner, resnet20 at parallelism
// 4 must be at least 1.5x faster than at parallelism 1. Skipped on
// narrower machines (CI's bench-smoke job runs it where it can).
func TestEngineScalingSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 cores, have %d", runtime.NumCPU())
	}
	if tensor.InitParallel() < 4 {
		t.Skipf("worker pool frozen at %d lanes", tensor.InitParallel())
	}
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZoo(t, "resnet20", calib)
	ex, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(3)
	x := g.Uniform(0, 1, 8, 3, 32, 32)
	best := func(width int) time.Duration {
		old := tensor.SetParallelism(width)
		defer tensor.SetParallelism(old)
		if _, err := ex.Execute(x); err != nil { // warm
			t.Fatal(err)
		}
		b := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := ex.Execute(x); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el < b {
				b = el
			}
		}
		return b
	}
	t1 := best(1)
	t4 := best(4)
	ratio := float64(t1) / float64(t4)
	t.Logf("resnet20 batch-8: width1 %v, width4 %v, speedup %.2fx", t1, t4, ratio)
	if ratio < 1.5 {
		t.Fatalf("parallelism 4 speedup %.2fx < 1.5x over parallelism 1", ratio)
	}
}
