package engine

import (
	"fmt"

	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// Executor runs a Program for one fixed input shape. All inter-op
// buffers live in per-dtype arenas placed by the static planner (narrow
// dtypes store one/two/four bytes per element); scratch used inside
// kernels is grow-only and reused across calls, so steady-state Execute
// performs no per-op allocation. An Executor is not safe for concurrent
// use — the Server gives each worker its own.
type Executor struct {
	prog *Program
	plan *Plan
	stor *storageInfo // typed-storage decisions (nil for I64-only registries)
	kern []KernelFunc // per-instr resolved kernel
	reg  *Registry

	// Per-dtype arenas; only the dtypes the plan uses are allocated.
	arI64 []int64
	arI8  []int8
	arU8  []uint8
	arI16 []int16
	arU16 []uint16
	arI32 []int32

	bufs        []*tensor.IntTensor
	scratchBufs [][]int64             // grow-only kernel scratch (legacy lazy kernels + staging chunks)
	states      []any                 // per-instr cached kernel state
	opIns       [][]*tensor.IntTensor // per-instr input operand views, bound once
	waves       []wave                // hazard-free instruction groups (schedule.go)
	maxPar      int                   // WithMaxParallel bound (0 = pool width)
	waveRuns    int                   // waves executed member-concurrently so far

	// Tracing (nil ring when no tracer was bound; the disabled path
	// then costs one nil check per Execute). Names are interned and
	// output footprints precomputed at bind so recording never
	// allocates or re-derives shape math.
	ring      *trace.Ring
	traceTID  int32
	instrName []uint32 // per-instr interned op-kind name
	instrOutB []int64  // per-instr output-buffer bytes
	waveName  uint32

	// Prepacked-kernel support, sized at bind time by the registry's
	// prep hooks. slotScratch holds int64 words (legacy panels and the
	// typed kernels' widened staging chunks); the typed slices hold
	// narrow gather panels; accTiles hold the int32 GEMM accumulators.
	slotScratch [][]int64
	slotNeed    int
	slotI8      [][]int8
	slotU8      [][]uint8
	slotI16     [][]int16
	slotU16     [][]uint16
	slotI32     [][]int32
	typedNeed   [tensor.NumDTypes]int
	accTiles    [][]int32
	accNeed     int
}

// ExecOption configures NewExecutor.
type ExecOption func(*execConfig)

type execConfig struct {
	reg      *Registry
	maxPar   int
	planCfg  PlanConfig
	tracer   *trace.Tracer
	ring     *trace.Ring
	traceTID int32
}

// WithKernels selects the kernel registry (default: DefaultKernels).
func WithKernels(r *Registry) ExecOption {
	return func(c *execConfig) { c.reg = r }
}

// WithMaxParallel caps how many worker-pool lanes this executor's
// kernels may occupy at once (0 or less = the pool's full width). A
// server running R replicas binds each with ⌈width/R⌉ so concurrent
// executors share cores instead of oversubscribing them.
func WithMaxParallel(n int) ExecOption {
	return func(c *execConfig) {
		if n < 0 {
			n = 0
		}
		c.maxPar = n
	}
}

// WithPlanConfig overrides the parallelism-aware placement tuning
// (arena-growth budget, minimum wave work). The default is
// DefaultPlanConfig; PlanConfig{} forbids any arena growth, which
// demotes every wave that would cost bytes.
func WithPlanConfig(pc PlanConfig) ExecOption {
	return func(c *execConfig) { c.planCfg = pc }
}

// WithTracer binds the executor to a span tracer with its own ring —
// the standalone (bench/profile) form. Serving workers share one ring
// per engine.Server via WithTraceRing instead.
func WithTracer(t *trace.Tracer) ExecOption {
	return func(c *execConfig) { c.tracer = t }
}

// WithTraceRing records this executor's spans into an existing ring,
// tagged with lane id tid (the Chrome-trace thread the spans land on —
// servers pass the worker index).
func WithTraceRing(r *trace.Ring, tid int32) ExecOption {
	return func(c *execConfig) { c.ring, c.traceTID = r, tid }
}

// NewExecutor plans and binds a program for inputs of shape inShape
// (full shape including the batch dimension, e.g. [8,3,32,32]).
func NewExecutor(p *Program, inShape []int, opts ...ExecOption) (*Executor, error) {
	cfg := execConfig{reg: DefaultKernels(), planCfg: DefaultPlanConfig()}
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.reg.Clone()
	if err := checkKernels(p, reg); err != nil {
		return nil, err
	}
	var plan *Plan
	var stor *storageInfo
	var err error
	if reg.typed {
		// The typed kernel set executes narrow buffers and binds the
		// slot-confined states wave execution needs, so it plans with the
		// parallelism-aware schedule; registries with custom kernels plan
		// I64 and serial so `in.Data` stays valid everywhere.
		if stor, err = p.storage(); err != nil {
			return nil, err
		}
		plan, err = p.planBuffersAs(inShape, stor.dts, &cfg.planCfg)
	} else {
		plan, err = p.PlanBuffersI64(inShape)
	}
	if err != nil {
		return nil, err
	}
	ex := &Executor{
		prog:        p,
		plan:        plan,
		stor:        stor,
		reg:         reg,
		bufs:        make([]*tensor.IntTensor, p.NumBufs),
		scratchBufs: make([][]int64, 4),
		states:      make([]any, len(p.Instrs)),
		maxPar:      cfg.maxPar,
	}
	ex.arI64 = make([]int64, plan.ArenaElems[tensor.I64])
	ex.arI8 = make([]int8, plan.ArenaElems[tensor.I8])
	ex.arU8 = make([]uint8, plan.ArenaElems[tensor.U8])
	ex.arI16 = make([]int16, plan.ArenaElems[tensor.I16])
	ex.arU16 = make([]uint16, plan.ArenaElems[tensor.U16])
	ex.arI32 = make([]int32, plan.ArenaElems[tensor.I32])
	for b := 0; b < p.NumBufs; b++ {
		if plan.Offsets[b] < 0 {
			continue
		}
		ex.bufs[b] = ex.arenaView(plan.DTypes[b], plan.Offsets[b], plan.Shapes[b])
	}
	ex.kern = make([]KernelFunc, len(p.Instrs))
	ex.opIns = make([][]*tensor.IntTensor, len(p.Instrs))
	for i := range p.Instrs {
		k, _ := reg.Lookup(p.Instrs[i].Kind)
		ex.kern[i] = k
		ops := make([]*tensor.IntTensor, len(p.Instrs[i].In))
		for j, b := range p.Instrs[i].In {
			ops[j] = ex.bufs[b]
		}
		ex.opIns[i] = ops
	}
	// Bind-time prep: prepack weights, epilogue constants, and cached
	// index maps so the first Execute already runs the steady state.
	for i := range p.Instrs {
		prep, ok := reg.lookupPrep(p.Instrs[i].Kind)
		if !ok {
			continue
		}
		st, err := prep(ex, i, &p.Instrs[i])
		if err != nil {
			return nil, err
		}
		ex.states[i] = st
	}
	slots := 0
	if ex.slotNeed > 0 || ex.accNeed > 0 {
		slots = tensor.MaxParallelSlots()
	} else {
		for _, n := range ex.typedNeed {
			if n > 0 {
				slots = tensor.MaxParallelSlots()
				break
			}
		}
	}
	if slots > 0 {
		if ex.slotNeed > 0 {
			ex.slotScratch = make([][]int64, slots)
			for s := range ex.slotScratch {
				ex.slotScratch[s] = make([]int64, ex.slotNeed)
			}
		}
		if ex.accNeed > 0 {
			ex.accTiles = make([][]int32, slots)
			for s := range ex.accTiles {
				ex.accTiles[s] = make([]int32, ex.accNeed)
			}
		}
		if n := ex.typedNeed[tensor.I8]; n > 0 {
			ex.slotI8 = make([][]int8, slots)
			for s := range ex.slotI8 {
				ex.slotI8[s] = make([]int8, n)
			}
		}
		if n := ex.typedNeed[tensor.U8]; n > 0 {
			ex.slotU8 = make([][]uint8, slots)
			for s := range ex.slotU8 {
				ex.slotU8[s] = make([]uint8, n)
			}
		}
		if n := ex.typedNeed[tensor.I16]; n > 0 {
			ex.slotI16 = make([][]int16, slots)
			for s := range ex.slotI16 {
				ex.slotI16[s] = make([]int16, n)
			}
		}
		if n := ex.typedNeed[tensor.U16]; n > 0 {
			ex.slotU16 = make([][]uint16, slots)
			for s := range ex.slotU16 {
				ex.slotU16[s] = make([]uint16, n)
			}
		}
		if n := ex.typedNeed[tensor.I32]; n > 0 {
			ex.slotI32 = make([][]int32, slots)
			for s := range ex.slotI32 {
				ex.slotI32[s] = make([]int32, n)
			}
		}
	}
	ex.buildWaves()
	ex.bindTrace(&cfg)
	return ex, nil
}

// bindTrace resolves the tracing options: interns every instruction's
// op-kind name and precomputes output footprints so the recording hot
// path is a clock read and a ring write, nothing else.
func (ex *Executor) bindTrace(cfg *execConfig) {
	ring, tid := cfg.ring, cfg.traceTID
	if ring == nil && cfg.tracer != nil {
		ring = cfg.tracer.NewRing()
	}
	if ring == nil {
		return
	}
	ex.ring, ex.traceTID = ring, tid
	t := ring.Tracer()
	ex.waveName = t.Intern("wave")
	ex.instrName = make([]uint32, len(ex.prog.Instrs))
	ex.instrOutB = make([]int64, len(ex.prog.Instrs))
	for i := range ex.prog.Instrs {
		it := &ex.prog.Instrs[i]
		ex.instrName[i] = t.Intern(string(it.Kind))
		out := it.Out
		if ex.plan.Offsets[out] >= 0 {
			ex.instrOutB[i] = int64(tensor.Numel(ex.plan.Shapes[out])) * int64(ex.plan.DTypes[out].Size())
		}
	}
}

// arenaView builds a typed tensor header over the dtype's arena.
func (ex *Executor) arenaView(dt tensor.DType, off int, shape []int) *tensor.IntTensor {
	n := tensor.Numel(shape)
	t := &tensor.IntTensor{Shape: append([]int(nil), shape...), DType: dt}
	switch dt {
	case tensor.I8:
		t.I8 = ex.arI8[off : off+n]
	case tensor.U8:
		t.U8 = ex.arU8[off : off+n]
	case tensor.I16:
		t.I16 = ex.arI16[off : off+n]
	case tensor.U16:
		t.U16 = ex.arU16[off : off+n]
	case tensor.I32:
		t.I32 = ex.arI32[off : off+n]
	default:
		t.Data = ex.arI64[off : off+n]
	}
	return t
}

// typedInstr reports whether instruction idx takes the narrow
// int32-accumulate path under this executor's registry.
func (ex *Executor) typedInstr(idx int) bool {
	return ex.stor != nil && ex.stor.typed[idx]
}

// NeedSlotScratch is called by prep hooks to reserve per-parallel-slot
// int64 scratch words; the executor allocates the maximum requested once.
func (ex *Executor) NeedSlotScratch(words int) {
	if words > ex.slotNeed {
		ex.slotNeed = words
	}
}

// NeedSlotTyped reserves per-slot narrow scratch (gather panels) in
// elements of the given dtype.
func (ex *Executor) NeedSlotTyped(dt tensor.DType, elems int) {
	if dt == tensor.I64 {
		ex.NeedSlotScratch(elems)
		return
	}
	if elems > ex.typedNeed[dt] {
		ex.typedNeed[dt] = elems
	}
}

// NeedAccTile reserves per-slot int32 accumulator tiles.
func (ex *Executor) NeedAccTile(elems int) {
	if elems > ex.accNeed {
		ex.accNeed = elems
	}
}

// SlotScratch returns the int64 scratch slice owned by a parallel slot.
func (ex *Executor) SlotScratch(slot int) []int64 { return ex.slotScratch[slot] }

// AccTile returns the int32 accumulator tile owned by a parallel slot.
func (ex *Executor) AccTile(slot int) []int32 { return ex.accTiles[slot] }

// ScratchBytes reports the executor's kernel scratch footprint: planned
// per-slot panels and accumulator tiles, the im2col index maps its bound
// state actually references (shared maps counted once), plus the
// grow-only buffers the legacy kernels have claimed so far (stable after
// one Execute).
func (ex *Executor) ScratchBytes() int64 {
	bytes := int64(len(ex.slotScratch)*ex.slotNeed) * 8
	bytes += int64(len(ex.accTiles)*ex.accNeed) * 4
	bytes += int64(len(ex.slotI8) * ex.typedNeed[tensor.I8])
	bytes += int64(len(ex.slotU8) * ex.typedNeed[tensor.U8])
	bytes += int64(len(ex.slotI16)*ex.typedNeed[tensor.I16]) * 2
	bytes += int64(len(ex.slotU16)*ex.typedNeed[tensor.U16]) * 2
	bytes += int64(len(ex.slotI32)*ex.typedNeed[tensor.I32]) * 4
	for _, s := range ex.scratchBufs {
		bytes += int64(cap(s)) * 8
	}
	seen := map[*int32]bool{}
	countIdx := func(idx []int32) {
		if len(idx) == 0 {
			return
		}
		if k := &idx[0]; !seen[k] {
			seen[k] = true
			bytes += int64(len(idx)) * 4
		}
	}
	for _, st := range ex.states {
		switch cp := st.(type) {
		case *convPack:
			countIdx(cp.idx)
		case *convPackT:
			countIdx(cp.idx)
		}
	}
	return bytes
}

// Plan exposes the executor's buffer placement (for reporting).
func (ex *Executor) Plan() *Plan { return ex.plan }

// InShape returns the input shape the executor was planned for.
func (ex *Executor) InShape() []int { return ex.plan.Shapes[ex.prog.Input] }

// ExecuteCodes runs the program on already-quantized input codes, writing
// results into dst (allocated if nil) and returning it. The returned
// tensor is caller-owned; arena storage is reused by the next call.
func (ex *Executor) ExecuteCodes(codes *tensor.IntTensor, dst *tensor.IntTensor) (*tensor.IntTensor, error) {
	in := ex.bufs[ex.prog.Input]
	n := in.Numel()
	if codes.Numel() != n {
		return nil, fmt.Errorf("engine: input %v does not match planned shape %v", codes.Shape, in.Shape)
	}
	if in.DType != tensor.I64 {
		// The input buffer is stored narrow because the quantizer's code
		// range fits it; codes outside that range would silently wrap on
		// the narrowing store (and void the int32 accumulator bound), so
		// reject them — the I64 engine computed garbage-in-garbage-out,
		// but never a different value than the interpreter.
		lo, hi := in.DType.Range()
		for i := 0; i < n; i++ {
			if c := codes.Get(i); c < lo || c > hi {
				return nil, fmt.Errorf("engine: input code %d at %d outside the planned %s storage range [%d, %d]",
					c, i, in.DType, lo, hi)
			}
		}
	}
	if in.DType == tensor.I64 && codes.DType == tensor.I64 {
		copy(in.Data, codes.Data)
	} else if codes.DType == tensor.I64 {
		in.WriteInt64(codes.Data, 0)
	} else {
		for i := 0; i < n; i++ {
			in.Put(i, codes.Get(i))
		}
	}
	ex.run()
	out := ex.bufs[ex.prog.Output]
	if dst == nil {
		dst = tensor.NewInt(out.Shape...)
	} else if dst.Numel() != out.Numel() {
		return nil, fmt.Errorf("engine: dst %v does not match output shape %v", dst.Shape, out.Shape)
	}
	if out.DType == tensor.I64 && dst.DType == tensor.I64 {
		copy(dst.Data, out.Data)
	} else if dst.DType == tensor.I64 {
		out.ReadInt64(dst.Data, 0)
	} else {
		outN := out.Numel()
		for i := 0; i < outN; i++ {
			dst.Put(i, out.Get(i))
		}
	}
	return dst, nil
}

// Execute runs the full float→int→float pipeline exactly like
// IntModel.Forward: quantize at the boundary, execute the integer
// program, dequantize the output codes to logits.
func (ex *Executor) Execute(x *tensor.Tensor) (*tensor.Tensor, error) {
	in := ex.bufs[ex.prog.Input]
	if len(x.Data) != in.Numel() {
		return nil, fmt.Errorf("engine: input %v does not match planned shape %v", x.Shape, in.Shape)
	}
	ex.prog.InQuant.QuantizeTo(in, x)
	ex.run()
	codes := ex.bufs[ex.prog.Output]
	out := tensor.New(codes.Shape...)
	ex.DequantizeInto(out, codes)
	return out, nil
}

// ExecuteInto is Execute writing logits into a caller-owned tensor, the
// zero-alloc path the serving runtime uses.
func (ex *Executor) ExecuteInto(out *tensor.Tensor, x *tensor.Tensor) error {
	in := ex.bufs[ex.prog.Input]
	if len(x.Data) != in.Numel() {
		return fmt.Errorf("engine: input %v does not match planned shape %v", x.Shape, in.Shape)
	}
	ex.prog.InQuant.QuantizeTo(in, x)
	ex.run()
	codes := ex.bufs[ex.prog.Output]
	if len(out.Data) != codes.Numel() {
		return fmt.Errorf("engine: out %v does not match output shape %v", out.Shape, codes.Shape)
	}
	ex.DequantizeInto(out, codes)
	return nil
}

// DequantizeInto maps output codes to float logits with the program's
// output scale/zero.
func (ex *Executor) DequantizeInto(out *tensor.Tensor, codes *tensor.IntTensor) {
	if codes.DType == tensor.I64 {
		for i, c := range codes.Data {
			out.Data[i] = float32(c-ex.prog.OutZero) * ex.prog.OutScale
		}
		return
	}
	for i := range out.Data {
		out.Data[i] = float32(codes.Get(i)-ex.prog.OutZero) * ex.prog.OutScale
	}
}

// OutShape returns the planned output logits shape.
func (ex *Executor) OutShape() []int { return ex.plan.Shapes[ex.prog.Output] }

// DequantizeOutput maps output codes to float logits with the exact
// per-element expression DequantizeInto uses, so callers that carry
// codes end to end (the serving cache path) produce floats
// bit-identical to the executor's own dequantize.
func (p *Program) DequantizeOutput(codes []int64, shape []int) *tensor.Tensor {
	out := tensor.New(shape...)
	for i, c := range codes {
		out.Data[i] = float32(c-p.OutZero) * p.OutScale
	}
	return out
}

// run executes the bound program wave by wave. A safe parallel wave
// dispatches the combined job grid of all its members in one pool
// pass — each job confined to the slot the pool hands it — so
// independent GEMMs overlap while still splitting internally into
// tiles; with a single worker, or a wave the bind-time checks demoted,
// members run in program order with their own intra-op parallelism.
// Both paths compute identical values — wave members write disjoint
// arena intervals by construction, and job bodies are the same tile
// bodies the intra-op path runs.
func (ex *Executor) run() {
	if ex.ring.Active() {
		ex.runTraced()
		return
	}
	for wi := range ex.waves {
		wv := &ex.waves[wi]
		if wv.safe && ex.kernelWorkers() > 1 {
			ex.waveRuns++
			total := wv.jobOff[len(wv.bodies)]
			tensor.ParallelForSlotsN(total, ex.maxPar, true, func(j, slot int) {
				m := 0
				for wv.jobOff[m+1] <= j {
					m++
				}
				wv.bodies[m](j-wv.jobOff[m], slot)
			})
			continue
		}
		for _, i := range wv.members {
			ex.runInstr(i)
		}
	}
}

// runTraced is run() with span recording: every wave gets a KindWave
// span (A0 = members, A1 = combined jobs, or 0 when it ran serially),
// and serially executed instructions each get a KindInstr span (A0 =
// output-buffer bytes, A1 = instruction index). Members of a
// parallel-dispatched wave are timed only as the wave — their job
// grids interleave across pool slots, so per-member wall time is not a
// meaningful quantity there.
func (ex *Executor) runTraced() {
	r := ex.ring
	for wi := range ex.waves {
		wv := &ex.waves[wi]
		wStart := r.Now()
		if wv.safe && ex.kernelWorkers() > 1 {
			ex.waveRuns++
			total := wv.jobOff[len(wv.bodies)]
			tensor.ParallelForSlotsN(total, ex.maxPar, true, func(j, slot int) {
				m := 0
				for wv.jobOff[m+1] <= j {
					m++
				}
				wv.bodies[m](j-wv.jobOff[m], slot)
			})
			r.Record(trace.Span{
				Start: wStart, Dur: r.Now() - wStart, Name: ex.waveName,
				Kind: trace.KindWave, TID: ex.traceTID,
				A0: int64(len(wv.members)), A1: int64(total),
			})
			continue
		}
		for _, i := range wv.members {
			start := r.Now()
			ex.runInstr(i)
			r.Record(trace.Span{
				Start: start, Dur: r.Now() - start, Name: ex.instrName[i],
				Kind: trace.KindInstr, TID: ex.traceTID,
				A0: ex.instrOutB[i], A1: int64(i),
			})
		}
		r.Record(trace.Span{
			Start: wStart, Dur: r.Now() - wStart, Name: ex.waveName,
			Kind: trace.KindWave, TID: ex.traceTID,
			A0: int64(len(wv.members)), A1: 0,
		})
	}
}

// runInstr dispatches one instruction through its bound kernel (the
// kernel may parallelize internally).
func (ex *Executor) runInstr(i int) {
	it := &ex.prog.Instrs[i]
	ex.kern[i](ex, i, it, ex.opIns[i], ex.bufs[it.Out])
}

// KernelState returns the cached state slot for instruction idx. Kernels
// store per-instruction tensor headers or precomputed shape math there on
// first execution and reuse it afterwards, which keeps the steady state
// allocation-free.
func (ex *Executor) KernelState(idx int) *any { return &ex.states[idx] }

// scratch returns a grow-only int64 slice of at least n words for kernel
// slot i; contents are undefined.
func (ex *Executor) scratch(i, n int) []int64 {
	if cap(ex.scratchBufs[i]) < n {
		ex.scratchBufs[i] = make([]int64, n)
	}
	return ex.scratchBufs[i][:n]
}
