package engine

import (
	"fmt"

	"torch2chip/internal/tensor"
)

// Executor runs a Program for one fixed input shape. All inter-op buffers
// live in a single arena placed by the static planner; scratch used
// inside kernels is grow-only and reused across calls, so steady-state
// Execute performs no per-op allocation. An Executor is not safe for
// concurrent use — the Server gives each worker its own.
type Executor struct {
	prog *Program
	plan *Plan
	kern []KernelFunc // per-instr resolved kernel
	reg  *Registry

	arena       []int64
	bufs        []*tensor.IntTensor
	scratchBufs [][]int64                 // grow-only kernel scratch (legacy lazy kernels)
	states      []any                     // per-instr cached kernel state
	ins         [maxIns]*tensor.IntTensor // reused input operand slice

	// Prepacked-kernel support, sized at bind time by the registry's
	// prep hooks.
	slotScratch [][]int64 // per parallel slot, shared across instrs
	slotNeed    int       // words each slot must hold
}

// maxIns is the largest instruction fan-in (residual add reads two).
const maxIns = 2

// ExecOption configures NewExecutor.
type ExecOption func(*execConfig)

type execConfig struct{ reg *Registry }

// WithKernels selects the kernel registry (default: DefaultKernels).
func WithKernels(r *Registry) ExecOption {
	return func(c *execConfig) { c.reg = r }
}

// NewExecutor plans and binds a program for inputs of shape inShape
// (full shape including the batch dimension, e.g. [8,3,32,32]).
func NewExecutor(p *Program, inShape []int, opts ...ExecOption) (*Executor, error) {
	cfg := execConfig{reg: DefaultKernels()}
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.reg.Clone()
	if err := checkKernels(p, reg); err != nil {
		return nil, err
	}
	plan, err := p.PlanBuffers(inShape)
	if err != nil {
		return nil, err
	}
	ex := &Executor{
		prog:        p,
		plan:        plan,
		reg:         reg,
		arena:       make([]int64, plan.ArenaWords),
		bufs:        make([]*tensor.IntTensor, p.NumBufs),
		scratchBufs: make([][]int64, 4),
		states:      make([]any, len(p.Instrs)),
	}
	for b := 0; b < p.NumBufs; b++ {
		if plan.Offsets[b] < 0 {
			continue
		}
		sh := plan.Shapes[b]
		n := tensor.Numel(sh)
		ex.bufs[b] = &tensor.IntTensor{
			Shape: append([]int(nil), sh...),
			Data:  ex.arena[plan.Offsets[b] : plan.Offsets[b]+n],
		}
	}
	ex.kern = make([]KernelFunc, len(p.Instrs))
	for i := range p.Instrs {
		k, _ := reg.Lookup(p.Instrs[i].Kind)
		ex.kern[i] = k
	}
	// Bind-time prep: prepack weights, epilogue constants, and cached
	// index maps so the first Execute already runs the steady state.
	for i := range p.Instrs {
		prep, ok := reg.lookupPrep(p.Instrs[i].Kind)
		if !ok {
			continue
		}
		st, err := prep(ex, i, &p.Instrs[i])
		if err != nil {
			return nil, err
		}
		ex.states[i] = st
	}
	if ex.slotNeed > 0 {
		ex.slotScratch = make([][]int64, tensor.MaxParallelSlots())
		for s := range ex.slotScratch {
			ex.slotScratch[s] = make([]int64, ex.slotNeed)
		}
	}
	return ex, nil
}

// NeedSlotScratch is called by prep hooks to reserve per-parallel-slot
// scratch words; the executor allocates the maximum requested once.
func (ex *Executor) NeedSlotScratch(words int) {
	if words > ex.slotNeed {
		ex.slotNeed = words
	}
}

// SlotScratch returns the scratch slice owned by a parallel slot.
func (ex *Executor) SlotScratch(slot int) []int64 { return ex.slotScratch[slot] }

// ScratchBytes reports the executor's kernel scratch footprint: planned
// per-slot panels, the im2col index maps its bound state actually
// references (shared maps counted once), plus the grow-only buffers the
// legacy kernels have claimed so far (stable after one Execute).
func (ex *Executor) ScratchBytes() int64 {
	words := len(ex.slotScratch) * ex.slotNeed
	for _, s := range ex.scratchBufs {
		words += cap(s)
	}
	var idxBytes int64
	seen := map[*int32]bool{}
	for _, st := range ex.states {
		cp, ok := st.(*convPack)
		if !ok || len(cp.idx) == 0 {
			continue
		}
		if k := &cp.idx[0]; !seen[k] {
			seen[k] = true
			idxBytes += int64(len(cp.idx)) * 4
		}
	}
	return int64(words)*8 + idxBytes
}

// Plan exposes the executor's buffer placement (for reporting).
func (ex *Executor) Plan() *Plan { return ex.plan }

// InShape returns the input shape the executor was planned for.
func (ex *Executor) InShape() []int { return ex.plan.Shapes[ex.prog.Input] }

// ExecuteCodes runs the program on already-quantized input codes, writing
// results into dst (allocated if nil) and returning it. The returned
// tensor is caller-owned; arena storage is reused by the next call.
func (ex *Executor) ExecuteCodes(codes *tensor.IntTensor, dst *tensor.IntTensor) (*tensor.IntTensor, error) {
	in := ex.bufs[ex.prog.Input]
	if len(codes.Data) != len(in.Data) {
		return nil, fmt.Errorf("engine: input %v does not match planned shape %v", codes.Shape, in.Shape)
	}
	copy(in.Data, codes.Data)
	ex.run()
	out := ex.bufs[ex.prog.Output]
	if dst == nil {
		dst = tensor.NewInt(out.Shape...)
	} else if len(dst.Data) != len(out.Data) {
		return nil, fmt.Errorf("engine: dst %v does not match output shape %v", dst.Shape, out.Shape)
	}
	copy(dst.Data, out.Data)
	return dst, nil
}

// Execute runs the full float→int→float pipeline exactly like
// IntModel.Forward: quantize at the boundary, execute the integer
// program, dequantize the output codes to logits.
func (ex *Executor) Execute(x *tensor.Tensor) (*tensor.Tensor, error) {
	in := ex.bufs[ex.prog.Input]
	if len(x.Data) != len(in.Data) {
		return nil, fmt.Errorf("engine: input %v does not match planned shape %v", x.Shape, in.Shape)
	}
	ex.prog.InQuant.QuantizeTo(in, x)
	ex.run()
	codes := ex.bufs[ex.prog.Output]
	out := tensor.New(codes.Shape...)
	ex.DequantizeInto(out, codes)
	return out, nil
}

// ExecuteInto is Execute writing logits into a caller-owned tensor, the
// zero-alloc path the serving runtime uses.
func (ex *Executor) ExecuteInto(out *tensor.Tensor, x *tensor.Tensor) error {
	in := ex.bufs[ex.prog.Input]
	if len(x.Data) != len(in.Data) {
		return fmt.Errorf("engine: input %v does not match planned shape %v", x.Shape, in.Shape)
	}
	ex.prog.InQuant.QuantizeTo(in, x)
	ex.run()
	codes := ex.bufs[ex.prog.Output]
	if len(out.Data) != len(codes.Data) {
		return fmt.Errorf("engine: out %v does not match output shape %v", out.Shape, codes.Shape)
	}
	ex.DequantizeInto(out, codes)
	return nil
}

// DequantizeInto maps output codes to float logits with the program's
// output scale/zero.
func (ex *Executor) DequantizeInto(out *tensor.Tensor, codes *tensor.IntTensor) {
	for i, c := range codes.Data {
		out.Data[i] = float32(c-ex.prog.OutZero) * ex.prog.OutScale
	}
}

// OutShape returns the planned output logits shape.
func (ex *Executor) OutShape() []int { return ex.plan.Shapes[ex.prog.Output] }

func (ex *Executor) run() {
	for i := range ex.prog.Instrs {
		it := &ex.prog.Instrs[i]
		for j, b := range it.In {
			ex.ins[j] = ex.bufs[b]
		}
		ex.kern[i](ex, i, it, ex.ins[:len(it.In)], ex.bufs[it.Out])
	}
}

// KernelState returns the cached state slot for instruction idx. Kernels
// store per-instruction tensor headers or precomputed shape math there on
// first execution and reuse it afterwards, which keeps the steady state
// allocation-free.
func (ex *Executor) KernelState(idx int) *any { return &ex.states[idx] }

// scratch returns a grow-only int64 slice of at least n words for kernel
// slot i; contents are undefined.
func (ex *Executor) scratch(i, n int) []int64 {
	if cap(ex.scratchBufs[i]) < n {
		ex.scratchBufs[i] = make([]int64, n)
	}
	return ex.scratchBufs[i][:n]
}
