package engine

// Prepacked kernels: NewExecutor precomputes everything a conv/linear
// instruction needs that does not depend on the input values — weight
// panels blocked for the GEMM microkernel, zero-point row sums, expanded
// requantization constants, fused-epilogue constants, and a cached
// im2col gather-index map per (input shape, ConvParams) — so the steady
// state is a pure indexed gather feeding a register-blocked integer GEMM
// with the whole epilogue applied while the tile is hot. int64 addition
// is exact, so any summation order is bit-identical to the reference
// kernels and the IntModel interpreter.

import (
	"fmt"
	"sync"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// panelW is the output-channel width of a packed weight panel: the
// microkernel keeps panelW independent accumulator chains per site pair,
// which is what hides the int64 multiply latency.
const panelW = 4

// epi holds an instruction's fully-expanded requantization pipeline:
// own scaler (per channel) plus the shared folded-epilogue constants.
type epi struct {
	sfx, bfx []int64 // own scaler, expanded per output channel
	half     int64
	frac     uint
	zero     int64
	lo, hi   int64
	fc       fusedConsts
}

func newEpi(it *Instr, o int) epi {
	e := epi{fc: fusedConstsOf(it)}
	e.sfx, e.bfx = it.Scaler.Expand(o)
	e.half, e.frac, e.zero, e.lo, e.hi = it.Scaler.Consts()
	return e
}

// store finishes one accumulator (already zero-point corrected) for
// channel oc and writes outD[di]. add (indexed like outD) is read before
// the write, so outD may alias the fused branch.
func (e *epi) store(outD, add []int64, di int, acc int64, oc int) {
	q := intmath.Requantize(acc, e.sfx[oc], e.bfx[oc], e.half, e.frac, e.zero, e.lo, e.hi)
	outD[di] = e.fc.finish(q, add, di)
}

// packPanels blocks a [o, k] row-major weight matrix into panels of
// panelW output channels laid out [panel][k][panelW], so the microkernel
// reads panelW weights contiguously per reduction step. Channels beyond
// o are zero-padded.
func packPanels(w []int64, o, k int) []int64 {
	np := (o + panelW - 1) / panelW
	out := make([]int64, np*k*panelW)
	for pb := 0; pb < np; pb++ {
		for j := 0; j < k; j++ {
			for r := 0; r < panelW; r++ {
				oc := pb*panelW + r
				if oc < o {
					out[(pb*k+j)*panelW+r] = w[oc*k+j]
				}
			}
		}
	}
	return out
}

// rowSumsScaled returns z·Σ_j w[oc,j] per output channel: with the
// gather writing raw codes (0 for padding), acc_true = acc_raw − z·Σw
// exactly, which removes the per-element zero-point subtraction from the
// hot loop.
func rowSumsScaled(w []int64, o, k int, z int64) []int64 {
	sums := make([]int64, o)
	if z == 0 {
		return sums
	}
	for oc := 0; oc < o; oc++ {
		var s int64
		for _, v := range w[oc*k : (oc+1)*k] {
			s += v
		}
		sums[oc] = z * s
	}
	return sums
}

// convKey identifies a cached im2col gather-index map: everything the
// map depends on except the batch size (maps are per-sample).
type convKey struct {
	c, h, w, kH, kW, stride, pad int
}

// sharedPack is the shape-independent part of an instruction's
// prepacked state — weight panels (int64 for the legacy kernels, int8
// for the typed path), zero-point row sums, expanded epilogue constants.
// It is built once per (instruction, variant) and shared (read-only) by
// every executor bound to the program.
type sharedPack struct {
	wp    []int64
	wp32  []int32
	wps   []uint64 // SWAR lane-packed biased weights
	zsum  []int64
	bcorr []int64 // SWAR activation-bias correction ba·Σw per channel
	epi   epi
}

// sharedKey identifies a shared pack: the instruction plus which variant
// — typed (int8-panel), swar (lane-packed), or legacy (int64-panel) —
// one program can serve executors of all kinds concurrently (e.g. the
// bench harness comparing FastKernels against FastKernelsI64). The key
// also carries a weight-content fingerprint: a program whose weights
// were swapped in place (e.g. a hot reload routed to the same Program
// value, or a differently-pruned checkpoint under one model name) can
// never be served a stale panel plan built from the old content.
type sharedKey struct {
	idx   int
	typed bool
	swar  bool
	fp    uint64
}

// weightFP is an FNV-1a fingerprint of an instruction's weight content,
// mixed into sharedKey. O(numel) per executor bind — the same order as
// the packing it guards.
func weightFP(w *tensor.IntTensor) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range w.Data {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// packCache is the per-Program store of shared prepacked state and
// im2col index maps. A server's workers build executors lazily and
// concurrently, so access is mutex-guarded; everything handed out is
// immutable after construction.
type packCache struct {
	mu     sync.Mutex
	shared map[sharedKey]*sharedPack
	idx    map[convKey][]int32
}

// sharedFor returns (building on first use) the shared pack for key.
func (pc *packCache) sharedFor(key sharedKey, build func() *sharedPack) *sharedPack {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.shared == nil {
		pc.shared = map[sharedKey]*sharedPack{}
	}
	if s, ok := pc.shared[key]; ok {
		return s
	}
	s := build()
	pc.shared[key] = s
	return s
}

// indexMap returns (building on first use) the gather-index map for a
// conv geometry; identical geometries across instructions and executors
// share one map.
func (pc *packCache) indexMap(key convKey) []int32 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.idx == nil {
		pc.idx = map[convKey][]int32{}
	}
	if m, ok := pc.idx[key]; ok {
		return m
	}
	m := buildIndexMap(key)
	pc.idx[key] = m
	return m
}

// buildIndexMap enumerates, for every output site and every im2col
// column (ch, ky, kx in Im2ColIntTo's order), the source offset within
// one sample's data, or -1 for a padded tap.
func buildIndexMap(key convKey) []int32 {
	pp := tensor.ConvParams{Stride: key.stride, Padding: key.pad}
	oh, ow := pp.ConvOutSize(key.h, key.kH), pp.ConvOutSize(key.w, key.kW)
	colW := key.c * key.kH * key.kW
	idx := make([]int32, oh*ow*colW)
	pos := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < key.c; ch++ {
				base := ch * key.h * key.w
				for ky := 0; ky < key.kH; ky++ {
					iy := oy*key.stride - key.pad + ky
					for kx := 0; kx < key.kW; kx++ {
						ix := ox*key.stride - key.pad + kx
						if iy >= 0 && iy < key.h && ix >= 0 && ix < key.w {
							idx[pos] = int32(base + iy*key.w + ix)
						} else {
							idx[pos] = -1
						}
						pos++
					}
				}
			}
		}
	}
	return idx
}

// convPack is the bound state of a dense (groups == 1) convolution.
type convPack struct {
	n, c, h, w       int
	o, colW, spatial int
	tm, tiles, np    int
	sampleWords      int
	idx              []int32
	wp               []int64
	zsum             []int64
	epi              epi
	parallel         bool
}

// gconvPack is the bound state of a grouped/depthwise convolution: tap
// offsets for the register-blocked direct loop plus the interior region
// where no bounds checks are needed.
type gconvPack struct {
	n, c, h, w             int
	o, og, cg, kH, kW      int
	oh, ow, stride, pad    int
	oyLo, oyHi, oxLo, oxHi int
	off                    []int32 // cg·kH·kW tap offsets within the group slab
	zsum                   []int64
	epi                    epi
	parallel               bool
}

// linPack is the bound state of a linear layer.
type linPack struct {
	rows, k, o, np int
	wp             []int64
	zsum           []int64
	epi            epi
	parallel       bool
}

// tileSites picks the GEMM row-tile so one gathered panel
// (tile × colW int64 words) stays cache-resident.
func tileSites(colW, spatial int) int {
	tm := 4096 / colW
	if tm < 4 {
		tm = 4
	}
	if tm > 64 {
		tm = 64
	}
	if tm > spatial {
		tm = spatial
	}
	return tm
}

// prepConv binds a conv instruction: dense convs get the packed-GEMM
// state, grouped convs the direct-kernel state. Instructions the storage
// pass proved narrow-safe bind the typed int8-panel/int32-accumulate
// variant; everything else (including all-I64 registries) keeps the
// legacy int64 state, whose buffers the planner stored as I64.
func prepConv(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	if len(in) != 4 {
		return nil, fmt.Errorf("engine: conv %s input rank %d", it.Name, len(in))
	}
	// Sparse dispatch: the cost-driven plan picks the modeled-fastest
	// legal kernel for the instruction's zero structure (CSR and N:M
	// bind on the typed path, pair-skipping on the SWAR path — the
	// latter including instructions only the live-K lane bound admits).
	// pickDense falls through to the ordinary dense precedence.
	if sp := ex.sparseInstr(idx); sp != nil {
		pick, _, _ := sparsePlan(sp, ex.typedInstr(idx), ex.swarInstr(idx), ex.swarSparseInstr(idx))
		switch pick {
		case pickCSR, pickNM:
			return prepConvTyped(ex, idx, it)
		case pickPairSwar:
			return prepConvSwar(ex, idx, it)
		}
	}
	if ex.swarInstr(idx) {
		return prepConvSwar(ex, idx, it)
	}
	if ex.typedInstr(idx) {
		return prepConvTyped(ex, idx, it)
	}
	pp := it.P
	if pp.Stride <= 0 {
		pp.Stride = 1
	}
	if pp.Groups <= 0 {
		pp.Groups = 1
	}
	n, c, h, w := in[0], in[1], in[2], in[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	if pp.Groups > 1 {
		sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, fp: weightFP(it.W)}, func() *sharedPack {
			return &sharedPack{
				zsum: rowSumsScaled(it.W.Data, o, cg*kH*kW, it.InZero),
				epi:  newEpi(it, o),
			}
		})
		st := &gconvPack{
			n: n, c: c, h: h, w: w,
			o: o, og: o / pp.Groups, cg: cg, kH: kH, kW: kW,
			oh: oh, ow: ow, stride: pp.Stride, pad: pp.Padding,
			zsum: sh.zsum,
			epi:  sh.epi,
		}
		// Interior: output sites whose whole receptive field is in bounds.
		st.oyLo, st.oyHi = interiorRange(oh, h, kH, pp.Stride, pp.Padding)
		st.oxLo, st.oxHi = interiorRange(ow, w, kW, pp.Stride, pp.Padding)
		st.off = make([]int32, cg*kH*kW)
		t := 0
		for ch := 0; ch < cg; ch++ {
			for ky := 0; ky < kH; ky++ {
				for kx := 0; kx < kW; kx++ {
					st.off[t] = int32(ch*h*w + ky*w + kx)
					t++
				}
			}
		}
		st.parallel = n*o*oh*ow*cg*kH*kW >= 1<<15
		return st, nil
	}
	colW := c * kH * kW
	sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, fp: weightFP(it.W)}, func() *sharedPack {
		return &sharedPack{
			wp:   packPanels(it.W.Data, o, colW),
			zsum: rowSumsScaled(it.W.Data, o, colW, it.InZero),
			epi:  newEpi(it, o),
		}
	})
	st := &convPack{
		n: n, c: c, h: h, w: w,
		o: o, colW: colW, spatial: oh * ow,
		sampleWords: c * h * w,
		idx:         ex.prog.packs().indexMap(convKey{c: c, h: h, w: w, kH: kH, kW: kW, stride: pp.Stride, pad: pp.Padding}),
		wp:          sh.wp,
		zsum:        sh.zsum,
		epi:         sh.epi,
	}
	st.tm = tileSites(colW, st.spatial)
	st.tiles = (st.spatial + st.tm - 1) / st.tm
	st.np = (o + panelW - 1) / panelW
	st.parallel = n*st.spatial*colW*o >= 1<<16
	ex.NeedSlotScratch(st.tm * colW)
	return st, nil
}

// interiorRange returns [lo, hi) over output positions whose taps are
// all in bounds for one spatial axis.
func interiorRange(outN, inN, k, stride, pad int) (int, int) {
	lo := 0
	if pad > 0 {
		lo = (pad + stride - 1) / stride
	}
	hi := (inN - k + pad) / stride
	hi++
	if hi > outN {
		hi = outN
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// prepLinear binds a linear instruction; rank > 2 inputs run as
// row-major [rows, K] (ViT token tensors through the same panel GEMM).
func prepLinear(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	if len(in) < 2 {
		return nil, fmt.Errorf("engine: linear %s input rank %d", it.Name, len(in))
	}
	// Cost-driven sparse dispatch, mirroring prepConv.
	if sp := ex.sparseInstr(idx); sp != nil {
		pick, _, _ := sparsePlan(sp, ex.typedInstr(idx), ex.swarInstr(idx), ex.swarSparseInstr(idx))
		switch pick {
		case pickCSR, pickNM:
			return prepLinearTyped(ex, idx, it)
		case pickPairSwar:
			return prepLinearSwar(ex, idx, it)
		}
	}
	if ex.swarInstr(idx) {
		return prepLinearSwar(ex, idx, it)
	}
	if ex.typedInstr(idx) {
		return prepLinearTyped(ex, idx, it)
	}
	k := in[len(in)-1]
	rows := tensor.Numel(in) / k
	o := it.W.Shape[0]
	sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, fp: weightFP(it.W)}, func() *sharedPack {
		return &sharedPack{
			wp:   packPanels(it.W.Data, o, k),
			zsum: rowSumsScaled(it.W.Data, o, k, it.InZero),
			epi:  newEpi(it, o),
		}
	})
	st := &linPack{
		rows: rows, k: k, o: o,
		np:   (o + panelW - 1) / panelW,
		wp:   sh.wp,
		zsum: sh.zsum,
		epi:  sh.epi,
	}
	st.parallel = rows*k*o >= 1<<16
	return st, nil
}

// kernelConvPacked dispatches on the bound state built by prepConv.
func kernelConvPacked(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	switch st := (*ex.KernelState(idx)).(type) {
	case *convPack:
		runConvPacked(ex, st, it, in, out)
	case *gconvPack:
		runConvGroupedPacked(ex, st, it, in, out)
	case *convPackS:
		runConvSwar(ex, st, it, in, out)
	case *convPackT:
		runConvTyped(ex, st, it, in, out)
	case *gconvPackT:
		runConvGroupedTyped(ex, st, it, in, out)
	default:
		// No prepacked state (custom registry without the prep hook):
		// fall back to the im2col path.
		kernelConvFast(ex, idx, it, in, out)
	}
}

// runConvPacked: per (sample, site-tile) job, gather the tile's im2col
// panel through the cached index map, run the register-blocked GEMM
// against the packed weight panels, and finish each element through the
// fused epilogue straight into NCHW planes.
func runConvPacked(ex *Executor, st *convPack, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	add := fusedAddOperand(it, in)
	outD := out.Data
	colW := st.colW
	tensor.ParallelForSlotsN(st.n*st.tiles, ex.maxPar, st.parallel, func(job, slot int) {
		ni, t := job/st.tiles, job%st.tiles
		s0 := t * st.tm
		m := st.tm
		if s0+m > st.spatial {
			m = st.spatial - s0
		}
		panel := ex.SlotScratch(slot)[:m*colW]
		xs := x.Data[ni*st.sampleWords : (ni+1)*st.sampleWords]
		gatherPanel(panel, xs, st.idx[s0*colW:(s0+m)*colW], colW, m)
		outBase := ni * st.o * st.spatial
		for pb := 0; pb < st.np; pb++ {
			wp := st.wp[pb*colW*panelW : (pb+1)*colW*panelW]
			oc0 := pb * panelW
			nch := st.o - oc0
			if nch > panelW {
				nch = panelW
			}
			i := 0
			for ; i+2 <= m; i += 2 {
				a0 := panel[i*colW : (i+1)*colW]
				a1 := panel[(i+1)*colW : (i+2)*colW]
				var c00, c01, c02, c03, c10, c11, c12, c13 int64
				for j := 0; j < colW; j++ {
					wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
					av0, av1 := a0[j], a1[j]
					w0, w1, w2, w3 := wj[0], wj[1], wj[2], wj[3]
					c00 += av0 * w0
					c01 += av0 * w1
					c02 += av0 * w2
					c03 += av0 * w3
					c10 += av1 * w0
					c11 += av1 * w1
					c12 += av1 * w2
					c13 += av1 * w3
				}
				st.finishSite(outD, add, outBase, s0+i, oc0, nch, c00, c01, c02, c03)
				st.finishSite(outD, add, outBase, s0+i+1, oc0, nch, c10, c11, c12, c13)
			}
			if i < m {
				a0 := panel[i*colW : (i+1)*colW]
				var c0, c1, c2, c3 int64
				for j := 0; j < colW; j++ {
					wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
					av := a0[j]
					c0 += av * wj[0]
					c1 += av * wj[1]
					c2 += av * wj[2]
					c3 += av * wj[3]
				}
				st.finishSite(outD, add, outBase, s0+i, oc0, nch, c0, c1, c2, c3)
			}
		}
	})
}

// gatherPanel fills a [m, colW] im2col panel from one sample's codes via
// the index map (raw values; padded taps contribute 0 — the zero point
// is folded into the epilogue's row-sum correction).
func gatherPanel(panel, xs []int64, idx []int32, colW, m int) {
	for i := 0; i < m; i++ {
		row := panel[i*colW : (i+1)*colW]
		irow := idx[i*colW : (i+1)*colW]
		for j, id := range irow {
			if id >= 0 {
				row[j] = xs[id]
			} else {
				row[j] = 0
			}
		}
	}
}

// finishSite requantizes one site's panelW accumulators and scatters
// them into the NCHW output planes.
func (st *convPack) finishSite(outD, add []int64, outBase, s, oc0, nch int, c0, c1, c2, c3 int64) {
	accs := [panelW]int64{c0, c1, c2, c3}
	for r := 0; r < nch; r++ {
		oc := oc0 + r
		st.epi.store(outD, add, outBase+oc*st.spatial+s, accs[r]-st.zsum[oc], oc)
	}
}

// runConvGroupedPacked: one job per (sample, output channel) plane. The
// interior runs the precomputed tap-offset loop with two-site register
// blocking and no bounds checks; border sites take the checked loop.
// Both paths gather raw codes and correct with z·Σw, exactly like the
// dense kernel.
func runConvGroupedPacked(ex *Executor, st *gconvPack, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	x := in[0]
	add := fusedAddOperand(it, in)
	outD := out.Data
	wD := it.W.Data
	nt := len(st.off)
	tensor.ParallelForIntN(st.n*st.o, ex.maxPar, st.parallel, func(job int) {
		ni, oc := job/st.o, job%st.o
		g := oc / st.og
		wv := wD[oc*nt : (oc+1)*nt]
		xBase := (ni*st.c + g*st.cg) * st.h * st.w
		xd := x.Data
		base := (ni*st.o + oc) * st.oh * st.ow
		corr := st.zsum[oc]
		for oy := 0; oy < st.oh; oy++ {
			rowOff := base + oy*st.ow
			interiorRow := oy >= st.oyLo && oy < st.oyHi
			// Border columns (and whole border rows) take the checked path.
			oxLo, oxHi := st.oxLo, st.oxHi
			if !interiorRow {
				oxLo, oxHi = 0, 0
			}
			for ox := 0; ox < oxLo; ox++ {
				st.epi.store(outD, add, rowOff+ox, st.borderAcc(xd, wv, xBase, oy, ox)-corr, oc)
			}
			if interiorRow {
				rowBase := xBase + (oy*st.stride-st.pad)*st.w - st.pad
				ox := oxLo
				for ; ox+2 <= oxHi; ox += 2 {
					b0 := rowBase + ox*st.stride
					b1 := b0 + st.stride
					var s0, s1 int64
					for t := 0; t < nt; t++ {
						o := int(st.off[t])
						wt := wv[t]
						s0 += xd[b0+o] * wt
						s1 += xd[b1+o] * wt
					}
					st.epi.store(outD, add, rowOff+ox, s0-corr, oc)
					st.epi.store(outD, add, rowOff+ox+1, s1-corr, oc)
				}
				for ; ox < oxHi; ox++ {
					b0 := rowBase + ox*st.stride
					var s int64
					for t := 0; t < nt; t++ {
						s += xd[b0+int(st.off[t])] * wv[t]
					}
					st.epi.store(outD, add, rowOff+ox, s-corr, oc)
				}
			}
			for ox := oxHi; ox < st.ow; ox++ {
				st.epi.store(outD, add, rowOff+ox, st.borderAcc(xd, wv, xBase, oy, ox)-corr, oc)
			}
		}
	})
}

// borderAcc accumulates one output site with per-tap bounds checks
// (raw codes; out-of-bounds taps contribute 0).
func (st *gconvPack) borderAcc(xd, wv []int64, xBase, oy, ox int) int64 {
	var s int64
	for ch := 0; ch < st.cg; ch++ {
		xb := xBase + ch*st.h*st.w
		for ky := 0; ky < st.kH; ky++ {
			iy := oy*st.stride - st.pad + ky
			if iy < 0 || iy >= st.h {
				continue
			}
			row := xd[xb+iy*st.w : xb+(iy+1)*st.w]
			wRow := wv[(ch*st.kH+ky)*st.kW : (ch*st.kH+ky+1)*st.kW]
			for kx := 0; kx < st.kW; kx++ {
				ix := ox*st.stride - st.pad + kx
				if ix >= 0 && ix < st.w {
					s += row[ix] * wRow[kx]
				}
			}
		}
	}
	return s
}

// kernelLinearPacked runs the packed-panel GEMM over the input rows
// directly (no gather needed) with the zero point folded into the
// row-sum correction, eliminating the shifted input copy entirely.
func kernelLinearPacked(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if st, ok := (*ex.KernelState(idx)).(*linPackS); ok {
		runLinearSwar(ex, st, it, in, out)
		return
	}
	if st, ok := (*ex.KernelState(idx)).(*linPackT); ok {
		runLinearTyped(ex, st, it, in, out)
		return
	}
	st, ok := (*ex.KernelState(idx)).(*linPack)
	if !ok {
		kernelLinearFast(ex, idx, it, in, out)
		return
	}
	x := in[0]
	add := fusedAddOperand(it, in)
	outD := out.Data
	k := st.k
	tensor.ParallelForIntN(st.np, ex.maxPar, st.parallel, func(pb int) {
		wp := st.wp[pb*k*panelW : (pb+1)*k*panelW]
		oc0 := pb * panelW
		nch := st.o - oc0
		if nch > panelW {
			nch = panelW
		}
		for row := 0; row < st.rows; row++ {
			a0 := x.Data[row*k : (row+1)*k]
			var c0, c1, c2, c3 int64
			for j := 0; j < k; j++ {
				wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
				av := a0[j]
				c0 += av * wj[0]
				c1 += av * wj[1]
				c2 += av * wj[2]
				c3 += av * wj[3]
			}
			accs := [panelW]int64{c0, c1, c2, c3}
			for r := 0; r < nch; r++ {
				oc := oc0 + r
				st.epi.store(outD, add, row*st.o+oc, accs[r]-st.zsum[oc], oc)
			}
		}
	})
}
