package engine

// White-box SWAR tests: the storage pass's lane-overflow legality rule
// at its exact boundary, the scheduling tile splitter, and the arena
// span overlap predicate the wave builder relies on.

import (
	"testing"

	"torch2chip/internal/tensor"
)

// TestSwarEligibleBoundary: with int8 activations (full span 255) and
// weights spanning [−128, 127] (span 255), the SWAR path is legal up to
// K = 66051 and must fall back at K = 66052.
func TestSwarEligibleBoundary(t *testing.T) {
	if !swarEligible(66051, tensor.I8, -128, 127) {
		t.Fatal("K=66051 with full i8 spans must bind the SWAR path")
	}
	if swarEligible(66052, tensor.I8, -128, 127) {
		t.Fatal("K=66052 with full i8 spans must fall back to the int32 panel")
	}
	// U8 activations span the same 255 codes.
	if !swarEligible(66051, tensor.U8, -128, 127) || swarEligible(66052, tensor.U8, -128, 127) {
		t.Fatal("u8 storage must share the i8 boundary")
	}
	// Narrower weights relax the K bound proportionally: span 1 weights
	// admit K up to laneMax/255.
	if !swarEligible((1<<32-1)/255, tensor.I8, 0, 1) {
		t.Fatal("span-1 weights must admit K = laneMax/255")
	}
	if swarEligible((1<<32-1)/255+1, tensor.I8, 0, 1) {
		t.Fatal("span-1 weights must reject K = laneMax/255 + 1")
	}
	// 16-bit activations span 65535: even tiny K overflows quickly.
	if swarEligible(1<<16, tensor.I16, -128, 127) {
		t.Fatal("i16 activations at K=65536 must not bind SWAR")
	}
}

func TestSplitTileM(t *testing.T) {
	// One sample, 1024 sites, 64-site tile: 16 jobs already cover 8
	// workers — no split.
	if got := splitTileM(64, 1024, 1, 8); got != 64 {
		t.Fatalf("splitTileM kept-grid case: got %d, want 64", got)
	}
	// 64 sites in one 64-site tile is a single job; 8 workers force the
	// tile down to 8 sites (8 jobs).
	if got := splitTileM(64, 64, 1, 8); got != 8 {
		t.Fatalf("splitTileM split case: got %d, want 8", got)
	}
	// The floor holds even when the grid can never reach the worker count.
	if got := splitTileM(64, 8, 1, 64); got != 8 {
		t.Fatalf("splitTileM floor case: got %d, want 8", got)
	}
	// Serial executors never split.
	if got := splitTileM(64, 64, 1, 1); got != 64 {
		t.Fatalf("splitTileM serial case: got %d, want 64", got)
	}
}

func TestSpanOverlap(t *testing.T) {
	a := span{dt: tensor.I8, lo: 0, hi: 100}
	cases := []struct {
		b    span
		want bool
	}{
		{span{dt: tensor.I8, lo: 50, hi: 150}, true},   // partial overlap
		{span{dt: tensor.I8, lo: 100, hi: 200}, false}, // touching, half-open
		{span{dt: tensor.U8, lo: 50, hi: 150}, false},  // different arena
		{span{dt: tensor.I8, lo: 0, hi: 100}, true},    // identical
		{span{}, false}, // unplaced buffer
	}
	for _, c := range cases {
		if got := overlaps(a, c.b); got != c.want {
			t.Fatalf("overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := overlaps(c.b, a); got != c.want {
			t.Fatalf("overlaps(%v, %v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}
