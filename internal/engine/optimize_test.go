package engine_test

import (
	"bytes"
	"testing"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/intmath"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// mkScaler builds a small MulQuant for hand-crafted programs.
func mkScaler(t testing.TB, channels int, outBits int, signed bool, zero int64) *intmath.MulQuant {
	t.Helper()
	scale := make([]float32, channels)
	bias := make([]float32, channels)
	for i := range scale {
		scale[i] = 0.011 + 0.003*float32(i)
		bias[i] = float32(i%5) - 2
	}
	mq, err := intmath.NewMulQuant(scale, bias, 4, 12, outBits, signed, zero)
	if err != nil {
		t.Fatal(err)
	}
	return mq
}

// randomCodes fills an IntTensor with codes in [-lim, lim].
func randomCodes(g *tensor.RNG, lim int, shape ...int) *tensor.IntTensor {
	x := tensor.NewInt(shape...)
	for i := range x.Data {
		x.Data[i] = int64(g.Intn(2*lim+1) - lim)
	}
	return x
}

// execCodes plans, binds, and runs a program on codes with the given
// registry.
func execCodes(t *testing.T, p *engine.Program, codes *tensor.IntTensor, reg *engine.Registry) *tensor.IntTensor {
	t.Helper()
	ex, err := engine.NewExecutor(p, codes.Shape, engine.WithKernels(reg))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ex.ExecuteCodes(codes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSameCodes compares two code tensors exactly.
func assertSameCodes(t *testing.T, got, want *tensor.IntTensor, label string) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: %d codes, want %d", label, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: code[%d] = %d, want %d", label, i, got.Data[i], want.Data[i])
		}
	}
}

// convRescaleProgram builds input → conv → rescale → output by hand.
func convRescaleProgram(t *testing.T, g *tensor.RNG) *engine.Program {
	t.Helper()
	w := randomCodes(g, 20, 6, 3, 3, 3)
	p := &engine.Program{NumBufs: 3, Input: 0, Output: 2}
	p.Instrs = []engine.Instr{
		{
			Kind: engine.OpConv, Name: "layers.0", In: []int{0}, Out: 1,
			W: w, P: tensor.ConvParams{Stride: 1, Padding: 1}, InZero: 2,
			Scaler: mkScaler(t, 6, 8, false, 0), WBits: 8,
		},
		{
			Kind: engine.OpRescale, Name: "layers.1", In: []int{1}, Out: 2,
			Scaler: mkScaler(t, 1, 16, true, 0),
		},
	}
	return p
}

func TestFoldRescaleIntoConv(t *testing.T) {
	g := tensor.NewRNG(41)
	p := convRescaleProgram(t, g)
	q, st := engine.OptimizeStats(p, engine.OptFuse)
	if st.FoldedRescales != 1 || len(q.Instrs) != 1 {
		t.Fatalf("fold stats %+v, instrs %d", st, len(q.Instrs))
	}
	if q.Instrs[0].FusedRescale == nil || q.Instrs[0].Out != p.Output {
		t.Fatalf("conv did not absorb the rescale: %+v", q.Instrs[0])
	}
	// The original program is untouched.
	if len(p.Instrs) != 2 || p.Instrs[0].FusedRescale != nil {
		t.Fatal("Optimize mutated its input program")
	}
	codes := randomCodes(g, 120, 2, 3, 8, 8)
	want := execCodes(t, p, codes, engine.ReferenceKernels())
	for name, reg := range map[string]*engine.Registry{
		"fast": engine.FastKernels(), "reference": engine.ReferenceKernels(), "im2col": engine.Im2ColKernels(),
	} {
		assertSameCodes(t, execCodes(t, q, codes, reg), want, "fused/"+name)
	}
}

func TestFusedProgramZeroIntermediateBuffers(t *testing.T) {
	g := tensor.NewRNG(42)
	p := convRescaleProgram(t, g)
	q := engine.Optimize(p, engine.OptFuse)
	plan, err := q.PlanBuffers([]int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer 1 (the conv→rescale intermediate) is eliminated: the planner
	// must leave it unplaced, and only input+output bytes remain (the
	// hand-built program is unannotated, so storage is 8-byte I64).
	if plan.Offsets[1] != -1 {
		t.Fatalf("eliminated buffer still placed at %d", plan.Offsets[1])
	}
	want := int64(tensor.Numel([]int{1, 3, 8, 8})+tensor.Numel([]int{1, 6, 8, 8})) * 8
	if plan.ArenaBytes != want {
		t.Fatalf("arena %d bytes, want input+output = %d", plan.ArenaBytes, want)
	}
	unfusedPlan, err := p.PlanBuffers([]int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ArenaBytes >= unfusedPlan.ArenaBytes {
		t.Fatalf("fused arena %d not smaller than unfused %d", plan.ArenaBytes, unfusedPlan.ArenaBytes)
	}
}

func TestPlannerSingleInstructionProgram(t *testing.T) {
	g := tensor.NewRNG(43)
	w := randomCodes(g, 20, 4, 3, 3, 3)
	p := &engine.Program{NumBufs: 2, Input: 0, Output: 1}
	p.Instrs = []engine.Instr{{
		Kind: engine.OpConv, Name: "layers.0", In: []int{0}, Out: 1,
		W: w, P: tensor.ConvParams{Stride: 1, Padding: 1},
		Scaler: mkScaler(t, 4, 8, true, 0), WBits: 8,
	}}
	for _, lvl := range []engine.OptLevel{engine.OptNone, engine.OptFuse} {
		q := engine.Optimize(p, lvl)
		plan, err := q.PlanBuffers([]int{2, 3, 8, 8})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Offsets[0] < 0 || plan.Offsets[1] < 0 {
			t.Fatalf("opt %d: unplaced buffers: %v", lvl, plan.Offsets)
		}
		// Input and output are live simultaneously; they must not overlap.
		in0, in1 := plan.Offsets[0], plan.Offsets[0]+tensor.Numel(plan.Shapes[0])
		o0, o1 := plan.Offsets[1], plan.Offsets[1]+tensor.Numel(plan.Shapes[1])
		if in0 < o1 && o0 < in1 {
			t.Fatalf("opt %d: input [%d,%d) overlaps output [%d,%d)", lvl, in0, in1, o0, o1)
		}
		codes := randomCodes(g, 100, 2, 3, 8, 8)
		assertSameCodes(t, execCodes(t, q, codes, engine.FastKernels()),
			execCodes(t, q, codes, engine.ReferenceKernels()), "single-instr")
	}
}

func TestPlannerOutputAliasesLastFusedBuffer(t *testing.T) {
	// input → rescale(+fused add of input) → output: after fusion the
	// final instruction is elementwise over two dying inputs, so the
	// planner may write the program output in place over one of them.
	g := tensor.NewRNG(44)
	p := &engine.Program{NumBufs: 4, Input: 0, Output: 3}
	p.Instrs = []engine.Instr{
		{Kind: engine.OpRescale, Name: "r0", In: []int{0}, Out: 1, Scaler: mkScaler(t, 1, 16, true, 0)},
		{Kind: engine.OpRescale, Name: "r1", In: []int{0}, Out: 2, Scaler: mkScaler(t, 1, 16, true, 0)},
		{Kind: engine.OpAdd, Name: "add", In: []int{1, 2}, Out: 3, Shift: 4, ClampLo: -128, ClampHi: 127},
	}
	q, st := engine.OptimizeStats(p, engine.OptFuse)
	if st.FusedAdds != 1 || len(q.Instrs) != 2 {
		t.Fatalf("stats %+v, instrs %d", st, len(q.Instrs))
	}
	plan, err := q.PlanBuffers([]int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	last := q.Instrs[len(q.Instrs)-1]
	if !last.FusedAdd || last.Out != q.Output {
		t.Fatalf("last instr did not absorb the add: %+v", last)
	}
	aliased := false
	for _, b := range last.In {
		if plan.Offsets[q.Output] == plan.Offsets[b] {
			aliased = true
		}
	}
	if !aliased {
		t.Fatalf("output (offset %d) does not alias a dying fused input (offsets %v)",
			plan.Offsets[q.Output], plan.Offsets)
	}
	codes := randomCodes(g, 500, 2, 6)
	want := execCodes(t, p, codes, engine.ReferenceKernels())
	assertSameCodes(t, execCodes(t, q, codes, engine.FastKernels()), want, "aliased-output")
	assertSameCodes(t, execCodes(t, q, codes, engine.ReferenceKernels()), want, "aliased-output-ref")
}

func TestGroupedConvParityStridePadding(t *testing.T) {
	g := tensor.NewRNG(45)
	for _, tc := range []struct {
		name           string
		c, o, groups   int
		k, stride, pad int
		inZero         int64
	}{
		{"depthwise/s1", 8, 8, 8, 3, 1, 1, 3},
		{"depthwise/s2", 8, 8, 8, 3, 2, 1, 3},
		{"grouped/s2", 8, 16, 4, 3, 2, 1, -2},
		{"grouped/s3-pad2", 6, 12, 2, 5, 3, 2, 7},
		{"depthwise/s2-nopad", 8, 8, 8, 3, 2, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := randomCodes(g, 30, tc.o, tc.c/tc.groups, tc.k, tc.k)
			p := &engine.Program{NumBufs: 2, Input: 0, Output: 1}
			p.Instrs = []engine.Instr{{
				Kind: engine.OpConv, Name: "layers.0", In: []int{0}, Out: 1,
				W: w, P: tensor.ConvParams{Stride: tc.stride, Padding: tc.pad, Groups: tc.groups},
				InZero: tc.inZero, Scaler: mkScaler(t, tc.o, 8, false, 0), WBits: 8,
			}}
			codes := randomCodes(g, 120, 2, tc.c, 11, 11)
			want := execCodes(t, p, codes, engine.ReferenceKernels())
			assertSameCodes(t, execCodes(t, p, codes, engine.FastKernels()), want, "fast")
			assertSameCodes(t, execCodes(t, p, codes, engine.Im2ColKernels()), want, "im2col")
		})
	}
}

func TestFusionStatsOnZoo(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	for _, tc := range []struct {
		name  string
		build func(g *tensor.RNG) nn.Layer
	}{
		{"resnet20", func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet20(10)) }},
		{"mobilenet", func(g *tensor.RNG) nn.Layer {
			return models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 4})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(8)
			model := tc.build(g)
			x, _ := calib.Batch([]int{0, 1, 2, 3})
			model.Forward(x)
			im, _ := compile(t, model, calib)
			prog, err := engine.Lower(im)
			if err != nil {
				t.Fatal(err)
			}
			fused, st := engine.OptimizeStats(prog, engine.OptFuse)
			if st.InstrsAfter >= st.InstrsBefore {
				t.Fatalf("fusion did not reduce instructions: %+v", st)
			}
			if st.BuffersAfter > st.BuffersBefore {
				t.Fatalf("fusion grew the buffer set: %+v", st)
			}
			up, err := prog.PlanBuffers([]int{8, 3, 32, 32})
			if err != nil {
				t.Fatal(err)
			}
			fp, err := fused.PlanBuffers([]int{8, 3, 32, 32})
			if err != nil {
				t.Fatal(err)
			}
			if fp.ArenaBytes > up.ArenaBytes {
				t.Fatalf("fused arena %d grew over unfused %d", fp.ArenaBytes, up.ArenaBytes)
			}
			if fp.NaiveBytes > up.NaiveBytes {
				t.Fatalf("fused buffer total %d grew over unfused %d", fp.NaiveBytes, up.NaiveBytes)
			}
			// The fused program stays the bit-exact artifact.
			xb := g.Uniform(0, 1, 2, 3, 32, 32)
			assertBitIdentical(t, im, fused, xb, engine.FastKernels())
			assertBitIdentical(t, im, fused, xb, engine.ReferenceKernels())
		})
	}
}

func TestSerializeRoundTripsOptLevel(t *testing.T) {
	g := tensor.NewRNG(46)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	model := models.NewResNet(g, models.ResNet20(10))
	x, _ := calib.Batch([]int{0, 1})
	model.Forward(x)
	im, prog := compile(t, model, calib) // core.Compile applies OptFuse
	if prog.OptLevel != engine.OptFuse {
		t.Fatalf("compiled program opt level %d, want %d", prog.OptLevel, engine.OptFuse)
	}

	ck := export.NewCheckpoint(im.IntTensors(), nil)
	ck.Program = prog.Spec()
	if ck.Program.Version != engine.ProgramSpecVersion {
		t.Fatalf("spec version %d, want %d", ck.Program.Version, engine.ProgramSpecVersion)
	}
	var buf bytes.Buffer
	if err := ck.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := export.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := engine.FromCheckpoint(ck2)
	if err != nil {
		t.Fatal(err)
	}
	if prog2.OptLevel != engine.OptFuse {
		t.Fatalf("reloaded opt level %d, want %d", prog2.OptLevel, engine.OptFuse)
	}
	if len(prog2.Instrs) != len(prog.Instrs) {
		t.Fatalf("reloaded %d instrs, want %d (fused folds lost)", len(prog2.Instrs), len(prog.Instrs))
	}
	// A checkpoint saved from a fused program must reload bit-identical.
	xb := g.Uniform(0, 1, 2, 3, 32, 32)
	assertBitIdentical(t, im, prog2, xb, engine.FastKernels())
}
