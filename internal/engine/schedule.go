package engine

// Bind-time wave scheduling: the executor groups consecutive
// instructions that have no data or storage hazards between them into
// waves. At run time a wave whose members all carry a serial fallback
// (waveRunner) may execute its members concurrently on the shared
// worker pool — cross-instruction parallelism for independent IR nodes
// (e.g. the q/k/v projections of a transformer block) that are each too
// small to saturate the pool alone. Hazards are decided on arena
// intervals, not buffer IDs: the planner reuses freed arena ranges and
// aliases flattened views, so two distinct buffers may share storage —
// interval overlap within the same dtype arena is the ground truth.

import "torch2chip/internal/tensor"

// waveRunner is implemented by prepacked kernel states that can run
// their whole instruction serially on one parallel slot, touching only
// that slot's scratch. That is exactly the contract wave-parallel
// execution needs: members run concurrently, each confined to the slot
// the pool handed it. States that stage through the executor's shared
// grow-only scratch (legacy and elementwise kernels, the typed linear's
// shared accumulator) must not implement it.
type waveRunner interface {
	runSeq(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor, slot int)
	// seqUnits reports the instruction's parallel job count — the wave
	// heuristic only trades intra-op splitting for cross-instruction
	// concurrency when no member could saturate the pool by itself.
	seqUnits() int
}

// wave is one scheduling step of the bound program.
type wave struct {
	members []int
	safe    bool // every member implements waveRunner
	units   int  // largest member job count
}

// span is a half-open element range in one dtype arena. The zero
// span (lo == hi) never overlaps anything.
type span struct {
	dt     tensor.DType
	lo, hi int
}

func overlaps(a, b span) bool {
	return a.dt == b.dt && a.lo < b.hi && b.lo < a.hi
}

// bufInterval returns the arena range buffer b occupies (zero interval
// for unplaced buffers, which are never live operands).
func (ex *Executor) bufInterval(b int) span {
	if b < 0 || ex.plan.Offsets[b] < 0 {
		return span{}
	}
	off := ex.plan.Offsets[b]
	return span{dt: ex.plan.DTypes[b], lo: off, hi: off + tensor.Numel(ex.plan.Shapes[b])}
}

// buildWaves greedily grows waves in program order. An instruction
// joins the current wave iff the wave (and the instruction) are
// wave-safe and its output interval is disjoint from every member's
// reads and writes, and its reads are disjoint from every member's
// write — the classic RAW/WAR/WAW conditions on storage. Anything else
// closes the wave; a non-wave-safe instruction always sits in a
// singleton (the next instruction sees safe == false and flushes).
func (ex *Executor) buildWaves() {
	var waves []wave
	cur := wave{safe: true}
	var curW, curR []span
	flush := func() {
		if len(cur.members) > 0 {
			waves = append(waves, cur)
		}
		cur = wave{safe: true}
		curW, curR = curW[:0], curR[:0]
	}
	for i := range ex.prog.Instrs {
		it := &ex.prog.Instrs[i]
		wr, isWR := ex.states[i].(waveRunner)
		w := ex.bufInterval(it.Out)
		var rs []span
		for _, b := range it.In {
			rs = append(rs, ex.bufInterval(b))
		}
		hazard := !isWR || !cur.safe
		if !hazard {
		scan:
			for _, pw := range curW {
				if overlaps(w, pw) {
					hazard = true
					break
				}
				for _, r := range rs {
					if overlaps(r, pw) {
						hazard = true
						break scan
					}
				}
			}
			if !hazard {
				for _, pr := range curR {
					if overlaps(w, pr) {
						hazard = true
						break
					}
				}
			}
		}
		if hazard {
			flush()
		}
		cur.members = append(cur.members, i)
		cur.safe = cur.safe && isWR
		curW = append(curW, w)
		curR = append(curR, rs...)
		if isWR {
			if u := wr.seqUnits(); u > cur.units {
				cur.units = u
			}
		}
	}
	flush()
	ex.waves = waves
}

// WaveSummary reports the member count of every scheduling wave in
// program order — introspection for tests and the bench harness (a
// count > 1 means those instructions may run concurrently).
func (ex *Executor) WaveSummary() []int {
	out := make([]int, len(ex.waves))
	for i := range ex.waves {
		out[i] = len(ex.waves[i].members)
	}
	return out
}

// WaveParallelRuns counts how many waves have executed their members
// concurrently since bind — the run-time heuristic can decline a wave
// (pool width 1, or a member already saturates the pool), so tests and
// the bench harness use this to tell whether cross-instruction
// parallelism actually engaged.
func (ex *Executor) WaveParallelRuns() int { return ex.waveRuns }

// kernelWorkers is the parallelism actually available to this
// executor's kernels: the pool's effective width clamped by the
// executor's own WithMaxParallel bound.
func (ex *Executor) kernelWorkers() int {
	w := tensor.Parallelism()
	if ex.maxPar > 0 && ex.maxPar < w {
		w = ex.maxPar
	}
	return w
}

// splitTileM halves a GEMM site tile until the (sample × tile) job grid
// offers at least one job per available worker, so small layers still
// scale instead of leaving workers idle. Tile size never affects
// values — each site's accumulator and epilogue are element-local — so
// this is a pure scheduling choice. The floor keeps the microkernel's
// register blocking worthwhile.
func splitTileM(tm, spatial, n, workers int) int {
	for tm > 8 && n*((spatial+tm-1)/tm) < workers {
		tm >>= 1
	}
	return tm
}
