package engine

// Bind-time wave scheduling: the planner co-plans placement with a wave
// schedule (plan.go) — mutually independent GEMM instructions are
// grouped into waves whose outputs the planner keeps in disjoint arena
// regions, under a configurable arena-growth budget. The executor
// consumes that schedule here: at bind it flattens each parallel wave's
// members into one combined job grid (every member contributes its
// intra-op tiles), and at run time the whole grid dispatches as a
// single pool pass — cross-instruction parallelism for independent IR
// nodes (e.g. the q/k/v projections of a transformer block) without
// giving up intra-op splitting for the members that need it.

import "torch2chip/internal/tensor"

// waveRunner is implemented by prepacked kernel states that can expose
// their instruction as a grid of slot-confined jobs: jobs returns a
// body executing one job on one parallel slot (touching only that
// slot's scratch) plus the job count. That is exactly the contract
// wave-parallel execution needs — jobs from different members run
// concurrently, each confined to the slot the pool handed it. States
// that stage through the executor's shared grow-only scratch (legacy
// and elementwise kernels) must not implement it.
type waveRunner interface {
	jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int)
}

// wave is one scheduling step of the bound program.
type wave struct {
	members []int
	safe    bool // planner marked parallel AND every member binds a waveRunner
	bodies  []func(job, slot int)
	jobOff  []int // prefix sums: member i owns jobs [jobOff[i], jobOff[i+1])
}

// span is a half-open element range in one dtype arena. The zero
// span (lo == hi) never overlaps anything.
type span struct {
	dt     tensor.DType
	lo, hi int
}

func overlaps(a, b span) bool {
	return a.dt == b.dt && a.lo < b.hi && b.lo < a.hi
}

// bufInterval returns the arena range buffer b occupies (zero interval
// for unplaced buffers, which are never live operands).
func (ex *Executor) bufInterval(b int) span {
	if b < 0 || ex.plan.Offsets[b] < 0 {
		return span{}
	}
	off := ex.plan.Offsets[b]
	return span{dt: ex.plan.DTypes[b], lo: off, hi: off + tensor.Numel(ex.plan.Shapes[b])}
}

// waveDisjoint re-checks the classic RAW/WAR/WAW conditions on arena
// storage for one planned wave: every member's output interval must be
// disjoint from every other member's reads and writes. The planner
// guarantees this by construction (same-step outputs never share
// placement, and members' inputs predate the wave); the re-check is a
// cheap bind-time assertion that demotes the wave to serial instead of
// racing if a future planner change breaks the invariant.
func (ex *Executor) waveDisjoint(members []int) bool {
	for i, mi := range members {
		w := ex.bufInterval(ex.prog.Instrs[mi].Out)
		for j, mj := range members {
			if i == j {
				continue
			}
			if overlaps(w, ex.bufInterval(ex.prog.Instrs[mj].Out)) {
				return false
			}
			for _, b := range ex.prog.Instrs[mj].In {
				if overlaps(w, ex.bufInterval(b)) {
					return false
				}
			}
		}
	}
	return true
}

// buildWaves materializes the plan's wave schedule for this binding: a
// parallel wave is kept iff every member's bound state implements
// waveRunner and the placement re-check passes; it then caches each
// member's job body and the combined grid's prefix sums so run() can
// dispatch the whole wave as one pool pass with zero per-call setup.
func (ex *Executor) buildWaves() {
	waves := make([]wave, 0, len(ex.plan.Schedule))
	for _, pw := range ex.plan.Schedule {
		wv := wave{members: pw.Members}
		if pw.Parallel && len(pw.Members) >= 2 {
			wv.safe = true
			for _, m := range pw.Members {
				if _, ok := ex.states[m].(waveRunner); !ok {
					wv.safe = false
					break
				}
			}
			if wv.safe && !ex.waveDisjoint(pw.Members) {
				wv.safe = false
			}
			if wv.safe {
				wv.bodies = make([]func(job, slot int), len(pw.Members))
				wv.jobOff = make([]int, len(pw.Members)+1)
				for i, m := range pw.Members {
					it := &ex.prog.Instrs[m]
					body, n := ex.states[m].(waveRunner).jobs(ex, m, it, ex.opIns[m], ex.bufs[it.Out])
					wv.bodies[i] = body
					wv.jobOff[i+1] = wv.jobOff[i] + n
				}
			}
		}
		waves = append(waves, wv)
	}
	ex.waves = waves
}

// WaveSummary reports the member count of every scheduling wave in
// program order — introspection for tests and the bench harness (a
// count > 1 means those instructions may run concurrently).
func (ex *Executor) WaveSummary() []int {
	out := make([]int, len(ex.waves))
	for i := range ex.waves {
		out[i] = len(ex.waves[i].members)
	}
	return out
}

// WaveParallelRuns counts how many waves have executed their members
// concurrently since bind — the run-time gate can decline a wave (pool
// width 1), so tests and the bench harness use this to tell whether
// cross-instruction parallelism actually engaged.
func (ex *Executor) WaveParallelRuns() int { return ex.waveRuns }

// kernelWorkers is the parallelism actually available to this
// executor's kernels: the pool's effective width clamped by the
// executor's own WithMaxParallel bound.
func (ex *Executor) kernelWorkers() int {
	w := tensor.Parallelism()
	if ex.maxPar > 0 && ex.maxPar < w {
		w = ex.maxPar
	}
	return w
}

// splitTileM halves a GEMM site tile until the (sample × tile) job grid
// offers at least one job per available worker, so small layers still
// scale instead of leaving workers idle. Tile size never affects
// values — each site's accumulator and epilogue are element-local — so
// this is a pure scheduling choice. The floor keeps the microkernel's
// register blocking worthwhile.
func splitTileM(tm, spatial, n, workers int) int {
	for tm > 8 && n*((spatial+tm-1)/tm) < workers {
		tm >>= 1
	}
	return tm
}
