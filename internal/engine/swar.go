package engine

// SWAR lane-packed GEMM microkernels: two output channels share one
// 64-bit accumulator word (32-bit lanes), so every multiply retires two
// MACs. Both multiplicands are biased non-negative at bind time —
// activations gathered as bytes a' = a − lo(dtype) ∈ [0, 255], weights
// packed as w' = w − wMin ∈ [0, wSpan] — which makes lane sums monotone:
// as long as the final lane value fits 32 bits (the storage pass proves
// K·aSpan·wSpan ≤ 2³²−1 per instruction), no carry ever crosses lanes.
// The raw dot product is recovered exactly from the biased one,
//
//	S = S' − bw·ΣA'(site) − ba·Σw(channel),
//
// where ΣA' is the per-site sum of gathered bytes (computed during the
// gather, padding included) and Σw the per-channel weight row sum; the
// result lands in the same int32 accumulator tile and flows through the
// identical finishSegOut epilogue (zero-point row-sum correction,
// requantize, fused epilogue) as the int32-panel path — bit-identity by
// construction. Cache story: a byte panel holds 8× the sites of an int64
// panel per cache line (4 codes per 32-bit word), so SWAR tiles target
// larger site counts while staying L1-resident; K is never split — the
// legality bound already caps it.

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// swarLanes is the number of output channels per packed accumulator word.
const swarLanes = intmath.SwarLanes

// convPackS is the bound state of a SWAR convolution. A non-nil skip
// routes the GEMM through the pair-skipping kernel, which iterates only
// the live (nonzero-pair) K positions of each panel and accumulates the
// live byte sums its bias correction needs in-loop; instructions whose
// pruned weights pass only the live-K lane bound (storageInfo.swarSparse)
// are ONLY legal with skip set.
type convPackS struct {
	n, c, h, w       int
	o, colW, spatial int
	tm, tiles, np    int
	sampleElems      int
	kH, kW           int
	stride, pad, ow  int
	oyLo, oyHi       int // interior rows: all taps in bounds
	oxLo, oxHi       int // interior cols
	ad               tensor.DType
	idx              []int32
	wps              []uint64
	skip             *panelSkip
	zsum             []int64 // z·Σw per channel (epilogue correction)
	bcorr            []int64 // ba·Σw per channel (activation-bias correction)
	ba, bw           int64
	epi              epi
	parallel         bool
}

// linPackS is the bound state of a SWAR linear layer (row-tiled; skip
// as in convPackS).
type linPackS struct {
	rows, k, o, np int
	tm, tiles      int
	ad             tensor.DType
	wps            []uint64
	skip           *panelSkip
	zsum           []int64
	bcorr          []int64
	ba, bw         int64
	epi            epi
	parallel       bool
}

// swarInstr reports whether instruction idx takes the SWAR lane-packed
// path under this executor's registry.
func (ex *Executor) swarInstr(idx int) bool {
	return ex.reg.swar && ex.stor != nil && ex.stor.swar[idx]
}

// packPanelsSwar packs biased weights w' = w + bw into lane pairs,
// de-interleaved per panel: the first k words of a panel hold channels
// (0,1) in (low, high) lanes for each tap j, the next k words channels
// (2,3). The split-half layout lets the microkernel index both word
// streams with the same tap counter the range loop already bounds.
// Channels beyond o pack lane value 0, which contributes nothing and is
// never extracted.
func packPanelsSwar(w []int64, o, k int, bw int64) []uint64 {
	np := (o + panelW - 1) / panelW
	out := make([]uint64, np*k*swarLanes)
	for pb := 0; pb < np; pb++ {
		lo := out[pb*k*swarLanes : pb*k*swarLanes+k]
		hi := out[pb*k*swarLanes+k : (pb+1)*k*swarLanes]
		for j := 0; j < k; j++ {
			var lane [panelW]uint32
			for r := 0; r < panelW; r++ {
				if oc := pb*panelW + r; oc < o {
					lane[r] = uint32(w[oc*k+j] + bw)
				}
			}
			lo[j] = intmath.PackLanes2(lane[0], lane[1])
			hi[j] = intmath.PackLanes2(lane[2], lane[3])
		}
	}
	return out
}

// tileSitesSwar picks the SWAR site tile: byte panels pack 8× the sites
// of an int64 panel per cache line, so the target is 16 KiB of gathered
// activations per tile (L1-resident alongside the packed weight panel).
func tileSitesSwar(colW, spatial int) int {
	tm := 16384 / colW
	if tm < 4 {
		tm = 4
	}
	if tm > 64 {
		tm = 64
	}
	if tm > spatial {
		tm = spatial
	}
	return tm
}

// swarShared builds (or fetches) the shared SWAR pack of an instruction.
func swarShared(ex *Executor, idx int, it *Instr, o, k int, ba, bw int64) *sharedPack {
	return ex.prog.packs().sharedFor(sharedKey{idx: idx, swar: true, fp: weightFP(it.W)}, func() *sharedPack {
		wsum := rowSumsScaled(it.W.Data, o, k, 1)
		bc := make([]int64, o)
		for i, s := range wsum {
			bc[i] = ba * s
		}
		return &sharedPack{
			wps:   packPanelsSwar(it.W.Data, o, k, bw),
			zsum:  rowSumsScaled(it.W.Data, o, k, it.InZero),
			bcorr: bc,
			epi:   newEpi(it, o),
		}
	})
}

// swarBiases derives the activation and weight biases of an instruction:
// ba from the input's resolved storage dtype (full span, so any accepted
// code is safe), bw from the actual weight minimum.
func swarBiases(ad tensor.DType, w *tensor.IntTensor) (ba, bw int64) {
	lo, _ := ad.Range()
	wMin, _ := w.MinMax()
	return -lo, -wMin
}

// prepConvSwar binds a dense conv onto the SWAR lane-packed path.
func prepConvSwar(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	ad := ex.plan.DTypes[it.In[0]]
	if ad != tensor.I8 && ad != tensor.U8 {
		return nil, fmt.Errorf("engine: swar conv %s input dtype %s", it.Name, ad)
	}
	pp := it.P
	if pp.Stride <= 0 {
		pp.Stride = 1
	}
	n, c, h, w := in[0], in[1], in[2], in[3]
	o, _, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	colW := c * kH * kW
	ba, bw := swarBiases(ad, it.W)
	sh := swarShared(ex, idx, it, o, colW, ba, bw)
	st := &convPackS{
		n: n, c: c, h: h, w: w,
		o: o, colW: colW, spatial: oh * ow,
		sampleElems: c * h * w,
		kH:          kH, kW: kW,
		stride: pp.Stride, pad: pp.Padding, ow: ow,
		ad:    ad,
		idx:   ex.prog.packs().indexMap(convKey{c: c, h: h, w: w, kH: kH, kW: kW, stride: pp.Stride, pad: pp.Padding}),
		wps:   sh.wps,
		zsum:  sh.zsum,
		bcorr: sh.bcorr,
		ba:    ba,
		bw:    bw,
		epi:   sh.epi,
	}
	st.oyLo, st.oyHi = interiorRange(oh, h, kH, pp.Stride, pp.Padding)
	st.oxLo, st.oxHi = interiorRange(ow, w, kW, pp.Stride, pp.Padding)
	if sp := ex.sparseInstr(idx); sp != nil && ex.sparsePickFor(idx) == pickPairSwar {
		st.skip = sp.skip
	}
	st.tm = splitTileM(tileSitesSwar(colW, st.spatial), st.spatial, n, ex.kernelWorkers())
	st.tiles = (st.spatial + st.tm - 1) / st.tm
	st.np = (o + panelW - 1) / panelW
	st.parallel = n*st.spatial*colW*o >= 1<<16
	// Staging: fused-add chunk plus per-site byte sums in the int64 slot,
	// the biased byte panel in the u8 slot, the accumulator tile shared
	// with the int32-panel path.
	ex.NeedSlotScratch(2 * st.tm)
	ex.NeedSlotTyped(tensor.U8, st.tm*colW)
	ex.NeedAccTile(st.tm * st.o)
	return st, nil
}

// prepLinearSwar binds a linear layer onto the SWAR path (rank > 2
// inputs run as row-major [rows, K], tiled over rows).
func prepLinearSwar(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	ad := ex.plan.DTypes[it.In[0]]
	if ad != tensor.I8 && ad != tensor.U8 {
		return nil, fmt.Errorf("engine: swar linear %s input dtype %s", it.Name, ad)
	}
	k := in[len(in)-1]
	rows := tensor.Numel(in) / k
	o := it.W.Shape[0]
	ba, bw := swarBiases(ad, it.W)
	sh := swarShared(ex, idx, it, o, k, ba, bw)
	st := &linPackS{
		rows: rows, k: k, o: o,
		np:    (o + panelW - 1) / panelW,
		ad:    ad,
		wps:   sh.wps,
		zsum:  sh.zsum,
		bcorr: sh.bcorr,
		ba:    ba,
		bw:    bw,
		epi:   sh.epi,
	}
	if sp := ex.sparseInstr(idx); sp != nil && ex.sparsePickFor(idx) == pickPairSwar {
		st.skip = sp.skip
	}
	st.tm = splitTileM(tileSitesSwar(k, rows), rows, 1, ex.kernelWorkers())
	st.tiles = (rows + st.tm - 1) / st.tm
	st.parallel = rows*k*o >= 1<<16
	// Staging: per-row int64 requantize chunk + fused-add chunk + byte
	// sums; the biased byte panel; the row-major accumulator tile.
	ex.NeedSlotScratch(2*o + st.tm)
	ex.NeedSlotTyped(tensor.U8, st.tm*k)
	ex.NeedAccTile(st.tm * st.o)
	return st, nil
}

// gatherPanelBytes fills a [m, colW] biased byte panel for sites
// [s0, s0+m) of one sample and records each site's byte sum ΣA'.
// Interior sites (every tap in bounds) gather kW-contiguous byte runs
// straight from the input planes — no index loads, no branches; border
// sites fall back to the index map, where padded taps write the bias
// byte (raw 0), exactly mirroring the raw gather's zero-fill.
func gatherPanelBytes[A tensor.Elem](panel []uint8, sums []int64, xs []A, st *convPackS, s0, m int) {
	ba := st.ba
	colW := st.colW
	kW, kH, hw := st.kW, st.kH, st.h*st.w
	oy := s0 / st.ow
	ox := s0 - oy*st.ow
	for i := 0; i < m; i++ {
		row := panel[i*colW : (i+1)*colW]
		if oy >= st.oyLo && oy < st.oyHi && ox >= st.oxLo && ox < st.oxHi {
			base := (oy*st.stride-st.pad)*st.w + ox*st.stride - st.pad
			var sum int64
			switch {
			case kW == 1 && kH == 1:
				// 1×1 conv: one byte per channel plane, stride h·w.
				tap := base
				for ch := range row {
					b := uint8(int64(xs[tap]) + ba)
					row[ch] = b
					sum += int64(b)
					tap += hw
				}
			case kW == 3:
				// 3-wide kernels: each (channel, row) run is three
				// contiguous bytes.
				p := 0
				tapc := base
				for ch := 0; ch < st.c; ch++ {
					tap := tapc
					for ky := 0; ky < kH; ky++ {
						src := xs[tap : tap+3]
						dst := row[p:][:3]
						b0 := uint8(int64(src[0]) + ba)
						b1 := uint8(int64(src[1]) + ba)
						b2 := uint8(int64(src[2]) + ba)
						dst[0] = b0
						dst[1] = b1
						dst[2] = b2
						sum += int64(b0) + int64(b1) + int64(b2)
						tap += st.w
						p += 3
					}
					tapc += hw
				}
			default:
				p := 0
				tapc := base
				for ch := 0; ch < st.c; ch++ {
					tap := tapc
					for ky := 0; ky < kH; ky++ {
						src := xs[tap : tap+kW]
						dst := row[p:][:len(src)]
						for t, v := range src {
							b := uint8(int64(v) + ba)
							dst[t] = b
							sum += int64(b)
						}
						tap += st.w
						p += kW
					}
					tapc += hw
				}
			}
			sums[i] = sum
		} else {
			irow := st.idx[(oy*st.ow+ox)*colW:][:colW]
			pad := uint8(ba)
			var sum int64
			for j, id := range irow {
				b := pad
				if id >= 0 {
					b = uint8(int64(xs[id]) + ba)
				}
				row[j] = b
				sum += int64(b)
			}
			sums[i] = sum
		}
		ox++
		if ox == st.ow {
			ox = 0
			oy++
		}
	}
}

// gatherRowBytes fills a [m, k] biased byte panel straight from
// contiguous input rows (the linear layout) and records row byte sums.
func gatherRowBytes[A tensor.Elem](panel []uint8, sums []int64, xs []A, k, m int, ba int64) {
	for i := 0; i < m; i++ {
		xrow := xs[i*k : (i+1)*k]
		row := panel[i*k:][:len(xrow)]
		var s int64
		for j, v := range xrow {
			b := uint8(int64(v) + ba)
			row[j] = b
			s += int64(b)
		}
		sums[i] = s
	}
}

// gemmPanelsSwar is the lane-packed microkernel: per packed weight panel
// and site pair, four 64-bit accumulator words carry eight channel sums
// (two lanes each); the epilogue extracts the lanes, removes both bias
// corrections, and stores exact raw int32 dot products into the
// accumulator tile at acc[oc·cs + site·rs] (cs = tile sites, rs = 1 for
// the conv's channel-major tile; cs = 1, rs = o for the linear's
// row-major tile).
func gemmPanelsSwar(acc []int32, panel []uint8, wps []uint64, sums, bcorr []int64, bw int64, m, colW, o, np, cs, rs int) {
	for pb := 0; pb < np; pb++ {
		// Split-half panel layout: wa[j] carries channels (0,1) of tap j,
		// wb[j] channels (2,3). Re-slicing both halves (and the site rows
		// below) to exactly colW lets the compiler drop every bounds check
		// in the inner loop — the range variable proves them all.
		wp := wps[pb*colW*swarLanes : (pb+1)*colW*swarLanes]
		wa := wp[:colW]
		wb := wp[colW:][:colW]
		oc0 := pb * panelW
		nch := o - oc0
		if nch > panelW {
			nch = panelW
		}
		i := 0
		// Four sites per step: eight independent accumulator words hide
		// the multiply latency, and each packed weight load is reused
		// across four sites.
		for ; i+4 <= m; i += 4 {
			a0 := panel[i*colW:][:colW]
			a1 := panel[(i+1)*colW:][:colW]
			a2 := panel[(i+2)*colW:][:colW]
			a3 := panel[(i+3)*colW:][:colW]
			var p00, p01, p10, p11, p20, p21, p30, p31 uint64
			for j := range wa {
				w01 := wa[j]
				w23 := wb[j]
				av0 := uint64(a0[j])
				av1 := uint64(a1[j])
				av2 := uint64(a2[j])
				av3 := uint64(a3[j])
				p00 += av0 * w01
				p01 += av0 * w23
				p10 += av1 * w01
				p11 += av1 * w23
				p20 += av2 * w01
				p21 += av2 * w23
				p30 += av3 * w01
				p31 += av3 * w23
			}
			storeSwarSite(acc, bcorr, oc0, nch, i, cs, rs, bw*sums[i], p00, p01)
			storeSwarSite(acc, bcorr, oc0, nch, i+1, cs, rs, bw*sums[i+1], p10, p11)
			storeSwarSite(acc, bcorr, oc0, nch, i+2, cs, rs, bw*sums[i+2], p20, p21)
			storeSwarSite(acc, bcorr, oc0, nch, i+3, cs, rs, bw*sums[i+3], p30, p31)
		}
		for ; i < m; i++ {
			a0 := panel[i*colW:][:colW]
			var p00, p01 uint64
			for j := range wa {
				av0 := uint64(a0[j])
				p00 += av0 * wa[j]
				p01 += av0 * wb[j]
			}
			storeSwarSite(acc, bcorr, oc0, nch, i, cs, rs, bw*sums[i], p00, p01)
		}
	}
}

// storeSwarSite extracts up to panelW lanes of one site, removes the
// per-site (bw·ΣA') and per-channel (ba·Σw) bias corrections, and writes
// the exact raw accumulators. Full panels (the common case) store all
// four lanes without the remainder loop.
func storeSwarSite(acc []int32, bcorr []int64, oc0, nch, i, cs, rs int, siteCorr int64, p01, p23 uint64) {
	base := oc0*cs + i*rs
	if nch == panelW {
		bc := bcorr[oc0:][:panelW]
		acc[base] = int32(intmath.LaneLo(p01) - siteCorr - bc[0])
		acc[base+cs] = int32(intmath.LaneHi(p01) - siteCorr - bc[1])
		acc[base+2*cs] = int32(intmath.LaneLo(p23) - siteCorr - bc[2])
		acc[base+3*cs] = int32(intmath.LaneHi(p23) - siteCorr - bc[3])
		return
	}
	lanes := [panelW]int64{
		intmath.LaneLo(p01), intmath.LaneHi(p01),
		intmath.LaneLo(p23), intmath.LaneHi(p23),
	}
	for r := 0; r < nch; r++ {
		acc[base+r*cs] = int32(lanes[r] - siteCorr - bcorr[oc0+r])
	}
}

// runConvSwar dispatches the SWAR conv on the input storage dtype
// (selection guarantees an 8-bit dtype).
func runConvSwar(ex *Executor, st *convPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if st.ad == tensor.U8 {
		runConvSwarA[uint8](ex, st, it, in, out)
		return
	}
	runConvSwarA[int8](ex, st, it, in, out)
}

// runConvSwarA: per (sample, site-tile) job, gather the tile's biased
// byte panel plus per-site sums, run the lane-packed GEMM into the
// channel-major int32 tile, and finish each channel through the shared
// typed epilogue.
func runConvSwarA[A tensor.Elem](ex *Executor, st *convPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	tensor.ParallelForSlotsN(st.n*st.tiles, ex.maxPar, st.parallel, convSwarJob[A](ex, st, it, in, out))
}

// convSwarJob builds the per-(sample, site-tile) job body shared by the
// parallel loop and the serial wave fallback.
func convSwarJob[A tensor.Elem](ex *Executor, st *convPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) func(job, slot int) {
	xs := typedData[A](in[0])
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	colW, o := st.colW, st.o
	return func(job, slot int) {
		ni, t := job/st.tiles, job%st.tiles
		s0 := t * st.tm
		m := st.tm
		if s0+m > st.spatial {
			m = st.spatial - s0
		}
		panel := ex.slotU8[slot][:m*colW]
		sc := ex.SlotScratch(slot)
		addw, sums := sc[:st.tm], sc[st.tm:st.tm+m]
		sample := xs[ni*st.sampleElems : (ni+1)*st.sampleElems]
		gatherPanelBytes(panel, sums, sample, st, s0, m)
		acc := ex.AccTile(slot)
		if st.skip != nil {
			gemmPanelsSwarSparse(acc, panel, st.wps, st.skip, st.bcorr, st.bw, m, colW, o, st.np, m, 1)
		} else {
			gemmPanelsSwar(acc, panel, st.wps, sums, st.bcorr, st.bw, m, colW, o, st.np, m, 1)
		}
		outBase := ni * o * st.spatial
		for oc := 0; oc < o; oc++ {
			off := outBase + oc*st.spatial + s0
			var bv []int64
			if add != nil {
				bv = addw[:m]
				add.ReadInt64(bv, off)
			}
			finishSegOut(out, off, acc[oc*m:(oc+1)*m], bv, &st.epi, st.zsum[oc], oc)
		}
	}
}

// jobs exposes the conv as its (sample × site-tile) grid for wave
// execution (waveRunner).
func (st *convPackS) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	var body func(job, slot int)
	if st.ad == tensor.U8 {
		body = convSwarJob[uint8](ex, st, it, in, out)
	} else {
		body = convSwarJob[int8](ex, st, it, in, out)
	}
	return body, st.n * st.tiles
}

// runLinearSwar dispatches the SWAR linear on the input storage dtype.
func runLinearSwar(ex *Executor, st *linPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if st.ad == tensor.U8 {
		runLinearSwarA[uint8](ex, st, it, in, out)
		return
	}
	runLinearSwarA[int8](ex, st, it, in, out)
}

// runLinearSwarA: per row-tile job, gather biased byte rows plus sums,
// run the lane-packed GEMM into the row-major int32 tile, then finish
// row by row — widen, correct, requantize, fused epilogue — through the
// slot's int64 staging chunk into the output.
func runLinearSwarA[A tensor.Elem](ex *Executor, st *linPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	tensor.ParallelForSlotsN(st.tiles, ex.maxPar, st.parallel, linSwarJob[A](ex, st, it, in, out))
}

// linSwarJob builds the per-row-tile job body shared by the parallel
// loop and the serial wave fallback.
func linSwarJob[A tensor.Elem](ex *Executor, st *linPackS, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) func(t, slot int) {
	xs := typedData[A](in[0])
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	k, o := st.k, st.o
	return func(t, slot int) {
		r0 := t * st.tm
		m := st.tm
		if r0+m > st.rows {
			m = st.rows - r0
		}
		panel := ex.slotU8[slot][:m*k]
		sc := ex.SlotScratch(slot)
		av, bv, sums := sc[:o], sc[o:2*o], sc[2*o:2*o+m]
		gatherRowBytes(panel, sums, xs[r0*k:(r0+m)*k], k, m, st.ba)
		acc := ex.AccTile(slot)
		if st.skip != nil {
			gemmPanelsSwarSparse(acc, panel, st.wps, st.skip, st.bcorr, st.bw, m, k, o, st.np, 1, o)
		} else {
			gemmPanelsSwar(acc, panel, st.wps, sums, st.bcorr, st.bw, m, k, o, st.np, 1, o)
		}
		for i := 0; i < m; i++ {
			row := acc[i*o : (i+1)*o]
			var bvv []int64
			if add != nil {
				bvv = bv[:o]
				add.ReadInt64(bvv, (r0+i)*o)
			}
			for oc, a := range row {
				st.epi.finishInto(av, bvv, oc, int64(a)-st.zsum[oc], oc)
			}
			out.WriteInt64(av[:o], (r0+i)*o)
		}
	}
}

// jobs exposes the linear as its row-tile grid for wave execution
// (waveRunner).
func (st *linPackS) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	var body func(t, slot int)
	if st.ad == tensor.U8 {
		body = linSwarJob[uint8](ex, st, it, in, out)
	} else {
		body = linSwarJob[int8](ex, st, it, in, out)
	}
	return body, st.tiles
}

// KernelChoice describes the compute path one instruction is bound to —
// introspection for the bench harness's fusion summary and the fallback
// tests.
type KernelChoice struct {
	Index int    // instruction index
	Name  string // instruction name
	Kind  OpKind
	Path  string // "swar", "swar-sparse", "i32-panel", "i32-sparse", "i32-nm", "i32-direct", "i64-panel", "i64-direct", "matmul", "im2col", ""
	Lanes int    // output channels per packed accumulator word (SWAR only)
	TileM int    // site/row tile of the bound GEMM state
	// WeightSparsity is the fraction of exactly-zero weights;
	// SkipFrac the fraction of dense MACs the bound kernel skips
	// (1 − effective/dense; 0 on dense-bound paths even when the
	// weights are sparse).
	WeightSparsity float64
	SkipFrac       float64
}

// KernelChoices reports, per conv/linear/matmul instruction, which
// prepacked path the executor bound (after all storage and SWAR legality
// decisions).
func (ex *Executor) KernelChoices() []KernelChoice {
	var out []KernelChoice
	for i := range ex.prog.Instrs {
		it := &ex.prog.Instrs[i]
		switch it.Kind {
		case OpConv, OpLinear, OpMatMul:
		default:
			continue
		}
		c := KernelChoice{Index: i, Name: it.Name, Kind: it.Kind}
		if it.Kind == OpConv || it.Kind == OpLinear {
			sp := ex.prog.sparsity()[i]
			if sp.wCount > 0 {
				c.WeightSparsity = float64(sp.wZeros) / float64(sp.wCount)
			}
		}
		sparseBound := false
		switch st := ex.states[i].(type) {
		case *convPackS:
			c.Path, c.Lanes, c.TileM = "swar", swarLanes, st.tm
			if st.skip != nil {
				c.Path, sparseBound = "swar-sparse", true
			}
		case *linPackS:
			c.Path, c.Lanes, c.TileM = "swar", swarLanes, st.tm
			if st.skip != nil {
				c.Path, sparseBound = "swar-sparse", true
			}
		case *convPackT:
			c.Path, c.TileM = "i32-panel", st.tm
			switch {
			case st.nm != nil:
				c.Path, sparseBound = "i32-nm", true
			case st.skip != nil:
				c.Path, sparseBound = "i32-sparse", true
			}
		case *linPackT:
			c.Path, c.TileM = "i32-panel", st.tm
			switch {
			case st.nm != nil:
				c.Path, sparseBound = "i32-nm", true
			case st.skip != nil:
				c.Path, sparseBound = "i32-sparse", true
			}
		case *gconvPackT:
			c.Path = "i32-direct"
		case *convPack:
			c.Path, c.TileM = "i64-panel", st.tm
		case *linPack:
			c.Path, c.TileM = "i64-panel", st.rows
		case *gconvPack:
			c.Path = "i64-direct"
		case *mmPack:
			c.Path = "matmul"
		default:
			c.Path = "im2col"
		}
		if sparseBound {
			// Skip fraction of the kernel actually bound (the CSR, pair
			// list, and N:M forms execute different MAC counts).
			sp := ex.prog.sparsity()[i]
			switch c.Path {
			case "i32-sparse":
				c.SkipFrac = 1 - float64(sp.skip.csrMacs)/float64(sp.skip.denseMacs)
			case "swar-sparse":
				c.SkipFrac = 1 - float64(sp.skip.liveMacs)/float64(sp.skip.denseMacs)
			case "i32-nm":
				c.SkipFrac = 1 - float64(sp.nm.n)/float64(nmM)
			}
		}
		out = append(out, c)
	}
	return out
}
