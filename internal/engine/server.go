package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// ErrQueueFull is returned by TryInfer when the request queue is at
// capacity: the server is overloaded and the caller should shed load
// (the HTTP layer maps it to 429) instead of buffering unboundedly.
var ErrQueueFull = errors.New("engine: server queue full")

// ErrDeadlineExceeded is returned when a request's deadline expired
// before a worker executed it; the sample is dropped without running.
var ErrDeadlineExceeded = errors.New("engine: request deadline exceeded")

// ErrShapeMismatch wraps rejections of mis-shaped request tensors, so
// callers (the HTTP layer) can report them as client errors — e.g. a
// request racing a hot reload that changed the model's input shape.
var ErrShapeMismatch = errors.New("engine: sample shape mismatch")

// ServerOptions tune the batched serving runtime.
type ServerOptions struct {
	// Workers is the number of executor-owning goroutines (default
	// GOMAXPROCS/2, min 1).
	Workers int
	// KernelThreads bounds the intra-op parallelism of each worker's
	// executors (default GOMAXPROCS/Workers, min 1). The resolved
	// Workers×KernelThreads product never exceeds GOMAXPROCS: an
	// explicitly oversubscribed config is trimmed on the kernel-thread
	// side, so concurrent replicas share cores instead of each fanning
	// out to the full pool width.
	KernelThreads int
	// MaxBatch is the micro-batch size requests are coalesced into
	// (default 8).
	MaxBatch int
	// BatchWait bounds how long the batcher waits for more requests after
	// the first one arrives (default 500µs).
	BatchWait time.Duration
	// QueueSize is the request queue capacity (default 4×MaxBatch×Workers).
	QueueSize int
	// Kernels selects the kernel registry (default DefaultKernels).
	Kernels *Registry
	// Trace, when non-nil, gives the server a span ring on the tracer:
	// workers record queue-wait and batch spans and bind their
	// executors for per-instruction/wave spans. nil (the default)
	// leaves serving at the PR-7 hot path — no ring, no clock reads.
	Trace *trace.Tracer
}

// WithDefaults returns o with unset fields resolved, so higher layers
// (the serve registry's admission sizing) can see the effective queue
// capacity and worker count.
func (o ServerOptions) WithDefaults() ServerOptions { return o.withDefaults() }

func (o ServerOptions) withDefaults() ServerOptions {
	maxp := runtime.GOMAXPROCS(0)
	if o.Workers <= 0 {
		o.Workers = maxp / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.KernelThreads <= 0 {
		o.KernelThreads = maxp / o.Workers
	}
	// Cap the worker × kernel-thread product at GOMAXPROCS. Workers are
	// goroutines (the scheduler multiplexes an excess harmlessly), so the
	// trim lands on the kernel-thread side down to its floor of 1.
	for o.Workers*o.KernelThreads > maxp && o.KernelThreads > 1 {
		o.KernelThreads--
	}
	if o.KernelThreads < 1 {
		o.KernelThreads = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.BatchWait <= 0 {
		o.BatchWait = 500 * time.Microsecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4 * o.MaxBatch * o.Workers
	}
	if o.Kernels == nil {
		o.Kernels = DefaultKernels()
	}
	return o
}

// ServerStats counts serving activity; read with Stats().
type ServerStats struct {
	Requests int64 // single-sample requests served successfully
	Batches  int64 // successful batched executes
	Batched  int64 // samples that shared a batch with at least one other
	Failures int64 // requests that returned an execution error
	Rejected int64 // TryInfer fast-fails on a full queue
	Expired  int64 // requests whose deadline passed before execution
}

// Add accumulates other into s (for aggregating replica pools and
// folding a drained server's final counters into long-lived totals).
func (s *ServerStats) Add(o ServerStats) {
	s.Requests += o.Requests
	s.Batches += o.Batches
	s.Batched += o.Batched
	s.Failures += o.Failures
	s.Rejected += o.Rejected
	s.Expired += o.Expired
}

// MeanBatch returns the average samples per batched execute.
func (s ServerStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

type request struct {
	x        *tensor.Tensor
	deadline time.Time // zero = no deadline
	reply    chan reply
	enq      int64  // tracer-relative enqueue ns (0 = not traced)
	tid      uint64 // request trace id propagated from the HTTP layer
}

type reply struct {
	y   *tensor.Tensor
	err error
}

// Server is the batched serving runtime: single-sample requests are
// coalesced by a micro-batching queue into batched executes that run on a
// pool of workers, each owning planned executors (one per encountered
// batch size), so steady-state serving does not allocate inter-op
// buffers.
type Server struct {
	prog   *Program
	sample []int // single-sample shape (no batch dim)
	opts   ServerOptions

	queue    chan request
	batches  chan []request
	wg       sync.WaitGroup
	batcherW sync.WaitGroup

	requests atomic.Int64
	nBatches atomic.Int64
	batched  atomic.Int64
	failures atomic.Int64
	rejected atomic.Int64
	expired  atomic.Int64

	arenaBytes   atomic.Int64
	scratchBytes atomic.Int64
	planWaves    atomic.Int64  // max parallel waves over bound plans
	parallelFrac atomic.Uint64 // max Plan.ParallelFrac (float64 bits)

	// Tracing: one shared multi-writer ring for the batcher and all
	// workers (nil without a tracer); interned span names bound once.
	ring        *trace.Ring
	nmQueueWait uint32
	nmBatch     uint32
	nmBatchForm uint32

	// batchWait is always on (two clock reads per batch, not per
	// request): the time from a batch's first request to its dispatch,
	// the signal that separates batch formation from execution when a
	// latency histogram regresses.
	batchWait *trace.Hist

	// mu guards closed and orders queue sends before close: producers
	// hold the read side (so they can enqueue concurrently), Close takes
	// the write side.
	mu     sync.RWMutex
	closed bool
}

// NewServer validates the program against the single-sample input shape
// (e.g. [3,32,32]) and starts the batcher and worker pool.
func NewServer(p *Program, sampleShape []int, opts ServerOptions) (*Server, error) {
	opts = opts.withDefaults()
	// Validate up front: plan at batch 1 so shape errors surface here.
	if _, err := p.PlanBuffers(append([]int{1}, sampleShape...)); err != nil {
		return nil, err
	}
	if err := checkKernels(p, opts.Kernels); err != nil {
		return nil, err
	}
	s := &Server{
		prog:      p,
		sample:    append([]int(nil), sampleShape...),
		opts:      opts,
		queue:     make(chan request, opts.QueueSize),
		batches:   make(chan []request, opts.Workers),
		batchWait: trace.NewHist(trace.BatchWaitBucketsNs),
	}
	if opts.Trace != nil {
		s.ring = opts.Trace.NewRing()
		s.nmQueueWait = opts.Trace.Intern("queue_wait")
		s.nmBatch = opts.Trace.Intern("batch")
		s.nmBatchForm = opts.Trace.Intern("batch_form")
	}
	s.batcherW.Add(1)
	go s.batcher()
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// batcher coalesces queued requests: a batch is dispatched the moment it
// reaches MaxBatch, or when BatchWait has elapsed since its first
// request. When requests arrive faster than the flush interval the
// backlog is drained non-blocking to a full batch without ever arming
// the timer, so a saturated server dispatches at queue speed and never
// waits on a timer tick with a full batch in hand. One timer is reused
// across batches instead of being allocated per batch.
func (s *Server) batcher() {
	defer s.batcherW.Done()
	defer close(s.batches)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		t0 := time.Now()
		batch := append(make([]request, 0, s.opts.MaxBatch), first)
		// Fast path: drain whatever is already queued, no timer involved.
	drain:
		for len(batch) < s.opts.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					s.dispatch(batch, t0)
					return
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if len(batch) < s.opts.MaxBatch {
			// Slow path: wait up to BatchWait (measured from the first
			// request) for stragglers; a full batch dispatches immediately.
			timer.Reset(s.opts.BatchWait)
		fill:
			for len(batch) < s.opts.MaxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						break fill
					}
					batch = append(batch, r)
				case <-timer.C:
					break fill
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		s.dispatch(batch, t0)
	}
}

// dispatch hands a formed batch to the workers, recording how long the
// batcher held it open: always into the batch-wait histogram, and as a
// KindBatchForm span when tracing is armed (the span is anchored at
// dispatch-time minus the measured wait so it aligns with the worker's
// queue-wait and batch spans on the tracer clock).
func (s *Server) dispatch(batch []request, t0 time.Time) {
	wait := time.Since(t0).Nanoseconds()
	s.batchWait.Observe(wait)
	if s.ring.Active() {
		s.ring.Record(trace.Span{
			Start: s.ring.Now() - wait, Dur: wait, Name: s.nmBatchForm,
			Kind: trace.KindBatchForm, TID: batcherLane,
			A0: int64(len(batch)),
		})
	}
	s.batches <- batch
}

// batcherLane is the Chrome-trace lane the batcher's spans render on,
// clear of the worker lanes (worker w records on lane w).
const batcherLane = 999

// batchBucket rounds a partial batch up to the next power of two
// (capped at max). Workers plan one executor+arena per bucket instead
// of per encountered batch size, so ragged traffic builds at most
// ⌈log2(MaxBatch)⌉+1 arenas per worker rather than MaxBatch of them.
func batchBucket(n, max int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	if b > max {
		b = max
	}
	return b
}

// worker owns one executor per power-of-two batch bucket and serves
// batches; partial batches run padded to their bucket (per-sample
// computation is independent, so the padding lanes are dead work that
// buys a bounded executor set). w is the worker index — the trace lane
// its spans and its executors' spans are tagged with.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	execs := map[int]*Executor{}
	var xBatch, yBatch map[int]*tensor.Tensor
	xBatch, yBatch = map[int]*tensor.Tensor{}, map[int]*tensor.Tensor{}
	sampleN := tensor.Numel(s.sample)
	for batch := range s.batches {
		// Drop requests whose deadline passed while queued: replying
		// ErrDeadlineExceeded without executing is what keeps latency
		// bounded under overload instead of serving stale work.
		if hasDeadlines(batch) {
			now := time.Now()
			live := batch[:0]
			for _, r := range batch {
				if !r.deadline.IsZero() && now.After(r.deadline) {
					s.expired.Add(1)
					r.reply <- reply{err: ErrDeadlineExceeded}
					continue
				}
				live = append(live, r)
			}
			batch = live
			if len(batch) == 0 {
				continue
			}
		}
		n := len(batch)
		bucket := batchBucket(n, s.opts.MaxBatch)
		ex, ok := execs[bucket]
		created := false
		if !ok {
			var err error
			ex, err = NewExecutor(s.prog, append([]int{bucket}, s.sample...),
				WithKernels(s.opts.Kernels), WithMaxParallel(s.opts.KernelThreads),
				WithTraceRing(s.ring, int32(w)))
			if err != nil {
				for _, r := range batch {
					r.reply <- reply{err: err}
				}
				continue
			}
			execs[bucket] = ex
			created = true
			xBatch[bucket] = tensor.New(append([]int{bucket}, s.sample...)...)
			yBatch[bucket] = tensor.New(ex.OutShape()...)
			s.arenaBytes.Add(ex.Plan().ArenaBytes)
			s.recordPlanParallelism(ex.Plan())
		}
		x, y := xBatch[bucket], yBatch[bucket]
		for i, r := range batch {
			copy(x.Data[i*sampleN:(i+1)*sampleN], r.x.Data)
		}
		var bStart int64
		traced := s.ring.Active()
		if traced {
			// Close each request's queue-wait span now that its batch is
			// about to execute; the executor's instruction/wave spans then
			// nest inside the batch span that follows.
			bStart = s.ring.Now()
			for _, r := range batch {
				if r.enq > 0 {
					s.ring.Record(trace.Span{
						Start: r.enq, Dur: bStart - r.enq, Name: s.nmQueueWait,
						Kind: trace.KindQueueWait, TID: int32(w), ID: r.tid,
						A0: int64(n),
					})
				}
			}
		}
		err := ex.ExecuteInto(y, x)
		if traced {
			s.ring.Record(trace.Span{
				Start: bStart, Dur: s.ring.Now() - bStart, Name: s.nmBatch,
				Kind: trace.KindBatch, TID: int32(w),
				A0: int64(n), A1: int64(bucket),
			})
		}
		if created {
			// Account scratch after the first execute, when the grow-only
			// buffers the lazy kernels claim have reached steady state.
			s.scratchBytes.Add(ex.ScratchBytes())
		}
		// Count before replying: a client that reads Stats right after
		// its Infer returns must see this batch. Failed batches count as
		// failures, not served requests.
		if err != nil {
			s.failures.Add(int64(n))
		} else {
			s.requests.Add(int64(n))
			s.nBatches.Add(1)
			if n > 1 {
				s.batched.Add(int64(n))
			}
		}
		outN := len(y.Data) / bucket
		for i, r := range batch {
			if err != nil {
				r.reply <- reply{err: err}
				continue
			}
			yi := tensor.New(append([]int{1}, y.Shape[1:]...)...)
			copy(yi.Data, y.Data[i*outN:(i+1)*outN])
			r.reply <- reply{y: yi}
		}
	}
}

func hasDeadlines(batch []request) bool {
	for _, r := range batch {
		if !r.deadline.IsZero() {
			return true
		}
	}
	return false
}

// checkShape validates a request tensor against the server's sample
// shape, accepting the documented [1, sample...] batch-of-one form.
// Comparing only element counts is not enough: a [32,32,3] tensor has
// the same Numel as a [3,32,32] model input but a different layout, and
// accepting it would silently misinfer.
func (s *Server) checkShape(x *tensor.Tensor) error {
	sh := x.Shape
	if len(sh) == len(s.sample)+1 && sh[0] == 1 {
		sh = sh[1:]
	}
	if len(sh) != len(s.sample) {
		return fmt.Errorf("%w: sample shape %v, server expects %v", ErrShapeMismatch, x.Shape, s.sample)
	}
	for i := range sh {
		if sh[i] != s.sample[i] {
			return fmt.Errorf("%w: sample shape %v, server expects %v", ErrShapeMismatch, x.Shape, s.sample)
		}
	}
	return nil
}

// Infer serves one sample (shape = sampleShape, or [1, sampleShape...])
// and blocks until its logits are ready, waiting for queue space if the
// server is saturated.
func (s *Server) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.infer(x, time.Time{}, true, 0)
}

// TryInfer is Infer with admission control: it fast-fails with
// ErrQueueFull instead of blocking when the queue is at capacity, and a
// non-zero deadline makes workers drop the request unexecuted
// (ErrDeadlineExceeded) once it expires.
func (s *Server) TryInfer(x *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	return s.infer(x, deadline, false, 0)
}

// TryInferTraced is TryInfer carrying a request trace id: the worker's
// queue-wait span for this request records tid, stitching the engine
// timeline to the HTTP request span that owns the id.
func (s *Server) TryInferTraced(x *tensor.Tensor, deadline time.Time, tid uint64) (*tensor.Tensor, error) {
	return s.infer(x, deadline, false, tid)
}

func (s *Server) infer(x *tensor.Tensor, deadline time.Time, block bool, tid uint64) (*tensor.Tensor, error) {
	if err := s.checkShape(x); err != nil {
		return nil, err
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, fmt.Errorf("engine: server is closed")
	}
	r := request{x: x, deadline: deadline, reply: make(chan reply, 1)}
	if s.ring.Active() {
		r.enq = s.ring.Now()
		r.tid = tid
	}
	if block {
		s.queue <- r
	} else {
		select {
		case s.queue <- r:
		default:
			s.mu.RUnlock()
			s.rejected.Add(1)
			return nil, ErrQueueFull
		}
	}
	s.mu.RUnlock()
	rep := <-r.reply
	return rep.y, rep.err
}

// SampleShape returns the single-sample input shape the server accepts.
func (s *Server) SampleShape() []int { return append([]int(nil), s.sample...) }

// QueueDepth samples the number of requests currently waiting in the
// batcher queue — a point-in-time gauge, exact only at the instant of
// the read.
func (s *Server) QueueDepth() int { return len(s.queue) }

// BatchWait snapshots the always-on batch-formation-wait histogram:
// the time each dispatched batch sat open in the batcher, from its
// first request to hand-off.
func (s *Server) BatchWait() trace.HistSnapshot { return s.batchWait.Snapshot() }

// ServerMemStats reports the memory a server's bound executors hold:
// planned per-dtype arenas and kernel scratch, summed across every
// (worker, batch size) executor built so far. With typed storage the
// arena share is byte-accurate per buffer dtype. Scratch is sampled
// after each executor's first execute (steady state for the grow-only
// buffers); im2col index maps shared across a program's executors are
// attributed to each executor that references them, so the scratch sum
// slightly overstates a multi-executor server's shared-map footprint.
type ServerMemStats struct {
	ArenaBytes   int64 `json:"arena_bytes"`
	ScratchBytes int64 `json:"scratch_bytes"`
	// Waves / ParallelFraction are the plan-level parallelism stats of
	// the bound executors (max over batch buckets, which only widens
	// with batch size): scheduling steps whose members run concurrently,
	// and the modeled-work share inside them.
	Waves            int     `json:"waves,omitempty"`
	ParallelFraction float64 `json:"parallel_fraction,omitempty"`
	// WeightSparsity / SkipFraction are the bound program's sparsity
	// stats: the exactly-zero weight fraction, and the modeled MAC share
	// the sparsity-aware kernels skip (0 for a dense checkpoint).
	WeightSparsity float64 `json:"weight_sparsity,omitempty"`
	SkipFraction   float64 `json:"skip_fraction,omitempty"`
}

// recordPlanParallelism folds one freshly bound plan's parallelism
// stats into the server's max-aggregated gauges.
func (s *Server) recordPlanParallelism(pl *Plan) {
	for {
		cur := s.planWaves.Load()
		if int64(pl.ParallelWaves) <= cur || s.planWaves.CompareAndSwap(cur, int64(pl.ParallelWaves)) {
			break
		}
	}
	for {
		cur := s.parallelFrac.Load()
		if pl.ParallelFrac <= math.Float64frombits(cur) ||
			s.parallelFrac.CompareAndSwap(cur, math.Float64bits(pl.ParallelFrac)) {
			break
		}
	}
}

// MemStats returns a snapshot of the executor memory footprint.
func (s *Server) MemStats() ServerMemStats {
	ws, sf := s.prog.SparsityStats()
	return ServerMemStats{
		ArenaBytes:       s.arenaBytes.Load(),
		ScratchBytes:     s.scratchBytes.Load(),
		Waves:            int(s.planWaves.Load()),
		ParallelFraction: math.Float64frombits(s.parallelFrac.Load()),
		WeightSparsity:   ws,
		SkipFraction:     sf,
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests: s.requests.Load(),
		Batches:  s.nBatches.Load(),
		Batched:  s.batched.Load(),
		Failures: s.failures.Load(),
		Rejected: s.rejected.Load(),
		Expired:  s.expired.Load(),
	}
}

// Close drains in-flight requests and stops the workers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.batcherW.Wait()
	s.wg.Wait()
}
