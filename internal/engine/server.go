package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// ErrQueueFull is returned by TryInfer when the request queue is at
// capacity and the request lost victim selection: the server is
// overloaded and the caller should shed load (the HTTP layer maps it to
// 429) instead of buffering unboundedly. Under EDF scheduling a more
// urgent arrival can evict a queued request, in which case the evicted
// request receives this error instead.
var ErrQueueFull = errors.New("engine: server queue full")

// ErrDeadlineExceeded is returned when a request's deadline expired
// before a worker executed it; the sample is dropped without running.
var ErrDeadlineExceeded = errors.New("engine: request deadline exceeded")

// ErrShapeMismatch wraps rejections of mis-shaped request tensors, so
// callers (the HTTP layer) can report them as client errors — e.g. a
// request racing a hot reload that changed the model's input shape.
var ErrShapeMismatch = errors.New("engine: sample shape mismatch")

var errServerClosed = errors.New("engine: server is closed")

// ServerOptions tune the batched serving runtime.
type ServerOptions struct {
	// Workers is the number of executor-owning goroutines (default
	// GOMAXPROCS/2, min 1).
	Workers int
	// KernelThreads bounds the intra-op parallelism of each worker's
	// executors (default GOMAXPROCS/Workers, min 1). The resolved
	// Workers×KernelThreads product never exceeds GOMAXPROCS: an
	// explicitly oversubscribed config is trimmed on the kernel-thread
	// side, so concurrent replicas share cores instead of each fanning
	// out to the full pool width.
	KernelThreads int
	// MaxBatch is the micro-batch size requests are coalesced into
	// (default 8).
	MaxBatch int
	// BatchWait bounds how long the batcher waits for more requests after
	// the first one arrives (default 500µs). Under SchedEDF the wait is
	// additionally cut short whenever the modeled cost of a larger batch
	// would blow the earliest queued deadline.
	BatchWait time.Duration
	// QueueSize is the request queue capacity (default 4×MaxBatch×Workers).
	QueueSize int
	// Sched selects the request queue's scheduling policy: SchedEDF
	// (the default) orders waiting requests earliest-deadline-first
	// under priority classes and closes batches deadline-driven;
	// SchedFIFO is the strict-arrival-order, fixed-timer baseline.
	Sched SchedPolicy
	// Cost supplies measured per-op calibration ratios (from a
	// BENCH_profile.json run) that scale the bind-time work model into
	// EstimateCost's wall-clock predictions. nil models every ratio as 1.
	Cost *CostModel
	// Kernels selects the kernel registry (default DefaultKernels).
	Kernels *Registry
	// Trace, when non-nil, gives the server a span ring on the tracer:
	// workers record queue-wait and batch spans and bind their
	// executors for per-instruction/wave spans. nil (the default)
	// leaves serving at the PR-7 hot path — no ring, no clock reads.
	Trace *trace.Tracer
}

// WithDefaults returns o with unset fields resolved, so higher layers
// (the serve registry's admission sizing) can see the effective queue
// capacity and worker count.
func (o ServerOptions) WithDefaults() ServerOptions { return o.withDefaults() }

func (o ServerOptions) withDefaults() ServerOptions {
	maxp := runtime.GOMAXPROCS(0)
	if o.Workers <= 0 {
		o.Workers = maxp / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.KernelThreads <= 0 {
		o.KernelThreads = maxp / o.Workers
	}
	// Cap the worker × kernel-thread product at GOMAXPROCS. Workers are
	// goroutines (the scheduler multiplexes an excess harmlessly), so the
	// trim lands on the kernel-thread side down to its floor of 1.
	for o.Workers*o.KernelThreads > maxp && o.KernelThreads > 1 {
		o.KernelThreads--
	}
	if o.KernelThreads < 1 {
		o.KernelThreads = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.BatchWait <= 0 {
		o.BatchWait = 500 * time.Microsecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4 * o.MaxBatch * o.Workers
	}
	if o.Sched == "" {
		o.Sched = SchedEDF
	}
	if o.Kernels == nil {
		o.Kernels = DefaultKernels()
	}
	return o
}

// ServerStats counts serving activity; read with Stats().
type ServerStats struct {
	Requests int64 // single-sample requests served successfully
	Batches  int64 // successful batched executes
	Batched  int64 // samples that shared a batch with at least one other
	Failures int64 // requests that returned an execution error
	Rejected int64 // queue-full fast-fails and evictions, all classes
	Expired  int64 // requests whose deadline passed before execution
	// Per-class queue sheds (fast-fails plus victim evictions), summing
	// to Rejected: the signal that PriLow absorbs overload first.
	ShedHigh   int64
	ShedNormal int64
	ShedLow    int64
}

// Add accumulates other into s (for aggregating replica pools and
// folding a drained server's final counters into long-lived totals).
func (s *ServerStats) Add(o ServerStats) {
	s.Requests += o.Requests
	s.Batches += o.Batches
	s.Batched += o.Batched
	s.Failures += o.Failures
	s.Rejected += o.Rejected
	s.Expired += o.Expired
	s.ShedHigh += o.ShedHigh
	s.ShedNormal += o.ShedNormal
	s.ShedLow += o.ShedLow
}

// MeanBatch returns the average samples per batched execute.
func (s ServerStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// CostStats reports how the scheduler's modeled batch-execution cost
// tracks measured reality. Raw sums, so replica pools aggregate with
// Add; MeanAbsErr derives the mean relative error.
type CostStats struct {
	// Batches is the number of measured batch executes.
	Batches int64 `json:"batches"`
	// ModeledBatchNs is EstimateCost at MaxBatch — the modeled
	// worst-case execute the deadline-driven batcher budgets with.
	ModeledBatchNs int64 `json:"modeled_batch_ns"`
	// AbsErrMicroSum accumulates |measured−modeled|/modeled per batch
	// in microunits (1e6 = 100% error).
	AbsErrMicroSum int64 `json:"abs_err_micro_sum"`
}

// Add folds o into c (ModeledBatchNs is a property of the shared
// program, so it maxes rather than sums).
func (c *CostStats) Add(o CostStats) {
	c.Batches += o.Batches
	c.AbsErrMicroSum += o.AbsErrMicroSum
	if o.ModeledBatchNs > c.ModeledBatchNs {
		c.ModeledBatchNs = o.ModeledBatchNs
	}
}

// MeanAbsErr returns the mean relative modeled-vs-measured error
// (0.25 = modeled execution time off by 25% on average).
func (c CostStats) MeanAbsErr() float64 {
	if c.Batches == 0 {
		return 0
	}
	return float64(c.AbsErrMicroSum) / 1e6 / float64(c.Batches)
}

// request is the queue's unit of work: input codes (quantization happens
// at enqueue time, so the cache and batcher share one deterministic code
// path), deadline, priority class, and reply plumbing.
type request struct {
	codes    *tensor.IntTensor // I64 quantized input codes, one sample
	deadline time.Time         // zero = no deadline
	class    PriorityClass
	seq      uint64 // arrival order, assigned by the queue
	reply    chan reply
	enq      int64  // tracer-relative enqueue ns (0 = not traced)
	tid      uint64 // request trace id propagated from the HTTP layer
}

type reply struct {
	codes *tensor.IntTensor // I64 output codes, [1, out...]
	err   error
}

// Server is the batched serving runtime: single-sample requests are
// coalesced by a micro-batching queue into batched executes that run on a
// pool of workers, each owning planned executors (one per encountered
// batch size), so steady-state serving does not allocate inter-op
// buffers. Requests travel as quantized input codes end to end; the
// float Infer API quantizes on entry and dequantizes on reply with the
// exact boundary arithmetic the executor uses, so results are
// bit-identical to the pre-codes path.
type Server struct {
	prog   *Program
	sample []int // single-sample shape (no batch dim)
	opts   ServerOptions

	q        *reqQueue
	batches  chan []request
	wg       sync.WaitGroup
	batcherW sync.WaitGroup

	requests   atomic.Int64
	nBatches   atomic.Int64
	batched    atomic.Int64
	failures   atomic.Int64
	rejected   atomic.Int64
	expired    atomic.Int64
	shedHigh   atomic.Int64
	shedNormal atomic.Int64
	shedLow    atomic.Int64

	arenaBytes   atomic.Int64
	scratchBytes atomic.Int64
	planWaves    atomic.Int64  // max parallel waves over bound plans
	parallelFrac atomic.Uint64 // max Plan.ParallelFrac (float64 bits)

	// Modeled batch-execution cost per batch bucket (lazily filled; one
	// ModeledOpWork evaluation per bucket per server lifetime), and the
	// measured-vs-modeled error accumulators the workers feed.
	costMu       sync.Mutex
	costNs       map[int]int64
	costErrMicro atomic.Int64
	costBatches  atomic.Int64

	// Tracing: one shared multi-writer ring for the batcher and all
	// workers (nil without a tracer); interned span names bound once.
	ring        *trace.Ring
	nmQueueWait uint32
	nmBatch     uint32
	nmBatchForm uint32

	// batchWait is always on (two clock reads per batch, not per
	// request): the time from a batch's first request to its dispatch,
	// the signal that separates batch formation from execution when a
	// latency histogram regresses. execHist and slackHist are its
	// companions on the execute side: measured batch execution time, and
	// the earliest-deadline slack remaining at dispatch.
	batchWait *trace.Hist
	execHist  *trace.Hist
	slackHist *trace.Hist

	// mu guards closed and orders queue pushes before close: producers
	// hold the read side (so they can enqueue concurrently), Close takes
	// the write side.
	mu     sync.RWMutex
	closed bool
}

// NewServer validates the program against the single-sample input shape
// (e.g. [3,32,32]) and starts the batcher and worker pool.
func NewServer(p *Program, sampleShape []int, opts ServerOptions) (*Server, error) {
	opts = opts.withDefaults()
	// Validate up front: plan at batch 1 so shape errors surface here.
	if _, err := p.PlanBuffers(append([]int{1}, sampleShape...)); err != nil {
		return nil, err
	}
	if err := checkKernels(p, opts.Kernels); err != nil {
		return nil, err
	}
	s := &Server{
		prog:      p,
		sample:    append([]int(nil), sampleShape...),
		opts:      opts,
		q:         newReqQueue(opts.QueueSize, opts.Sched == SchedEDF),
		batches:   make(chan []request, opts.Workers),
		costNs:    map[int]int64{},
		batchWait: trace.NewHist(trace.BatchWaitBucketsNs),
		execHist:  trace.NewHist(trace.OpBucketsNs),
		slackHist: trace.NewHist(trace.BatchWaitBucketsNs),
	}
	if opts.Trace != nil {
		s.ring = opts.Trace.NewRing()
		s.nmQueueWait = opts.Trace.Intern("queue_wait")
		s.nmBatch = opts.Trace.Intern("batch")
		s.nmBatchForm = opts.Trace.Intern("batch_form")
	}
	s.batcherW.Add(1)
	go s.batcher()
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// EstimateCost returns the modeled wall-clock execution time of one
// batched execute at the given batch size: the bind-time work model
// evaluated at the batch's power-of-two bucket, scaled by the per-op
// calibration ratios in Options.Cost. The estimate is serial (intra-op
// parallelism would only shrink it), so the deadline-driven batcher errs
// toward closing batches early rather than blowing deadlines.
func (s *Server) EstimateCost(batch int) time.Duration {
	return time.Duration(s.bucketCostNs(batchBucket(batch, s.opts.MaxBatch)))
}

func (s *Server) bucketCostNs(bucket int) int64 {
	s.costMu.Lock()
	defer s.costMu.Unlock()
	if v, ok := s.costNs[bucket]; ok {
		return v
	}
	var total float64
	ops, err := s.prog.ModeledOpWork(append([]int{bucket}, s.sample...))
	if err == nil {
		for _, op := range ops {
			total += float64(op.WorkNs) * s.opts.Cost.ratio(op.Kind)
		}
	}
	v := int64(total)
	s.costNs[bucket] = v
	return v
}

// batcher coalesces queued requests: a batch is dispatched the moment it
// reaches MaxBatch, when BatchWait has elapsed since its first request,
// or — under SchedEDF — as soon as admitting one more request would,
// per EstimateCost, make the batch miss its earliest member deadline.
// When requests arrive faster than the flush interval the backlog is
// drained without ever arming the timer, so a saturated server
// dispatches at queue speed. One timer is reused across batches.
func (s *Server) batcher() {
	defer s.batcherW.Done()
	defer close(s.batches)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	edf := s.opts.Sched == SchedEDF
	for {
		first, ok := s.q.waitPop()
		if !ok {
			return
		}
		t0 := time.Now()
		batch := append(make([]request, 0, s.opts.MaxBatch), first)
	fill:
		for len(batch) < s.opts.MaxBatch {
			var accept func(request) bool
			if edf {
				b := batch // capture current batch for the predicate
				accept = func(r request) bool {
					ed := earliestDeadline(b, r.deadline)
					if ed.IsZero() {
						return true
					}
					return time.Until(ed) >= s.EstimateCost(len(b)+1)
				}
			}
			r, st := s.q.tryPop(accept)
			switch st {
			case popOK:
				batch = append(batch, r)
				continue
			case popRejected:
				// Admitting the head request would blow a deadline the
				// current batch can still meet: close now.
				break fill
			}
			// Queue empty: wait for a straggler, bounded by BatchWait and
			// — under EDF — by the slack the batch's own deadlines leave
			// after the modeled cost of executing one request larger.
			wait := s.opts.BatchWait - time.Since(t0)
			if edf {
				if ed := earliestDeadline(batch, time.Time{}); !ed.IsZero() {
					if slack := time.Until(ed) - s.EstimateCost(len(batch)+1); slack < wait {
						wait = slack
					}
				}
			}
			if wait <= 0 || s.q.closedAndEmpty() {
				break fill
			}
			timer.Reset(wait)
			select {
			case <-s.q.notEmpty:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				break fill
			}
		}
		s.dispatch(batch, t0)
	}
}

// dispatch hands a formed batch to the workers, recording how long the
// batcher held it open (always into the batch-wait histogram, and as a
// KindBatchForm span when tracing is armed) and — when the batch
// carries deadlines — the earliest-deadline slack remaining at
// dispatch, clamped at zero (the deadline-attainment signal).
func (s *Server) dispatch(batch []request, t0 time.Time) {
	wait := time.Since(t0).Nanoseconds()
	s.batchWait.Observe(wait)
	if ed := earliestDeadline(batch, time.Time{}); !ed.IsZero() {
		slack := time.Until(ed).Nanoseconds()
		if slack < 0 {
			slack = 0
		}
		s.slackHist.Observe(slack)
	}
	if s.ring.Active() {
		s.ring.Record(trace.Span{
			Start: s.ring.Now() - wait, Dur: wait, Name: s.nmBatchForm,
			Kind: trace.KindBatchForm, TID: batcherLane,
			A0: int64(len(batch)),
		})
	}
	s.batches <- batch
}

// batcherLane is the Chrome-trace lane the batcher's spans render on,
// clear of the worker lanes (worker w records on lane w).
const batcherLane = 999

// batchBucket rounds a partial batch up to the next power of two
// (capped at max). Workers plan one executor+arena per bucket instead
// of per encountered batch size, so ragged traffic builds at most
// ⌈log2(MaxBatch)⌉+1 arenas per worker rather than MaxBatch of them.
func batchBucket(n, max int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	if b > max {
		b = max
	}
	return b
}

// worker owns one executor per power-of-two batch bucket and serves
// batches; partial batches run padded to their bucket (per-sample
// computation is independent, so the padding lanes are dead work that
// buys a bounded executor set). w is the worker index — the trace lane
// its spans and its executors' spans are tagged with.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	execs := map[int]*Executor{}
	xCodes := map[int]*tensor.IntTensor{}
	yCodes := map[int]*tensor.IntTensor{}
	sampleN := tensor.Numel(s.sample)
	for batch := range s.batches {
		// Drop requests whose deadline passed while queued: replying
		// ErrDeadlineExceeded without executing is what keeps latency
		// bounded under overload instead of serving stale work.
		if hasDeadlines(batch) {
			now := time.Now()
			live := batch[:0]
			for _, r := range batch {
				if !r.deadline.IsZero() && now.After(r.deadline) {
					s.expired.Add(1)
					r.reply <- reply{err: ErrDeadlineExceeded}
					continue
				}
				live = append(live, r)
			}
			batch = live
			if len(batch) == 0 {
				continue
			}
		}
		n := len(batch)
		bucket := batchBucket(n, s.opts.MaxBatch)
		ex, ok := execs[bucket]
		created := false
		if !ok {
			var err error
			ex, err = NewExecutor(s.prog, append([]int{bucket}, s.sample...),
				WithKernels(s.opts.Kernels), WithMaxParallel(s.opts.KernelThreads),
				WithTraceRing(s.ring, int32(w)))
			if err != nil {
				for _, r := range batch {
					r.reply <- reply{err: err}
				}
				continue
			}
			execs[bucket] = ex
			created = true
			xCodes[bucket] = tensor.NewInt(append([]int{bucket}, s.sample...)...)
			yCodes[bucket] = tensor.NewInt(ex.OutShape()...)
			s.arenaBytes.Add(ex.Plan().ArenaBytes)
			s.recordPlanParallelism(ex.Plan())
		}
		xc, yc := xCodes[bucket], yCodes[bucket]
		for i, r := range batch {
			copy(xc.Data[i*sampleN:(i+1)*sampleN], r.codes.Data)
		}
		// Padding lanes beyond n keep whatever codes the previous batch
		// left (zero initially) — always in-range, and per-sample
		// computation is independent, so they cannot affect live lanes.
		var bStart int64
		traced := s.ring.Active()
		if traced {
			// Close each request's queue-wait span now that its batch is
			// about to execute; the executor's instruction/wave spans then
			// nest inside the batch span that follows.
			bStart = s.ring.Now()
			for _, r := range batch {
				if r.enq > 0 {
					s.ring.Record(trace.Span{
						Start: r.enq, Dur: bStart - r.enq, Name: s.nmQueueWait,
						Kind: trace.KindQueueWait, TID: int32(w), ID: r.tid,
						A0: int64(n),
					})
				}
			}
		}
		t0 := time.Now()
		_, err := ex.ExecuteCodes(xc, yc)
		execNs := time.Since(t0).Nanoseconds()
		s.execHist.Observe(execNs)
		if mod := s.bucketCostNs(bucket); mod > 0 {
			errMicro := (execNs - mod) * 1e6 / mod
			if errMicro < 0 {
				errMicro = -errMicro
			}
			s.costErrMicro.Add(errMicro)
			s.costBatches.Add(1)
		}
		if traced {
			s.ring.Record(trace.Span{
				Start: bStart, Dur: s.ring.Now() - bStart, Name: s.nmBatch,
				Kind: trace.KindBatch, TID: int32(w),
				A0: int64(n), A1: int64(bucket),
			})
		}
		if created {
			// Account scratch after the first execute, when the grow-only
			// buffers the lazy kernels claim have reached steady state.
			s.scratchBytes.Add(ex.ScratchBytes())
		}
		// Count before replying: a client that reads Stats right after
		// its Infer returns must see this batch. Failed batches count as
		// failures, not served requests.
		if err != nil {
			s.failures.Add(int64(n))
		} else {
			s.requests.Add(int64(n))
			s.nBatches.Add(1)
			if n > 1 {
				s.batched.Add(int64(n))
			}
		}
		outN := yc.Numel() / bucket
		for i, r := range batch {
			if err != nil {
				r.reply <- reply{err: err}
				continue
			}
			yi := tensor.NewInt(append([]int{1}, yc.Shape[1:]...)...)
			copy(yi.Data, yc.Data[i*outN:(i+1)*outN])
			r.reply <- reply{codes: yi}
		}
	}
}

func hasDeadlines(batch []request) bool {
	for _, r := range batch {
		if !r.deadline.IsZero() {
			return true
		}
	}
	return false
}

// checkShape validates a request shape against the server's sample
// shape, accepting the documented [1, sample...] batch-of-one form.
// Comparing only element counts is not enough: a [32,32,3] tensor has
// the same Numel as a [3,32,32] model input but a different layout, and
// accepting it would silently misinfer.
func (s *Server) checkShape(shape []int) error {
	sh := shape
	if len(sh) == len(s.sample)+1 && sh[0] == 1 {
		sh = sh[1:]
	}
	if len(sh) != len(s.sample) {
		return fmt.Errorf("%w: sample shape %v, server expects %v", ErrShapeMismatch, shape, s.sample)
	}
	for i := range sh {
		if sh[i] != s.sample[i] {
			return fmt.Errorf("%w: sample shape %v, server expects %v", ErrShapeMismatch, shape, s.sample)
		}
	}
	return nil
}

// Infer serves one sample (shape = sampleShape, or [1, sampleShape...])
// and blocks until its logits are ready, waiting for queue space if the
// server is saturated.
func (s *Server) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.infer(x, time.Time{}, true, 0)
}

// TryInfer is Infer with admission control: it fast-fails with
// ErrQueueFull instead of blocking when the queue is at capacity, and a
// non-zero deadline makes workers drop the request unexecuted
// (ErrDeadlineExceeded) once it expires.
func (s *Server) TryInfer(x *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	return s.infer(x, deadline, false, 0)
}

// TryInferTraced is TryInfer carrying a request trace id: the worker's
// queue-wait span for this request records tid, stitching the engine
// timeline to the HTTP request span that owns the id.
func (s *Server) TryInferTraced(x *tensor.Tensor, deadline time.Time, tid uint64) (*tensor.Tensor, error) {
	return s.infer(x, deadline, false, tid)
}

func (s *Server) infer(x *tensor.Tensor, deadline time.Time, block bool, tid uint64) (*tensor.Tensor, error) {
	if err := s.checkShape(x.Shape); err != nil {
		return nil, err
	}
	codes := tensor.NewInt(x.Shape...)
	s.prog.InQuant.QuantizeTo(codes, x)
	out, err := s.inferCodes(codes, deadline, PriNormal, block, tid)
	if err != nil {
		return nil, err
	}
	return s.prog.DequantizeOutput(out.Data, out.Shape), nil
}

// TryInferCodes serves one sample already quantized to input codes
// (I64, shape = sampleShape or [1, sampleShape...]), returning its
// output codes. This is the serving cache's entry point: the caller
// quantized once to compute the cache key, and on a miss the exact same
// codes execute here — so a later hit is bit-identical by construction.
// class orders the request against other queued work and picks shed
// victims under overload.
func (s *Server) TryInferCodes(codes *tensor.IntTensor, deadline time.Time, class PriorityClass, tid uint64) (*tensor.IntTensor, error) {
	if err := s.checkShape(codes.Shape); err != nil {
		return nil, err
	}
	if codes.DType != tensor.I64 || codes.Data == nil {
		return nil, fmt.Errorf("engine: TryInferCodes needs an I64 code tensor")
	}
	return s.inferCodes(codes, deadline, class, false, tid)
}

func (s *Server) inferCodes(codes *tensor.IntTensor, deadline time.Time, class PriorityClass, block bool, tid uint64) (*tensor.IntTensor, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, errServerClosed
	}
	r := request{codes: codes, deadline: deadline, class: class, reply: make(chan reply, 1)}
	if s.ring.Active() {
		r.enq = s.ring.Now()
		r.tid = tid
	}
	victim, evicted, err := s.q.push(r, block)
	if err != nil {
		s.mu.RUnlock()
		if errors.Is(err, ErrQueueFull) {
			s.countShed(class)
		}
		return nil, err
	}
	if evicted {
		s.countShed(victim.class)
		victim.reply <- reply{err: ErrQueueFull}
	}
	s.mu.RUnlock()
	rep := <-r.reply
	return rep.codes, rep.err
}

func (s *Server) countShed(class PriorityClass) {
	s.rejected.Add(1)
	switch {
	case class < PriNormal:
		s.shedHigh.Add(1)
	case class > PriNormal:
		s.shedLow.Add(1)
	default:
		s.shedNormal.Add(1)
	}
}

// SampleShape returns the single-sample input shape the server accepts.
func (s *Server) SampleShape() []int { return append([]int(nil), s.sample...) }

// QueueDepth samples the number of requests currently waiting in the
// batcher queue — a point-in-time gauge, exact only at the instant of
// the read.
func (s *Server) QueueDepth() int { return s.q.depth() }

// BatchWait snapshots the always-on batch-formation-wait histogram:
// the time each dispatched batch sat open in the batcher, from its
// first request to hand-off.
func (s *Server) BatchWait() trace.HistSnapshot { return s.batchWait.Snapshot() }

// BatchExec snapshots the always-on batch-execution-time histogram —
// the measured side of the cost model's prediction.
func (s *Server) BatchExec() trace.HistSnapshot { return s.execHist.Snapshot() }

// BatchSlack snapshots the dispatch-time earliest-deadline slack
// histogram (deadlined batches only, clamped at zero): how much margin
// the deadline-driven batcher left for execution.
func (s *Server) BatchSlack() trace.HistSnapshot { return s.slackHist.Snapshot() }

// CostStats reports the modeled-vs-measured batch execution record.
func (s *Server) CostStats() CostStats {
	return CostStats{
		Batches:        s.costBatches.Load(),
		ModeledBatchNs: s.bucketCostNs(batchBucket(s.opts.MaxBatch, s.opts.MaxBatch)),
		AbsErrMicroSum: s.costErrMicro.Load(),
	}
}

// ServerMemStats reports the memory a server's bound executors hold:
// planned per-dtype arenas and kernel scratch, summed across every
// (worker, batch size) executor built so far. With typed storage the
// arena share is byte-accurate per buffer dtype. Scratch is sampled
// after each executor's first execute (steady state for the grow-only
// buffers); im2col index maps shared across a program's executors are
// attributed to each executor that references them, so the scratch sum
// slightly overstates a multi-executor server's shared-map footprint.
type ServerMemStats struct {
	ArenaBytes   int64 `json:"arena_bytes"`
	ScratchBytes int64 `json:"scratch_bytes"`
	// Waves / ParallelFraction are the plan-level parallelism stats of
	// the bound executors (max over batch buckets, which only widens
	// with batch size): scheduling steps whose members run concurrently,
	// and the modeled-work share inside them.
	Waves            int     `json:"waves,omitempty"`
	ParallelFraction float64 `json:"parallel_fraction,omitempty"`
	// WeightSparsity / SkipFraction are the bound program's sparsity
	// stats: the exactly-zero weight fraction, and the modeled MAC share
	// the sparsity-aware kernels skip (0 for a dense checkpoint).
	WeightSparsity float64 `json:"weight_sparsity,omitempty"`
	SkipFraction   float64 `json:"skip_fraction,omitempty"`
}

// recordPlanParallelism folds one freshly bound plan's parallelism
// stats into the server's max-aggregated gauges.
func (s *Server) recordPlanParallelism(pl *Plan) {
	for {
		cur := s.planWaves.Load()
		if int64(pl.ParallelWaves) <= cur || s.planWaves.CompareAndSwap(cur, int64(pl.ParallelWaves)) {
			break
		}
	}
	for {
		cur := s.parallelFrac.Load()
		if pl.ParallelFrac <= math.Float64frombits(cur) ||
			s.parallelFrac.CompareAndSwap(cur, math.Float64bits(pl.ParallelFrac)) {
			break
		}
	}
}

// MemStats returns a snapshot of the executor memory footprint.
func (s *Server) MemStats() ServerMemStats {
	ws, sf := s.prog.SparsityStats()
	return ServerMemStats{
		ArenaBytes:       s.arenaBytes.Load(),
		ScratchBytes:     s.scratchBytes.Load(),
		Waves:            int(s.planWaves.Load()),
		ParallelFraction: math.Float64frombits(s.parallelFrac.Load()),
		WeightSparsity:   ws,
		SkipFraction:     sf,
	}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:   s.requests.Load(),
		Batches:    s.nBatches.Load(),
		Batched:    s.batched.Load(),
		Failures:   s.failures.Load(),
		Rejected:   s.rejected.Load(),
		Expired:    s.expired.Load(),
		ShedHigh:   s.shedHigh.Load(),
		ShedNormal: s.shedNormal.Load(),
		ShedLow:    s.shedLow.Load(),
	}
}

// Close drains in-flight requests and stops the workers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.q.close()
	s.mu.Unlock()
	s.batcherW.Wait()
	s.wg.Wait()
}
