package engine_test

// Parallelism-aware placement tests: the planner must group the fused
// ViT q/k/v projections into dependency-layer waves with disjoint arena
// placement, the executor must actually run those waves concurrently
// and bit-identically, and the arena-growth budget gate must hold on
// every program at every configuration — including the zero-growth
// config, where the plan must fall back to exactly the serial bytes.

import (
	"testing"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/tensor"
)

// qkvWaves returns the parallel waves of a plan whose members are all
// linear instructions (the q/k/v projection waves on a transformer).
func qkvWaves(prog *engine.Program, pl *engine.Plan) [][]int {
	var out [][]int
	for _, w := range pl.Schedule {
		if !w.Parallel || len(w.Members) < 2 {
			continue
		}
		allLin := true
		for _, m := range w.Members {
			if prog.Instrs[m].Kind != engine.OpLinear {
				allLin = false
			}
		}
		if allLin {
			out = append(out, w.Members)
		}
	}
	return out
}

// TestViTQKVWavePlacement: on the fused depth-2 ViT, the planner must
// form one three-linear wave per block (the q/k/v projections — PR 6's
// consecutive-window greedy could never group them because splits sit
// between the linears in program order), keep the three outputs in
// disjoint arena regions, and stay inside the arena-growth budget.
func TestViTQKVWavePlacement(t *testing.T) {
	_, prog := compileViT(t, 3, 2)
	pl, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	waves := qkvWaves(prog, pl)
	if len(waves) < 2 {
		t.Fatalf("expected a q/k/v wave per block (2), got %d (schedule %v)", len(waves), pl.Schedule)
	}
	for _, members := range waves {
		if len(members) != 3 {
			t.Fatalf("q/k/v wave has %d members, want 3", len(members))
		}
		type reg struct{ lo, hi int }
		var regs []reg
		var dt tensor.DType
		for i, m := range members {
			out := prog.Instrs[m].Out
			if i == 0 {
				dt = pl.DTypes[out]
			} else if pl.DTypes[out] != dt {
				t.Fatalf("wave outputs mix dtypes %s and %s", dt, pl.DTypes[out])
			}
			off := pl.Offsets[out]
			regs = append(regs, reg{off, off + tensor.Numel(pl.Shapes[out])})
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].lo < regs[j].hi && regs[j].lo < regs[i].hi {
					t.Fatalf("wave outputs overlap: [%d,%d) and [%d,%d)",
						regs[i].lo, regs[i].hi, regs[j].lo, regs[j].hi)
				}
			}
		}
	}
	if pl.ParallelWaves < 2 {
		t.Fatalf("ParallelWaves = %d, want ≥ 2", pl.ParallelWaves)
	}
	if pl.ParallelFrac <= 0 || pl.ParallelFrac >= 1 {
		t.Fatalf("ParallelFrac = %v, want in (0, 1)", pl.ParallelFrac)
	}
	if pl.CritPathBytes <= 0 {
		t.Fatalf("CritPathBytes = %d, want > 0", pl.CritPathBytes)
	}
	growth := engine.DefaultPlanConfig().ArenaGrowth
	if budget := pl.SerialBytes + int64(growth*float64(pl.SerialBytes)); pl.ArenaBytes > budget {
		t.Fatalf("arena %d B exceeds serial %d B + %.0f%% budget", pl.ArenaBytes, pl.SerialBytes, growth*100)
	}
	t.Logf("vit plan: %s (serial %d B, crit-path %d B)", pl, pl.SerialBytes, pl.CritPathBytes)
}

// TestViTQKVWaveExecutes: the fused ViT executor must actually engage
// the q/k/v waves at pool width ≥ 2 — this is the program PR 6's
// scheduler always serialized — and produce codes bit-identical to a
// width-1 executor across the registries that bind wave-capable states.
func TestViTQKVWaveExecutes(t *testing.T) {
	cm, prog := compileViT(t, 3, 2)
	if tensor.InitParallel() < 2 {
		t.Skipf("worker pool frozen at %d lanes", tensor.InitParallel())
	}
	g := tensor.NewRNG(19)
	x := g.Uniform(0, 1, 8, 3, 32, 32)
	want := cm.Int.Forward(x)
	for _, rname := range []string{"fast-typed", "fast-noswar"} {
		mk := engine.FastKernels
		if rname == "fast-noswar" {
			mk = engine.FastKernelsNoSwar
		}
		t.Run(rname, func(t *testing.T) {
			ex, err := engine.NewExecutor(prog, x.Shape, engine.WithKernels(mk()))
			if err != nil {
				t.Fatal(err)
			}
			widest := 0
			for _, n := range ex.WaveSummary() {
				if n > widest {
					widest = n
				}
			}
			if widest < 2 {
				t.Fatalf("fused ViT bound no multi-instruction wave: %v", ex.WaveSummary())
			}
			y, err := ex.Execute(x)
			if err != nil {
				t.Fatal(err)
			}
			if ex.WaveParallelRuns() < 2 {
				t.Fatalf("q/k/v waves engaged %d times, want ≥ 2 (pool width %d)",
					ex.WaveParallelRuns(), tensor.Parallelism())
			}
			for i := range want.Data {
				if y.Data[i] != want.Data[i] {
					t.Fatalf("wave-parallel output diverges from interpreter at %d", i)
				}
			}
		})
	}
}

// TestPlanBudgetGateHonored: for every zoo program and a sweep of
// ArenaGrowth settings the planned arena must respect
// serial × (1 + growth); at growth 0 it must be exactly the serial
// plan's bytes (waves are only kept when disjoint placement is free),
// and an impossible MinWaveNs must restore the serial plan verbatim.
func TestPlanBudgetGateHonored(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	progs := map[string]*engine.Program{}
	_, progs["resnet20"] = compileZoo(t, "resnet20", calib)
	_, progs["vit"] = compileViT(t, 3, 2)
	im, fused := compile(t, branchyCNN(tensor.NewRNG(5)), calib)
	progs["branchy-fused"] = fused
	unfused, err := engine.Lower(im)
	if err != nil {
		t.Fatal(err)
	}
	progs["branchy-unfused"] = unfused
	shape := map[string][]int{"branchy-fused": {1, 3, 4, 4}, "branchy-unfused": {1, 3, 4, 4}}
	for name, prog := range progs {
		sh := shape[name]
		if sh == nil {
			sh = []int{8, 3, 32, 32}
		}
		for _, growth := range []float64{0, 0.05, 0.25, 1} {
			ex, err := engine.NewExecutor(prog, sh,
				engine.WithKernels(engine.FastKernels()),
				engine.WithPlanConfig(engine.PlanConfig{ArenaGrowth: growth, MinWaveNs: 2000}))
			if err != nil {
				t.Fatal(err)
			}
			pl := ex.Plan()
			budget := pl.SerialBytes + int64(growth*float64(pl.SerialBytes))
			if pl.ArenaBytes > budget {
				t.Fatalf("%s growth=%v: arena %d B over budget %d B (serial %d B)",
					name, growth, pl.ArenaBytes, budget, pl.SerialBytes)
			}
			if growth == 0 && pl.ArenaBytes != pl.SerialBytes {
				t.Fatalf("%s growth=0: arena %d B ≠ serial %d B", name, pl.ArenaBytes, pl.SerialBytes)
			}
		}
		// An unreachable work floor demotes every candidate: the plan must
		// collapse to the serial schedule, one singleton per instruction.
		ex, err := engine.NewExecutor(prog, sh,
			engine.WithKernels(engine.FastKernels()),
			engine.WithPlanConfig(engine.PlanConfig{MinWaveNs: 1 << 60}))
		if err != nil {
			t.Fatal(err)
		}
		pl := ex.Plan()
		if pl.ParallelWaves != 0 || len(pl.Schedule) != len(prog.Instrs) {
			t.Fatalf("%s MinWaveNs=max: %d parallel waves, %d steps (want 0, %d)",
				name, pl.ParallelWaves, len(pl.Schedule), len(prog.Instrs))
		}
		if pl.ArenaBytes != pl.SerialBytes {
			t.Fatalf("%s serial fallback: arena %d B ≠ serial %d B", name, pl.ArenaBytes, pl.SerialBytes)
		}
		if ex.WaveParallelRuns() != 0 {
			t.Fatalf("%s: serial-plan executor ran a wave", name)
		}
	}
}

// TestSerialScheduleMatchesPR6Plan: with no parallel waves the schedule
// degenerates to program order, so the wave-aware planner must
// reproduce the serial plan bit for bit — same offsets, same arenas —
// as PlanBuffersI64 does for the I64 layout (placement is pure
// address arithmetic; this pins the refactor's no-op case).
func TestSerialScheduleMatchesPR6Plan(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZoo(t, "resnet20", calib)
	pl, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	// resnet20's fused program has no independent GEMM pair (every
	// residual joins through a fused add), so the wave-aware plan IS the
	// serial plan.
	if pl.ParallelWaves != 0 {
		t.Fatalf("fused resnet20 formed %d parallel waves", pl.ParallelWaves)
	}
	if pl.ArenaBytes != pl.SerialBytes {
		t.Fatalf("arena %d B ≠ serial %d B on a wave-free program", pl.ArenaBytes, pl.SerialBytes)
	}
	if len(pl.Schedule) != len(prog.Instrs) {
		t.Fatalf("wave-free schedule has %d steps, want %d", len(pl.Schedule), len(prog.Instrs))
	}
}
