package engine

// White-box sparsity tests: every sparse microkernel must produce the
// accumulators of its dense counterpart bit-for-bit (skipped positions
// hold exactly-zero weights — identity elements of integer addition),
// the strategy selection must pick skip/N:M/dense by effective-MAC
// fraction, and the sparse SWAR lane bound must admit pruned weights the
// dense full-K bound rejects.

import (
	"testing"

	"torch2chip/internal/intmath"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// sparseWeights builds row-major [o][k] int8-range weights with roughly
// the given zero fraction (deterministic LCG so failures reproduce).
func sparseWeights(o, k int, sparsity float64, seed uint64) []int64 {
	w := make([]int64, o*k)
	s := seed
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 33
	}
	for i := range w {
		if float64(next()%1000) < sparsity*1000 {
			continue
		}
		v := int64(next()%255) - 127
		if v == 0 {
			v = 1
		}
		w[i] = v
	}
	return w
}

// nmWeights builds [o][k] weights with exact N:M structure (n nonzeros
// per aligned group of nmM).
func nmWeights(o, k, n int, seed uint64) []int64 {
	w := make([]int64, o*k)
	s := seed
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 33
	}
	for oc := 0; oc < o; oc++ {
		for g := 0; g+nmM <= k; g += nmM {
			for t := 0; t < n; t++ {
				j := int(next() % nmM)
				v := int64(next()%255) - 127
				if v == 0 {
					v = 1
				}
				w[oc*k+g+j] = v // duplicate j just leaves ≤ n nonzeros
			}
		}
	}
	return w
}

// TestSparseGemmKernelsMatchDense: the pair-skipping and N:M int32
// kernels (conv-panel and linear layouts) and the pair-skipping SWAR
// kernel must reproduce gemmPanels32's accumulator tile exactly, at
// several shapes including partial panels and odd site counts.
func TestSparseGemmKernelsMatchDense(t *testing.T) {
	shapes := []struct{ o, k, m int }{
		{4, 16, 8},
		{6, 36, 7},  // partial second panel, odd sites
		{10, 27, 5}, // k not divisible by 4 (no N:M)
		{3, 8, 9},   // single partial panel
	}
	for _, sh := range shapes {
		for _, sparsity := range []float64{0.3, 0.7, 0.95} {
			o, k, m := sh.o, sh.k, sh.m
			w := sparseWeights(o, k, sparsity, uint64(o*k)+uint64(sparsity*100))
			np := (o + panelW - 1) / panelW
			wp32 := packPanels32(w, o, k)
			sk := buildPanelSkip(w, o, k)

			// Random raw int8 activations as a widened panel.
			panel := make([]int32, m*k)
			s := uint64(99)
			for i := range panel {
				s = s*6364136223846793005 + 1442695040888963407
				panel[i] = int32((s>>33)%255) - 127
			}
			want := make([]int32, np*panelW*m)
			gemmPanels32(want, panel, wp32, m, k, o, np)

			got := make([]int32, len(want))
			gemmPanels32CSR(got, panel, sk, m, k, o)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("o=%d k=%d m=%d s=%.2f: csr acc[%d] = %d, dense %d", o, k, m, sparsity, i, got[i], want[i])
				}
			}

			// SWAR pair-skipping kernel over the biased byte panel.
			ba := int64(128)
			wMin, wMax := int64(0), int64(0)
			for _, v := range w {
				if v < wMin {
					wMin = v
				}
				if v > wMax {
					wMax = v
				}
			}
			bw := -wMin
			bpanel := make([]uint8, m*k)
			for i, v := range panel {
				bpanel[i] = uint8(int64(v) + ba)
			}
			wsum := rowSumsScaled(w, o, k, 1)
			bcorr := make([]int64, o)
			for i, v := range wsum {
				bcorr[i] = ba * v
			}
			wps := packPanelsSwar(w, o, k, bw)
			gotS := make([]int32, len(want))
			gemmPanelsSwarSparse(gotS, bpanel, wps, sk, bcorr, bw, m, k, o, np, m, 1)
			for i := range want {
				if gotS[i] != want[i] {
					t.Fatalf("o=%d k=%d m=%d s=%.2f: swar-sparse acc[%d] = %d, dense %d", o, k, m, sparsity, i, gotS[i], want[i])
				}
			}

			// Linear (row-major accumulator) layouts.
			xs := make([]int8, m*k)
			for i, v := range panel {
				xs[i] = int8(v)
			}
			wantRow := make([]int32, m*o)
			for pb := 0; pb < np; pb++ {
				wp := wp32[pb*k*panelW : (pb+1)*k*panelW]
				oc0 := pb * panelW
				nch := o - oc0
				if nch > panelW {
					nch = panelW
				}
				for i := 0; i < m; i++ {
					var c [panelW]int32
					for j := 0; j < k; j++ {
						av := int32(xs[i*k+j])
						for r := 0; r < panelW; r++ {
							c[r] += av * wp[j*panelW+r]
						}
					}
					storeAccRow(wantRow, i*o+oc0, nch, c[0], c[1], c[2], c[3])
				}
			}
			gotRow := make([]int32, m*o)
			linPanelsCSR(gotRow, xs, sk, 0, m, k, o)
			for i := range wantRow {
				if gotRow[i] != wantRow[i] {
					t.Fatalf("o=%d k=%d m=%d s=%.2f: lin-csr acc[%d] = %d, dense %d", o, k, m, sparsity, i, gotRow[i], wantRow[i])
				}
			}
		}
	}
}

// TestNMKernelsMatchDense validates the N:M-packed kernels at n = 1 and
// n = 2 against the dense panel GEMM.
func TestNMKernelsMatchDense(t *testing.T) {
	for _, n := range []int{1, 2} {
		for _, sh := range []struct{ o, k, m int }{{4, 16, 6}, {7, 32, 5}, {2, 8, 3}} {
			o, k, m := sh.o, sh.k, sh.m
			w := nmWeights(o, k, n, uint64(n*o*k))
			if got := detectNM(w, o, k); got == 0 || got > n {
				t.Fatalf("detectNM(%d:%d weights) = %d", n, nmM, got)
			}
			np := (o + panelW - 1) / panelW
			wp32 := packPanels32(w, o, k)
			nm := buildNMPack(w, o, k, n)
			panel := make([]int32, m*k)
			s := uint64(7)
			for i := range panel {
				s = s*6364136223846793005 + 1442695040888963407
				panel[i] = int32((s>>33)%255) - 127
			}
			want := make([]int32, np*panelW*m)
			gemmPanels32(want, panel, wp32, m, k, o, np)
			got := make([]int32, len(want))
			gemmPanelsNM(got, panel, nm, m, k, o)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d o=%d k=%d m=%d: nm acc[%d] = %d, dense %d", n, o, k, m, i, got[i], want[i])
				}
			}
			xs := make([]int8, m*k)
			for i, v := range panel {
				xs[i] = int8(v)
			}
			wantRow := make([]int32, m*o)
			gotRow := make([]int32, m*o)
			linPanelsCSR(wantRow, xs, buildPanelSkip(w, o, k), 0, m, k, o)
			linPanelsNM(gotRow, xs, nm, 0, m, k, o)
			for i := range wantRow {
				if gotRow[i] != wantRow[i] {
					t.Fatalf("n=%d o=%d k=%d m=%d: lin-nm acc[%d] = %d, want %d", n, o, k, m, i, gotRow[i], wantRow[i])
				}
			}
		}
	}
}

// TestAnalyzeInstrStrategy checks the analysis rules: dense weights and
// grouped convs build no sparse structure, unstructured sparsity builds
// the CSR/pair lists, N:M structure builds the packed form, and
// near-dense weights (modeled CSR time above the dense panel's) are not
// worth an indexed loop.
func TestAnalyzeInstrStrategy(t *testing.T) {
	mk := func(w []int64, o, k int, groups int) *Instr {
		wt := tensor.NewInt(o, k/1, 1, 1)
		// Reshape to [o, k, 1, 1] for conv; the analysis only uses Shape[0]
		// and Numel.
		wt.Data = w
		wt.Shape = []int{o, k, 1, 1}
		return &Instr{Kind: OpConv, W: wt, P: tensor.ConvParams{Groups: groups}}
	}
	o, k := 8, 64
	dense := sparseWeights(o, k, 0, 1)
	if sp := analyzeInstr(mk(dense, o, k, 1)); sp.strategy != spDense || sp.effNum != 1 || sp.effDen != 1 {
		t.Fatalf("dense weights → %v (%d/%d)", sp.strategy, sp.effNum, sp.effDen)
	}
	sparse := sparseWeights(o, k, 0.7, 2)
	if sp := analyzeInstr(mk(sparse, o, k, 1)); sp.strategy != spSkip {
		t.Fatalf("70%% unstructured → %v, want skip", sp.strategy)
	} else if sp.effNum >= sp.effDen || sp.skip == nil {
		t.Fatalf("skip strategy eff %d/%d, skip=%v", sp.effNum, sp.effDen, sp.skip != nil)
	}
	if sp := analyzeInstr(mk(sparse, o, k, 2)); sp.strategy != spDense {
		t.Fatalf("grouped conv must stay dense, got %v", sp.strategy)
	}
	nmw := nmWeights(o, k, 2, 3)
	if sp := analyzeInstr(mk(nmw, o, k, 1)); sp.strategy != spNM || sp.effNum != 2 || sp.effDen != nmM {
		t.Fatalf("2:4 weights → %v (%d/%d), want nm 2/4", sp.strategy, sp.effNum, sp.effDen)
	}
	// 5% sparsity: pair-live fraction ≈ 1 − s² ≈ 0.998 > 7/8 → dense.
	near := sparseWeights(o, k, 0.05, 4)
	if sp := analyzeInstr(mk(near, o, k, 1)); sp.strategy != spDense {
		t.Fatalf("near-dense weights → %v, want dense", sp.strategy)
	}
	// The linear kind takes the same analysis.
	lw := tensor.NewInt(o, k)
	lw.Data = nmWeights(o, k, 1, 5)
	if sp := analyzeInstr(&Instr{Kind: OpLinear, W: lw}); sp.strategy != spNM || sp.effNum != 1 {
		t.Fatalf("1:4 linear → %v (%d/%d)", sp.strategy, sp.effNum, sp.effDen)
	}
}

// sparseLinearProgram builds a minimal one-linear program with the given
// weights; input codes are full-range int8.
func sparseLinearProgram(t *testing.T, w []int64, o, k int) *Program {
	t.Helper()
	wt := tensor.NewInt(o, k)
	wt.Data = w
	sc, err := intmath.NewMulQuant([]float32{0.001}, []float32{0}, 4, 12, 8, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{
		InQuant: quant.NewQBase(8, true, false),
		Instrs: []Instr{{
			Kind: OpLinear, Name: "lin", In: []int{0}, Out: 1,
			W: wt, Scaler: sc,
		}},
		NumBufs: 2, Input: 0, Output: 1,
		InShape: []int{k},
	}
	if err := p.AnnotateDTypes(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSwarSparseLegality: a linear whose full-K biased lane sum
// overflows 32 bits (K·aSpan·wSpan > 2³²−1) must be rejected by the
// dense SWAR bound but admitted — and bound to the pair-skipping SWAR
// kernel — under the live-K bound, bit-identically to the reference
// registry. The dense-baseline registry (FastKernelsNoSparse) must fall
// back to the int32 panel instead.
func TestSwarSparseLegality(t *testing.T) {
	// K chosen past the dense boundary (66311 at spans 255·254) and NOT
	// divisible by 4 so no N:M structure hides the skip path; 100 live
	// positions per row keep the live-K lane sum far below the bound.
	// All channels share the same live positions (column-structured
	// sparsity), which is exactly the regime where the cost plan binds
	// the pair-skipping SWAR kernel over the channel CSR: the pair live
	// lists collapse to the per-row lists and the dual-lane multiply
	// wins.
	o, k := 4, 66562
	w := make([]int64, o*k)
	for oc := 0; oc < o; oc++ {
		for t := 0; t < 100; t++ {
			j := (t * 661) % k
			if t%2 == 0 {
				w[oc*k+j] = 127
			} else {
				w[oc*k+j] = -127
			}
		}
	}
	p := sparseLinearProgram(t, w, o, k)
	st, err := p.storage()
	if err != nil {
		t.Fatal(err)
	}
	if !st.typed[0] {
		t.Fatal("sparse linear must stay on typed storage (maxRowNnz bound)")
	}
	if st.swar[0] {
		t.Fatal("full-K lane bound must reject K=66562 at spans 255·254")
	}
	if !st.swarSparse[0] {
		t.Fatal("live-K lane bound must admit ~200 live positions per pair")
	}

	g := tensor.NewRNG(31)
	codes := tensor.NewInt(2, k)
	for i := range codes.Data {
		codes.Data[i] = int64(g.Intn(255)) - 127
	}
	var want []int64
	for _, tc := range []struct {
		name string
		reg  *Registry
		path string
	}{
		{"reference", ReferenceKernels(), ""},
		{"fast-sparse", FastKernels(), "swar-sparse"},
		{"fast-dense", FastKernelsNoSparse(), "i32-panel"},
	} {
		ex, err := NewExecutor(p, []int{2, k}, WithKernels(tc.reg))
		if err != nil {
			t.Fatal(err)
		}
		if tc.path != "" {
			cs := ex.KernelChoices()
			if len(cs) != 1 || cs[0].Path != tc.path {
				t.Fatalf("%s bound path %q, want %q", tc.name, cs[0].Path, tc.path)
			}
		}
		out, err := ex.ExecuteCodes(codes, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = append([]int64(nil), out.Data...)
			continue
		}
		for i := range want {
			if out.Data[i] != want[i] {
				t.Fatalf("%s diverges from reference at %d: %d vs %d", tc.name, i, out.Data[i], want[i])
			}
		}
	}
}

// TestPackCacheWeightFingerprint: re-annotating a program after its
// weight content changed (the hot-reload-in-place hazard) must not serve
// stale panel packs — the fingerprinted cache key forces a repack, and
// the new executor's output matches the reference kernels on the new
// weights.
func TestPackCacheWeightFingerprint(t *testing.T) {
	o, k := 8, 64
	p := sparseLinearProgram(t, sparseWeights(o, k, 0, 11), o, k)
	codes := tensor.NewInt(2, k)
	g := tensor.NewRNG(13)
	for i := range codes.Data {
		codes.Data[i] = int64(g.Intn(255)) - 127
	}
	ex1, err := NewExecutor(p, []int{2, k}, WithKernels(FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex1.ExecuteCodes(codes, nil); err != nil {
		t.Fatal(err)
	}

	// Prune the weights in place to 70% and re-annotate (the "program
	// changed" hook); a fresh executor must bind the sparse kernels
	// against freshly packed panels, not the cached dense ones.
	w2 := sparseWeights(o, k, 0.7, 12)
	copy(p.Instrs[0].W.Data, w2)
	if err := p.AnnotateDTypes(); err != nil {
		t.Fatal(err)
	}
	ex2, err := NewExecutor(p, []int{2, k}, WithKernels(FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex2.ExecuteCodes(codes, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewExecutor(p, []int{2, k}, WithKernels(ReferenceKernels()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ExecuteCodes(codes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-reload output diverges at %d: %d vs %d (stale pack?)", i, got.Data[i], want.Data[i])
		}
	}
	if ws, _ := p.SparsityStats(); ws < 0.5 {
		t.Fatalf("re-annotated sparsity stats stale: weight sparsity %.2f", ws)
	}
}
