package engine_test

// Black-box sparsity tests: pruned zoo models must stay bit-identical to
// the interpreter across every registry and opt level (the sparse
// kernels change iteration order only over exact-zero terms), the
// sparsity-aware registry must actually bind the sparse paths with the
// expected skip fractions, and the modeled effective MACs must shrink
// accordingly.

import (
	"testing"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/prune"
	"torch2chip/internal/tensor"
)

// compileZooPruned is compileZoo with a one-shot pruning pass (magnitude
// to target sparsity, or 2:4 N:M when nm is set) applied to the float
// weights before quantization — the cmd/t2c -prune-sparsity/-prune-nm
// flow.
func compileZooPruned(t testing.TB, name string, calib *data.Dataset, target float64, nm bool) (*core.Compiled, *engine.Program) {
	t.Helper()
	g := tensor.NewRNG(7)
	var model nn.Layer
	switch name {
	case "resnet20":
		model = models.NewResNet(g, models.ResNet20(10))
	case "mobilenet":
		model = models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: 10, Blocks: 4})
	default:
		t.Fatalf("unknown zoo model %q", name)
	}
	x, _ := calib.Batch([]int{0, 1, 2, 3})
	model.Forward(x)
	params := prune.PrunableParams(model)
	if nm {
		pr, err := prune.NewNM(params, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		pr.Step(1)
	} else {
		prune.NewMagnitude(params, target).Step(1)
	}
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The compile callers (cmd/t2c, the bench harness) stamp the
	// single-sample input shape; SparsityStats needs it for the modeled
	// skip fraction.
	cm.Prog.InShape = []int{3, 32, 32}
	return cm, cm.Prog
}

// TestSparseZooParityAcrossRegistriesAndOptLevels: magnitude-pruned and
// N:M-pruned zoo models must be bit-identical to the interpreter on
// every registry (sparse-aware fast, dense-baseline fast, I64, im2col,
// reference) at both opt levels and multiple batch sizes.
func TestSparseZooParityAcrossRegistriesAndOptLevels(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	variants := []struct {
		name   string
		target float64
		nm     bool
	}{
		{"mag70", 0.7, false},
		{"nm24", 0, true},
	}
	regs := map[string]func() *engine.Registry{
		"fast-sparse": engine.FastKernels,
		"fast-dense":  engine.FastKernelsNoSparse,
		"fast-i64":    engine.FastKernelsI64,
		"im2col":      engine.Im2ColKernels,
		"reference":   engine.ReferenceKernels,
	}
	for _, model := range []string{"resnet20", "mobilenet"} {
		for _, v := range variants {
			t.Run(model+"/"+v.name, func(t *testing.T) {
				cm, fused := compileZooPruned(t, model, calib, v.target, v.nm)
				unfused, err := engine.Lower(cm.Int)
				if err != nil {
					t.Fatal(err)
				}
				if ws, _ := fused.SparsityStats(); ws < 0.4 {
					t.Fatalf("pruned %s/%s weight sparsity %.2f — pruning did not survive export", model, v.name, ws)
				}
				g := tensor.NewRNG(17)
				for _, prog := range []*engine.Program{unfused, fused} {
					for rname, mk := range regs {
						for _, batch := range []int{1, 3} {
							xb := g.Uniform(0, 1, batch, 3, 32, 32)
							t.Run(rname, func(t *testing.T) {
								assertBitIdentical(t, cm.Int, prog, xb, mk())
							})
						}
					}
				}
			})
		}
	}
}

// TestSparseKernelSelectionAndSkipFraction is the skip-fraction
// regression: at 70% magnitude sparsity the sparse-aware registry must
// bind sparse paths covering most GEMM instructions, the largest bound
// skip fraction must clear 0.35 (pair-granular skipping at 70% row
// sparsity skips ≈ s² ≈ 49% of MACs), and the modeled effective MACs
// must drop below 70% of dense. The dense-baseline registry must report
// zero skip.
func TestSparseKernelSelectionAndSkipFraction(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZooPruned(t, "resnet20", calib, 0.7, false)
	ex, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		t.Fatal(err)
	}
	var sparse, denseBound int
	var maxSkip float64
	for _, c := range ex.KernelChoices() {
		switch c.Path {
		case "swar-sparse", "i32-sparse", "i32-nm":
			sparse++
			if c.SkipFrac <= 0 || c.SkipFrac >= 1 {
				t.Fatalf("%s bound %s with skip fraction %.3f", c.Name, c.Path, c.SkipFrac)
			}
			if c.SkipFrac > maxSkip {
				maxSkip = c.SkipFrac
			}
		case "swar", "i32-panel":
			denseBound++
			if c.SkipFrac != 0 {
				t.Fatalf("dense-bound %s reports skip fraction %.3f", c.Name, c.SkipFrac)
			}
		}
	}
	t.Logf("resnet20 mag70: %d sparse-bound, %d dense-bound, max skip %.3f", sparse, denseBound, maxSkip)
	if sparse == 0 {
		t.Fatal("70-percent-pruned resnet20 bound no sparse kernel")
	}
	if maxSkip < 0.35 {
		t.Fatalf("max bound skip fraction %.3f < 0.35 at 70%% sparsity", maxSkip)
	}
	dense, eff, err := prog.ModeledMacs([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || dense <= 0 || float64(eff) > 0.7*float64(dense) {
		t.Fatalf("modeled MACs dense=%d effective=%d: effective not < 70%% of dense", dense, eff)
	}
	ws, sf := prog.SparsityStats()
	if ws < 0.6 || sf <= 0 {
		t.Fatalf("SparsityStats = (%.3f, %.3f), want weight sparsity ≥ 0.6 and positive skip", ws, sf)
	}

	exDense, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernelsNoSparse()))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range exDense.KernelChoices() {
		switch c.Path {
		case "swar-sparse", "i32-sparse", "i32-nm":
			t.Fatalf("dense-baseline registry bound sparse path %s at %s", c.Path, c.Name)
		}
	}
}

// TestNMSelectionOnPrunedZoo: a 2:4-pruned model must bind the N:M
// microkernel on GEMM-shaped weights (K divisible by 4) with the exact
// 0.5 skip fraction, and report the structure in SparsityReport. The
// int32-panel registry is where the pack holds a clear cost margin
// (2/4 · 20 = 10 units/MAC vs the 21-unit dense panel); under the full
// SWAR registry it only ties the dual-lane dense kernel (10/MAC) and
// wins on the tie-break, so this test pins the unambiguous regime.
func TestNMSelectionOnPrunedZoo(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZooPruned(t, "resnet20", calib, 0, true)
	ex, err := engine.NewExecutor(prog, []int{4, 3, 32, 32}, engine.WithKernels(engine.FastKernelsNoSwar()))
	if err != nil {
		t.Fatal(err)
	}
	nmBound := 0
	for _, c := range ex.KernelChoices() {
		if c.Path == "i32-nm" {
			nmBound++
			if c.SkipFrac != 0.5 {
				t.Fatalf("%s: N:M skip fraction %.3f, want exactly 0.5", c.Name, c.SkipFrac)
			}
		}
	}
	if nmBound == 0 {
		t.Fatal("2:4-pruned resnet20 bound no N:M kernel")
	}
	nmReported := 0
	for _, info := range prog.SparsityReport() {
		if info.NMN > 0 {
			nmReported++
			if info.NMN != 2 && info.NMN != 1 {
				t.Fatalf("%s: N:M reported %d:%d", info.Name, info.NMN, info.NMM)
			}
			if info.NMM != 4 {
				t.Fatalf("%s: N:M group width %d, want 4", info.Name, info.NMM)
			}
		}
	}
	// Detection is a superset of binding: a row group holding fewer
	// than n nonzeros gives the unpadded CSR form fewer executed MACs
	// than the zero-padded pack, and the plan correctly keeps CSR there.
	if nmReported < nmBound {
		t.Fatalf("SparsityReport detects N:M on %d instructions, executor bound %d", nmReported, nmBound)
	}
}

// TestSparseParityAcrossParallelism: the sparse-bound kernels must stay
// bit-identical across worker counts and wave-parallel execution.
func TestSparseParityAcrossParallelism(t *testing.T) {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZooPruned(t, "resnet20", calib, 0.7, false)
	g := tensor.NewRNG(23)
	x := g.Uniform(0, 1, 4, 3, 32, 32)
	var ref *tensor.Tensor
	for _, maxPar := range []int{1, 2, 0} {
		ex, err := engine.NewExecutor(prog, x.Shape,
			engine.WithKernels(engine.FastKernels()), engine.WithMaxParallel(maxPar))
		if err != nil {
			t.Fatal(err)
		}
		for _, width := range []int{1, 4} {
			old := tensor.SetParallelism(width)
			y, err := ex.Execute(x)
			tensor.SetParallelism(old)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = y
				continue
			}
			for i := range ref.Data {
				if y.Data[i] != ref.Data[i] {
					t.Fatalf("maxPar=%d width=%d diverges at %d", maxPar, width, i)
				}
			}
		}
	}
}

// benchPruned compiles a magnitude-pruned resnet20 for the
// sparse-vs-dense benchmarks.
func benchPruned(b *testing.B, sparsity float64) *engine.Program {
	calib, _ := data.Generate(data.SynthCIFAR10, 48, 8)
	_, prog := compileZooPruned(b, "resnet20", calib, sparsity, false)
	return prog
}

func benchEngine(b *testing.B, prog *engine.Program, reg *engine.Registry) {
	ex, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(reg))
	if err != nil {
		b.Fatal(err)
	}
	g := tensor.NewRNG(3)
	x := g.Uniform(0, 1, 8, 3, 32, 32)
	old := tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)
	if _, err := ex.Execute(x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResNet20Mag70Sparse(b *testing.B) {
	benchEngine(b, benchPruned(b, 0.7), engine.FastKernels())
}
func BenchmarkResNet20Mag70Dense(b *testing.B) {
	benchEngine(b, benchPruned(b, 0.7), engine.FastKernelsNoSparse())
}
func BenchmarkResNet20Mag85Sparse(b *testing.B) {
	benchEngine(b, benchPruned(b, 0.85), engine.FastKernels())
}
func BenchmarkResNet20Mag85Dense(b *testing.B) {
	benchEngine(b, benchPruned(b, 0.85), engine.FastKernelsNoSparse())
}
