package engine_test

import (
	"os"
	"runtime"
	"testing"

	"torch2chip/internal/tensor"
)

// TestMain widens GOMAXPROCS to at least 4 before the tensor worker
// pool freezes its width, so the parallel kernel paths — slot-confined
// wave execution, tile splitting, the GOMAXPROCS bench sweep — are
// genuinely exercised even on 1- and 2-core CI runners. Wall-clock
// scaling assertions still gate on runtime.NumCPU separately.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	tensor.InitParallel()
	os.Exit(m.Run())
}
