package engine

// Bind-time work model: per-instruction cost estimates from op kind ×
// shapes, used by the planner to decide which candidate waves are worth
// a parallel dispatch and which to demote first when disjoint placement
// would exceed the arena-growth budget. The constants are calibrated
// against the committed BENCH_engine.json ns/op record (single-core
// fused+prepacked+swar rows: resnet20 batch-8 ≈ 98 ms over ~330 M MACs
// ≈ 0.30 ns/MAC, vit ≈ 0.25 ns/MAC), so modeled work is within ~2x of
// measured time on the machine that produced the record — more than
// enough to separate µs-scale GEMMs from ns-scale dispatch overhead.
// The model only gates scheduling; it never affects values.

import "torch2chip/internal/tensor"

const (
	// nsPerMac is the modeled cost of one multiply-accumulate on the
	// prepacked integer GEMM paths (fixed-point: 0.3 ns ≈ 3/10).
	macNsNum, macNsDen = 3, 10
	// nsPerElem is the modeled cost of one element of a non-GEMM
	// instruction (requantize funnels, LUT lookups, copies).
	elemNs = 1
)

// PlanConfig tunes parallelism-aware placement. The zero value disables
// arena growth entirely (serial-plan bytes are a hard ceiling) and
// accepts any wave with positive modeled work; DefaultPlanConfig is
// what NewExecutor uses when no WithPlanConfig option is given.
type PlanConfig struct {
	// ArenaGrowth is the fraction of the serial plan's arena bytes the
	// parallelism-aware plan may add to keep same-wave outputs disjoint
	// (0.25 = up to 25% larger). Waves are demoted cheapest-first until
	// the plan fits, so the bound is always honored.
	ArenaGrowth float64
	// MinWaveNs is the smallest modeled wave work (summed over members)
	// worth a cross-instruction parallel dispatch; below it the pool
	// barrier would cost more than the overlap buys.
	MinWaveNs int64
}

// DefaultPlanConfig allows 25% arena growth and requires ~2 µs of
// modeled work per wave (a pool dispatch plus barrier costs on the
// order of 1 µs).
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{ArenaGrowth: 0.25, MinWaveNs: 2000}
}

// CostModel carries measured-vs-modeled calibration ratios per op kind,
// typically loaded from a committed BENCH_profile.json run. Multiplying
// the bind-time work model by these ratios turns it from a relative
// scheduling heuristic into a wall-clock predictor for the machine the
// profile was measured on. A nil model (and any op kind missing from
// Ratios) models the ratio as 1.
type CostModel struct {
	Ratios map[OpKind]float64
}

func (c *CostModel) ratio(k OpKind) float64 {
	if c == nil || c.Ratios == nil {
		return 1
	}
	if r, ok := c.Ratios[k]; ok && r > 0 {
		return r
	}
	return 1
}

// OpWork is the work model's aggregate for one op kind over a program:
// how many instructions of the kind execute per run and the summed
// modeled serial nanoseconds. The profile experiment joins this against
// measured per-instruction spans to produce the measured-vs-modeled
// calibration ratio the SLO scheduler will consume.
type OpWork struct {
	Kind   OpKind
	Instrs int
	WorkNs int64
}

// ModeledOpWork evaluates the bind-time work model for every
// instruction at inShape (full shape including the batch dimension) and
// aggregates it per op kind, in first-appearance order.
func (p *Program) ModeledOpWork(inShape []int) ([]OpWork, error) {
	shapes, err := p.InferShapes(inShape)
	if err != nil {
		return nil, err
	}
	idx := map[OpKind]int{}
	var out []OpWork
	for i := range p.Instrs {
		it := &p.Instrs[i]
		j, ok := idx[it.Kind]
		if !ok {
			j = len(out)
			idx[it.Kind] = j
			out = append(out, OpWork{Kind: it.Kind})
		}
		out[j].Instrs++
		out[j].WorkNs += p.instrWorkNs(i, shapes)
	}
	return out, nil
}

// instrDenseMacs counts one GEMM instruction's dense multiply-
// accumulates at the planned shapes (0 for non-GEMM kinds).
func instrDenseMacs(it *Instr, shapes [][]int) int64 {
	switch it.Kind {
	case OpConv:
		// W is [o, c/groups, kH, kW]; out is [n, o, oh, ow].
		out := shapes[it.Out]
		return int64(tensor.Numel(out)) * int64(tensor.Numel(it.W.Shape)) / int64(it.W.Shape[0])
	case OpLinear:
		// W is [o, k]; rows = numel(in)/k.
		in := shapes[it.In[0]]
		return int64(tensor.Numel(in)) * int64(it.W.Shape[0])
	case OpMatMul:
		// [b, m, k] × [b, k, n] (or transposed): b·m·k·n.
		a, out := shapes[it.In[0]], shapes[it.Out]
		return int64(tensor.Numel(out)) * int64(a[len(a)-1])
	}
	return 0
}

// instrWorkNs models one instruction's serial execution time in
// nanoseconds from its kind and planned shapes. Conv/linear MACs are
// scaled by the instruction's effective-MAC fraction — the sparse-bound
// kernels execute only the live fraction, so waves formed around (and
// calibration ratios computed against) the dense count would be
// dishonest on pruned models.
func (p *Program) instrWorkNs(i int, shapes [][]int) int64 {
	it := &p.Instrs[i]
	macs := instrDenseMacs(it, shapes)
	if macs == 0 {
		return int64(tensor.Numel(shapes[it.Out])) * elemNs
	}
	if it.Kind == OpConv || it.Kind == OpLinear {
		_, num, den := p.sparseEff(i)
		macs = macs * num / den
	}
	return macs * macNsNum / macNsDen
}
