package engine

import (
	"fmt"
	"sort"

	"torch2chip/internal/tensor"
)

// Plan is the static buffer placement for one input shape: every buffer
// maps to a word offset inside a single reusable arena. Flatten outputs
// alias their input storage, and buffers whose live ranges do not overlap
// share arena words.
type Plan struct {
	Shapes  [][]int // per-buffer inferred shape
	Offsets []int   // per-buffer arena word offset (alias-resolved)

	// ArenaWords is the planned arena size; NaiveWords is what allocating
	// every buffer separately (the interpreter strategy) would take.
	ArenaWords int
	NaiveWords int
}

// PlannedBytes returns the arena footprint in bytes (int64 words).
func (pl *Plan) PlannedBytes() int64 { return int64(pl.ArenaWords) * 8 }

// NaiveBytes returns the unplanned footprint in bytes.
func (pl *Plan) NaiveBytes() int64 { return int64(pl.NaiveWords) * 8 }

// String summarizes the plan for logs and the bench CLI.
func (pl *Plan) String() string {
	saved := 1 - float64(pl.ArenaWords)/float64(pl.NaiveWords)
	return fmt.Sprintf("arena %d B (naive %d B, %.0f%% saved)",
		pl.PlannedBytes(), pl.NaiveBytes(), saved*100)
}

// interval is a buffer's live range over instruction indices: defined at
// def (input buffer: -1), last read at use (output buffer: len(instrs)).
type interval struct {
	def, use int
	words    int
}

// aliasCandidates returns the input buffers instr's output may share
// storage with, in preference order. Only strictly element-aligned
// writes qualify: the kernel must read in[i] (for every aliasable input)
// before writing out[i]. Conv/linear outputs may alias only the fused
// residual branch — their primary input is re-read across output sites.
func aliasCandidates(it *Instr) []int {
	switch it.Kind {
	case OpRescale, OpAdd:
		return it.In
	case OpConv, OpLinear:
		if it.FusedAdd {
			return it.In[len(it.In)-1:]
		}
	}
	return nil
}

// PlanBuffers liveness-analyzes the program for the given input shape and
// greedily packs buffers into the smallest arena: buffers are placed in
// decreasing size order at the lowest offset not overlapping any
// already-placed buffer with an intersecting live range. Flatten outputs
// alias their source, and elementwise outputs (rescale, residual add,
// fused-add epilogues) are written in place over a dying input, which
// removes whole buffers from the packed liveness set.
func (p *Program) PlanBuffers(inShape []int) (*Plan, error) {
	shapes, err := p.InferShapes(inShape)
	if err != nil {
		return nil, err
	}
	// lastUse[b]: index of the last instruction reading buffer b
	// (len(instrs) for the program output, -1 for never-read).
	lastUse := make([]int, p.NumBufs)
	for i := range lastUse {
		lastUse[i] = -1
	}
	for idx := range p.Instrs {
		for _, b := range p.Instrs[idx].In {
			lastUse[b] = idx
		}
	}
	lastUse[p.Output] = len(p.Instrs)

	// Storage roots, resolved in one ordered walk: flatten aliases
	// collapse onto their source, and elementwise outputs adopt a dying
	// input's root. rootUse tracks, per root, the last read over every
	// member merged so far — a candidate is dead after idx iff its
	// root's use is ≤ idx.
	root := make([]int, p.NumBufs)
	for i := range root {
		root[i] = i
	}
	rootUse := make(map[int]int, p.NumBufs)
	rootUse[p.Input] = lastUse[p.Input]
	extend := func(r, use int) {
		if u, ok := rootUse[r]; !ok || use > u {
			rootUse[r] = use
		}
	}
	for idx := range p.Instrs {
		it := &p.Instrs[idx]
		out := it.Out
		if it.Kind == OpFlatten {
			root[out] = root[it.In[0]]
			extend(root[out], lastUse[out])
			continue
		}
		// In-place placement belongs to the optimization layer: unfused
		// programs keep the PR-1 plan so baselines stay comparable.
		if p.OptLevel < OptFuse {
			extend(root[out], lastUse[out])
			continue
		}
		for _, c := range aliasCandidates(it) {
			rc := root[c]
			if rootUse[rc] > idx {
				continue // still read after this instruction
			}
			if it.Kind == OpConv || it.Kind == OpLinear {
				// The candidate is the fused residual branch; the primary
				// operands are re-read across output sites and must never
				// share its storage.
				conflict := false
				for _, other := range it.In[:len(it.In)-1] {
					if root[other] == rc {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
			}
			root[out] = rc
			break
		}
		extend(root[out], lastUse[out])
	}

	// Liveness per root: min def, max use over all aliased buffers.
	iv := make(map[int]*interval)
	touch := func(buf, at int, isDef bool) {
		r := root[buf]
		e, ok := iv[r]
		if !ok {
			e = &interval{def: at, use: at}
			iv[r] = e
		}
		if isDef && at < e.def {
			e.def = at
		}
		if at > e.use {
			e.use = at
		}
		if w := tensor.Numel(shapes[buf]); w > e.words {
			e.words = w
		}
	}
	touch(p.Input, -1, true)
	for idx, it := range p.Instrs {
		for _, b := range it.In {
			touch(b, idx, false)
		}
		touch(it.Out, idx, true)
	}
	// The output buffer must survive past the last instruction so the
	// caller can read it after Execute returns.
	touch(p.Output, len(p.Instrs), false)

	// Greedy placement, largest first.
	roots := make([]int, 0, len(iv))
	naive := 0
	for r, e := range iv {
		roots = append(roots, r)
		naive += e.words
	}
	sort.Slice(roots, func(a, b int) bool {
		if iv[roots[a]].words != iv[roots[b]].words {
			return iv[roots[a]].words > iv[roots[b]].words
		}
		return roots[a] < roots[b]
	})
	type placed struct{ off, words, def, use int }
	var placements []placed
	offsetOf := make(map[int]int, len(roots))
	arena := 0
	for _, r := range roots {
		e := iv[r]
		// Collect placed buffers whose live ranges overlap this one.
		var busy []placed
		for _, q := range placements {
			if e.def <= q.use && q.def <= e.use {
				busy = append(busy, q)
			}
		}
		sort.Slice(busy, func(a, b int) bool { return busy[a].off < busy[b].off })
		off := 0
		for _, q := range busy {
			if off+e.words <= q.off {
				break
			}
			if q.off+q.words > off {
				off = q.off + q.words
			}
		}
		offsetOf[r] = off
		placements = append(placements, placed{off: off, words: e.words, def: e.def, use: e.use})
		if off+e.words > arena {
			arena = off + e.words
		}
	}

	pl := &Plan{Shapes: shapes, Offsets: make([]int, p.NumBufs), ArenaWords: arena, NaiveWords: naive}
	for b := 0; b < p.NumBufs; b++ {
		if shapes[b] == nil {
			pl.Offsets[b] = -1
			continue
		}
		pl.Offsets[b] = offsetOf[root[b]]
	}
	return pl, nil
}
