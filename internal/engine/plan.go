package engine

import (
	"fmt"
	"sort"
	"strings"

	"torch2chip/internal/tensor"
)

// Plan is the static buffer placement for one input shape: every buffer
// maps to an element offset inside the arena of its storage dtype.
// Flatten outputs alias their input storage, and buffers whose live
// ranges do not overlap share arena space. Storage is packed at byte
// granularity — each dtype gets its own arena, so an I8 buffer costs one
// byte per element instead of the pre-typed engine's eight, and element
// alignment is automatic.
//
// Since PR 7 the plan also carries the wave schedule it was placed for:
// placement and parallelism are co-planned, so instructions grouped into
// a parallel wave have their outputs kept in disjoint arena regions
// (liveness is computed over schedule steps, not raw program indices)
// whenever the marginal arena growth stays inside PlanConfig.ArenaGrowth
// and the wave's modeled work beats dispatch overhead.
type Plan struct {
	Shapes  [][]int        // per-buffer inferred shape
	DTypes  []tensor.DType // per-buffer storage dtype
	Offsets []int          // per-buffer element offset in its dtype arena

	// ArenaElems is the planned per-dtype arena length in elements;
	// ArenaBytes/NaiveBytes are the planned and unplanned (interpreter
	// strategy: every buffer allocated separately) footprints in bytes.
	ArenaElems [tensor.NumDTypes]int
	ArenaBytes int64
	NaiveBytes int64

	// Schedule is the wave schedule placement was computed for, covering
	// every instruction exactly once in a topological order. Entries with
	// Parallel set are dependency-free groups whose outputs occupy
	// disjoint arena regions; everything else is a program-order
	// singleton. SerialBytes is the arena footprint of the all-singleton
	// plan — the baseline the ArenaGrowth budget was measured from.
	Schedule      []PlanWave
	SerialBytes   int64
	ParallelWaves int     // schedule entries with ≥2 concurrent members
	ParallelFrac  float64 // modeled work inside parallel waves / total
	CritPathBytes int64   // Σ over steps of the largest member output
}

// PlanWave is one scheduling step: a set of mutually independent
// instructions (ascending program indices) and their modeled work.
type PlanWave struct {
	Members  []int
	Parallel bool  // members may execute concurrently
	WorkNs   int64 // modeled serial work summed over members
}

// PlannedBytes returns the byte-accurate arena footprint.
func (pl *Plan) PlannedBytes() int64 { return pl.ArenaBytes }

// BytesByDType reports each non-empty dtype arena's footprint in bytes,
// the per-dtype breakdown the bench harness records.
func (pl *Plan) BytesByDType() map[string]int64 {
	out := map[string]int64{}
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		if n := pl.ArenaElems[d]; n > 0 {
			out[d.String()] = int64(n) * int64(d.Size())
		}
	}
	return out
}

// String summarizes the plan for logs and the bench CLI.
func (pl *Plan) String() string {
	saved := 1 - float64(pl.ArenaBytes)/float64(pl.NaiveBytes)
	var parts []string
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		if n := pl.ArenaElems[d]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", d, int64(n)*int64(d.Size())))
		}
	}
	s := fmt.Sprintf("arena %d B [%s] (naive %d B, %.0f%% saved)",
		pl.ArenaBytes, strings.Join(parts, " "), pl.NaiveBytes, saved*100)
	if pl.ParallelWaves > 0 {
		s += fmt.Sprintf(" waves %d par %.0f%%", pl.ParallelWaves, pl.ParallelFrac*100)
	}
	return s
}

// interval is a buffer root's live range over schedule steps: defined
// at def (input buffer: -1), last read at use (output buffer:
// len(schedule)). elems is the widest member in elements; every member
// of a root shares one storage dtype.
type interval struct {
	def, use int
	elems    int
	dt       tensor.DType
}

// aliasCandidates returns the input buffers instr's output may share
// storage with, in preference order. Only strictly element-aligned
// writes qualify: the kernel must read in[i] (for every aliasable input)
// before writing out[i]. Conv/linear outputs may alias only the fused
// residual branch — their primary input is re-read across output sites.
func aliasCandidates(it *Instr) []int {
	switch it.Kind {
	case OpRescale, OpAdd:
		return it.In
	case OpConv, OpLinear:
		if it.FusedAdd {
			return it.In[len(it.In)-1:]
		}
	}
	return nil
}

// PlanBuffers liveness-analyzes the program for the given input shape
// and greedily packs buffers into the smallest per-dtype arenas under
// the default parallelism-aware configuration (see planBuffersAs).
// Storage dtypes come from the program's annotation (I64 everywhere
// when unannotated).
func (p *Program) PlanBuffers(inShape []int) (*Plan, error) {
	st, err := p.storage()
	if err != nil {
		return nil, err
	}
	cfg := DefaultPlanConfig()
	return p.planBuffersAs(inShape, st.dts, &cfg)
}

// PlanBuffersI64 plans with every buffer stored as I64 and a serial
// schedule, the layout non-typed kernel registries execute against and
// the baseline the typed-storage savings are measured from.
func (p *Program) PlanBuffersI64(inShape []int) (*Plan, error) {
	return p.planBuffersAs(inShape, nil, nil)
}

// planBuffersAs co-plans placement and schedule. The serial plan (every
// instruction its own step, exactly the pre-PR-7 layout) is computed
// first; with a non-nil cfg, candidate waves are then formed on the
// dependency graph and the program is re-packed with liveness over the
// wave schedule. If disjoint same-wave placement grows the arena past
// serial × (1 + ArenaGrowth), the cheapest wave (least modeled work) is
// demoted back to program-order singletons and placement reruns — the
// loop terminates at the serial plan, so the budget is always honored.
// Placement never changes values, only addresses: every schedule is a
// topological order and same-step outputs are disjoint by construction.
func (p *Program) planBuffersAs(inShape []int, dts []tensor.DType, cfg *PlanConfig) (*Plan, error) {
	shapes, err := p.InferShapes(inShape)
	if err != nil {
		return nil, err
	}
	dtypeOf := func(b int) tensor.DType {
		if dts == nil {
			return tensor.I64
		}
		return dts[b]
	}
	work := make([]int64, len(p.Instrs))
	var totalWork int64
	for i := range p.Instrs {
		work[i] = p.instrWorkNs(i, shapes)
		totalWork += work[i]
	}

	pl, err := p.packSchedule(shapes, dtypeOf, p.waveSchedule(work, nil))
	if err != nil {
		return nil, err
	}
	serialBytes := pl.ArenaBytes
	if cfg != nil {
		waves := p.candidateWaves(work, cfg)
		budget := serialBytes + int64(cfg.ArenaGrowth*float64(serialBytes))
		for len(waves) > 0 {
			wpl, err := p.packSchedule(shapes, dtypeOf, p.waveSchedule(work, waves))
			if err != nil {
				return nil, err
			}
			if wpl.ArenaBytes <= budget {
				pl = wpl
				break
			}
			// Over budget: demote the wave with the least modeled work —
			// it buys the least overlap per byte of placement cost.
			min := 0
			for i := range waves {
				if waves[i].WorkNs < waves[min].WorkNs {
					min = i
				}
			}
			waves = append(waves[:min], waves[min+1:]...)
		}
	}
	pl.SerialBytes = serialBytes
	var parWork int64
	for _, w := range pl.Schedule {
		if w.Parallel && len(w.Members) >= 2 {
			pl.ParallelWaves++
			parWork += w.WorkNs
		}
	}
	if totalWork > 0 {
		pl.ParallelFrac = float64(parWork) / float64(totalWork)
	}
	return pl, nil
}

// waveKind reports whether an op kind can carry wave membership: only
// the prepacked GEMM families bind states that run confined to one pool
// slot (waveRunner); grouping anything else would disable its in-place
// aliasing for no scheduling gain. Flatten in particular must never
// join a wave — its kernel is a no-op that relies on the alias.
func waveKind(k OpKind) bool {
	switch k {
	case OpConv, OpLinear, OpMatMul:
		return true
	}
	return false
}

// candidateWaves forms parallel wave candidates on the true dependency
// graph: walking program order, an unassigned GEMM instruction anchors
// a wave, and any later unassigned GEMM joins iff every one of its
// inputs is produced before the anchor. Members are therefore mutually
// independent (each non-anchor's inputs predate the anchor, and buffer
// IDs are SSA), so hoisting them to the anchor's step preserves every
// data dependency. Waves below cfg.MinWaveNs of modeled work are not
// worth a dispatch and are dropped.
func (p *Program) candidateWaves(work []int64, cfg *PlanConfig) []PlanWave {
	producer := p.producerOf()
	assigned := make([]bool, len(p.Instrs))
	var waves []PlanWave
	for i := range p.Instrs {
		if assigned[i] || !waveKind(p.Instrs[i].Kind) {
			continue
		}
		members := []int{i}
		w := work[i]
		for j := i + 1; j < len(p.Instrs); j++ {
			if assigned[j] || !waveKind(p.Instrs[j].Kind) {
				continue
			}
			free := true
			for _, b := range p.Instrs[j].In {
				if producer[b] >= i {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			members = append(members, j)
			w += work[j]
		}
		if len(members) < 2 || w < cfg.MinWaveNs {
			continue
		}
		for _, m := range members {
			assigned[m] = true
		}
		waves = append(waves, PlanWave{Members: members, Parallel: true, WorkNs: w})
	}
	return waves
}

// waveSchedule expands a set of parallel waves into a full schedule:
// walking program order, a wave is emitted at its anchor's position
// (members hoist up to the anchor), and every other instruction keeps
// its program-order position as a singleton step. With no waves the
// schedule is exactly program order, reproducing the serial plan.
func (p *Program) waveSchedule(work []int64, waves []PlanWave) []PlanWave {
	memberOf := make([]int, len(p.Instrs))
	for i := range memberOf {
		memberOf[i] = -1
	}
	for wi := range waves {
		for _, m := range waves[wi].Members {
			memberOf[m] = wi
		}
	}
	sched := make([]PlanWave, 0, len(p.Instrs))
	emitted := make([]bool, len(p.Instrs))
	for i := range p.Instrs {
		if emitted[i] {
			continue
		}
		if wi := memberOf[i]; wi >= 0 {
			for _, m := range waves[wi].Members {
				emitted[m] = true
			}
			sched = append(sched, waves[wi])
			continue
		}
		emitted[i] = true
		sched = append(sched, PlanWave{Members: []int{i}, WorkNs: work[i]})
	}
	return sched
}

// packSchedule liveness-analyzes the program over schedule steps and
// greedily packs buffers into the smallest per-dtype arenas: buffers
// are placed in decreasing size order at the lowest offset not
// overlapping any already-placed buffer of the same dtype with an
// intersecting live range. Flatten outputs alias their source, and
// elementwise outputs (rescale, residual add, fused-add epilogues) are
// written in place over a dying input of the same dtype — except for
// parallel-wave members, whose outputs must not overwrite storage
// another member may still be reading concurrently. Outputs of a
// parallel wave are defined at the same step, so the closed-interval
// overlap test forces them into disjoint regions.
func (p *Program) packSchedule(shapes [][]int, dtypeOf func(int) tensor.DType, sched []PlanWave) (*Plan, error) {
	stepOf := make([]int, len(p.Instrs))
	inPar := make([]bool, len(p.Instrs))
	for s := range sched {
		par := sched[s].Parallel && len(sched[s].Members) >= 2
		for _, m := range sched[s].Members {
			stepOf[m] = s
			inPar[m] = par
		}
	}
	// lastUse[b]: step of the last instruction reading buffer b
	// (len(sched) for the program output, -1 for never-read).
	lastUse := make([]int, p.NumBufs)
	for i := range lastUse {
		lastUse[i] = -1
	}
	for idx := range p.Instrs {
		for _, b := range p.Instrs[idx].In {
			if s := stepOf[idx]; s > lastUse[b] {
				lastUse[b] = s
			}
		}
	}
	lastUse[p.Output] = len(sched)

	// Storage roots, resolved in one schedule-ordered walk: flatten
	// aliases collapse onto their source, and elementwise outputs adopt
	// a dying input's root when the storage dtypes match (aliasing
	// across element widths would make byte offsets diverge per
	// element). rootUse tracks, per root, the last read over every
	// member merged so far — a candidate is dead after step s iff its
	// root's use is ≤ s.
	root := make([]int, p.NumBufs)
	for i := range root {
		root[i] = i
	}
	rootUse := make(map[int]int, p.NumBufs)
	rootUse[p.Input] = lastUse[p.Input]
	extend := func(r, use int) {
		if u, ok := rootUse[r]; !ok || use > u {
			rootUse[r] = use
		}
	}
	for s := range sched {
		for _, idx := range sched[s].Members {
			it := &p.Instrs[idx]
			out := it.Out
			if it.Kind == OpFlatten {
				if dtypeOf(out) != dtypeOf(it.In[0]) {
					return nil, fmt.Errorf("engine: flatten %s output dtype %s differs from input %s",
						it.Name, dtypeOf(out), dtypeOf(it.In[0]))
				}
				root[out] = root[it.In[0]]
				extend(root[out], lastUse[out])
				continue
			}
			// In-place placement belongs to the optimization layer
			// (unfused programs keep the PR-1 plan so baselines stay
			// comparable), and a parallel-wave member must keep its own
			// storage — overwriting a dying input in place could race
			// another member reading it at the same step.
			if p.OptLevel < OptFuse || inPar[idx] {
				extend(root[out], lastUse[out])
				continue
			}
			for _, c := range aliasCandidates(it) {
				rc := root[c]
				if rootUse[rc] > s {
					continue // still read after this step
				}
				if dtypeOf(c) != dtypeOf(out) {
					continue // different element widths cannot share bytes
				}
				if it.Kind == OpConv || it.Kind == OpLinear {
					// The candidate is the fused residual branch; the primary
					// operands are re-read across output sites and must never
					// share its storage.
					conflict := false
					for _, other := range it.In[:len(it.In)-1] {
						if root[other] == rc {
							conflict = true
							break
						}
					}
					if conflict {
						continue
					}
				}
				root[out] = rc
				break
			}
			extend(root[out], lastUse[out])
		}
	}

	// Liveness per root: min def, max use over all aliased buffers.
	iv := make(map[int]*interval)
	touch := func(buf, at int, isDef bool) {
		r := root[buf]
		e, ok := iv[r]
		if !ok {
			e = &interval{def: at, use: at, dt: dtypeOf(buf)}
			iv[r] = e
		}
		if isDef && at < e.def {
			e.def = at
		}
		if at > e.use {
			e.use = at
		}
		if n := tensor.Numel(shapes[buf]); n > e.elems {
			e.elems = n
		}
	}
	touch(p.Input, -1, true)
	for idx, it := range p.Instrs {
		for _, b := range it.In {
			touch(b, stepOf[idx], false)
		}
		touch(it.Out, stepOf[idx], true)
	}
	// The output buffer must survive past the last step so the caller
	// can read it after Execute returns.
	touch(p.Output, len(sched), false)

	// Greedy placement per dtype arena, largest first.
	roots := make([]int, 0, len(iv))
	var naive int64
	for r, e := range iv {
		roots = append(roots, r)
		naive += int64(e.elems) * int64(e.dt.Size())
	}
	sort.Slice(roots, func(a, b int) bool {
		if iv[roots[a]].elems != iv[roots[b]].elems {
			return iv[roots[a]].elems > iv[roots[b]].elems
		}
		return roots[a] < roots[b]
	})
	type placed struct{ off, elems, def, use int }
	placements := map[tensor.DType][]placed{}
	offsetOf := make(map[int]int, len(roots))
	pl := &Plan{Shapes: shapes, DTypes: make([]tensor.DType, p.NumBufs), Offsets: make([]int, p.NumBufs), NaiveBytes: naive}
	for _, r := range roots {
		e := iv[r]
		// Collect placed same-dtype buffers whose live ranges overlap.
		var busy []placed
		for _, q := range placements[e.dt] {
			if e.def <= q.use && q.def <= e.use {
				busy = append(busy, q)
			}
		}
		sort.Slice(busy, func(a, b int) bool { return busy[a].off < busy[b].off })
		off := 0
		for _, q := range busy {
			if off+e.elems <= q.off {
				break
			}
			if q.off+q.elems > off {
				off = q.off + q.elems
			}
		}
		offsetOf[r] = off
		placements[e.dt] = append(placements[e.dt], placed{off: off, elems: e.elems, def: e.def, use: e.use})
		if off+e.elems > pl.ArenaElems[e.dt] {
			pl.ArenaElems[e.dt] = off + e.elems
		}
	}
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		pl.ArenaBytes += int64(pl.ArenaElems[d]) * int64(d.Size())
	}
	for b := 0; b < p.NumBufs; b++ {
		if shapes[b] == nil {
			pl.Offsets[b] = -1
			continue
		}
		pl.DTypes[b] = dtypeOf(b)
		pl.Offsets[b] = offsetOf[root[b]]
	}
	pl.Schedule = sched
	for s := range sched {
		var widest int64
		for _, m := range sched[s].Members {
			out := p.Instrs[m].Out
			if b := int64(tensor.Numel(shapes[out])) * int64(dtypeOf(out).Size()); b > widest {
				widest = b
			}
		}
		pl.CritPathBytes += widest
	}
	return pl, nil
}
