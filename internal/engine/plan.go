package engine

import (
	"fmt"
	"sort"
	"strings"

	"torch2chip/internal/tensor"
)

// Plan is the static buffer placement for one input shape: every buffer
// maps to an element offset inside the arena of its storage dtype.
// Flatten outputs alias their input storage, and buffers whose live
// ranges do not overlap share arena space. Storage is packed at byte
// granularity — each dtype gets its own arena, so an I8 buffer costs one
// byte per element instead of the pre-typed engine's eight, and element
// alignment is automatic.
type Plan struct {
	Shapes  [][]int        // per-buffer inferred shape
	DTypes  []tensor.DType // per-buffer storage dtype
	Offsets []int          // per-buffer element offset in its dtype arena

	// ArenaElems is the planned per-dtype arena length in elements;
	// ArenaBytes/NaiveBytes are the planned and unplanned (interpreter
	// strategy: every buffer allocated separately) footprints in bytes.
	ArenaElems [tensor.NumDTypes]int
	ArenaBytes int64
	NaiveBytes int64
}

// PlannedBytes returns the byte-accurate arena footprint.
func (pl *Plan) PlannedBytes() int64 { return pl.ArenaBytes }

// BytesByDType reports each non-empty dtype arena's footprint in bytes,
// the per-dtype breakdown the bench harness records.
func (pl *Plan) BytesByDType() map[string]int64 {
	out := map[string]int64{}
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		if n := pl.ArenaElems[d]; n > 0 {
			out[d.String()] = int64(n) * int64(d.Size())
		}
	}
	return out
}

// String summarizes the plan for logs and the bench CLI.
func (pl *Plan) String() string {
	saved := 1 - float64(pl.ArenaBytes)/float64(pl.NaiveBytes)
	var parts []string
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		if n := pl.ArenaElems[d]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", d, int64(n)*int64(d.Size())))
		}
	}
	return fmt.Sprintf("arena %d B [%s] (naive %d B, %.0f%% saved)",
		pl.ArenaBytes, strings.Join(parts, " "), pl.NaiveBytes, saved*100)
}

// interval is a buffer root's live range over instruction indices:
// defined at def (input buffer: -1), last read at use (output buffer:
// len(instrs)). elems is the widest member in elements; every member of
// a root shares one storage dtype.
type interval struct {
	def, use int
	elems    int
	dt       tensor.DType
}

// aliasCandidates returns the input buffers instr's output may share
// storage with, in preference order. Only strictly element-aligned
// writes qualify: the kernel must read in[i] (for every aliasable input)
// before writing out[i]. Conv/linear outputs may alias only the fused
// residual branch — their primary input is re-read across output sites.
func aliasCandidates(it *Instr) []int {
	switch it.Kind {
	case OpRescale, OpAdd:
		return it.In
	case OpConv, OpLinear:
		if it.FusedAdd {
			return it.In[len(it.In)-1:]
		}
	}
	return nil
}

// PlanBuffers liveness-analyzes the program for the given input shape
// and greedily packs buffers into the smallest per-dtype arenas: buffers
// are placed in decreasing size order at the lowest offset not
// overlapping any already-placed buffer of the same dtype with an
// intersecting live range. Flatten outputs alias their source, and
// elementwise outputs (rescale, residual add, fused-add epilogues) are
// written in place over a dying input of the same dtype. Storage dtypes
// come from the program's annotation (I64 everywhere when unannotated).
func (p *Program) PlanBuffers(inShape []int) (*Plan, error) {
	st, err := p.storage()
	if err != nil {
		return nil, err
	}
	return p.planBuffersAs(inShape, st.dts)
}

// PlanBuffersI64 plans with every buffer stored as I64, the layout
// non-typed kernel registries execute against and the baseline the
// typed-storage savings are measured from.
func (p *Program) PlanBuffersI64(inShape []int) (*Plan, error) {
	return p.planBuffersAs(inShape, nil)
}

func (p *Program) planBuffersAs(inShape []int, dts []tensor.DType) (*Plan, error) {
	shapes, err := p.InferShapes(inShape)
	if err != nil {
		return nil, err
	}
	dtypeOf := func(b int) tensor.DType {
		if dts == nil {
			return tensor.I64
		}
		return dts[b]
	}
	// lastUse[b]: index of the last instruction reading buffer b
	// (len(instrs) for the program output, -1 for never-read).
	lastUse := make([]int, p.NumBufs)
	for i := range lastUse {
		lastUse[i] = -1
	}
	for idx := range p.Instrs {
		for _, b := range p.Instrs[idx].In {
			lastUse[b] = idx
		}
	}
	lastUse[p.Output] = len(p.Instrs)

	// Storage roots, resolved in one ordered walk: flatten aliases
	// collapse onto their source, and elementwise outputs adopt a dying
	// input's root when the storage dtypes match (aliasing across
	// element widths would make byte offsets diverge per element).
	// rootUse tracks, per root, the last read over every member merged
	// so far — a candidate is dead after idx iff its root's use is ≤ idx.
	root := make([]int, p.NumBufs)
	for i := range root {
		root[i] = i
	}
	rootUse := make(map[int]int, p.NumBufs)
	rootUse[p.Input] = lastUse[p.Input]
	extend := func(r, use int) {
		if u, ok := rootUse[r]; !ok || use > u {
			rootUse[r] = use
		}
	}
	for idx := range p.Instrs {
		it := &p.Instrs[idx]
		out := it.Out
		if it.Kind == OpFlatten {
			if dtypeOf(out) != dtypeOf(it.In[0]) {
				return nil, fmt.Errorf("engine: flatten %s output dtype %s differs from input %s",
					it.Name, dtypeOf(out), dtypeOf(it.In[0]))
			}
			root[out] = root[it.In[0]]
			extend(root[out], lastUse[out])
			continue
		}
		// In-place placement belongs to the optimization layer: unfused
		// programs keep the PR-1 plan so baselines stay comparable.
		if p.OptLevel < OptFuse {
			extend(root[out], lastUse[out])
			continue
		}
		for _, c := range aliasCandidates(it) {
			rc := root[c]
			if rootUse[rc] > idx {
				continue // still read after this instruction
			}
			if dtypeOf(c) != dtypeOf(out) {
				continue // different element widths cannot share bytes
			}
			if it.Kind == OpConv || it.Kind == OpLinear {
				// The candidate is the fused residual branch; the primary
				// operands are re-read across output sites and must never
				// share its storage.
				conflict := false
				for _, other := range it.In[:len(it.In)-1] {
					if root[other] == rc {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
			}
			root[out] = rc
			break
		}
		extend(root[out], lastUse[out])
	}

	// Liveness per root: min def, max use over all aliased buffers.
	iv := make(map[int]*interval)
	touch := func(buf, at int, isDef bool) {
		r := root[buf]
		e, ok := iv[r]
		if !ok {
			e = &interval{def: at, use: at, dt: dtypeOf(buf)}
			iv[r] = e
		}
		if isDef && at < e.def {
			e.def = at
		}
		if at > e.use {
			e.use = at
		}
		if n := tensor.Numel(shapes[buf]); n > e.elems {
			e.elems = n
		}
	}
	touch(p.Input, -1, true)
	for idx, it := range p.Instrs {
		for _, b := range it.In {
			touch(b, idx, false)
		}
		touch(it.Out, idx, true)
	}
	// The output buffer must survive past the last instruction so the
	// caller can read it after Execute returns.
	touch(p.Output, len(p.Instrs), false)

	// Greedy placement per dtype arena, largest first.
	roots := make([]int, 0, len(iv))
	var naive int64
	for r, e := range iv {
		roots = append(roots, r)
		naive += int64(e.elems) * int64(e.dt.Size())
	}
	sort.Slice(roots, func(a, b int) bool {
		if iv[roots[a]].elems != iv[roots[b]].elems {
			return iv[roots[a]].elems > iv[roots[b]].elems
		}
		return roots[a] < roots[b]
	})
	type placed struct{ off, elems, def, use int }
	placements := map[tensor.DType][]placed{}
	offsetOf := make(map[int]int, len(roots))
	pl := &Plan{Shapes: shapes, DTypes: make([]tensor.DType, p.NumBufs), Offsets: make([]int, p.NumBufs), NaiveBytes: naive}
	for _, r := range roots {
		e := iv[r]
		// Collect placed same-dtype buffers whose live ranges overlap.
		var busy []placed
		for _, q := range placements[e.dt] {
			if e.def <= q.use && q.def <= e.use {
				busy = append(busy, q)
			}
		}
		sort.Slice(busy, func(a, b int) bool { return busy[a].off < busy[b].off })
		off := 0
		for _, q := range busy {
			if off+e.elems <= q.off {
				break
			}
			if q.off+q.elems > off {
				off = q.off + q.elems
			}
		}
		offsetOf[r] = off
		placements[e.dt] = append(placements[e.dt], placed{off: off, elems: e.elems, def: e.def, use: e.use})
		if off+e.elems > pl.ArenaElems[e.dt] {
			pl.ArenaElems[e.dt] = off + e.elems
		}
	}
	for d := tensor.DType(0); d < tensor.NumDTypes; d++ {
		pl.ArenaBytes += int64(pl.ArenaElems[d]) * int64(d.Size())
	}
	for b := 0; b < p.NumBufs; b++ {
		if shapes[b] == nil {
			pl.Offsets[b] = -1
			continue
		}
		pl.DTypes[b] = dtypeOf(b)
		pl.Offsets[b] = offsetOf[root[b]]
	}
	return pl, nil
}
