package engine

// Request scheduling for the batched serving runtime: a priority queue
// that orders waiting requests earliest-deadline-first within priority
// classes (SchedEDF, the default) or strictly by arrival (SchedFIFO,
// the measured baseline), with shed-on-full victim selection so a full
// queue evicts its least urgent request instead of uniformly rejecting
// whatever arrives next. Ordering only changes *when* a request
// executes, never its values — bit-exactness is untouched.

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// PriorityClass ranks requests across classes: lower values are served
// first and shed last. The zero value is PriNormal, so callers that
// never mention priority get the historical behavior.
type PriorityClass int

const (
	// PriHigh requests are scheduled before all others and are the last
	// to be shed under overload.
	PriHigh PriorityClass = -1
	// PriNormal is the default class.
	PriNormal PriorityClass = 0
	// PriLow requests yield to every other class: they are scheduled
	// last, evicted first when a queue fills, and the serve layer's
	// admission gate sheds them while headroom for better classes
	// remains.
	PriLow PriorityClass = 1
)

// String implements fmt.Stringer ("high", "normal", "low").
func (c PriorityClass) String() string {
	switch {
	case c < PriNormal:
		return "high"
	case c > PriNormal:
		return "low"
	default:
		return "normal"
	}
}

// ParsePriority maps the wire-format class names to PriorityClass.
func ParsePriority(s string) (PriorityClass, error) {
	switch s {
	case "high":
		return PriHigh, nil
	case "", "normal":
		return PriNormal, nil
	case "low":
		return PriLow, nil
	}
	return PriNormal, fmt.Errorf("engine: unknown priority class %q (use high, normal, or low)", s)
}

// SchedPolicy selects how a server's request queue orders waiting work.
type SchedPolicy string

const (
	// SchedEDF orders the queue by (priority class, deadline, arrival):
	// higher classes first, earlier deadlines first within a class,
	// deadline-less requests after deadlined ones, FIFO as the final
	// tie-break. The batcher also closes batches deadline-driven.
	SchedEDF SchedPolicy = "edf"
	// SchedFIFO is the pre-cost-model baseline: strict arrival order
	// and fixed-timer batch formation.
	SchedFIFO SchedPolicy = "fifo"
)

// ParseSchedPolicy validates a policy name ("" resolves to SchedEDF).
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	switch SchedPolicy(s) {
	case "", SchedEDF:
		return SchedEDF, nil
	case SchedFIFO:
		return SchedFIFO, nil
	}
	return SchedEDF, fmt.Errorf("engine: unknown sched policy %q (use edf or fifo)", s)
}

// reqQueue is the server's bounded request priority queue. It replaces
// the former queue channel: a mutex-guarded heap whose ordering is the
// scheduling policy, a buffered notEmpty token the batcher waits on
// (sticky, so a signal sent while the batcher is busy is never lost),
// and a condition variable blocking producers that asked to wait for
// space.
type reqQueue struct {
	mu     sync.Mutex
	items  []request
	limit  int
	edf    bool
	closed bool
	seq    uint64

	notEmpty chan struct{}
	space    *sync.Cond
}

func newReqQueue(limit int, edf bool) *reqQueue {
	q := &reqQueue{limit: limit, edf: edf, notEmpty: make(chan struct{}, 1)}
	q.space = sync.NewCond(&q.mu)
	return q
}

// before reports whether a should execute ahead of b under the queue's
// policy. EDF compares class, then deadline (zero = no deadline = after
// any deadlined request), then arrival; FIFO compares arrival only.
func (q *reqQueue) before(a, b *request) bool {
	if q.edf {
		if a.class != b.class {
			return a.class < b.class
		}
		ad, bd := !a.deadline.IsZero(), !b.deadline.IsZero()
		if ad != bd {
			return ad
		}
		if ad && !a.deadline.Equal(b.deadline) {
			return a.deadline.Before(b.deadline)
		}
	}
	return a.seq < b.seq
}

// heap.Interface over items (min-heap under before).
func (q *reqQueue) Len() int           { return len(q.items) }
func (q *reqQueue) Less(i, j int) bool { return q.before(&q.items[i], &q.items[j]) }
func (q *reqQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *reqQueue) Push(x any)         { q.items = append(q.items, x.(request)) }
func (q *reqQueue) Pop() any {
	n := len(q.items)
	r := q.items[n-1]
	q.items[n-1] = request{} // release tensor/chan refs
	q.items = q.items[:n-1]
	return r
}

func (q *reqQueue) signal() {
	select {
	case q.notEmpty <- struct{}{}:
	default:
	}
}

// push enqueues r. When the queue is full: a blocking push waits for
// space; a non-blocking push runs victim selection — if some waiting
// request is strictly less urgent than r it is evicted (returned with
// evicted=true, the caller fails it with ErrQueueFull) and r takes its
// place, otherwise r itself is rejected with ErrQueueFull. Under FIFO
// every arrival has the largest sequence number, so the incoming
// request is always the victim — the historical shed behavior.
func (q *reqQueue) push(r request, block bool) (victim request, evicted bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return request{}, false, errServerClosed
		}
		if len(q.items) < q.limit {
			break
		}
		if !block {
			w := q.worstLocked()
			r.seq = q.seq // not yet assigned; ensure FIFO comparison sees it as newest
			if w < 0 || !q.before(&r, &q.items[w]) {
				return request{}, false, ErrQueueFull
			}
			victim = q.items[w]
			heap.Remove(q, w)
			q.assignAndPush(r)
			q.signal()
			return victim, true, nil
		}
		q.space.Wait()
	}
	q.assignAndPush(r)
	q.signal()
	return request{}, false, nil
}

func (q *reqQueue) assignAndPush(r request) {
	r.seq = q.seq
	q.seq++
	heap.Push(q, r)
}

// worstLocked finds the least urgent waiting request (max under before).
func (q *reqQueue) worstLocked() int {
	w := -1
	for i := range q.items {
		if w < 0 || q.before(&q.items[w], &q.items[i]) {
			w = i
		}
	}
	return w
}

// Pop-status results of tryPop.
const (
	popOK = iota
	popEmpty
	popRejected
)

// tryPop removes and returns the most urgent request. A non-nil accept
// predicate can veto it (popRejected) — the batcher's cost-aware close
// — in which case the request stays queued at its position.
func (q *reqQueue) tryPop(accept func(request) bool) (request, int) {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return request{}, popEmpty
	}
	if accept != nil && !accept(q.items[0]) {
		q.mu.Unlock()
		return request{}, popRejected
	}
	r := heap.Pop(q).(request)
	q.space.Signal()
	q.mu.Unlock()
	return r, popOK
}

// waitPop blocks until a request is available (returning it) or the
// queue is closed and drained (ok=false).
func (q *reqQueue) waitPop() (request, bool) {
	for {
		r, st := q.tryPop(nil)
		if st == popOK {
			return r, true
		}
		if q.closedAndEmpty() {
			return request{}, false
		}
		<-q.notEmpty
	}
}

func (q *reqQueue) closedAndEmpty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed && len(q.items) == 0
}

func (q *reqQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close marks the queue closed and wakes everyone: blocked producers
// fail, the batcher drains what remains and exits.
func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.space.Broadcast()
	q.signal()
}

// earliestDeadline returns the earliest non-zero deadline in batch, and
// extra when it is earlier still (extra is the candidate the batcher is
// deciding whether to admit; pass zero time to ignore). Zero means no
// member carries a deadline.
func earliestDeadline(batch []request, extra time.Time) time.Time {
	ed := extra
	for i := range batch {
		d := batch[i].deadline
		if d.IsZero() {
			continue
		}
		if ed.IsZero() || d.Before(ed) {
			ed = d
		}
	}
	return ed
}
