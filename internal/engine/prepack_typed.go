package engine

// Narrow-precision prepacked kernels: activations stay in their storage
// dtype end to end (int8/uint8 block codes, int16/uint16 residual-fine
// and logit codes), int8-valued weights are packed into int32 panels at
// bind time, and the GEMM microkernel accumulates in int32 — legal whenever K·|a|max·|w|max
// fits int32, which Program.storage() proves per instruction before the
// executor binds this path. The epilogue widens each finished
// accumulator to int64 exactly once, applies the zero-point row-sum
// correction and the shared Requantize/fused-epilogue funnel, and
// narrows the result into the output buffer. Integer addition at any
// width is exact below overflow, so every code is bit-identical to the
// I64 reference kernels and the IntModel interpreter.

import (
	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// packPanels32 is packPanels producing int32 panels: a [o, k] row-major
// int64 weight matrix (every value proven to fit int8) blocked into
// [panel][k][panelW] int32 words — int8-valued, widened once at pack
// time so the GEMM multiplies without per-element sign extension.
func packPanels32(w []int64, o, k int) []int32 {
	np := (o + panelW - 1) / panelW
	out := make([]int32, np*k*panelW)
	for pb := 0; pb < np; pb++ {
		for j := 0; j < k; j++ {
			for r := 0; r < panelW; r++ {
				oc := pb*panelW + r
				if oc < o {
					out[(pb*k+j)*panelW+r] = int32(w[oc*k+j])
				}
			}
		}
	}
	return out
}

// packRows32 packs a row-major [o, k] int64 weight matrix into a flat
// int32 slab (the grouped/depthwise kernel walks whole rows).
func packRows32(w []int64) []int32 {
	out := make([]int32, len(w))
	for i, v := range w {
		out[i] = int32(v)
	}
	return out
}

// typedData returns a tensor's concrete storage slice; the caller's
// dispatch guarantees A matches the storage dtype.
func typedData[A tensor.Elem](t *tensor.IntTensor) []A {
	var v any
	switch t.DType {
	case tensor.I8:
		v = t.I8
	case tensor.U8:
		v = t.U8
	case tensor.I16:
		v = t.I16
	case tensor.U16:
		v = t.U16
	case tensor.I32:
		v = t.I32
	default:
		v = t.Data
	}
	return v.([]A)
}

// finishInto widens one int32 accumulator (already zero-point corrected
// by the caller) through the shared requantize + fused-epilogue funnel
// into an int64 staging chunk; add is chunk-aligned with dst.
func (e *epi) finishInto(dst, add []int64, i int, acc int64, oc int) {
	q := intmath.Requantize(acc, e.sfx[oc], e.bfx[oc], e.half, e.frac, e.zero, e.lo, e.hi)
	dst[i] = e.fc.finish(q, add, i)
}

// finishSeg finishes one channel's int32 accumulator row — subtract the
// row-sum correction, requantize, fused epilogue — storing straight into
// the typed output segment (no int64 staging pass). bv is the widened
// fused-branch chunk aligned with dst; it is fully read before dst is
// written, which preserves the planner's same-dtype aliasing contract.
func finishSeg[O tensor.Elem](dst []O, accRow []int32, bv []int64, e *epi, corr int64, oc int) {
	sfx, bfx := e.sfx[oc], e.bfx[oc]
	if e.fc.active() {
		for i, a := range accRow {
			q := intmath.Requantize(int64(a)-corr, sfx, bfx, e.half, e.frac, e.zero, e.lo, e.hi)
			dst[i] = O(e.fc.finish(q, bv, i))
		}
		return
	}
	for i, a := range accRow {
		dst[i] = O(intmath.Requantize(int64(a)-corr, sfx, bfx, e.half, e.frac, e.zero, e.lo, e.hi))
	}
}

// finishSegOut dispatches finishSeg on the output storage dtype (one
// switch per channel segment, monomorphized element loops).
func finishSegOut(out *tensor.IntTensor, off int, accRow []int32, bv []int64, e *epi, corr int64, oc int) {
	m := len(accRow)
	switch out.DType {
	case tensor.I8:
		finishSeg(out.I8[off:off+m], accRow, bv, e, corr, oc)
	case tensor.U8:
		finishSeg(out.U8[off:off+m], accRow, bv, e, corr, oc)
	case tensor.I16:
		finishSeg(out.I16[off:off+m], accRow, bv, e, corr, oc)
	case tensor.U16:
		finishSeg(out.U16[off:off+m], accRow, bv, e, corr, oc)
	case tensor.I32:
		finishSeg(out.I32[off:off+m], accRow, bv, e, corr, oc)
	default:
		finishSeg(out.Data[off:off+m], accRow, bv, e, corr, oc)
	}
}

// convPackT is the bound state of a dense typed convolution. At most
// one of skip/nm is set (sparsity-aware registries only): skip routes
// the GEMM through the pair-granular live-list kernel, nm through the
// N:M-packed kernel — both bit-identical to the dense panel loop
// because skipped positions hold exactly-zero weights.
type convPackT struct {
	n, c, h, w       int
	o, colW, spatial int
	tm, tiles, np    int
	sampleElems      int
	ad               tensor.DType
	idx              []int32
	wp32             []int32
	skip             *panelSkip
	nm               *nmPack
	zsum             []int64
	epi              epi
	parallel         bool
}

// gconvPackT is the bound state of a grouped/depthwise typed conv.
type gconvPackT struct {
	n, c, h, w             int
	o, og, cg, kH, kW      int
	oh, ow, stride, pad    int
	oyLo, oyHi, oxLo, oxHi int
	ad                     tensor.DType
	off                    []int32
	w32                    []int32 // row-major [o][cg·kH·kW], int8-valued
	zsum                   []int64
	epi                    epi
	parallel               bool
}

// linPackT is the bound state of a typed linear layer (row-tiled; each
// job owns a slot-local [tm, o] accumulator tile, the same contract as
// the SWAR linear, so the state is wave-capable).
type linPackT struct {
	rows, k, o, np int
	tm, tiles      int
	ad             tensor.DType
	wp32           []int32
	skip           *panelSkip
	nm             *nmPack
	zsum           []int64
	epi            epi
	parallel       bool
}

// prepConvTyped binds a conv instruction onto the narrow path.
func prepConvTyped(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	ad := ex.plan.DTypes[it.In[0]]
	pp := it.P
	if pp.Stride <= 0 {
		pp.Stride = 1
	}
	if pp.Groups <= 0 {
		pp.Groups = 1
	}
	n, c, h, w := in[0], in[1], in[2], in[3]
	o, cg, kH, kW := it.W.Shape[0], it.W.Shape[1], it.W.Shape[2], it.W.Shape[3]
	oh, ow := pp.ConvOutSize(h, kH), pp.ConvOutSize(w, kW)
	if pp.Groups > 1 {
		sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, typed: true, fp: weightFP(it.W)}, func() *sharedPack {
			return &sharedPack{
				wp32: packRows32(it.W.Data),
				zsum: rowSumsScaled(it.W.Data, o, cg*kH*kW, it.InZero),
				epi:  newEpi(it, o),
			}
		})
		st := &gconvPackT{
			n: n, c: c, h: h, w: w,
			o: o, og: o / pp.Groups, cg: cg, kH: kH, kW: kW,
			oh: oh, ow: ow, stride: pp.Stride, pad: pp.Padding,
			ad:   ad,
			w32:  sh.wp32,
			zsum: sh.zsum,
			epi:  sh.epi,
		}
		st.oyLo, st.oyHi = interiorRange(oh, h, kH, pp.Stride, pp.Padding)
		st.oxLo, st.oxHi = interiorRange(ow, w, kW, pp.Stride, pp.Padding)
		st.off = make([]int32, cg*kH*kW)
		t := 0
		for ch := 0; ch < cg; ch++ {
			for ky := 0; ky < kH; ky++ {
				for kx := 0; kx < kW; kx++ {
					st.off[t] = int32(ch*h*w + ky*w + kx)
					t++
				}
			}
		}
		st.parallel = n*o*oh*ow*cg*kH*kW >= 1<<15
		// Staging: the widened fused branch in the int64 slot, and the
		// widened input group slab plus the raw accumulator plane in the
		// int32 slot.
		ex.NeedSlotScratch(oh * ow)
		ex.NeedSlotTyped(tensor.I32, cg*h*w+oh*ow)
		return st, nil
	}
	colW := c * kH * kW
	sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, typed: true, fp: weightFP(it.W)}, func() *sharedPack {
		return &sharedPack{
			wp32: packPanels32(it.W.Data, o, colW),
			zsum: rowSumsScaled(it.W.Data, o, colW, it.InZero),
			epi:  newEpi(it, o),
		}
	})
	st := &convPackT{
		n: n, c: c, h: h, w: w,
		o: o, colW: colW, spatial: oh * ow,
		sampleElems: c * h * w,
		ad:          ad,
		idx:         ex.prog.packs().indexMap(convKey{c: c, h: h, w: w, kH: kH, kW: kW, stride: pp.Stride, pad: pp.Padding}),
		wp32:        sh.wp32,
		zsum:        sh.zsum,
		epi:         sh.epi,
	}
	st.tm = splitTileM(tileSites(colW, st.spatial), st.spatial, n, ex.kernelWorkers())
	st.tiles = (st.spatial + st.tm - 1) / st.tm
	st.np = (o + panelW - 1) / panelW
	if sp := ex.sparseInstr(idx); sp != nil {
		switch ex.sparsePickFor(idx) {
		case pickCSR:
			st.skip = sp.skip
		case pickNM:
			st.nm = sp.nm
		}
	}
	st.parallel = n*st.spatial*colW*o >= 1<<16
	// Staging: widened fused-branch chunk in the int64 slot; the gather
	// panel widens any input dtype into the int32 slot, so the GEMM is
	// one non-generic int32 loop.
	ex.NeedSlotScratch(st.tm)
	ex.NeedSlotTyped(tensor.I32, st.tm*colW)
	ex.NeedAccTile(st.tm * st.o)
	return st, nil
}

// prepLinearTyped binds a linear instruction onto the narrow path
// (rank > 2 inputs run as row-major [rows, K]).
func prepLinearTyped(ex *Executor, idx int, it *Instr) (any, error) {
	in := ex.plan.Shapes[it.In[0]]
	k := in[len(in)-1]
	rows := tensor.Numel(in) / k
	o := it.W.Shape[0]
	sh := ex.prog.packs().sharedFor(sharedKey{idx: idx, typed: true, fp: weightFP(it.W)}, func() *sharedPack {
		return &sharedPack{
			wp32: packPanels32(it.W.Data, o, k),
			zsum: rowSumsScaled(it.W.Data, o, k, it.InZero),
			epi:  newEpi(it, o),
		}
	})
	st := &linPackT{
		rows: rows, k: k, o: o,
		np:   (o + panelW - 1) / panelW,
		ad:   ex.plan.DTypes[it.In[0]],
		wp32: sh.wp32,
		zsum: sh.zsum,
		epi:  sh.epi,
	}
	st.tm = splitTileM(tileRowsTyped(o, rows), rows, 1, ex.kernelWorkers())
	st.tiles = (rows + st.tm - 1) / st.tm
	if sp := ex.sparseInstr(idx); sp != nil {
		switch ex.sparsePickFor(idx) {
		case pickCSR:
			st.skip = sp.skip
		case pickNM:
			st.nm = sp.nm
		}
	}
	st.parallel = rows*k*o >= 1<<16
	// Staging: per-row int64 requantize chunk + fused-add chunk in the
	// slot's scratch; the row-major accumulator tile.
	ex.NeedSlotScratch(2 * o)
	ex.NeedAccTile(st.tm * st.o)
	return st, nil
}

// tileRowsTyped picks the typed linear's row tile: target a 32 KiB
// int32 accumulator tile per slot (L1-resident alongside the weight
// panel), clamped to the row count.
func tileRowsTyped(o, rows int) int {
	tm := 8192 / o
	if tm < 4 {
		tm = 4
	}
	if tm > 64 {
		tm = 64
	}
	if tm > rows {
		tm = rows
	}
	return tm
}

// runConvTyped dispatches the dense typed conv on the input dtype; the
// generic arms monomorphize only the gather — the GEMM runs one
// non-generic int32 loop over the widened panel.
func runConvTyped(ex *Executor, st *convPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	switch st.ad {
	case tensor.I8:
		runConvTypedA[int8](ex, st, it, in, out)
	case tensor.U8:
		runConvTypedA[uint8](ex, st, it, in, out)
	case tensor.I16:
		runConvTypedA[int16](ex, st, it, in, out)
	case tensor.U16:
		runConvTypedA[uint16](ex, st, it, in, out)
	case tensor.I32:
		runConvTypedA[int32](ex, st, it, in, out)
	default:
		runConvTypedA[int64](ex, st, it, in, out)
	}
}

// runConvTypedA: per (sample, site-tile) job, gather the tile's im2col
// panel — widening the storage dtype to int32 — through the cached index
// map, run the register-blocked int32 GEMM into the slot's channel-major
// accumulator tile, then finish channel by channel — widen to int64,
// row-sum correct, requantize, fused epilogue — through an int64 staging
// chunk narrowed into the NCHW output planes.
func runConvTypedA[A tensor.Elem](ex *Executor, st *convPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	tensor.ParallelForSlotsN(st.n*st.tiles, ex.maxPar, st.parallel, convTypedJob[A](ex, st, it, in, out))
}

// convTypedJob builds the per-(sample, site-tile) job body shared by
// the parallel loop and the serial wave fallback.
func convTypedJob[A tensor.Elem](ex *Executor, st *convPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) func(job, slot int) {
	xs := typedData[A](in[0])
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	colW, o := st.colW, st.o
	return func(job, slot int) {
		ni, t := job/st.tiles, job%st.tiles
		s0 := t * st.tm
		m := st.tm
		if s0+m > st.spatial {
			m = st.spatial - s0
		}
		panel := ex.slotI32[slot][:m*colW]
		sample := xs[ni*st.sampleElems : (ni+1)*st.sampleElems]
		gatherPanel32(panel, sample, st.idx[s0*colW:(s0+m)*colW], colW, m)
		// Accumulator tile is channel-major [o][m]: the GEMM scatters four
		// writes per site pair, and the epilogue walks each channel's
		// accumulators contiguously.
		acc := ex.AccTile(slot)
		switch {
		case st.nm != nil:
			gemmPanelsNM(acc, panel, st.nm, m, colW, o)
		case st.skip != nil:
			gemmPanels32CSR(acc, panel, st.skip, m, colW, o)
		default:
			gemmPanels32(acc, panel, st.wp32, m, colW, o, st.np)
		}
		// Epilogue: one contiguous output segment per channel, finished
		// straight from the accumulator row into the typed output.
		addw := ex.SlotScratch(slot)[:st.tm]
		outBase := ni * o * st.spatial
		for oc := 0; oc < o; oc++ {
			off := outBase + oc*st.spatial + s0
			var bv []int64
			if add != nil {
				bv = addw[:m]
				add.ReadInt64(bv, off)
			}
			finishSegOut(out, off, acc[oc*m:(oc+1)*m], bv, &st.epi, st.zsum[oc], oc)
		}
	}
}

// jobs exposes the conv as its (sample × site-tile) grid for wave
// execution (waveRunner).
func (st *convPackT) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	var body func(job, slot int)
	switch st.ad {
	case tensor.I8:
		body = convTypedJob[int8](ex, st, it, in, out)
	case tensor.U8:
		body = convTypedJob[uint8](ex, st, it, in, out)
	case tensor.I16:
		body = convTypedJob[int16](ex, st, it, in, out)
	case tensor.U16:
		body = convTypedJob[uint16](ex, st, it, in, out)
	case tensor.I32:
		body = convTypedJob[int32](ex, st, it, in, out)
	default:
		body = convTypedJob[int64](ex, st, it, in, out)
	}
	return body, st.n * st.tiles
}

// gemmPanels32 is the non-generic register-blocked int32 microkernel:
// C[site, oc] = Σ_j panel[site, j] · w[oc, j] over packed panelW-wide
// weight panels, two sites per step, written channel-major into acc.
func gemmPanels32(acc, panel, wp32 []int32, m, colW, o, np int) {
	for pb := 0; pb < np; pb++ {
		wp := wp32[pb*colW*panelW : (pb+1)*colW*panelW]
		oc0 := pb * panelW
		nch := o - oc0
		if nch > panelW {
			nch = panelW
		}
		i := 0
		for ; i+2 <= m; i += 2 {
			a0 := panel[i*colW : (i+1)*colW]
			a1 := panel[(i+1)*colW : (i+2)*colW]
			var c00, c01, c02, c03, c10, c11, c12, c13 int32
			for j := 0; j < colW; j++ {
				wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
				av0, av1 := a0[j], a1[j]
				w0, w1, w2, w3 := wj[0], wj[1], wj[2], wj[3]
				c00 += av0 * w0
				c01 += av0 * w1
				c02 += av0 * w2
				c03 += av0 * w3
				c10 += av1 * w0
				c11 += av1 * w1
				c12 += av1 * w2
				c13 += av1 * w3
			}
			storeAccCol(acc, oc0*m+i, m, nch, c00, c01, c02, c03)
			storeAccCol(acc, oc0*m+i+1, m, nch, c10, c11, c12, c13)
		}
		if i < m {
			a0 := panel[i*colW : (i+1)*colW]
			var c0, c1, c2, c3 int32
			for j := 0; j < colW; j++ {
				wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
				av := a0[j]
				c0 += av * wj[0]
				c1 += av * wj[1]
				c2 += av * wj[2]
				c3 += av * wj[3]
			}
			storeAccCol(acc, oc0*m+i, m, nch, c0, c1, c2, c3)
		}
	}
}

// storeAccCol writes up to panelW accumulators of one site into the
// channel-major tile (stride = sites in the tile).
func storeAccCol(acc []int32, base, stride, nch int, c0, c1, c2, c3 int32) {
	cs := [panelW]int32{c0, c1, c2, c3}
	for r := 0; r < nch; r++ {
		acc[base+r*stride] = cs[r]
	}
}

// storeAccRow writes up to panelW accumulators into a row-major tile row
// (the linear kernel's [rows, o] layout).
func storeAccRow(acc []int32, base, nch int, c0, c1, c2, c3 int32) {
	cs := [panelW]int32{c0, c1, c2, c3}
	for r := 0; r < nch; r++ {
		acc[base+r] = cs[r]
	}
}

// gatherPanel32 fills a [m, colW] int32 im2col panel from one sample's
// typed codes via the index map, widening at the gather (raw values;
// padded taps contribute 0 — the zero point is folded into the
// epilogue's row-sum correction).
func gatherPanel32[A tensor.Elem](panel []int32, xs []A, idx []int32, colW, m int) {
	for i := 0; i < m; i++ {
		row := panel[i*colW : (i+1)*colW]
		irow := idx[i*colW : (i+1)*colW]
		for j, id := range irow {
			if id >= 0 {
				row[j] = int32(xs[id])
			} else {
				row[j] = 0
			}
		}
	}
}

// runConvGroupedTyped dispatches the grouped typed conv on input dtype.
func runConvGroupedTyped(ex *Executor, st *gconvPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	switch st.ad {
	case tensor.I8:
		runConvGroupedTypedA[int8](ex, st, it, in, out)
	case tensor.U8:
		runConvGroupedTypedA[uint8](ex, st, it, in, out)
	case tensor.I16:
		runConvGroupedTypedA[int16](ex, st, it, in, out)
	case tensor.U16:
		runConvGroupedTypedA[uint16](ex, st, it, in, out)
	case tensor.I32:
		runConvGroupedTypedA[int32](ex, st, it, in, out)
	default:
		runConvGroupedTypedA[int64](ex, st, it, in, out)
	}
}

// runConvGroupedTypedA: one job per (sample, output channel) plane. The
// group's input slab is widened once into the slot's int32 scratch —
// the conv re-reads each input element kH·kW times, so the single
// widening pass is amortized and keeps the tap loops non-generic. The
// interior runs the precomputed tap-offset loop with two-site register
// blocking and no bounds checks, int32 accumulation against the
// int8-valued weight slab, and the whole plane is finished through an
// int64 staging buffer narrowed into the output.
func runConvGroupedTypedA[A tensor.Elem](ex *Executor, st *gconvPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	tensor.ParallelForSlotsN(st.n*st.o, ex.maxPar, st.parallel, gconvTypedJob[A](ex, st, it, in, out))
}

// gconvTypedJob builds the per-(sample, channel-plane) job body shared
// by the parallel loop and the serial wave fallback.
func gconvTypedJob[A tensor.Elem](ex *Executor, st *gconvPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) func(job, slot int) {
	xs := typedData[A](in[0])
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	nt := len(st.off)
	ohw := st.oh * st.ow
	slab := st.cg * st.h * st.w
	return func(job, slot int) {
		ni, oc := job/st.o, job%st.o
		g := oc / st.og
		wv := st.w32[oc*nt : (oc+1)*nt]
		xBase := (ni*st.c + g*st.cg) * st.h * st.w
		base := (ni*st.o + oc) * ohw
		xw := ex.slotI32[slot][:slab]
		for i, v := range xs[xBase : xBase+slab] {
			xw[i] = int32(v)
		}
		// Raw accumulators land in an int32 plane; the epilogue finishes
		// the whole plane into the typed output in one monomorphized pass.
		acc := ex.slotI32[slot][slab : slab+ohw]
		for oy := 0; oy < st.oh; oy++ {
			rowOff := oy * st.ow
			interiorRow := oy >= st.oyLo && oy < st.oyHi
			oxLo, oxHi := st.oxLo, st.oxHi
			if !interiorRow {
				oxLo, oxHi = 0, 0
			}
			for ox := 0; ox < oxLo; ox++ {
				acc[rowOff+ox] = st.borderAcc32(xw, wv, oy, ox)
			}
			if interiorRow {
				rowBase := (oy*st.stride-st.pad)*st.w - st.pad
				ox := oxLo
				for ; ox+2 <= oxHi; ox += 2 {
					b0 := rowBase + ox*st.stride
					b1 := b0 + st.stride
					var s0, s1 int32
					for t := 0; t < nt; t++ {
						o := int(st.off[t])
						wt := wv[t]
						s0 += xw[b0+o] * wt
						s1 += xw[b1+o] * wt
					}
					acc[rowOff+ox] = s0
					acc[rowOff+ox+1] = s1
				}
				for ; ox < oxHi; ox++ {
					b0 := rowBase + ox*st.stride
					var s int32
					for t := 0; t < nt; t++ {
						s += xw[b0+int(st.off[t])] * wv[t]
					}
					acc[rowOff+ox] = s
				}
			}
			for ox := oxHi; ox < st.ow; ox++ {
				acc[rowOff+ox] = st.borderAcc32(xw, wv, oy, ox)
			}
		}
		var bv []int64
		if add != nil {
			bv = ex.SlotScratch(slot)[:ohw]
			add.ReadInt64(bv, base)
		}
		finishSegOut(out, base, acc, bv, &st.epi, st.zsum[oc], oc)
	}
}

// jobs exposes the grouped conv as its (sample × channel-plane) grid
// for wave execution (waveRunner).
func (st *gconvPackT) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	var body func(job, slot int)
	switch st.ad {
	case tensor.I8:
		body = gconvTypedJob[int8](ex, st, it, in, out)
	case tensor.U8:
		body = gconvTypedJob[uint8](ex, st, it, in, out)
	case tensor.I16:
		body = gconvTypedJob[int16](ex, st, it, in, out)
	case tensor.U16:
		body = gconvTypedJob[uint16](ex, st, it, in, out)
	case tensor.I32:
		body = gconvTypedJob[int32](ex, st, it, in, out)
	default:
		body = gconvTypedJob[int64](ex, st, it, in, out)
	}
	return body, st.n * st.o
}

// borderAcc32 accumulates one output site with per-tap bounds checks
// over the widened group slab (raw codes; out-of-bounds taps
// contribute 0).
func (st *gconvPackT) borderAcc32(xw []int32, wv []int32, oy, ox int) int32 {
	var s int32
	for ch := 0; ch < st.cg; ch++ {
		xb := ch * st.h * st.w
		for ky := 0; ky < st.kH; ky++ {
			iy := oy*st.stride - st.pad + ky
			if iy < 0 || iy >= st.h {
				continue
			}
			row := xw[xb+iy*st.w : xb+(iy+1)*st.w]
			wRow := wv[(ch*st.kH+ky)*st.kW : (ch*st.kH+ky+1)*st.kW]
			for kx := 0; kx < st.kW; kx++ {
				ix := ox*st.stride - st.pad + kx
				if ix >= 0 && ix < st.w {
					s += row[ix] * wRow[kx]
				}
			}
		}
	}
	return s
}

// runLinearTyped dispatches the typed linear on input dtype.
func runLinearTyped(ex *Executor, st *linPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	switch st.ad {
	case tensor.I8:
		runLinearTypedA[int8](ex, st, it, in, out)
	case tensor.U8:
		runLinearTypedA[uint8](ex, st, it, in, out)
	case tensor.I16:
		runLinearTypedA[int16](ex, st, it, in, out)
	case tensor.U16:
		runLinearTypedA[uint16](ex, st, it, in, out)
	case tensor.I32:
		runLinearTypedA[int32](ex, st, it, in, out)
	default:
		runLinearTypedA[int64](ex, st, it, in, out)
	}
}

// runLinearTypedA runs the int8-panel GEMM over row tiles — each job
// fills a slot-local row-major [m, o] int32 tile, then finishes row by
// row (widen, correct, requantize, fused epilogue) through the slot's
// int64 staging chunk into the output.
func runLinearTypedA[A tensor.Elem](ex *Executor, st *linPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	tensor.ParallelForSlotsN(st.tiles, ex.maxPar, st.parallel, linTypedJob[A](ex, st, it, in, out))
}

// linTypedJob builds the per-row-tile job body shared by the parallel
// loop and wave execution. Each output element's accumulation order
// over k (and its epilogue) is unchanged from the untiled layout, so
// tiling never affects values.
func linTypedJob[A tensor.Elem](ex *Executor, st *linPackT, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) func(t, slot int) {
	xs := typedData[A](in[0])
	var add *tensor.IntTensor
	if it.FusedAdd {
		add = in[len(in)-1]
	}
	k, o := st.k, st.o
	return func(t, slot int) {
		r0 := t * st.tm
		m := st.tm
		if r0+m > st.rows {
			m = st.rows - r0
		}
		acc := ex.AccTile(slot)[:m*o]
		switch {
		case st.nm != nil:
			linPanelsNM(acc, xs, st.nm, r0, m, k, o)
		case st.skip != nil:
			linPanelsCSR(acc, xs, st.skip, r0, m, k, o)
		default:
			for pb := 0; pb < st.np; pb++ {
				wp := st.wp32[pb*k*panelW : (pb+1)*k*panelW]
				oc0 := pb * panelW
				nch := o - oc0
				if nch > panelW {
					nch = panelW
				}
				for i := 0; i < m; i++ {
					a0 := xs[(r0+i)*k : (r0+i+1)*k]
					var c0, c1, c2, c3 int32
					for j := 0; j < k; j++ {
						wj := wp[j*panelW : j*panelW+panelW : j*panelW+panelW]
						av := int32(a0[j])
						c0 += av * wj[0]
						c1 += av * wj[1]
						c2 += av * wj[2]
						c3 += av * wj[3]
					}
					storeAccRow(acc, i*o+oc0, nch, c0, c1, c2, c3)
				}
			}
		}
		sc := ex.SlotScratch(slot)
		av, bv := sc[:o], sc[o:2*o]
		for i := 0; i < m; i++ {
			row := acc[i*o : (i+1)*o]
			var bvv []int64
			if add != nil {
				bvv = bv[:o]
				add.ReadInt64(bvv, (r0+i)*o)
			}
			for oc, a := range row {
				st.epi.finishInto(av, bvv, oc, int64(a)-st.zsum[oc], oc)
			}
			out.WriteInt64(av[:o], (r0+i)*o)
		}
	}
}

// jobs exposes the linear as its row-tile grid for wave execution
// (waveRunner).
func (st *linPackT) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	var body func(job, slot int)
	switch st.ad {
	case tensor.I8:
		body = linTypedJob[int8](ex, st, it, in, out)
	case tensor.U8:
		body = linTypedJob[uint8](ex, st, it, in, out)
	case tensor.I16:
		body = linTypedJob[int16](ex, st, it, in, out)
	case tensor.U16:
		body = linTypedJob[uint16](ex, st, it, in, out)
	case tensor.I32:
		body = linTypedJob[int32](ex, st, it, in, out)
	default:
		body = linTypedJob[int64](ex, st, it, in, out)
	}
	return body, st.tiles
}
