package engine

import (
	"fmt"

	"torch2chip/internal/export"
	"torch2chip/internal/intmath"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// ProgramSpecVersion is the serialized graph IR version this package
// writes. Version 2 adds the optimization level and fused-epilogue
// instruction fields; version 3 adds per-buffer storage dtypes.
// Version-1/2 checkpoints still load — with I64 storage everywhere, the
// exact pre-typed behaviour (re-exporting with t2c upgrades them).
const ProgramSpecVersion = 3

// minProgramSpecVersion is the oldest spec this package accepts.
const minProgramSpecVersion = 1

// Spec lowers the program to the plain-data checkpoint representation.
// Instruction weights are referenced by the names WeightTensors uses;
// callers must store those tensors in the same checkpoint.
func (p *Program) Spec() *export.ProgramSpec {
	spec := &export.ProgramSpec{
		Version:  ProgramSpecVersion,
		OptLevel: int(p.OptLevel),
		InShape:  append([]int(nil), p.InShape...),
		InQuant: export.QuantSpec{
			NBits:  p.InQuant.NBits,
			Signed: p.InQuant.Signed,
			Scale:  append([]float32(nil), p.InQuant.Scale...),
			Zero:   append([]int64(nil), p.InQuant.Zero...),
		},
		OutScale: p.OutScale,
		OutZero:  p.OutZero,
		NumBufs:  p.NumBufs,
		Input:    p.Input,
		Output:   p.Output,
	}
	for _, dt := range p.BufDTypes {
		spec.BufDTypes = append(spec.BufDTypes, dt.String())
	}
	for i := range p.Instrs {
		it := &p.Instrs[i]
		is := export.InstrSpec{
			Kind: string(it.Kind), Name: it.Name,
			In: append([]int(nil), it.In...), Out: it.Out,
		}
		switch it.Kind {
		case OpConv:
			is.Weight = it.Name + ".conv.weight"
			is.Stride, is.Padding, is.Groups = it.P.Stride, it.P.Padding, it.P.Groups
			is.InZero, is.WBits = it.InZero, it.WBits
			is.Scaler = scalerSpec(it.Scaler)
		case OpLinear:
			is.Weight = it.Name + ".linear.weight"
			is.InZero, is.WBits = it.InZero, it.WBits
			is.Scaler = scalerSpec(it.Scaler)
		case OpAvgPool:
			is.Kernel, is.PoolStride = it.Kernel, it.Stride
		case OpRescale:
			is.Scaler = scalerSpec(it.Scaler)
		case OpAdd:
			is.Shift, is.ClampLo, is.ClampHi = it.Shift, it.ClampLo, it.ClampHi
		}
		if it.FusedRescale != nil {
			is.FusedRescale = scalerSpec(it.FusedRescale)
		}
		if it.FusedAdd {
			is.FusedAdd = true
			is.Shift, is.ClampLo, is.ClampHi = it.Shift, it.ClampLo, it.ClampHi
		}
		is.FlattenOut = it.FlattenOut
		spec.Instrs = append(spec.Instrs, is)
	}
	return spec
}

func scalerSpec(m *intmath.MulQuant) *export.ScalerSpec {
	return &export.ScalerSpec{
		ScaleFx:   append([]int16(nil), m.ScaleFx...),
		BiasFx:    append([]int32(nil), m.BiasFx...),
		FracBits:  m.FracBits,
		IntBits:   m.IntBits,
		OutBits:   m.OutBits,
		OutSigned: m.OutSigned,
		OutZero:   m.OutZero,
	}
}

func scalerFromSpec(s *export.ScalerSpec) *intmath.MulQuant {
	return &intmath.MulQuant{
		ScaleFx:   append([]int16(nil), s.ScaleFx...),
		BiasFx:    append([]int32(nil), s.BiasFx...),
		FracBits:  s.FracBits,
		IntBits:   s.IntBits,
		OutBits:   s.OutBits,
		OutSigned: s.OutSigned,
		OutZero:   s.OutZero,
	}
}

// FromCheckpoint reconstructs an executable Program from a checkpoint
// carrying a program section, resolving instruction weights against the
// checkpoint's tensor table.
func FromCheckpoint(ck *export.Checkpoint) (*Program, error) {
	if ck.Program == nil {
		return nil, fmt.Errorf("engine: checkpoint has no program section")
	}
	spec := ck.Program
	if spec.Version < minProgramSpecVersion || spec.Version > ProgramSpecVersion {
		return nil, fmt.Errorf("engine: program spec version %d, support %d..%d",
			spec.Version, minProgramSpecVersion, ProgramSpecVersion)
	}
	if spec.OptLevel < int(OptNone) || spec.OptLevel > int(OptFuse) {
		return nil, fmt.Errorf("engine: unknown program opt level %d", spec.OptLevel)
	}
	inQ := quant.NewQBase(spec.InQuant.NBits, spec.InQuant.Signed, len(spec.InQuant.Scale) > 1)
	inQ.SetScale(append([]float32(nil), spec.InQuant.Scale...), append([]int64(nil), spec.InQuant.Zero...))
	inQ.Calibrating = false
	p := &Program{
		InQuant:  inQ,
		OutScale: spec.OutScale,
		OutZero:  spec.OutZero,
		NumBufs:  spec.NumBufs,
		Input:    spec.Input,
		Output:   spec.Output,
		OptLevel: OptLevel(spec.OptLevel),
		InShape:  append([]int(nil), spec.InShape...),
	}
	for i := range spec.Instrs {
		is := &spec.Instrs[i]
		it := Instr{
			Kind: OpKind(is.Kind), Name: is.Name,
			In: append([]int(nil), is.In...), Out: is.Out,
		}
		var w *tensor.IntTensor
		if is.Weight != "" {
			var err error
			w, err = ck.Tensor(is.Weight)
			if err != nil {
				return nil, fmt.Errorf("engine: instr %d: %w", i, err)
			}
		}
		switch it.Kind {
		case OpConv, OpLinear:
			if w == nil || is.Scaler == nil {
				return nil, fmt.Errorf("engine: instr %d (%s) missing weight or scaler", i, is.Kind)
			}
		case OpRescale:
			if is.Scaler == nil {
				return nil, fmt.Errorf("engine: instr %d (rescale) missing scaler", i)
			}
		}
		switch it.Kind {
		case OpConv:
			it.W = w
			it.P = tensor.ConvParams{Stride: is.Stride, Padding: is.Padding, Groups: is.Groups}
			it.InZero, it.WBits = is.InZero, is.WBits
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpLinear:
			it.W = w
			it.InZero, it.WBits = is.InZero, is.WBits
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpAvgPool:
			it.Kernel, it.Stride = is.Kernel, is.PoolStride
		case OpFlatten:
			// No attributes.
		case OpRescale:
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpAdd:
			it.Shift, it.ClampLo, it.ClampHi = is.Shift, is.ClampLo, is.ClampHi
		default:
			return nil, fmt.Errorf("engine: unknown serialized op kind %q", is.Kind)
		}
		if is.FusedRescale != nil {
			it.FusedRescale = scalerFromSpec(is.FusedRescale)
		}
		if is.FusedAdd {
			if len(it.In) < 2 {
				return nil, fmt.Errorf("engine: instr %d (%s) fused add without branch operand", i, is.Kind)
			}
			it.FusedAdd = true
			it.Shift, it.ClampLo, it.ClampHi = is.Shift, is.ClampLo, is.ClampHi
		}
		it.FlattenOut = is.FlattenOut
		p.Instrs = append(p.Instrs, it)
	}
	if err := p.loadDTypes(spec); err != nil {
		return nil, err
	}
	return p, nil
}

// loadDTypes restores the storage annotation from a v3 spec, validating
// every stored dtype against the range the instruction stream derives —
// a checkpoint must not be able to request storage too narrow for the
// codes an op can emit (silent truncation). Storing wider than derived
// is allowed (I64 everywhere is always valid). v1/v2 specs carry no
// dtypes and leave the program unannotated (I64 arenas).
func (p *Program) loadDTypes(spec *export.ProgramSpec) error {
	if spec.Version < 3 || len(spec.BufDTypes) == 0 {
		return nil
	}
	if len(spec.BufDTypes) != p.NumBufs {
		return fmt.Errorf("engine: %d buffer dtypes for %d buffers", len(spec.BufDTypes), p.NumBufs)
	}
	rng, err := p.inferRanges()
	if err != nil {
		return err
	}
	dts := make([]tensor.DType, p.NumBufs)
	for b, s := range spec.BufDTypes {
		dt, err := tensor.ParseDType(s)
		if err != nil {
			return fmt.Errorf("engine: buffer %d: %w", b, err)
		}
		if rng[b].ok && !dt.Contains(rng[b].lo, rng[b].hi) {
			return fmt.Errorf("engine: buffer %d stored as %s cannot hold derived code range [%d, %d]",
				b, dt, rng[b].lo, rng[b].hi)
		}
		dts[b] = dt
	}
	p.BufDTypes = dts
	return nil
}
