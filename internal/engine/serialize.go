package engine

import (
	"fmt"

	"torch2chip/internal/export"
	"torch2chip/internal/intmath"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// ProgramSpecVersion is the serialized graph IR version this package
// writes. Version 2 adds the optimization level and fused-epilogue
// instruction fields; version 3 adds per-buffer storage dtypes; version
// 4 adds the transformer instruction kinds (matmul, layernorm, softmax,
// gelu, head split/merge, embed, cls) with their tables and constants.
// Version-1/2/3 checkpoints still load exactly as before (convnet
// programs carry no v4 fields; re-exporting with t2c upgrades them).
const ProgramSpecVersion = 4

// minProgramSpecVersion is the oldest spec this package accepts.
const minProgramSpecVersion = 1

// Spec lowers the program to the plain-data checkpoint representation.
// Instruction weights are referenced by the names WeightTensors uses;
// callers must store those tensors in the same checkpoint.
func (p *Program) Spec() *export.ProgramSpec {
	spec := &export.ProgramSpec{
		Version:  ProgramSpecVersion,
		OptLevel: int(p.OptLevel),
		InShape:  append([]int(nil), p.InShape...),
		InQuant: export.QuantSpec{
			NBits:  p.InQuant.NBits,
			Signed: p.InQuant.Signed,
			Scale:  append([]float32(nil), p.InQuant.Scale...),
			Zero:   append([]int64(nil), p.InQuant.Zero...),
		},
		OutScale: p.OutScale,
		OutZero:  p.OutZero,
		NumBufs:  p.NumBufs,
		Input:    p.Input,
		Output:   p.Output,
	}
	for _, dt := range p.BufDTypes {
		spec.BufDTypes = append(spec.BufDTypes, dt.String())
	}
	for i := range p.Instrs {
		it := &p.Instrs[i]
		is := export.InstrSpec{
			Kind: string(it.Kind), Name: it.Name,
			In: append([]int(nil), it.In...), Out: it.Out,
		}
		switch it.Kind {
		case OpConv:
			is.Weight = it.Name + ".conv.weight"
			is.Stride, is.Padding, is.Groups = it.P.Stride, it.P.Padding, it.P.Groups
			is.InZero, is.WBits = it.InZero, it.WBits
			is.Scaler = scalerSpec(it.Scaler)
		case OpLinear:
			is.Weight = it.Name + ".linear.weight"
			is.InZero, is.WBits = it.InZero, it.WBits
			is.Scaler = scalerSpec(it.Scaler)
		case OpAvgPool:
			is.Kernel, is.PoolStride = it.Kernel, it.Stride
		case OpRescale:
			is.Scaler = scalerSpec(it.Scaler)
		case OpAdd:
			is.Shift, is.ClampLo, is.ClampHi = it.Shift, it.ClampLo, it.ClampHi
		case OpMatMul:
			is.TransposeB, is.ZA, is.ZB = it.TransposeB, it.ZA, it.ZB
			is.Scaler = scalerSpec(it.Scaler)
		case OpLayerNorm:
			is.LNDim, is.LNK, is.LNFrac, is.LNEps = it.LNDim, it.LNK, int(it.LNFrac), it.LNEps
			is.Scaler = scalerSpec(it.Scaler)
		case OpSoftmax:
			is.Softmax = &export.SoftmaxSpec{
				ExpInMin: it.SM.Exp.InMin,
				ExpTable: append([]int64(nil), it.SM.Exp.Table...),
				OutBits:  it.SM.OutBits,
			}
			is.ClampLo, is.ClampHi = it.ClampLo, it.ClampHi
		case OpGelu:
			is.Gelu = &export.LUTSpec{
				InMin:    it.Gelu.InMin,
				Table:    append([]int64(nil), it.Gelu.Table...),
				OutScale: it.Gelu.OutScale,
			}
			is.ClampLo, is.ClampHi = it.ClampLo, it.ClampHi
		case OpSplitHeads, OpMergeHeads:
			is.Heads = it.Heads
		case OpEmbed:
			is.Weight = it.Name + ".poscls"
			is.ClampLo, is.ClampHi = it.ClampLo, it.ClampHi
		}
		if it.FusedRescale != nil {
			is.FusedRescale = scalerSpec(it.FusedRescale)
		}
		if it.FusedAdd {
			is.FusedAdd = true
			is.Shift, is.ClampLo, is.ClampHi = it.Shift, it.ClampLo, it.ClampHi
		}
		is.FlattenOut = it.FlattenOut
		spec.Instrs = append(spec.Instrs, is)
	}
	return spec
}

func scalerSpec(m *intmath.MulQuant) *export.ScalerSpec {
	return &export.ScalerSpec{
		ScaleFx:   append([]int16(nil), m.ScaleFx...),
		BiasFx:    append([]int32(nil), m.BiasFx...),
		FracBits:  m.FracBits,
		IntBits:   m.IntBits,
		OutBits:   m.OutBits,
		OutSigned: m.OutSigned,
		OutZero:   m.OutZero,
	}
}

func scalerFromSpec(s *export.ScalerSpec) *intmath.MulQuant {
	return &intmath.MulQuant{
		ScaleFx:   append([]int16(nil), s.ScaleFx...),
		BiasFx:    append([]int32(nil), s.BiasFx...),
		FracBits:  s.FracBits,
		IntBits:   s.IntBits,
		OutBits:   s.OutBits,
		OutSigned: s.OutSigned,
		OutZero:   s.OutZero,
	}
}

// checkScaler validates a serialized MulQuant before it reaches the
// kernels: the fixed-point split must be a real INT16 split (FracBits
// feeds shift amounts), scale and bias must pair up, and the channel
// count must be unified (1) or exactly the channels the consuming
// kernel indexes (want; 0 accepts any non-empty). Without this a
// corrupt checkpoint passes load and panics (or silently computes with
// channel 0 only) inside a serving worker at inference time.
func checkScaler(s *export.ScalerSpec, want int) error {
	if len(s.ScaleFx) == 0 || len(s.BiasFx) != len(s.ScaleFx) {
		return fmt.Errorf("scaler has %d scales and %d biases", len(s.ScaleFx), len(s.BiasFx))
	}
	if s.FracBits < 1 || s.FracBits > 15 || s.IntBits+s.FracBits != 16 {
		return fmt.Errorf("scaler INT(%d,%d) is not an INT16 split", s.FracBits, s.IntBits)
	}
	if s.OutBits < 1 || s.OutBits > 32 {
		return fmt.Errorf("scaler output width %d bits unsupported", s.OutBits)
	}
	if want > 0 && len(s.ScaleFx) != 1 && len(s.ScaleFx) != want {
		return fmt.Errorf("scaler has %d channels, kernel indexes %d", len(s.ScaleFx), want)
	}
	return nil
}

// FromCheckpoint reconstructs an executable Program from a checkpoint
// carrying a program section, resolving instruction weights against the
// checkpoint's tensor table.
func FromCheckpoint(ck *export.Checkpoint) (*Program, error) {
	if ck.Program == nil {
		return nil, fmt.Errorf("engine: checkpoint has no program section")
	}
	spec := ck.Program
	if spec.Version < minProgramSpecVersion || spec.Version > ProgramSpecVersion {
		return nil, fmt.Errorf("engine: program spec version %d, support %d..%d",
			spec.Version, minProgramSpecVersion, ProgramSpecVersion)
	}
	if spec.OptLevel < int(OptNone) || spec.OptLevel > int(OptFuse) {
		return nil, fmt.Errorf("engine: unknown program opt level %d", spec.OptLevel)
	}
	inQ := quant.NewQBase(spec.InQuant.NBits, spec.InQuant.Signed, len(spec.InQuant.Scale) > 1)
	inQ.SetScale(append([]float32(nil), spec.InQuant.Scale...), append([]int64(nil), spec.InQuant.Zero...))
	inQ.Calibrating = false
	p := &Program{
		InQuant:  inQ,
		OutScale: spec.OutScale,
		OutZero:  spec.OutZero,
		NumBufs:  spec.NumBufs,
		Input:    spec.Input,
		Output:   spec.Output,
		OptLevel: OptLevel(spec.OptLevel),
		InShape:  append([]int(nil), spec.InShape...),
	}
	for i := range spec.Instrs {
		is := &spec.Instrs[i]
		it := Instr{
			Kind: OpKind(is.Kind), Name: is.Name,
			In: append([]int(nil), is.In...), Out: is.Out,
		}
		var w *tensor.IntTensor
		if is.Weight != "" {
			var err error
			w, err = ck.Tensor(is.Weight)
			if err != nil {
				return nil, fmt.Errorf("engine: instr %d: %w", i, err)
			}
		}
		switch it.Kind {
		case OpConv, OpLinear:
			if w == nil || is.Scaler == nil {
				return nil, fmt.Errorf("engine: instr %d (%s) missing weight or scaler", i, is.Kind)
			}
			if err := checkScaler(is.Scaler, w.Shape[0]); err != nil {
				return nil, fmt.Errorf("engine: instr %d (%s): %w", i, is.Kind, err)
			}
		case OpRescale, OpMatMul, OpLayerNorm:
			if is.Scaler == nil {
				return nil, fmt.Errorf("engine: instr %d (%s) missing scaler", i, is.Kind)
			}
			// Matmul scalers are unified (the kernel reads channel 0 only);
			// layernorm scalers are per-channel over the normalized width.
			want := 0
			switch it.Kind {
			case OpMatMul:
				want = 1
			case OpLayerNorm:
				want = is.LNDim
			}
			if err := checkScaler(is.Scaler, want); err != nil {
				return nil, fmt.Errorf("engine: instr %d (%s): %w", i, is.Kind, err)
			}
		case OpEmbed:
			if w == nil {
				return nil, fmt.Errorf("engine: instr %d (embed) missing positional code tensor", i)
			}
		}
		if is.FusedRescale != nil {
			if err := checkScaler(is.FusedRescale, 0); err != nil {
				return nil, fmt.Errorf("engine: instr %d (%s) fused rescale: %w", i, is.Kind, err)
			}
		}
		switch it.Kind {
		case OpConv:
			it.W = w
			it.P = tensor.ConvParams{Stride: is.Stride, Padding: is.Padding, Groups: is.Groups}
			it.InZero, it.WBits = is.InZero, is.WBits
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpLinear:
			it.W = w
			it.InZero, it.WBits = is.InZero, is.WBits
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpAvgPool:
			it.Kernel, it.Stride = is.Kernel, is.PoolStride
		case OpFlatten:
			// No attributes.
		case OpRescale:
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpAdd:
			it.Shift, it.ClampLo, it.ClampHi = is.Shift, is.ClampLo, is.ClampHi
		case OpMatMul:
			it.TransposeB, it.ZA, it.ZB = is.TransposeB, is.ZA, is.ZB
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpLayerNorm:
			if is.LNDim < 1 || is.LNK < 1 || is.LNFrac < 1 || is.LNFrac > 30 || is.LNEps < 0 {
				return nil, fmt.Errorf("engine: instr %d (layernorm) invalid constants D=%d K=%d frac=%d eps=%d",
					i, is.LNDim, is.LNK, is.LNFrac, is.LNEps)
			}
			it.LNDim, it.LNK, it.LNFrac, it.LNEps = is.LNDim, is.LNK, uint(is.LNFrac), is.LNEps
			it.Scaler = scalerFromSpec(is.Scaler)
		case OpSoftmax:
			sm, err := softmaxFromSpec(is.Softmax)
			if err != nil {
				return nil, fmt.Errorf("engine: instr %d (softmax): %w", i, err)
			}
			it.SM = sm
			it.ClampLo, it.ClampHi = 0, 1<<sm.OutBits-1
		case OpGelu:
			lut, err := lutFromSpec(is.Gelu, is.ClampLo, is.ClampHi)
			if err != nil {
				return nil, fmt.Errorf("engine: instr %d (gelu): %w", i, err)
			}
			it.Gelu = lut
			it.ClampLo, it.ClampHi = is.ClampLo, is.ClampHi
		case OpSplitHeads, OpMergeHeads:
			if is.Heads < 1 {
				return nil, fmt.Errorf("engine: instr %d (%s) has %d heads", i, is.Kind, is.Heads)
			}
			it.Heads = is.Heads
		case OpEmbed:
			if len(w.Shape) != 2 {
				return nil, fmt.Errorf("engine: instr %d (embed) positional tensor shape %v, want [T,D]", i, w.Shape)
			}
			if is.ClampLo > is.ClampHi {
				return nil, fmt.Errorf("engine: instr %d (embed) clamp [%d,%d] inverted", i, is.ClampLo, is.ClampHi)
			}
			it.Pos = w
			it.ClampLo, it.ClampHi = is.ClampLo, is.ClampHi
		case OpSliceCls:
			// No attributes.
		default:
			return nil, fmt.Errorf("engine: unknown serialized op kind %q", is.Kind)
		}
		if is.FusedRescale != nil {
			it.FusedRescale = scalerFromSpec(is.FusedRescale)
		}
		if is.FusedAdd {
			if len(it.In) < 2 {
				return nil, fmt.Errorf("engine: instr %d (%s) fused add without branch operand", i, is.Kind)
			}
			it.FusedAdd = true
			it.Shift, it.ClampLo, it.ClampHi = is.Shift, is.ClampLo, is.ClampHi
		}
		it.FlattenOut = is.FlattenOut
		p.Instrs = append(p.Instrs, it)
	}
	if err := p.loadDTypes(spec); err != nil {
		return nil, err
	}
	return p, nil
}

// lutFromSpec reconstructs a lookup table, rejecting corrupt payloads:
// the table must be non-empty and every entry must lie inside the
// instruction's declared output range — a table that can emit codes
// outside the planned storage dtype would silently wrap on the store.
func lutFromSpec(s *export.LUTSpec, lo, hi int64) (*intmath.LUT, error) {
	if s == nil || len(s.Table) == 0 {
		return nil, fmt.Errorf("missing or empty lookup table")
	}
	if lo > hi {
		return nil, fmt.Errorf("clamp range [%d,%d] inverted", lo, hi)
	}
	for i, v := range s.Table {
		if v < lo || v > hi {
			return nil, fmt.Errorf("table entry %d = %d outside declared range [%d,%d]", i, v, lo, hi)
		}
	}
	return &intmath.LUT{
		InMin:    s.InMin,
		InMax:    s.InMin + int64(len(s.Table)) - 1,
		Table:    append([]int64(nil), s.Table...),
		OutScale: s.OutScale,
	}, nil
}

// softmaxFromSpec reconstructs the integer softmax, validating the exp
// table: it must cover max-subtracted codes ending exactly at 0, hold
// only unsigned 16-bit fixed-point values, and declare a sane output
// width.
func softmaxFromSpec(s *export.SoftmaxSpec) (*intmath.LUTSoftmax, error) {
	if s == nil || len(s.ExpTable) == 0 {
		return nil, fmt.Errorf("missing or empty exp table")
	}
	if s.OutBits < 1 || s.OutBits > 16 {
		return nil, fmt.Errorf("probability width %d bits unsupported", s.OutBits)
	}
	if s.ExpInMin+int64(len(s.ExpTable))-1 != 0 {
		return nil, fmt.Errorf("exp table domain [%d, %d] does not end at 0",
			s.ExpInMin, s.ExpInMin+int64(len(s.ExpTable))-1)
	}
	for i, v := range s.ExpTable {
		if v < 0 || v > 0xFFFF {
			return nil, fmt.Errorf("exp table entry %d = %d outside UQ1.15 range", i, v)
		}
	}
	return &intmath.LUTSoftmax{
		Exp: &intmath.LUT{
			InMin:    s.ExpInMin,
			InMax:    0,
			Table:    append([]int64(nil), s.ExpTable...),
			OutScale: float32(1) / (1 << 15),
		},
		OutBits:   s.OutBits,
		ProbScale: 1 / float32(int64(1)<<s.OutBits-1),
	}, nil
}

// loadDTypes restores the storage annotation from a v3 spec, validating
// every stored dtype against the range the instruction stream derives —
// a checkpoint must not be able to request storage too narrow for the
// codes an op can emit (silent truncation). Storing wider than derived
// is allowed (I64 everywhere is always valid). v1/v2 specs carry no
// dtypes and leave the program unannotated (I64 arenas).
func (p *Program) loadDTypes(spec *export.ProgramSpec) error {
	if spec.Version < 3 || len(spec.BufDTypes) == 0 {
		return nil
	}
	if len(spec.BufDTypes) != p.NumBufs {
		return fmt.Errorf("engine: %d buffer dtypes for %d buffers", len(spec.BufDTypes), p.NumBufs)
	}
	rng, err := p.inferRanges()
	if err != nil {
		return err
	}
	dts := make([]tensor.DType, p.NumBufs)
	for b, s := range spec.BufDTypes {
		dt, err := tensor.ParseDType(s)
		if err != nil {
			return fmt.Errorf("engine: buffer %d: %w", b, err)
		}
		if rng[b].ok && !dt.Contains(rng[b].lo, rng[b].hi) {
			return fmt.Errorf("engine: buffer %d stored as %s cannot hold derived code range [%d, %d]",
				b, dt, rng[b].lo, rng[b].hi)
		}
		dts[b] = dt
	}
	p.BufDTypes = dts
	return nil
}
