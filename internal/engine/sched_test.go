package engine_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/tensor"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want engine.PriorityClass
		ok   bool
	}{
		{"", engine.PriNormal, true},
		{"normal", engine.PriNormal, true},
		{"high", engine.PriHigh, true},
		{"low", engine.PriLow, true},
		{"urgent", 0, false},
	}
	for _, c := range cases {
		got, err := engine.ParsePriority(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParsePriority(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParsePriority(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := engine.ParseSchedPolicy("lifo"); err == nil {
		t.Fatal("ParseSchedPolicy accepted an unknown policy")
	}
	if p, err := engine.ParseSchedPolicy(""); err != nil || p != engine.SchedEDF {
		t.Fatalf("ParseSchedPolicy(\"\") = %v, %v, want EDF default", p, err)
	}
}

// blockingLinear parks the linear kernel on release, signalling gate on
// entry. smallCNN lowers to exactly one linear instruction, so — unlike
// blockingKernels' conv hook, which fires once per conv layer — each
// execute blocks exactly once, letting a test step the worker through
// the queue one request at a time.
func blockingLinear(gate chan struct{}, release chan struct{}) *engine.Registry {
	reg := engine.FastKernels()
	base, _ := reg.Lookup(engine.OpLinear)
	reg.Register(engine.OpLinear, func(ex *engine.Executor, idx int, it *engine.Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
		select {
		case gate <- struct{}{}:
		default:
		}
		<-release
		base(ex, idx, it, in, out)
	})
	return reg
}

// schedServer builds a Workers=1 MaxBatch=1 server whose linear kernel
// parks on release, so a test can hold the worker mid-execute and
// control exactly which queued request is served next.
func schedServer(t *testing.T, g *tensor.RNG, sched engine.SchedPolicy, queue int,
	gate chan struct{}, release chan struct{}) (*engine.Server, *engine.Program) {
	t.Helper()
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: 1, QueueSize: queue, Sched: sched,
		Kernels: blockingLinear(gate, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, prog
}

// quantize mirrors the serve-layer enqueue path: the codes handed to
// TryInferCodes are the program's own input quantization of x.
func quantize(prog *engine.Program, x *tensor.Tensor) *tensor.IntTensor {
	codes := tensor.NewInt(x.Shape...)
	prog.InQuant.QuantizeTo(codes, x)
	return codes
}

// TestServerEDFOrdersByDeadline holds the single worker mid-execute so
// two later requests with inverted deadlines are both queued, then
// releases the pipeline one execute at a time: EDF must serve the
// tighter deadline first even though it arrived second, and the same
// setup under FIFO must preserve arrival order.
func TestServerEDFOrdersByDeadline(t *testing.T) {
	for _, tc := range []struct {
		sched engine.SchedPolicy
		want  [2]string // completion order of the two queued requests
	}{
		{engine.SchedEDF, [2]string{"tight", "loose"}},
		{engine.SchedFIFO, [2]string{"loose", "tight"}},
	} {
		t.Run(string(tc.sched), func(t *testing.T) {
			g := tensor.NewRNG(53)
			gate := make(chan struct{}, 1)
			release := make(chan struct{})
			srv, prog := schedServer(t, g, tc.sched, 8, gate, release)
			x := quantize(prog, g.Uniform(0, 1, 3, 8, 8))

			var wg sync.WaitGroup
			var once sync.Once
			unblock := func() { once.Do(func() { close(release) }) }
			// LIFO: on any failure path, unblock the kernel so queued work
			// drains, then wait, then Close.
			defer srv.Close()
			defer wg.Wait()
			defer unblock()
			completions := make(chan string, 8)
			fire := func(label string, deadline time.Time) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := srv.TryInferCodes(x, deadline, engine.PriNormal, 0); err != nil {
						t.Errorf("%s: %v", label, err)
						return
					}
					completions <- label
				}()
			}

			// Hold the worker, then saturate the batcher's hand and the
			// dispatch slot so later requests stay *queued* where the
			// policy decides their order. With MaxBatch=1 the pipeline
			// holds 3 requests ahead of the queue (executing, dispatched,
			// batcher's hand).
			far := time.Now().Add(time.Hour)
			fire("hold", far)
			<-gate
			for i := 0; i < 2; i++ {
				fire("pipe", far)
			}
			// The two pipe fillers are interchangeable, but both must be
			// absorbed (dispatch buffer + batcher's hand) before loose and
			// tight arrive, and absorption is not externally observable —
			// give the fire goroutines ample time to land.
			awaitQueueDepth(t, srv, 0)
			time.Sleep(300 * time.Millisecond)
			fire("loose", time.Now().Add(20*time.Second))
			awaitQueueDepth(t, srv, 1)
			fire("tight", time.Now().Add(5*time.Second))
			awaitQueueDepth(t, srv, 2)

			// Step the kernel: each send on release lets exactly one
			// execute finish, so draining one completion per step records
			// the true serve order; each receive on gate means the next
			// execute reached the parked kernel.
			var order []string
			for served := 0; served < 5; served++ {
				select {
				case release <- struct{}{}:
				case <-time.After(10 * time.Second):
					t.Fatalf("no execute was waiting for release at step %d", served)
				}
				select {
				case label := <-completions:
					order = append(order, label)
				case <-time.After(10 * time.Second):
					t.Fatalf("request served at step %d never completed", served)
				}
				if served < 4 {
					select {
					case <-gate:
					case <-time.After(10 * time.Second):
						t.Fatalf("execute %d never reached the parked kernel", served+1)
					}
				}
			}
			wg.Wait()

			got := [2]string{order[3], order[4]}
			if got != tc.want {
				t.Fatalf("%s completion order = %v, want %v (full order %v)", tc.sched, got, tc.want, order)
			}
		})
	}
}

// awaitQueueDepth polls until the server's queue holds exactly n
// requests (the surrounding test controls all enqueues).
func awaitQueueDepth(t *testing.T, srv *engine.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.QueueDepth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, srv.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerPrioritySheds fills the EDF queue with low-class requests
// and sends one high-class request: the high one must be admitted by
// evicting a low victim, whose reply is ErrQueueFull.
func TestServerPrioritySheds(t *testing.T) {
	g := tensor.NewRNG(59)
	gate := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, prog := schedServer(t, g, engine.SchedEDF, 2, gate, release)
	var wg sync.WaitGroup
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	defer srv.Close()
	defer wg.Wait()
	defer unblock()
	x := quantize(prog, g.Uniform(0, 1, 3, 8, 8))

	errs := make(chan error, 16)
	fire := func(class engine.PriorityClass) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.TryInferCodes(x, time.Time{}, class, 0)
			errs <- err
		}()
	}
	// Hold the worker and fill pipeline + queue entirely with low-class
	// requests (3 pipeline slots + 2 queue slots).
	fire(engine.PriLow)
	<-gate
	for i := 0; i < 2; i++ {
		fire(engine.PriLow)
	}
	awaitQueueDepth(t, srv, 0)
	fire(engine.PriLow)
	awaitQueueDepth(t, srv, 1)
	fire(engine.PriLow)
	awaitQueueDepth(t, srv, 2)
	// Depth 2 can be observed transiently while a filler is still in
	// flight; settle, then re-assert the queue is stably full.
	time.Sleep(300 * time.Millisecond)
	awaitQueueDepth(t, srv, 2)

	// A further low-class request bounces off the full queue...
	_, err := srv.TryInferCodes(x, time.Time{}, engine.PriLow, 0)
	if !errors.Is(err, engine.ErrQueueFull) {
		t.Fatalf("low-class push into a full queue returned %v, want ErrQueueFull", err)
	}
	// ...but a high-class request is admitted by evicting a low victim.
	fire(engine.PriHigh)
	var evicted error
	select {
	case evicted = <-errs:
	case <-time.After(10 * time.Second):
		t.Fatal("no queued request was evicted for the high-class arrival")
	}
	if !errors.Is(evicted, engine.ErrQueueFull) {
		t.Fatalf("evicted victim got %v, want ErrQueueFull", evicted)
	}

	unblock()
	wg.Wait()
	st := srv.Stats()
	if st.ShedLow != 2 {
		t.Fatalf("stats shed-low = %d, want 2 (one bounced, one evicted)", st.ShedLow)
	}
	if st.ShedHigh != 0 {
		t.Fatalf("stats shed-high = %d, want 0", st.ShedHigh)
	}
	// Everyone else completed: the held one, 2 pipeline, 2 queued... one
	// of which was replaced by the high request.
	if st.Requests != 5 {
		t.Fatalf("stats requests = %d, want 5", st.Requests)
	}
}

// TestServerEstimateCost pins the cost estimator's contract: positive,
// monotonic in batch size, and scaled exactly by calibration ratios.
func TestServerEstimateCost(t *testing.T) {
	g := tensor.NewRNG(61)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{Workers: 1, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, c8 := srv.EstimateCost(1), srv.EstimateCost(8)
	if c1 <= 0 {
		t.Fatalf("EstimateCost(1) = %v, want > 0", c1)
	}
	if c8 < c1 {
		t.Fatalf("EstimateCost(8) = %v < EstimateCost(1) = %v", c8, c1)
	}

	// A uniform ratio of 2 on every op must exactly double the estimate.
	ratios := map[engine.OpKind]float64{}
	work, err := prog.ModeledOpWork([]int{1, 3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range work {
		ratios[w.Kind] = 2
	}
	srv2, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: 8, Cost: &engine.CostModel{Ratios: ratios},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.EstimateCost(1); got != 2*c1 {
		t.Fatalf("ratio-2 EstimateCost(1) = %v, want %v", got, 2*c1)
	}
}

// TestServerCodesPathMatchesInfer proves the quantize-at-enqueue codes
// path returns bit-identical results to the float Infer path: both
// reduce to the same quantized codes, the same integer execute, and the
// same dequantization.
func TestServerCodesPathMatchesInfer(t *testing.T) {
	g := tensor.NewRNG(67)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{Workers: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 8; i++ {
		x := g.Uniform(0, 1, 3, 8, 8)
		want, err := srv.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		codes, err := srv.TryInferCodes(quantize(prog, x), time.Time{}, engine.PriNormal, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := prog.DequantizeOutput(codes.Data, want.Shape)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("codes path shape %v vs %v", got.Shape, want.Shape)
		}
		for j := range got.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("input %d: codes path diverges from Infer at %d: %v vs %v",
					i, j, got.Data[j], want.Data[j])
			}
		}
	}
}
