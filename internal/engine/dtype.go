package engine

// Narrow-precision storage planning: every buffer's code value range is
// derivable from the instruction that writes it (the producing scaler's
// requantization range, a residual add's clamp range, or propagation for
// range-preserving ops), so the narrowest legal storage dtype per buffer
// is a pure function of the program. Lower annotates fresh programs,
// Optimize re-annotates after fusion rewrites the epilogues, and the
// typed executor plans its arenas from the annotation — demoting any
// conv/linear instruction that cannot take the int32-accumulate fast
// path back to I64 storage so the legacy kernels run it bit-identically.

import (
	"fmt"
	"math"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// bufRange is a buffer's derived code value range.
type bufRange struct {
	lo, hi int64
	ok     bool
}

func (r bufRange) maxAbs() int64 {
	a, b := r.lo, r.hi
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// inferRanges derives the value range of every buffer from the program:
// the input buffer carries InQuant's code range, conv/linear/rescale
// outputs the effective epilogue range (folded rescale overrides the own
// scaler, a folded add's clamp overrides both), residual adds their
// clamp range, and avgpool/flatten preserve their input's range (an
// integer mean never exceeds the extremes it averages).
func (p *Program) inferRanges() ([]bufRange, error) {
	rng := make([]bufRange, p.NumBufs)
	rng[p.Input] = bufRange{lo: p.InQuant.QMin(), hi: p.InQuant.QMax(), ok: true}
	for idx := range p.Instrs {
		it := &p.Instrs[idx]
		for _, b := range it.In {
			if !rng[b].ok {
				return nil, fmt.Errorf("engine: instr %d (%s) reads buffer %d with no derived range", idx, it.Kind, b)
			}
		}
		var out bufRange
		switch it.Kind {
		case OpConv, OpLinear, OpRescale:
			lo, hi := it.Scaler.OutRange()
			if it.FusedRescale != nil {
				lo, hi = it.FusedRescale.OutRange()
			}
			out = bufRange{lo: lo, hi: hi, ok: true}
		case OpMatMul, OpLayerNorm:
			lo, hi := it.Scaler.OutRange()
			out = bufRange{lo: lo, hi: hi, ok: true}
		case OpAdd:
			out = bufRange{lo: it.ClampLo, hi: it.ClampHi, ok: true}
		case OpSoftmax, OpGelu, OpEmbed:
			// The declared clamp range (softmax probability range, GELU
			// table output range, embedding clamp).
			out = bufRange{lo: it.ClampLo, hi: it.ClampHi, ok: true}
		case OpAvgPool, OpFlatten, OpSplitHeads, OpMergeHeads, OpSliceCls:
			out = rng[it.In[0]]
		default:
			return nil, fmt.Errorf("engine: unknown op kind %q", it.Kind)
		}
		if it.FusedAdd {
			out = bufRange{lo: it.ClampLo, hi: it.ClampHi, ok: true}
		}
		rng[it.Out] = out
	}
	return rng, nil
}

// AnnotateDTypes derives and records the narrowest storage dtype for
// every buffer (BufDTypes). Lower calls it on fresh programs and
// Optimize after fusion; deserialized pre-v3 programs stay unannotated
// and keep planning I64 arenas.
func (p *Program) AnnotateDTypes() error {
	rng, err := p.inferRanges()
	if err != nil {
		return err
	}
	dts := make([]tensor.DType, p.NumBufs)
	for b, r := range rng {
		if r.ok {
			dts[b] = tensor.DTypeForRange(r.lo, r.hi)
		}
	}
	p.BufDTypes = dts
	packInitMu.Lock()
	// Weight-derived caches are invalidated together: re-annotation is
	// the "program changed" hook, and a caller that swapped weight
	// content in place (hot-reload plumbing) must not serve the stale
	// sparsity analysis or storage plan.
	p.stor = nil
	p.spar = nil
	packInitMu.Unlock()
	return nil
}

// Annotated reports whether the program carries storage dtypes.
func (p *Program) Annotated() bool { return p.BufDTypes != nil }

// storageInfo is the resolved typed-storage decision: the per-buffer
// storage dtype after demotions, per instruction whether conv/linear
// takes the narrow int32-accumulate path, and whether it may additionally
// take the SWAR lane-packed path (a strict subset of typed).
type storageInfo struct {
	dts   []tensor.DType
	typed []bool
	swar  []bool
	// swarSparse marks typed conv/linear instructions whose pruned
	// weights fit the SWAR lane bound over their live K positions even
	// though the dense full-K bound fails (or also holds). Only the
	// pair-skipping SWAR kernel is legal under this flag — the dense
	// kernel's biased sum runs the full K range.
	swarSparse []bool
}

// maxAbsWeight scans the integer weight tensor once (bind-time only).
func maxAbsWeight(w *tensor.IntTensor) (int64, int64) {
	if w == nil || w.Numel() == 0 {
		return 0, 0
	}
	return w.MinMax()
}

// accBound reports whether a K-long dot product of raw codes (≤ rawMax
// in magnitude) against weights (≤ wAbs) accumulates without int32
// overflow, which is what makes the narrow GEMM bit-identical to the
// int64 reference: every partial sum is bounded by K·rawMax·wAbs.
func accBound(k, rawMax, wAbs int64) bool {
	if rawMax > math.MaxInt32 {
		return false
	}
	if rawMax == 0 || wAbs == 0 || k == 0 {
		return true
	}
	limit := int64(math.MaxInt32)
	if k > limit/rawMax || k*rawMax > limit/wAbs {
		return false
	}
	return true
}

// storage resolves (and caches) the typed-storage plan. Unannotated
// programs get all-I64 storage and no narrow instructions — exactly the
// pre-typed engine. Annotated programs start from BufDTypes; every
// conv/linear whose weights do not fit int8 or whose accumulator bound
// exceeds int32 is demoted: it runs on the legacy I64 kernels, so its
// operand and output buffers (and their flatten aliases, which must
// share storage) are forced to I64. Neighbouring instructions stay
// narrow — the typed kernels load and store any storage dtype.
func (p *Program) storage() (*storageInfo, error) {
	packInitMu.Lock()
	st := p.stor
	packInitMu.Unlock()
	if st != nil {
		return st, nil
	}
	st = &storageInfo{
		dts:        make([]tensor.DType, p.NumBufs),
		typed:      make([]bool, len(p.Instrs)),
		swar:       make([]bool, len(p.Instrs)),
		swarSparse: make([]bool, len(p.Instrs)),
	}
	if p.BufDTypes == nil || len(p.BufDTypes) != p.NumBufs {
		packInitMu.Lock()
		p.stor = st
		packInitMu.Unlock()
		return st, nil
	}
	copy(st.dts, p.BufDTypes)
	rng, err := p.inferRanges()
	if err != nil {
		return nil, err
	}

	// Flatten outputs alias their input storage (the kernel is a no-op),
	// so a demotion must widen the whole alias group, not one member.
	group := make([]int, p.NumBufs)
	for i := range group {
		group[i] = i
	}
	var find func(int) int
	find = func(b int) int {
		for group[b] != b {
			group[b] = group[group[b]]
			b = group[b]
		}
		return b
	}
	for i := range p.Instrs {
		if p.Instrs[i].Kind == OpFlatten {
			group[find(p.Instrs[i].Out)] = find(p.Instrs[i].In[0])
		}
	}
	members := map[int][]int{}
	for b := 0; b < p.NumBufs; b++ {
		r := find(b)
		members[r] = append(members[r], b)
	}
	forceI64 := func(b int) {
		for _, m := range members[find(b)] {
			st.dts[m] = tensor.I64
		}
	}

	spar := p.sparsity()
	for i := range p.Instrs {
		it := &p.Instrs[i]
		if it.Kind != OpConv && it.Kind != OpLinear {
			continue
		}
		// The accumulator bound uses the largest per-channel *nonzero*
		// count as the effective K: zero weights contribute nothing to
		// any partial sum (dense or sparse kernel alike), so every
		// partial sum is bounded by maxRowNnz·rawMax·wAbs. Dense weights
		// reduce to the full K exactly as before.
		k := spar[i].maxRowNnz
		wMin, wMax := maxAbsWeight(it.W)
		wAbs := wMax
		if -wMin > wAbs {
			wAbs = -wMin
		}
		ok := wMin >= -128 && wMax <= 127 && accBound(k, rng[it.In[0]].maxAbs(), wAbs)
		st.typed[i] = ok
		if !ok {
			for _, b := range it.In {
				forceI64(b)
			}
			forceI64(it.Out)
		}
	}

	// SWAR eligibility is decided after all demotions settled: the packed
	// microkernel gathers activations as biased bytes, so the input's
	// resolved storage must be 8-bit, and the biased dot product must fit
	// one 32-bit lane. Grouped convs keep the direct kernel — channel
	// pairing has nothing to pack there.
	for i := range p.Instrs {
		it := &p.Instrs[i]
		if !st.typed[i] {
			continue
		}
		if it.Kind == OpConv && it.P.Groups > 1 {
			continue
		}
		var k int64
		if it.Kind == OpConv {
			k = int64(it.W.Shape[1] * it.W.Shape[2] * it.W.Shape[3])
		} else if it.Kind == OpLinear {
			k = int64(it.W.Shape[1])
		} else {
			continue
		}
		ad := st.dts[it.In[0]]
		if ad != tensor.I8 && ad != tensor.U8 {
			continue
		}
		wMin, wMax := maxAbsWeight(it.W)
		st.swar[i] = swarEligible(k, ad, wMin, wMax)
		// The pair-skipping kernel only ever sums live positions, so its
		// lane bound is the largest per-(panel, pair) live count.
		if spar[i].skip != nil {
			st.swarSparse[i] = swarEligible(spar[i].maxPairLive, ad, wMin, wMax)
		}
	}
	packInitMu.Lock()
	p.stor = st
	packInitMu.Unlock()
	return st, nil
}

// swarEligible is the lane-overflow legality rule: activations biased to
// the storage dtype's full unsigned span (so any code the executor
// accepts is safe, not just the derived range) and weights biased by
// −wMin give non-negative multiplicands with spans aSpan = hi−lo and
// wSpan = wMax−wMin; the K-long biased dot product must fit one 32-bit
// sub-accumulator.
func swarEligible(k int64, ad tensor.DType, wMin, wMax int64) bool {
	lo, hi := ad.Range()
	return intmath.SwarLegal(k, hi-lo, wMax-wMin)
}
