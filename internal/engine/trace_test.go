package engine_test

import (
	"sort"
	"testing"
	"time"

	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

func countKinds(spans []trace.Span) map[trace.Kind]int {
	n := map[trace.Kind]int{}
	for _, s := range spans {
		n[s.Kind]++
	}
	return n
}

// TestExecutorTraceSpans runs a traced executor serially and checks the
// recorded timeline: one instruction span per instruction per execute,
// each wrapped by a wave span, with correct indices and op names.
func TestExecutorTraceSpans(t *testing.T) {
	old := tensor.SetParallelism(1) // serial waves → per-instruction spans
	defer tensor.SetParallelism(old)
	g := tensor.NewRNG(71)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)

	tr := trace.New(trace.Config{RingSpans: 1024})
	ex, err := engine.NewExecutor(prog, []int{2, 3, 8, 8},
		engine.WithKernels(engine.FastKernels()), engine.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Uniform(0, 1, 2, 3, 8, 8)

	// Disabled tracer: executes must record nothing.
	if _, err := ex.Execute(x); err != nil {
		t.Fatal(err)
	}
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}

	tr.SetEnabled(true)
	const iters = 2
	for i := 0; i < iters; i++ {
		if _, err := ex.Execute(x); err != nil {
			t.Fatal(err)
		}
	}
	spans := tr.Snapshot()
	kinds := countKinds(spans)
	if want := iters * len(prog.Instrs); kinds[trace.KindInstr] != want {
		t.Fatalf("instr spans = %d, want %d (%d instrs × %d iters)",
			kinds[trace.KindInstr], want, len(prog.Instrs), iters)
	}
	if kinds[trace.KindWave] == 0 {
		t.Fatal("no wave spans recorded")
	}
	// Per-execute, the instruction indices must cover the program and
	// each instruction span must nest inside some wave span.
	seen := map[int64]int{}
	for _, s := range spans {
		if s.Kind != trace.KindInstr {
			continue
		}
		seen[s.A1]++
		nested := false
		for _, w := range spans {
			if w.Kind == trace.KindWave && w.Start <= s.Start && s.Start+s.Dur <= w.Start+w.Dur {
				nested = true
				break
			}
		}
		if !nested {
			t.Fatalf("instruction span %+v not nested in any wave span", s)
		}
	}
	for i := range prog.Instrs {
		if seen[int64(i)] != iters {
			t.Fatalf("instruction %d recorded %d spans, want %d", i, seen[int64(i)], iters)
		}
	}
	// The op histograms must have aggregated every instruction span.
	var total int64
	for _, op := range tr.OpProfile() {
		total += op.Count
	}
	if total != int64(iters*len(prog.Instrs)) {
		t.Fatalf("op profile aggregated %d spans, want %d", total, iters*len(prog.Instrs))
	}
}

// TestServerTraceSpans drives a traced Server and checks the request →
// batch → wave nesting and the trace-id stitching from TryInferTraced
// into the queue-wait span.
func TestServerTraceSpans(t *testing.T) {
	g := tensor.NewRNG(72)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	tr := trace.New(trace.Config{RingSpans: 1024})
	tr.SetEnabled(true)
	srv, err := engine.NewServer(prog, []int{3, 8, 8}, engine.ServerOptions{
		Workers: 1, MaxBatch: 4, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const tid = 77
	deadline := time.Now().Add(5 * time.Second)
	if _, err := srv.TryInferTraced(g.Uniform(0, 1, 3, 8, 8), deadline, tid); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	kinds := countKinds(spans)
	for _, k := range []trace.Kind{trace.KindQueueWait, trace.KindBatch, trace.KindWave} {
		if kinds[k] == 0 {
			t.Fatalf("no %s span recorded (kinds: %v)", k, kinds)
		}
	}
	var qw, batch *trace.Span
	for i := range spans {
		switch spans[i].Kind {
		case trace.KindQueueWait:
			qw = &spans[i]
		case trace.KindBatch:
			batch = &spans[i]
		}
	}
	if qw.ID != tid {
		t.Fatalf("queue-wait span carries trace id %d, want %d", qw.ID, tid)
	}
	// Queue wait ends where the batch begins; the executor's spans nest
	// inside the batch span.
	if qw.Start+qw.Dur != batch.Start {
		t.Fatalf("queue-wait [%d,+%d] does not end at batch start %d", qw.Start, qw.Dur, batch.Start)
	}
	for _, s := range spans {
		if s.Kind == trace.KindInstr || s.Kind == trace.KindWave {
			if s.Start < batch.Start || s.Start+s.Dur > batch.Start+batch.Dur {
				t.Fatalf("engine span %+v escapes its batch span %+v", s, batch)
			}
		}
	}

	// The always-on batch-wait histogram saw the dispatch, and the
	// queue-depth gauge reads cleanly on an idle server.
	if bw := srv.BatchWait(); bw.Count < 1 {
		t.Fatalf("batch-wait count = %d, want >= 1", bw.Count)
	}
	if d := srv.QueueDepth(); d != 0 {
		t.Fatalf("idle queue depth = %d", d)
	}
}

// TestExecutorDisabledTraceOverhead guards the tentpole's overhead
// claim in a CI-friendly form: binding a tracer that stays disabled
// must not measurably slow Execute (the hot path only gains one atomic
// load per run). Medians over several trials keep scheduler noise out;
// the threshold is deliberately loose — the acceptance benchmark is the
// precise check, this catches gross regressions like accidental
// always-on recording.
func TestExecutorDisabledTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	old := tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)
	g := tensor.NewRNG(73)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	_, prog := compile(t, smallCNN(g), calib)
	x := g.Uniform(0, 1, 8, 3, 8, 8)

	build := func(opts ...engine.ExecOption) *engine.Executor {
		ex, err := engine.NewExecutor(prog, x.Shape, append([]engine.ExecOption{
			engine.WithKernels(engine.FastKernels())}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Execute(x); err != nil { // warm scratch + prepack
			t.Fatal(err)
		}
		return ex
	}
	measure := func(ex *engine.Executor) time.Duration {
		const trials, iters = 5, 30
		times := make([]time.Duration, trials)
		for tr := range times {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := ex.Execute(x); err != nil {
					t.Fatal(err)
				}
			}
			times[tr] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[trials/2]
	}

	plain := build()
	traced := build(engine.WithTracer(trace.New(trace.Config{})))
	base := measure(plain)
	withRing := measure(traced)
	if withRing > base+base/3*2 { // 66% headroom: catches always-on recording, not jitter
		t.Fatalf("disabled tracing slowed Execute: %v -> %v", base, withRing)
	}
}
