package engine

// Sparsity-aware prepacking: the pruning toolkit (internal/prune) leaves
// exact integer zeros in exported conv/linear weights, and a zero weight
// contributes exactly zero to an integer dot product — so a kernel that
// never visits it produces bit-identical accumulators in the same
// per-channel accumulation order, just without the identity terms. The
// bind-time analysis here scans each instruction's weights once and
// records, per weight panel (panelW output channels), which K positions
// are live; the prepacked GEMM inner loops (int32-panel and SWAR) then
// iterate compressed live-K lists instead of the full K range
// (CSR-over-panels). Weights with N:M group structure (prune.NM) take a
// packed microkernel that stores only the n live values + 2-bit indices
// per m-group. The same analysis feeds the cost model: modeled MACs for
// conv/linear scale by the effective-MAC fraction of the strategy the
// fast kernels bind, so wave formation and the BENCH_profile calibration
// stay honest on sparse models.
//
// Liveness granularity is the channel *pair*, matching the SWAR lane
// pairing: a K position is dead for pair (r, r+1) of a panel when both
// channels' weights are zero there. The int32-panel kernel uses the same
// pair lists so one analysis serves both paths. At unstructured sparsity
// s the expected pair-dead fraction is s², e.g. ~49% of inner-loop trips
// skipped at 70% sparsity.
//
// SWAR correction under skipping: the dense path recovers the raw dot
// product as S = S' − bw·ΣA'(site) − ba·Σw(channel), with ΣA' the
// full-K per-site biased byte sum. A skipped (dead) position j still
// packs w' = bw (raw 0 + bias), so omitting it drops bw·a'_j from S'
// and from the correction alike:
//
//	S = S'_live − bw·ΣA'_live(site, pair) − ba·Σw(channel),
//
// where ΣA'_live is accumulated inside the inner loop over the pair's
// live list (live sets differ per pair, so the gather-time full sum no
// longer applies). ba·Σw is unchanged — dead positions have raw w = 0.
// Lane legality tightens to maxPairLive·aSpan·wSpan ≤ 2³²−1, so weights
// whose full-K biased sum would overflow a lane can still take the SWAR
// path once pruned (storageInfo.swarSparse).

import (
	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

// sparseStrategy is the sparse-kernel decision for one instruction.
type sparseStrategy uint8

const (
	spDense sparseStrategy = iota // no sparse kernel; effective MACs = dense
	spSkip                        // pair-granular zero-panel skipping
	spNM                          // N:M group-packed microkernel
)

func (s sparseStrategy) String() string {
	switch s {
	case spSkip:
		return "skip"
	case spNM:
		return "nm"
	}
	return "dense"
}

// nmM is the N:M group width the packed microkernel supports (prune.NM
// defaults to 2:4; any N ≤ 2 per aligned 4-group qualifies).
const nmM = 4

// panelSkip holds the per-panel liveness of one instruction's weights:
// a per-(panel, K) channel bitmap plus compressed live-K lists per
// channel pair, shared read-only by every executor bound to the program.
type panelSkip struct {
	// mask[pb*k+j] bit r is set when channel pb·panelW+r has a nonzero
	// weight at position j.
	mask []uint8
	// liveA/liveB concatenate each panel's live positions for channel
	// pairs (0,1) and (2,3); offA/offB (length np+1) delimit panels.
	liveA, liveB []int32
	offA, offB   []int32
	// maxPairLive is the largest live count over all (panel, pair)
	// streams — the K that bounds the sparse SWAR lane sums.
	maxPairLive int64
	// liveMacs counts channel-MAC positions the pair-skipping kernels
	// execute per output site; denseMacs = o·k.
	liveMacs, denseMacs int64
	// csrEnt/csrOff are the channel-granular CSR form: per output
	// channel, interleaved (position, weight) int32 pairs in increasing
	// position order; csrOff (length o+1) counts entries, so channel
	// oc's stream is csrEnt[2·csrOff[oc] : 2·csrOff[oc+1]]. The typed
	// int32 kernels use this form — a channel skips every one of its own
	// zeros (fraction s), where the lane-paired lists only skip
	// positions dead for both channels of a pair (fraction s²).
	csrEnt, csrOff []int32
	// csrMacs counts channel-MAC positions the CSR kernels execute per
	// output site (= total nonzero weights).
	csrMacs int64
}

// nmPack is the N:M-packed form of one instruction's weights: per output
// channel, per aligned K-group of nmM, n packed slots e = w·4 + idx —
// the int8-range weight in the upper bits (recovered by arithmetic
// shift) and the 2-bit in-group index in the lower two (masked &3 at
// use, which proves the group bound to the compiler). One sequential
// int32 stream per channel, half the volume of the CSR form. Groups
// with fewer than n nonzeros pad with e = 0 (weight 0 at index 0) — an
// exact-zero contribution, preserving bit-identity.
type nmPack struct {
	n, groups int
	packed    []int32
}

// instrSparsity is the cached per-instruction sparsity analysis.
type instrSparsity struct {
	strategy       sparseStrategy
	wZeros, wCount int64
	// maxRowNnz is the largest per-output-channel nonzero count — the
	// effective K for the int32 accumulator bound (zero weights never
	// contribute to any partial sum, dense or sparse kernel alike).
	maxRowNnz int64
	// maxPairLive bounds the sparse SWAR lane sums (0 when no skip
	// structure was built).
	maxPairLive int64
	// effNum/effDen is the effective-MAC fraction of the strategy's
	// kernel (liveMacs/denseMacs for skip, n/m for N:M, 1/1 for dense).
	effNum, effDen int64
	skip           *panelSkip
	nm             *nmPack
}

// sparsity resolves (and caches) the per-instruction weight-sparsity
// analysis. Like the storage plan it assumes weights are immutable after
// compile; hot reloads build a fresh Program (and the prepack cache is
// additionally keyed by weight fingerprint, see sharedKey).
func (p *Program) sparsity() []instrSparsity {
	packInitMu.Lock()
	sp := p.spar
	packInitMu.Unlock()
	if sp != nil {
		return sp
	}
	sp = make([]instrSparsity, len(p.Instrs))
	for i := range p.Instrs {
		sp[i] = analyzeInstr(&p.Instrs[i])
	}
	packInitMu.Lock()
	if p.spar == nil {
		p.spar = sp
	} else {
		sp = p.spar
	}
	packInitMu.Unlock()
	return sp
}

// Per-executed-MAC cost constants of the GEMM inner loops, measured by
// BenchmarkSparseKernels on the SWAR reference machine (relative units;
// dense SWAR executes two channel-MACs per multiply, the sparse loops
// pay stream/indirection overhead per visited position). sparsePlan runs
// an argmin over these to bind the modeled-fastest legal kernel per
// instruction. The measured per-MAC costs of the three sparse loops land
// within noise of each other (≈20 units), so what separates them is how
// many MACs each executes: channel-granular CSR visits exactly the
// nonzeros (skips the full zero fraction s), the pair live lists visit
// the union of each channel pair's positions (s² on independent
// patterns, collapsing to s when the pair shares positions), and the N:M
// pack visits n/M. Ties are broken toward the smaller memory stream —
// see sparsePlan.
const (
	costDenseSwar = 10 // per dense MAC, lane-packed dual kernel
	costDenseI32  = 21 // per dense MAC, int32 panel kernel
	costPairSwar  = 20 // per live pair-list MAC, skipping SWAR kernel
	costCSR       = 20 // per nonzero MAC, channel CSR kernel
)

// minSkipSparsity is the weight-sparsity floor below which analyzeInstr
// builds no CSR/pair structure at all: the modeled win over the dense
// panel is marginal there (≤1.4x against the int32 panel, a loss against
// the SWAR kernel until s > 0.5), not worth duplicating the weights into
// an indexed form the plan would rarely bind.
const minSkipSparsity = 0.25

// Per-slot MAC cost of the N:M kernel, indexed by n. The per-group
// decode (2-bit index extract) amortizes over n entries, so 1:4 runs
// hotter per slot than 2:4, where the pack measures even with CSR and
// wins the tie-break on its halved weight stream (one packed word per
// nonzero vs an interleaved position/value pair).
var costNM = [nmM + 1]int64{1: 21, 2: 20}

// sparsePick names the kernel family sparsePlan selects.
type sparsePick uint8

const (
	pickDense sparsePick = iota // dense kernels (SWAR if legal, else panel)
	pickCSR
	pickNM
	pickPairSwar
)

// sparsePlan picks the cheapest legal GEMM for an instruction with the
// given analysis, using the measured per-MAC cost table, and returns the
// executed-MAC fraction (effNum/effDen of dense) of the choice. The
// legality flags mirror the executor's: typed (int32-accumulate path),
// swar (dense full-K lane bound), swarSparse (live-K lane bound).
func sparsePlan(sp *instrSparsity, typed, swar, swarSparse bool) (sparsePick, int64, int64) {
	dense := sp.wCount
	if !typed || dense == 0 || (sp.skip == nil && sp.nm == nil) {
		return pickDense, 1, 1
	}
	pick, num, den := pickDense, int64(1), int64(1)
	cost := dense * costDenseI32
	if swar {
		cost = dense * costDenseSwar
	}
	// Sparse candidates are tried in order of decreasing memory stream
	// and each takes the bind at equal-or-better modeled time, so ties
	// resolve toward the lighter-traffic kernel: the pair-skipping SWAR
	// loop reads byte panels (a quarter of the CSR path's int32
	// activation traffic), and the N:M pack halves the weight words.
	if sp.skip != nil {
		if c := sp.skip.csrMacs * costCSR; c <= cost {
			pick, num, den, cost = pickCSR, sp.skip.csrMacs, dense, c
		}
		if swar || swarSparse {
			if c := sp.skip.liveMacs * costPairSwar; c <= cost {
				pick, num, den, cost = pickPairSwar, sp.skip.liveMacs, dense, c
			}
		}
	}
	if sp.nm != nil {
		if c := dense * int64(sp.nm.n) * costNM[sp.nm.n] / nmM; c <= cost {
			pick, num, den = pickNM, int64(sp.nm.n), nmM
		}
	}
	return pick, num, den
}

// analyzeInstr scans one instruction's weights and builds every sparse
// structure worth binding — the channel CSR / pair live lists when the
// modeled CSR time beats the dense int32 panel, and the N:M pack when
// the weights carry group structure. sparsePlan later picks among them
// per the legality flags; near-dense weights build nothing and stay on
// the straight-line dense loops.
func analyzeInstr(it *Instr) instrSparsity {
	sp := instrSparsity{effNum: 1, effDen: 1}
	if (it.Kind != OpConv && it.Kind != OpLinear) || it.W == nil || it.W.Numel() == 0 {
		return sp
	}
	o := it.W.Shape[0]
	k := it.W.Numel() / o
	w := it.W.Data
	var nonzero int64
	for oc := 0; oc < o; oc++ {
		var nnz int64
		for _, v := range w[oc*k : (oc+1)*k] {
			if v != 0 {
				nnz++
			}
		}
		nonzero += nnz
		if nnz > sp.maxRowNnz {
			sp.maxRowNnz = nnz
		}
	}
	sp.wCount = int64(o) * int64(k)
	sp.wZeros = sp.wCount - nonzero
	if sp.wZeros == 0 || (it.Kind == OpConv && it.P.Groups > 1) {
		// Dense weights, or a grouped conv (the direct kernels have no
		// skip structure): effective = dense.
		return sp
	}
	if nonzero*costCSR < sp.wCount*costDenseI32 &&
		float64(sp.wZeros) >= minSkipSparsity*float64(sp.wCount) {
		ps := buildPanelSkip(w, o, k)
		sp.skip = ps
		sp.maxPairLive = ps.maxPairLive
		sp.strategy = spSkip
		sp.effNum, sp.effDen = ps.csrMacs, ps.denseMacs
	}
	// N:M detection: K divisible by the group width and every aligned
	// group of every row holds ≤ n nonzeros, for the smallest n ∈ {1, 2}.
	if nmN := detectNM(w, o, k); nmN > 0 {
		sp.nm = buildNMPack(w, o, k, nmN)
		sp.strategy = spNM
		sp.effNum, sp.effDen = int64(nmN), nmM
	}
	return sp
}

// buildPanelSkip derives the per-panel channel bitmap and the compressed
// pair live lists from row-major [o][k] weights.
func buildPanelSkip(w []int64, o, k int) *panelSkip {
	np := (o + panelW - 1) / panelW
	ps := &panelSkip{
		mask:      make([]uint8, np*k),
		offA:      make([]int32, np+1),
		offB:      make([]int32, np+1),
		csrOff:    make([]int32, o+1),
		denseMacs: int64(o) * int64(k),
	}
	for oc := 0; oc < o; oc++ {
		for j, v := range w[oc*k : (oc+1)*k] {
			if v != 0 {
				ps.csrEnt = append(ps.csrEnt, int32(j), int32(v))
			}
		}
		ps.csrOff[oc+1] = int32(len(ps.csrEnt) / 2)
	}
	ps.csrMacs = int64(len(ps.csrEnt) / 2)
	for pb := 0; pb < np; pb++ {
		mrow := ps.mask[pb*k : (pb+1)*k]
		oc0 := pb * panelW
		for r := 0; r < panelW && oc0+r < o; r++ {
			row := w[(oc0+r)*k : (oc0+r+1)*k]
			bit := uint8(1) << r
			for j, v := range row {
				if v != 0 {
					mrow[j] |= bit
				}
			}
		}
		chA := o - oc0
		if chA > 2 {
			chA = 2
		}
		chB := o - oc0 - 2
		if chB < 0 {
			chB = 0
		} else if chB > 2 {
			chB = 2
		}
		for j, m := range mrow {
			if m&0b0011 != 0 {
				ps.liveA = append(ps.liveA, int32(j))
			}
			if m&0b1100 != 0 {
				ps.liveB = append(ps.liveB, int32(j))
			}
		}
		nA := int64(len(ps.liveA)) - int64(ps.offA[pb])
		nB := int64(len(ps.liveB)) - int64(ps.offB[pb])
		ps.offA[pb+1] = int32(len(ps.liveA))
		ps.offB[pb+1] = int32(len(ps.liveB))
		ps.liveMacs += nA*int64(chA) + nB*int64(chB)
		if chA > 0 && nA > ps.maxPairLive {
			ps.maxPairLive = nA
		}
		if chB > 0 && nB > ps.maxPairLive {
			ps.maxPairLive = nB
		}
	}
	return ps
}

// detectNM reports the smallest n ∈ {1, 2} such that every aligned
// nmM-group of every weight row has ≤ n nonzeros, or 0 when the weights
// have no exploitable N:M structure (K not divisible, or too dense).
func detectNM(w []int64, o, k int) int {
	if k%nmM != 0 {
		return 0
	}
	need := 0
	for oc := 0; oc < o; oc++ {
		row := w[oc*k : (oc+1)*k]
		for g := 0; g < k; g += nmM {
			nnz := 0
			for _, v := range row[g : g+nmM] {
				if v != 0 {
					nnz++
				}
			}
			if nnz > need {
				need = nnz
				if need > 2 {
					return 0
				}
			}
		}
	}
	if need == 0 {
		need = 1 // all-zero weights: pack a single zero slot per group
	}
	return need
}

// buildNMPack packs row-major [o][k] weights into the N:M microkernel
// layout: per channel, per K-group, n packed (weight·4 + index) slots in
// increasing index order — accumulation order matches the dense loop
// minus its zero terms.
func buildNMPack(w []int64, o, k, n int) *nmPack {
	groups := k / nmM
	nm := &nmPack{
		n:      n,
		groups: groups,
		packed: make([]int32, o*groups*n),
	}
	for oc := 0; oc < o; oc++ {
		for g := 0; g < groups; g++ {
			p := (oc*groups + g) * n
			t := 0
			for j := 0; j < nmM && t < n; j++ {
				if v := w[oc*k+g*nmM+j]; v != 0 {
					nm.packed[p+t] = int32(v)<<2 | int32(j)
					t++
				}
			}
		}
	}
	return nm
}

// sparseInstr returns the instruction's sparsity analysis when the
// registry exploits sparsity and a sparse kernel applies, nil otherwise.
func (ex *Executor) sparseInstr(idx int) *instrSparsity {
	if !ex.reg.sparse {
		return nil
	}
	sp := &ex.prog.sparsity()[idx]
	if sp.strategy == spDense {
		return nil
	}
	return sp
}

// sparsePickFor resolves the cost-driven kernel choice for instruction
// idx under this executor's registry and storage plan.
func (ex *Executor) sparsePickFor(idx int) sparsePick {
	sp := ex.sparseInstr(idx)
	if sp == nil {
		return pickDense
	}
	pick, _, _ := sparsePlan(sp, ex.typedInstr(idx), ex.swarInstr(idx), ex.swarSparseInstr(idx))
	return pick
}

// swarSparseInstr reports whether instruction idx may take the SWAR path
// under the *sparse* lane bound (live-K), even when the dense full-K
// bound fails. Only the skipping kernel is legal then.
func (ex *Executor) swarSparseInstr(idx int) bool {
	return ex.reg.swar && ex.reg.sparse && ex.stor != nil && ex.stor.swarSparse[idx]
}

// gemmPanels32CSR is the channel-granular sparse int32 microkernel: each
// output channel streams its own (position, weight) entries, so it skips
// the full weight-sparsity fraction s (the pair lists only skip s²).
// Entries stream sequentially; only the activation loads are indirect.
// Four sites per step amortize each entry load over four MACs. Writes
// the same [channel][site] accumulator layout as gemmPanels32.
func gemmPanels32CSR(acc, panel []int32, sk *panelSkip, m, colW, o int) {
	for oc := 0; oc < o; oc++ {
		es := sk.csrEnt[2*sk.csrOff[oc] : 2*sk.csrOff[oc+1]]
		out := acc[oc*m : (oc+1)*m]
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := panel[i*colW:][:colW]
			a1 := panel[(i+1)*colW:][:colW]
			a2 := panel[(i+2)*colW:][:colW]
			a3 := panel[(i+3)*colW:][:colW]
			var c0, c1, c2, c3 int32
			e := 0
			for ; e+4 <= len(es); e += 4 {
				j0 := int(es[e])
				w0 := es[e+1]
				j1 := int(es[e+2])
				w1 := es[e+3]
				c0 += a0[j0]*w0 + a0[j1]*w1
				c1 += a1[j0]*w0 + a1[j1]*w1
				c2 += a2[j0]*w0 + a2[j1]*w1
				c3 += a3[j0]*w0 + a3[j1]*w1
			}
			for ; e+2 <= len(es); e += 2 {
				j := int(es[e])
				w := es[e+1]
				c0 += a0[j] * w
				c1 += a1[j] * w
				c2 += a2[j] * w
				c3 += a3[j] * w
			}
			out[i], out[i+1], out[i+2], out[i+3] = c0, c1, c2, c3
		}
		for ; i < m; i++ {
			a0 := panel[i*colW:][:colW]
			var c0 int32
			for e := 0; e+2 <= len(es); e += 2 {
				c0 += a0[es[e]] * es[e+1]
			}
			out[i] = c0
		}
	}
}

// linPanelsCSR runs the channel-granular sparse GEMM for the typed
// linear, widening activations at use exactly like the dense loop.
// Writes the same [site][channel] accumulator layout as linTypedJob.
func linPanelsCSR[A tensor.Elem](acc []int32, xs []A, sk *panelSkip, r0, m, k, o int) {
	for oc := 0; oc < o; oc++ {
		es := sk.csrEnt[2*sk.csrOff[oc] : 2*sk.csrOff[oc+1]]
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := xs[(r0+i)*k : (r0+i+1)*k]
			a1 := xs[(r0+i+1)*k : (r0+i+2)*k]
			a2 := xs[(r0+i+2)*k : (r0+i+3)*k]
			a3 := xs[(r0+i+3)*k : (r0+i+4)*k]
			var c0, c1, c2, c3 int32
			e := 0
			for ; e+4 <= len(es); e += 4 {
				j0 := int(es[e])
				w0 := es[e+1]
				j1 := int(es[e+2])
				w1 := es[e+3]
				c0 += int32(a0[j0])*w0 + int32(a0[j1])*w1
				c1 += int32(a1[j0])*w0 + int32(a1[j1])*w1
				c2 += int32(a2[j0])*w0 + int32(a2[j1])*w1
				c3 += int32(a3[j0])*w0 + int32(a3[j1])*w1
			}
			for ; e+2 <= len(es); e += 2 {
				j := int(es[e])
				w := es[e+1]
				c0 += int32(a0[j]) * w
				c1 += int32(a1[j]) * w
				c2 += int32(a2[j]) * w
				c3 += int32(a3[j]) * w
			}
			acc[i*o+oc] = c0
			acc[(i+1)*o+oc] = c1
			acc[(i+2)*o+oc] = c2
			acc[(i+3)*o+oc] = c3
		}
		for ; i < m; i++ {
			a0 := xs[(r0+i)*k : (r0+i+1)*k]
			var c0 int32
			for e := 0; e+2 <= len(es); e += 2 {
				c0 += int32(a0[es[e]]) * es[e+1]
			}
			acc[i*o+oc] = c0
		}
	}
}

// gemmPanelsNM is the N:M-packed int32 microkernel: each output channel
// streams its packed slots (one sequential int32 per executed multiply),
// selecting the activation inside the aligned group by the 2-bit index.
// Four sites per step amortize each slot load over four MACs; at 2:4 the
// multiply count is half the dense kernel's. Writes the same
// [channel][site] accumulator layout as gemmPanels32.
func gemmPanelsNM(acc, panel []int32, nm *nmPack, m, colW, o int) {
	n, groups := nm.n, nm.groups
	for oc := 0; oc < o; oc++ {
		pk := nm.packed[oc*groups*n : (oc+1)*groups*n]
		out := acc[oc*m : (oc+1)*m]
		i := 0
		for ; i+8 <= m; i += 8 {
			a0 := panel[i*colW:][:colW]
			a1 := panel[(i+1)*colW:][:colW]
			a2 := panel[(i+2)*colW:][:colW]
			a3 := panel[(i+3)*colW:][:colW]
			a4 := panel[(i+4)*colW:][:colW]
			a5 := panel[(i+5)*colW:][:colW]
			a6 := panel[(i+6)*colW:][:colW]
			a7 := panel[(i+7)*colW:][:colW]
			var c0, c1, c2, c3, c4, c5, c6, c7 int32
			if n == 2 {
				for g := 0; g < groups; g++ {
					e0 := pk[g*2]
					e1 := pk[g*2+1]
					j0 := g*nmM + int(e0&3)
					j1 := g*nmM + int(e1&3)
					w0 := e0 >> 2
					w1 := e1 >> 2
					c0 += a0[j0]*w0 + a0[j1]*w1
					c1 += a1[j0]*w0 + a1[j1]*w1
					c2 += a2[j0]*w0 + a2[j1]*w1
					c3 += a3[j0]*w0 + a3[j1]*w1
					c4 += a4[j0]*w0 + a4[j1]*w1
					c5 += a5[j0]*w0 + a5[j1]*w1
					c6 += a6[j0]*w0 + a6[j1]*w1
					c7 += a7[j0]*w0 + a7[j1]*w1
				}
			} else {
				for g := 0; g < groups; g++ {
					e0 := pk[g]
					j0 := g*nmM + int(e0&3)
					w0 := e0 >> 2
					c0 += a0[j0] * w0
					c1 += a1[j0] * w0
					c2 += a2[j0] * w0
					c3 += a3[j0] * w0
					c4 += a4[j0] * w0
					c5 += a5[j0] * w0
					c6 += a6[j0] * w0
					c7 += a7[j0] * w0
				}
			}
			out[i], out[i+1], out[i+2], out[i+3] = c0, c1, c2, c3
			out[i+4], out[i+5], out[i+6], out[i+7] = c4, c5, c6, c7
		}
		for ; i+4 <= m; i += 4 {
			a0 := panel[i*colW:][:colW]
			a1 := panel[(i+1)*colW:][:colW]
			a2 := panel[(i+2)*colW:][:colW]
			a3 := panel[(i+3)*colW:][:colW]
			var c0, c1, c2, c3 int32
			if n == 2 {
				for g := 0; g < groups; g++ {
					e0 := pk[g*2]
					e1 := pk[g*2+1]
					j0 := g*nmM + int(e0&3)
					j1 := g*nmM + int(e1&3)
					w0 := e0 >> 2
					w1 := e1 >> 2
					c0 += a0[j0]*w0 + a0[j1]*w1
					c1 += a1[j0]*w0 + a1[j1]*w1
					c2 += a2[j0]*w0 + a2[j1]*w1
					c3 += a3[j0]*w0 + a3[j1]*w1
				}
			} else {
				for g := 0; g < groups; g++ {
					e0 := pk[g]
					j0 := g*nmM + int(e0&3)
					w0 := e0 >> 2
					c0 += a0[j0] * w0
					c1 += a1[j0] * w0
					c2 += a2[j0] * w0
					c3 += a3[j0] * w0
				}
			}
			out[i], out[i+1], out[i+2], out[i+3] = c0, c1, c2, c3
		}
		for ; i < m; i++ {
			a0 := panel[i*colW:][:colW]
			var c0 int32
			for g := 0; g < groups; g++ {
				for t := 0; t < n; t++ {
					e := pk[g*n+t]
					c0 += a0[g*nmM+int(e&3)] * (e >> 2)
				}
			}
			out[i] = c0
		}
	}
}

// linPanelsNM runs the N:M-packed GEMM for the typed linear, widening
// activations at use. Writes the same [site][channel] accumulator layout
// as linTypedJob.
func linPanelsNM[A tensor.Elem](acc []int32, xs []A, nm *nmPack, r0, m, k, o int) {
	n, groups := nm.n, nm.groups
	for oc := 0; oc < o; oc++ {
		pk := nm.packed[oc*groups*n : (oc+1)*groups*n]
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := xs[(r0+i)*k : (r0+i+1)*k]
			a1 := xs[(r0+i+1)*k : (r0+i+2)*k]
			a2 := xs[(r0+i+2)*k : (r0+i+3)*k]
			a3 := xs[(r0+i+3)*k : (r0+i+4)*k]
			var c0, c1, c2, c3 int32
			if n == 2 {
				for g := 0; g < groups; g++ {
					e0 := pk[g*2]
					e1 := pk[g*2+1]
					j0 := g*nmM + int(e0&3)
					j1 := g*nmM + int(e1&3)
					w0 := e0 >> 2
					w1 := e1 >> 2
					c0 += int32(a0[j0])*w0 + int32(a0[j1])*w1
					c1 += int32(a1[j0])*w0 + int32(a1[j1])*w1
					c2 += int32(a2[j0])*w0 + int32(a2[j1])*w1
					c3 += int32(a3[j0])*w0 + int32(a3[j1])*w1
				}
			} else {
				for g := 0; g < groups; g++ {
					e0 := pk[g]
					j := g*nmM + int(e0&3)
					w := e0 >> 2
					c0 += int32(a0[j]) * w
					c1 += int32(a1[j]) * w
					c2 += int32(a2[j]) * w
					c3 += int32(a3[j]) * w
				}
			}
			acc[i*o+oc] = c0
			acc[(i+1)*o+oc] = c1
			acc[(i+2)*o+oc] = c2
			acc[(i+3)*o+oc] = c3
		}
		for ; i < m; i++ {
			a0 := xs[(r0+i)*k : (r0+i+1)*k]
			var c0 int32
			for g := 0; g < groups; g++ {
				for t := 0; t < n; t++ {
					e := pk[g*n+t]
					c0 += int32(a0[g*nmM+int(e&3)]) * (e >> 2)
				}
			}
			acc[i*o+oc] = c0
		}
	}
}

// gemmPanelsSwarSparse is the pair-skipping lane-packed microkernel:
// same contract as gemmPanelsSwar, but each pair word stream iterates
// its live list and accumulates its own per-site live byte sums (the
// skipping correction; see the file comment). Four sites per step keep
// the packed-weight reuse of the dense kernel; the pair streams run as
// separate loops since their live sets differ.
func gemmPanelsSwarSparse(acc []int32, panel []uint8, wps []uint64, sk *panelSkip, bcorr []int64, bw int64, m, colW, o, np, cs, rs int) {
	for pb := 0; pb < np; pb++ {
		wp := wps[pb*colW*swarLanes : (pb+1)*colW*swarLanes]
		wa := wp[:colW]
		wb := wp[colW:][:colW]
		la := sk.liveA[sk.offA[pb]:sk.offA[pb+1]]
		lb := sk.liveB[sk.offB[pb]:sk.offB[pb+1]]
		oc0 := pb * panelW
		nch := o - oc0
		if nch > panelW {
			nch = panelW
		}
		i := 0
		for ; i+4 <= m; i += 4 {
			a0 := panel[i*colW:][:colW]
			a1 := panel[(i+1)*colW:][:colW]
			a2 := panel[(i+2)*colW:][:colW]
			a3 := panel[(i+3)*colW:][:colW]
			var p00, p10, p20, p30, s00, s10, s20, s30 uint64
			for _, j := range la {
				jj := int(j)
				w01 := wa[jj]
				av0 := uint64(a0[jj])
				av1 := uint64(a1[jj])
				av2 := uint64(a2[jj])
				av3 := uint64(a3[jj])
				p00 += av0 * w01
				p10 += av1 * w01
				p20 += av2 * w01
				p30 += av3 * w01
				s00 += av0
				s10 += av1
				s20 += av2
				s30 += av3
			}
			var p01, p11, p21, p31, s01, s11, s21, s31 uint64
			for _, j := range lb {
				jj := int(j)
				w23 := wb[jj]
				av0 := uint64(a0[jj])
				av1 := uint64(a1[jj])
				av2 := uint64(a2[jj])
				av3 := uint64(a3[jj])
				p01 += av0 * w23
				p11 += av1 * w23
				p21 += av2 * w23
				p31 += av3 * w23
				s01 += av0
				s11 += av1
				s21 += av2
				s31 += av3
			}
			storeSwarSiteSparse(acc, bcorr, oc0, nch, i, cs, rs, bw, s00, s01, p00, p01)
			storeSwarSiteSparse(acc, bcorr, oc0, nch, i+1, cs, rs, bw, s10, s11, p10, p11)
			storeSwarSiteSparse(acc, bcorr, oc0, nch, i+2, cs, rs, bw, s20, s21, p20, p21)
			storeSwarSiteSparse(acc, bcorr, oc0, nch, i+3, cs, rs, bw, s30, s31, p30, p31)
		}
		for ; i < m; i++ {
			a0 := panel[i*colW:][:colW]
			var p00, p01, s00, s01 uint64
			for _, j := range la {
				jj := int(j)
				av0 := uint64(a0[jj])
				p00 += av0 * wa[jj]
				s00 += av0
			}
			for _, j := range lb {
				jj := int(j)
				av0 := uint64(a0[jj])
				p01 += av0 * wb[jj]
				s01 += av0
			}
			storeSwarSiteSparse(acc, bcorr, oc0, nch, i, cs, rs, bw, s00, s01, p00, p01)
		}
	}
}

// storeSwarSiteSparse extracts up to panelW lanes of one site with
// per-pair live byte-sum corrections (lanes 0,1 use the pair-A sum,
// lanes 2,3 the pair-B sum) and the per-channel ba·Σw correction.
func storeSwarSiteSparse(acc []int32, bcorr []int64, oc0, nch, i, cs, rs int, bw int64, sA, sB uint64, p01, p23 uint64) {
	base := oc0*cs + i*rs
	cA := bw * int64(sA)
	cB := bw * int64(sB)
	if nch == panelW {
		bc := bcorr[oc0:][:panelW]
		acc[base] = int32(intmath.LaneLo(p01) - cA - bc[0])
		acc[base+cs] = int32(intmath.LaneHi(p01) - cA - bc[1])
		acc[base+2*cs] = int32(intmath.LaneLo(p23) - cB - bc[2])
		acc[base+3*cs] = int32(intmath.LaneHi(p23) - cB - bc[3])
		return
	}
	lanes := [panelW]int64{intmath.LaneLo(p01), intmath.LaneHi(p01), intmath.LaneLo(p23), intmath.LaneHi(p23)}
	corr := [panelW]int64{cA, cA, cB, cB}
	for r := 0; r < nch; r++ {
		acc[base+r*cs] = int32(lanes[r] - corr[r] - bcorr[oc0+r])
	}
}

// SparsityInfo is the exported per-instruction view of the weight-
// sparsity analysis — what the fusion summary, MemStats, and /metrics
// surfaces report.
type SparsityInfo struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Kind  OpKind `json:"kind"`
	// Strategy is the bound-kernel selection under a sparsity-aware
	// registry: "dense", "skip" (pair-granular live lists), or "nm"
	// (N:M-packed values + indices).
	Strategy string `json:"strategy"`
	// WeightSparsity is the fraction of exactly-zero weights.
	WeightSparsity float64 `json:"weight_sparsity"`
	// SkipFraction is the fraction of dense MACs the sparse strategy
	// skips (1 − effective/dense); 0 for the dense strategy.
	SkipFraction float64 `json:"skip_fraction"`
	// NMN/NMM name the detected N:M structure (0/0 when the weights
	// carry none). Detection is independent of Strategy: a registry
	// without the SWAR lane kernel binds the N:M pack where the full
	// registry's dual-lane dense kernel models faster.
	NMN int `json:"nm_n,omitempty"`
	NMM int `json:"nm_m,omitempty"`
}

// sparseEff resolves the executed-MAC fraction of instruction i's
// planned kernel under the full fast registry (typed + SWAR + sparse) —
// the registry-independent modeling assumption the cost model and the
// reported stats share. Falls back to 1/1 when the storage plan cannot
// be derived.
func (p *Program) sparseEff(i int) (pick sparsePick, effNum, effDen int64) {
	sp := &p.sparsity()[i]
	if sp.strategy == spDense {
		return pickDense, 1, 1
	}
	st, err := p.storage()
	if err != nil {
		return pickDense, 1, 1
	}
	return sparsePlan(sp, st.typed[i], st.swar[i], st.swarSparse[i])
}

// SparsityReport lists the sparsity analysis of every conv/linear
// instruction, in program order. Strategy and SkipFraction reflect the
// kernel the cost-driven plan binds under a sparsity-aware fast
// registry ("dense" when the dense kernels model faster despite zeros).
func (p *Program) SparsityReport() []SparsityInfo {
	spar := p.sparsity()
	var out []SparsityInfo
	for i := range p.Instrs {
		it := &p.Instrs[i]
		if it.Kind != OpConv && it.Kind != OpLinear {
			continue
		}
		sp := spar[i]
		pick, num, den := p.sparseEff(i)
		info := SparsityInfo{
			Index: i,
			Name:  it.Name,
			Kind:  it.Kind,
		}
		switch pick {
		case pickNM:
			info.Strategy = "nm"
		case pickCSR, pickPairSwar:
			info.Strategy = "skip"
		default:
			info.Strategy = "dense"
		}
		if sp.nm != nil {
			info.NMN, info.NMM = sp.nm.n, nmM
		}
		if sp.wCount > 0 {
			info.WeightSparsity = float64(sp.wZeros) / float64(sp.wCount)
		}
		if den > 0 {
			info.SkipFraction = 1 - float64(num)/float64(den)
		}
		out = append(out, info)
	}
	return out
}

// ModeledMacs evaluates the dense and effective multiply-accumulate
// counts of one run at inShape (full shape including the batch
// dimension). Effective MACs scale each conv/linear by its strategy's
// live fraction — the same rule instrWorkNs applies — so
// dense/effective is exactly the work ratio the sparse kernels are
// modeled to save.
func (p *Program) ModeledMacs(inShape []int) (dense, effective int64, err error) {
	shapes, err := p.InferShapes(inShape)
	if err != nil {
		return 0, 0, err
	}
	for i := range p.Instrs {
		it := &p.Instrs[i]
		macs := instrDenseMacs(it, shapes)
		if macs == 0 {
			continue
		}
		dense += macs
		if it.Kind == OpConv || it.Kind == OpLinear {
			_, num, den := p.sparseEff(i)
			macs = macs * num / den
		}
		effective += macs
	}
	return dense, effective, nil
}

// SparsityStats aggregates the program-level sparsity summary: the
// weight-count-weighted zero fraction across all conv/linear weights,
// and the modeled MAC skip fraction (1 − effective/dense) at the
// compiled single-sample input shape. The skip fraction is 0 when the
// program carries no InShape (pre-PR-3 checkpoints) — weight sparsity
// is still reported.
func (p *Program) SparsityStats() (weightSparsity, skipFraction float64) {
	var zeros, count int64
	for _, sp := range p.sparsity() {
		zeros += sp.wZeros
		count += sp.wCount
	}
	if count > 0 {
		weightSparsity = float64(zeros) / float64(count)
	}
	if len(p.InShape) > 0 {
		in := append([]int{1}, p.InShape...)
		if dense, eff, err := p.ModeledMacs(in); err == nil && dense > 0 {
			skipFraction = 1 - float64(eff)/float64(dense)
		}
	}
	return weightSparsity, skipFraction
}
