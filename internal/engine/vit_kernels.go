package engine

// Transformer kernels: matmul, layernorm, softmax, gelu, head
// split/merge, patch-embed token assembly, and class-token slice. All of
// them stage narrow storage through int64 chunks (ReadInt64/WriteInt64),
// run the exact integer funnels the fuse layers use (Requantize,
// LUT.Lookup, LUTSoftmax.ApplyRow, ISqrt/RoundDiv), and are therefore
// bit-identical across every registry and storage dtype. The batched
// matmul — the only hot loop among them — additionally has a prepacked
// parallel path (per-slot staging, one job per batch-head) bound by
// FastKernels; registries without the prep hook run it serially.

import (
	"fmt"

	"torch2chip/internal/intmath"
	"torch2chip/internal/tensor"
)

func registerViTKernels(r *Registry) {
	r.kernels[OpMatMul] = kernelMatMul
	r.kernels[OpLayerNorm] = kernelLayerNorm
	r.kernels[OpSoftmax] = kernelSoftmax
	r.kernels[OpGelu] = kernelGelu
	r.kernels[OpSplitHeads] = kernelSplitHeads
	r.kernels[OpMergeHeads] = kernelMergeHeads
	r.kernels[OpEmbed] = kernelEmbed
	r.kernels[OpSliceCls] = kernelSliceCls
}

// mmPack is the bound state of a batched matmul: whether the batch
// entries run in parallel (the kernel reads its dimensions from the
// live tensor shapes; per-slot scratch was sized by prepMatMul).
type mmPack struct {
	parallel bool
	batches  int
}

// prepMatMul reserves per-slot staging for the parallel batched matmul.
func prepMatMul(ex *Executor, idx int, it *Instr) (any, error) {
	a := ex.plan.Shapes[it.In[0]]
	o := ex.plan.Shapes[it.Out]
	if len(a) != 3 || len(o) != 3 {
		return nil, fmt.Errorf("engine: matmul %s operands rank %d/%d, want 3", it.Name, len(a), len(o))
	}
	b, m, k, n := a[0], a[1], a[2], o[2]
	ex.NeedSlotScratch(m*k + k*n + m*n)
	return &mmPack{parallel: b*m*k*n >= 1<<14, batches: b}, nil
}

// jobs exposes the matmul as its batch-entry grid for wave execution
// (waveRunner).
func (st *mmPack) jobs(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(job, slot int), int) {
	return matMulJob(ex, it, in, out)
}

// matMulBatch computes one batch entry: ov[M,N] = requant(Σ (av−za)(bv−zb))
// with av [M,K] and bv either [N,K] (transB) or [K,N]. The zero points
// were already subtracted while staging.
func matMulBatch(ov, av, bv []int64, m, k, n int, transB bool, sc *intmath.MulQuant) {
	half, frac, zero, lo, hi := sc.Consts()
	sfx, bfx := int64(sc.ScaleFx[0]), int64(sc.BiasFx[0])
	if transB {
		for i := 0; i < m; i++ {
			ai := av[i*k : (i+1)*k]
			oi := ov[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bv[j*k : (j+1)*k]
				var s int64
				for p := range ai {
					s += ai[p] * bj[p]
				}
				oi[j] = intmath.Requantize(s, sfx, bfx, half, frac, zero, lo, hi)
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		ai := av[i*k : (i+1)*k]
		oi := ov[i*n : (i+1)*n]
		for j := range oi {
			oi[j] = 0
		}
		for p := 0; p < k; p++ {
			a := ai[p]
			if a == 0 {
				continue
			}
			bp := bv[p*n : (p+1)*n]
			for j := range oi {
				oi[j] += a * bp[j]
			}
		}
		for j, s := range oi {
			oi[j] = intmath.Requantize(s, sfx, bfx, half, frac, zero, lo, hi)
		}
	}
}

// stageShift reads count elements at off into dst, subtracting z.
func stageShift(dst []int64, t *tensor.IntTensor, off int, z int64) {
	t.ReadInt64(dst, off)
	if z != 0 {
		for i := range dst {
			dst[i] -= z
		}
	}
}

// kernelMatMul executes the batched zero-corrected matmul + requantize.
// With bound mmPack state (fast registries) batch entries run in
// parallel on per-slot scratch; otherwise serially on executor scratch.
func kernelMatMul(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	if st, ok := (*ex.KernelState(idx)).(*mmPack); ok {
		body, batches := matMulJob(ex, it, in, out)
		tensor.ParallelForSlotsN(batches, ex.maxPar, st.parallel, body)
		return
	}
	a, b := in[0], in[1]
	m, k := a.Shape[1], a.Shape[2]
	n := out.Shape[2]
	batches := a.Shape[0]
	aw, bw, ow := m*k, k*n, m*n
	if it.TransposeB {
		bw = n * k
	}
	av := ex.scratch(0, aw)
	bv := ex.scratch(1, bw)
	ov := ex.scratch(2, ow)
	for bi := 0; bi < batches; bi++ {
		stageShift(av, a, bi*aw, it.ZA)
		stageShift(bv, b, bi*bw, it.ZB)
		matMulBatch(ov, av, bv, m, k, n, it.TransposeB, it.Scaler)
		out.WriteInt64(ov, bi*ow)
	}
}

// matMulJob builds the per-batch-entry job body (staged through the
// slot's scratch) shared by the parallel loop and the serial wave
// fallback, returning the batch count alongside.
func matMulJob(ex *Executor, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) (func(bi, slot int), int) {
	a, b := in[0], in[1]
	m, k := a.Shape[1], a.Shape[2]
	n := out.Shape[2]
	batches := a.Shape[0]
	aw, bw, ow := m*k, k*n, m*n
	if it.TransposeB {
		bw = n * k
	}
	return func(bi, slot int) {
		s := ex.SlotScratch(slot)
		av, bv, ov := s[:aw], s[aw:aw+bw], s[aw+bw:aw+bw+ow]
		stageShift(av, a, bi*aw, it.ZA)
		stageShift(bv, b, bi*bw, it.ZB)
		matMulBatch(ov, av, bv, m, k, n, it.TransposeB, it.Scaler)
		out.WriteInt64(ov, bi*ow)
	}, batches
}

// kernelLayerNorm mirrors fuse.IntLayerNorm.Forward row by row: exact
// integer row statistics, Newton square root with the code-domain
// epsilon, fixed-point x̂, per-channel γ/β requantize.
func kernelLayerNorm(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	d := it.LNDim
	rows := in[0].Numel() / d
	row := ex.scratch(0, d)
	half, frac, zero, lo, hi := it.Scaler.Consts()
	for r := 0; r < rows; r++ {
		in[0].ReadInt64(row, r*d)
		var sum int64
		for _, q := range row {
			sum += q
		}
		s2 := it.LNEps + 1
		for i, q := range row {
			di := int64(d)*q - sum
			row[i] = di
			s2 += di * di
		}
		root := intmath.ISqrt(s2)
		for i, di := range row {
			sfx, bfx := scalerConsts(it.Scaler, i)
			row[i] = intmath.Requantize(intmath.RoundDiv(di*it.LNK, root), sfx, bfx, half, frac, zero, lo, hi)
		}
		out.WriteInt64(row, r*d)
	}
}

// kernelSoftmax runs the integer softmax row-wise through the shared
// LUTSoftmax.ApplyRow funnel.
func kernelSoftmax(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	sh := in[0].Shape
	d := sh[len(sh)-1]
	rows := in[0].Numel() / d
	row := ex.scratch(0, d)
	es := ex.scratch(1, d)
	for r := 0; r < rows; r++ {
		in[0].ReadInt64(row, r*d)
		it.SM.ApplyRow(row, row, es)
		out.WriteInt64(row, r*d)
	}
}

// kernelGelu maps codes through the GELU table in cache-sized chunks.
func kernelGelu(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	n := in[0].Numel()
	buf := ex.scratch(0, elemChunk)
	for c0 := 0; c0 < n; c0 += elemChunk {
		m := n - c0
		if m > elemChunk {
			m = elemChunk
		}
		chunk := buf[:m]
		in[0].ReadInt64(chunk, c0)
		for i, v := range chunk {
			chunk[i] = it.Gelu.Lookup(v)
		}
		out.WriteInt64(chunk, c0)
	}
}

// kernelSplitHeads copies [N,T,D] token rows into [N·H,T,D/H] head rows.
func kernelSplitHeads(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	n, t, d := in[0].Shape[0], in[0].Shape[1], in[0].Shape[2]
	h := it.Heads
	dh := d / h
	row := ex.scratch(0, d)
	for ni := 0; ni < n; ni++ {
		for ti := 0; ti < t; ti++ {
			in[0].ReadInt64(row, (ni*t+ti)*d)
			for hi := 0; hi < h; hi++ {
				out.WriteInt64(row[hi*dh:(hi+1)*dh], ((ni*h+hi)*t+ti)*dh)
			}
		}
	}
}

// kernelMergeHeads is the inverse copy: [N·H,T,dh] → [N,T,dh·H].
func kernelMergeHeads(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	b, t, dh := in[0].Shape[0], in[0].Shape[1], in[0].Shape[2]
	h := it.Heads
	n, d := b/h, dh*h
	row := ex.scratch(0, dh)
	for ni := 0; ni < n; ni++ {
		for hi := 0; hi < h; hi++ {
			for ti := 0; ti < t; ti++ {
				in[0].ReadInt64(row, ((ni*h+hi)*t+ti)*dh)
				out.WriteInt64(row, (ni*t+ti)*d+hi*dh)
			}
		}
	}
}

// kernelEmbed transposes the conv feature map into token rows and adds
// the positional/class codes with the declared clamp, mirroring
// fuse.IntPatchEmbed.Forward.
func kernelEmbed(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	n, d := in[0].Shape[0], in[0].Shape[1]
	sp := in[0].Shape[2] * in[0].Shape[3]
	tTok := sp + 1
	sample := ex.scratch(0, d*sp)
	row := ex.scratch(1, d)
	pos := it.Pos.Data
	clamp := func(v int64) int64 {
		if v < it.ClampLo {
			return it.ClampLo
		}
		if v > it.ClampHi {
			return it.ClampHi
		}
		return v
	}
	for ni := 0; ni < n; ni++ {
		in[0].ReadInt64(sample, ni*d*sp)
		for j := 0; j < d; j++ {
			row[j] = clamp(pos[j])
		}
		out.WriteInt64(row, ni*tTok*d)
		for t := 0; t < sp; t++ {
			pr := pos[(1+t)*d : (2+t)*d]
			for j := 0; j < d; j++ {
				row[j] = clamp(sample[j*sp+t] + pr[j])
			}
			out.WriteInt64(row, (ni*tTok+1+t)*d)
		}
	}
}

// kernelSliceCls copies token 0 of every sample.
func kernelSliceCls(ex *Executor, idx int, it *Instr, in []*tensor.IntTensor, out *tensor.IntTensor) {
	n, t, d := in[0].Shape[0], in[0].Shape[1], in[0].Shape[2]
	row := ex.scratch(0, d)
	for ni := 0; ni < n; ni++ {
		in[0].ReadInt64(row, ni*t*d)
		out.WriteInt64(row, ni*d)
	}
}
