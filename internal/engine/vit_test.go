package engine_test

// Integer-transformer engine tests: ViT compiled through the graph IR
// must match the IntModel interpreter bit for bit across every kernel
// registry and optimization level, round-trip through ProgramSpec v4,
// reject corrupt lookup tables, and stay within calibration tolerance
// of the float model.

import (
	"math"
	"strings"
	"testing"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/export"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// compileViT builds, calibrates, and compiles a small ViT (32×32 input,
// depth-2 by default to keep the suite fast).
func compileViT(t testing.TB, seed int64, depth int) (*core.Compiled, *engine.Program) {
	t.Helper()
	g := tensor.NewRNG(seed)
	cfg := models.ViT7(32, 10)
	cfg.Depth = depth
	model := models.NewViT(g, cfg)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(calib.Subset(8), 4); err != nil {
		t.Fatal(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cm.Prog.InShape = []int{3, 32, 32}
	return cm, cm.Prog
}

// TestViTZooParity is the transformer entry of the zoo-parity suite:
// engine output bit-identical to fuse.IntModel.Forward for every kernel
// registry at both optimization levels and multiple batch sizes.
func TestViTZooParity(t *testing.T) {
	cm, fused := compileViT(t, 3, 2)
	unfused, err := engine.Lower(cm.Int)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.NewRNG(17)
	regs := map[string]func() *engine.Registry{
		"fast-typed":  engine.FastKernels,
		"fast-noswar": engine.FastKernelsNoSwar,
		"fast-i64":    engine.FastKernelsI64,
		"im2col":      engine.Im2ColKernels,
		"reference":   engine.ReferenceKernels,
	}
	for pname, prog := range map[string]*engine.Program{"unfused": unfused, "fused": fused} {
		for rname, mk := range regs {
			for _, batch := range []int{1, 3} {
				xb := g.Uniform(0, 1, batch, 3, 32, 32)
				t.Run(pname+"/"+rname, func(t *testing.T) {
					assertBitIdentical(t, cm.Int, prog, xb, mk())
				})
			}
		}
	}
}

// TestViTTracksFloatThroughEngine: the compiled engine's logits stay
// within calibration tolerance of the FP32 model (bounded by a small
// multiple of the fake-quant model's own distance from FP32).
func TestViTTracksFloatThroughEngine(t *testing.T) {
	g := tensor.NewRNG(3)
	cfg := models.ViT7(32, 10)
	cfg.Depth = 2
	raw := models.NewViT(g, cfg)
	nn.SetTraining(raw, false)

	cm, prog := compileViT(t, 3, 2)
	x := tensor.NewRNG(77).Uniform(0, 1, 4, 3, 32, 32)
	ex, err := engine.NewExecutor(prog, x.Shape)
	if err != nil {
		t.Fatal(err)
	}
	yEng, err := ex.Execute(x)
	if err != nil {
		t.Fatal(err)
	}
	yRaw := raw.Forward(x)
	yInt := cm.Int.Forward(x)

	var floorErr, engErr float64
	for i := range yRaw.Data {
		floorErr += math.Abs(float64(yRaw.Data[i] - yInt.Data[i]))
		engErr += math.Abs(float64(yRaw.Data[i] - yEng.Data[i]))
	}
	floorErr /= float64(len(yRaw.Data))
	engErr /= float64(len(yRaw.Data))
	t.Logf("mean |int-raw| = %.4f, mean |engine-raw| = %.4f", floorErr, engErr)
	// The engine is bit-identical to the interpreter, so its float
	// tracking must be exactly the interpreter's.
	for i := range yInt.Data {
		if yInt.Data[i] != yEng.Data[i] {
			t.Fatalf("engine logit %d = %v, interpreter %v", i, yEng.Data[i], yInt.Data[i])
		}
	}
}

// TestViTSpecV4RoundTrip: a compiled ViT checkpoint round-trips through
// JSON — same plan, bit-identical execution — and records version 4.
func TestViTSpecV4RoundTrip(t *testing.T) {
	cm, prog := compileViT(t, 21, 1)
	spec := prog.Spec()
	if spec.Version != engine.ProgramSpecVersion || engine.ProgramSpecVersion < 4 {
		t.Fatalf("spec version %d, want %d ≥ 4", spec.Version, engine.ProgramSpecVersion)
	}
	hasTables := false
	for _, is := range spec.Instrs {
		if is.Softmax != nil || is.Gelu != nil {
			hasTables = true
		}
	}
	if !hasTables {
		t.Fatal("serialized ViT program carries no lookup tables")
	}
	p2, err := reloadProgram(t, cm.Int.IntTensors(), spec)
	if err != nil {
		t.Fatal(err)
	}
	inShape := []int{2, 3, 32, 32}
	want, err := prog.PlanBuffers(inShape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.PlanBuffers(inShape)
	if err != nil {
		t.Fatal(err)
	}
	if got.ArenaBytes != want.ArenaBytes {
		t.Fatalf("reloaded plan %d B, original %d B", got.ArenaBytes, want.ArenaBytes)
	}
	xb := tensor.NewRNG(22).Uniform(0, 1, 2, 3, 32, 32)
	assertBitIdentical(t, cm.Int, p2, xb, engine.FastKernels())
}

// TestViTSpecRejectsCorruptTables mirrors the corrupt-dtype tests for
// the v4 lookup tables: entries outside the declared range, truncated
// tables, and malformed softmax domains must all fail to load.
func TestViTSpecRejectsCorruptTables(t *testing.T) {
	cm, prog := compileViT(t, 23, 1)
	tensors := cm.Int.IntTensors()

	corrupt := func(t *testing.T, mutate func(*export.ProgramSpec) bool, wantSub string) {
		t.Helper()
		spec := prog.Spec()
		if !mutate(spec) {
			t.Fatal("corruption target not found in spec")
		}
		if _, err := reloadProgram(t, tensors, spec); err == nil {
			t.Fatal("corrupt spec loaded without error")
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("unexpected error: %v", err)
		}
	}

	t.Run("gelu-entry-out-of-range", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Gelu != nil {
					s.Instrs[i].Gelu.Table[0] = s.Instrs[i].ClampHi + 1000
					return true
				}
			}
			return false
		}, "outside declared range")
	})
	t.Run("gelu-empty-table", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Gelu != nil {
					s.Instrs[i].Gelu.Table = nil
					return true
				}
			}
			return false
		}, "empty lookup table")
	})
	t.Run("softmax-domain-shifted", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Softmax != nil {
					s.Instrs[i].Softmax.ExpInMin++
					return true
				}
			}
			return false
		}, "does not end at 0")
	})
	t.Run("softmax-entry-overflow", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Softmax != nil {
					s.Instrs[i].Softmax.ExpTable[0] = 1 << 20
					return true
				}
			}
			return false
		}, "UQ1.15")
	})
	t.Run("layernorm-bad-constants", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Kind == string(engine.OpLayerNorm) {
					s.Instrs[i].LNK = 0
					return true
				}
			}
			return false
		}, "invalid constants")
	})
	t.Run("split-heads-zero", func(t *testing.T) {
		corrupt(t, func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Kind == string(engine.OpSplitHeads) {
					s.Instrs[i].Heads = 0
					return true
				}
			}
			return false
		}, "heads")
	})
}

// TestViTSpecV3StillLoads: a convnet checkpoint downgraded to version 3
// (no v4 instruction kinds) must load exactly as before this PR.
func TestViTSpecV3StillLoads(t *testing.T) {
	g := tensor.NewRNG(61)
	calib, _ := data.Generate(data.SynthCIFAR10, 32, 8)
	im, prog := compile(t, smallCNN(g), calib)
	spec := prog.Spec()
	spec.Version = 3
	p3, err := reloadProgram(t, im.IntTensors(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Annotated() {
		t.Fatal("v3 reload lost the dtype annotation")
	}
	xb := g.Uniform(0, 1, 2, 3, 8, 8)
	assertBitIdentical(t, im, p3, xb, engine.FastKernels())
}

// TestViTArenaUsesNarrowAttentionMaps: the [T,T] attention probability
// buffers — the largest tensors in the program — must be planned as
// single-byte storage, and the plan must beat the I64 plan by ≥4x.
func TestViTArenaUsesNarrowAttentionMaps(t *testing.T) {
	_, prog := compileViT(t, 31, 2)
	typed, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := prog.PlanBuffersI64([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vit typed plan: %s", typed)
	if typed.ArenaElems[tensor.U8] == 0 {
		t.Fatalf("attention probabilities not planned as U8: %s", typed)
	}
	if typed.ArenaBytes*4 > wide.ArenaBytes {
		t.Fatalf("typed arena %d B is not ≥4x smaller than I64 arena %d B", typed.ArenaBytes, wide.ArenaBytes)
	}
}

// vitArenaBudgetBytes is the committed ceiling for the depth-2 ViT
// fused typed plan at batch 8 (measured 505,440 B: I8 projections/probs
// operands, U8 attention maps, I16 block boundaries). Parallelism-aware
// placement keeps the same bytes even with both q/k/v waves live —
// hoisting the projections shortens the shared input's lifetime by as
// much as the sibling outputs extend theirs — so the budget carries
// over from the serial planner unchanged. CI's bench-smoke fails if a
// dtype-widening (or wave-placement) regression pushes the plan over
// it.
const vitArenaBudgetBytes = 560_000

// TestViTArenaBudget is the transformer counterpart of
// TestResNet20ArenaBudget: the fused typed plan must stay inside the
// committed byte budget.
func TestViTArenaBudget(t *testing.T) {
	_, prog := compileViT(t, 31, 2)
	plan, err := prog.PlanBuffers([]int{8, 3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vit batch-8 typed plan: %s", plan)
	if plan.ArenaBytes > vitArenaBudgetBytes {
		t.Fatalf("vit batch-8 arena %d B exceeds committed budget %d B",
			plan.ArenaBytes, vitArenaBudgetBytes)
	}
}

// TestViTServesThroughEngineServer: the compiled ViT runs through the
// batched serving runtime bit-identically to the interpreter.
func TestViTServesThroughEngineServer(t *testing.T) {
	cm, prog := compileViT(t, 41, 1)
	srv, err := engine.NewServer(prog, []int{3, 32, 32}, engine.ServerOptions{Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g := tensor.NewRNG(42)
	for i := 0; i < 6; i++ {
		x := g.Uniform(0, 1, 1, 3, 32, 32)
		y, err := srv.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		want := cm.Int.Forward(x)
		for j := range want.Data {
			if y.Data[j] != want.Data[j] {
				t.Fatalf("served logit %d = %v, interpreter %v", j, y.Data[j], want.Data[j])
			}
		}
	}
}

// TestViTInstrsPerKind sanity-checks the lowered instruction mix: every
// transformer op kind must appear, and the count of attention matmuls
// must be two per block.
func TestViTInstrsPerKind(t *testing.T) {
	_, prog := compileViT(t, 51, 2)
	counts := map[engine.OpKind]int{}
	for _, it := range prog.Instrs {
		counts[it.Kind]++
	}
	for _, kind := range []engine.OpKind{
		engine.OpConv, engine.OpEmbed, engine.OpLayerNorm, engine.OpLinear,
		engine.OpMatMul, engine.OpSoftmax, engine.OpGelu,
		engine.OpSplitHeads, engine.OpMergeHeads, engine.OpSliceCls,
	} {
		if counts[kind] == 0 {
			t.Fatalf("lowered ViT program has no %q instruction: %v", kind, counts)
		}
	}
	if counts[engine.OpMatMul] != 2*2 {
		t.Fatalf("expected 4 attention matmuls for depth 2, got %d", counts[engine.OpMatMul])
	}
	if counts[engine.OpSoftmax] != 2 {
		t.Fatalf("expected 2 softmax instructions for depth 2, got %d", counts[engine.OpSoftmax])
	}
}

var _ = fuse.LNFracBits // keep the fuse import for documentation linkage

// TestSpecRejectsCorruptScalers: scaler payloads that would panic or
// silently mis-compute in the kernels (empty tables, mismatched
// scale/bias lengths, wrong channel counts, broken fixed-point splits)
// must be rejected at load time.
func TestSpecRejectsCorruptScalers(t *testing.T) {
	cm, prog := compileViT(t, 25, 1)
	tensors := cm.Int.IntTensors()
	cases := []struct {
		name   string
		mutate func(*export.ProgramSpec) bool
		want   string
	}{
		{"matmul-per-channel", func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Kind == string(engine.OpMatMul) {
					s.Instrs[i].Scaler.ScaleFx = append(s.Instrs[i].Scaler.ScaleFx, 1)
					s.Instrs[i].Scaler.BiasFx = append(s.Instrs[i].Scaler.BiasFx, 0)
					return true
				}
			}
			return false
		}, "channels"},
		{"layernorm-empty-scaler", func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Kind == string(engine.OpLayerNorm) {
					s.Instrs[i].Scaler.ScaleFx = nil
					s.Instrs[i].Scaler.BiasFx = nil
					return true
				}
			}
			return false
		}, "scales"},
		{"linear-bias-mismatch", func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Kind == string(engine.OpLinear) {
					s.Instrs[i].Scaler.BiasFx = s.Instrs[i].Scaler.BiasFx[:1]
					return true
				}
			}
			return false
		}, "biases"},
		{"bad-fixed-point-split", func(s *export.ProgramSpec) bool {
			for i := range s.Instrs {
				if s.Instrs[i].Scaler != nil {
					s.Instrs[i].Scaler.FracBits = 0
					return true
				}
			}
			return false
		}, "INT16 split"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := prog.Spec()
			if !tc.mutate(spec) {
				t.Fatal("corruption target not found in spec")
			}
			if _, err := reloadProgram(t, tensors, spec); err == nil {
				t.Fatal("corrupt scaler loaded without error")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
