package engine

// The optimization layer between lowering and planning: a fusion pass
// that rewrites the Program so memory-bound epilogue ops (bare rescales,
// residual adds, flatten reshapes) ride along with the instruction that
// produces their input instead of running as separate arena-to-arena
// passes. Every fold preserves the per-element value pipeline exactly —
// own scaler → folded rescale → folded add/shift/clamp — so fused
// programs stay bit-identical to IntModel.Forward, which the tests
// enforce on the whole model zoo.

import "torch2chip/internal/tensor"

// OptLevel selects how aggressively a lowered program is rewritten.
type OptLevel int

const (
	// OptNone leaves the lowered program untouched (the PR-1 engine).
	OptNone OptLevel = 0
	// OptFuse runs the epilogue fusion pass: rescale folding, residual
	// add fusion, and flatten folding.
	OptFuse OptLevel = 1
)

// FusionStats reports what the pass changed, for logs and the bench
// harness's machine-readable trajectory.
type FusionStats struct {
	InstrsBefore  int `json:"instrs_before"`
	InstrsAfter   int `json:"instrs_after"`
	BuffersBefore int `json:"buffers_before"`
	BuffersAfter  int `json:"buffers_after"`

	FoldedRescales int `json:"folded_rescales"`
	FusedAdds      int `json:"fused_adds"`
	FoldedFlattens int `json:"folded_flattens"`
}

// Optimize rewrites p at the given level and returns a new program; the
// input program is not modified (interpreter parity baselines keep it).
func Optimize(p *Program, lvl OptLevel) *Program {
	q, _ := OptimizeStats(p, lvl)
	return q
}

// OptimizeStats is Optimize also returning what the pass did.
func OptimizeStats(p *Program, lvl OptLevel) (*Program, FusionStats) {
	q := cloneProgram(p)
	st := FusionStats{
		InstrsBefore:  len(q.Instrs),
		BuffersBefore: countLiveBuffers(q),
	}
	if lvl >= OptFuse {
		st.FoldedRescales = q.foldRescales()
		st.FusedAdds = q.fuseAdds()
		st.FoldedFlattens = q.foldFlattens()
		q.OptLevel = OptFuse
	}
	st.InstrsAfter = len(q.Instrs)
	st.BuffersAfter = countLiveBuffers(q)
	// Fusion rewires outputs and folds epilogues, which changes the
	// effective code range of the rewritten buffers — re-derive the
	// storage annotation. Unannotated programs (pre-v3 checkpoints)
	// deliberately stay unannotated and keep I64 arenas.
	if q.Annotated() {
		if err := q.AnnotateDTypes(); err != nil {
			q.BufDTypes = nil
		}
	}
	return q, st
}

// cloneProgram copies the instruction list (weights and scalers are
// shared — they are read-only at execution time). The prepack cache is
// not carried over: it is keyed by instruction index, which the fusion
// pass renumbers.
func cloneProgram(p *Program) *Program {
	q := *p
	q.pack = nil
	q.stor = nil
	q.BufDTypes = append([]tensor.DType(nil), p.BufDTypes...)
	q.Instrs = make([]Instr, len(p.Instrs))
	for i := range p.Instrs {
		q.Instrs[i] = p.Instrs[i]
		q.Instrs[i].In = append([]int(nil), p.Instrs[i].In...)
	}
	return &q
}

// countLiveBuffers counts buffers still referenced by the instruction
// list (plus the program input), i.e. the planner's working set.
func countLiveBuffers(p *Program) int {
	seen := make(map[int]bool, p.NumBufs)
	seen[p.Input] = true
	for i := range p.Instrs {
		it := &p.Instrs[i]
		for _, b := range it.In {
			seen[b] = true
		}
		seen[it.Out] = true
	}
	return len(seen)
}

// producerOf maps each buffer to the index of the instruction writing it
// (-1 for the program input and for eliminated buffers).
func (p *Program) producerOf() []int {
	prod := make([]int, p.NumBufs)
	for i := range prod {
		prod[i] = -1
	}
	for i := range p.Instrs {
		prod[p.Instrs[i].Out] = i
	}
	return prod
}

// readerCount counts instruction reads per buffer; the program output
// gets an extra count for its external consumer, so a fold is only legal
// on buffers with exactly one (internal) reader.
func (p *Program) readerCount() []int {
	rc := make([]int, p.NumBufs)
	for i := range p.Instrs {
		for _, b := range p.Instrs[i].In {
			rc[b]++
		}
	}
	rc[p.Output]++
	return rc
}

// removeInstr deletes the instruction at idx, preserving order.
func (p *Program) removeInstr(idx int) {
	p.Instrs = append(p.Instrs[:idx], p.Instrs[idx+1:]...)
}

// foldRescales folds each bare OpRescale whose input is produced by a
// Conv/Linear and read by nothing else into that producer's epilogue:
// the producer requantizes twice per element while the value is hot
// instead of a second full pass over arena memory. Returns folds done.
func (p *Program) foldRescales() int {
	folds := 0
	for changed := true; changed; {
		changed = false
		prod := p.producerOf()
		readers := p.readerCount()
		for i := 0; i < len(p.Instrs); i++ {
			r := &p.Instrs[i]
			if r.Kind != OpRescale || r.FusedAdd || r.FlattenOut {
				continue
			}
			src := r.In[0]
			j := prod[src]
			if j < 0 || readers[src] != 1 {
				continue
			}
			pr := &p.Instrs[j]
			if pr.Kind != OpConv && pr.Kind != OpLinear {
				continue
			}
			if pr.FusedRescale != nil || pr.FusedAdd || pr.FlattenOut {
				continue
			}
			pr.FusedRescale = r.Scaler
			pr.Out = r.Out
			p.removeInstr(i)
			folds++
			changed = true
			break
		}
	}
	return folds
}

// fuseAdds folds each OpAdd into the instruction immediately before it
// when that instruction produces one of the add's branches and nothing
// else reads it. The producer computes its value, adds the other
// branch's element, shifts back and clamps, and writes the block output
// directly — the residual epilogue costs zero extra memory passes.
func (p *Program) fuseAdds() int {
	folds := 0
	for changed := true; changed; {
		changed = false
		readers := p.readerCount()
		for i := 1; i < len(p.Instrs); i++ {
			a := &p.Instrs[i]
			if a.Kind != OpAdd {
				continue
			}
			pr := &p.Instrs[i-1]
			if pr.Kind != OpConv && pr.Kind != OpLinear && pr.Kind != OpRescale {
				continue
			}
			if pr.FusedAdd || pr.FlattenOut {
				continue
			}
			var other int
			switch pr.Out {
			case a.In[0]:
				other = a.In[1]
			case a.In[1]:
				other = a.In[0]
			default:
				continue
			}
			if readers[pr.Out] != 1 || other == pr.Out {
				continue
			}
			pr.FusedAdd = true
			pr.In = append(pr.In, other)
			pr.Shift, pr.ClampLo, pr.ClampHi = a.Shift, a.ClampLo, a.ClampHi
			pr.Out = a.Out
			p.removeInstr(i)
			folds++
			changed = true
			break
		}
	}
	return folds
}

// foldFlattens folds each OpFlatten into its producer: the producer
// writes the 2-D view directly (data is contiguous either way), so the
// reshape instruction disappears from the dispatch loop.
func (p *Program) foldFlattens() int {
	folds := 0
	for changed := true; changed; {
		changed = false
		prod := p.producerOf()
		readers := p.readerCount()
		for i := 0; i < len(p.Instrs); i++ {
			f := &p.Instrs[i]
			if f.Kind != OpFlatten {
				continue
			}
			src := f.In[0]
			j := prod[src]
			if j < 0 || readers[src] != 1 {
				continue
			}
			pr := &p.Instrs[j]
			if pr.FlattenOut {
				continue
			}
			pr.FlattenOut = true
			pr.Out = f.Out
			p.removeInstr(i)
			folds++
			changed = true
			break
		}
	}
	return folds
}
