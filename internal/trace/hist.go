package trace

import "sync/atomic"

// OpBucketsNs are the upper bounds of the per-op-kind execution-time
// histograms (1 µs … 1 s, decade steps with a 2.5/5 split in the
// µs-to-ms range where kernels actually land); an implicit +Inf bucket
// follows. Shared with the /metrics exposition so scrapes and profile
// reports bucket identically.
var OpBucketsNs = []int64{
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 100_000_000, 1_000_000_000,
}

// BatchWaitBucketsNs bound the batcher's coalescing-wait histogram
// (10 µs … 1 s): waits cluster at either "queue was hot, no wait" or
// the configured BatchWait, so coarse decades suffice.
var BatchWaitBucketsNs = []int64{
	10_000, 50_000, 100_000, 500_000,
	1_000_000, 5_000_000, 10_000_000, 50_000_000,
	100_000_000, 1_000_000_000,
}

// Hist is a fixed-bucket duration histogram with atomic counters,
// cheap enough for always-on paths (one bucket add + two adds per
// observe). Buckets are non-cumulative internally.
type Hist struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last = +Inf overflow
	sumNs   atomic.Int64
	count   atomic.Int64
}

// NewHist builds a histogram over the given ascending ns upper bounds.
func NewHist(boundsNs []int64) *Hist {
	return &Hist{bounds: boundsNs, buckets: make([]atomic.Int64, len(boundsNs)+1)}
}

// Observe records one duration in nanoseconds.
func (h *Hist) Observe(ns int64) {
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// HistSnapshot is a point-in-time copy of a Hist, JSON- and
// exposition-friendly (counts are non-cumulative, aligned to Bounds
// with one +Inf overflow entry appended).
type HistSnapshot struct {
	BoundsNs []int64 `json:"bounds_ns,omitempty"`
	Counts   []int64 `json:"counts,omitempty"`
	SumNs    int64   `json:"sum_ns"`
	Count    int64   `json:"count"`
}

// Snapshot copies the histogram's counters.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		BoundsNs: h.bounds,
		Counts:   make([]int64, len(h.buckets)),
		SumNs:    h.sumNs.Load(),
		Count:    h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Merge accumulates other into s (bucket-wise; both sides must share
// bounds, which every Hist built from the package vars does).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 {
		s.BoundsNs = o.BoundsNs
		s.Counts = append([]int64(nil), o.Counts...)
	} else {
		for i := range o.Counts {
			if i < len(s.Counts) {
				s.Counts[i] += o.Counts[i]
			}
		}
	}
	s.SumNs += o.SumNs
	s.Count += o.Count
}

// opAgg accumulates KindInstr spans for one interned name.
type opAgg struct {
	name string
	hist *Hist
}

func newOpAgg(name string) *opAgg {
	return &opAgg{name: name, hist: NewHist(OpBucketsNs)}
}

func (a *opAgg) observe(ns int64) { a.hist.Observe(ns) }

// OpStat is one op kind's aggregated execution-time record.
type OpStat struct {
	Name  string       `json:"op"`
	Count int64        `json:"count"`
	SumNs int64        `json:"sum_ns"`
	Hist  HistSnapshot `json:"hist"`
}

// OpProfile returns the per-op-kind execution-time aggregates in
// interning order, skipping names that never recorded an instruction
// span (wave/batch/request names share the intern table).
func (t *Tracer) OpProfile() []OpStat {
	if t == nil {
		return nil
	}
	ops := *t.ops.Load()
	out := make([]OpStat, 0, len(ops))
	for _, a := range ops {
		h := a.hist.Snapshot()
		if h.Count == 0 {
			continue
		}
		out = append(out, OpStat{Name: a.name, Count: h.Count, SumNs: h.SumNs, Hist: h})
	}
	return out
}
