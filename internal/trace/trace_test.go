package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestKindsDistinct(t *testing.T) {
	kinds := []Kind{KindInstr, KindWave, KindBatch, KindQueueWait,
		KindBatchForm, KindRequest, KindFanout, KindAdmission}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if k == 0 {
			t.Fatalf("kind %s has zero value (reserved for torn slots)", k)
		}
		if seen[k] {
			t.Fatalf("duplicate kind value %d (%s)", k, k)
		}
		seen[k] = true
		if k.String() == "span" {
			t.Fatalf("kind %d missing a String case", k)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true)
	if tr.SampleRequest() {
		t.Fatal("nil tracer samples requests")
	}
	r := tr.NewRing()
	if r != nil {
		t.Fatal("nil tracer returned a ring")
	}
	if r.Active() {
		t.Fatal("nil ring reports active")
	}
	if r.Tracer() != nil {
		t.Fatal("nil ring returned a tracer")
	}
	if r.Len() != 0 {
		t.Fatal("nil ring has length")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if got := tr.OpProfile(); got != nil {
		t.Fatalf("nil tracer op profile = %v", got)
	}
}

func TestRingInactiveUntilEnabled(t *testing.T) {
	tr := New(Config{RingSpans: 8})
	r := tr.NewRing()
	if r.Active() {
		t.Fatal("ring active before SetEnabled")
	}
	tr.SetEnabled(true)
	if !r.Active() {
		t.Fatal("ring inactive after SetEnabled")
	}
	tr.SetEnabled(false)
	if r.Active() {
		t.Fatal("ring active after disable")
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(Config{RingSpans: 8})
	tr.SetEnabled(true)
	r := tr.NewRing()
	nm := tr.Intern("x")
	const total = 20 // 2.5× the ring
	for i := 0; i < total; i++ {
		r.Record(Span{Start: int64(i), Dur: 1, Name: nm, Kind: KindWave, TID: 7, A0: int64(i) * 10})
	}
	if r.Len() != total {
		t.Fatalf("Len = %d, want %d", r.Len(), total)
	}
	got := tr.Snapshot()
	if len(got) != 8 {
		t.Fatalf("snapshot kept %d spans, want the ring size 8", len(got))
	}
	// The retained window must be exactly the newest 8, in start order.
	for i, s := range got {
		want := int64(total - 8 + i)
		if s.Start != want || s.A0 != want*10 || s.TID != 7 || s.Kind != KindWave {
			t.Fatalf("span %d = %+v, want Start %d", i, s, want)
		}
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	tr := New(Config{RingSpans: 64})
	tr.SetEnabled(true)
	r := tr.NewRing()
	nm := tr.Intern("w")
	const writers, per = 8, 500
	var wg sync.WaitGroup
	done := make(chan struct{})
	// A reader snapshots continuously while writers overwrite the ring
	// many times over; under -race this exercises the seqlock protocol.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				for _, s := range tr.Snapshot() {
					// Every intact span must be internally consistent:
					// the writer stored A1 = Start+A0.
					if s.A1 != s.Start+s.A0 {
						panic("torn span escaped the seq check")
					}
					_ = s
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st := int64(w*per + i)
				a0 := int64(i % 13)
				r.Record(Span{Start: st, Dur: 1, Name: nm, Kind: KindInstr, TID: int32(w), A0: a0, A1: st + a0})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	if r.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", r.Len(), writers*per)
	}
	got := tr.Snapshot()
	if len(got) == 0 || len(got) > 64 {
		t.Fatalf("snapshot kept %d spans, want 1..64", len(got))
	}
	for _, s := range got {
		if s.A1 != s.Start+s.A0 {
			t.Fatalf("inconsistent span survived: %+v", s)
		}
	}
	// KindInstr spans feed the op histogram regardless of wraparound.
	ops := tr.OpProfile()
	if len(ops) != 1 || ops[0].Name != "w" || ops[0].Count != writers*per {
		t.Fatalf("op profile = %+v, want %d observations of \"w\"", ops, writers*per)
	}
}

func TestMetaPackRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name uint32
		kind Kind
		tid  int32
	}{
		{0, KindInstr, 0},
		{1 << 31, KindAdmission, 1_000_000},
		{42, KindBatch, 999},
	} {
		n, k, id := unpackMeta(packMeta(tc.name, tc.kind, tc.tid))
		if n != tc.name || k != tc.kind || id != tc.tid {
			t.Fatalf("roundtrip(%v) = (%d,%v,%d)", tc, n, k, id)
		}
	}
}

func TestSampleRequest(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	tr.SetEnabled(true)
	hits := 0
	for i := 0; i < 40; i++ {
		if tr.SampleRequest() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("1-in-4 sampling over 40 requests hit %d, want 10", hits)
	}
	every := New(Config{})
	for i := 0; i < 5; i++ {
		if !every.SampleRequest() {
			t.Fatal("default sampling must trace every request")
		}
	}
}

func TestHistObserveAndMerge(t *testing.T) {
	h := NewHist([]int64{10, 100})
	h.Observe(5)    // bucket 0
	h.Observe(10)   // bucket 0 (le is inclusive)
	h.Observe(50)   // bucket 1
	h.Observe(1000) // +Inf overflow
	s := h.Snapshot()
	want := []int64{2, 1, 1}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Count != 4 || s.SumNs != 1065 {
		t.Fatalf("count/sum = %d/%d, want 4/1065", s.Count, s.SumNs)
	}
	var merged HistSnapshot
	merged.Merge(s)
	merged.Merge(s)
	if merged.Count != 8 || merged.Counts[0] != 4 {
		t.Fatalf("merge = %+v", merged)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := New(Config{RingSpans: 8})
	tr.SetEnabled(true)
	r := tr.NewRing()
	nm := tr.Intern("conv")
	r.Record(Span{Start: 1500, Dur: 2750, Name: nm, Kind: KindInstr, TID: 3, ID: 9, A0: 64, A1: 2})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, "m", tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 { // metadata + span
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev.Name != "conv" || ev.Cat != "instr" || ev.Ph != "X" || ev.Tid != 3 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Ts != 1.5 || ev.Dur != 2.75 {
		t.Fatalf("ts/dur = %g/%g, want 1.5/2.75 µs", ev.Ts, ev.Dur)
	}
	if ev.Args["id"] != float64(9) || ev.Args["a0"] != float64(64) {
		t.Fatalf("args = %v", ev.Args)
	}
}
