// Package trace is the serving stack's low-overhead span recorder: a
// set of fixed-size per-writer ring buffers holding timing spans, owned
// by one Tracer per traced scope (one per served model, or one per
// bench run). It is built for the engine's hot path:
//
//   - Recording is allocation-free. Spans are plain structs copied into
//     preallocated ring slots; span names are interned once at bind
//     time and stored as small integer ids.
//   - The disabled path is a single branch: callers hold a *Ring that
//     is nil when tracing was never configured, and an enabled-flag
//     atomic load when it was. No clock is read, no slot is touched.
//   - Rings accept concurrent writers. A writer reserves its slot with
//     one atomic cursor increment; every slot field is an atomic, and a
//     per-slot sequence word is published last, so readers snapshotting
//     a live ring detect and drop torn or overwritten slots instead of
//     racing (the whole package is clean under -race).
//
// A ring holds the most recent RingSpans records per writer — tracing
// is a flight recorder, not a log: old spans are overwritten, and a
// Snapshot returns whatever window is still intact. Alongside the raw
// spans the Tracer keeps per-op-kind duration histograms (updated on
// every instruction span, readable at any time) that survive ring
// wraparound, which is what the /metrics exposition and the
// measured-vs-modeled profile report consume.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span for exposition (Chrome category, profile
// aggregation). KindInstr spans additionally feed the op histograms.
type Kind uint8

const (
	KindInstr     Kind = iota + 1 // one engine instruction
	KindWave                      // one executor scheduling wave
	KindBatch                     // one batched execute on a worker
	KindQueueWait                 // request sat in the replica queue
	KindBatchForm                 // batcher coalescing window
	KindRequest                   // whole HTTP predict request
	KindFanout                    // one sample's engine round-trip
	KindAdmission                 // admission-control decision
)

// String names the kind for Chrome trace categories.
func (k Kind) String() string {
	switch k {
	case KindInstr:
		return "instr"
	case KindWave:
		return "wave"
	case KindBatch:
		return "batch"
	case KindQueueWait:
		return "queue_wait"
	case KindBatchForm:
		return "batch_form"
	case KindRequest:
		return "request"
	case KindFanout:
		return "fanout"
	case KindAdmission:
		return "admission"
	default:
		return "span"
	}
}

// Span is one recorded timing interval. Start is nanoseconds since the
// owning Tracer's epoch; Name is an id from Tracer.Intern. ID carries
// the request trace id (0 when the span is not request-scoped), TID the
// lane it ran on (worker index, or a synthetic HTTP lane), and A0/A1
// kind-specific arguments: output-buffer bytes and instruction index
// for instructions, member and job counts for waves, batch size for
// batches and queue waits.
type Span struct {
	Start int64
	Dur   int64
	Name  uint32
	Kind  Kind
	TID   int32
	ID    uint64
	A0    int64
	A1    int64
}

// Config sizes a Tracer.
type Config struct {
	// RingSpans is each ring's capacity in spans, rounded up to a power
	// of two (default 4096, ~256 KiB per ring).
	RingSpans int
	// SampleEvery traces one in every N requests at the HTTP layer
	// (default 1 = every request). Engine-level spans are not sampled:
	// they are per-batch, already bounded by the ring.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.RingSpans <= 0 {
		c.RingSpans = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	return c
}

// Tracer owns the rings and interned names of one traced scope. The
// zero of *Tracer (nil) is a valid "tracing never configured" tracer:
// every method is nil-safe and NewRing returns a nil *Ring whose
// Active() is false.
type Tracer struct {
	cfg     Config
	epoch   time.Time
	enabled atomic.Bool
	reqSeq  atomic.Uint64 // request sampling counter

	mu    sync.Mutex
	rings []*Ring
	names []string
	ids   map[string]uint32

	// ops[nameID] aggregates KindInstr span durations per interned
	// name; the slice is copy-on-grow behind an atomic pointer so
	// Record never takes the lock.
	ops atomic.Pointer[[]*opAgg]
}

// New builds a Tracer. Tracing starts disabled; call SetEnabled(true)
// to arm it.
func New(cfg Config) *Tracer {
	t := &Tracer{cfg: cfg.withDefaults(), epoch: time.Now(), ids: map[string]uint32{}}
	empty := make([]*opAgg, 0)
	t.ops.Store(&empty)
	return t
}

// SetEnabled arms or disarms recording. Rings and interned names are
// kept, so tracing can be toggled without rebinding executors.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether recording is armed (false for a nil Tracer).
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Now returns nanoseconds since the tracer's epoch (monotonic).
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// SampleRequest reports whether the next HTTP request should be traced
// under the configured 1-in-N sampling. It must only be consulted when
// Enabled() already holds.
func (t *Tracer) SampleRequest() bool {
	if t == nil {
		return false
	}
	n := uint64(t.cfg.SampleEvery)
	return n <= 1 || t.reqSeq.Add(1)%n == 0
}

// Intern registers a span name and returns its id. Binding-time only;
// the id is stable for the tracer's lifetime.
func (t *Tracer) Intern(name string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	old := *t.ops.Load()
	next := make([]*opAgg, len(old)+1)
	copy(next, old)
	next[len(old)] = newOpAgg(name)
	t.ops.Store(&next)
	return id
}

// Name resolves an interned id ("?" for ids this tracer never issued).
func (t *Tracer) Name(id uint32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.names) {
		return t.names[id]
	}
	return "?"
}

// NewRing allocates and registers a ring (nil for a nil Tracer). Rings
// support any number of concurrent writers; allocate per writer when
// per-lane ordering matters, or share one per subsystem.
func (t *Tracer) NewRing() *Ring {
	if t == nil {
		return nil
	}
	size := 1
	for size < t.cfg.RingSpans {
		size <<= 1
	}
	r := &Ring{t: t, slots: make([]slot, size), mask: uint64(size - 1)}
	t.mu.Lock()
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// Snapshot copies every intact span currently held across the tracer's
// rings, sorted by start time. Torn slots (mid-write or overwritten
// during the copy) are dropped; with writers still running the result
// is a best-effort window, which is exactly what a flight recorder
// owes its reader.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	rings := append([]*Ring(nil), t.rings...)
	t.mu.Unlock()
	var out []Span
	for _, r := range rings {
		out = r.appendSnapshot(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// slot is one ring entry. Every field is atomic so a reader copying a
// slot concurrently overwritten by a writer is well-defined (never a
// data race); seq is written last with the slot's absolute position+1,
// letting the reader verify the copy was of one complete record.
type slot struct {
	seq   atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	id    atomic.Uint64
	a0    atomic.Int64
	a1    atomic.Int64
	meta  atomic.Uint64 // name(32) | kind(8) | tid(24)
}

func packMeta(name uint32, kind Kind, tid int32) uint64 {
	return uint64(name)<<32 | uint64(kind)<<24 | uint64(uint32(tid)&0xffffff)
}

func unpackMeta(m uint64) (name uint32, kind Kind, tid int32) {
	return uint32(m >> 32), Kind(m >> 24 & 0xff), int32(m & 0xffffff)
}

// Ring is a fixed-size multi-writer span buffer. The write cursor only
// grows; slot p lives at p mod len and holds seq p+1 once published.
type Ring struct {
	t      *Tracer
	slots  []slot
	mask   uint64
	cursor atomic.Uint64
}

// Active reports whether recording into this ring does anything — the
// single branch the disabled path pays (plus one atomic load when a
// tracer was configured).
func (r *Ring) Active() bool { return r != nil && r.t.enabled.Load() }

// Tracer returns the ring's owner (for interning names at bind time),
// nil for a nil ring.
func (r *Ring) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.t
}

// Now returns nanoseconds since the owning tracer's epoch.
func (r *Ring) Now() int64 { return r.t.Now() }

// Record appends one span. Callers must have checked Active; a span
// recorded while the tracer is mid-disable still lands harmlessly.
// KindInstr spans also feed the per-op-kind histogram, which is what
// survives ring wraparound.
func (r *Ring) Record(s Span) {
	p := r.cursor.Add(1) - 1
	sl := &r.slots[p&r.mask]
	sl.seq.Store(0) // invalidate while fields are in flux
	sl.start.Store(s.Start)
	sl.dur.Store(s.Dur)
	sl.id.Store(s.ID)
	sl.a0.Store(s.A0)
	sl.a1.Store(s.A1)
	sl.meta.Store(packMeta(s.Name, s.Kind, s.TID))
	sl.seq.Store(p + 1)
	if s.Kind == KindInstr {
		if ops := *r.t.ops.Load(); int(s.Name) < len(ops) {
			ops[s.Name].observe(s.Dur)
		}
	}
}

// appendSnapshot copies the ring's intact spans onto dst.
func (r *Ring) appendSnapshot(dst []Span) []Span {
	cur := r.cursor.Load()
	n := uint64(len(r.slots))
	lo := uint64(0)
	if cur > n {
		lo = cur - n
	}
	for p := lo; p < cur; p++ {
		sl := &r.slots[p&r.mask]
		if sl.seq.Load() != p+1 {
			continue // mid-write or already overwritten
		}
		var s Span
		s.Start = sl.start.Load()
		s.Dur = sl.dur.Load()
		s.ID = sl.id.Load()
		s.A0 = sl.a0.Load()
		s.A1 = sl.a1.Load()
		s.Name, s.Kind, s.TID = unpackMeta(sl.meta.Load())
		if sl.seq.Load() != p+1 {
			continue // overwritten while copying: drop the torn record
		}
		dst = append(dst, s)
	}
	return dst
}

// Len reports how many spans have ever been recorded (not the retained
// window).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}
