package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome emits spans in the Chrome trace-event format (the JSON
// object form, loadable in Perfetto and chrome://tracing): one complete
// ("ph":"X") event per span, timestamps in microseconds relative to the
// tracer's epoch, the span kind as the category, the lane id as the
// thread id, and the request trace id plus the two kind-specific args
// under "args". pid groups every lane of this tracer under one label.
func WriteChrome(w io.Writer, t *Tracer, label string, spans []Span) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":%s}}", strconv.Quote(label))
	for i := range spans {
		s := &spans[i]
		bw.WriteString(",\n")
		fmt.Fprintf(bw,
			"{\"name\":%s,\"cat\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,"+
				"\"args\":{\"id\":%d,\"a0\":%d,\"a1\":%d}}",
			strconv.Quote(t.Name(s.Name)), s.Kind.String(),
			usec(s.Start), usec(s.Dur), s.TID, s.ID, s.A0, s.A1)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders nanoseconds as a decimal microsecond literal without
// float rounding (Chrome ts/dur are µs; sub-µs spans keep 3 decimals).
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
