package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeRangesAndParsing(t *testing.T) {
	for _, tc := range []struct {
		dt       DType
		size     int
		lo, hi   int64
		spelling string
	}{
		{I8, 1, -128, 127, "i8"},
		{U8, 1, 0, 255, "u8"},
		{I16, 2, -32768, 32767, "i16"},
		{U16, 2, 0, 65535, "u16"},
		{I32, 4, -(1 << 31), 1<<31 - 1, "i32"},
	} {
		if tc.dt.Size() != tc.size {
			t.Fatalf("%s size %d, want %d", tc.dt, tc.dt.Size(), tc.size)
		}
		lo, hi := tc.dt.Range()
		if lo != tc.lo || hi != tc.hi {
			t.Fatalf("%s range [%d,%d], want [%d,%d]", tc.dt, lo, hi, tc.lo, tc.hi)
		}
		if tc.dt.String() != tc.spelling {
			t.Fatalf("%s spelling %q", tc.dt, tc.dt.String())
		}
		back, err := ParseDType(tc.spelling)
		if err != nil || back != tc.dt {
			t.Fatalf("ParseDType(%q) = %v, %v", tc.spelling, back, err)
		}
	}
	if _, err := ParseDType("f32"); err == nil {
		t.Fatal("expected parse error")
	}
	// Smallest-dtype selection, signed preferred at equal width.
	for _, tc := range []struct {
		lo, hi int64
		want   DType
	}{
		{-128, 127, I8}, {0, 127, I8}, {0, 255, U8}, {-1, 255, I16},
		{0, 65535, U16}, {-32768, 32767, I16}, {0, 1 << 20, I32},
		{-(1 << 40), 1 << 40, I64}, {0, 0, I8},
	} {
		if got := DTypeForRange(tc.lo, tc.hi); got != tc.want {
			t.Fatalf("DTypeForRange(%d,%d) = %s, want %s", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestTypedIntTensorAccessors(t *testing.T) {
	for _, dt := range []DType{I8, U8, I16, U16, I32, I64} {
		x := NewTyped(dt, 2, 3)
		if x.Numel() != 6 {
			t.Fatalf("%s Numel %d", dt, x.Numel())
		}
		lo, hi := dt.Range()
		vals := []int64{lo, hi, 0, 1, hi, lo}
		if dt == I64 {
			vals = []int64{-1 << 40, 1 << 40, 0, 1, 7, -7}
		}
		for i, v := range vals {
			x.Put(i, v)
		}
		for i, v := range vals {
			if got := x.Get(i); got != v {
				t.Fatalf("%s Get(%d) = %d, want %d", dt, i, got, v)
			}
		}
		// Chunked widen/narrow round trip.
		wide := make([]int64, 6)
		x.ReadInt64(wide, 0)
		y := NewTyped(dt, 2, 3)
		y.WriteInt64(wide, 0)
		for i := range vals {
			if y.Get(i) != vals[i] {
				t.Fatalf("%s chunk round trip [%d] = %d, want %d", dt, i, y.Get(i), vals[i])
			}
		}
		// Clone and reshaped view share semantics.
		c := x.Clone()
		r := x.Reshape(3, 2)
		if c.DType != dt || r.DType != dt || r.Get(5) != vals[5] {
			t.Fatalf("%s clone/reshape mismatch", dt)
		}
		mn, mx := x.MinMax()
		if dt != I64 && (mn != lo || mx != hi) {
			t.Fatalf("%s MinMax [%d,%d], want [%d,%d]", dt, mn, mx, lo, hi)
		}
	}
}

func TestNewShapeAndNumel(t *testing.T) {
	x := New(2, 3, 4)
	if x.Numel() != 24 {
		t.Fatalf("Numel = %d, want 24", x.Numel())
	}
	if x.Dim(-1) != 4 || x.Dim(0) != 2 {
		t.Fatalf("Dim wrong: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatalf("At = %v", x.At(2, 1))
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestReshapeInference(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, -1)
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("Reshape = %v", y.Shape)
	}
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if x.Max() != 2 || x.Min() != -3 || x.AbsMax() != 3 {
		t.Fatalf("Max/Min/AbsMax = %v/%v/%v", x.Max(), x.Min(), x.AbsMax())
	}
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Argmax() != 2 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
}

func TestStd(t *testing.T) {
	x := FromSlice([]float32{1, 1, 1, 1}, 4)
	if x.Std() != 0 {
		t.Fatalf("Std of constant = %v", x.Std())
	}
	y := FromSlice([]float32{-1, 1}, 2)
	if math.Abs(float64(y.Std())-1) > 1e-6 {
		t.Fatalf("Std = %v, want 1", y.Std())
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data[2]; got != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data[0]; got != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data[1]; got != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(b, a).Data[2]; got != 2 {
		t.Fatalf("Div = %v", got)
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float32{-5, 0.5, 5}, 3)
	y := Clamp(x, -1, 1)
	want := []float32{-1, 0.5, 1}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("Clamp[%d] = %v", i, y.Data[i])
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	g := NewRNG(1)
	a := g.Randn(1, 7, 5)
	b := g.Randn(1, 9, 5)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-5, 1e-5) {
		t.Fatalf("MatMulT mismatch, maxdiff=%v", MaxAbsDiff(got, want))
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := NewRNG(2)
	a := g.Randn(1, 4, 6)
	b := Transpose(Transpose(a))
	if !AllClose(a, b, 0, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

func TestSumAxis0(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumAxis0(a)
	want := []float32{5, 7, 9}
	for i := range want {
		if s.Data[i] != want[i] {
			t.Fatalf("SumAxis0[%d] = %v", i, s.Data[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	g := NewRNG(3)
	x := g.Randn(2, 4, 10)
	y := Softmax(x)
	for r := 0; r < 4; r++ {
		var s float64
		for j := 0; j < 10; j++ {
			v := y.Data[r*10+j]
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	g := NewRNG(4)
	x := g.Randn(1, 3, 7)
	ls := LogSoftmax(x)
	sm := Softmax(x)
	for i := range ls.Data {
		if math.Abs(math.Exp(float64(ls.Data[i]))-float64(sm.Data[i])) > 1e-5 {
			t.Fatalf("exp(logsoftmax) != softmax at %d", i)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		x := g.Randn(1, 2, 8)
		shifted := AddScalar(x, 100)
		return AllClose(Softmax(x), Softmax(shifted), 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2dIdentityKernel(t *testing.T) {
	g := NewRNG(5)
	x := g.Randn(1, 2, 3, 5, 5)
	// 1x1 identity kernel per channel via 3 output channels selecting inputs.
	w := New(3, 3, 1, 1)
	for i := 0; i < 3; i++ {
		w.Set(1, i, i, 0, 0)
	}
	y := Conv2d(x, w, nil, ConvParams{Stride: 1})
	if !AllClose(x, y, 1e-6, 1e-6) {
		t.Fatal("1x1 identity conv must be identity")
	}
}

func TestConv2dKnownValues(t *testing.T) {
	// 1 channel, 3x3 input, 2x2 kernel of ones, stride 1, no pad → window sums.
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := Full(1, 1, 1, 2, 2)
	y := Conv2d(x, w, nil, ConvParams{})
	want := []float32{12, 16, 24, 28}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Fatalf("out shape %v", y.Shape)
	}
}

func TestConv2dPaddingShape(t *testing.T) {
	x := New(2, 3, 8, 8)
	w := New(4, 3, 3, 3)
	y := Conv2d(x, w, nil, ConvParams{Stride: 2, Padding: 1})
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != 4 || y.Shape[3] != 4 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestConv2dBias(t *testing.T) {
	x := New(1, 1, 2, 2)
	w := New(2, 1, 1, 1)
	b := FromSlice([]float32{1.5, -2}, 2)
	y := Conv2d(x, w, b, ConvParams{})
	if y.At(0, 0, 1, 1) != 1.5 || y.At(0, 1, 0, 0) != -2 {
		t.Fatalf("bias broadcast wrong: %v", y.Data)
	}
}

func TestDepthwiseConvGroups(t *testing.T) {
	g := NewRNG(6)
	x := g.Randn(1, 1, 4, 6, 6)
	w := g.Randn(0.5, 4, 1, 3, 3)
	y := Conv2d(x, w, nil, ConvParams{Stride: 1, Padding: 1, Groups: 4})
	if y.Shape[1] != 4 || y.Shape[2] != 6 {
		t.Fatalf("depthwise shape %v", y.Shape)
	}
	// Each output channel must only depend on its own input channel: zero
	// out channel 0 of input and check only output channel 0 changes.
	x2 := x.Clone()
	for i := 0; i < 36; i++ {
		x2.Data[i] = 0
	}
	y2 := Conv2d(x2, w, nil, ConvParams{Stride: 1, Padding: 1, Groups: 4})
	for ch := 1; ch < 4; ch++ {
		a := y.Data[ch*36 : (ch+1)*36]
		b := y2.Data[ch*36 : (ch+1)*36]
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("channel %d leaked across groups", ch)
			}
		}
	}
}

// numericalGradCheck verifies Conv2dBackward against finite differences.
func TestConv2dBackwardNumerical(t *testing.T) {
	g := NewRNG(7)
	x := g.Randn(1, 2, 2, 5, 5)
	w := g.Randn(0.5, 3, 2, 3, 3)
	p := ConvParams{Stride: 2, Padding: 1}
	y := Conv2d(x, w, nil, p)
	gy := g.Randn(1, y.Shape...)
	gx, gw, gb := Conv2dBackward(x, w, gy, p)

	loss := func() float64 {
		out := Conv2d(x, w, nil, p)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(gy.Data[i])
		}
		return s
	}
	const eps = 1e-2
	for _, idx := range []int{0, 7, 31} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := loss()
		x.Data[idx] = orig - eps
		lm := loss()
		x.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(gx.Data[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("gx[%d]: numerical %v analytic %v", idx, num, gx.Data[idx])
		}
	}
	for _, idx := range []int{0, 11, 29} {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		lp := loss()
		w.Data[idx] = orig - eps
		lm := loss()
		w.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(gw.Data[idx])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("gw[%d]: numerical %v analytic %v", idx, num, gw.Data[idx])
		}
	}
	// Bias gradient equals sum of gy per channel across the batch.
	n, o, sp := y.Shape[0], y.Shape[1], y.Shape[2]*y.Shape[3]
	for oc := 0; oc < o; oc++ {
		var s float64
		for ni := 0; ni < n; ni++ {
			for i := 0; i < sp; i++ {
				s += float64(gy.Data[(ni*o+oc)*sp+i])
			}
		}
		if math.Abs(s-float64(gb.Data[oc])) > 1e-3 {
			t.Fatalf("gb[%d]: %v vs %v", oc, s, gb.Data[oc])
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), c> == <x, Col2Im(c)> : the defining adjoint property.
	g := NewRNG(8)
	x := g.Randn(1, 1, 3, 6, 6)
	p := ConvParams{Stride: 2, Padding: 1}
	cols := Im2Col(x, 3, 3, p)
	c := g.Randn(1, cols.Shape...)
	lhs := Dot(cols, c)
	back := Col2Im(c, 1, 3, 6, 6, 3, 3, p)
	rhs := Dot(x, back)
	if math.Abs(float64(lhs-rhs)) > 1e-2 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAvgPoolGlobal(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := AvgPool2d(x, 0, 0)
	if y.Data[0] != 2.5 {
		t.Fatalf("global avg = %v", y.Data[0])
	}
	gx := AvgPool2dBackward(x, FromSlice([]float32{4}, 1, 1, 1, 1), 0, 0)
	for _, v := range gx.Data {
		if v != 1 {
			t.Fatalf("backward = %v", gx.Data)
		}
	}
}

func TestAvgPoolWindowed(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	y := AvgPool2d(x, 2, 2)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("pool[%d] = %v", i, y.Data[i])
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Randn(1, 100)
	b := NewRNG(42).Randn(1, 100)
	if !AllClose(a, b, 0, 0) {
		t.Fatal("same seed must give same stream")
	}
	c := NewRNG(43).Randn(1, 100)
	if AllClose(a, c, 0, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestKaimingStatistics(t *testing.T) {
	g := NewRNG(9)
	w := g.KaimingConv(64, 32, 3, 3)
	std := float64(w.Std())
	want := math.Sqrt(2.0 / (32 * 9))
	if math.Abs(std-want) > 0.1*want {
		t.Fatalf("Kaiming std %v, want ≈%v", std, want)
	}
}

func TestIntTensorBasics(t *testing.T) {
	x := IntFromSlice([]int64{-3, 0, 7, 0}, 2, 2)
	mn, mx := x.MinMax()
	if mn != -3 || mx != 7 {
		t.Fatalf("MinMax = %d,%d", mn, mx)
	}
	if x.CountZeros() != 2 {
		t.Fatalf("CountZeros = %d", x.CountZeros())
	}
	f := x.Float()
	if f.Data[2] != 7 {
		t.Fatalf("Float = %v", f.Data)
	}
	c := x.Clone()
	c.Data[0] = 5
	if x.Data[0] != -3 {
		t.Fatal("Clone must copy")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A×B)×C ≈ A×(B×C) for random small matrices.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := g.Randn(1, 3, 4)
		b := g.Randn(1, 4, 5)
		c := g.Randn(1, 5, 2)
		l := MatMul(MatMul(a, b), c)
		r := MatMul(a, MatMul(b, c))
		return AllClose(l, r, 1e-3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path; compare against MatMulT
	// column-dot reference.
	g := NewRNG(10)
	a := g.Randn(1, 64, 96)
	b := g.Randn(1, 96, 64)
	c := MatMul(a, b)
	ref := MatMulT(a, Transpose(b))
	if !AllClose(c, ref, 1e-4, 1e-4) {
		t.Fatalf("parallel gemm mismatch %v", MaxAbsDiff(c, ref))
	}
}
