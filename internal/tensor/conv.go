package tensor

import "fmt"

// ConvParams describes a 2-D convolution. Tensors are NCHW; weights are
// [outC, inC/groups, kH, kW].
type ConvParams struct {
	Stride  int
	Padding int
	Groups  int
}

// ConvOutSize returns the output spatial size for input size in.
func (p ConvParams) ConvOutSize(in, k int) int {
	return (in+2*p.Padding-k)/p.Stride + 1
}

func (p ConvParams) check() ConvParams {
	if p.Stride <= 0 {
		p.Stride = 1
	}
	if p.Groups <= 0 {
		p.Groups = 1
	}
	return p
}

// Im2Col unrolls x [N,C,H,W] into a matrix of shape
// [N*outH*outW, C*kH*kW] so that convolution becomes GEMM.
func Im2Col(x *Tensor, kH, kW int, p ConvParams) *Tensor {
	p = p.check()
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(w, kW)
	cols := New(n*oh*ow, c*kH*kW)
	colW := c * kH * kW
	parallelFor(n, n*c*oh*ow*kH*kW >= 1<<18, func(ni int) {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((ni*oh+oy)*ow+ox)*colW : ((ni*oh+oy)*ow+ox+1)*colW]
				ci := 0
				for ch := 0; ch < c; ch++ {
					base := (ni*c + ch) * h * w
					for ky := 0; ky < kH; ky++ {
						iy := oy*p.Stride - p.Padding + ky
						for kx := 0; kx < kW; kx++ {
							ix := ox*p.Stride - p.Padding + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								row[ci] = x.Data[base+iy*w+ix]
							}
							ci++
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im scatters gradient columns back to the input layout; the adjoint of
// Im2Col.
func Col2Im(cols *Tensor, n, c, h, w, kH, kW int, p ConvParams) *Tensor {
	p = p.check()
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(w, kW)
	x := New(n, c, h, w)
	colW := c * kH * kW
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols.Data[((ni*oh+oy)*ow+ox)*colW : ((ni*oh+oy)*ow+ox+1)*colW]
				ci := 0
				for ch := 0; ch < c; ch++ {
					base := (ni*c + ch) * h * w
					for ky := 0; ky < kH; ky++ {
						iy := oy*p.Stride - p.Padding + ky
						for kx := 0; kx < kW; kx++ {
							ix := ox*p.Stride - p.Padding + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								x.Data[base+iy*w+ix] += row[ci]
							}
							ci++
						}
					}
				}
			}
		}
	}
	return x
}

// Conv2d computes a grouped 2-D convolution of x [N,C,H,W] with weights
// w [O, C/groups, kH, kW] and optional bias [O], returning [N,O,oH,oW].
func Conv2d(x, w, bias *Tensor, p ConvParams) *Tensor {
	p = p.check()
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Conv2d ranks %v, %v", x.Shape, w.Shape))
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if c/p.Groups != cg || o%p.Groups != 0 {
		panic(fmt.Sprintf("tensor: Conv2d group mismatch x C=%d w=%v groups=%d", c, w.Shape, p.Groups))
	}
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(wd, kW)
	out := New(n, o, oh, ow)
	og := o / p.Groups
	spatial := oh * ow

	for g := 0; g < p.Groups; g++ {
		// Slice the channels belonging to this group.
		xg := sliceChannels(x, g*cg, (g+1)*cg)
		cols := Im2Col(xg, kH, kW, p) // [n*oh*ow, cg*kH*kW]
		wg := &Tensor{Shape: []int{og, cg * kH * kW}, Data: w.Data[g*og*cg*kH*kW : (g+1)*og*cg*kH*kW]}
		prod := MatMulT(cols, wg) // [n*oh*ow, og]
		// Scatter back into NCHW.
		for ni := 0; ni < n; ni++ {
			for s := 0; s < spatial; s++ {
				src := prod.Data[(ni*spatial+s)*og : (ni*spatial+s+1)*og]
				for oc := 0; oc < og; oc++ {
					out.Data[((ni*o+g*og+oc)*spatial)+s] = src[oc]
				}
			}
		}
	}
	if bias != nil {
		for ni := 0; ni < n; ni++ {
			for oc := 0; oc < o; oc++ {
				b := bias.Data[oc]
				seg := out.Data[(ni*o+oc)*spatial : (ni*o+oc+1)*spatial]
				for i := range seg {
					seg[i] += b
				}
			}
		}
	}
	return out
}

// Conv2dBackward computes the gradients of a grouped convolution given the
// upstream gradient gy [N,O,oH,oW]. It returns (gx, gw, gb).
func Conv2dBackward(x, w, gy *Tensor, p ConvParams) (gx, gw, gb *Tensor) {
	p = p.check()
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	o, cg, kH, kW := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(wd, kW)
	og := o / p.Groups
	spatial := oh * ow

	gw = New(w.Shape...)
	gb = New(o)
	gx = New(x.Shape...)

	for g := 0; g < p.Groups; g++ {
		xg := sliceChannels(x, g*cg, (g+1)*cg)
		cols := Im2Col(xg, kH, kW, p) // [n*spatial, cg*kH*kW]
		// Gather gy for this group into [n*spatial, og].
		gyg := New(n*spatial, og)
		for ni := 0; ni < n; ni++ {
			for oc := 0; oc < og; oc++ {
				src := gy.Data[((ni*o + g*og + oc) * spatial) : ((ni*o+g*og+oc)*spatial)+spatial]
				for s, v := range src {
					gyg.Data[(ni*spatial+s)*og+oc] = v
				}
			}
		}
		// gw_g = gygᵀ × cols : [og, cg*kH*kW]
		gwg := MatMul(Transpose(gyg), cols)
		copy(gw.Data[g*og*cg*kH*kW:(g+1)*og*cg*kH*kW], gwg.Data)
		// gb
		for oc := 0; oc < og; oc++ {
			var s float64
			for r := 0; r < n*spatial; r++ {
				s += float64(gyg.Data[r*og+oc])
			}
			gb.Data[g*og+oc] = float32(s)
		}
		// gcols = gyg × wg : [n*spatial, cg*kH*kW]
		wg := &Tensor{Shape: []int{og, cg * kH * kW}, Data: w.Data[g*og*cg*kH*kW : (g+1)*og*cg*kH*kW]}
		gcols := MatMul(gyg, wg)
		gxg := Col2Im(gcols, n, cg, h, wd, kH, kW, p)
		// Scatter group channels back.
		for ni := 0; ni < n; ni++ {
			for ch := 0; ch < cg; ch++ {
				dst := gx.Data[(ni*c+g*cg+ch)*h*wd : (ni*c+g*cg+ch+1)*h*wd]
				src := gxg.Data[(ni*cg+ch)*h*wd : (ni*cg+ch+1)*h*wd]
				copy(dst, src)
			}
		}
	}
	return gx, gw, gb
}

// sliceChannels returns a copy of x[:, lo:hi, :, :].
func sliceChannels(x *Tensor, lo, hi int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if lo == 0 && hi == c {
		return x
	}
	cg := hi - lo
	out := New(n, cg, h, w)
	for ni := 0; ni < n; ni++ {
		src := x.Data[(ni*c+lo)*h*w : (ni*c+hi)*h*w]
		copy(out.Data[ni*cg*h*w:(ni+1)*cg*h*w], src)
	}
	return out
}

// AvgPool2d performs global or windowed average pooling over [N,C,H,W].
// k==0 means global pooling (output 1×1).
func AvgPool2d(x *Tensor, k, stride int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if k == 0 {
		out := New(n, c, 1, 1)
		inv := 1 / float32(h*w)
		for i := 0; i < n*c; i++ {
			var s float64
			for _, v := range x.Data[i*h*w : (i+1)*h*w] {
				s += float64(v)
			}
			out.Data[i] = float32(s) * inv
		}
		return out
	}
	if stride <= 0 {
		stride = k
	}
	oh, ow := (h-k)/stride+1, (w-k)/stride+1
	out := New(n, c, oh, ow)
	inv := 1 / float32(k*k)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						s += plane[(oy*stride+ky)*w+(ox*stride+kx)]
					}
				}
				out.Data[i*oh*ow+oy*ow+ox] = s * inv
			}
		}
	}
	return out
}

// AvgPool2dBackward distributes gradient uniformly over each pooling window.
func AvgPool2dBackward(x, gy *Tensor, k, stride int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	gx := New(x.Shape...)
	if k == 0 {
		inv := 1 / float32(h*w)
		for i := 0; i < n*c; i++ {
			g := gy.Data[i] * inv
			seg := gx.Data[i*h*w : (i+1)*h*w]
			for j := range seg {
				seg[j] = g
			}
		}
		return gx
	}
	if stride <= 0 {
		stride = k
	}
	oh, ow := (h-k)/stride+1, (w-k)/stride+1
	inv := 1 / float32(k*k)
	for i := 0; i < n*c; i++ {
		plane := gx.Data[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gy.Data[i*oh*ow+oy*ow+ox] * inv
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						plane[(oy*stride+ky)*w+(ox*stride+kx)] += g
					}
				}
			}
		}
	}
	return gx
}
