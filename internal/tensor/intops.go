package tensor

import "fmt"

// Integer kernels for the deploy hot path. These mirror the float GEMM /
// im2col routines above but accumulate in int64, write into caller-owned
// destinations (so a planned arena can be reused across calls), and
// parallelize over rows for large problems.

// Im2ColIntTo unrolls x [N,C,H,W] into dst, a pre-shaped
// [N*outH*outW, C*kH*kW] matrix, with zero point zx subtracted from every
// entry: in-bounds taps contribute x−zx, padded taps contribute −zx, so a
// GEMM over the columns reproduces the direct zero-point-corrected
// convolution exactly.
func Im2ColIntTo(dst, x *IntTensor, kH, kW int, p ConvParams, zx int64) {
	p = p.check()
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := p.ConvOutSize(h, kH), p.ConvOutSize(w, kW)
	colW := c * kH * kW
	if len(dst.Data) != n*oh*ow*colW {
		panic(fmt.Sprintf("tensor: Im2ColIntTo dst %d, want %d", len(dst.Data), n*oh*ow*colW))
	}
	cols := dst.Data
	parallelFor(n, n*c*oh*ow*kH*kW >= 1<<17, func(ni int) {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols[((ni*oh+oy)*ow+ox)*colW : ((ni*oh+oy)*ow+ox+1)*colW]
				ci := 0
				for ch := 0; ch < c; ch++ {
					base := (ni*c + ch) * h * w
					for ky := 0; ky < kH; ky++ {
						iy := oy*p.Stride - p.Padding + ky
						for kx := 0; kx < kW; kx++ {
							ix := ox*p.Stride - p.Padding + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								row[ci] = x.Data[base+iy*w+ix] - zx
							} else {
								row[ci] = -zx
							}
							ci++
						}
					}
				}
			}
		}
	})
}

// intGemmTBlock is the k-blocking width of MatMulIntTTo: B rows are
// walked in panels that stay resident in cache across the row loop.
const intGemmTBlock = 256

// MatMulIntTTo computes dst[m,n] = A[m,k] × Bᵀ (B is [n,k]) into the
// pre-shaped caller-owned dst, accumulating in int64. Rows are
// parallelized and the reduction dimension is blocked; int64 addition is
// exact, so the result is bit-identical to the naive triple loop.
func MatMulIntTTo(dst, a, b *IntTensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulIntTTo shapes %v × %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	if len(dst.Data) != m*n {
		panic(fmt.Sprintf("tensor: MatMulIntTTo dst %d, want %d", len(dst.Data), m*n))
	}
	c := dst.Data
	parallelFor(m, m*k*n >= 1<<16, func(i int) {
		ai := a.Data[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p0 := 0; p0 < k; p0 += intGemmTBlock {
			p1 := p0 + intGemmTBlock
			if p1 > k {
				p1 = k
			}
			for j := 0; j < n; j++ {
				bj := b.Data[j*k+p0 : j*k+p1]
				var s int64
				for p, av := range ai[p0:p1] {
					s += av * bj[p]
				}
				ci[j] += s
			}
		}
	})
}

// ParallelForInt exposes the package's chunked parallel loop to integer
// kernel implementations outside this package. fn must not itself invoke
// a parallel loop.
func ParallelForInt(n int, parallel bool, fn func(i int)) { parallelFor(n, parallel, fn) }

// ParallelForIntN is ParallelForInt with a per-call split bound
// (maxSplit <= 0 means unbounded); the process-wide SetParallelism cap
// still applies on top.
func ParallelForIntN(n, maxSplit int, parallel bool, fn func(i int)) {
	parallelForN(n, maxSplit, parallel, fn)
}

// ParallelForSlots is ParallelForInt for kernels carrying per-chunk
// scratch: fn(i, slot) owns the scratch dedicated to slot for the whole
// chunk (slots are in [0, MaxParallelSlots()) and never run twice
// concurrently). fn must not itself invoke a parallel loop.
func ParallelForSlots(n int, parallel bool, fn func(i, slot int)) { parallelForSlots(n, parallel, fn) }

// ParallelForSlotsN is ParallelForSlots with a per-call split bound
// (maxSplit <= 0 means unbounded); the process-wide SetParallelism cap
// still applies on top.
func ParallelForSlotsN(n, maxSplit int, parallel bool, fn func(i, slot int)) {
	parallelForSlotsN(n, maxSplit, parallel, fn)
}
