package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source used everywhere in the toolkit so that
// experiments are reproducible without relying on global state.
type RNG struct{ r *rand.Rand }

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Float32 returns a uniform value in [0,1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat32 returns a standard normal sample.
func (g *RNG) NormFloat32() float32 { return float32(g.r.NormFloat64()) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Randn fills a new tensor with N(0, std) samples.
func (g *RNG) Randn(std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = g.NormFloat32() * std
	}
	return t
}

// Uniform fills a new tensor with Uniform(lo, hi) samples.
func (g *RNG) Uniform(lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*g.Float32()
	}
	return t
}

// KaimingConv initializes convolution weights [O,C,kH,kW] with Kaiming
// normal fan-in scaling, the standard initialization for ReLU networks.
func (g *RNG) KaimingConv(o, c, kh, kw int) *Tensor {
	fanIn := c * kh * kw
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return g.Randn(std, o, c, kh, kw)
}

// KaimingLinear initializes linear weights [out,in] with Kaiming fan-in.
func (g *RNG) KaimingLinear(out, in int) *Tensor {
	std := float32(math.Sqrt(2 / float64(in)))
	return g.Randn(std, out, in)
}

// XavierLinear initializes linear weights [out,in] with Xavier/Glorot
// scaling, used for transformer projections.
func (g *RNG) XavierLinear(out, in int) *Tensor {
	lim := float32(math.Sqrt(6 / float64(in+out)))
	return g.Uniform(-lim, lim, out, in)
}
