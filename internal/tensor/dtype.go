package tensor

import "fmt"

// DType names the storage element type of an integer tensor. The zero
// value is I64, the legacy 8-byte word every IntTensor used before typed
// storage existed, so untyped code keeps working unchanged. Quantized
// activations live in the narrow types: sub-8-bit codes in I8/U8, the
// 16-bit residual-branch and logit codes in I16/U16, and wide
// intermediate codes in I32. Accumulation is never stored — kernels widen
// in registers and requantize once at the epilogue.
type DType uint8

const (
	// I64 is the legacy widest storage (and the accumulator width of the
	// reference kernels); IntTensor.Data is the I64 view.
	I64 DType = iota
	I8
	U8
	I16
	U16
	I32

	// NumDTypes bounds iteration over dtype-indexed tables.
	NumDTypes = 6
)

// Size returns the storage size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case I8, U8:
		return 1
	case I16, U16:
		return 2
	case I32:
		return 4
	default:
		return 8
	}
}

// Range returns the representable value range [lo, hi].
func (d DType) Range() (int64, int64) {
	switch d {
	case I8:
		return -128, 127
	case U8:
		return 0, 255
	case I16:
		return -32768, 32767
	case U16:
		return 0, 65535
	case I32:
		return -(1 << 31), 1<<31 - 1
	default:
		return -(1 << 62), 1 << 62 // headroom view; I64 holds anything stored here
	}
}

// Contains reports whether every value in [lo, hi] is representable.
func (d DType) Contains(lo, hi int64) bool {
	if d == I64 {
		return true
	}
	dlo, dhi := d.Range()
	return lo >= dlo && hi <= dhi
}

// String implements fmt.Stringer with the serialized spelling.
func (d DType) String() string {
	switch d {
	case I8:
		return "i8"
	case U8:
		return "u8"
	case I16:
		return "i16"
	case U16:
		return "u16"
	case I32:
		return "i32"
	default:
		return "i64"
	}
}

// ParseDType inverts String (checkpoint round trips).
func ParseDType(s string) (DType, error) {
	switch s {
	case "i8":
		return I8, nil
	case "u8":
		return U8, nil
	case "i16":
		return I16, nil
	case "u16":
		return U16, nil
	case "i32":
		return I32, nil
	case "i64":
		return I64, nil
	}
	return I64, fmt.Errorf("tensor: unknown dtype %q", s)
}

// DTypeForRange returns the smallest dtype whose range contains [lo, hi],
// preferring signed at equal width.
func DTypeForRange(lo, hi int64) DType {
	for _, d := range []DType{I8, U8, I16, U16, I32} {
		if d.Contains(lo, hi) {
			return d
		}
	}
	return I64
}

// Elem is the constraint typed hot loops are generic over: one
// instantiation per storage dtype, monomorphized by the compiler.
type Elem interface {
	~int8 | ~uint8 | ~int16 | ~uint16 | ~int32 | ~int64
}
