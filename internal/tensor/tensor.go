// Package tensor implements the dense float32 and integer tensor substrate
// that the rest of the toolkit is built on. Tensors are row-major with an
// explicit shape; all operations are implemented with the standard library
// only. The package provides the minimum surface a compression toolkit
// needs: elementwise arithmetic, reductions, GEMM, and im2col-based
// convolution with full backward passes.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, Numel(shape))}
}

// FromSlice wraps data with shape. The data is not copied; len(data) must
// equal the product of shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= s
	}
	return n
}

// Numel returns the number of elements in t.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the size of dimension i (supports negative indexing).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// One dimension may be -1 and is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, s := range shape {
		if s == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in reshape")
			}
			infer = i
		} else {
			known *= s
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer reshape %v from %v", shape, t.Shape))
		}
		shape[infer] = len(t.Data) / known
	}
	if Numel(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %v", shape, t.Shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.flat(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.flat(idx)] = v }

func (t *Tensor) flat(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in error messages and logs.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v", t.Shape)
	if len(t.Data) <= 8 {
		fmt.Fprintf(&sb, "%v", t.Data)
	} else {
		fmt.Fprintf(&sb, "[%.4g %.4g %.4g ... %.4g]", t.Data[0], t.Data[1], t.Data[2], t.Data[len(t.Data)-1])
	}
	return sb.String()
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies src's data into t; shapes must match in element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, src.Data)
}

// Max returns the maximum element.
func (t *Tensor) Max() float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns the maximum absolute element value.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float32 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.Data))
}

// Std returns the (population) standard deviation of all elements.
func (t *Tensor) Std() float32 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	mu := float64(t.Mean())
	var acc float64
	for _, v := range t.Data {
		d := float64(v) - mu
		acc += d * d
	}
	return float32(math.Sqrt(acc / float64(n)))
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// IntTensor is a dense row-major integer tensor with dtype-tagged
// storage. The zero-valued DType is I64 and stores through Data, the
// legacy []int64 API every existing caller uses; narrow tensors store
// through exactly one of the typed slices instead, and callers reach the
// values through Get/Put or the chunked ReadInt64/WriteInt64 accessors
// (hot loops type-switch once and run monomorphized over the concrete
// slice). Quantized layers declare their logical bit-width separately —
// the dtype only fixes the storage width.
type IntTensor struct {
	Shape []int
	Data  []int64 // the I64 view; nil for narrow dtypes

	DType DType
	I8    []int8
	U8    []uint8
	I16   []int16
	U16   []uint16
	I32   []int32
}

// NewInt allocates a zero-filled I64 integer tensor.
func NewInt(shape ...int) *IntTensor {
	return &IntTensor{Shape: append([]int(nil), shape...), Data: make([]int64, Numel(shape))}
}

// NewTyped allocates a zero-filled tensor with the given storage dtype.
func NewTyped(dt DType, shape ...int) *IntTensor {
	t := &IntTensor{Shape: append([]int(nil), shape...), DType: dt}
	n := Numel(shape)
	switch dt {
	case I8:
		t.I8 = make([]int8, n)
	case U8:
		t.U8 = make([]uint8, n)
	case I16:
		t.I16 = make([]int16, n)
	case U16:
		t.U16 = make([]uint16, n)
	case I32:
		t.I32 = make([]int32, n)
	default:
		t.Data = make([]int64, n)
	}
	return t
}

// IntFromSlice wraps data with shape (no copy).
func IntFromSlice(data []int64, shape ...int) *IntTensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &IntTensor{Shape: append([]int(nil), shape...), Data: data}
}

// Numel returns the number of elements in t.
func (t *IntTensor) Numel() int { return Numel(t.Shape) }

// Get returns element i widened to int64, whatever the storage dtype.
func (t *IntTensor) Get(i int) int64 {
	switch t.DType {
	case I8:
		return int64(t.I8[i])
	case U8:
		return int64(t.U8[i])
	case I16:
		return int64(t.I16[i])
	case U16:
		return int64(t.U16[i])
	case I32:
		return int64(t.I32[i])
	default:
		return t.Data[i]
	}
}

// Put stores v into element i. v must be representable in the storage
// dtype; narrowing is a plain conversion, so out-of-range values are the
// caller's bug (engine buffers derive their dtype from the producing
// op's clamp range, which makes every store representable).
func (t *IntTensor) Put(i int, v int64) {
	switch t.DType {
	case I8:
		t.I8[i] = int8(v)
	case U8:
		t.U8[i] = uint8(v)
	case I16:
		t.I16[i] = int16(v)
	case U16:
		t.U16[i] = uint16(v)
	case I32:
		t.I32[i] = int32(v)
	default:
		t.Data[i] = v
	}
}

func widenTo[E Elem](dst []int64, src []E) {
	for i, v := range src {
		dst[i] = int64(v)
	}
}

func narrowFrom[E Elem](dst []E, src []int64) {
	for i, v := range src {
		dst[i] = E(v)
	}
}

// ReadInt64 widens elements [off, off+len(dst)) into dst — the chunked
// load typed kernels stage narrow operands through (the dtype switch
// runs once per chunk, the copy loop is monomorphized).
func (t *IntTensor) ReadInt64(dst []int64, off int) {
	end := off + len(dst)
	switch t.DType {
	case I8:
		widenTo(dst, t.I8[off:end])
	case U8:
		widenTo(dst, t.U8[off:end])
	case I16:
		widenTo(dst, t.I16[off:end])
	case U16:
		widenTo(dst, t.U16[off:end])
	case I32:
		widenTo(dst, t.I32[off:end])
	default:
		copy(dst, t.Data[off:end])
	}
}

// WriteInt64 narrows src into elements [off, off+len(src)) — the chunked
// store paired with ReadInt64. Values must fit the storage dtype.
func (t *IntTensor) WriteInt64(src []int64, off int) {
	end := off + len(src)
	switch t.DType {
	case I8:
		narrowFrom(t.I8[off:end], src)
	case U8:
		narrowFrom(t.U8[off:end], src)
	case I16:
		narrowFrom(t.I16[off:end], src)
	case U16:
		narrowFrom(t.U16[off:end], src)
	case I32:
		narrowFrom(t.I32[off:end], src)
	default:
		copy(t.Data[off:end], src)
	}
}

// Clone returns a deep copy (same storage dtype).
func (t *IntTensor) Clone() *IntTensor {
	c := NewTyped(t.DType, t.Shape...)
	switch t.DType {
	case I8:
		copy(c.I8, t.I8)
	case U8:
		copy(c.U8, t.U8)
	case I16:
		copy(c.I16, t.I16)
	case U16:
		copy(c.U16, t.U16)
	case I32:
		copy(c.I32, t.I32)
	default:
		copy(c.Data, t.Data)
	}
	return c
}

// Reshape returns a view with a new shape sharing the backing data.
func (t *IntTensor) Reshape(shape ...int) *IntTensor {
	if Numel(shape) != t.Numel() {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %v", shape, t.Shape))
	}
	c := *t
	c.Shape = append([]int(nil), shape...)
	return &c
}

// Float converts to a float32 tensor.
func (t *IntTensor) Float() *Tensor {
	f := New(t.Shape...)
	for i := range f.Data {
		f.Data[i] = float32(t.Get(i))
	}
	return f
}

// MinMax returns the minimum and maximum integer values.
func (t *IntTensor) MinMax() (int64, int64) {
	n := t.Numel()
	if n == 0 {
		return 0, 0
	}
	if t.DType == I64 {
		mn, mx := t.Data[0], t.Data[0]
		for _, v := range t.Data {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mn, mx
	}
	mn, mx := t.Get(0), t.Get(0)
	for i := 1; i < n; i++ {
		v := t.Get(i)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// CountZeros returns the number of zero elements (used to verify that
// pruned models carry real zeros after conversion).
func (t *IntTensor) CountZeros() int {
	n := t.Numel()
	z := 0
	for i := 0; i < n; i++ {
		if t.Get(i) == 0 {
			z++
		}
	}
	return z
}

// String renders a compact description.
func (t *IntTensor) String() string {
	return fmt.Sprintf("IntTensor%v(%s, n=%d)", t.Shape, t.DType, t.Numel())
}
