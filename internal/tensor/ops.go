package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a * b elementwise.
func Mul(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x / y }) }

func zipNew(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AxpyInPlace computes a += alpha*b.
func AxpyInPlace(a *Tensor, alpha float32, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic("tensor: AxpyInPlace size mismatch")
	}
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
}

// Scale returns alpha * a.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = alpha * v
	}
	return out
}

// ScaleInPlace computes a *= alpha.
func ScaleInPlace(a *Tensor, alpha float32) {
	for i := range a.Data {
		a.Data[i] *= alpha
	}
}

// AddScalar returns a + c.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = v + c
	}
	return out
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f elementwise in place.
func ApplyInPlace(a *Tensor, f func(float32) float32) {
	for i, v := range a.Data {
		a.Data[i] = f(v)
	}
}

// Clamp returns a with every element clipped to [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// Dot returns the inner product of two equal-length tensors.
func Dot(a, b *Tensor) float32 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return float32(s)
}

// MatMul computes C[m,n] = A[m,k] × B[k,n] using a cache-friendly ikj loop,
// parallelized over rows for large problems.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v × %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	gemm(a.Data, b.Data, c.Data, m, k, n)
	return c
}

// gemm computes C += A×B for row-major matrices (C is pre-zeroed by callers).
func gemm(a, b, c []float32, m, k, n int) {
	rowFn := func(i int) {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
	parallelFor(m, m*k*n >= 1<<18, rowFn)
}

// poolJob is one chunk of a parallelFor, dispatched to the worker pool.
// Exactly one of fn / fnSlot is set; fnSlot additionally receives the
// chunk's slot index so kernels can use per-chunk scratch without
// synchronization.
type poolJob struct {
	fn     func(i int)
	fnSlot func(i, slot int)
	slot   int
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce    sync.Once
	poolJobs    chan poolJob
	poolWorkers int

	// parCap bounds how many chunks a parallel section may split into,
	// process-wide. 0 means "pool width". It exists so callers that must
	// emulate a narrower machine (bench sweeps over GOMAXPROCS, serving
	// replicas sharing cores) can throttle splitting without restarting
	// the pool: idle workers simply receive no jobs.
	parCap atomic.Int32
)

// SetParallelism bounds the number of chunks every subsequent parallel
// section splits into (including the caller's own chunk). n <= 0 removes
// the bound. The previous value is returned so callers can restore it.
// The bound only limits splitting — it never grows the pool beyond the
// width frozen at first use.
func SetParallelism(n int) int {
	old := int(parCap.Swap(int32(n)))
	return old
}

// Parallelism reports the current effective split width: the frozen pool
// width clamped by SetParallelism.
func Parallelism() int {
	ensurePool()
	return splitWidth(0)
}

// InitParallel forces the worker pool to start now, freezing its width at
// the current GOMAXPROCS, and returns that width. Benchmarks that sweep
// GOMAXPROCS call it once at the highest value so later SetParallelism
// caps can only narrow, never wish for workers that were never started.
func InitParallel() int {
	ensurePool()
	return poolWorkers
}

// splitWidth returns how many chunks a section may split into given the
// pool width, the process-wide cap, and a per-call bound (0 = none).
func splitWidth(maxSplit int) int {
	w := poolWorkers
	if c := int(parCap.Load()); c > 0 && c < w {
		w = c
	}
	if maxSplit > 0 && maxSplit < w {
		w = maxSplit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensurePool lazily starts the process-wide worker pool. Persistent
// workers avoid spawning goroutines on every parallel section, which
// keeps hot inference loops allocation-free. The worker count is frozen
// at first use: slot-carrying loops and the scratch arrays sized from
// MaxParallelSlots must agree forever, even if GOMAXPROCS changes later.
func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolWorkers = n
		poolJobs = make(chan poolJob, 4*n)
		for w := 0; w < n; w++ {
			go func() {
				for j := range poolJobs {
					if j.fnSlot != nil {
						for i := j.lo; i < j.hi; i++ {
							j.fnSlot(i, j.slot)
						}
					} else {
						for i := j.lo; i < j.hi; i++ {
							j.fn(i)
						}
					}
					j.wg.Done()
				}
			}()
		}
	})
}

// parallelFor runs fn(i) for i in [0,n), in parallel when parallel is
// true. The caller executes the first chunk itself and chunks that do not
// fit the pool queue run inline, so progress never depends on a free
// worker. fn must not call parallelFor (workers do not re-dispatch).
func parallelFor(n int, parallel bool, fn func(i int)) {
	parallelForN(n, 0, parallel, fn)
}

// parallelForN is parallelFor with a per-call split bound (0 = none),
// further clamped by the process-wide SetParallelism cap.
func parallelForN(n, maxSplit int, parallel bool, fn func(i int)) {
	if !parallel || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ensurePool()
	workers := splitWidth(maxSplit)
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case poolJobs <- poolJob{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			for i := lo; i < hi; i++ {
				fn(i)
			}
			wg.Done()
		}
	}
	end := chunk
	if end > n {
		end = n
	}
	for i := 0; i < end; i++ {
		fn(i)
	}
	wg.Wait()
}

// MaxParallelSlots bounds the slot indices parallelForSlots hands out:
// slot 0 runs on the caller, the rest on pool workers. Kernels size
// per-slot scratch arrays with it. The value is frozen when the worker
// pool first starts, so scratch sized at executor bind time stays valid
// even if GOMAXPROCS changes afterwards.
func MaxParallelSlots() int {
	ensurePool()
	return poolWorkers
}

// parallelForSlots is parallelFor for kernels that need per-chunk
// scratch: fn(i, slot) may freely reuse scratch dedicated to slot, since
// a slot is never executed by two goroutines at once. Slots are in
// [0, MaxParallelSlots()).
func parallelForSlots(n int, parallel bool, fn func(i, slot int)) {
	parallelForSlotsN(n, 0, parallel, fn)
}

// parallelForSlotsN is parallelForSlots with a per-call split bound
// (0 = none), further clamped by the process-wide SetParallelism cap.
func parallelForSlotsN(n, maxSplit int, parallel bool, fn func(i, slot int)) {
	if !parallel || n < 2 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	ensurePool()
	workers := splitWidth(maxSplit)
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	slot := 1
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case poolJobs <- poolJob{fnSlot: fn, slot: slot, lo: lo, hi: hi, wg: &wg}:
		default:
			// Queue full: run inline on the caller's slot (0), which is
			// only used between the dispatch loop and the tail chunk here,
			// so no other goroutine shares it.
			for i := lo; i < hi; i++ {
				fn(i, 0)
			}
			wg.Done()
		}
		slot++
	}
	end := chunk
	if end > n {
		end = n
	}
	for i := 0; i < end; i++ {
		fn(i, 0)
	}
	wg.Wait()
}

// MatMulT computes A[m,k] × Bᵀ where b is [n,k], returning [m,n]. This is the
// natural layout for linear layers whose weights are stored [out,in].
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT shapes %v × %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	c := New(m, n)
	parallelFor(m, m*k*n >= 1<<18, func(i int) {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	})
	return c
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// SumAxis0 sums a [m,n] tensor over rows, returning [n].
func SumAxis0(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: SumAxis0 requires rank 2")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Softmax computes a row-wise softmax over the last dimension.
func Softmax(a *Tensor) *Tensor {
	rows, cols := flatten2D(a)
	out := New(a.Shape...)
	for r := 0; r < rows; r++ {
		in := a.Data[r*cols : (r+1)*cols]
		o := out.Data[r*cols : (r+1)*cols]
		m := float32(math.Inf(-1))
		for _, v := range in {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range in {
			e := float32(math.Exp(float64(v - m)))
			o[j] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
	return out
}

// LogSoftmax computes a row-wise log-softmax over the last dimension.
func LogSoftmax(a *Tensor) *Tensor {
	rows, cols := flatten2D(a)
	out := New(a.Shape...)
	for r := 0; r < rows; r++ {
		in := a.Data[r*cols : (r+1)*cols]
		o := out.Data[r*cols : (r+1)*cols]
		m := float32(math.Inf(-1))
		for _, v := range in {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range in {
			sum += math.Exp(float64(v - m))
		}
		lse := m + float32(math.Log(sum))
		for j, v := range in {
			o[j] = v - lse
		}
	}
	return out
}

func flatten2D(a *Tensor) (rows, cols int) {
	if len(a.Shape) == 0 {
		panic("tensor: rank 0")
	}
	cols = a.Shape[len(a.Shape)-1]
	rows = len(a.Data) / cols
	return rows, cols
}

// AllClose reports whether all elements of a and b differ by at most atol +
// rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float32) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		diff := a.Data[i] - b.Data[i]
		if diff < 0 {
			diff = -diff
		}
		ref := b.Data[i]
		if ref < 0 {
			ref = -ref
		}
		if diff > atol+rtol*ref {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest |a-b| elementwise.
func MaxAbsDiff(a, b *Tensor) float32 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: MaxAbsDiff size mismatch")
	}
	var m float32
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
