package nn

import (
	"math"
	"testing"
	"testing/quick"

	"torch2chip/internal/tensor"
)

// checkGrad verifies a layer's input gradient against central differences
// under the scalar loss L = <f(x), gy>.
func checkGrad(t *testing.T, l Layer, x, gy *tensor.Tensor, idxs []int, tol float64) {
	t.Helper()
	loss := func() float64 {
		out := l.Forward(x)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(gy.Data[i])
		}
		return s
	}
	l.Forward(x)
	gx := l.Backward(gy)
	const eps = 1e-2
	for _, idx := range idxs {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := loss()
		x.Data[idx] = orig - eps
		lm := loss()
		x.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(gx.Data[idx])) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: numerical %v analytic %v", idx, num, gx.Data[idx])
		}
	}
}

// checkParamGrad verifies a parameter gradient numerically.
func checkParamGrad(t *testing.T, l Layer, p *Param, x, gy *tensor.Tensor, idxs []int, tol float64) {
	t.Helper()
	loss := func() float64 {
		out := l.Forward(x)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(gy.Data[i])
		}
		return s
	}
	ZeroGrads(l)
	l.Forward(x)
	l.Backward(gy)
	const eps = 1e-2
	for _, idx := range idxs {
		orig := p.Data.Data[idx]
		p.Data.Data[idx] = orig + eps
		lp := loss()
		p.Data.Data[idx] = orig - eps
		lm := loss()
		p.Data.Data[idx] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(p.Grad.Data[idx])) > tol*(1+math.Abs(num)) {
			t.Fatalf("param %s grad[%d]: numerical %v analytic %v", p.Name, idx, num, p.Grad.Data[idx])
		}
	}
}

func TestLinearForwardKnown(t *testing.T) {
	g := tensor.NewRNG(1)
	l := NewLinear(g, 2, 3, true)
	l.W.Data = tensor.FromSlice([]float32{1, 0, 0, 1, 1, 1}, 3, 2)
	l.B.Data = tensor.FromSlice([]float32{0.5, -0.5, 0}, 3)
	x := tensor.FromSlice([]float32{2, 3}, 1, 2)
	y := l.Forward(x)
	want := []float32{2.5, 2.5, 5}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
}

func TestLinearGradients(t *testing.T) {
	g := tensor.NewRNG(2)
	l := NewLinear(g, 5, 4, true)
	x := g.Randn(1, 3, 5)
	gy := g.Randn(1, 3, 4)
	checkGrad(t, l, x, gy, []int{0, 7, 14}, 1e-2)
	checkParamGrad(t, l, l.W, x, gy, []int{0, 9, 19}, 1e-2)
	checkParamGrad(t, l, l.B, x, gy, []int{0, 3}, 1e-2)
}

func TestConv2dLayerGradients(t *testing.T) {
	g := tensor.NewRNG(3)
	c := NewConv2d(g, 2, 3, 3, 1, 1, 1, true)
	x := g.Randn(1, 2, 2, 5, 5)
	y := c.Forward(x)
	gy := g.Randn(1, y.Shape...)
	checkGrad(t, c, x, gy, []int{0, 20, 49}, 1e-2)
	checkParamGrad(t, c, c.W, x, gy, []int{0, 25, 53}, 1e-2)
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y := r.Forward(x)
	if y.Data[0] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu = %v", y.Data)
	}
	g := r.Backward(tensor.FromSlice([]float32{5, 5, 5}, 3))
	if g.Data[0] != 0 || g.Data[1] != 0 || g.Data[2] != 5 {
		t.Fatalf("relu grad = %v", g.Data)
	}
}

func TestReLU6(t *testing.T) {
	r := &ReLU6{}
	x := tensor.FromSlice([]float32{-1, 3, 7}, 3)
	y := r.Forward(x)
	if y.Data[0] != 0 || y.Data[1] != 3 || y.Data[2] != 6 {
		t.Fatalf("relu6 = %v", y.Data)
	}
	g := r.Backward(tensor.FromSlice([]float32{1, 1, 1}, 3))
	if g.Data[0] != 0 || g.Data[1] != 1 || g.Data[2] != 0 {
		t.Fatalf("relu6 grad = %v", g.Data)
	}
}

func TestGELUGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(4)
	gl := &GELU{}
	x := g.Randn(1, 10)
	gy := g.Randn(1, 10)
	checkGrad(t, gl, x, gy, []int{0, 4, 9}, 1e-2)
}

func TestGELUKnownValues(t *testing.T) {
	gl := &GELU{}
	x := tensor.FromSlice([]float32{0, 1, -1}, 3)
	y := gl.Forward(x)
	if y.Data[0] != 0 {
		t.Fatalf("gelu(0) = %v", y.Data[0])
	}
	if math.Abs(float64(y.Data[1])-0.8412) > 1e-3 {
		t.Fatalf("gelu(1) = %v", y.Data[1])
	}
	if math.Abs(float64(y.Data[2])+0.1588) > 1e-3 {
		t.Fatalf("gelu(-1) = %v", y.Data[2])
	}
}

func TestBatchNormTrainStatistics(t *testing.T) {
	bn := NewBatchNorm2d(2)
	g := tensor.NewRNG(5)
	x := g.Randn(3, 4, 2, 6, 6)
	y := bn.Forward(x)
	// Per-channel output must be ~zero-mean unit-variance.
	sp := 36
	n := 4
	for ch := 0; ch < 2; ch++ {
		var sum, sq float64
		for ni := 0; ni < n; ni++ {
			for i := 0; i < sp; i++ {
				v := float64(y.Data[(ni*2+ch)*sp+i])
				sum += v
				sq += v * v
			}
		}
		cnt := float64(n * sp)
		mu := sum / cnt
		va := sq/cnt - mu*mu
		if math.Abs(mu) > 1e-4 || math.Abs(va-1) > 1e-2 {
			t.Fatalf("ch %d: mean %v var %v", ch, mu, va)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2d(1)
	bn.SetTraining(false)
	bn.RunningMean.Data[0] = 2
	bn.RunningVar.Data[0] = 4
	x := tensor.FromSlice([]float32{4}, 1, 1, 1, 1)
	y := bn.Forward(x)
	want := (4.0 - 2.0) / math.Sqrt(4+1e-5)
	if math.Abs(float64(y.Data[0])-want) > 1e-5 {
		t.Fatalf("eval bn = %v, want %v", y.Data[0], want)
	}
}

func TestBatchNormGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(6)
	bn := NewBatchNorm2d(2)
	// Non-trivial gamma/beta.
	bn.Gamma.Data.Data[0] = 1.5
	bn.Beta.Data.Data[1] = -0.3
	x := g.Randn(1, 2, 2, 3, 3)
	gy := g.Randn(1, 2, 2, 3, 3)
	checkGrad(t, bn, x, gy, []int{0, 10, 35}, 5e-2)
	checkParamGrad(t, bn, bn.Gamma, x, gy, []int{0, 1}, 1e-2)
	checkParamGrad(t, bn, bn.Beta, x, gy, []int{0, 1}, 1e-2)
}

func TestLayerNormGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(7)
	ln := NewLayerNorm(8)
	x := g.Randn(1, 4, 8)
	gy := g.Randn(1, 4, 8)
	checkGrad(t, ln, x, gy, []int{0, 17, 31}, 5e-2)
	checkParamGrad(t, ln, ln.Gamma, x, gy, []int{0, 7}, 1e-2)
}

func TestLayerNormRowStatistics(t *testing.T) {
	g := tensor.NewRNG(8)
	ln := NewLayerNorm(16)
	x := g.Randn(2, 5, 16)
	y := ln.Forward(x)
	for r := 0; r < 5; r++ {
		row := y.Data[r*16 : (r+1)*16]
		var sum, sq float64
		for _, v := range row {
			sum += float64(v)
			sq += float64(v) * float64(v)
		}
		mu := sum / 16
		va := sq/16 - mu*mu
		if math.Abs(mu) > 1e-4 || math.Abs(va-1) > 1e-2 {
			t.Fatalf("row %d: mean %v var %v", r, mu, va)
		}
	}
}

func TestSoftmaxLayerGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(9)
	s := &SoftmaxLayer{}
	x := g.Randn(1, 3, 6)
	gy := g.Randn(1, 3, 6)
	checkGrad(t, s, x, gy, []int{0, 9, 17}, 5e-2)
}

func TestDropoutTrainEval(t *testing.T) {
	g := tensor.NewRNG(10)
	d := NewDropout(g, 0.5)
	x := tensor.Ones(1, 1000)
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v)-2) > 1e-6 {
			t.Fatalf("survivor not scaled: %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout rate off: %d/1000 zeros", zeros)
	}
	d.SetTraining(false)
	y2 := d.Forward(x)
	if !tensor.AllClose(x, y2, 0, 0) {
		t.Fatal("eval dropout must be identity")
	}
}

func TestSequentialComposition(t *testing.T) {
	g := tensor.NewRNG(11)
	s := NewSequential(NewLinear(g, 4, 8, true), &ReLU{}, NewLinear(g, 8, 2, true))
	x := g.Randn(1, 3, 4)
	y := s.Forward(x)
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("shape %v", y.Shape)
	}
	if len(s.Params()) != 4 {
		t.Fatalf("params %d", len(s.Params()))
	}
	gy := g.Randn(1, 3, 2)
	gx := s.Backward(gy)
	if gx.Shape[0] != 3 || gx.Shape[1] != 4 {
		t.Fatalf("grad shape %v", gx.Shape)
	}
}

func TestResidualForwardBackward(t *testing.T) {
	g := tensor.NewRNG(12)
	r := NewResidual(NewLinear(g, 4, 4, false), nil)
	x := g.Randn(1, 2, 4)
	y := r.Forward(x)
	// y = Wx + x
	w := r.Body.(*Linear)
	want := tensor.Add(tensor.MatMulT(x, w.W.Data), x)
	if !tensor.AllClose(y, want, 1e-5, 1e-5) {
		t.Fatal("residual forward mismatch")
	}
	checkGrad(t, r, x, g.Randn(1, 2, 4), []int{0, 5}, 1e-2)
}

func TestMultiHeadAttentionShapes(t *testing.T) {
	g := tensor.NewRNG(13)
	m := NewMultiHeadAttention(g, 16, 4)
	x := g.Randn(1, 2, 5, 16)
	y := m.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 5 || y.Shape[2] != 16 {
		t.Fatalf("shape %v", y.Shape)
	}
	if len(m.Params()) != 8 {
		t.Fatalf("params %d", len(m.Params()))
	}
}

func TestMultiHeadAttentionGradientNumerical(t *testing.T) {
	g := tensor.NewRNG(14)
	m := NewMultiHeadAttention(g, 8, 2)
	x := g.Randn(1, 1, 4, 8)
	gy := g.Randn(1, 1, 4, 8)
	checkGrad(t, m, x, gy, []int{0, 13, 31}, 5e-2)
	checkParamGrad(t, m, m.Q.(*Linear).W, x, gy, []int{0, 31}, 5e-2)
	checkParamGrad(t, m, m.V.(*Linear).W, x, gy, []int{5, 20}, 5e-2)
	checkParamGrad(t, m, m.Proj.(*Linear).W, x, gy, []int{7, 40}, 5e-2)
}

func TestCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := CrossEntropyLoss(logits, []int{0, 3})
	if math.Abs(float64(loss)-math.Log(4)) > 1e-5 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient rows sum to zero.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.Data[i*4+j])
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestCrossEntropyGradNumerical(t *testing.T) {
	g := tensor.NewRNG(15)
	logits := g.Randn(1, 3, 5)
	labels := []int{1, 0, 4}
	_, grad := CrossEntropyLoss(logits, labels)
	const eps = 1e-2
	for _, idx := range []int{0, 7, 14} {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		lp, _ := CrossEntropyLoss(logits, labels)
		logits.Data[idx] = orig - eps
		lm, _ := CrossEntropyLoss(logits, labels)
		logits.Data[idx] = orig
		num := float64(lp-lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[idx])) > 1e-2 {
			t.Fatalf("ce grad[%d]: %v vs %v", idx, num, grad.Data[idx])
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 2, 3, 9, 1, 1}, 2, 3)
	acc := Accuracy(logits, []int{2, 0})
	if acc != 1 {
		t.Fatalf("acc = %v", acc)
	}
	acc = Accuracy(logits, []int{0, 0})
	if acc != 0.5 {
		t.Fatalf("acc = %v", acc)
	}
}

func TestKLDivLossZeroWhenEqual(t *testing.T) {
	g := tensor.NewRNG(16)
	logits := g.Randn(1, 2, 6)
	target := tensor.Softmax(logits)
	loss, _ := KLDivLoss(logits, target)
	if math.Abs(float64(loss)) > 1e-5 {
		t.Fatalf("KL(p‖p) = %v, want 0", loss)
	}
}

func TestMSELoss(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSELoss(p, q)
	if math.Abs(float64(loss)-2.5) > 1e-6 {
		t.Fatalf("mse = %v", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := &Flatten{}
	g := tensor.NewRNG(17)
	x := g.Randn(1, 2, 3, 4, 4)
	y := f.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 48 {
		t.Fatalf("shape %v", y.Shape)
	}
	back := f.Backward(y)
	if back.Shape[3] != 4 || len(back.Shape) != 4 {
		t.Fatalf("back shape %v", back.Shape)
	}
}

func TestSetTrainingPropagates(t *testing.T) {
	g := tensor.NewRNG(18)
	bn := NewBatchNorm2d(3)
	s := NewSequential(NewConv2d(g, 3, 3, 3, 1, 1, 1, false), bn, &ReLU{})
	SetTraining(s, false)
	if bn.training {
		t.Fatal("SetTraining must reach nested BatchNorm")
	}
	SetTraining(s, true)
	if !bn.training {
		t.Fatal("SetTraining must switch back")
	}
}

func TestBatchNormInvariantProperty(t *testing.T) {
	// BN(ax+b) with default gamma/beta equals BN(x) for a>0 (shift/scale
	// invariance of normalization), checked via testing/quick.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		a := g.Float32()*2 + 0.5
		b := g.NormFloat32()
		x := g.Randn(1, 2, 1, 4, 4)
		bn1 := NewBatchNorm2d(1)
		bn2 := NewBatchNorm2d(1)
		y1 := bn1.Forward(x)
		x2 := tensor.AddScalar(tensor.Scale(x, a), b)
		y2 := bn2.Forward(x2)
		return tensor.AllClose(y1, y2, 1e-2, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
