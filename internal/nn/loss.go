package nn

import (
	"math"

	"torch2chip/internal/tensor"
)

// CrossEntropyLoss computes softmax cross entropy over logits [N, C] with
// integer class labels, returning the mean loss and the logits gradient.
func CrossEntropyLoss(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	ls := tensor.LogSoftmax(logits)
	grad := tensor.New(logits.Shape...)
	var loss float64
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		loss -= float64(ls.Data[i*c+y])
		for j := 0; j < c; j++ {
			p := float32(math.Exp(float64(ls.Data[i*c+j])))
			if j == y {
				grad.Data[i*c+j] = (p - 1) * inv
			} else {
				grad.Data[i*c+j] = p * inv
			}
		}
	}
	return float32(loss) / float32(n), grad
}

// MSELoss computes mean squared error and its gradient with respect to pred.
func MSELoss(pred, target *tensor.Tensor) (float32, *tensor.Tensor) {
	if len(pred.Data) != len(target.Data) {
		panic("nn: MSELoss size mismatch")
	}
	grad := tensor.New(pred.Shape...)
	var loss float64
	inv := 2 / float32(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = d * inv
	}
	return float32(loss) / float32(len(pred.Data)), grad
}

// Accuracy returns the top-1 accuracy of logits [N, C] against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float32 {
	n, c := logits.Shape[0], logits.Shape[1]
	correct := 0
	for i := 0; i < n; i++ {
		best, bi := float32(math.Inf(-1)), 0
		for j := 0; j < c; j++ {
			if logits.Data[i*c+j] > best {
				best, bi = logits.Data[i*c+j], j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float32(correct) / float32(n)
}

// KLDivLoss computes KL(target ‖ softmax(logits)) for soft-label
// distillation, returning loss and logits gradient. target rows must be
// probability distributions.
func KLDivLoss(logits, target *tensor.Tensor) (float32, *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	ls := tensor.LogSoftmax(logits)
	grad := tensor.New(logits.Shape...)
	var loss float64
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			tj := target.Data[i*c+j]
			if tj > 0 {
				loss += float64(tj) * (math.Log(float64(tj)) - float64(ls.Data[i*c+j]))
			}
		}
		// d/dlogits = softmax(logits) - target, averaged over batch
		for j := 0; j < c; j++ {
			p := float32(math.Exp(float64(ls.Data[i*c+j])))
			grad.Data[i*c+j] = (p - target.Data[i*c+j]) * inv
		}
	}
	return float32(loss) / float32(n), grad
}
