// Package nn provides the neural-network layer substrate: an explicit
// forward/backward Layer interface (no tape autograd), parameter containers,
// and the standard layers needed by the paper's model zoo (convolutions,
// normalization, attention, pooling, activations, losses).
package nn

import "torch2chip/internal/tensor"

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay marks parameters (norms, biases, quantizer clip values) that
	// are excluded from weight decay.
	NoDecay bool
}

// NewParam allocates a parameter wrapping data with a zero gradient.
func NewParam(name string, data *tensor.Tensor) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is the unit of computation. Backward consumes the gradient with
// respect to the layer output and must return the gradient with respect to
// the layer input, accumulating parameter gradients internally.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Trainable is implemented by layers whose behaviour differs between
// training and evaluation (BatchNorm, dropout, quantizers).
type Trainable interface {
	SetTraining(train bool)
}

// SetTraining recursively switches train/eval mode on a layer tree.
func SetTraining(l Layer, train bool) {
	if t, ok := l.(Trainable); ok {
		t.SetTraining(train)
	}
	if c, ok := l.(Container); ok {
		for _, sub := range c.Children() {
			SetTraining(sub, train)
		}
	}
}

// Container is implemented by layers that own sub-layers.
type Container interface {
	Children() []Layer
}

// CollectParams walks a layer tree and returns all parameters.
func CollectParams(l Layer) []*Param {
	return l.Params()
}

// ZeroGrads clears all gradients in a layer tree.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// Identity is a no-op layer, useful as a placeholder in residual branches.
type Identity struct{}

// Forward returns x unchanged.
func (Identity) Forward(x *tensor.Tensor) *tensor.Tensor { return x }

// Backward returns grad unchanged.
func (Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params returns nil.
func (Identity) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the layers in reverse.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all parameters of the chain.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Children returns the sub-layers.
func (s *Sequential) Children() []Layer { return s.Layers }

// Residual computes Body(x) + Shortcut(x) with a shared ReLU afterwards left
// to the caller. Shortcut may be Identity.
type Residual struct {
	Body     Layer
	Shortcut Layer
}

// NewResidual builds a residual block wrapper.
func NewResidual(body, shortcut Layer) *Residual {
	if shortcut == nil {
		shortcut = Identity{}
	}
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward computes body(x) + shortcut(x).
func (r *Residual) Forward(x *tensor.Tensor) *tensor.Tensor {
	b := r.Body.Forward(x)
	s := r.Shortcut.Forward(x)
	return tensor.Add(b, s)
}

// Backward propagates grad through both branches and sums input grads.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gb := r.Body.Backward(grad)
	gs := r.Shortcut.Backward(grad)
	return tensor.Add(gb, gs)
}

// Params returns parameters of both branches.
func (r *Residual) Params() []*Param {
	return append(r.Body.Params(), r.Shortcut.Params()...)
}

// Children returns both branches.
func (r *Residual) Children() []Layer { return []Layer{r.Body, r.Shortcut} }

// Flatten reshapes [N, ...] to [N, rest].
type Flatten struct{ inShape []int }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return x.Reshape(x.Shape[0], -1)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Rewirer is implemented by composite layers whose sub-layers can be
// replaced in place (e.g. by the quantization pass). The callback returns
// the replacement for each replaceable child.
type Rewirer interface {
	Rewire(func(Layer) Layer)
}
