package nn

import (
	"math"

	"torch2chip/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct{ mask []bool }

// Forward computes max(0, x).
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			out.Data[i] = g
		}
	}
	return out
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// ReLU6 clips activations to [0, 6]; the MobileNet activation.
type ReLU6 struct{ mask []bool }

// Forward computes min(max(0,x),6).
func (r *ReLU6) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		in := v > 0 && v < 6
		r.mask[i] = in
		switch {
		case v <= 0:
		case v >= 6:
			out.Data[i] = 6
		default:
			out.Data[i] = v
		}
	}
	return out
}

// Backward gates the gradient to the linear region.
func (r *ReLU6) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			out.Data[i] = g
		}
	}
	return out
}

// Params returns nil.
func (r *ReLU6) Params() []*Param { return nil }

// GELU is the Gaussian error linear unit (tanh approximation), used by ViT.
type GELU struct{ inZ *tensor.Tensor }

const geluC = 0.7978845608028654 // sqrt(2/pi)

func geluF(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

// Forward applies GELU elementwise.
func (g *GELU) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.inZ = x
	return tensor.Apply(x, func(v float32) float32 { return float32(geluF(float64(v))) })
}

// Backward applies the GELU derivative.
func (g *GELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(grad.Shape...)
	for i, gr := range grad.Data {
		x := float64(g.inZ.Data[i])
		u := geluC * (x + 0.044715*x*x*x)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*x*x)
		d := 0.5*(1+t) + 0.5*x*(1-t*t)*du
		out.Data[i] = gr * float32(d)
	}
	return out
}

// Params returns nil.
func (g *GELU) Params() []*Param { return nil }

// SoftmaxLayer applies softmax over the last dimension; used inside
// attention where the paper replaces it with a LUT at deploy time.
type SoftmaxLayer struct{ outZ *tensor.Tensor }

// Forward computes row-wise softmax.
func (s *SoftmaxLayer) Forward(x *tensor.Tensor) *tensor.Tensor {
	s.outZ = tensor.Softmax(x)
	return s.outZ
}

// Backward computes the softmax Jacobian-vector product.
func (s *SoftmaxLayer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := grad.Shape[len(grad.Shape)-1]
	rows := grad.Numel() / d
	gx := tensor.New(grad.Shape...)
	for r := 0; r < rows; r++ {
		g := grad.Data[r*d : (r+1)*d]
		y := s.outZ.Data[r*d : (r+1)*d]
		var dot float64
		for i := range g {
			dot += float64(g[i]) * float64(y[i])
		}
		o := gx.Data[r*d : (r+1)*d]
		for i := range g {
			o[i] = y[i] * (g[i] - float32(dot))
		}
	}
	return gx
}

// Params returns nil.
func (s *SoftmaxLayer) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training, scaling
// survivors by 1/(1-P).
type Dropout struct {
	P        float32
	RNG      *tensor.RNG
	training bool
	mask     []float32
}

// NewDropout creates a dropout layer.
func NewDropout(g *tensor.RNG, p float32) *Dropout {
	return &Dropout{P: p, RNG: g, training: true}
}

// SetTraining switches mode; dropout is identity at eval time.
func (d *Dropout) SetTraining(t bool) { d.training = t }

// Forward applies the random mask.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.P == 0 {
		return x
	}
	out := tensor.New(x.Shape...)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.RNG.Float32() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.P == 0 {
		return grad
	}
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		out.Data[i] = g * d.mask[i]
	}
	return out
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }
