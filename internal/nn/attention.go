package nn

import (
	"math"

	"torch2chip/internal/tensor"
)

// MultiHeadAttention implements standard self-attention over [N, T, D]
// inputs. Q/K/V/output projections are Linear layers so that the
// quantization toolkit can swap them for dual-path quantized layers, and
// the two matmuls (QKᵀ and attn·V) are exposed as hooks that quantized
// attention overrides (Figure 4 of the paper).
type MultiHeadAttention struct {
	// The four projections are Layer-typed so that the quantization pass
	// can swap in dual-path quantized linears without touching the
	// attention math.
	Q, K, V, Proj Layer
	Softmax       *SoftmaxLayer
	Heads         int
	D             int

	// MatMulQK and MatMulAV allow quantized attention to intercept the
	// two inner matmuls. They default to float matmuls.
	MatMulQK func(q, k *tensor.Tensor) *tensor.Tensor // q[T,dh] × kᵀ[T,dh] → [T,T]
	MatMulAV func(a, v *tensor.Tensor) *tensor.Tensor // a[T,T] × v[T,dh] → [T,dh]

	// caches for backward
	inZ                 *tensor.Tensor
	qh, kh, vh          []*tensor.Tensor // per (batch, head)
	attn                []*tensor.Tensor
	n, t                int
	gradQ, gradK, gradV *tensor.Tensor
}

// NewMultiHeadAttention builds an MHA block with Xavier-initialized
// projections.
func NewMultiHeadAttention(g *tensor.RNG, d, heads int) *MultiHeadAttention {
	q, k, v, pr := NewLinear(g, d, d, true), NewLinear(g, d, d, true), NewLinear(g, d, d, true), NewLinear(g, d, d, true)
	for _, l := range []*Linear{q, k, v, pr} {
		l.W.Data = g.XavierLinear(d, d)
	}
	m := &MultiHeadAttention{
		Q: q, K: k, V: v, Proj: pr,
		Softmax: &SoftmaxLayer{}, Heads: heads, D: d,
	}
	m.MatMulQK = func(q, k *tensor.Tensor) *tensor.Tensor { return tensor.MatMulT(q, k) }
	m.MatMulAV = func(a, v *tensor.Tensor) *tensor.Tensor { return tensor.MatMul(a, v) }
	return m
}

// splitHeads slices a [N*T, D] projection into per-(batch,head) [T, dh]
// matrices.
func (m *MultiHeadAttention) splitHeads(x *tensor.Tensor, n, t int) []*tensor.Tensor {
	dh := m.D / m.Heads
	out := make([]*tensor.Tensor, n*m.Heads)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < m.Heads; h++ {
			mh := tensor.New(t, dh)
			for ti := 0; ti < t; ti++ {
				src := x.Data[(ni*t+ti)*m.D+h*dh : (ni*t+ti)*m.D+(h+1)*dh]
				copy(mh.Data[ti*dh:(ti+1)*dh], src)
			}
			out[ni*m.Heads+h] = mh
		}
	}
	return out
}

// mergeHeads is the inverse of splitHeads.
func (m *MultiHeadAttention) mergeHeads(hs []*tensor.Tensor, n, t int) *tensor.Tensor {
	dh := m.D / m.Heads
	out := tensor.New(n*t, m.D)
	for ni := 0; ni < n; ni++ {
		for h := 0; h < m.Heads; h++ {
			mh := hs[ni*m.Heads+h]
			for ti := 0; ti < t; ti++ {
				dst := out.Data[(ni*t+ti)*m.D+h*dh : (ni*t+ti)*m.D+(h+1)*dh]
				copy(dst, mh.Data[ti*dh:(ti+1)*dh])
			}
		}
	}
	return out
}

// Forward computes self-attention for x of shape [N, T, D].
func (m *MultiHeadAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, t := x.Shape[0], x.Shape[1]
	m.n, m.t = n, t
	m.inZ = x
	flat := x.Reshape(n*t, m.D)
	q := m.Q.Forward(flat)
	k := m.K.Forward(flat)
	v := m.V.Forward(flat)
	m.qh = m.splitHeads(q, n, t)
	m.kh = m.splitHeads(k, n, t)
	m.vh = m.splitHeads(v, n, t)
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	m.attn = make([]*tensor.Tensor, n*m.Heads)
	outs := make([]*tensor.Tensor, n*m.Heads)
	for i := range m.qh {
		scores := m.MatMulQK(m.qh[i], m.kh[i])
		tensor.ScaleInPlace(scores, scale)
		a := tensor.Softmax(scores)
		m.attn[i] = a
		outs[i] = m.MatMulAV(a, m.vh[i])
	}
	merged := m.mergeHeads(outs, n, t)
	y := m.Proj.Forward(merged)
	return y.Reshape(n, t, m.D)
}

// Backward propagates through the attention computation.
func (m *MultiHeadAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, t := m.n, m.t
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	gflat := grad.Reshape(n*t, m.D)
	gmerged := m.Proj.Backward(gflat)
	ghs := m.splitHeads(gmerged, n, t)

	gq := make([]*tensor.Tensor, n*m.Heads)
	gk := make([]*tensor.Tensor, n*m.Heads)
	gv := make([]*tensor.Tensor, n*m.Heads)
	for i := range ghs {
		// out = attn × v
		ga := tensor.MatMulT(ghs[i], m.vh[i]) // [t,dh] × vᵀ → [t,t]
		gv[i] = tensor.MatMul(tensor.Transpose(m.attn[i]), ghs[i])
		// softmax backward per row
		gs := tensor.New(t, t)
		for r := 0; r < t; r++ {
			a := m.attn[i].Data[r*t : (r+1)*t]
			g := ga.Data[r*t : (r+1)*t]
			var dot float64
			for j := range a {
				dot += float64(a[j]) * float64(g[j])
			}
			o := gs.Data[r*t : (r+1)*t]
			for j := range a {
				o[j] = a[j] * (g[j] - float32(dot)) * scale
			}
		}
		// scores = q × kᵀ
		gq[i] = tensor.MatMul(gs, m.kh[i])
		gk[i] = tensor.MatMul(tensor.Transpose(gs), m.qh[i])
	}
	gqm := m.mergeHeads(gq, n, t)
	gkm := m.mergeHeads(gk, n, t)
	gvm := m.mergeHeads(gv, n, t)
	gx := m.Q.Backward(gqm)
	tensor.AddInPlace(gx, m.K.Backward(gkm))
	tensor.AddInPlace(gx, m.V.Backward(gvm))
	return gx.Reshape(n, t, m.D)
}

// Params returns all projection parameters.
func (m *MultiHeadAttention) Params() []*Param {
	ps := append(m.Q.Params(), m.K.Params()...)
	ps = append(ps, m.V.Params()...)
	return append(ps, m.Proj.Params()...)
}

// Children exposes the projections for mode propagation and graph surgery.
func (m *MultiHeadAttention) Children() []Layer {
	return []Layer{m.Q, m.K, m.V, m.Proj}
}
