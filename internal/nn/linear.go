package nn

import "torch2chip/internal/tensor"

// Linear is a fully connected layer y = xWᵀ + b with weights stored
// [out, in], matching the convention hardware extraction expects.
type Linear struct {
	W    *Param
	B    *Param // nil when bias is disabled
	inZ  *tensor.Tensor
	In   int
	Out  int
	Bias bool
}

// NewLinear creates a linear layer with Kaiming initialization.
func NewLinear(g *tensor.RNG, in, out int, bias bool) *Linear {
	l := &Linear{In: in, Out: out, Bias: bias}
	l.W = NewParam("linear.weight", g.KaimingLinear(out, in))
	if bias {
		l.B = NewParam("linear.bias", tensor.New(out))
		l.B.NoDecay = true
	}
	return l
}

// Forward computes xWᵀ + b for x of shape [N, in].
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.inZ = x
	y := tensor.MatMulT(x, l.W.Data)
	if l.B != nil {
		n := y.Shape[0]
		for i := 0; i < n; i++ {
			row := y.Data[i*l.Out : (i+1)*l.Out]
			for j := range row {
				row[j] += l.B.Data.Data[j]
			}
		}
	}
	return y
}

// Backward accumulates dW = gradᵀ×x, db = Σgrad and returns grad×W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gw := tensor.MatMul(tensor.Transpose(grad), l.inZ)
	tensor.AddInPlace(l.W.Grad, gw)
	if l.B != nil {
		gb := tensor.SumAxis0(grad)
		tensor.AddInPlace(l.B.Grad, gb)
	}
	return tensor.MatMul(grad, l.W.Data)
}

// Params returns the layer parameters.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}

// Conv2d is a grouped 2-D convolution layer over NCHW tensors.
type Conv2d struct {
	W      *Param
	B      *Param // nil when bias is disabled
	P      tensor.ConvParams
	inZ    *tensor.Tensor
	InC    int
	OutC   int
	Kernel int
}

// NewConv2d creates a conv layer with Kaiming initialization.
func NewConv2d(g *tensor.RNG, inC, outC, kernel, stride, padding, groups int, bias bool) *Conv2d {
	c := &Conv2d{
		InC: inC, OutC: outC, Kernel: kernel,
		P: tensor.ConvParams{Stride: stride, Padding: padding, Groups: groups},
	}
	if groups <= 0 {
		c.P.Groups = 1
	}
	c.W = NewParam("conv.weight", g.KaimingConv(outC, inC/c.P.Groups, kernel, kernel))
	if bias {
		c.B = NewParam("conv.bias", tensor.New(outC))
		c.B.NoDecay = true
	}
	return c
}

// Forward applies the convolution.
func (c *Conv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.inZ = x
	var b *tensor.Tensor
	if c.B != nil {
		b = c.B.Data
	}
	return tensor.Conv2d(x, c.W.Data, b, c.P)
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.Conv2dBackward(c.inZ, c.W.Data, grad, c.P)
	tensor.AddInPlace(c.W.Grad, gw)
	if c.B != nil {
		tensor.AddInPlace(c.B.Grad, gb)
	}
	return gx
}

// Params returns the layer parameters.
func (c *Conv2d) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// AvgPool is an average-pooling layer; Kernel 0 means global pooling.
type AvgPool struct {
	Kernel int
	Stride int
	inZ    *tensor.Tensor
}

// Forward pools the input.
func (p *AvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.inZ = x
	return tensor.AvgPool2d(x, p.Kernel, p.Stride)
}

// Backward distributes the gradient.
func (p *AvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2dBackward(p.inZ, grad, p.Kernel, p.Stride)
}

// Params returns nil.
func (p *AvgPool) Params() []*Param { return nil }
