package nn

import (
	"math"

	"torch2chip/internal/tensor"
)

// BatchNorm2d normalizes NCHW activations per channel. During training it
// uses batch statistics and maintains running estimates; during evaluation
// it uses the running statistics, which is what post-training fusion
// consumes (Eq. 7–13 of the paper).
type BatchNorm2d struct {
	Gamma *Param
	Beta  *Param
	// RunningMean and RunningVar are buffers, not parameters.
	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor
	Momentum    float32
	Eps         float32
	C           int

	training bool
	// cached values for backward
	inZ      *tensor.Tensor
	xhat     *tensor.Tensor
	mean     []float32
	ivstd    []float32
	evalPass bool // last forward ran with running statistics
}

// NewBatchNorm2d creates a BatchNorm over c channels.
func NewBatchNorm2d(c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		Gamma:       NewParam("bn.gamma", tensor.Ones(c)),
		Beta:        NewParam("bn.beta", tensor.New(c)),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.Ones(c),
		Momentum:    0.1,
		Eps:         1e-5,
		C:           c,
		training:    true,
	}
	bn.Gamma.NoDecay = true
	bn.Beta.NoDecay = true
	return bn
}

// SetTraining switches between batch and running statistics.
func (bn *BatchNorm2d) SetTraining(t bool) { bn.training = t }

// Forward normalizes x per channel.
func (bn *BatchNorm2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(x.Shape...)
	sp := h * w
	bn.evalPass = false
	if bn.training {
		bn.inZ = x
		bn.mean = make([]float32, c)
		bn.ivstd = make([]float32, c)
		bn.xhat = tensor.New(x.Shape...)
		cnt := float64(n * sp)
		for ch := 0; ch < c; ch++ {
			var sum, sq float64
			for ni := 0; ni < n; ni++ {
				seg := x.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				for _, v := range seg {
					sum += float64(v)
					sq += float64(v) * float64(v)
				}
			}
			mu := sum / cnt
			va := sq/cnt - mu*mu
			if va < 0 {
				va = 0
			}
			bn.mean[ch] = float32(mu)
			iv := 1 / math.Sqrt(va+float64(bn.Eps))
			bn.ivstd[ch] = float32(iv)
			// update running stats (unbiased variance like PyTorch)
			unb := va
			if cnt > 1 {
				unb = va * cnt / (cnt - 1)
			}
			bn.RunningMean.Data[ch] = (1-bn.Momentum)*bn.RunningMean.Data[ch] + bn.Momentum*float32(mu)
			bn.RunningVar.Data[ch] = (1-bn.Momentum)*bn.RunningVar.Data[ch] + bn.Momentum*float32(unb)
			ga, be := bn.Gamma.Data.Data[ch], bn.Beta.Data.Data[ch]
			for ni := 0; ni < n; ni++ {
				seg := x.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				oh := out.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				xh := bn.xhat.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				for i, v := range seg {
					xn := (v - float32(mu)) * float32(iv)
					xh[i] = xn
					oh[i] = ga*xn + be
				}
			}
		}
		return out
	}
	// Eval mode: use running stats. Cache xhat/ivstd so Backward works
	// during PTQ reconstruction, where gradients flow through a frozen
	// network (running statistics are constants, so the gradient has no
	// batch coupling).
	bn.evalPass = true
	bn.xhat = tensor.New(x.Shape...)
	bn.ivstd = make([]float32, c)
	for ch := 0; ch < c; ch++ {
		iv := float32(1 / math.Sqrt(float64(bn.RunningVar.Data[ch])+float64(bn.Eps)))
		bn.ivstd[ch] = iv
		mu := bn.RunningMean.Data[ch]
		ga, be := bn.Gamma.Data.Data[ch], bn.Beta.Data.Data[ch]
		for ni := 0; ni < n; ni++ {
			seg := x.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			oh := out.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			xh := bn.xhat.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			for i, v := range seg {
				xn := (v - mu) * iv
				xh[i] = xn
				oh[i] = ga*xn + be
			}
		}
	}
	return out
}

// Backward implements the BatchNorm gradient. After a training-mode
// forward it includes the batch-statistic coupling; after an eval-mode
// forward the running statistics are constants and the gradient is the
// plain affine chain rule (used by PTQ reconstruction).
func (bn *BatchNorm2d) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := grad.Shape[0], grad.Shape[1], grad.Shape[2], grad.Shape[3]
	sp := h * w
	gx := tensor.New(grad.Shape...)
	if bn.evalPass {
		for ch := 0; ch < c; ch++ {
			ga := bn.Gamma.Data.Data[ch]
			iv := bn.ivstd[ch]
			var sumG, sumGX float64
			for ni := 0; ni < n; ni++ {
				gseg := grad.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				xh := bn.xhat.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				gxs := gx.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
				for i, g := range gseg {
					sumG += float64(g)
					sumGX += float64(g) * float64(xh[i])
					gxs[i] = g * ga * iv
				}
			}
			bn.Gamma.Grad.Data[ch] += float32(sumGX)
			bn.Beta.Grad.Data[ch] += float32(sumG)
		}
		return gx
	}
	cnt := float32(n * sp)
	for ch := 0; ch < c; ch++ {
		var sumG, sumGX float64
		for ni := 0; ni < n; ni++ {
			gseg := grad.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			xh := bn.xhat.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			for i, g := range gseg {
				sumG += float64(g)
				sumGX += float64(g) * float64(xh[i])
			}
		}
		bn.Gamma.Grad.Data[ch] += float32(sumGX)
		bn.Beta.Grad.Data[ch] += float32(sumG)
		ga := bn.Gamma.Data.Data[ch]
		iv := bn.ivstd[ch]
		mg := float32(sumG) / cnt
		mgx := float32(sumGX) / cnt
		for ni := 0; ni < n; ni++ {
			gseg := grad.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			xh := bn.xhat.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			gxs := gx.Data[(ni*c+ch)*sp : (ni*c+ch+1)*sp]
			for i, g := range gseg {
				gxs[i] = ga * iv * (g - mg - xh[i]*mgx)
			}
		}
	}
	return gx
}

// Params returns gamma and beta.
func (bn *BatchNorm2d) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// LayerNorm normalizes over the last dimension, as used in transformers.
// The paper notes LayerNorm statistics can be instant (computed on the fly)
// or running (pre-computed for lower inference latency); both are supported.
type LayerNorm struct {
	Gamma *Param
	Beta  *Param
	Eps   float32
	D     int

	// UseRunning selects pre-computed statistics at eval time.
	UseRunning  bool
	RunningMean *tensor.Tensor // scalar buffers of size 1
	RunningVar  *tensor.Tensor
	Momentum    float32

	training bool
	xhat     *tensor.Tensor
	ivstd    []float32
}

// NewLayerNorm creates a LayerNorm over feature size d.
func NewLayerNorm(d int) *LayerNorm {
	ln := &LayerNorm{
		Gamma:       NewParam("ln.gamma", tensor.Ones(d)),
		Beta:        NewParam("ln.beta", tensor.New(d)),
		Eps:         1e-5,
		D:           d,
		RunningMean: tensor.New(1),
		RunningVar:  tensor.Ones(1),
		Momentum:    0.05,
		training:    true,
	}
	ln.Gamma.NoDecay = true
	ln.Beta.NoDecay = true
	return ln
}

// SetTraining switches mode.
func (ln *LayerNorm) SetTraining(t bool) { ln.training = t }

// Forward normalizes each row of the flattened [rows, D] view.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	d := ln.D
	rows := x.Numel() / d
	out := tensor.New(x.Shape...)
	ln.xhat = tensor.New(x.Shape...)
	ln.ivstd = make([]float32, rows)
	for r := 0; r < rows; r++ {
		seg := x.Data[r*d : (r+1)*d]
		var sum, sq float64
		for _, v := range seg {
			sum += float64(v)
			sq += float64(v) * float64(v)
		}
		mu := sum / float64(d)
		va := sq/float64(d) - mu*mu
		if va < 0 {
			va = 0
		}
		var iv float32
		if !ln.training && ln.UseRunning {
			mu = float64(ln.RunningMean.Data[0])
			iv = float32(1 / math.Sqrt(float64(ln.RunningVar.Data[0])+float64(ln.Eps)))
		} else {
			iv = float32(1 / math.Sqrt(va+float64(ln.Eps)))
		}
		if ln.training {
			ln.RunningMean.Data[0] = (1-ln.Momentum)*ln.RunningMean.Data[0] + ln.Momentum*float32(mu)
			ln.RunningVar.Data[0] = (1-ln.Momentum)*ln.RunningVar.Data[0] + ln.Momentum*float32(va)
		}
		ln.ivstd[r] = iv
		o := out.Data[r*d : (r+1)*d]
		xh := ln.xhat.Data[r*d : (r+1)*d]
		for i, v := range seg {
			xn := (v - float32(mu)) * iv
			xh[i] = xn
			o[i] = ln.Gamma.Data.Data[i]*xn + ln.Beta.Data.Data[i]
		}
	}
	return out
}

// Backward implements the LayerNorm gradient.
func (ln *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := ln.D
	rows := grad.Numel() / d
	gx := tensor.New(grad.Shape...)
	for r := 0; r < rows; r++ {
		gseg := grad.Data[r*d : (r+1)*d]
		xh := ln.xhat.Data[r*d : (r+1)*d]
		var sumG, sumGX float64
		for i, g := range gseg {
			gg := g * ln.Gamma.Data.Data[i]
			sumG += float64(gg)
			sumGX += float64(gg) * float64(xh[i])
			ln.Gamma.Grad.Data[i] += g * xh[i]
			ln.Beta.Grad.Data[i] += g
		}
		mg := float32(sumG) / float32(d)
		mgx := float32(sumGX) / float32(d)
		iv := ln.ivstd[r]
		o := gx.Data[r*d : (r+1)*d]
		for i, g := range gseg {
			gg := g * ln.Gamma.Data.Data[i]
			o[i] = iv * (gg - mg - xh[i]*mgx)
		}
	}
	return gx
}

// Params returns gamma and beta.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }
