package bench

import (
	"fmt"

	"torch2chip/internal/data"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/prune"
	"torch2chip/internal/quant"
	"torch2chip/internal/ssl"
	"torch2chip/internal/tensor"
	"torch2chip/internal/train"
)

// Table1 reproduces the ImageNet-1K PTQ toolkit comparison: AIMET-style
// AdaRound and OpenVINO-style MinMax (both 8/8 with float scaling) versus
// Torch2Chip QDrop at 8/8 and 4/4 with INT16(12,4) integer scaling. All
// four methods start from the same pre-trained full-precision model, as
// in the paper.
func Table1(sc Scale) []Row {
	trainDS, testDS := data.Generate(data.SynthImageNet, sc.TrainN, sc.TestN)
	calib := trainDS.Subset(5)

	// One shared FP32 ResNet-50s.
	g := tensor.NewRNG(100)
	base := models.NewResNet(g, models.ResNet50(trainDS.NumClasses))
	fp := trainFP32(base, trainDS, testDS, sc, 101)
	fpLogits := train.CaptureFP(base, calib, 16)

	runOne := func(seed int64, weight, act string, wbits, abits int, deploy bool, scheme fuse.Scheme) float32 {
		model := cloneModel(base)
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{
			WBits: wbits, ABits: abits, Weight: weight, Act: act,
			PerChannel: true, RNG: tensor.NewRNG(seed),
		})
		ptq := &train.PTQ{Model: model, Calib: calib, Batch: 16,
			FPLogits: fpLogits, Steps: sc.PTQStep, LR: 2e-3, RegWeight: 0.01}
		ptq.Run()
		if deploy {
			outQ := calibrateOut(model, calib, 16, 12)
			a, _, err := deployAccuracy(model, outQ, testDS, sc.Batch, scheme)
			if err != nil {
				panic(fmt.Sprintf("table1 deploy: %v", err))
			}
			return a
		}
		// Float-scale baselines evaluate the dual-path infer mode.
		return inferAccuracy(model, testDS, sc.Batch)
	}

	var rows []Row
	acc := runOne(100, "adaround", "minmax", 8, 8, false, fuse.SchemePreFuse)
	rows = append(rows, Row{Method: "AdaRound (AIMET-style)", Model: "ResNet-50s", Training: "PTQ", WA: "8/8", ScaleFmt: "Float", Acc: acc, FP32: fp})
	acc = runOne(200, "minmax", "minmax", 8, 8, false, fuse.SchemePreFuse)
	rows = append(rows, Row{Method: "MinMax (OpenVINO-style)", Model: "ResNet-50s", Training: "PTQ", WA: "8/8", ScaleFmt: "Float", Acc: acc, FP32: fp})
	acc = runOne(300, "adaround", "qdrop", 4, 4, true, fuse.SchemeChannelWise)
	rows = append(rows, Row{Method: "QDrop (Torch2Chip)", Model: "ResNet-50s", Training: "PTQ", WA: "4/4", ScaleFmt: "INT (12,4)", Acc: acc, FP32: fp})
	acc = runOne(400, "adaround", "qdrop", 8, 8, true, fuse.SchemeChannelWise)
	rows = append(rows, Row{Method: "QDrop (Torch2Chip)", Model: "ResNet-50s", Training: "PTQ", WA: "8/8", ScaleFmt: "INT (12,4)", Acc: acc, FP32: fp})
	return rows
}

// clonable reports whether every layer of a Sequential is covered by
// cloneLayer.
func clonable(s *nn.Sequential) bool {
	ok := true
	var check func(l nn.Layer)
	check = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv2d, *nn.BatchNorm2d, *nn.ReLU, *nn.ReLU6, *nn.AvgPool, *nn.Flatten, *nn.Linear, nn.Identity:
		case *nn.Sequential:
			for _, sub := range v.Layers {
				check(sub)
			}
		case *nn.Residual:
			check(v.Body)
			check(v.Shortcut)
		default:
			ok = false
		}
	}
	for _, l := range s.Layers {
		check(l)
	}
	return ok
}

// cloneModel deep-copies a Sequential model (topology + parameters + BN
// running statistics).
func cloneModel(m nn.Layer) nn.Layer {
	seq, ok := m.(*nn.Sequential)
	if !ok {
		panic("bench: cloneModel requires a Sequential root")
	}
	g := tensor.NewRNG(1)
	clone := cloneSeq(g, seq)
	src := seq.Params()
	dst := clone.Params()
	for i := range src {
		dst[i].Data.CopyFrom(src[i].Data)
	}
	copyRunningStats(seq, clone)
	return clone
}

// qatRun trains a prepared model with QAT, warm-started from the trained
// FP32 weights (the usual QAT protocol at short schedules), and returns
// the infer-mode (or deployed) accuracy plus the deployed size in bytes
// when conversion is possible.
func qatRun(sc Scale, seed int64, build func(*tensor.RNG) nn.Layer, cfg quant.Config,
	trainDS, testDS *data.Dataset, profit bool, deploy bool) (fp, acc float32, sizeBytes int64, nparams int) {
	g := tensor.NewRNG(seed)
	fpModel := build(g)
	fp = trainFP32(fpModel, trainDS, testDS, sc, seed+1)
	nparams = models.CountParams(fpModel)

	// Warm-start: clone the FP32 model (same topology + weights) when the
	// topology is clonable, otherwise copy parameters into a fresh build.
	var model nn.Layer
	if seq, ok := fpModel.(*nn.Sequential); ok && clonable(seq) {
		model = cloneModel(fpModel)
	} else {
		model = build(tensor.NewRNG(seed + 10))
		src, dst := fpModel.Params(), model.Params()
		for i := range src {
			dst[i].Data.CopyFrom(src[i].Data)
		}
		copyRunningStats(fpModel, model)
	}
	quant.Prepare(model, cfg)
	var fr *train.Freezer
	if profit {
		fr = train.NewFreezer(model)
	}
	var opt train.Optimizer = train.NewSGD(0.02, 0.9, 5e-4)
	tr := &train.Supervised{
		Model: model, Opt: opt,
		Sched:  train.CosineSchedule{Base: 0.02, Min: 0.0005},
		Epochs: sc.Epochs, Train: trainDS, Batch: sc.Batch,
		RNG: tensor.NewRNG(seed + 11), Freezer: fr,
	}
	tr.Run()
	calib := trainDS.Subset(5)
	outQ := calibrateOut(model, calib, 16, 12)
	if deploy {
		a, im, err := deployAccuracy(model, outQ, testDS, sc.Batch, fuse.SchemeAuto)
		if err == nil {
			return fp, a, im.SizeBytes(), nparams
		}
	}
	acc = inferAccuracy(model, testDS, sc.Batch)
	// Size estimate for models without a deploy lowering (ViT):
	sizeBytes = int64(nparams*cfg.WBits+7) / 8
	return fp, acc, sizeBytes, nparams
}

// Table2 reproduces the CIFAR-10 integer-only model zoo.
func Table2(sc Scale) []Row {
	trainDS, testDS := data.Generate(data.SynthCIFAR10, sc.TrainN, sc.TestN)
	nc := trainDS.NumClasses
	var rows []Row

	add := func(method, model, training, wa, sf string, fp, acc float32, size int64, nparams int) {
		rows = append(rows, Row{Method: method, Model: model, Training: training, WA: wa, ScaleFmt: sf,
			Acc: acc, FP32: fp, Extra: map[string]string{
				"params": fmt.Sprintf("%d", nparams),
				"sizeKB": fmt.Sprintf("%.1f", float64(size)/1024),
			}})
	}

	resnet20 := func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet20(nc)) }
	resnet18 := func(g *tensor.RNG) nn.Layer { return models.NewResNet(g, models.ResNet18(nc)) }
	mobnet := func(g *tensor.RNG) nn.Layer {
		return models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: nc, Blocks: 4})
	}

	// SAWB+PACT ResNet-20 at 2/2 and 4/4 (QAT).
	for _, bits := range []int{2, 4} {
		cfg := quant.Config{WBits: bits, ABits: bits, Weight: "sawb", Act: "pact", PerChannel: true}
		fp, acc, size, np := qatRun(sc, int64(1000+bits), resnet20, cfg, trainDS, testDS, false, true)
		add("SAWB+PACT", "ResNet-20s", "QAT", fmt.Sprintf("%d/%d", bits, bits), "INT (13,3)", fp, acc, size, np)
	}
	// RCF ResNet-18 at 4/4 and 8/8 (QAT).
	for _, bits := range []int{4, 8} {
		cfg := quant.Config{WBits: bits, ABits: bits, Weight: "rcf", Act: "rcf", PerChannel: false}
		fp, acc, size, np := qatRun(sc, int64(2000+bits), resnet18, cfg, trainDS, testDS, false, true)
		add("RCF", "ResNet-18s", "QAT", fmt.Sprintf("%d/%d", bits, bits), "INT (12,4)", fp, acc, size, np)
	}
	// ViT-7 at 8/8 (QAT with symmetric MinMax; the paper's RCF slot —
	// RCF's unsigned activation clip does not fit signed transformer
	// activations, see EXPERIMENTS.md). Transformers need Adam.
	{
		vitCfg := models.ViT7(16, nc)
		vitCfg.Depth = 3 // scaled depth for CPU budget
		g := tensor.NewRNG(3000)
		model := models.NewViT(g, vitCfg)
		np := models.CountParams(model)
		(&train.Supervised{Model: model, Opt: train.NewAdam(1e-3),
			Sched:  train.CosineSchedule{Base: 1e-3, Min: 1e-4},
			Epochs: sc.Epochs * 2, Train: trainDS, Batch: sc.Batch,
			RNG: tensor.NewRNG(3001)}).Run()
		fp := train.Evaluate(model, testDS, sc.Batch)
		quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax"})
		(&train.Supervised{Model: model, Opt: train.NewAdam(3e-4),
			Sched:  train.CosineSchedule{Base: 3e-4, Min: 5e-5},
			Epochs: sc.Epochs / 2, Train: trainDS, Batch: sc.Batch,
			RNG: tensor.NewRNG(3002)}).Run()
		calibrateOut(model, trainDS.Subset(5), 16, 12)
		acc := inferAccuracy(model, testDS, sc.Batch)
		add("MinMax (RCF slot)", "ViT-7s", "QAT", "8/8", "INT (13,3)", fp, acc, int64(np), np)
	}
	// PROFIT MobileNet-V1 at 4/4 and 8/8.
	for _, bits := range []int{4, 8} {
		cfg := quant.Config{WBits: bits, ABits: bits, Weight: "sawb", Act: "pact", PerChannel: true}
		fp, acc, size, np := qatRun(sc, int64(4000+bits), mobnet, cfg, trainDS, testDS, true, true)
		add("PROFIT", "MobileNet-V1s", "QAT", fmt.Sprintf("%d/%d", bits, bits), "INT (12,4)", fp, acc, size, np)
	}
	// AdaRound MobileNet-V1 8/8 (PTQ) and PyTorch-like float-scale PTQ.
	{
		g := tensor.NewRNG(5000)
		model := mobnet(g)
		fp := trainFP32(model, trainDS, testDS, sc, 5001)
		np := models.CountParams(model)
		calib := trainDS.Subset(5)
		fpLogits := train.CaptureFP(model, calib, 16)
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "adaround", Act: "minmax", PerChannel: true})
		(&train.PTQ{Model: model, Calib: calib, Batch: 16, FPLogits: fpLogits,
			Steps: sc.PTQStep, LR: 1e-2, RegWeight: 0.01}).Run()
		outQ := calibrateOut(model, calib, 16, 12)
		acc, im, err := deployAccuracy(model, outQ, testDS, sc.Batch, fuse.SchemeChannelWise)
		size := int64(0)
		if err == nil {
			size = im.SizeBytes()
		}
		add("AdaRound", "MobileNet-V1s", "PTQ", "8/8", "INT (12,4)", fp, acc, size, np)
	}
	{
		// "PyTorch Quant"-style baseline: per-tensor MinMax PTQ evaluated
		// with float rescaling.
		g := tensor.NewRNG(6000)
		model := mobnet(g)
		fp := trainFP32(model, trainDS, testDS, sc, 6001)
		np := models.CountParams(model)
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: false})
		(&train.PTQ{Model: model, Calib: trainDS.Subset(5), Batch: 16}).Run()
		acc := inferAccuracy(model, testDS, sc.Batch)
		add("PyTorch-style Quant", "MobileNet-V1s", "PTQ", "8/8", "Float32", fp, acc, int64(np), np)
	}
	return rows
}

// Table3 reproduces sparse + low-precision ResNet-50: GraNet-style 80%
// element-wise sparsity and N:M=2:4 structured sparsity, each followed by
// PTQ at 8/8 and 4/4.
func Table3(sc Scale) []Row {
	trainDS, testDS := data.Generate(data.SynthImageNet, sc.TrainN, sc.TestN)
	nc := trainDS.NumClasses
	var rows []Row
	run := func(seed int64, nm bool, wbits int) Row {
		g := tensor.NewRNG(seed)
		model := models.NewResNet(g, models.ResNet50(nc))
		var pruner prune.Pruner
		var method string
		if nm {
			p, err := prune.NewNM(prune.PrunableParams(model), 2, 4)
			if err != nil {
				panic(err)
			}
			pruner = p
			method = "N:M = 2:4"
		} else {
			p := prune.NewMagnitude(prune.PrunableParams(model), 0.8)
			p.InitialSparsity = 0.2
			p.Regrow = 0.05
			pruner = p
			method = "GraNet"
		}
		tr := &train.Supervised{
			Model: model, Opt: train.NewSGD(0.1, 0.9, 5e-4),
			Sched:  train.CosineSchedule{Base: 0.1, Min: 0.002},
			Epochs: sc.Epochs, Train: trainDS, Batch: sc.Batch,
			RNG: tensor.NewRNG(seed + 1), Pruner: pruner,
		}
		tr.Run()
		fp := train.Evaluate(model, testDS, sc.Batch)
		calib := trainDS.Subset(5)
		fpLogits := train.CaptureFP(model, calib, 16)
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{WBits: wbits, ABits: wbits, Weight: "minmax", Act: "minmax", PerChannel: true})
		(&train.PTQ{Model: model, Calib: calib, Batch: 16, FPLogits: fpLogits,
			Steps: sc.PTQStep / 2, LR: 5e-3, RegWeight: 0.01}).Run()
		acc := inferAccuracy(model, testDS, sc.Batch)
		return Row{Method: method, Model: "ResNet-50s", Training: "PTQ",
			WA: fmt.Sprintf("%d/%d", wbits, wbits), ScaleFmt: "INT (12,4)",
			Acc: acc, FP32: fp,
			Extra: map[string]string{"sparsity": fmt.Sprintf("%.0f%%", pruner.Sparsity()*100)}}
	}
	rows = append(rows, run(7000, false, 8))
	rows = append(rows, run(7100, false, 4))
	rows = append(rows, run(7200, true, 8))
	rows = append(rows, run(7300, true, 4))
	return rows
}

// Table4 reproduces the SSL transfer comparison: MobileNet-V1 pre-trained
// with Barlow Twins + XD on unlabeled SynthImageNet, then fine-tuned (and
// PTQ-compressed at 8/8) on five low-label downstream tasks, against
// supervised training from scratch on the same budgets.
func Table4(sc Scale) []Row {
	unlabeled, _ := data.Generate(data.SynthImageNet, sc.TrainN*2, 10)
	downstream := []data.Spec{data.SynthCIFAR10, data.SynthCIFAR100, data.SynthAircraft, data.SynthFlowers, data.SynthFood}
	perClass := 12 // low-label regime

	mkEncoder := func(g *tensor.RNG, nc int) (*nn.Sequential, int) {
		m := models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: nc, Blocks: 4})
		// Encoder = everything up to the classifier.
		enc := nn.NewSequential(m.Layers[:len(m.Layers)-1]...)
		dim := m.Layers[len(m.Layers)-1].(*nn.Linear).In
		return enc, dim
	}

	// SSL pre-training once.
	g := tensor.NewRNG(8000)
	enc, dim := mkEncoder(g, 10)
	proj := ssl.NewProjector(g, dim, 2*dim)
	sslTr := &train.SSLTrainer{
		Encoder: enc, Projector: proj, Opt: train.NewAdam(2e-3),
		Epochs: sc.Epochs, Data: unlabeled, Batch: sc.Batch,
		RNG: tensor.NewRNG(8001), Lambda: 0.005, XDWeight: 0.2,
	}
	sslTr.Run()

	fineTune := func(encoder *nn.Sequential, dim int, ds data.Spec, seed int64) float32 {
		tr, te := data.Generate(ds, sc.TrainN, sc.TestN)
		low := tr.Subset(perClass)
		head := nn.NewLinear(tensor.NewRNG(seed), dim, tr.NumClasses, true)
		model := nn.NewSequential(append(append([]nn.Layer{}, encoder.Layers...), head)...)
		(&train.Supervised{Model: model, Opt: train.NewSGD(0.02, 0.9, 5e-4),
			Sched:  train.CosineSchedule{Base: 0.02, Min: 0.001},
			Epochs: sc.Epochs, Train: low, Batch: 16, RNG: tensor.NewRNG(seed + 1)}).Run()
		// PTQ 8/8 compress.
		calib := low.Subset(4)
		nn.SetTraining(model, false)
		quant.Prepare(model, quant.Config{WBits: 8, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true})
		(&train.PTQ{Model: model, Calib: calib, Batch: 16}).Run()
		return inferAccuracy(model, te, sc.Batch)
	}

	supRow := Row{Method: "Supervised + PTQ", Model: "Mob-V1 (1x)", Training: "scratch", WA: "8/8", ScaleFmt: "INT (12,4)", Extra: map[string]string{}}
	xdRow := Row{Method: "XD (SSL) + PTQ", Model: "Mob-V1 (1x)", Training: "transfer", WA: "8/8", ScaleFmt: "INT (12,4)", Extra: map[string]string{}}
	var supSum, xdSum float32
	for i, ds := range downstream {
		// Supervised from scratch on the low-label budget.
		gs := tensor.NewRNG(int64(8100 + i))
		encS, dimS := mkEncoder(gs, 10)
		supAcc := fineTune(encS, dimS, ds, int64(8200+i))
		// SSL transfer: reuse the pre-trained encoder (shared weights
		// across tasks would interfere; clone parameters per task).
		encC, dimC := cloneEncoder(enc, dim)
		xdAcc := fineTune(encC, dimC, ds, int64(8300+i))
		supRow.Extra[ds.Name] = fmt.Sprintf("%.1f", supAcc*100)
		xdRow.Extra[ds.Name] = fmt.Sprintf("%.1f", xdAcc*100)
		supSum += supAcc
		xdSum += xdAcc
	}
	supRow.Acc = supSum / float32(len(downstream))
	xdRow.Acc = xdSum / float32(len(downstream))
	return []Row{supRow, xdRow}
}

// cloneEncoder deep-copies an encoder's parameters into a fresh structure
// with the same topology (fine-tuning must not mutate the shared
// pre-trained weights).
func cloneEncoder(enc *nn.Sequential, dim int) (*nn.Sequential, int) {
	g := tensor.NewRNG(999)
	// Rebuild the same topology, then copy parameter data.
	clone := cloneSeq(g, enc)
	src := enc.Params()
	dst := clone.Params()
	for i := range src {
		dst[i].Data.CopyFrom(src[i].Data)
	}
	// Copy BN running stats as well.
	copyRunningStats(enc, clone)
	return clone, dim
}

func cloneSeq(g *tensor.RNG, s *nn.Sequential) *nn.Sequential {
	var ls []nn.Layer
	for _, l := range s.Layers {
		ls = append(ls, cloneLayer(g, l))
	}
	return nn.NewSequential(ls...)
}

func cloneLayer(g *tensor.RNG, l nn.Layer) nn.Layer {
	switch v := l.(type) {
	case *nn.Conv2d:
		return nn.NewConv2d(g, v.InC, v.OutC, v.Kernel, v.P.Stride, v.P.Padding, v.P.Groups, v.B != nil)
	case *nn.BatchNorm2d:
		return nn.NewBatchNorm2d(v.C)
	case *nn.ReLU:
		return &nn.ReLU{}
	case *nn.ReLU6:
		return &nn.ReLU6{}
	case *nn.AvgPool:
		return &nn.AvgPool{Kernel: v.Kernel, Stride: v.Stride}
	case *nn.Flatten:
		return &nn.Flatten{}
	case *nn.Linear:
		return nn.NewLinear(g, v.In, v.Out, v.B != nil)
	case *nn.Sequential:
		return cloneSeq(g, v)
	case *nn.Residual:
		return nn.NewResidual(cloneLayer(g, v.Body), cloneLayer(g, v.Shortcut))
	case nn.Identity:
		return nn.Identity{}
	default:
		panic(fmt.Sprintf("bench: cannot clone %T", l))
	}
}

func copyRunningStats(src, dst nn.Layer) {
	var collect func(l nn.Layer, out *[]*nn.BatchNorm2d)
	collect = func(l nn.Layer, out *[]*nn.BatchNorm2d) {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			*out = append(*out, bn)
		}
		if c, ok := l.(nn.Container); ok {
			for _, sub := range c.Children() {
				collect(sub, out)
			}
		}
	}
	var a, b []*nn.BatchNorm2d
	collect(src, &a)
	collect(dst, &b)
	for i := range a {
		b[i].RunningMean.CopyFrom(a[i].RunningMean)
		b[i].RunningVar.CopyFrom(a[i].RunningVar)
	}
}
