package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"torch2chip/internal/engine"
	"torch2chip/internal/tensor"
	"torch2chip/internal/trace"
)

// ProfileOp is one op kind's measured-vs-modeled record for one model:
// the mean measured nanoseconds per run (summed over the kind's
// instructions, from the tracer's instruction spans), the bind-time
// cost model's prediction for the same instructions, and their ratio —
// the calibration factor an SLO-aware scheduler would apply to the
// model's constants on this machine.
type ProfileOp struct {
	Op         string  `json:"op"`
	Instrs     int     `json:"instrs"`      // instructions of this kind per run
	Spans      int64   `json:"spans"`       // instruction spans recorded over all iters
	MeasuredNs int64   `json:"measured_ns"` // mean measured ns per run
	ModeledNs  int64   `json:"modeled_ns"`  // cost-model ns per run
	Ratio      float64 `json:"ratio"`       // measured / modeled

	// Hist is the per-span duration distribution across all iterations
	// (trace.OpBucketsNs bounds), exposing the spread the means hide.
	Hist trace.HistSnapshot `json:"hist"`
}

// ProfileModel aggregates one zoo model's profile run.
type ProfileModel struct {
	Model      string      `json:"model"`
	Batch      int         `json:"batch"`
	Iters      int         `json:"iters"`
	MeasuredNs int64       `json:"measured_ns"` // sum of per-op measured means
	ModeledNs  int64       `json:"modeled_ns"`  // sum of per-op model predictions
	Ratio      float64     `json:"ratio"`
	Ops        []ProfileOp `json:"ops"`
}

// ProfileReport is the measured-vs-modeled calibration artifact,
// serialized to BENCH_profile.json.
type ProfileReport struct {
	Scale  string         `json:"scale"`
	Batch  int            `json:"batch"`
	Iters  int            `json:"iters"`
	Models []ProfileModel `json:"models"`
}

// ProfileComparison runs the zoo under instruction-level tracing and
// joins the measured per-op execution times against the bind-time cost
// model (engine.Program.ModeledOpWork). Runs are pinned to parallelism
// 1: the cost model predicts serial work, and only serially executed
// waves record per-instruction spans (a parallel wave's members
// interleave across pool slots, so their wall times would not be
// attributable). The first, untraced execute warms scratch buffers and
// the prepack cache so one-time costs stay out of the calibration.
func ProfileComparison(sc Scale) *ProfileReport {
	const batch = 8
	iters := 3
	if scaleName(sc) == "full" {
		iters = 10
	}
	old := tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)

	rep := &ProfileReport{Scale: scaleName(sc), Batch: batch, Iters: iters}
	g := tensor.NewRNG(9600)
	// The pruned entry calibrates the sparse-kernel cost constants: its
	// modeled ns already discount skipped MACs (Program.sparseEff), so
	// its ratio should land near the dense models' — a drift means the
	// per-MAC costs of the sparse inner loops need re-measuring.
	models := []struct {
		label  string
		sparse float64
	}{{"mobilenet", 0}, {"resnet20", 0}, {"vit", 0}, {"resnet20/mag70", 0.7}}
	for _, mc := range models {
		var fused *engine.Program
		if mc.sparse > 0 {
			name := mc.label[:strings.IndexByte(mc.label, '/')]
			fused = engineModelPruned(sc, name, mc.sparse, false).Prog
		} else {
			cm, _, _ := engineModel(sc, mc.label)
			fused = cm.Prog
		}
		name := mc.label
		x := g.Uniform(0, 1, batch, 3, 32, 32)

		tracer := trace.New(trace.Config{RingSpans: 4096})
		ex, err := engine.NewExecutor(fused, x.Shape,
			engine.WithKernels(engine.FastKernels()), engine.WithTracer(tracer))
		if err != nil {
			panic(err)
		}
		if _, err := ex.Execute(x); err != nil { // untraced warm-up
			panic(err)
		}
		tracer.SetEnabled(true)
		for i := 0; i < iters; i++ {
			if _, err := ex.Execute(x); err != nil {
				panic(err)
			}
		}
		tracer.SetEnabled(false)

		modeled, err := fused.ModeledOpWork(x.Shape)
		if err != nil {
			panic(err)
		}
		modelNs := map[string]*engine.OpWork{}
		for i := range modeled {
			modelNs[string(modeled[i].Kind)] = &modeled[i]
		}

		pm := ProfileModel{Model: name, Batch: batch, Iters: iters}
		for _, op := range tracer.OpProfile() {
			po := ProfileOp{
				Op:         op.Name,
				Spans:      op.Count,
				MeasuredNs: op.SumNs / int64(iters),
				Hist:       op.Hist,
			}
			if w := modelNs[op.Name]; w != nil {
				po.Instrs = w.Instrs
				po.ModeledNs = w.WorkNs
				if w.WorkNs > 0 {
					po.Ratio = float64(po.MeasuredNs) / float64(w.WorkNs)
				}
			}
			pm.MeasuredNs += po.MeasuredNs
			pm.ModeledNs += po.ModeledNs
			pm.Ops = append(pm.Ops, po)
		}
		if pm.ModeledNs > 0 {
			pm.Ratio = float64(pm.MeasuredNs) / float64(pm.ModeledNs)
		}
		rep.Models = append(rep.Models, pm)
	}
	return rep
}

// WriteProfileJSON serializes the report (indented, trailing newline).
func WriteProfileJSON(path string, rep *ProfileReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// FormatProfile renders the measured-vs-modeled calibration table.
func FormatProfile(rep *ProfileReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Profile — measured vs modeled ns per run (batch %d, parallelism 1, %d iters)\n",
		rep.Batch, rep.Iters)
	fmt.Fprintf(&sb, "%-10s %-14s %7s %7s %14s %14s %8s\n",
		"model", "op", "instrs", "spans", "measured ns", "modeled ns", "ratio")
	for _, m := range rep.Models {
		for _, op := range m.Ops {
			fmt.Fprintf(&sb, "%-10s %-14s %7d %7d %14d %14d %8.2f\n",
				m.Model, op.Op, op.Instrs, op.Spans, op.MeasuredNs, op.ModeledNs, op.Ratio)
		}
		fmt.Fprintf(&sb, "%-10s %-14s %7s %7s %14d %14d %8.2f\n",
			m.Model, "total", "", "", m.MeasuredNs, m.ModeledNs, m.Ratio)
	}
	return sb.String()
}
