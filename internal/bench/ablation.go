package bench

import (
	"fmt"
	"strings"

	"torch2chip/internal/data"
	"torch2chip/internal/fuse"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
)

// AblationRow is one cell of the fusion-scheme ablation.
type AblationRow struct {
	WBits     int
	Scheme    string
	DeployAcc float32
	FakeAcc   float32 // fake-quant reference accuracy
}

// AblationFusion sweeps weight precision × fusion scheme on the same
// trained MobileNet, isolating the design choice the paper motivates in
// §3.2: pre-fusion is adequate at 8 bits but channel-wise scaling is
// required below it.
func AblationFusion(sc Scale) []AblationRow {
	trainDS, testDS := data.Generate(data.SynthCIFAR10, sc.TrainN, sc.TestN)
	g := tensor.NewRNG(9500)
	base := models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: trainDS.NumClasses, Blocks: 4})
	trainFP32(base, trainDS, testDS, sc, 9501)

	var rows []AblationRow
	for _, wbits := range []int{2, 4, 8} {
		for _, scheme := range []fuse.Scheme{fuse.SchemePreFuse, fuse.SchemeChannelWise} {
			model := cloneModel(base)
			nn.SetTraining(model, false)
			quant.Prepare(model, quant.Config{WBits: wbits, ABits: 8, Weight: "minmax", Act: "minmax", PerChannel: true})
			outQ := calibrateOut(model, trainDS.Subset(5), 16, 12)
			fakeAcc := evalEval(model, testDS, sc.Batch)
			acc, _, err := deployAccuracy(model, outQ, testDS, sc.Batch, scheme)
			if err != nil {
				panic(err)
			}
			name := "prefuse"
			if scheme == fuse.SchemeChannelWise {
				name = "channelwise"
			}
			rows = append(rows, AblationRow{WBits: wbits, Scheme: name, DeployAcc: acc, FakeAcc: fakeAcc})
		}
	}
	return rows
}

// FormatAblation renders the fusion ablation.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — BN fusion scheme × weight precision (MobileNet-V1s)\n")
	fmt.Fprintf(&sb, "%-6s %-12s %12s %12s\n", "Wbits", "scheme", "deploy acc%", "fakeq acc%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6d %-12s %12.2f %12.2f\n", r.WBits, r.Scheme, r.DeployAcc*100, r.FakeAcc*100)
	}
	return sb.String()
}
