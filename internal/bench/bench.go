// Package bench regenerates every table and figure of the paper's
// evaluation section on the synthetic substrate (see DESIGN.md for the
// per-experiment index and the substitution rationale). Each experiment
// returns structured rows so that cmd/t2c-bench can print paper-style
// tables and bench_test.go can assert the qualitative shape (who wins,
// roughly by how much, where the crossovers fall).
package bench

import (
	"fmt"
	"strings"

	"torch2chip/internal/data"
	"torch2chip/internal/fuse"
	"torch2chip/internal/nn"
	"torch2chip/internal/quant"
	"torch2chip/internal/tensor"
	"torch2chip/internal/train"
)

// Scale controls how much compute the experiments burn. Unit scale runs
// in a few seconds per experiment; larger scales sharpen the accuracy
// estimates.
type Scale struct {
	TrainN  int // training samples per dataset
	TestN   int
	Epochs  int
	Batch   int
	PTQStep int
}

// Quick is the test-suite scale.
func Quick() Scale { return Scale{TrainN: 300, TestN: 120, Epochs: 6, Batch: 32, PTQStep: 6} }

// Full is the CLI default.
func Full() Scale { return Scale{TrainN: 800, TestN: 300, Epochs: 12, Batch: 32, PTQStep: 12} }

// Row is one line of a results table.
type Row struct {
	Method   string
	Model    string
	Training string
	WA       string
	ScaleFmt string
	Acc      float32
	FP32     float32
	Extra    map[string]string
}

// Delta returns acc − fp32.
func (r Row) Delta() float32 { return r.Acc - r.FP32 }

// FormatTable renders rows in the paper's layout.
func FormatTable(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-28s %-14s %-10s %-6s %-14s %8s %9s\n",
		"Method", "Model", "Training", "W/A", "Scale+Bias", "Acc(%)", "Δ(%)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %-14s %-10s %-6s %-14s %8.2f %+9.2f",
			r.Method, r.Model, r.Training, r.WA, r.ScaleFmt, r.Acc*100, r.Delta()*100)
		for k, v := range r.Extra {
			fmt.Fprintf(&sb, "  %s=%s", k, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// trainFP32 trains a float model and returns its test accuracy.
func trainFP32(model nn.Layer, trainDS, testDS *data.Dataset, sc Scale, seed int64) float32 {
	tr := &train.Supervised{
		Model: model, Opt: train.NewSGD(0.1, 0.9, 5e-4),
		Sched:  train.CosineSchedule{Base: 0.1, Min: 0.002},
		Epochs: sc.Epochs, Train: trainDS, Batch: sc.Batch,
		RNG: tensor.NewRNG(seed),
	}
	tr.Run()
	return train.Evaluate(model, testDS, sc.Batch)
}

// calibrateOut runs calibration batches and returns the frozen logit
// quantizer (model left in eval mode, observers frozen).
func calibrateOut(model nn.Layer, calib *data.Dataset, batch, outBits int) *quant.QBase {
	nn.SetTraining(model, false)
	outQ := quant.NewMinMax(outBits, true, false)
	loader := data.NewLoader(calib, batch, nil)
	for {
		x, _, ok := loader.Next()
		if !ok {
			break
		}
		outQ.Observe(model.Forward(x))
	}
	quant.SetCalibrating(model, false)
	return outQ.Base()
}

// deployAccuracy converts the model and evaluates the integer pipeline.
func deployAccuracy(model nn.Layer, outQ *quant.QBase, testDS *data.Dataset, batch int, scheme fuse.Scheme) (float32, *fuse.IntModel, error) {
	opts := fuse.DefaultOptions()
	opts.Scheme = scheme
	opts.OutQuant = outQ
	im, err := fuse.Convert(model, opts)
	if err != nil {
		return 0, nil, err
	}
	loader := data.NewLoader(testDS, batch, nil)
	var correct, total int
	for {
		x, y, ok := loader.Next()
		if !ok {
			break
		}
		logits := im.Forward(x)
		c := logits.Shape[1]
		for i := range y {
			row := tensor.FromSlice(logits.Data[i*c:(i+1)*c], c)
			if row.Argmax() == y[i] {
				correct++
			}
			total++
		}
	}
	return float32(correct) / float32(total), im, nil
}

// inferAccuracy evaluates the dual-path infer mode (integer kernels with
// float rescale — the "Float scale" rows of Table 1).
func inferAccuracy(model nn.Layer, testDS *data.Dataset, batch int) float32 {
	quant.SetMode(model, quant.ModeInfer)
	defer quant.SetMode(model, quant.ModeTrain)
	nn.SetTraining(model, false)
	acc := evalEval(model, testDS, batch)
	return acc
}

// evalEval is Evaluate without flipping back to train mode.
func evalEval(model nn.Layer, ds *data.Dataset, batch int) float32 {
	loader := data.NewLoader(ds, batch, nil)
	var correct, total float64
	for {
		x, y, ok := loader.Next()
		if !ok {
			break
		}
		logits := model.Forward(x)
		correct += float64(nn.Accuracy(logits, y)) * float64(len(y))
		total += float64(len(y))
	}
	return float32(correct / total)
}
