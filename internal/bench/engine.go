package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/tensor"
)

// EngineRow compares the graph-IR engine against the IntLayer interpreter
// for one model at one batch size.
type EngineRow struct {
	Model string
	Batch int

	InterpUsPerSample float64 // interpreter latency, µs per sample
	EngineUsPerSample float64 // engine latency, µs per sample
	Speedup           float64

	InterpAllocs float64 // heap allocations per forward
	EngineAllocs float64 // heap allocations per execute

	PlannedBytes int64 // planned arena footprint
	NaiveBytes   int64 // per-op allocation footprint
}

// ServeRow summarizes one batched-serving run.
type ServeRow struct {
	Model      string
	Clients    int
	Requests   int
	Throughput float64 // requests per second
	MeanBatch  float64 // average coalesced batch size
}

// buildZooModel constructs the named zoo model for engine comparisons.
func buildZooModel(g *tensor.RNG, name string, numClasses int) nn.Layer {
	switch name {
	case "resnet20":
		return models.NewResNet(g, models.ResNet20(numClasses))
	case "mobilenet":
		return models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: numClasses, Blocks: 4})
	default:
		panic(fmt.Sprintf("bench: unknown engine model %q", name))
	}
}

// engineModel builds and compiles one zoo model for the comparison.
func engineModel(sc Scale, name string) (*core.Compiled, *data.Dataset) {
	trainDS, _ := data.Generate(data.SynthCIFAR10, sc.TrainN/2, 8)
	g := tensor.NewRNG(9300)
	model := buildZooModel(g, name, trainDS.NumClasses)
	x, _ := trainDS.Batch([]int{0, 1, 2, 3})
	model.Forward(x) // realistic BN statistics
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(trainDS.Subset(5), 16); err != nil {
		panic(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		panic(err)
	}
	return cm, trainDS
}

// timeAndAllocs runs f repeatedly for at least minIters and reports
// (wall-clock per call, heap allocations per call).
func timeAndAllocs(minIters int, f func()) (time.Duration, float64) {
	f() // warm scratch buffers and caches
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < minIters; i++ {
		f()
	}
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	return el / time.Duration(minIters), float64(m1.Mallocs-m0.Mallocs) / float64(minIters)
}

// EngineComparison measures interpreter-vs-engine latency, allocations,
// and memory footprint at batch 1, 8, and 32.
func EngineComparison(sc Scale) []EngineRow {
	var rows []EngineRow
	for _, name := range []string{"mobilenet", "resnet20"} {
		cm, _ := engineModel(sc, name)
		g := tensor.NewRNG(9400)
		for _, batch := range []int{1, 8, 32} {
			x := g.Uniform(0, 1, batch, 3, 32, 32)
			ex, err := engine.NewExecutor(cm.Prog, x.Shape)
			if err != nil {
				panic(err)
			}
			iters := 3
			if batch == 1 {
				iters = 10
			}
			interp, interpAllocs := timeAndAllocs(iters, func() { cm.Int.Forward(x) })
			eng, engAllocs := timeAndAllocs(iters, func() {
				if _, err := ex.Execute(x); err != nil {
					panic(err)
				}
			})
			plan := ex.Plan()
			rows = append(rows, EngineRow{
				Model: name, Batch: batch,
				InterpUsPerSample: float64(interp.Microseconds()) / float64(batch),
				EngineUsPerSample: float64(eng.Microseconds()) / float64(batch),
				Speedup:           float64(interp) / float64(eng),
				InterpAllocs:      interpAllocs,
				EngineAllocs:      engAllocs,
				PlannedBytes:      plan.PlannedBytes(),
				NaiveBytes:        plan.NaiveBytes(),
			})
		}
	}
	return rows
}

// ServeComparison drives the batched serving runtime with concurrent
// clients and reports throughput and coalescing.
func ServeComparison(sc Scale) []ServeRow {
	cm, _ := engineModel(sc, "mobilenet")
	g := tensor.NewRNG(9500)
	var rows []ServeRow
	for _, clients := range []int{1, 8} {
		srv, err := engine.NewServer(cm.Prog, []int{3, 32, 32}, engine.ServerOptions{MaxBatch: 8})
		if err != nil {
			panic(err)
		}
		perClient := 24
		inputs := make([]*tensor.Tensor, clients)
		for i := range inputs {
			inputs[i] = g.Uniform(0, 1, 1, 3, 32, 32)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < perClient; r++ {
					if _, err := srv.Infer(inputs[c]); err != nil {
						panic(err)
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(start)
		st := srv.Stats()
		srv.Close()
		rows = append(rows, ServeRow{
			Model: "mobilenet", Clients: clients, Requests: clients * perClient,
			Throughput: float64(clients*perClient) / el.Seconds(),
			MeanBatch:  st.MeanBatch(),
		})
	}
	return rows
}

// FormatEngine renders the engine comparison tables.
func FormatEngine(rows []EngineRow, serve []ServeRow) string {
	var sb strings.Builder
	sb.WriteString("Engine — graph-IR executor vs IntLayer interpreter\n")
	fmt.Fprintf(&sb, "%-10s %6s %14s %14s %8s %14s %14s %12s %12s\n",
		"model", "batch", "interp µs/smp", "engine µs/smp", "speedup",
		"interp allocs", "engine allocs", "planned B", "naive B")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6d %14.0f %14.0f %7.2fx %14.1f %14.1f %12d %12d\n",
			r.Model, r.Batch, r.InterpUsPerSample, r.EngineUsPerSample, r.Speedup,
			r.InterpAllocs, r.EngineAllocs, r.PlannedBytes, r.NaiveBytes)
	}
	sb.WriteString("\nServing — micro-batching runtime\n")
	fmt.Fprintf(&sb, "%-10s %8s %9s %12s %10s\n", "model", "clients", "requests", "req/s", "mean batch")
	for _, r := range serve {
		fmt.Fprintf(&sb, "%-10s %8d %9d %12.0f %10.2f\n", r.Model, r.Clients, r.Requests, r.Throughput, r.MeanBatch)
	}
	return sb.String()
}
