package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"torch2chip/internal/core"
	"torch2chip/internal/data"
	"torch2chip/internal/engine"
	"torch2chip/internal/models"
	"torch2chip/internal/nn"
	"torch2chip/internal/prune"
	"torch2chip/internal/tensor"
)

// Engine configuration labels: the interpreter oracle, the PR-1 engine
// (unfused program, full-im2col kernels), the fused+prepacked engine
// (typed narrow storage since PR-4, SWAR disabled — the PR-5
// configuration the speedup_vs_pr5 column is measured against), the
// same prepacked engine with the SWAR dual-lane GEMM enabled, the
// typed kernels pinned to I64 storage (the PR-2/PR-3 configuration),
// and the fused program under the allocating reference kernels.
const (
	CfgInterpreter = "interpreter"
	CfgPR1         = "unfused+im2col"
	CfgFused       = "fused+prepacked"
	CfgFusedSwar   = "fused+prepacked+swar"
	CfgFusedI64    = "fused+prepacked+i64"
	CfgFusedRef    = "fused+reference"
	// CfgFusedDense is the full fast registry with sparsity-aware binding
	// disabled: pruned weights run the dense kernels over the full K
	// range — the baseline the sparse sweep's speedup_vs_dense measures
	// against.
	CfgFusedDense = "fused+prepacked+dense"
)

// EngineRow is one measured (model, batch, config) point.
type EngineRow struct {
	Model  string `json:"model"`
	Batch  int    `json:"batch"`
	Config string `json:"config"`

	// GoMaxProcs is the core budget the row was measured under (the
	// GOMAXPROCS sweep value; parallel splitting is capped to match).
	GoMaxProcs int `json:"gomaxprocs"`

	NsPerOp     float64 `json:"ns_per_op"`
	UsPerSample float64 `json:"us_per_sample"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// SpeedupVsInterp/VsPR1 compare latency at the same (model, batch)
	// against the single-core interpreter and PR-1 baselines;
	// SpeedupVsPR5 compares against the fused+prepacked no-SWAR
	// configuration at the same (model, batch, gomaxprocs).
	SpeedupVsInterp float64 `json:"speedup_vs_interpreter,omitempty"`
	SpeedupVsPR1    float64 `json:"speedup_vs_pr1,omitempty"`
	SpeedupVsPR5    float64 `json:"speedup_vs_pr5,omitempty"`

	Instrs       int   `json:"instrs,omitempty"`
	ArenaBytes   int64 `json:"arena_bytes,omitempty"`
	ScratchBytes int64 `json:"scratch_bytes,omitempty"`
	TotalBytes   int64 `json:"total_bytes,omitempty"`

	// Waves counts the plan's parallel scheduling waves and
	// ParallelFraction the share of modeled work inside them — the
	// PR-7 co-planned memory/schedule stats, recorded so the trajectory
	// shows when wave scheduling engages (fused ViT) and when it
	// degenerates to the serial plan (chain-structured CNNs).
	Waves            int     `json:"waves,omitempty"`
	ParallelFraction float64 `json:"parallel_fraction,omitempty"`

	// ArenaByDType breaks the planned arena down per storage dtype
	// ("u8", "i16", …), so the memory trajectory records where the
	// bytes live, not just how many there are.
	ArenaByDType map[string]int64 `json:"arena_by_dtype,omitempty"`

	// Sparse-sweep columns. Prune labels the pruning the model's weights
	// received before quantize+compile ("mag0", "mag50", "mag70",
	// "nm24"); Sparsity is the resulting exactly-zero weight fraction;
	// SkipFraction the modeled MAC share the sparsity-aware kernels
	// skip; EffectiveMacs the modeled executed MACs of the row's
	// configuration at its batch; SpeedupVsDense compares the
	// sparsity-aware registry against the dense-forced registry on the
	// same pruned program.
	Prune          string  `json:"prune,omitempty"`
	Sparsity       float64 `json:"sparsity,omitempty"`
	SkipFraction   float64 `json:"skip_fraction,omitempty"`
	EffectiveMacs  int64   `json:"effective_macs,omitempty"`
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
}

// FusionRow records what the fusion pass did to one model's program,
// with batch-8 plan footprints before and after.
type FusionRow struct {
	Model string `json:"model"`
	engine.FusionStats
	ArenaBytesBefore int64 `json:"arena_bytes_before"`
	ArenaBytesAfter  int64 `json:"arena_bytes_after"`
	NaiveBytesBefore int64 `json:"naive_bytes_before"`
	NaiveBytesAfter  int64 `json:"naive_bytes_after"`
}

// KernelRow aggregates the fused program's bound kernel paths for one
// model — which instructions run SWAR (and at what lane width and site
// tiles), which fell back, and which stayed on the direct paths.
type KernelRow struct {
	Model   string `json:"model"`
	Path    string `json:"path"`
	Count   int    `json:"count"`
	Lanes   int    `json:"lanes,omitempty"`    // SWAR lane width (channels per word)
	TileMin int    `json:"tile_min,omitempty"` // smallest bound site/row tile
	TileMax int    `json:"tile_max,omitempty"` // largest bound site/row tile
	// MaxSkip is the largest per-instruction MAC skip fraction among the
	// path's bindings (sparse paths only).
	MaxSkip float64 `json:"max_skip,omitempty"`
}

// ServeRow summarizes one batched-serving run.
type ServeRow struct {
	Model      string  `json:"model"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	Throughput float64 `json:"throughput_rps"` // requests per second
	MeanBatch  float64 `json:"mean_batch"`     // average coalesced batch size
}

// EngineReport is the full engine-benchmark result, serialized to
// BENCH_engine.json so the perf trajectory is machine-readable across
// PRs.
type EngineReport struct {
	Scale      string      `json:"scale"`
	GoMaxProcs int         `json:"gomaxprocs"` // largest swept core budget
	Procs      []int       `json:"procs"`      // the GOMAXPROCS sweep
	Batches    []int       `json:"batches"`
	Rows       []EngineRow `json:"rows"`
	Fusion     []FusionRow `json:"fusion"`
	Kernels    []KernelRow `json:"kernels"`
	Serve      []ServeRow  `json:"serve"`
}

// buildZooModel constructs the named zoo model for engine comparisons.
func buildZooModel(g *tensor.RNG, name string, numClasses int) nn.Layer {
	switch name {
	case "resnet20":
		return models.NewResNet(g, models.ResNet20(numClasses))
	case "mobilenet":
		return models.NewMobileNetV1(g, models.MobileNetConfig{WidthMult: 1, NumClasses: numClasses, Blocks: 4})
	case "vit":
		cfg := models.ViT7(32, numClasses)
		cfg.Depth = 2
		return models.NewViT(g, cfg)
	default:
		panic(fmt.Sprintf("bench: unknown engine model %q", name))
	}
}

// engineModel builds and compiles one zoo model; the returned Compiled
// carries the fused program, and the unfused program is re-lowered from
// the interpreter for the PR-1 baseline.
func engineModel(sc Scale, name string) (*core.Compiled, *engine.Program, *data.Dataset) {
	trainDS, _ := data.Generate(data.SynthCIFAR10, sc.TrainN/2, 8)
	g := tensor.NewRNG(9300)
	model := buildZooModel(g, name, trainDS.NumClasses)
	x, _ := trainDS.Batch([]int{0, 1, 2, 3})
	model.Forward(x) // realistic BN statistics
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(trainDS.Subset(5), 16); err != nil {
		panic(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		panic(err)
	}
	unfused, err := engine.Lower(cm.Int)
	if err != nil {
		panic(err)
	}
	return cm, unfused, trainDS
}

// engineModelPruned builds, one-shot prunes, and compiles one zoo model
// for the sparse sweep: global magnitude to the target sparsity, or 2:4
// N:M structure when nm is set (target 0 and nm false leave the weights
// dense — the sweep's 0% control). The single-sample input shape is
// stamped so SparsityStats can model the skip fraction.
func engineModelPruned(sc Scale, name string, target float64, nm bool) *core.Compiled {
	trainDS, _ := data.Generate(data.SynthCIFAR10, sc.TrainN/2, 8)
	g := tensor.NewRNG(9300)
	model := buildZooModel(g, name, trainDS.NumClasses)
	x, _ := trainDS.Batch([]int{0, 1, 2, 3})
	model.Forward(x) // realistic BN statistics
	if nm || target > 0 {
		params := prune.PrunableParams(model)
		if nm {
			pr, err := prune.NewNM(params, 2, 4)
			if err != nil {
				panic(err)
			}
			pr.Step(1)
		} else {
			prune.NewMagnitude(params, target).Step(1)
		}
	}
	t2c := core.New(model, core.DefaultConfig())
	t2c.Prepare()
	if err := t2c.Calibrate(trainDS.Subset(5), 16); err != nil {
		panic(err)
	}
	nn.SetTraining(model, false)
	cm, err := t2c.Compile()
	if err != nil {
		panic(err)
	}
	cm.Prog.InShape = []int{3, 32, 32}
	return cm
}

// timeAndAllocs runs f repeatedly for at least minIters and reports
// (wall-clock per call, heap allocations per call).
func timeAndAllocs(minIters int, f func()) (time.Duration, float64) {
	f() // warm scratch buffers and caches
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < minIters; i++ {
		f()
	}
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	return el / time.Duration(minIters), float64(m1.Mallocs-m0.Mallocs) / float64(minIters)
}

// measureExec times one executor configuration and fills a row.
func measureExec(model string, batch int, cfg string, prog *engine.Program, reg *engine.Registry, x *tensor.Tensor, iters int) EngineRow {
	ex, err := engine.NewExecutor(prog, x.Shape, engine.WithKernels(reg))
	if err != nil {
		panic(err)
	}
	el, allocs := timeAndAllocs(iters, func() {
		if _, err := ex.Execute(x); err != nil {
			panic(err)
		}
	})
	plan := ex.Plan()
	return EngineRow{
		Model: model, Batch: batch, Config: cfg,
		NsPerOp:          float64(el.Nanoseconds()),
		UsPerSample:      float64(el.Microseconds()) / float64(batch),
		AllocsPerOp:      allocs,
		Instrs:           len(prog.Instrs),
		ArenaBytes:       plan.PlannedBytes(),
		ScratchBytes:     ex.ScratchBytes(),
		TotalBytes:       plan.PlannedBytes() + ex.ScratchBytes(),
		ArenaByDType:     plan.BytesByDType(),
		Waves:            plan.ParallelWaves,
		ParallelFraction: plan.ParallelFrac,
	}
}

// kernelSummary aggregates one model's bound kernel paths at batch 8.
func kernelSummary(name string, prog *engine.Program) []KernelRow {
	ex, err := engine.NewExecutor(prog, []int{8, 3, 32, 32}, engine.WithKernels(engine.FastKernels()))
	if err != nil {
		panic(err)
	}
	byPath := map[string]*KernelRow{}
	order := []string{}
	for _, c := range ex.KernelChoices() {
		r, ok := byPath[c.Path]
		if !ok {
			r = &KernelRow{Model: name, Path: c.Path, Lanes: c.Lanes, TileMin: c.TileM, TileMax: c.TileM}
			byPath[c.Path] = r
			order = append(order, c.Path)
		}
		r.Count++
		if c.TileM > 0 && (r.TileMin == 0 || c.TileM < r.TileMin) {
			r.TileMin = c.TileM
		}
		if c.TileM > r.TileMax {
			r.TileMax = c.TileM
		}
		if c.SkipFrac > r.MaxSkip {
			r.MaxSkip = c.SkipFrac
		}
	}
	out := make([]KernelRow, 0, len(order))
	for _, p := range order {
		out = append(out, *byPath[p])
	}
	return out
}

// EngineComparison measures the interpreter, the PR-1 engine, and the
// fused+prepacked engines (SWAR on and off) at batch 1, 8, and 32,
// sweeping the two prepacked configurations over the procs core
// budgets. The single-core baselines (interpreter, PR-1, I64, the
// batch-1 reference oracle) are measured once at the first budget. Each
// row records its gomaxprocs; speedup_vs_pr5 compares the SWAR engine
// against the no-SWAR engine at the same (model, batch, gomaxprocs).
// The worker pool is frozen at the largest budget up front, then each
// sweep step narrows GOMAXPROCS and the splitting cap together, so a
// row never wishes for workers its budget would not have started.
func EngineComparison(sc Scale, procs []int) *EngineReport {
	if len(procs) == 0 {
		procs = []int{1, 4, 8}
	}
	maxProcs := procs[0]
	for _, p := range procs {
		if p > maxProcs {
			maxProcs = p
		}
	}
	basePG := runtime.GOMAXPROCS(maxProcs)
	tensor.InitParallel()
	defer runtime.GOMAXPROCS(basePG)
	atBudget := func(p int, f func()) {
		runtime.GOMAXPROCS(p)
		old := tensor.SetParallelism(p)
		defer tensor.SetParallelism(old)
		defer runtime.GOMAXPROCS(maxProcs)
		f()
	}

	rep := &EngineReport{
		Scale:      scaleName(sc),
		GoMaxProcs: maxProcs,
		Procs:      procs,
		Batches:    []int{1, 8, 32},
	}
	for _, name := range []string{"mobilenet", "resnet20", "vit"} {
		cm, unfused, _ := engineModel(sc, name)
		fused := cm.Prog

		_, st := engine.OptimizeStats(unfused, engine.OptFuse)
		up, err := unfused.PlanBuffers([]int{8, 3, 32, 32})
		if err != nil {
			panic(err)
		}
		fp, err := fused.PlanBuffers([]int{8, 3, 32, 32})
		if err != nil {
			panic(err)
		}
		rep.Fusion = append(rep.Fusion, FusionRow{
			Model: name, FusionStats: st,
			ArenaBytesBefore: up.PlannedBytes(), ArenaBytesAfter: fp.PlannedBytes(),
			NaiveBytesBefore: up.NaiveBytes, NaiveBytesAfter: fp.NaiveBytes,
		})
		rep.Kernels = append(rep.Kernels, kernelSummary(name, fused)...)

		g := tensor.NewRNG(9400)
		for _, batch := range rep.Batches {
			x := g.Uniform(0, 1, batch, 3, 32, 32)
			iters := 3
			if batch == 1 {
				iters = 10
			}
			var iRow, pr1, wide EngineRow
			atBudget(procs[0], func() {
				interp, interpAllocs := timeAndAllocs(iters, func() { cm.Int.Forward(x) })
				iRow = EngineRow{
					Model: name, Batch: batch, Config: CfgInterpreter, GoMaxProcs: procs[0],
					NsPerOp:     float64(interp.Nanoseconds()),
					UsPerSample: float64(interp.Microseconds()) / float64(batch),
					AllocsPerOp: interpAllocs,
				}
				pr1 = measureExec(name, batch, CfgPR1, unfused, engine.Im2ColKernels(), x, iters)
				wide = measureExec(name, batch, CfgFusedI64, fused, engine.FastKernelsI64(), x, iters)
				pr1.GoMaxProcs, wide.GoMaxProcs = procs[0], procs[0]
				pr1.SpeedupVsInterp = iRow.NsPerOp / pr1.NsPerOp
				wide.SpeedupVsInterp = iRow.NsPerOp / wide.NsPerOp
				wide.SpeedupVsPR1 = pr1.NsPerOp / wide.NsPerOp
			})
			rep.Rows = append(rep.Rows, iRow, pr1, wide)
			for _, p := range procs {
				var noswar, swar EngineRow
				atBudget(p, func() {
					noswar = measureExec(name, batch, CfgFused, fused, engine.FastKernelsNoSwar(), x, iters)
					swar = measureExec(name, batch, CfgFusedSwar, fused, engine.FastKernels(), x, iters)
				})
				noswar.GoMaxProcs, swar.GoMaxProcs = p, p
				noswar.SpeedupVsInterp = iRow.NsPerOp / noswar.NsPerOp
				noswar.SpeedupVsPR1 = pr1.NsPerOp / noswar.NsPerOp
				swar.SpeedupVsInterp = iRow.NsPerOp / swar.NsPerOp
				swar.SpeedupVsPR1 = pr1.NsPerOp / swar.NsPerOp
				swar.SpeedupVsPR5 = noswar.NsPerOp / swar.NsPerOp
				rep.Rows = append(rep.Rows, noswar, swar)
			}
			if batch == 1 {
				var ref EngineRow
				atBudget(procs[0], func() {
					ref = measureExec(name, batch, CfgFusedRef, fused, engine.ReferenceKernels(), x, iters)
				})
				ref.GoMaxProcs = procs[0]
				ref.SpeedupVsInterp = iRow.NsPerOp / ref.NsPerOp
				rep.Rows = append(rep.Rows, ref)
			}
		}
	}

	// Sparse sweep: each zoo model pruned to 0%/50%/70%/85% global
	// magnitude and 2:4 N:M structure, measured at batch 8 under the
	// single-core budget with the sparsity-aware registry against the
	// dense-forced one on the same pruned program. Both rows carry the
	// weight sparsity; the sparse row adds the modeled skip fraction and
	// effective MACs of its bound kernels. Global magnitude pruning
	// distributes unevenly across layers, so mid-sparsity configs keep
	// early layers near-dense (Amdahl); the 85% config is where the
	// sparse kernels dominate end to end.
	pruneCfgs := []struct {
		label  string
		target float64
		nm     bool
	}{{"mag0", 0, false}, {"mag50", 0.5, false}, {"mag70", 0.7, false}, {"mag85", 0.85, false}, {"nm24", 0, true}}
	g := tensor.NewRNG(9600)
	for _, name := range []string{"mobilenet", "resnet20", "vit"} {
		for _, pc := range pruneCfgs {
			cm := engineModelPruned(sc, name, pc.target, pc.nm)
			prog := cm.Prog
			ws, sf := prog.SparsityStats()
			denseMacs, effMacs, err := prog.ModeledMacs([]int{8, 3, 32, 32})
			if err != nil {
				panic(err)
			}
			x := g.Uniform(0, 1, 8, 3, 32, 32)
			var dense, sparse EngineRow
			atBudget(procs[0], func() {
				dense = measureExec(name, 8, CfgFusedDense, prog, engine.FastKernelsNoSparse(), x, 5)
				sparse = measureExec(name, 8, CfgFusedSwar, prog, engine.FastKernels(), x, 5)
			})
			for _, r := range []*EngineRow{&dense, &sparse} {
				r.GoMaxProcs = procs[0]
				r.Prune = pc.label
				r.Sparsity = ws
			}
			dense.EffectiveMacs = denseMacs
			sparse.EffectiveMacs = effMacs
			sparse.SkipFraction = sf
			sparse.SpeedupVsDense = dense.NsPerOp / sparse.NsPerOp
			rep.Rows = append(rep.Rows, dense, sparse)
			if pc.label != "mag0" {
				rep.Kernels = append(rep.Kernels, kernelSummary(name+"/"+pc.label, prog)...)
			}
		}
	}
	return rep
}

// formatDTypeBytes renders a per-dtype byte map compactly and stably.
func formatDTypeBytes(m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// scaleName labels the scale for the report.
func scaleName(sc Scale) string {
	if sc.TrainN >= Full().TrainN {
		return "full"
	}
	return "quick"
}

// WriteBenchJSON serializes the report (indented, trailing newline) to
// path — the BENCH_engine.json artifact the acceptance criteria and
// EXPERIMENTS.md read.
func WriteBenchJSON(path string, rep *EngineReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ServeComparison drives the batched serving runtime (fused program,
// default kernels) with concurrent clients and reports throughput and
// coalescing.
func ServeComparison(sc Scale) []ServeRow {
	cm, _, _ := engineModel(sc, "mobilenet")
	g := tensor.NewRNG(9500)
	var rows []ServeRow
	for _, clients := range []int{1, 8} {
		srv, err := engine.NewServer(cm.Prog, []int{3, 32, 32}, engine.ServerOptions{MaxBatch: 8})
		if err != nil {
			panic(err)
		}
		perClient := 24
		inputs := make([]*tensor.Tensor, clients)
		for i := range inputs {
			inputs[i] = g.Uniform(0, 1, 1, 3, 32, 32)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := 0; r < perClient; r++ {
					if _, err := srv.Infer(inputs[c]); err != nil {
						panic(err)
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(start)
		st := srv.Stats()
		srv.Close()
		rows = append(rows, ServeRow{
			Model: "mobilenet", Clients: clients, Requests: clients * perClient,
			Throughput: float64(clients*perClient) / el.Seconds(),
			MeanBatch:  st.MeanBatch(),
		})
	}
	return rows
}

// FormatEngine renders the engine comparison tables.
func FormatEngine(rep *EngineReport) string {
	var sb strings.Builder
	sb.WriteString("Engine — typed fused+prepacked (SWAR on/off, GOMAXPROCS sweep) vs I64 vs PR-1 engine vs IntLayer interpreter\n")
	fmt.Fprintf(&sb, "%-10s %6s %-22s %5s %12s %10s %8s %8s %8s %7s %5s %6s %12s %12s  %s\n",
		"model", "batch", "config", "procs", "µs/smp", "allocs", "vs intp", "vs pr1", "vs pr5",
		"instrs", "waves", "par%", "arena B", "scratch B", "arena dtypes")
	hasSparse := false
	for _, r := range rep.Rows {
		if r.Prune != "" {
			hasSparse = true
			continue
		}
		vsI, vsP, vs5, par := "", "", "", ""
		if r.SpeedupVsInterp > 0 {
			vsI = fmt.Sprintf("%.2fx", r.SpeedupVsInterp)
		}
		if r.SpeedupVsPR1 > 0 {
			vsP = fmt.Sprintf("%.2fx", r.SpeedupVsPR1)
		}
		if r.SpeedupVsPR5 > 0 {
			vs5 = fmt.Sprintf("%.2fx", r.SpeedupVsPR5)
		}
		if r.Waves > 0 {
			par = fmt.Sprintf("%.0f%%", r.ParallelFraction*100)
		}
		fmt.Fprintf(&sb, "%-10s %6d %-22s %5d %12.0f %10.1f %8s %8s %8s %7d %5d %6s %12d %12d  %s\n",
			r.Model, r.Batch, r.Config, r.GoMaxProcs, r.UsPerSample, r.AllocsPerOp, vsI, vsP, vs5,
			r.Instrs, r.Waves, par, r.ArenaBytes, r.ScratchBytes, formatDTypeBytes(r.ArenaByDType))
	}
	if hasSparse {
		sb.WriteString("\nSparsity — pruned zoo under the sparsity-aware vs dense-forced fast registry (batch 8)\n")
		fmt.Fprintf(&sb, "%-10s %-6s %-22s %12s %9s %9s %14s %9s\n",
			"model", "prune", "config", "µs/smp", "wsparse", "skip", "eff MACs", "vs dense")
		for _, r := range rep.Rows {
			if r.Prune == "" {
				continue
			}
			vsD, skip := "", ""
			if r.SpeedupVsDense > 0 {
				vsD = fmt.Sprintf("%.2fx", r.SpeedupVsDense)
			}
			if r.Config != CfgFusedDense {
				skip = fmt.Sprintf("%.1f%%", r.SkipFraction*100)
			}
			fmt.Fprintf(&sb, "%-10s %-6s %-22s %12.0f %8.1f%% %9s %14d %9s\n",
				r.Model, r.Prune, r.Config, r.UsPerSample, r.Sparsity*100, skip, r.EffectiveMacs, vsD)
		}
	}
	sb.WriteString("\nFusion — instruction and buffer reduction (batch-8 plans)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %7s %6s %8s %14s %14s\n",
		"model", "instrs", "fused", "bufs", "fused", "rescale", "adds", "flatten",
		"arena B (pre)", "arena B (post)")
	for _, f := range rep.Fusion {
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %8d %7d %6d %8d %14d %14d\n",
			f.Model, f.InstrsBefore, f.InstrsAfter, f.BuffersBefore, f.BuffersAfter,
			f.FoldedRescales, f.FusedAdds, f.FoldedFlattens,
			f.ArenaBytesBefore, f.ArenaBytesAfter)
	}
	if len(rep.Kernels) > 0 {
		sb.WriteString("\nKernel config — bound compute paths (fused program, batch-8 bind)\n")
		fmt.Fprintf(&sb, "%-16s %-12s %6s %6s %10s %9s\n", "model", "path", "count", "lanes", "site tile", "max skip")
		for _, k := range rep.Kernels {
			lanes, tiles, skip := "", "", ""
			if k.Lanes > 0 {
				lanes = fmt.Sprintf("%d", k.Lanes)
			}
			if k.TileMax > 0 {
				tiles = fmt.Sprintf("%d", k.TileMax)
				if k.TileMin != k.TileMax {
					tiles = fmt.Sprintf("%d–%d", k.TileMin, k.TileMax)
				}
			}
			if k.MaxSkip > 0 {
				skip = fmt.Sprintf("%.1f%%", k.MaxSkip*100)
			}
			fmt.Fprintf(&sb, "%-16s %-12s %6d %6s %10s %9s\n", k.Model, k.Path, k.Count, lanes, tiles, skip)
		}
	}
	if len(rep.Serve) > 0 {
		sb.WriteString("\nServing — micro-batching runtime\n")
		fmt.Fprintf(&sb, "%-10s %8s %9s %12s %10s\n", "model", "clients", "requests", "req/s", "mean batch")
		for _, r := range rep.Serve {
			fmt.Fprintf(&sb, "%-10s %8d %9d %12.0f %10.2f\n", r.Model, r.Clients, r.Requests, r.Throughput, r.MeanBatch)
		}
	}
	return sb.String()
}
